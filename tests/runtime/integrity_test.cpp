// End-to-end data integrity (docs/RESILIENCE.md "Integrity"): silently
// corrupted transfer payloads and kernel results must be caught by the
// checksummed verified commits, discarded before they touch host state,
// and re-executed (escalating to quorum voting) until the final host
// arrays are bit-identical to a fault-free run.

#include <gtest/gtest.h>

#include <algorithm>

#include "kernels/axpy.h"
#include "kernels/case.h"
#include "kernels/sum.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

long long integrity_size(const std::string& name) {
  if (name == "axpy") return 1000;
  if (name == "matvec") return 64;
  if (name == "matmul") return 48;
  if (name == "stencil2d") return 40;
  if (name == "sum") return 2000;
  if (name == "bm2d") return 64;
  ADD_FAILURE() << "unknown kernel " << name;
  return 16;
}

bool run_and_verify(rt::Runtime& rt, kern::KernelCase& c,
                    const rt::OffloadOptions& o, rt::OffloadResult* out,
                    std::string* why) {
  c.init();
  auto maps = c.maps();
  auto kernel = c.kernel();
  *out = rt.offload(kernel, maps, o);
  if (auto* sum = dynamic_cast<kern::SumCase*>(&c)) {
    sum->set_result(out->reduction);
  }
  return c.verify(why);
}

sim::ScriptedFault corrupt_script(int device_id, sim::FaultKind kind,
                                  long long op) {
  sim::ScriptedFault f;
  f.device_id = device_id;
  f.kind = kind;
  f.op = op;
  return f;
}

std::size_t count_actions(const rt::OffloadResult& res, rt::RecoveryAction a) {
  return static_cast<std::size_t>(
      std::count_if(res.recovery_events.begin(), res.recovery_events.end(),
                    [a](const rt::RecoveryEvent& e) { return e.action == a; }));
}

TEST(Integrity, ComputeCorruptionIsDiscardedAndReexecuted) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  // Device 2's first kernel result arrives with flipped bits.
  o.fault.scripted.push_back(
      corrupt_script(2, sim::FaultKind::kCorruptCompute, 0));

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, c, o, &res, &why)) << why;
  EXPECT_EQ(res.total_iterations(), 1000);

  const auto& bad = res.devices[1];
  EXPECT_EQ(bad.corruptions_injected, 1u);
  EXPECT_EQ(bad.integrity_failures, 1u);
  // The discarded chunk ran again on the *other* device.
  EXPECT_EQ(res.devices[0].integrity_reexecutions, 1u);
  EXPECT_EQ(count_actions(res, rt::RecoveryAction::kCorruptionDetected), 1u);
  EXPECT_EQ(count_actions(res, rt::RecoveryAction::kReexecuteQueued), 1u);
  EXPECT_GE(count_actions(res, rt::RecoveryAction::kReexecuteCommitted), 1u);
  // The injection shows up in the fault log too.
  ASSERT_FALSE(res.fault_events.empty());
  EXPECT_EQ(res.fault_events[0].kind, sim::FaultKind::kCorruptCompute);
}

TEST(Integrity, CopyOutWireCorruptionIsCaughtAtCommit) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  // Transfer ops on device 2: 0 = chunk copy-in, 1 = chunk copy-out.
  o.fault.scripted.push_back(
      corrupt_script(2, sim::FaultKind::kCorruptTransfer, 1));

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, c, o, &res, &why)) << why;
  EXPECT_EQ(res.devices[1].corruptions_injected, 1u);
  EXPECT_EQ(res.devices[1].integrity_failures, 1u);
  EXPECT_EQ(res.devices[0].integrity_reexecutions, 1u);
}

TEST(Integrity, CopyInCorruptionIsRepairedByRetransfer) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  // Transfer op 0 on device 2 is its first chunk copy-in.
  o.fault.scripted.push_back(
      corrupt_script(2, sim::FaultKind::kCorruptTransfer, 0));

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, c, o, &res, &why)) << why;
  const auto& bad = res.devices[1];
  EXPECT_EQ(bad.corruptions_injected, 1u);
  EXPECT_EQ(bad.integrity_failures, 1u);
  // Repair is a local re-transfer: no chunk changed devices.
  EXPECT_EQ(res.devices[0].integrity_reexecutions, 0u);
  EXPECT_EQ(bad.integrity_reexecutions, 0u);
  const auto det = count_actions(res, rt::RecoveryAction::kCorruptionDetected);
  EXPECT_EQ(det, 1u);
  for (const auto& e : res.recovery_events) {
    if (e.action == rt::RecoveryAction::kCorruptionDetected) {
      EXPECT_NE(e.detail.find("copy-in"), std::string::npos) << e.detail;
    }
  }
}

TEST(Integrity, CopyInVerificationOffMissesInputCorruption) {
  // The documented blind spot verify_copy_in exists to close: a corrupted
  // *input* yields a wrong-but-self-consistent result that the commit
  // checksum cannot catch.
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  o.integrity.verify_copy_in = false;
  o.fault.scripted.push_back(
      corrupt_script(2, sim::FaultKind::kCorruptTransfer, 0));

  rt::OffloadResult res;
  std::string why;
  EXPECT_FALSE(run_and_verify(rt, c, o, &res, &why));
  EXPECT_EQ(res.devices[1].corruptions_injected, 1u);
  EXPECT_EQ(res.devices[1].integrity_failures, 0u);
}

TEST(Integrity, DisabledIntegrityCommitsCorruptionSilently) {
  // Negative control: with the subsystem off the injected flip reaches
  // the host arrays — proof the detection path is what saves the others.
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  o.integrity.enabled = false;
  o.fault.scripted.push_back(
      corrupt_script(2, sim::FaultKind::kCorruptCompute, 0));

  rt::OffloadResult res;
  std::string why;
  EXPECT_FALSE(run_and_verify(rt, c, o, &res, &why));
  EXPECT_EQ(res.devices[1].corruptions_injected, 1u);
  EXPECT_EQ(res.devices[0].integrity_checks + res.devices[1].integrity_checks,
            0u);
  EXPECT_TRUE(res.recovery_events.empty());
}

TEST(Integrity, RepeatedDisagreementEscalatesToVoting) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  // Device 2 corrupts its own chunk; device 1 corrupts the re-execution
  // (its compute op 1, after its own chunk at op 0). Two integrity
  // failures on one chunk open a vote; the quorum then settles it.
  o.fault.scripted.push_back(
      corrupt_script(2, sim::FaultKind::kCorruptCompute, 0));
  o.fault.scripted.push_back(
      corrupt_script(1, sim::FaultKind::kCorruptCompute, 1));

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, c, o, &res, &why)) << why;
  EXPECT_EQ(res.total_iterations(), 1000);
  EXPECT_EQ(count_actions(res, rt::RecoveryAction::kVoteOpened), 1u);
  EXPECT_EQ(count_actions(res, rt::RecoveryAction::kVoteCommitted), 1u);
  std::size_t votes = 0;
  for (const auto& d : res.devices) votes += d.vote_rounds;
  EXPECT_GE(votes, 2u) << "a 2-quorum needs at least two ballots";
}

TEST(Integrity, PersistentCorruptionExhaustsAttemptsAndThrows) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);
  c.init();
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  o.integrity.max_attempts = 4;
  o.integrity.quarantine_threshold = 0;  // keep both devices in play
  // Every kernel execution on both devices corrupts: no execution can
  // ever pass verification, so the attempt cap must end the offload.
  for (long long op = 0; op < 8; ++op) {
    o.fault.scripted.push_back(
        corrupt_script(1, sim::FaultKind::kCorruptCompute, op));
    o.fault.scripted.push_back(
        corrupt_script(2, sim::FaultKind::kCorruptCompute, op));
  }
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), OffloadError);
}

TEST(Integrity, RepeatedFailuresTripTheCircuitBreaker) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  // Three distinct chunks on device 2 fail verification: the flaky-DMA
  // breaker (threshold 3) quarantines it; the survivor finishes.
  for (long long op = 0; op < 3; ++op) {
    o.fault.scripted.push_back(
        corrupt_script(2, sim::FaultKind::kCorruptCompute, op));
  }

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, c, o, &res, &why)) << why;
  EXPECT_TRUE(res.degraded);
  EXPECT_GE(res.devices[1].quarantine_count, 1u);
  EXPECT_EQ(res.devices[1].integrity_failures, 3u);
  EXPECT_EQ(res.total_iterations(), 1000);
}

TEST(Integrity, AlwaysVerifiedFaultFreeRunIsCleanAndCharged) {
  auto run_once = [](bool always) {
    rt::Runtime rt{mach::testing_machine(2)};
    kern::AxpyCase c(1000, /*materialize=*/true);
    c.init();
    rt::OffloadOptions o;
    o.device_ids = {1, 2};
    o.sched.kind = sched::AlgorithmKind::kBlock;
    o.integrity.always = always;
    auto maps = c.maps();
    auto kernel = c.kernel();
    auto res = rt.offload(kernel, maps, o);
    std::string why;
    EXPECT_TRUE(c.verify(&why)) << why;
    return res;
  };
  const auto plain = run_once(false);
  const auto verified = run_once(true);
  std::size_t checks = 0, failures = 0;
  for (const auto& d : verified.devices) {
    checks += d.integrity_checks;
    failures += d.integrity_failures;
  }
  EXPECT_GT(checks, 0u);
  EXPECT_EQ(failures, 0u);
  std::size_t plain_checks = 0;
  for (const auto& d : plain.devices) plain_checks += d.integrity_checks;
  EXPECT_EQ(plain_checks, 0u);
  // Verification reads every payload once more: it costs virtual time.
  EXPECT_GT(verified.total_time, plain.total_time);
}

TEST(Integrity, CorruptionRecoveryIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    rt::Runtime rt{mach::testing_machine(3)};
    kern::AxpyCase c(2000, /*materialize=*/true);
    c.init();
    rt::OffloadOptions o;
    o.device_ids = {1, 2, 3};
    o.sched.kind = sched::AlgorithmKind::kDynamic;
    o.fault.seed = seed;
    o.fault.extra.corrupt_transfer_rate = 0.10;
    o.fault.extra.corrupt_compute_rate = 0.10;
    o.integrity.quarantine_threshold = 0;  // 10% would strand 2 devices
    auto maps = c.maps();
    auto kernel = c.kernel();
    auto res = rt.offload(kernel, maps, o);
    std::string why;
    EXPECT_TRUE(c.verify(&why)) << why;
    return res;
  };
  const auto a = run_once(123);
  const auto b = run_once(123);
  EXPECT_EQ(a.total_time, b.total_time);
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size());
  ASSERT_EQ(a.recovery_events.size(), b.recovery_events.size());
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].corruptions_injected,
              b.devices[i].corruptions_injected);
    EXPECT_EQ(a.devices[i].integrity_checks, b.devices[i].integrity_checks);
    EXPECT_EQ(a.devices[i].integrity_failures,
              b.devices[i].integrity_failures);
    EXPECT_EQ(a.devices[i].integrity_reexecutions,
              b.devices[i].integrity_reexecutions);
    EXPECT_EQ(a.devices[i].iterations, b.devices[i].iterations);
  }
}

class IntegrityAllKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(IntegrityAllKernels, BitExactUnderRandomCorruption) {
  const std::string name = GetParam();
  const sched::AlgorithmKind algorithms[] = {
      sched::AlgorithmKind::kBlock,
      sched::AlgorithmKind::kDynamic,
      sched::AlgorithmKind::kModel2Auto,
  };
  for (auto alg : algorithms) {
    rt::Runtime rt{mach::testing_machine(3)};
    auto c = kern::make_case(name, integrity_size(name), /*materialize=*/true);
    rt::OffloadOptions o;
    o.device_ids = {1, 2, 3};
    o.sched.kind = alg;
    o.fault.extra.corrupt_transfer_rate = 0.05;
    o.fault.extra.corrupt_compute_rate = 0.05;
    // This test exercises detection + recovery, not the breaker (which
    // has its own test above): at 5% rates the chattier kernels would
    // otherwise quarantine every device and strand the offload.
    o.integrity.quarantine_threshold = 0;

    rt::OffloadResult res;
    std::string why;
    ASSERT_TRUE(run_and_verify(rt, *c, o, &res, &why))
        << name << "/" << sched::to_string(alg) << ": " << why;
    EXPECT_EQ(res.total_iterations(), c->kernel().iterations.size());
    // Every caught mismatch must have left a detection event behind.
    std::size_t failures = 0, checks = 0;
    for (const auto& d : res.devices) {
      failures += d.integrity_failures;
      checks += d.integrity_checks;
    }
    EXPECT_GT(checks, 0u) << name;
    EXPECT_GE(count_actions(res, rt::RecoveryAction::kCorruptionDetected),
              failures > 0 ? 1u : 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, IntegrityAllKernels,
                         ::testing::ValuesIn(kern::all_kernel_names()),
                         [](const auto& tpinfo) { return tpinfo.param; });

}  // namespace
}  // namespace homp
