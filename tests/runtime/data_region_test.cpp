// DataRegion mechanics: entry distribution, residency, halo exchange and
// close-time write-back.

#include <gtest/gtest.h>

#include "machine/profiles.h"
#include "memory/host_array.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

mem::MapSpec aligned_spec(const char* name, mem::HostArray<double>& a,
                          mem::MapDirection dir, long long halo = 0) {
  mem::MapSpec s;
  s.name = name;
  s.dir = dir;
  s.binding = mem::bind_array(a);
  s.region = a.region();
  s.partition.assign(a.rank(), dist::DimPolicy::full());
  s.partition[0] = dist::DimPolicy::align("L");
  s.halo_before = halo;
  s.halo_after = halo;
  return s;
}

rt::RegionOptions region_opts(const rt::Runtime& rt, long long n) {
  rt::RegionOptions ro;
  ro.device_ids = rt.all_devices();
  ro.loop_label = "L";
  ro.loop_domain = dist::Range::of_size(n);
  return ro;
}

TEST(DataRegion, EntryDistributesAndCopiesIn) {
  rt::Runtime rt{mach::testing_machine(3)};
  constexpr long long kN = 120;
  auto a = mem::HostArray<double>::matrix(kN, 8);
  a.fill_with_indices([](long long i, long long j) {
    return static_cast<double>(i * 100 + j);
  });

  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kTo));
  auto region = rt.map_data(std::move(maps), region_opts(rt, kN));

  EXPECT_GT(region->entry_time(), 0.0);
  EXPECT_EQ(region->loop_distribution().num_parts(), 4u);
  EXPECT_TRUE(region->loop_distribution().is_partition());

  // Device copies hold the right slices: probe an element owned by
  // accelerator slot 2.
  const auto part = region->loop_distribution().part(2);
  ASSERT_FALSE(part.empty());
  auto view = const_cast<mem::DeviceDataEnv&>(region->env(2))
                  .view<double>("a");
  EXPECT_EQ(view(part.lo, 3), static_cast<double>(part.lo * 100 + 3));
}

TEST(DataRegion, OffloadsReuseResidentDataWithoutTransfers) {
  rt::Runtime rt{mach::testing_machine(2)};
  constexpr long long kN = 64;
  auto a = mem::HostArray<double>::vector(kN, 1.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom));
  auto region = rt.map_data(std::move(maps), region_opts(rt, kN));

  rt::LoopKernel k;
  k.name = "inc";
  k.iterations = dist::Range::of_size(kN);
  k.cost.flops_per_iter = 1.0;
  k.cost.mem_bytes_per_iter = 16.0;
  k.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto v = env.view<double>("a");
    for (long long i = chunk.lo; i < chunk.hi; ++i) v(i) += 1.0;
    return 0.0;
  };

  for (int rep = 0; rep < 3; ++rep) {
    auto res = region->offload(k);
    for (const auto& d : res.devices) {
      EXPECT_EQ(d.bytes_in, 0.0);
      EXPECT_EQ(d.bytes_out, 0.0);
    }
  }
  region->close();
  for (long long i = 0; i < kN; ++i) {
    ASSERT_EQ(a(i), 4.0) << "a[" << i << "]";
  }
}

TEST(DataRegion, HaloExchangeRefreshesNeighbourRows) {
  rt::Runtime rt{mach::testing_machine(3)};
  constexpr long long kN = 40;
  auto a = mem::HostArray<double>::matrix(kN, 4);
  a.fill(0.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom, 1));
  auto region = rt.map_data(std::move(maps), region_opts(rt, kN));

  // Each device stamps its owned rows with its slot id...
  rt::LoopKernel stamp;
  stamp.name = "stamp";
  stamp.iterations = dist::Range::of_size(kN);
  stamp.cost.flops_per_iter = 1.0;
  stamp.cost.mem_bytes_per_iter = 32.0;
  stamp.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto v = env.view<double>("a");
    for (long long i = chunk.lo; i < chunk.hi; ++i) {
      for (long long j = 0; j < 4; ++j) v(i, j) = 10.0 + chunk.lo;
    }
    return 0.0;
  };
  region->offload(stamp);
  const double t = region->halo_exchange("a");
  EXPECT_GT(t, 0.0);

  // ...then each device must see its neighbour's stamp in the halo row.
  const auto& d = region->loop_distribution();
  for (std::size_t slot = 0; slot + 1 < d.num_parts(); ++slot) {
    const auto mine = d.part(slot);
    const auto next = d.part(slot + 1);
    if (mine.empty() || next.empty()) continue;
    auto view = const_cast<mem::DeviceDataEnv&>(region->env(slot))
                    .view<double>("a");
    // Row next.lo is slot+1's first owned row, visible in slot's halo.
    EXPECT_EQ(view(next.lo, 0), 10.0 + next.lo)
        << "slot " << slot << " halo row " << next.lo;
  }
}

TEST(DataRegion, ModelBasedEntryDistributionSkewsWork) {
  rt::Runtime rt{mach::builtin("full")};
  constexpr long long kN = 700;
  auto a = mem::HostArray<double>::vector(kN, 0.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kTo));
  auto ro = region_opts(rt, kN);
  ro.dist_algorithm = sched::AlgorithmKind::kModel1Auto;
  ro.cost_hint.flops_per_iter = 100.0;
  ro.cost_hint.mem_bytes_per_iter = 8.0;
  auto region = rt.map_data(std::move(maps), ro);
  const auto& d = region->loop_distribution();
  // GPU slots (1..4) should get more than MIC slots (5..6).
  EXPECT_GT(d.part(1).size(), d.part(5).size());
}

TEST(DataRegion, CloseIsIdempotent) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(16, 2.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom));
  auto region = rt.map_data(std::move(maps), region_opts(rt, 16));
  EXPECT_GT(region->close(), 0.0);
  EXPECT_EQ(region->close(), 0.0);
}

TEST(DataRegion, RejectsChunkSchedulerEntryDistribution) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(16, 0.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kTo));
  auto ro = region_opts(rt, 16);
  ro.dist_algorithm = sched::AlgorithmKind::kDynamic;
  EXPECT_THROW(rt.map_data(std::move(maps), ro), ConfigError);
}

}  // namespace
}  // namespace homp
