// DataRegion mechanics: entry distribution, residency, halo exchange and
// close-time write-back.

#include <gtest/gtest.h>

#include "machine/profiles.h"
#include "memory/host_array.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

mem::MapSpec aligned_spec(const char* name, mem::HostArray<double>& a,
                          mem::MapDirection dir, long long halo = 0) {
  mem::MapSpec s;
  s.name = name;
  s.dir = dir;
  s.binding = mem::bind_array(a);
  s.region = a.region();
  s.partition.assign(a.rank(), dist::DimPolicy::full());
  s.partition[0] = dist::DimPolicy::align("L");
  s.halo_before = halo;
  s.halo_after = halo;
  return s;
}

rt::RegionOptions region_opts(const rt::Runtime& rt, long long n) {
  rt::RegionOptions ro;
  ro.device_ids = rt.all_devices();
  ro.loop_label = "L";
  ro.loop_domain = dist::Range::of_size(n);
  return ro;
}

TEST(DataRegion, EntryDistributesAndCopiesIn) {
  rt::Runtime rt{mach::testing_machine(3)};
  constexpr long long kN = 120;
  auto a = mem::HostArray<double>::matrix(kN, 8);
  a.fill_with_indices([](long long i, long long j) {
    return static_cast<double>(i * 100 + j);
  });

  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kTo));
  auto region = rt.map_data(std::move(maps), region_opts(rt, kN));

  EXPECT_GT(region->entry_time(), 0.0);
  EXPECT_EQ(region->loop_distribution().num_parts(), 4u);
  EXPECT_TRUE(region->loop_distribution().is_partition());

  // Device copies hold the right slices: probe an element owned by
  // accelerator slot 2.
  const auto part = region->loop_distribution().part(2);
  ASSERT_FALSE(part.empty());
  auto view = const_cast<mem::DeviceDataEnv&>(region->env(2))
                  .view<double>("a");
  EXPECT_EQ(view(part.lo, 3), static_cast<double>(part.lo * 100 + 3));
}

TEST(DataRegion, OffloadsReuseResidentDataWithoutTransfers) {
  rt::Runtime rt{mach::testing_machine(2)};
  constexpr long long kN = 64;
  auto a = mem::HostArray<double>::vector(kN, 1.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom));
  auto region = rt.map_data(std::move(maps), region_opts(rt, kN));

  rt::LoopKernel k;
  k.name = "inc";
  k.iterations = dist::Range::of_size(kN);
  k.cost.flops_per_iter = 1.0;
  k.cost.mem_bytes_per_iter = 16.0;
  k.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto v = env.view<double>("a");
    for (long long i = chunk.lo; i < chunk.hi; ++i) v(i) += 1.0;
    return 0.0;
  };

  for (int rep = 0; rep < 3; ++rep) {
    auto res = region->offload(k);
    for (const auto& d : res.devices) {
      EXPECT_EQ(d.bytes_in, 0.0);
      EXPECT_EQ(d.bytes_out, 0.0);
    }
  }
  region->close();
  for (long long i = 0; i < kN; ++i) {
    ASSERT_EQ(a(i), 4.0) << "a[" << i << "]";
  }
}

TEST(DataRegion, HaloExchangeRefreshesNeighbourRows) {
  rt::Runtime rt{mach::testing_machine(3)};
  constexpr long long kN = 40;
  auto a = mem::HostArray<double>::matrix(kN, 4);
  a.fill(0.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom, 1));
  auto region = rt.map_data(std::move(maps), region_opts(rt, kN));

  // Each device stamps its owned rows with its slot id...
  rt::LoopKernel stamp;
  stamp.name = "stamp";
  stamp.iterations = dist::Range::of_size(kN);
  stamp.cost.flops_per_iter = 1.0;
  stamp.cost.mem_bytes_per_iter = 32.0;
  stamp.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto v = env.view<double>("a");
    for (long long i = chunk.lo; i < chunk.hi; ++i) {
      for (long long j = 0; j < 4; ++j) v(i, j) = 10.0 + chunk.lo;
    }
    return 0.0;
  };
  region->offload(stamp);
  const double t = region->halo_exchange("a");
  EXPECT_GT(t, 0.0);

  // ...then each device must see its neighbour's stamp in the halo row.
  const auto& d = region->loop_distribution();
  for (std::size_t slot = 0; slot + 1 < d.num_parts(); ++slot) {
    const auto mine = d.part(slot);
    const auto next = d.part(slot + 1);
    if (mine.empty() || next.empty()) continue;
    auto view = const_cast<mem::DeviceDataEnv&>(region->env(slot))
                    .view<double>("a");
    // Row next.lo is slot+1's first owned row, visible in slot's halo.
    EXPECT_EQ(view(next.lo, 0), 10.0 + next.lo)
        << "slot " << slot << " halo row " << next.lo;
  }
}

TEST(DataRegion, ModelBasedEntryDistributionSkewsWork) {
  rt::Runtime rt{mach::builtin("full")};
  constexpr long long kN = 700;
  auto a = mem::HostArray<double>::vector(kN, 0.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kTo));
  auto ro = region_opts(rt, kN);
  ro.dist_algorithm = sched::AlgorithmKind::kModel1Auto;
  ro.cost_hint.flops_per_iter = 100.0;
  ro.cost_hint.mem_bytes_per_iter = 8.0;
  auto region = rt.map_data(std::move(maps), ro);
  const auto& d = region->loop_distribution();
  // GPU slots (1..4) should get more than MIC slots (5..6).
  EXPECT_GT(d.part(1).size(), d.part(5).size());
}

TEST(DataRegion, CloseIsIdempotent) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(16, 2.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom));
  auto region = rt.map_data(std::move(maps), region_opts(rt, 16));
  EXPECT_GT(region->close(), 0.0);
  EXPECT_EQ(region->close(), 0.0);
}

TEST(DataRegion, RejectsChunkSchedulerEntryDistribution) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(16, 0.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kTo));
  auto ro = region_opts(rt, 16);
  ro.dist_algorithm = sched::AlgorithmKind::kDynamic;
  EXPECT_THROW(rt.map_data(std::move(maps), ro), ConfigError);
}

TEST(DataRegion, VerifiedExitRepairsCorruptedHostCopy) {
  rt::Runtime rt{mach::testing_machine(2)};
  constexpr long long kN = 64;
  auto a = mem::HostArray<double>::vector(kN, 0.0);
  a.fill_with_index([](long long i) { return static_cast<double>(i); });
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom));
  auto ro = region_opts(rt, kN);
  ro.verify_exit = true;
  ro.exit_corrupt_seed = 0x5eed;
  ro.exit_corrupt_slot = 1;  // slot 0 is the shared-memory host
  auto region = rt.map_data(std::move(maps), ro);
  const double clean_exit = [&] {
    // Reference: same region, no corruption hook — for the time bill.
    auto b = mem::HostArray<double>::vector(kN, 0.0);
    std::vector<mem::MapSpec> m2;
    m2.push_back(aligned_spec("b", b, mem::MapDirection::kToFrom));
    auto r2 = region_opts(rt, kN);
    r2.verify_exit = true;
    return rt.map_data(std::move(m2), r2)->close();
  }();
  const double t = region->close();
  EXPECT_EQ(region->exit_retries(), 1);
  // The re-sent payload is charged to the exit bill.
  EXPECT_GT(t, clean_exit);
  for (long long i = 0; i < kN; ++i) {
    ASSERT_EQ(a(i), static_cast<double>(i)) << "a[" << i << "]";
  }
}

TEST(DataRegion, VerifiedExitExhaustionThrows) {
  rt::Runtime rt{mach::testing_machine(2)};
  auto a = mem::HostArray<double>::vector(32, 1.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom));
  auto ro = region_opts(rt, 32);
  ro.verify_exit = true;
  ro.max_exit_retries = 0;  // give up on the first mismatch
  ro.exit_corrupt_seed = 0x5eed;
  ro.exit_corrupt_slot = 1;
  auto region = rt.map_data(std::move(maps), ro);
  EXPECT_THROW(region->close(), ConfigError);
}

TEST(DataRegion, ZeroLengthPartsCloseCleanlyUnderVerification) {
  // More devices than iterations: several slots own empty slices whose
  // commit (and exit checksum) must be a clean no-op.
  rt::Runtime rt{mach::testing_machine(6)};
  constexpr long long kN = 3;
  auto a = mem::HostArray<double>::vector(kN, 7.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom));
  auto ro = region_opts(rt, kN);
  ro.verify_exit = true;
  auto region = rt.map_data(std::move(maps), ro);
  EXPECT_GE(region->close(), 0.0);
  EXPECT_EQ(region->exit_retries(), 0);
  for (long long i = 0; i < kN; ++i) ASSERT_EQ(a(i), 7.0);
}

TEST(DataRegion, OverlappingHaloFootprintsCommitOwnedRegionsOnly) {
  // With halo=1 each device also holds (stale) copies of its neighbours'
  // boundary rows; close() must write back only the owned rows, so the
  // stale halo copies can never clobber a neighbour's committed result.
  rt::Runtime rt{mach::testing_machine(3)};
  constexpr long long kN = 30;
  auto a = mem::HostArray<double>::matrix(kN, 4);
  a.fill(0.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom, 1));
  auto ro = region_opts(rt, kN);
  ro.verify_exit = true;
  auto region = rt.map_data(std::move(maps), ro);

  rt::LoopKernel stamp;
  stamp.name = "stamp";
  stamp.iterations = dist::Range::of_size(kN);
  stamp.cost.flops_per_iter = 1.0;
  stamp.cost.mem_bytes_per_iter = 32.0;
  stamp.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto v = env.view<double>("a");
    for (long long i = chunk.lo; i < chunk.hi; ++i) {
      for (long long j = 0; j < 4; ++j) v(i, j) = 100.0 + i;
    }
    return 0.0;
  };
  region->offload(stamp);
  // No halo_exchange: every halo row is stale on purpose.
  region->close();
  EXPECT_EQ(region->exit_retries(), 0);
  for (long long i = 0; i < kN; ++i) {
    for (long long j = 0; j < 4; ++j) {
      ASSERT_EQ(a(i, j), 100.0 + i) << "a(" << i << "," << j << ")";
    }
  }
}

TEST(DataRegion, UseAfterCloseThrows) {
  rt::Runtime rt{mach::testing_machine(2)};
  constexpr long long kN = 16;
  auto a = mem::HostArray<double>::vector(kN, 1.0);
  std::vector<mem::MapSpec> maps;
  maps.push_back(aligned_spec("a", a, mem::MapDirection::kToFrom, 1));
  auto region = rt.map_data(std::move(maps), region_opts(rt, kN));
  region->close();

  rt::LoopKernel k;
  k.name = "noop";
  k.iterations = dist::Range::of_size(kN);
  k.cost.flops_per_iter = 1.0;
  k.cost.mem_bytes_per_iter = 8.0;
  k.body = [](const dist::Range&, mem::DeviceDataEnv&) { return 0.0; };
  EXPECT_THROW(region->offload(k), ConfigError);
  EXPECT_THROW(region->halo_exchange("a"), ConfigError);
}

}  // namespace
}  // namespace homp
