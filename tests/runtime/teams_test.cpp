// Within-device (teams) distribution: quantization of indivisible
// iterations onto parallel units, and BLOCK-vs-CYCLIC team scheduling
// under skewed per-iteration work.

#include <gtest/gtest.h>

#include "kernels/axpy.h"
#include "machine/profiles.h"
#include "pragma/parse.h"
#include "runtime/runtime.h"

namespace homp::rt {
namespace {

mach::MachineDescriptor machine_with_units(int units) {
  auto m = mach::testing_machine(1);
  m.devices[1].parallel_units = units;
  m.validate();
  return m;
}

LoopKernel compute_kernel(long long n, bool divisible) {
  LoopKernel k;
  k.name = "teams-probe";
  k.iterations = dist::Range::of_size(n);
  k.cost.flops_per_iter = 1e6;  // compute-bound
  k.cost.mem_bytes_per_iter = 8.0;
  k.cost.transfer_bytes_per_iter = 8.0;
  k.cost.divisible_iterations = divisible;
  return k;
}

double run_on(const mach::MachineDescriptor& m, const LoopKernel& k,
              OffloadOptions o) {
  Runtime rt{m};
  kern::AxpyCase storage(k.iterations.size(), /*materialize=*/false);
  auto maps = storage.maps();
  o.device_ids = {1};
  o.execute_bodies = false;
  auto res = rt.offload(k, maps, o);
  // Compare the compute phase alone: transfer latencies would otherwise
  // dilute the quantization ratios these tests pin down.
  return res.devices[0].phase_time[static_cast<int>(Phase::kCompute)];
}

TEST(Teams, DivisibleIterationsSeeNoQuantization) {
  // 4 iterations on a 16-unit device: with inner parallelism the device's
  // full rate applies regardless of unit count.
  auto k = compute_kernel(4, /*divisible=*/true);
  const double t16 = run_on(machine_with_units(16), k, {});
  const double t1 = run_on(machine_with_units(1), k, {});
  EXPECT_NEAR(t16, t1, t1 * 1e-9);
}

TEST(Teams, IndivisibleIterationsQuantizeOntoUnits) {
  // 4 indivisible iterations on a 16-unit device: only 4 units work, so
  // the chunk takes 16/4 = 4x the perfectly-divisible time.
  auto k = compute_kernel(4, /*divisible=*/false);
  const double t_div = run_on(machine_with_units(16),
                              compute_kernel(4, true), {});
  const double t_indiv = run_on(machine_with_units(16), k, {});
  EXPECT_NEAR(t_indiv / t_div, 4.0, 0.01);
}

TEST(Teams, CeilingEffect) {
  // 17 indivisible iterations on 16 units: two waves -> 32/17 ~ 1.88x.
  const double t_div =
      run_on(machine_with_units(16), compute_kernel(17, true), {});
  const double t_indiv =
      run_on(machine_with_units(16), compute_kernel(17, false), {});
  EXPECT_NEAR(t_indiv / t_div, 32.0 / 17.0, 0.01);
}

TEST(Teams, CyclicBeatsBlockUnderSkew) {
  // Per-iteration work rises linearly: teams BLOCK's last unit owns the
  // heaviest contiguous subrange (critical path ~ the end of the chunk),
  // CYCLIC interleaves and sees the average.
  auto k = compute_kernel(1600, /*divisible=*/true);
  k.work_factor = [](const dist::Range& r) {
    const double mid = 0.5 * static_cast<double>(r.lo + r.hi);
    return 0.1 + mid / 1600.0;  // ~0.1 at the start, ~1.1 at the end
  };
  OffloadOptions block;
  block.teams_policy = dist::PolicyKind::kBlock;
  OffloadOptions cyclic;
  cyclic.teams_policy = dist::PolicyKind::kCyclic;
  const auto m = machine_with_units(16);
  const double t_block = run_on(m, k, block);
  const double t_cyclic = run_on(m, k, cyclic);
  EXPECT_LT(t_cyclic, t_block);
  // The block critical path is roughly the last 1/16th's factor (~1.07)
  // vs the chunk average (~0.6).
  EXPECT_GT(t_block / t_cyclic, 1.5);
}

TEST(Teams, PragmaTeamsModifierSelectsPolicy) {
  auto d = pragma::parse_directive(
      "parallel target device(0:*) distribute "
      "dist_schedule(target:[AUTO]) dist_schedule(teams:[CYCLIC(1)])");
  EXPECT_EQ(d.teams_policy, dist::PolicyKind::kCyclic);
  auto m = mach::testing_machine(1);
  auto o = pragma::to_offload_options(d, m);
  EXPECT_EQ(o.teams_policy, dist::PolicyKind::kCyclic);

  auto d2 = pragma::parse_directive(
      "target device(*) dist_schedule(teams: BLOCK)");
  EXPECT_EQ(d2.teams_policy, dist::PolicyKind::kBlock);

  EXPECT_THROW(
      pragma::parse_directive("target device(*) dist_schedule(teams: AUTO)"),
      ParseError);
}

}  // namespace
}  // namespace homp::rt
