// Fault-path coverage for the three extension algorithms (CYCLIC,
// WORK_STEALING, HISTORY_AUTO): the resilience machinery — device-loss
// redistribution, transient retry, and integrity re-execution — must be
// bit-correct under every scheduler family, not just the seven paper
// policies the other fault suites exercise. The homp-fuzz differential
// harness sweeps these combinations randomly; this suite pins the
// deterministic core cases into tier-1.

#include <gtest/gtest.h>

#include <string>

#include "kernels/case.h"
#include "kernels/sum.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"
#include "sched/algorithm.h"

namespace homp {
namespace {

const sched::AlgorithmKind kExtendedAlgorithms[] = {
    sched::AlgorithmKind::kCyclic,
    sched::AlgorithmKind::kWorkStealing,
    sched::AlgorithmKind::kHistoryAuto,
};

bool run_and_verify(rt::Runtime& rt, kern::KernelCase& c,
                    const rt::OffloadOptions& o, rt::OffloadResult* out,
                    std::string* why) {
  c.init();
  auto maps = c.maps();
  auto kernel = c.kernel();
  *out = rt.offload(kernel, maps, o);
  if (auto* sum = dynamic_cast<kern::SumCase*>(&c)) {
    sum->set_result(out->reduction);
  }
  return c.verify(why);
}

class ExtendedFault
    : public ::testing::TestWithParam<sched::AlgorithmKind> {};

TEST_P(ExtendedFault, DeviceLossIsRedistributedBitCorrectly) {
  const auto alg = GetParam();
  rt::Runtime rt{mach::testing_machine(3)};
  auto c = kern::make_case("axpy", 1000, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2, 3};
  o.sched.kind = alg;
  sim::ScriptedFault loss;
  loss.device_id = 2;
  loss.kind = sim::FaultKind::kDeviceLoss;
  loss.at_s = 2e-6;  // mid-flight at this problem size
  o.fault.scripted.push_back(loss);

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, *c, o, &res, &why))
      << sched::to_string(alg) << ": " << why;
  EXPECT_EQ(res.total_iterations(), c->kernel().iterations.size());
  ASSERT_EQ(res.fault_events.size(), 1u);
  EXPECT_EQ(res.fault_events[0].kind, sim::FaultKind::kDeviceLoss);
  EXPECT_TRUE(res.fault_events[0].fatal);
  EXPECT_EQ(res.fault_events[0].device_id, 2);
  EXPECT_TRUE(res.devices[1].quarantined);
}

TEST_P(ExtendedFault, TransientFaultsAreRetriedBitCorrectly) {
  const auto alg = GetParam();
  rt::Runtime rt{mach::testing_machine(3)};
  auto c = kern::make_case("matvec", 64, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2, 3};
  o.sched.kind = alg;
  o.fault.extra.transfer_fault_rate = 0.15;
  o.fault.extra.launch_fault_rate = 0.10;
  o.fault.extra.slowdown_rate = 0.10;

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, *c, o, &res, &why))
      << sched::to_string(alg) << ": " << why;
  EXPECT_EQ(res.total_iterations(), c->kernel().iterations.size());
  EXPECT_FALSE(res.fault_events.empty())
      << sched::to_string(alg) << ": rates this high must inject something";
  std::size_t retries = 0;
  for (const auto& d : res.devices) retries += d.retries;
  EXPECT_GT(retries, 0u) << sched::to_string(alg);
}

TEST_P(ExtendedFault, ComputeCorruptionIsDetectedAndRepaired) {
  const auto alg = GetParam();
  rt::Runtime rt{mach::testing_machine(2)};
  auto c = kern::make_case("axpy", 1000, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = alg;
  // Device 2's first kernel result arrives with flipped bits.
  sim::ScriptedFault f;
  f.device_id = 2;
  f.kind = sim::FaultKind::kCorruptCompute;
  f.op = 0;
  o.fault.scripted.push_back(f);

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, *c, o, &res, &why))
      << sched::to_string(alg) << ": " << why;
  EXPECT_EQ(res.total_iterations(), 1000);
  const auto& bad = res.devices[1];
  EXPECT_EQ(bad.corruptions_injected, 1u);
  EXPECT_EQ(bad.integrity_failures, 1u);
  std::size_t reexecs = 0;
  for (const auto& d : res.devices) reexecs += d.integrity_reexecutions;
  EXPECT_GE(reexecs, 1u) << sched::to_string(alg);
}

TEST_P(ExtendedFault, TransferCorruptionIsDetectedAndRepaired) {
  const auto alg = GetParam();
  rt::Runtime rt{mach::testing_machine(2)};
  auto c = kern::make_case("matvec", 64, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = alg;
  sim::ScriptedFault f;
  f.device_id = 2;
  f.kind = sim::FaultKind::kCorruptTransfer;
  f.op = 0;
  o.fault.scripted.push_back(f);

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, *c, o, &res, &why))
      << sched::to_string(alg) << ": " << why;
  EXPECT_EQ(res.total_iterations(), c->kernel().iterations.size());
  std::size_t failures = 0;
  for (const auto& d : res.devices) failures += d.integrity_failures;
  EXPECT_GE(failures, 1u) << sched::to_string(alg);
}

TEST_P(ExtendedFault, CorruptionCommitsSilentlyWhenIntegrityDisabled) {
  // Negative control — the planted mode homp-fuzz uses for its
  // self-test: with integrity off, the corruption reaches the result
  // buffer and verify() fails.
  const auto alg = GetParam();
  rt::Runtime rt{mach::testing_machine(2)};
  auto c = kern::make_case("axpy", 1000, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = alg;
  o.integrity.enabled = false;
  sim::ScriptedFault f;
  f.device_id = 2;
  f.kind = sim::FaultKind::kCorruptCompute;
  f.op = 0;
  o.fault.scripted.push_back(f);

  rt::OffloadResult res;
  std::string why;
  EXPECT_FALSE(run_and_verify(rt, *c, o, &res, &why))
      << sched::to_string(alg)
      << ": corruption with integrity off must reach the output";
  EXPECT_EQ(res.devices[1].corruptions_injected, 1u);
  std::size_t checks = 0;
  for (const auto& d : res.devices) checks += d.integrity_checks;
  EXPECT_EQ(checks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ExtensionAlgorithms, ExtendedFault,
    ::testing::ValuesIn(kExtendedAlgorithms),
    [](const auto& tpinfo) { return std::string(sched::to_string(tpinfo.param)); });

}  // namespace
}  // namespace homp
