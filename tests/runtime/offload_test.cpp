// Offload mechanics on the idealized testing machine, where expected
// virtual times can be computed by hand.

#include <gtest/gtest.h>

#include "kernels/axpy.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

// testing_machine accelerator: 100 GF, 100 GB/s mem, link 10 GB/s + 1 us.
// host: 50 GF, 50 GB/s, shared memory.

TEST(Offload, SingleAcceleratorTimeMatchesHandComputation) {
  rt::Runtime rt{mach::testing_machine(1)};
  constexpr long long kN = 1'000'000;
  kern::AxpyCase c(kN, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1};  // just the accelerator
  o.sched.kind = sched::AlgorithmKind::kBlock;
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);

  // Expected: copy-in 16 MB @ 10 GB/s = 1.6 ms (+1 us latency),
  // compute roofline max(2 Mflop / 100 GF, 24 MB / 100 GB/s) = 240 us,
  // copy-out 8 MB @ 10 GB/s = 0.8 ms (+1 us).
  const double t_in = 1e-6 + 16e6 / 10e9;
  const double t_comp = 24e6 / 100e9;
  const double t_out = 1e-6 + 8e6 / 10e9;
  EXPECT_NEAR(res.total_time, t_in + t_comp + t_out, 5e-5);

  EXPECT_EQ(res.devices[0].bytes_in, 16e6);
  EXPECT_EQ(res.devices[0].bytes_out, 8e6);
  EXPECT_EQ(res.devices[0].iterations, kN);
  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
}

TEST(Offload, TwoIdenticalAcceleratorsHalveTheWork) {
  rt::Runtime rt{mach::testing_machine(2)};
  constexpr long long kN = 1'000'000;
  kern::AxpyCase c(kN, true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);

  EXPECT_EQ(res.devices[0].iterations, kN / 2);
  EXPECT_EQ(res.devices[1].iterations, kN / 2);
  // Separate links: both finish (near-)simultaneously at half the
  // single-device time.
  EXPECT_NEAR(res.devices[0].finish_time, res.devices[1].finish_time, 1e-9);
  EXPECT_LT(res.imbalance().percent(), 0.1);
}

TEST(Offload, SharedLinkContentionSlowsTransfers) {
  rt::Runtime rt_shared{mach::testing_machine(2, /*shared_link=*/true)};
  rt::Runtime rt_sep{mach::testing_machine(2, /*shared_link=*/false)};
  kern::AxpyCase c(1'000'000, /*materialize=*/false);

  auto run = [&](rt::Runtime& r) {
    rt::OffloadOptions o;
    o.device_ids = {1, 2};
    o.sched.kind = sched::AlgorithmKind::kBlock;
    o.execute_bodies = false;
    auto maps = c.maps();
    auto kernel = c.kernel();
    return r.offload(kernel, maps, o).total_time;
  };
  const double t_shared = run(rt_shared);
  const double t_sep = run(rt_sep);
  EXPECT_GT(t_shared, t_sep * 1.5);  // transfers dominate axpy
}

TEST(Offload, SerializedOffloadIsSlowerThanParallel) {
  rt::Runtime rt{mach::testing_machine(4)};
  kern::AxpyCase c(4'000'000, /*materialize=*/false);
  auto run = [&](bool parallel) {
    rt::OffloadOptions o;
    o.device_ids = {1, 2, 3, 4};
    o.sched.kind = sched::AlgorithmKind::kBlock;
    o.parallel_offload = parallel;
    o.execute_bodies = false;
    auto maps = c.maps();
    auto kernel = c.kernel();
    return rt.offload(kernel, maps, o).total_time;
  };
  // `parallel target` (§III-4) offloads concurrently; the serialized path
  // staggers device setup and must not be faster.
  EXPECT_GE(run(false), run(true) * 0.999);
}

TEST(Offload, UnifiedMemoryIsMuchSlowerThanExplicitCopies) {
  // §V-C: "maximum of 10 and 18 times slowdown in our BLAS examples".
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(4'000'000, /*materialize=*/false);
  auto run = [&](bool unified) {
    rt::OffloadOptions o;
    o.device_ids = {1};
    o.sched.kind = sched::AlgorithmKind::kBlock;
    o.use_unified_memory = unified;
    o.execute_bodies = false;
    auto maps = c.maps();
    auto kernel = c.kernel();
    return rt.offload(kernel, maps, o).total_time;
  };
  const double slowdown = run(true) / run(false);
  EXPECT_GT(slowdown, 4.0);
  EXPECT_LT(slowdown, 30.0);
}

TEST(Offload, UnifiedMemoryStillComputesCorrectResults) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(10'000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {0, 1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  o.use_unified_memory = true;
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);
  EXPECT_EQ(res.total_iterations(), 10'000);
  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
}

TEST(Offload, AlignedLoopFollowsBlockArrays) {
  // v1 style (Fig. 2 axpy_homp_v1): x/y are BLOCK, the loop aligns to x.
  rt::Runtime rt{mach::testing_machine(3)};
  kern::AxpyCase c(999, /*materialize=*/true);  // odd size exercises remnant
  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.loop_policy = dist::DimPolicy::align("x");
  auto maps = c.maps_v1_block();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);
  // BLOCK over 999 with 4 parts: 250, 250, 250, 249.
  EXPECT_EQ(res.devices[0].iterations, 250);
  EXPECT_EQ(res.devices[3].iterations, 249);
  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
}

TEST(Offload, NoiseIsDeterministicGivenSeed) {
  auto machine = mach::builtin("gpu4");
  rt::Runtime rt{machine};
  kern::AxpyCase c(1'000'000, /*materialize=*/false);
  auto run = [&](std::uint64_t seed) {
    rt::OffloadOptions o;
    o.device_ids = rt.accelerators();
    o.sched.kind = sched::AlgorithmKind::kDynamic;
    o.noise_seed = seed;
    o.execute_bodies = false;
    auto maps = c.maps();
    auto kernel = c.kernel();
    return rt.offload(kernel, maps, o).total_time;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Offload, DynamicChunkCountMatchesChunkFraction) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(100'000, /*materialize=*/false);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  o.sched.dynamic_chunk_fraction = 0.02;  // the paper's SCHED_DYNAMIC,2%
  o.execute_bodies = false;
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);
  EXPECT_EQ(res.chunks_issued, 50u);  // 1/0.02 equal chunks
  EXPECT_EQ(res.total_iterations(), 100'000);
}

}  // namespace
}  // namespace homp
