// Per-phase breakdown telemetry (the Figure 6 data) must be internally
// consistent and show the paper's <5% scheduling/imbalance overhead on
// identical devices.

#include <gtest/gtest.h>

#include "kernels/case.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

TEST(Breakdown, PhaseTimesArePositiveAndConsistent) {
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("matvec", 2048, /*materialize=*/false);
  rt::OffloadOptions o;
  o.device_ids = rt.accelerators();
  o.sched.kind = sched::AlgorithmKind::kBlock;
  o.execute_bodies = false;
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);

  for (const auto& d : res.devices) {
    for (int p = 0; p < rt::kNumPhases; ++p) {
      EXPECT_GE(d.phase_time[p], 0.0) << to_string(static_cast<rt::Phase>(p));
    }
    EXPECT_GT(d.phase_time[static_cast<int>(rt::Phase::kCompute)], 0.0);
    EXPECT_GT(d.phase_time[static_cast<int>(rt::Phase::kCopyIn)], 0.0);
    // Busy time cannot exceed the offload wall time... except transfers
    // overlapping compute; but for single-shot BLOCK they are serial.
    EXPECT_LE(d.busy_time(), res.total_time * 1.0001);
    EXPECT_LE(d.finish_time, res.total_time + 1e-12);
  }
  // Phase fractions over all phases sum to ~1.
  double total = 0.0;
  for (int p = 0; p < rt::kNumPhases; ++p) {
    total += res.phase_fraction(static_cast<rt::Phase>(p));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Breakdown, ImbalanceOnIdenticalGpusIsSmall) {
  // Figure 6: "the percentage of the incurred load imbalance is below 5%
  // in average" on the 4 identical K40s.
  auto rt = rt::Runtime::from_builtin("gpu4");
  double total_imbalance = 0.0;
  int n = 0;
  for (const auto& name : kern::all_kernel_names()) {
    auto c = kern::make_case(name, 4096, /*materialize=*/false);
    rt::OffloadOptions o;
    o.device_ids = rt.accelerators();
    o.sched.kind = sched::AlgorithmKind::kDynamic;
    o.execute_bodies = false;
    auto maps = c->maps();
    auto kernel = c->kernel();
    auto res = rt.offload(kernel, maps, o);
    total_imbalance += res.imbalance().percent();
    ++n;
  }
  EXPECT_LT(total_imbalance / n, 5.0);
}

TEST(Breakdown, SchedulingOverheadGrowsWithChunkCount) {
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("axpy", 1'000'000, /*materialize=*/false);
  auto sched_time = [&](double frac) {
    rt::OffloadOptions o;
    o.device_ids = rt.accelerators();
    o.sched.kind = sched::AlgorithmKind::kDynamic;
    o.sched.dynamic_chunk_fraction = frac;
    o.execute_bodies = false;
    auto maps = c->maps();
    auto kernel = c->kernel();
    auto res = rt.offload(kernel, maps, o);
    double t = 0.0;
    for (const auto& d : res.devices) {
      t += d.phase_time[static_cast<int>(rt::Phase::kScheduling)];
    }
    return t;
  };
  EXPECT_GT(sched_time(0.005), sched_time(0.05));
}

TEST(Breakdown, GuidedIssuesFewerChunksThanDynamic) {
  // Table II: guided "reduc[es] the total amount of chunks" vs dynamic at
  // comparable balance.
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("axpy", 1'000'000, /*materialize=*/false);
  auto chunks = [&](sched::AlgorithmKind k) {
    rt::OffloadOptions o;
    o.device_ids = rt.accelerators();
    o.sched.kind = k;
    o.sched.dynamic_chunk_fraction = 0.02;
    o.sched.guided_chunk_fraction = 0.20;
    o.execute_bodies = false;
    o.sched.min_chunk = 2000;
    auto maps = c->maps();
    auto kernel = c->kernel();
    return rt.offload(kernel, maps, o).chunks_issued;
  };
  EXPECT_LT(chunks(sched::AlgorithmKind::kGuided),
            chunks(sched::AlgorithmKind::kDynamic));
}

}  // namespace
}  // namespace homp
