// Watchdog, straggler mitigation, and probation re-admission
// (docs/RESILIENCE.md): hung chunks must be reclaimed through speculative
// re-execution bit-correctly, degraded devices must trip the tardiness
// circuit breaker, quarantined devices must be re-admitted through
// probation, and the whole machinery must stay deterministic per seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/error.h"
#include "kernels/axpy.h"
#include "kernels/case.h"
#include "kernels/sum.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

long long wd_size(const std::string& name) {
  if (name == "axpy") return 1000;
  if (name == "matvec") return 64;
  if (name == "matmul") return 48;
  if (name == "stencil2d") return 40;
  if (name == "sum") return 2000;
  if (name == "bm2d") return 64;
  ADD_FAILURE() << "unknown kernel " << name;
  return 16;
}

bool run_and_verify(rt::Runtime& rt, kern::KernelCase& c,
                    const rt::OffloadOptions& o, rt::OffloadResult* out,
                    std::string* why) {
  c.init();
  auto maps = c.maps();
  auto kernel = c.kernel();
  *out = rt.offload(kernel, maps, o);
  if (auto* sum = dynamic_cast<kern::SumCase*>(&c)) {
    sum->set_result(out->reduction);
  }
  return c.verify(why);
}

/// Deadlines bite at the microsecond scale of the testing machine only
/// with the production 50us floor lowered.
void tighten(rt::OffloadOptions& o) { o.watchdog.deadline_floor_s = 1e-8; }

bool has_action(const rt::OffloadResult& res, rt::RecoveryAction a) {
  return std::any_of(res.recovery_events.begin(), res.recovery_events.end(),
                     [a](const rt::RecoveryEvent& e) { return e.action == a; });
}

const sched::AlgorithmKind kWatchdogAlgorithms[] = {
    sched::AlgorithmKind::kBlock,
    sched::AlgorithmKind::kDynamic,
    sched::AlgorithmKind::kModel2Auto,
};

class Watchdog : public ::testing::TestWithParam<std::string> {};

TEST_P(Watchdog, HungChunkIsSpeculatedBitCorrectly) {
  const std::string name = GetParam();
  for (auto alg : kWatchdogAlgorithms) {
    rt::Runtime rt{mach::testing_machine(3)};
    auto c = kern::make_case(name, wd_size(name), /*materialize=*/true);

    rt::OffloadOptions o;
    o.device_ids = {1, 2, 3};
    o.sched.kind = alg;
    tighten(o);
    sim::ScriptedFault hang;
    hang.device_id = 2;
    hang.kind = sim::FaultKind::kHang;
    hang.op = 0;  // the device's first compute never completes
    o.fault.scripted.push_back(hang);

    rt::OffloadResult res;
    std::string why;
    ASSERT_TRUE(run_and_verify(rt, *c, o, &res, &why))
        << name << "/" << sched::to_string(alg) << ": " << why;
    EXPECT_EQ(res.total_iterations(), c->kernel().iterations.size())
        << name << "/" << sched::to_string(alg);
    // The hang is injected and attributed to the hung device.
    ASSERT_FALSE(res.fault_events.empty()) << name;
    EXPECT_TRUE(std::any_of(
        res.fault_events.begin(), res.fault_events.end(),
        [](const rt::FaultEvent& f) {
          return f.kind == sim::FaultKind::kHang && f.device_id == 2;
        }));
    // The soft deadline fired and the chunk was duplicated elsewhere.
    EXPECT_TRUE(has_action(res, rt::RecoveryAction::kWatchdogFired))
        << name << "/" << sched::to_string(alg);
    EXPECT_TRUE(has_action(res, rt::RecoveryAction::kSpeculated))
        << name << "/" << sched::to_string(alg);
    const auto& hung = res.devices[1];  // slot order follows device_ids
    EXPECT_GE(hung.tardy_chunks, 1u);
    std::size_t spec_run = 0, spec_won = 0;
    for (const auto& d : res.devices) {
      spec_run += d.spec_copies_run;
      spec_won += d.spec_copies_won;
    }
    EXPECT_GE(spec_run, 1u) << name << "/" << sched::to_string(alg);
    EXPECT_GE(spec_won, 1u) << name << "/" << sched::to_string(alg);
    EXPECT_TRUE(res.degraded);
  }
}

TEST_P(Watchdog, DegradedStragglerTripsTheCircuitBreaker) {
  const std::string name = GetParam();
  rt::Runtime rt{mach::testing_machine(3)};
  auto c = kern::make_case(name, wd_size(name), /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2, 3};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  tighten(o);
  // Keep the probation machinery out of the timing question here: the
  // degrade factor is latched, so probes would just re-quarantine.
  o.watchdog.probation = false;
  sim::ScriptedFault deg;
  deg.device_id = 2;
  deg.kind = sim::FaultKind::kDegrade;
  deg.op = 0;
  deg.factor = 64.0;  // way past the 4x soft deadline
  o.fault.scripted.push_back(deg);

  rt::OffloadResult res;
  std::string why;
  ASSERT_TRUE(run_and_verify(rt, *c, o, &res, &why)) << name << ": " << why;
  EXPECT_EQ(res.total_iterations(), c->kernel().iterations.size());
  const auto& straggler = res.devices[1];
  EXPECT_GE(straggler.tardy_chunks, 1u) << name;
  EXPECT_GE(straggler.quarantine_count, 1u)
      << name << ": repeated tardiness must quarantine";
  EXPECT_TRUE(has_action(res, rt::RecoveryAction::kWatchdogFired)) << name;
  EXPECT_TRUE(res.degraded);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, Watchdog,
                         ::testing::ValuesIn(kern::all_kernel_names()),
                         [](const auto& tpinfo) { return tpinfo.param; });

TEST(Watchdog, HangOnOnlyDeviceThrowsOffloadError) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(1000, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1};
  tighten(o);
  sim::ScriptedFault hang;
  hang.device_id = 1;
  hang.kind = sim::FaultKind::kHang;
  hang.op = 0;
  o.fault.scripted.push_back(hang);

  auto maps = c.maps();
  auto kernel = c.kernel();
  // The hard deadline quarantines the sole device: no survivors.
  EXPECT_THROW(rt.offload(kernel, maps, o), OffloadError);
}

TEST(Watchdog, SpeculationKeepsHangSlowdownBounded) {
  // ISSUE acceptance: a mid-run hang under SCHED_DYNAMIC must finish in
  // under 2x the fault-free time thanks to speculative re-execution.
  auto run_once = [](bool with_hang) {
    rt::Runtime rt{mach::testing_machine(3)};
    kern::AxpyCase c(30000, /*materialize=*/true);
    rt::OffloadOptions o;
    o.device_ids = {1, 2, 3};
    o.sched.kind = sched::AlgorithmKind::kDynamic;
    tighten(o);
    if (with_hang) {
      sim::ScriptedFault hang;
      hang.device_id = 3;
      hang.kind = sim::FaultKind::kHang;
      hang.op = 4;  // mid-run
      o.fault.scripted.push_back(hang);
    }
    auto maps = c.maps();
    auto kernel = c.kernel();
    auto res = rt.offload(kernel, maps, o);
    std::string why;
    EXPECT_TRUE(c.verify(&why)) << why;
    return res.total_time;
  };
  const double clean = run_once(false);
  const double hung = run_once(true);
  ASSERT_GT(clean, 0.0);
  EXPECT_LT(hung, 2.0 * clean)
      << "speculation must cap the hang penalty below 2x";
}

TEST(Watchdog, ProbationReadmitsAfterTransientBurst) {
  // ISSUE acceptance: a device quarantined by a transient burst is
  // re-admitted via probation and contributes iterations again within the
  // same offload.
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(20000, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  tighten(o);
  o.fault.max_retries = 2;
  o.fault.backoff_base_s = 1e-7;  // exhaust the budget quickly
  o.fault.backoff_cap_s = 1e-6;
  o.watchdog.cooldown_base_s = 1e-6;  // ... and re-admit mid-offload
  // Attempts 1..3 (ops 0..2) of device 2's first transfer fail; every
  // transfer after re-admission succeeds.
  for (long long op = 0; op < 3; ++op) {
    sim::ScriptedFault f;
    f.device_id = 2;
    f.kind = sim::FaultKind::kTransfer;
    f.op = op;
    o.fault.scripted.push_back(f);
  }

  auto maps = c.maps();
  auto kernel = c.kernel();
  c.init();
  auto res = rt.offload(kernel, maps, o);

  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
  EXPECT_EQ(res.total_iterations(), 20000);
  const auto& healed = res.devices[1];
  EXPECT_GE(healed.quarantine_count, 1u);
  EXPECT_GE(healed.readmissions, 1u);
  EXPECT_GE(healed.probe_chunks, 1u);
  EXPECT_GT(healed.iterations, 0) << "re-admitted device must contribute";
  EXPECT_FALSE(healed.quarantined) << "healed, not quarantined, at the end";
  EXPECT_TRUE(has_action(res, rt::RecoveryAction::kReadmitted));
  EXPECT_TRUE(has_action(res, rt::RecoveryAction::kProbePassed));
  EXPECT_TRUE(has_action(res, rt::RecoveryAction::kPromoted));
  // A healed device still marks the run degraded: results are exact but
  // the timing was perturbed by the quarantine episode.
  EXPECT_TRUE(res.degraded);
}

TEST(Watchdog, ProbationDisabledKeepsQuarantinePermanent) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(20000, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  tighten(o);
  o.watchdog.probation = false;
  o.fault.max_retries = 2;
  o.fault.backoff_base_s = 1e-7;
  o.fault.backoff_cap_s = 1e-6;
  for (long long op = 0; op < 3; ++op) {
    sim::ScriptedFault f;
    f.device_id = 2;
    f.kind = sim::FaultKind::kTransfer;
    f.op = op;
    o.fault.scripted.push_back(f);
  }

  auto maps = c.maps();
  auto kernel = c.kernel();
  c.init();
  auto res = rt.offload(kernel, maps, o);
  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
  const auto& lost = res.devices[1];
  EXPECT_TRUE(lost.quarantined);
  EXPECT_EQ(lost.readmissions, 0u);
  EXPECT_FALSE(has_action(res, rt::RecoveryAction::kReadmitted));
  EXPECT_EQ(res.devices[0].iterations, 20000);
}

TEST(Watchdog, IdenticalSeedAndPlanGiveIdenticalResults) {
  // The whole watchdog/speculation/probation machinery runs in virtual
  // time off the per-device fault streams: same seed + plan => identical
  // OffloadResult, timestamps included.
  for (auto alg : kWatchdogAlgorithms) {
    auto run_once = [alg]() {
      rt::Runtime rt{mach::testing_machine(3)};
      kern::AxpyCase c(5000, /*materialize=*/true);
      rt::OffloadOptions o;
      o.device_ids = {1, 2, 3};
      o.sched.kind = alg;
      tighten(o);
      o.watchdog.cooldown_base_s = 1e-6;
      o.fault.seed = 77;
      o.fault.extra.hang_rate = 0.05;
      o.fault.extra.degrade_rate = 0.05;
      o.fault.extra.degrade_factor = 16.0;
      o.fault.extra.transfer_fault_rate = 0.05;
      auto maps = c.maps();
      auto kernel = c.kernel();
      return rt.offload(kernel, maps, o);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.total_time, b.total_time) << sched::to_string(alg);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.reduction, b.reduction);
    ASSERT_EQ(a.fault_events.size(), b.fault_events.size())
        << sched::to_string(alg);
    for (std::size_t i = 0; i < a.fault_events.size(); ++i) {
      EXPECT_EQ(a.fault_events[i].time, b.fault_events[i].time);
      EXPECT_EQ(a.fault_events[i].device_id, b.fault_events[i].device_id);
      EXPECT_EQ(a.fault_events[i].kind, b.fault_events[i].kind);
    }
    ASSERT_EQ(a.recovery_events.size(), b.recovery_events.size())
        << sched::to_string(alg);
    for (std::size_t i = 0; i < a.recovery_events.size(); ++i) {
      EXPECT_EQ(a.recovery_events[i].time, b.recovery_events[i].time);
      EXPECT_EQ(a.recovery_events[i].slot, b.recovery_events[i].slot);
      EXPECT_EQ(a.recovery_events[i].action, b.recovery_events[i].action);
    }
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
      EXPECT_EQ(a.devices[i].iterations, b.devices[i].iterations);
      EXPECT_EQ(a.devices[i].tardy_chunks, b.devices[i].tardy_chunks);
      EXPECT_EQ(a.devices[i].spec_copies_run, b.devices[i].spec_copies_run);
      EXPECT_EQ(a.devices[i].spec_copies_won, b.devices[i].spec_copies_won);
      EXPECT_EQ(a.devices[i].probe_chunks, b.devices[i].probe_chunks);
      EXPECT_EQ(a.devices[i].readmissions, b.devices[i].readmissions);
      EXPECT_EQ(a.devices[i].quarantine_count,
                b.devices[i].quarantine_count);
      EXPECT_EQ(a.devices[i].finish_time, b.devices[i].finish_time);
    }
  }
}

TEST(Watchdog, FaultFreeRunIsUntouchedByWatchdogOptions) {
  // With no faults the watchdog never arms: toggling it (or tightening
  // its deadlines) must not perturb the simulation at all.
  auto run_once = [](bool watchdog_on, double floor_s) {
    rt::Runtime rt{mach::testing_machine(2)};
    kern::AxpyCase c(1500, /*materialize=*/true);
    rt::OffloadOptions o;
    o.device_ids = {1, 2};
    o.sched.kind = sched::AlgorithmKind::kDynamic;
    o.watchdog.enabled = watchdog_on;
    o.watchdog.deadline_floor_s = floor_s;
    auto maps = c.maps();
    auto kernel = c.kernel();
    return rt.offload(kernel, maps, o);
  };
  const auto a = run_once(true, 50e-6);
  const auto b = run_once(false, 50e-6);
  const auto d = run_once(true, 1e-9);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_time, d.total_time);
  EXPECT_TRUE(a.recovery_events.empty());
  EXPECT_TRUE(d.recovery_events.empty());
  EXPECT_FALSE(a.degraded);
}

TEST(Watchdog, RejectsBadWatchdogOptions) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(100, /*materialize=*/true);
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto try_opts = [&](auto mutate) {
    rt::OffloadOptions o;
    o.device_ids = {1};
    o.fault.extra.hang_rate = 0.01;  // arm the fault machinery
    mutate(o);
    EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
  };
  try_opts([](rt::OffloadOptions& o) { o.watchdog.deadline_multiplier = 0.0; });
  try_opts([](rt::OffloadOptions& o) { o.watchdog.deadline_floor_s = -1.0; });
  try_opts([](rt::OffloadOptions& o) { o.watchdog.hard_kill_multiplier = 0.9; });
  try_opts([](rt::OffloadOptions& o) { o.watchdog.tardy_quarantine_threshold = -1; });
  try_opts([](rt::OffloadOptions& o) { o.watchdog.cooldown_base_s = -1.0; });
  try_opts([](rt::OffloadOptions& o) { o.watchdog.cooldown_growth = 0.5; });
  try_opts([](rt::OffloadOptions& o) { o.watchdog.cooldown_cap_s = 1e-9; });
  try_opts([](rt::OffloadOptions& o) { o.watchdog.probe_iterations = -5; });
  try_opts([](rt::OffloadOptions& o) { o.watchdog.probation_successes = 0; });
}

}  // namespace
}  // namespace homp
