// OffloadOptions::validate() centralizes every knob-range check — sched,
// fault, watchdog and integrity — and reports *all* violations in one
// pass, so a misconfigured offload fails with a complete diagnostic
// instead of one error per attempt.

#include <gtest/gtest.h>

#include "kernels/axpy.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

bool mentions(const std::vector<std::string>& v, const std::string& what) {
  for (const auto& msg : v) {
    if (msg.find(what) != std::string::npos) return true;
  }
  return false;
}

TEST(OptionsValidate, DefaultsAreValid) {
  EXPECT_TRUE(rt::OffloadOptions{}.validate().empty());
  EXPECT_NO_THROW(rt::OffloadOptions{}.validate_or_throw());
}

TEST(OptionsValidate, RejectsBadSchedulerFractions) {
  rt::OffloadOptions o;
  o.sched.dynamic_chunk_fraction = 0.0;
  auto v = o.validate();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_TRUE(mentions(v, "dynamic_chunk_fraction"));

  o = rt::OffloadOptions{};
  o.sched.guided_chunk_fraction = 1.5;
  EXPECT_TRUE(mentions(o.validate(), "guided_chunk_fraction"));

  o = rt::OffloadOptions{};
  o.sched.cutoff_ratio = 1.0;  // [0, 1)
  EXPECT_TRUE(mentions(o.validate(), "cutoff_ratio"));

  o = rt::OffloadOptions{};
  o.sched.min_chunk = 0;
  EXPECT_TRUE(mentions(o.validate(), "min_chunk"));
}

TEST(OptionsValidate, RejectsBadFaultKnobs) {
  rt::OffloadOptions o;
  o.fault.max_retries = -1;
  EXPECT_TRUE(mentions(o.validate(), "max_retries"));

  o = rt::OffloadOptions{};
  o.fault.backoff_base_s = 2.0;
  o.fault.backoff_cap_s = 1.0;  // cap < base
  EXPECT_TRUE(mentions(o.validate(), "backoff"));

  o = rt::OffloadOptions{};
  o.fault.extra.corrupt_transfer_rate = 1.0;  // must be < 1
  EXPECT_TRUE(mentions(o.validate(), "fault_corrupt_transfer_rate"));

  o = rt::OffloadOptions{};
  o.fault.extra.corrupt_compute_rate = -0.1;
  EXPECT_TRUE(mentions(o.validate(), "fault_corrupt_compute_rate"));
}

TEST(OptionsValidate, RejectsBadWatchdogKnobs) {
  rt::OffloadOptions o;
  o.watchdog.deadline_multiplier = 0.0;
  EXPECT_TRUE(mentions(o.validate(), "deadline_multiplier"));

  o = rt::OffloadOptions{};
  o.watchdog.hard_kill_multiplier = 0.5;  // hard before soft
  EXPECT_TRUE(mentions(o.validate(), "hard_kill_multiplier"));

  o = rt::OffloadOptions{};
  o.watchdog.tardy_quarantine_threshold = -1;
  EXPECT_TRUE(mentions(o.validate(), "tardy_quarantine_threshold"));

  o = rt::OffloadOptions{};
  o.watchdog.cooldown_growth = 0.5;  // must be >= 1
  EXPECT_TRUE(mentions(o.validate(), "cooldown"));

  o = rt::OffloadOptions{};
  o.watchdog.probation_successes = 0;
  EXPECT_TRUE(mentions(o.validate(), "probation"));
}

TEST(OptionsValidate, RejectsBadIntegrityKnobs) {
  rt::OffloadOptions o;
  o.integrity.vote_after_failures = 0;
  EXPECT_TRUE(mentions(o.validate(), "integrity.vote_after_failures"));

  o = rt::OffloadOptions{};
  o.integrity.vote_quorum = 0;
  EXPECT_TRUE(mentions(o.validate(), "integrity.vote_quorum"));

  o = rt::OffloadOptions{};
  o.integrity.max_attempts = 1;  // needs the original + one re-execution
  EXPECT_TRUE(mentions(o.validate(), "integrity.max_attempts"));

  o = rt::OffloadOptions{};
  o.integrity.quarantine_threshold = -1;
  EXPECT_TRUE(mentions(o.validate(), "integrity.quarantine_threshold"));
}

TEST(OptionsValidate, HarnessKnobs) {
  rt::OffloadOptions o;
  o.harness.step_budget = -1;
  EXPECT_TRUE(mentions(o.validate(), "step_budget"));

  o.harness.step_budget = 0;  // disabled is fine
  EXPECT_TRUE(o.validate().empty());

  // A budget below one event per device can never make progress.
  o.device_ids = {0, 1, 2, 3};
  o.harness.step_budget = 3;
  EXPECT_TRUE(mentions(o.validate(), "step_budget"));
  o.harness.step_budget = 4;
  EXPECT_TRUE(o.validate().empty());

  o.harness.replay = true;
  o.harness.replay_seed = 0;
  EXPECT_TRUE(mentions(o.validate(), "replay_seed"));
  o.harness.replay_seed = 7;
  EXPECT_TRUE(o.validate().empty());
}

TEST(OptionsValidate, ReportsEveryViolationInOnePass) {
  rt::OffloadOptions o;
  o.sched.min_chunk = 0;
  o.fault.max_retries = -1;
  o.watchdog.hard_kill_multiplier = 0.0;
  o.integrity.vote_quorum = 0;
  const auto v = o.validate();
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(mentions(v, "min_chunk"));
  EXPECT_TRUE(mentions(v, "max_retries"));
  EXPECT_TRUE(mentions(v, "hard_kill_multiplier"));
  EXPECT_TRUE(mentions(v, "vote_quorum"));

  // ...and the thrown diagnostic carries all of them too.
  try {
    o.validate_or_throw();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("invalid offload options"), std::string::npos);
    EXPECT_NE(msg.find("min_chunk"), std::string::npos);
    EXPECT_NE(msg.find("vote_quorum"), std::string::npos);
  }
}

TEST(OptionsValidate, RuntimeOffloadRejectsBadKnobsUpFront) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(64, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {0, 1};
  o.integrity.max_attempts = 0;
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

}  // namespace
}  // namespace homp
