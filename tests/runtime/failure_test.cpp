// Failure injection: misconfigured offloads must fail loudly with
// ConfigError/ExecutionError, never silently compute wrong schedules.

#include <gtest/gtest.h>

#include "kernels/axpy.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

rt::LoopKernel trivial_kernel(long long n) {
  rt::LoopKernel k;
  k.name = "trivial";
  k.iterations = dist::Range::of_size(n);
  k.cost.flops_per_iter = 1.0;
  k.cost.mem_bytes_per_iter = 8.0;
  k.body = [](const dist::Range&, mem::DeviceDataEnv&) { return 0.0; };
  return k;
}

TEST(OffloadFailures, RejectsEmptyDeviceList) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(100, true);
  rt::OffloadOptions o;  // no devices
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsOutOfRangeDevice) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(100, true);
  rt::OffloadOptions o;
  o.device_ids = {0, 9};
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsDuplicateDevice) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(100, true);
  rt::OffloadOptions o;
  o.device_ids = {1, 1};
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsEmptyLoop) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(100, true);
  rt::OffloadOptions o;
  o.device_ids = {0};
  auto maps = c.maps();
  auto kernel = c.kernel();
  kernel.iterations = dist::Range(5, 5);
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsReplicatedOutputOnMultipleDevices) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(64, 0.0);
  mem::MapSpec s;
  s.name = "a";
  s.dir = mem::MapDirection::kToFrom;
  s.binding = mem::bind_array(a);
  s.region = a.region();  // FULL (no partition)
  std::vector<mem::MapSpec> maps{s};
  rt::OffloadOptions o;
  o.device_ids = {0, 1};
  auto kernel = trivial_kernel(64);
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsPinnedArrayWithDynamicScheduler) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(128, true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kDynamic;  // loop roams, data pinned
  auto maps = c.maps_v1_block();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsAlignmentCycle) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(32, 0.0);
  auto b = mem::HostArray<double>::vector(32, 0.0);
  mem::MapSpec sa, sb;
  sa.name = "a";
  sa.dir = mem::MapDirection::kTo;
  sa.binding = mem::bind_array(a);
  sa.region = a.region();
  sa.partition = {dist::DimPolicy::align("b")};
  sb = sa;
  sb.name = "b";
  sb.binding = mem::bind_array(b);
  sb.partition = {dist::DimPolicy::align("a")};
  std::vector<mem::MapSpec> maps{sa, sb};
  rt::OffloadOptions o;
  o.device_ids = {0, 1};
  auto kernel = trivial_kernel(32);
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsDanglingAlignTarget) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(32, 0.0);
  mem::MapSpec s;
  s.name = "a";
  s.dir = mem::MapDirection::kTo;
  s.binding = mem::bind_array(a);
  s.region = a.region();
  s.partition = {dist::DimPolicy::align("nonexistent")};
  std::vector<mem::MapSpec> maps{s};
  rt::OffloadOptions o;
  o.device_ids = {0};
  auto kernel = trivial_kernel(32);
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, KernelEscapingFootprintThrowsExecutionError) {
  // A body reading outside its chunk's aligned footprint means the
  // distribution mapped too little data — must be a hard error.
  rt::Runtime rt{mach::testing_machine(2)};
  auto a = mem::HostArray<double>::vector(64, 1.0);
  mem::MapSpec s;
  s.name = "a";
  s.dir = mem::MapDirection::kTo;
  s.binding = mem::bind_array(a);
  s.region = a.region();
  s.partition = {dist::DimPolicy::align("loop")};
  std::vector<mem::MapSpec> maps{s};

  rt::LoopKernel k = trivial_kernel(64);
  k.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto v = env.view<double>("a");
    return v((chunk.hi + 5) % 64);  // out of the chunk's slice
  };
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  EXPECT_THROW(rt.offload(k, maps, o), ExecutionError);
}

TEST(OffloadFailures, ExecuteBodiesWithoutBodyIsRejected) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(100, /*materialize=*/false);  // no body
  rt::OffloadOptions o;
  o.device_ids = {0};
  o.execute_bodies = true;
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, MoreDevicesThanIterationsStillCompletes) {
  rt::Runtime rt{mach::testing_machine(6)};
  kern::AxpyCase c(3, /*materialize=*/true);  // 3 iterations, 7 devices
  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = sched::AlgorithmKind::kBlock;
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);
  EXPECT_EQ(res.total_iterations(), 3);
  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
}

TEST(OffloadFailures, RejectsHaloOnUnpartitionedArray) {
  mem::MapSpec s;
  auto a = mem::HostArray<double>::vector(32, 0.0);
  s.name = "a";
  s.binding = mem::bind_array(a);
  s.region = a.region();
  s.halo_before = 1;
  s.halo_after = 1;
  EXPECT_THROW(s.validate(), ConfigError);
}

}  // namespace
}  // namespace homp
