// Failure injection: misconfigured offloads must fail loudly with
// ConfigError/ExecutionError, never silently compute wrong schedules —
// and mid-flight faults (transient transfer/launch failures, permanent
// device loss) must be recovered bit-correctly (docs/RESILIENCE.md).

#include <gtest/gtest.h>

#include "kernels/axpy.h"
#include "kernels/case.h"
#include "kernels/sum.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

rt::LoopKernel trivial_kernel(long long n) {
  rt::LoopKernel k;
  k.name = "trivial";
  k.iterations = dist::Range::of_size(n);
  k.cost.flops_per_iter = 1.0;
  k.cost.mem_bytes_per_iter = 8.0;
  k.body = [](const dist::Range&, mem::DeviceDataEnv&) { return 0.0; };
  return k;
}

TEST(OffloadFailures, RejectsEmptyDeviceList) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(100, true);
  rt::OffloadOptions o;  // no devices
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsOutOfRangeDevice) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(100, true);
  rt::OffloadOptions o;
  o.device_ids = {0, 9};
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsDuplicateDevice) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(100, true);
  rt::OffloadOptions o;
  o.device_ids = {1, 1};
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsEmptyLoop) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(100, true);
  rt::OffloadOptions o;
  o.device_ids = {0};
  auto maps = c.maps();
  auto kernel = c.kernel();
  kernel.iterations = dist::Range(5, 5);
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsReplicatedOutputOnMultipleDevices) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(64, 0.0);
  mem::MapSpec s;
  s.name = "a";
  s.dir = mem::MapDirection::kToFrom;
  s.binding = mem::bind_array(a);
  s.region = a.region();  // FULL (no partition)
  std::vector<mem::MapSpec> maps{s};
  rt::OffloadOptions o;
  o.device_ids = {0, 1};
  auto kernel = trivial_kernel(64);
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsPinnedArrayWithDynamicScheduler) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(128, true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kDynamic;  // loop roams, data pinned
  auto maps = c.maps_v1_block();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsAlignmentCycle) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(32, 0.0);
  auto b = mem::HostArray<double>::vector(32, 0.0);
  mem::MapSpec sa, sb;
  sa.name = "a";
  sa.dir = mem::MapDirection::kTo;
  sa.binding = mem::bind_array(a);
  sa.region = a.region();
  sa.partition = {dist::DimPolicy::align("b")};
  sb = sa;
  sb.name = "b";
  sb.binding = mem::bind_array(b);
  sb.partition = {dist::DimPolicy::align("a")};
  std::vector<mem::MapSpec> maps{sa, sb};
  rt::OffloadOptions o;
  o.device_ids = {0, 1};
  auto kernel = trivial_kernel(32);
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, RejectsDanglingAlignTarget) {
  rt::Runtime rt{mach::testing_machine(1)};
  auto a = mem::HostArray<double>::vector(32, 0.0);
  mem::MapSpec s;
  s.name = "a";
  s.dir = mem::MapDirection::kTo;
  s.binding = mem::bind_array(a);
  s.region = a.region();
  s.partition = {dist::DimPolicy::align("nonexistent")};
  std::vector<mem::MapSpec> maps{s};
  rt::OffloadOptions o;
  o.device_ids = {0};
  auto kernel = trivial_kernel(32);
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, KernelEscapingFootprintThrowsExecutionError) {
  // A body reading outside its chunk's aligned footprint means the
  // distribution mapped too little data — must be a hard error.
  rt::Runtime rt{mach::testing_machine(2)};
  auto a = mem::HostArray<double>::vector(64, 1.0);
  mem::MapSpec s;
  s.name = "a";
  s.dir = mem::MapDirection::kTo;
  s.binding = mem::bind_array(a);
  s.region = a.region();
  s.partition = {dist::DimPolicy::align("loop")};
  std::vector<mem::MapSpec> maps{s};

  rt::LoopKernel k = trivial_kernel(64);
  k.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto v = env.view<double>("a");
    return v((chunk.hi + 5) % 64);  // out of the chunk's slice
  };
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  EXPECT_THROW(rt.offload(k, maps, o), ExecutionError);
}

TEST(OffloadFailures, ExecuteBodiesWithoutBodyIsRejected) {
  rt::Runtime rt{mach::testing_machine(1)};
  kern::AxpyCase c(100, /*materialize=*/false);  // no body
  rt::OffloadOptions o;
  o.device_ids = {0};
  o.execute_bodies = true;
  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ConfigError);
}

TEST(OffloadFailures, MoreDevicesThanIterationsStillCompletes) {
  rt::Runtime rt{mach::testing_machine(6)};
  kern::AxpyCase c(3, /*materialize=*/true);  // 3 iterations, 7 devices
  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = sched::AlgorithmKind::kBlock;
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);
  EXPECT_EQ(res.total_iterations(), 3);
  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
}

// ---------------------------------------------------------------------
// Mid-flight fault recovery.

long long fault_size(const std::string& name) {
  if (name == "axpy") return 1000;
  if (name == "matvec") return 64;
  if (name == "matmul") return 48;
  if (name == "stencil2d") return 40;
  if (name == "sum") return 2000;
  if (name == "bm2d") return 64;
  ADD_FAILURE() << "unknown kernel " << name;
  return 16;
}

bool run_and_verify(rt::Runtime& rt, kern::KernelCase& c,
                    const rt::OffloadOptions& o, rt::OffloadResult* out,
                    std::string* why) {
  c.init();
  auto maps = c.maps();
  auto kernel = c.kernel();
  *out = rt.offload(kernel, maps, o);
  if (auto* sum = dynamic_cast<kern::SumCase*>(&c)) {
    sum->set_result(out->reduction);
  }
  return c.verify(why);
}

const sched::AlgorithmKind kRecoveryAlgorithms[] = {
    sched::AlgorithmKind::kBlock,
    sched::AlgorithmKind::kDynamic,
    sched::AlgorithmKind::kModel2Auto,
};

class FaultRecovery : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultRecovery, TransientFaultsAreRetriedBitCorrectly) {
  const std::string name = GetParam();
  for (auto alg : kRecoveryAlgorithms) {
    rt::Runtime rt{mach::testing_machine(3)};
    auto c = kern::make_case(name, fault_size(name), /*materialize=*/true);

    rt::OffloadOptions o;
    o.device_ids = {1, 2, 3};
    o.sched.kind = alg;
    o.fault.extra.transfer_fault_rate = 0.15;
    o.fault.extra.launch_fault_rate = 0.10;
    o.fault.extra.slowdown_rate = 0.10;

    rt::OffloadResult res;
    std::string why;
    ASSERT_TRUE(run_and_verify(rt, *c, o, &res, &why))
        << name << "/" << sched::to_string(alg) << ": " << why;
    EXPECT_EQ(res.total_iterations(), c->kernel().iterations.size());
    EXPECT_FALSE(res.fault_events.empty())
        << name << ": rates this high must inject something";
    std::size_t faults = 0, retries = 0;
    for (const auto& d : res.devices) {
      faults += d.faults;
      retries += d.retries;
    }
    // Every counted fault has an event; a retry-budget quarantine adds
    // one extra (fatal) event on top.
    EXPECT_GE(res.fault_events.size(), faults);
    EXPECT_GT(retries, 0u) << name;
  }
}

TEST_P(FaultRecovery, PermanentLossIsRedistributedBitCorrectly) {
  const std::string name = GetParam();
  for (auto alg : kRecoveryAlgorithms) {
    rt::Runtime rt{mach::testing_machine(3)};
    auto c = kern::make_case(name, fault_size(name), /*materialize=*/true);

    rt::OffloadOptions o;
    o.device_ids = {1, 2, 3};
    o.sched.kind = alg;
    sim::ScriptedFault loss;
    loss.device_id = 2;
    loss.kind = sim::FaultKind::kDeviceLoss;
    loss.at_s = 2e-6;  // mid-flight for these problem sizes
    o.fault.scripted.push_back(loss);

    rt::OffloadResult res;
    std::string why;
    ASSERT_TRUE(run_and_verify(rt, *c, o, &res, &why))
        << name << "/" << sched::to_string(alg) << ": " << why;
    // Every iteration is accounted for exactly once across the survivors
    // and whatever the lost device committed before dying.
    EXPECT_EQ(res.total_iterations(), c->kernel().iterations.size());
    ASSERT_EQ(res.fault_events.size(), 1u) << name;
    EXPECT_EQ(res.fault_events[0].kind, sim::FaultKind::kDeviceLoss);
    EXPECT_TRUE(res.fault_events[0].fatal);
    EXPECT_EQ(res.fault_events[0].device_id, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, FaultRecovery,
                         ::testing::ValuesIn(kern::all_kernel_names()),
                         [](const auto& tpinfo) { return tpinfo.param; });

TEST(FaultRecovery, EarlyLossQuarantinesAndRedistributesEverything) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(2000, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  sim::ScriptedFault loss;
  loss.device_id = 2;
  loss.kind = sim::FaultKind::kDeviceLoss;
  loss.at_s = 1e-7;  // before anything can complete
  o.fault.scripted.push_back(loss);

  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);

  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
  EXPECT_TRUE(res.degraded);
  ASSERT_EQ(res.devices.size(), 2u);
  const auto& lost = res.devices[1];  // slot order follows device_ids
  const auto& survivor = res.devices[0];
  EXPECT_TRUE(lost.quarantined);
  EXPECT_DOUBLE_EQ(lost.quarantined_at, 1e-7);
  EXPECT_EQ(lost.iterations, 0);  // nothing committed before the loss
  EXPECT_GT(lost.requeued_iterations, 0);
  EXPECT_FALSE(survivor.quarantined);
  EXPECT_EQ(survivor.iterations, 2000);
  // The survivor's BLOCK partition was 1000; the rest reached it through
  // the dynamic requeue fallback.
  EXPECT_GT(res.chunks_issued, 1);
}

TEST(FaultRecovery, RetryBudgetExhaustionQuarantines) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  o.fault.max_retries = 2;
  // Script attempts 1..3 (ops 0..2) of device 2's first transfer to fail:
  // budget exhausted => quarantine, survivor picks everything up.
  for (long long op = 0; op < 3; ++op) {
    sim::ScriptedFault f;
    f.device_id = 2;
    f.kind = sim::FaultKind::kTransfer;
    f.op = op;
    o.fault.scripted.push_back(f);
  }

  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);

  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
  EXPECT_TRUE(res.degraded);
  const auto& lost = res.devices[1];
  EXPECT_TRUE(lost.quarantined);
  EXPECT_EQ(lost.retries, 2u);
  EXPECT_EQ(lost.faults, 3u);
  EXPECT_EQ(lost.iterations, 0);
  EXPECT_EQ(res.devices[0].iterations, 1000);
  // The fatal quarantine event trails the three transient ones.
  ASSERT_EQ(res.fault_events.size(), 4u);
  EXPECT_TRUE(res.fault_events.back().fatal);
}

TEST(FaultRecovery, AllDevicesLostThrowsExecutionError) {
  rt::Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(1000, /*materialize=*/true);

  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  o.fault.extra.fail_at_s = 1e-7;  // every device dies almost immediately

  auto maps = c.maps();
  auto kernel = c.kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), ExecutionError);
}

TEST(FaultRecovery, IdenticalSeedAndPlanGiveIdenticalResults) {
  auto run_once = [](std::uint64_t seed) {
    rt::Runtime rt{mach::testing_machine(3)};
    kern::AxpyCase c(2000, /*materialize=*/true);
    rt::OffloadOptions o;
    o.device_ids = {1, 2, 3};
    o.sched.kind = sched::AlgorithmKind::kDynamic;
    o.fault.seed = seed;
    o.fault.extra.transfer_fault_rate = 0.10;
    o.fault.extra.launch_fault_rate = 0.05;
    auto maps = c.maps();
    auto kernel = c.kernel();
    return rt.offload(kernel, maps, o);
  };

  const auto a = run_once(123);
  const auto b = run_once(123);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.degraded, b.degraded);
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size());
  for (std::size_t i = 0; i < a.fault_events.size(); ++i) {
    EXPECT_EQ(a.fault_events[i].time, b.fault_events[i].time);
    EXPECT_EQ(a.fault_events[i].device_id, b.fault_events[i].device_id);
    EXPECT_EQ(a.fault_events[i].kind, b.fault_events[i].kind);
  }
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].iterations, b.devices[i].iterations);
    EXPECT_EQ(a.devices[i].faults, b.devices[i].faults);
    EXPECT_EQ(a.devices[i].retries, b.devices[i].retries);
    EXPECT_EQ(a.devices[i].bytes_in, b.devices[i].bytes_in);
    EXPECT_EQ(a.devices[i].bytes_out, b.devices[i].bytes_out);
  }

  // A different seed draws a different fault trajectory (with these rates
  // the chance of an identical event sequence is negligible).
  const auto d = run_once(456);
  EXPECT_FALSE(a.fault_events.size() == d.fault_events.size() &&
               a.total_time == d.total_time);
}

TEST(FaultRecovery, FaultFreeRunMatchesNoFaultMachinery) {
  // A zero-rate fault config must not perturb the simulation at all.
  auto run_once = [](bool with_fault_struct) {
    rt::Runtime rt{mach::testing_machine(2)};
    kern::AxpyCase c(1500, /*materialize=*/true);
    rt::OffloadOptions o;
    o.device_ids = {1, 2};
    o.sched.kind = sched::AlgorithmKind::kDynamic;
    if (with_fault_struct) o.fault.seed = 999;  // differs, but rate 0
    auto maps = c.maps();
    auto kernel = c.kernel();
    return rt.offload(kernel, maps, o);
  };
  const auto a = run_once(false);
  const auto b = run_once(true);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_TRUE(a.fault_events.empty());
  EXPECT_TRUE(b.fault_events.empty());
  EXPECT_FALSE(a.degraded);
}

TEST(FaultRecovery, MachineFileFaultKeysReachTheRuntime) {
  // fault_* keys in the machine description alone (no OffloadOptions
  // fault config) must drive injection.
  auto m = mach::testing_machine(2);
  m.devices[2].fault.fail_at_s = 1e-7;
  rt::Runtime rt{std::move(m)};
  kern::AxpyCase c(1000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = {1, 2};
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);
  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why;
  EXPECT_TRUE(res.degraded);
  EXPECT_TRUE(res.devices[1].quarantined);
}

TEST(OffloadFailures, RejectsHaloOnUnpartitionedArray) {
  mem::MapSpec s;
  auto a = mem::HostArray<double>::vector(32, 0.0);
  s.name = "a";
  s.binding = mem::bind_array(a);
  s.region = a.region();
  s.halo_before = 1;
  s.halo_after = 1;
  EXPECT_THROW(s.validate(), ConfigError);
}

}  // namespace
}  // namespace homp
