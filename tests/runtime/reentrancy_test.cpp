// Runtime::offload's single-offload invariant: a second offload on the
// same Runtime while one is in flight — the classic mistake being a
// kernel body calling back into the runtime — throws ExecutionError
// instead of silently interleaving ThroughputHistory updates. Concurrent
// offloads belong to serve::OffloadServer (docs/SERVING.md).

#include <gtest/gtest.h>

#include "common/error.h"
#include "kernels/case.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

TEST(OffloadReentrancy, NestedOffloadFromKernelBodyThrows) {
  rt::Runtime runtime = rt::Runtime::from_builtin("gpu4");

  auto outer = kern::make_case("axpy", 1 << 12, /*materialize=*/true);
  auto inner = kern::make_case("axpy", 1 << 10, /*materialize=*/true);
  auto inner_kernel = inner->kernel();
  auto inner_maps = inner->maps();

  rt::OffloadOptions inner_opts;
  inner_opts.device_ids = {1};
  inner_opts.sched.kind = sched::AlgorithmKind::kBlock;

  int nested_calls = 0, nested_throws = 0;
  auto kernel = outer->kernel();
  auto real_body = kernel.body;
  kernel.body = [&](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    ++nested_calls;
    try {
      runtime.offload(inner_kernel, inner_maps, inner_opts);
    } catch (const ExecutionError&) {
      ++nested_throws;
    }
    return real_body(chunk, env);
  };

  rt::OffloadOptions o;
  o.device_ids = {1};
  o.sched.kind = sched::AlgorithmKind::kBlock;
  o.execute_bodies = true;
  auto maps = outer->maps();
  auto res = runtime.offload(kernel, maps, o);

  // Every nested attempt was refused, and the outer offload itself was
  // unharmed: it still ran every iteration and produced correct output.
  EXPECT_GT(nested_calls, 0);
  EXPECT_EQ(nested_throws, nested_calls);
  EXPECT_EQ(res.total_iterations(), 1 << 12);
  std::string why;
  EXPECT_TRUE(outer->verify(&why)) << why;

  // The guard resets once the offload returns: the runtime stays usable.
  auto again = runtime.offload(inner_kernel, inner_maps, inner_opts);
  EXPECT_EQ(again.total_iterations(), 1 << 10);
}

}  // namespace
}  // namespace homp
