// Scheduler decision audit trail, counter-track samples, per-device
// model prediction-error telemetry, and the metrics-export bridge
// (docs/OBSERVABILITY.md).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "kernels/axpy.h"
#include "kernels/case.h"
#include "machine/profiles.h"
#include "obs/metric_names.h"
#include "runtime/audit_export.h"
#include "runtime/metrics_export.h"
#include "runtime/runtime.h"

namespace homp::rt {
namespace {

OffloadResult audited_run(bool audit, bool trace) {
  Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(100'000, /*materialize=*/false);
  OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  o.execute_bodies = false;
  o.collect_audit = audit;
  o.collect_trace = trace;
  auto maps = c.maps();
  auto kernel = c.kernel();
  return rt.offload(kernel, maps, o);
}

TEST(Audit, OffByDefaultButPredictionTelemetryAlwaysOn) {
  auto res = audited_run(false, false);
  EXPECT_TRUE(res.decisions.empty());
  EXPECT_TRUE(res.counters.empty());
  // The relative-error accumulators don't depend on any flag.
  for (const auto& d : res.devices) {
    EXPECT_GT(d.prediction.model_samples, 0u);
    EXPECT_GE(d.prediction.model1_mean(), 0.0);
    EXPECT_GE(d.prediction.model2_mean(), 0.0);
    EXPECT_EQ(d.chunk_seconds.count(), d.chunks);
    EXPECT_GT(d.chunk_seconds.sum(), 0.0);
  }
}

TEST(Audit, ChunkAssignmentsCarryPredictionsAndActuals) {
  auto res = audited_run(true, false);
  EXPECT_TRUE(res.counters.empty());  // counters need collect_trace
  ASSERT_FALSE(res.decisions.empty());
  std::size_t assigned = 0;
  double last_time = 0.0;
  for (const auto& d : res.decisions) {
    EXPECT_GE(d.time, last_time);  // audit trail is time-ordered
    last_time = d.time;
    if (d.kind != DecisionKind::kChunkAssigned) continue;
    ++assigned;
    EXPECT_FALSE(d.range.empty());
    EXPECT_GT(d.predicted_model1_s, 0.0);
    EXPECT_GT(d.predicted_model2_s, d.predicted_model1_s);  // adds transfer
    // Fault-free dynamic run: every assigned chunk completes where it
    // was assigned, so actual_s is backfilled.
    EXPECT_GT(d.actual_s, 0.0);
    EXPECT_EQ(d.detail, "scheduler");
  }
  EXPECT_EQ(assigned, res.chunks_issued);
}

TEST(Audit, AssignedChunksCarryTransferBytes) {
  // chunk_bytes sizes the decision's transfer term; the advisor uses it
  // to tell transfer-dominated chunks from compute-dominated ones.
  auto res = audited_run(true, false);
  for (const auto& d : res.decisions) {
    if (d.kind != DecisionKind::kChunkAssigned) continue;
    EXPECT_GT(d.chunk_bytes, 0.0);
  }
}

TEST(Audit, JsonExportIsByteIdenticalAcrossIdenticalRuns) {
  auto render = [] {
    auto res = audited_run(true, false);
    std::ostringstream os;
    write_audit_json(res, os);
    return os.str();
  };
  const std::string doc = render();
  EXPECT_EQ(doc, render());
  // Consumers sniff artifact kind by this key (advise/session.cpp).
  EXPECT_NE(doc.find("\"homp_audit_version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"chunk_bytes\": "), std::string::npos);
}

TEST(Audit, ExportRequiresDecisions) {
  auto res = audited_run(false, false);
  std::ostringstream os;
  EXPECT_THROW(write_audit_json(res, os), ConfigError);
}

TEST(Audit, CutoffRecordsKeepAndDropWithWeights) {
  auto rt = Runtime::from_builtin("full");
  auto c = kern::make_case("matmul", 40, /*materialize=*/false);
  OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = sched::AlgorithmKind::kModel1Auto;
  o.sched.cutoff_ratio = 0.15;
  o.execute_bodies = false;
  o.collect_audit = true;
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);

  ASSERT_TRUE(res.has_cutoff);
  std::size_t kept = 0, dropped = 0;
  for (const auto& d : res.decisions) {
    if (d.kind == DecisionKind::kCutoffKept) ++kept;
    if (d.kind == DecisionKind::kCutoffDropped) {
      ++dropped;
      EXPECT_NE(d.detail.find("below the cutoff"), std::string::npos);
    }
    if (d.kind == DecisionKind::kCutoffKept ||
        d.kind == DecisionKind::kCutoffDropped) {
      EXPECT_EQ(d.time, 0.0);  // the plan predates all pipeline activity
      EXPECT_NE(d.detail.find("weight"), std::string::npos);
    }
  }
  EXPECT_EQ(kept, static_cast<std::size_t>(res.cutoff.num_selected));
  EXPECT_EQ(kept + dropped, res.devices.size());
}

TEST(Audit, QuarantineAndReadmissionAreAudited) {
  Runtime rt{mach::testing_machine(3)};
  kern::AxpyCase c(50'000, /*materialize=*/false);
  OffloadOptions o;
  o.device_ids = {1, 2, 3};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  o.execute_bodies = false;
  o.collect_audit = true;
  sim::ScriptedFault hang;
  hang.device_id = 2;
  hang.kind = sim::FaultKind::kHang;
  hang.op = 0;
  o.fault.scripted.push_back(hang);
  o.watchdog.deadline_floor_s = 1e-8;
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);

  bool quarantined = false;
  for (const auto& d : res.decisions) {
    if (d.kind == DecisionKind::kQuarantined) quarantined = true;
    if (d.kind == DecisionKind::kReadmitted) {
      EXPECT_NE(d.detail.find("probation"), std::string::npos);
    }
  }
  EXPECT_TRUE(quarantined);
}

TEST(Counters, TracksAreTimeOrderedAndMonotoneWhereExpected) {
  auto res = audited_run(false, true);  // collect_trace implies audit
  ASSERT_FALSE(res.decisions.empty());
  ASSERT_FALSE(res.counters.empty());
  double last_time = 0.0;
  std::vector<double> iters(res.devices.size(), 0.0);
  for (const auto& c : res.counters) {
    EXPECT_GE(c.time, last_time);
    last_time = c.time;
    EXPECT_GE(c.value, 0.0);  // all four tracks are non-negative
    if (c.track == CounterTrack::kIterations) {
      EXPECT_GE(c.value, iters[c.slot]);  // cumulative per device
      iters[c.slot] = c.value;
    }
  }
  // Final committed-iterations samples agree with the device stats.
  for (std::size_t s = 0; s < res.devices.size(); ++s) {
    EXPECT_DOUBLE_EQ(iters[s], double(res.devices[s].iterations));
  }
  // Outstanding bytes drain to zero by the end of the offload.
  for (auto it = res.counters.rbegin(); it != res.counters.rend(); ++it) {
    if (it->track == CounterTrack::kOutstandingBytes) {
      EXPECT_DOUBLE_EQ(it->value, 0.0);
      break;
    }
  }
}

TEST(MetricsExport, BridgesResultToRegistry) {
  auto res = audited_run(true, false);
  obs::MetricsRegistry reg;
  collect_metrics(res, reg);

  namespace names = obs::names;
  EXPECT_DOUBLE_EQ(reg.value(names::kOffloads), 1.0);
  EXPECT_DOUBLE_EQ(reg.value(names::kChunksIssued),
                   double(res.chunks_issued));
  EXPECT_DOUBLE_EQ(reg.value(names::kImbalancePct),
                   res.imbalance().percent());
  EXPECT_DOUBLE_EQ(reg.value(names::kDecisions, "kind=\"chunk-assigned\""),
                   double(res.chunks_issued));
  double chunks = 0.0;
  std::uint64_t hist_count = 0;
  for (const auto& d : res.devices) {
    const std::string dev = "device=\"" + d.device_name + "\"";
    chunks += reg.value(names::kDeviceChunks, dev);
    EXPECT_DOUBLE_EQ(reg.value(names::kDeviceIterations, dev),
                     double(d.iterations));
    const obs::Histogram* h =
        reg.find_histogram(names::kDeviceChunkSeconds, dev);
    ASSERT_NE(h, nullptr);
    hist_count += h->count();
    EXPECT_DOUBLE_EQ(reg.value(names::kModel1RelError, dev),
                     d.prediction.model1_mean());
  }
  EXPECT_DOUBLE_EQ(chunks, double(res.chunks_issued));
  EXPECT_EQ(hist_count, res.chunks_issued);
}

TEST(MetricsExport, AdvisorGaugesQualifyPredictionErrors) {
  // Sample counts and relative-error extrema ride along with the error
  // means so the offline advisor can weigh evidence strength.
  auto res = audited_run(false, false);
  obs::MetricsRegistry reg;
  collect_metrics(res, reg);
  namespace names = obs::names;
  for (const auto& d : res.devices) {
    const std::string dev = "device=\"" + d.device_name + "\"";
    EXPECT_DOUBLE_EQ(reg.value(names::kModelSamples, dev),
                     double(d.prediction.model_samples));
    EXPECT_DOUBLE_EQ(reg.value(names::kProfileSamples, dev),
                     double(d.prediction.profile_samples));
    EXPECT_DOUBLE_EQ(reg.value(names::kModel2ErrorMin, dev),
                     d.prediction.model2_err_min);
    EXPECT_DOUBLE_EQ(reg.value(names::kModel2ErrorMax, dev),
                     d.prediction.model2_err_max);
    // Samples exist in this run, so the extrema left their -1 sentinel
    // and bracket the mean.
    EXPECT_GT(d.prediction.model_samples, 0u);
    EXPECT_GE(d.prediction.model2_err_min, 0.0);
    EXPECT_LE(d.prediction.model2_err_min, d.prediction.model2_mean());
    EXPECT_GE(d.prediction.model2_err_max, d.prediction.model2_mean());
  }
}

TEST(MetricsExport, SessionAggregationAccumulatesCounters) {
  auto res = audited_run(false, false);
  obs::MetricsRegistry reg;
  collect_metrics(res, reg);
  collect_metrics(res, reg);
  namespace names = obs::names;
  EXPECT_DOUBLE_EQ(reg.value(names::kOffloads), 2.0);
  EXPECT_DOUBLE_EQ(reg.value(names::kChunksIssued),
                   2.0 * double(res.chunks_issued));
  // Gauges keep the last offload's value.
  EXPECT_DOUBLE_EQ(reg.value(names::kImbalancePct),
                   res.imbalance().percent());
}

TEST(MetricsExport, JsonIsByteIdenticalAcrossIdenticalRuns) {
  auto render = [] {
    auto res = audited_run(true, false);
    obs::MetricsRegistry reg;
    collect_metrics(res, reg);
    std::ostringstream os;
    reg.write_json(os);
    return os.str();
  };
  EXPECT_EQ(render(), render());
}

TEST(MetricsExport, FileWriterSelectsFormatBySuffix) {
  auto res = audited_run(false, false);
  write_metrics_file(res, "/tmp/homp_metrics_test.json");
  write_metrics_file(res, "/tmp/homp_metrics_test.prom");
  std::ifstream js("/tmp/homp_metrics_test.json");
  std::ifstream pr("/tmp/homp_metrics_test.prom");
  std::string jline, pline;
  std::getline(js, jline);
  std::getline(pr, pline);
  EXPECT_EQ(jline, "{");
  EXPECT_EQ(pline.rfind("# TYPE", 0), 0u);
  EXPECT_THROW(write_metrics_file(res, "/nonexistent/dir/m.json"),
               ConfigError);
}

}  // namespace
}  // namespace homp::rt
