// Offload tracing and the chrome://tracing exporter.

#include "runtime/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "kernels/axpy.h"
#include "kernels/matmul.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp::rt {
namespace {

OffloadResult traced_run(bool collect) {
  Runtime rt{mach::testing_machine(2)};
  kern::AxpyCase c(100'000, /*materialize=*/false);
  OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  o.execute_bodies = false;
  o.collect_trace = collect;
  auto maps = c.maps();
  auto kernel = c.kernel();
  return rt.offload(kernel, maps, o);
}

TEST(Trace, DisabledByDefault) {
  EXPECT_TRUE(traced_run(false).trace.empty());
}

TEST(Trace, SpansCoverEveryChunk) {
  auto res = traced_run(true);
  ASSERT_FALSE(res.trace.empty());
  std::size_t computes = 0;
  for (const auto& s : res.trace) {
    EXPECT_GE(s.t1, s.t0);
    EXPECT_LE(s.t1, res.total_time + 1e-12);
    EXPECT_GE(s.slot, 0);
    EXPECT_LT(s.slot, 2);
    if (s.phase == Phase::kCompute) ++computes;
  }
  EXPECT_EQ(computes, res.chunks_issued);
}

TEST(Trace, ComputeSpansDoNotOverlapPerDevice) {
  auto res = traced_run(true);
  for (int slot = 0; slot < 2; ++slot) {
    std::vector<std::pair<double, double>> spans;
    for (const auto& s : res.trace) {
      if (s.slot == slot && s.phase == Phase::kCompute) {
        spans.emplace_back(s.t0, s.t1);
      }
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-12)
          << "device " << slot << " computes two chunks at once";
    }
  }
}

TEST(Trace, TransfersOverlapComputeUnderDynamicChunking) {
  // The double-buffering claim made visible: some input transfer span
  // must intersect a compute span on the same device. Needs per-chunk
  // compute longer than the chunk-acquisition delay, so use matmul.
  Runtime rt{mach::testing_machine(2)};
  kern::MatMulCase c(512, /*materialize=*/false);
  OffloadOptions o;
  o.device_ids = {1, 2};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  o.execute_bodies = false;
  o.collect_trace = true;
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);
  bool overlap = false;
  for (const auto& in : res.trace) {
    if (in.phase != Phase::kCopyIn) continue;
    for (const auto& comp : res.trace) {
      if (comp.phase != Phase::kCompute || comp.slot != in.slot) continue;
      if (in.t0 < comp.t1 && comp.t0 < in.t1) overlap = true;
    }
  }
  EXPECT_TRUE(overlap);
}

TEST(Trace, ChromeJsonIsWellFormedish) {
  auto res = traced_run(true);
  std::ostringstream os;
  write_chrome_trace(res.trace, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph": "X")"), std::string::npos);
  EXPECT_NE(json.find("copy-in"), std::string::npos);
  EXPECT_NE(json.find("compute"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Balanced braces (cheap structural check).
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, FaultAndRecoveryMarkersBecomeInstantEvents) {
  // A scripted hang yields fault + watchdog instant events alongside the
  // spans when the whole result is serialized.
  Runtime rt{mach::testing_machine(3)};
  kern::AxpyCase c(50'000, /*materialize=*/false);
  OffloadOptions o;
  o.device_ids = {1, 2, 3};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  o.execute_bodies = false;
  o.collect_trace = true;
  o.watchdog.deadline_floor_s = 1e-8;
  sim::ScriptedFault hang;
  hang.device_id = 2;
  hang.kind = sim::FaultKind::kHang;
  hang.op = 0;
  o.fault.scripted.push_back(hang);
  auto maps = c.maps();
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, maps, o);
  ASSERT_FALSE(res.fault_events.empty());
  ASSERT_FALSE(res.recovery_events.empty());

  std::ostringstream os;
  write_chrome_trace(res, os);
  const std::string json = os.str();
  EXPECT_NE(json.find(R"("ph": "i")"), std::string::npos);
  EXPECT_NE(json.find(R"("cat": "fault")"), std::string::npos);
  EXPECT_NE(json.find(R"("cat": "recovery")"), std::string::npos);
  EXPECT_NE(json.find("fault: hang"), std::string::npos);
  EXPECT_NE(json.find("watchdog-fired"), std::string::npos);
  // The span-only overload stays marker-free.
  std::ostringstream spans_only;
  write_chrome_trace(res.trace, spans_only);
  EXPECT_EQ(spans_only.str().find(R"("ph": "i")"), std::string::npos);
  // Balanced braces across the mixed event stream.
  long depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, CounterTracksAndDecisionInstants) {
  auto res = traced_run(true);
  ASSERT_FALSE(res.counters.empty());
  ASSERT_FALSE(res.decisions.empty());
  std::ostringstream os;
  write_chrome_trace(res, os);
  const std::string json = os.str();
  // Counter rows carry device-qualified track names.
  EXPECT_NE(json.find(R"("ph": "C")"), std::string::npos);
  EXPECT_NE(json.find("queue depth ("), std::string::npos);
  EXPECT_NE(json.find("committed iterations ("), std::string::npos);
  // Decision instants with the prediction inputs in args.
  EXPECT_NE(json.find(R"("cat": "decision")"), std::string::npos);
  EXPECT_NE(json.find("decision: chunk-assigned"), std::string::npos);
  EXPECT_NE(json.find(R"("model1_s": )"), std::string::npos);
  EXPECT_NE(json.find(R"("actual_s": )"), std::string::npos);
  // The span-only overload stays counter- and decision-free.
  std::ostringstream spans_only;
  write_chrome_trace(res.trace, spans_only);
  EXPECT_EQ(spans_only.str().find(R"("ph": "C")"), std::string::npos);
  EXPECT_EQ(spans_only.str().find(R"("cat": "decision")"),
            std::string::npos);
}

TEST(Trace, AdversarialLabelsAreFullyEscaped) {
  // Labels carrying every JSON-hostile byte class must neither break the
  // document structure nor leak raw control characters.
  OffloadResult res;
  TraceSpan s;
  s.slot = 0;
  s.device = "dev\"\\\n\t\x01";
  s.phase = Phase::kCompute;
  s.t0 = 0.0;
  s.t1 = 1e-6;
  s.label = "quote\" backslash\\ nl\n cr\r tab\t bell\x07 esc\x1b";
  res.trace.push_back(s);
  std::ostringstream os;
  write_chrome_trace(res, os);
  const std::string json = os.str();
  // No raw control characters survive in the document.
  for (char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control byte " << int(c) << " leaked into the JSON";
  }
  EXPECT_NE(json.find("\\u0007"), std::string::npos);
  EXPECT_NE(json.find("\\u001b"), std::string::npos);
  EXPECT_NE(json.find("\\r"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  // Quotes stay balanced: every '"' is structural or escaped, so the
  // total count of unescaped quotes is even.
  long quotes = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '"' && (i == 0 || json[i - 1] != '\\')) ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0);
  // (tests/trace/run_trace_tests.py json.loads-round-trips the same
  // label set through the file writer.)
}

TEST(Trace, FileWriterValidates) {
  auto res = traced_run(false);
  EXPECT_THROW(write_chrome_trace_file(res, "/tmp/homp_trace.json"),
               ConfigError);
  res = traced_run(true);
  EXPECT_NO_THROW(write_chrome_trace_file(res, "/tmp/homp_trace.json"));
  EXPECT_THROW(write_chrome_trace_file(res, "/nonexistent/dir/x.json"),
               ConfigError);
}

}  // namespace
}  // namespace homp::rt
