// Log: pluggable sink, level filtering, HOMP_LOG_LEVEL parsing.

#include "common/log.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

namespace homp {
namespace {

/// RAII: capture log lines into a vector, restore defaults on exit.
class SinkCapture {
 public:
  SinkCapture() {
    saved_level_ = Log::level();
    Log::set_sink([this](LogLevel lvl, const std::string& msg) {
      lines_.emplace_back(lvl, msg);
    });
  }
  ~SinkCapture() {
    Log::set_sink(nullptr);
    Log::set_level(saved_level_);
  }
  const std::vector<std::pair<LogLevel, std::string>>& lines() const {
    return lines_;
  }

 private:
  LogLevel saved_level_;
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST(Log, SinkReceivesFilteredLines) {
  SinkCapture cap;
  Log::set_level(LogLevel::kInfo);
  HOMP_DEBUG << "dropped";
  HOMP_INFO << "kept " << 42;
  HOMP_ERROR << "also kept";
  ASSERT_EQ(cap.lines().size(), 2u);
  EXPECT_EQ(cap.lines()[0].first, LogLevel::kInfo);
  EXPECT_EQ(cap.lines()[0].second, "kept 42");
  EXPECT_EQ(cap.lines()[1].first, LogLevel::kError);
}

TEST(Log, OffSilencesEverything) {
  SinkCapture cap;
  Log::set_level(LogLevel::kOff);
  HOMP_ERROR << "nope";
  EXPECT_TRUE(cap.lines().empty());
}

TEST(Log, EmptySinkRestoresDefault) {
  // Only checks it doesn't crash / lines don't reach the removed sink.
  auto* captured = new std::vector<std::string>;
  Log::set_sink([captured](LogLevel, const std::string& m) {
    captured->push_back(m);
  });
  Log::set_sink(nullptr);
  const LogLevel saved = Log::level();
  Log::set_level(LogLevel::kOff);  // keep stderr clean
  HOMP_ERROR << "to stderr path";
  Log::set_level(saved);
  EXPECT_TRUE(captured->empty());
  delete captured;
}

TEST(Log, ParseAcceptsAllLevelsCaseInsensitively) {
  LogLevel lvl = LogLevel::kWarn;
  EXPECT_TRUE(Log::parse("debug", &lvl));
  EXPECT_EQ(lvl, LogLevel::kDebug);
  EXPECT_TRUE(Log::parse("INFO", &lvl));
  EXPECT_EQ(lvl, LogLevel::kInfo);
  EXPECT_TRUE(Log::parse("Warn", &lvl));
  EXPECT_EQ(lvl, LogLevel::kWarn);
  EXPECT_TRUE(Log::parse("warning", &lvl));
  EXPECT_EQ(lvl, LogLevel::kWarn);
  EXPECT_TRUE(Log::parse("ERROR", &lvl));
  EXPECT_EQ(lvl, LogLevel::kError);
  EXPECT_TRUE(Log::parse("off", &lvl));
  EXPECT_EQ(lvl, LogLevel::kOff);
}

TEST(Log, ParseRejectsGarbageWithoutTouchingOutput) {
  LogLevel lvl = LogLevel::kError;
  EXPECT_FALSE(Log::parse("", &lvl));
  EXPECT_FALSE(Log::parse("verbose", &lvl));
  EXPECT_FALSE(Log::parse("warn ", &lvl));
  EXPECT_EQ(lvl, LogLevel::kError);
}

TEST(Log, InitFromEnvAppliesValidValuesAndIgnoresGarbage) {
  const LogLevel saved = Log::level();
  ::setenv("HOMP_LOG_LEVEL", "debug", 1);
  Log::init_from_env();
  EXPECT_EQ(Log::level(), LogLevel::kDebug);
  ::setenv("HOMP_LOG_LEVEL", "nonsense", 1);
  Log::init_from_env();
  EXPECT_EQ(Log::level(), LogLevel::kDebug);  // typo keeps current level
  ::unsetenv("HOMP_LOG_LEVEL");
  Log::init_from_env();  // absent variable: no change
  EXPECT_EQ(Log::level(), LogLevel::kDebug);
  Log::set_level(saved);
}

}  // namespace
}  // namespace homp
