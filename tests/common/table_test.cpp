#include "common/table.h"

#include <gtest/gtest.h>

namespace homp {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "ms"});
  t.row().cell("axpy").cell(12.345, 1);
  t.row().cell("mm").cell(3.0, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("12.3"), std::string::npos);
  // Column alignment: both data rows start their second column at the
  // same offset.
  auto lines_at = [&](int n) {
    std::size_t pos = 0;
    for (int i = 0; i < n; ++i) pos = s.find('\n', pos) + 1;
    return s.substr(pos, s.find('\n', pos) - pos);
  };
  const std::string r1 = lines_at(2);
  const std::string r2 = lines_at(3);
  EXPECT_EQ(r1.find("12.3"), r2.find("3.0"));
}

TEST(TextTable, NumericFormatting) {
  TextTable t({"a", "b", "c"});
  t.row().cell(static_cast<long long>(-7)).cell(std::size_t{42}).cell(0.5, 3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("-7"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("0.500"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TextTable, ShortRowsAreTolerated) {
  TextTable t({"x", "y"});
  t.row().cell("only-one");
  EXPECT_NO_THROW(t.to_string());
}

}  // namespace
}  // namespace homp
