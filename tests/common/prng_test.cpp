#include "common/prng.h"

#include <gtest/gtest.h>

namespace homp {
namespace {

TEST(Prng, DeterministicGivenSeed) {
  Prng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Prng a2(123);
  for (int i = 0; i < 10; ++i) {
    if (a2.next_u64() != c.next_u64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Prng, DoublesInUnitInterval) {
  Prng p(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = p.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Prng, UniformRespectsBounds) {
  Prng p(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = p.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Prng, BelowIsInRange) {
  Prng p(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(p.below(17), 17u);
  }
}

TEST(Prng, GaussianHasSaneMoments) {
  Prng p(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = p.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

}  // namespace
}  // namespace homp
