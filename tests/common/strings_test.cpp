#include "common/strings.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a, b ,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitTopLevelRespectsNesting) {
  EXPECT_EQ(split_top_level("x[0:n] partition([BLOCK]), a, n", ','),
            (std::vector<std::string>{"x[0:n] partition([BLOCK])", "a", "n"}));
  EXPECT_EQ(split_top_level("ALIGN(a,b), FULL", ','),
            (std::vector<std::string>{"ALIGN(a,b)", "FULL"}));
  EXPECT_EQ(split_top_level("f(g(x,y),z)", ','),
            (std::vector<std::string>{"f(g(x,y),z)"}));
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("BLOCK", "block"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("block", "bloc"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(Strings, ParseScaledInt) {
  EXPECT_EQ(parse_scaled_int("42"), 42);
  EXPECT_EQ(parse_scaled_int("48k"), 48000);
  EXPECT_EQ(parse_scaled_int("10M"), 10'000'000);
  EXPECT_EQ(parse_scaled_int("2G"), 2'000'000'000);
  EXPECT_EQ(parse_scaled_int(" 300M "), 300'000'000);
  EXPECT_THROW(parse_scaled_int(""), ConfigError);
  EXPECT_THROW(parse_scaled_int("k"), ConfigError);
  EXPECT_THROW(parse_scaled_int("12x"), ConfigError);
  EXPECT_THROW(parse_scaled_int("-5"), ConfigError);
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024), "3.00 MiB");
}

TEST(Strings, FormatSeconds) {
  EXPECT_EQ(format_seconds(2.5e-9), "2.5 ns");
  EXPECT_EQ(format_seconds(12.3e-6), "12.30 us");
  EXPECT_EQ(format_seconds(4.56e-3), "4.560 ms");
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
}

}  // namespace
}  // namespace homp
