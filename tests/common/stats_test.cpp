#include "common/stats.h"

#include <gtest/gtest.h>

namespace homp {
namespace {

TEST(Accumulator, WelfordMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_NEAR(a.mean(), 5.0, 1e-12);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.sum(), 40.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Imbalance, PerfectBalanceIsZero) {
  auto im = imbalance_of({3.0, 3.0, 3.0});
  EXPECT_EQ(im.fraction(), 0.0);
}

TEST(Imbalance, MatchesDefinition) {
  // max 10, mean 7.5 -> (10-7.5)/10 = 25%.
  auto im = imbalance_of({5.0, 10.0});
  EXPECT_NEAR(im.percent(), 25.0, 1e-12);
}

TEST(Imbalance, EmptyIsZero) {
  EXPECT_EQ(imbalance_of({}).fraction(), 0.0);
}

TEST(Geomean, Basics) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({5.0}), 5.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
  // Non-positive entries are skipped.
  EXPECT_NEAR(geomean({0.0, 4.0}), 4.0, 1e-12);
}

TEST(Percentile, LinearInterpolationBetweenClosestRanks) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_NEAR(percentile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 100.0), 4.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 50.0), 2.5, 1e-12);
  EXPECT_NEAR(percentile(xs, 25.0), 1.75, 1e-12);
  EXPECT_NEAR(percentile({7.0}, 99.0), 7.0, 1e-12);
}

TEST(Percentile, ClampsAndHandlesEmpty) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_NEAR(percentile({1.0, 2.0}, -10.0), 1.0, 1e-12);
  EXPECT_NEAR(percentile({1.0, 2.0}, 250.0), 2.0, 1e-12);
}

TEST(Percentile, SingleElementIsEveryPercentile) {
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_NEAR(percentile({3.25}, p), 3.25, 1e-12) << "p=" << p;
  }
}

TEST(Percentile, AllEqualInputIsFlat) {
  const std::vector<double> xs{6.0, 6.0, 6.0, 6.0, 6.0};
  for (double p : {0.0, 10.0, 50.0, 90.0, 100.0}) {
    EXPECT_NEAR(percentile(xs, p), 6.0, 1e-12) << "p=" << p;
  }
}

TEST(Percentile, ExtremesAreMinAndMax) {
  const std::vector<double> xs{9.0, -2.0, 4.5, 0.0};
  EXPECT_NEAR(percentile(xs, 0.0), -2.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 100.0), 9.0, 1e-12);
}

TEST(Geomean, AllEqualAndSingleElement) {
  EXPECT_NEAR(geomean({3.0, 3.0, 3.0}), 3.0, 1e-12);
  EXPECT_NEAR(geomean({1e-9}), 1e-9, 1e-21);
}

TEST(Geomean, OnlyNonPositiveEntriesYieldsZero) {
  // Every entry skipped leaves nothing to average.
  EXPECT_EQ(geomean({0.0, -1.0, -5.0}), 0.0);
}

TEST(Geomean, NegativeEntriesAreSkippedNotAbsorbed) {
  EXPECT_NEAR(geomean({-2.0, 2.0, 8.0}), 4.0, 1e-12);
}

}  // namespace
}  // namespace homp
