// The shipped machines/*.ini files must load and agree with the built-in
// profiles they document.

#include <gtest/gtest.h>

#include <fstream>

#include "machine/parser.h"
#include "machine/profiles.h"

namespace homp::mach {
namespace {

std::string repo_machine_path(const std::string& name) {
  // Tests run from the build tree; the files live in <repo>/machines.
  for (const char* prefix : {"machines/", "../machines/", "../../machines/",
                             "../../../machines/"}) {
    const std::string p = prefix + name + ".ini";
    if (std::ifstream(p).good()) return p;
  }
  return {};
}

class MachineFiles : public ::testing::TestWithParam<std::string> {};

TEST_P(MachineFiles, LoadsAndMatchesBuiltin) {
  const std::string path = repo_machine_path(GetParam());
  if (path.empty()) GTEST_SKIP() << "machines/ not found from cwd";
  auto from_file = load_machine_file(path);
  auto builtin_m = builtin(GetParam());
  ASSERT_EQ(from_file.devices.size(), builtin_m.devices.size());
  ASSERT_EQ(from_file.links.size(), builtin_m.links.size());
  for (std::size_t i = 0; i < from_file.devices.size(); ++i) {
    const auto& a = from_file.devices[i];
    const auto& b = builtin_m.devices[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.memory, b.memory);
    EXPECT_EQ(a.link, b.link);
    EXPECT_NEAR(a.peak_gflops, b.peak_gflops, 1e-6);
    EXPECT_NEAR(a.sustained_gflops, b.sustained_gflops, 1e-6);
    EXPECT_NEAR(a.launch_overhead_s, b.launch_overhead_s, 1e-12);
    EXPECT_NEAR(a.noise, b.noise, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Shipped, MachineFiles,
                         ::testing::Values("host-only", "gpu4", "cpu-mic",
                                           "full"),
                         [](const auto& tpinfo) {
                           std::string s = tpinfo.param;
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST(MachineFiles, FaultySampleLoadsWithFaultProfiles) {
  // gpu4-faulty.ini has no builtin counterpart; it documents the fault_*
  // keys (docs/RESILIENCE.md) on gpu4 hardware.
  const std::string path = repo_machine_path("gpu4-faulty");
  if (path.empty()) GTEST_SKIP() << "machines/ not found from cwd";
  auto m = load_machine_file(path);
  ASSERT_EQ(m.devices.size(), 5u);
  EXPECT_FALSE(m.devices[0].fault.any());  // host is clean
  EXPECT_FALSE(m.devices[1].fault.any());  // K40-0 is clean
  EXPECT_DOUBLE_EQ(m.devices[2].fault.transfer_fault_rate, 0.01);
  EXPECT_DOUBLE_EQ(m.devices[2].fault.launch_fault_rate, 0.005);
  EXPECT_DOUBLE_EQ(m.devices[3].fault.slowdown_rate, 0.05);
  EXPECT_DOUBLE_EQ(m.devices[3].fault.slowdown_factor, 4.0);
  EXPECT_DOUBLE_EQ(m.devices[4].fault.fail_at_s, 0.1);
}

}  // namespace
}  // namespace homp::mach
