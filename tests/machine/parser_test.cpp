#include "machine/parser.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "machine/profiles.h"

namespace homp::mach {
namespace {

constexpr const char* kSample = R"(
# A two-device machine.
[machine]
name = sample

[link pcie0]
latency_us = 10
bandwidth_GBps = 12

[device gpu0]
type = nvgpu
memory = discrete
link = pcie0
peak_gflops = 1430
sustained_gflops = 1100
peak_membw_GBps = 288
sustained_membw_GBps = 210
launch_overhead_us = 15
noise = 0.01

[device cpu]
type = host
memory = shared
link = none
peak_gflops = 1000
sustained_gflops = 800
peak_membw_GBps = 100
sustained_membw_GBps = 90
)";

TEST(MachineParser, ParsesSample) {
  auto m = parse_machine(kSample);
  EXPECT_EQ(m.name, "sample");
  ASSERT_EQ(m.devices.size(), 2u);
  // Host is reordered first regardless of file order.
  EXPECT_EQ(m.devices[0].name, "cpu");
  EXPECT_TRUE(m.devices[0].is_host());
  EXPECT_EQ(m.devices[1].name, "gpu0");
  EXPECT_EQ(m.devices[1].link, 0);
  EXPECT_NEAR(m.links[0].latency_s, 10e-6, 1e-12);
  EXPECT_NEAR(m.links[0].bandwidth_Bps, 12e9, 1.0);
  EXPECT_NEAR(m.devices[1].launch_overhead_s, 15e-6, 1e-12);
}

TEST(MachineParser, RoundTripsThroughText) {
  for (const auto& name : builtin_machine_names()) {
    auto m = builtin(name);
    auto m2 = parse_machine(to_text(m));
    ASSERT_EQ(m2.devices.size(), m.devices.size()) << name;
    for (std::size_t i = 0; i < m.devices.size(); ++i) {
      EXPECT_EQ(m2.devices[i].name, m.devices[i].name);
      EXPECT_EQ(m2.devices[i].type, m.devices[i].type);
      EXPECT_EQ(m2.devices[i].link, m.devices[i].link);
      EXPECT_NEAR(m2.devices[i].sustained_gflops,
                  m.devices[i].sustained_gflops, 1e-9);
      EXPECT_NEAR(m2.devices[i].alloc_overhead_s,
                  m.devices[i].alloc_overhead_s, 1e-15);
    }
    ASSERT_EQ(m2.links.size(), m.links.size());
  }
}

TEST(MachineParser, DiagnosesLineNumbers) {
  try {
    parse_machine("[machine]\nname = x\nbogus line without equals\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(MachineParser, RejectsUnknownSection) {
  EXPECT_THROW(parse_machine("[gadget g]\nfoo = 1\n"), ConfigError);
}

TEST(MachineParser, RejectsDuplicateKey) {
  EXPECT_THROW(parse_machine("[machine]\nname = a\nname = b\n"), ConfigError);
}

TEST(MachineParser, RejectsUnknownLinkReference) {
  EXPECT_THROW(parse_machine(R"(
[device g]
type = nvgpu
memory = discrete
link = missing
peak_gflops = 10
sustained_gflops = 5
peak_membw_GBps = 10
sustained_membw_GBps = 5
)"),
               ConfigError);
}

TEST(MachineParser, RejectsMissingRequiredKey) {
  EXPECT_THROW(parse_machine(R"(
[device h]
type = host
memory = shared
link = none
peak_gflops = 10
)"),
               ConfigError);
}

TEST(MachineParser, RejectsNonNumericValue) {
  EXPECT_THROW(parse_machine(R"(
[link l]
latency_us = fast
bandwidth_GBps = 12
)"),
               ConfigError);
}

TEST(MachineParser, FileNotFoundThrows) {
  EXPECT_THROW(load_machine_file("/nonexistent/machine.ini"), ConfigError);
}

TEST(MachineParser, RejectsTrailingGarbageAfterNumber) {
  // "12 GB/s" silently parsed as 12 before; now a diagnostic naming the
  // line and the key.
  try {
    parse_machine("[link l]\nlatency_us = 10\nbandwidth_GBps = 12 GB/s\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bandwidth_GBps"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("trailing"), std::string::npos) << msg;
  }
}

TEST(MachineParser, ParsesFaultKeys) {
  auto m = parse_machine(R"(
[device g]
type = host
memory = shared
link = none
peak_gflops = 10
sustained_gflops = 5
peak_membw_GBps = 10
sustained_membw_GBps = 5
fault_transfer_rate = 0.01
fault_launch_rate = 0.02
fault_slowdown_rate = 0.03
fault_slowdown_factor = 5
fault_fail_at_s = 1.5
)");
  ASSERT_EQ(m.devices.size(), 1u);
  const auto& f = m.devices[0].fault;
  EXPECT_DOUBLE_EQ(f.transfer_fault_rate, 0.01);
  EXPECT_DOUBLE_EQ(f.launch_fault_rate, 0.02);
  EXPECT_DOUBLE_EQ(f.slowdown_rate, 0.03);
  EXPECT_DOUBLE_EQ(f.slowdown_factor, 5.0);
  EXPECT_DOUBLE_EQ(f.fail_at_s, 1.5);
  EXPECT_TRUE(f.any());

  // Fault keys survive the to_text round trip.
  auto m2 = parse_machine(to_text(m));
  EXPECT_DOUBLE_EQ(m2.devices[0].fault.transfer_fault_rate, 0.01);
  EXPECT_DOUBLE_EQ(m2.devices[0].fault.fail_at_s, 1.5);
}

TEST(MachineParser, RejectsOutOfRangeFaultRate) {
  EXPECT_THROW(parse_machine(R"(
[device g]
type = host
memory = shared
link = none
peak_gflops = 10
sustained_gflops = 5
peak_membw_GBps = 10
sustained_membw_GBps = 5
fault_transfer_rate = 1.5
)"),
               ConfigError);
}

TEST(MachineParser, ParsesHangAndDegradeKeys) {
  auto m = parse_machine(R"(
[device g]
type = host
memory = shared
link = none
peak_gflops = 10
sustained_gflops = 5
peak_membw_GBps = 10
sustained_membw_GBps = 5
fault_hang_rate = 0.01
fault_degrade_rate = 0.02
fault_degrade_factor = 12
)");
  ASSERT_EQ(m.devices.size(), 1u);
  const auto& f = m.devices[0].fault;
  EXPECT_DOUBLE_EQ(f.hang_rate, 0.01);
  EXPECT_DOUBLE_EQ(f.degrade_rate, 0.02);
  EXPECT_DOUBLE_EQ(f.degrade_factor, 12.0);
  EXPECT_TRUE(f.any());

  // The new keys survive the to_text round trip.
  auto m2 = parse_machine(to_text(m));
  EXPECT_DOUBLE_EQ(m2.devices[0].fault.hang_rate, 0.01);
  EXPECT_DOUBLE_EQ(m2.devices[0].fault.degrade_rate, 0.02);
  EXPECT_DOUBLE_EQ(m2.devices[0].fault.degrade_factor, 12.0);
}

/// One valid device section; the caller appends one bad fault_* line.
std::string device_with(const std::string& extra_line) {
  return std::string(R"(
[device g]
type = host
memory = shared
link = none
peak_gflops = 10
sustained_gflops = 5
peak_membw_GBps = 10
sustained_membw_GBps = 5
)") + extra_line + "\n";
}

TEST(MachineParser, BadFaultValueNamesTheLineAndKey) {
  // The bad key sits on line 10 of the synthesized text (leading newline
  // counts as line 1).
  struct Case {
    const char* line;
    const char* key;
  } cases[] = {
      {"fault_hang_rate = 1.0", "fault_hang_rate"},
      {"fault_hang_rate = -0.5", "fault_hang_rate"},
      {"fault_degrade_rate = 2", "fault_degrade_rate"},
      {"fault_degrade_factor = 0.5", "fault_degrade_factor"},
      {"fault_slowdown_factor = 0", "fault_slowdown_factor"},
      {"fault_fail_at_s = -2", "fault_fail_at_s"},
  };
  for (const auto& c : cases) {
    try {
      parse_machine(device_with(c.line));
      FAIL() << c.line << " was accepted";
    } catch (const ConfigError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("line 10"), std::string::npos)
          << c.line << ": " << msg;
      EXPECT_NE(msg.find(std::string("'") + c.key + "'"), std::string::npos)
          << c.line << ": " << msg;
    }
  }
}

TEST(MachineParser, ParsesCorruptionKeys) {
  auto m = parse_machine(R"(
[device g]
type = host
memory = shared
link = none
peak_gflops = 10
sustained_gflops = 5
peak_membw_GBps = 10
sustained_membw_GBps = 5
fault_corrupt_transfer_rate = 0.01
fault_corrupt_compute_rate = 0.02
)");
  ASSERT_EQ(m.devices.size(), 1u);
  const auto& f = m.devices[0].fault;
  EXPECT_DOUBLE_EQ(f.corrupt_transfer_rate, 0.01);
  EXPECT_DOUBLE_EQ(f.corrupt_compute_rate, 0.02);
  EXPECT_TRUE(f.any());

  // The corruption keys survive the to_text round trip.
  auto m2 = parse_machine(to_text(m));
  EXPECT_DOUBLE_EQ(m2.devices[0].fault.corrupt_transfer_rate, 0.01);
  EXPECT_DOUBLE_EQ(m2.devices[0].fault.corrupt_compute_rate, 0.02);
}

TEST(MachineParser, BadCorruptionRateNamesTheLineAndKey) {
  struct Case {
    const char* line;
    const char* key;
  } cases[] = {
      {"fault_corrupt_transfer_rate = 1.0", "fault_corrupt_transfer_rate"},
      {"fault_corrupt_transfer_rate = -0.5", "fault_corrupt_transfer_rate"},
      {"fault_corrupt_compute_rate = 2", "fault_corrupt_compute_rate"},
  };
  for (const auto& c : cases) {
    try {
      parse_machine(device_with(c.line));
      FAIL() << c.line << " was accepted";
    } catch (const ConfigError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("line 10"), std::string::npos)
          << c.line << ": " << msg;
      EXPECT_NE(msg.find(std::string("'") + c.key + "'"), std::string::npos)
          << c.line << ": " << msg;
    }
  }
}

TEST(MachineParser, DuplicateFaultKeyNamesTheLine) {
  // A repeated key inside one section would silently drop one of the two
  // values — reject it at the exact line of the second occurrence.
  try {
    parse_machine(device_with("fault_corrupt_transfer_rate = 0.01\n"
                              "fault_corrupt_transfer_rate = 0.02"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("duplicate key"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'fault_corrupt_transfer_rate'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("line 11"), std::string::npos) << msg;
  }
}

TEST(MachineParser, DuplicateSectionNamesBothLines) {
  try {
    parse_machine(device_with("fault_corrupt_compute_rate = 0.01") +
                  device_with("fault_corrupt_compute_rate = 0.02"));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("duplicate section"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[device g]"), std::string::npos) << msg;
    // The second [device g] header sits on line 12 (the two texts join
    // at the newline); the first was declared at line 2.
    EXPECT_NE(msg.find("line 12"), std::string::npos) << msg;
    EXPECT_NE(msg.find("first declared at line 2"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace homp::mach
