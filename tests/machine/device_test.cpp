#include "machine/device.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::mach {
namespace {

TEST(DeviceType, RoundTripsThroughStrings) {
  EXPECT_EQ(device_type_from_string("host"), DeviceType::kHost);
  EXPECT_EQ(device_type_from_string("NVGPU"), DeviceType::kNvGpu);
  EXPECT_EQ(device_type_from_string("mic"), DeviceType::kMic);
  // Paper-style constants.
  EXPECT_EQ(device_type_from_string("HOMP_DEVICE_NVGPU"), DeviceType::kNvGpu);
  EXPECT_EQ(device_type_from_string("HOMP_DEVICE_ITLMIC"), DeviceType::kMic);
  EXPECT_THROW(device_type_from_string("fpga"), ConfigError);
  for (auto t : {DeviceType::kHost, DeviceType::kNvGpu, DeviceType::kMic}) {
    EXPECT_EQ(device_type_from_string(to_string(t)), t);
  }
}

TEST(MemorySpace, Parses) {
  EXPECT_EQ(memory_space_from_string("shared"), MemorySpace::kShared);
  EXPECT_EQ(memory_space_from_string("DISCRETE"), MemorySpace::kDiscrete);
  EXPECT_THROW(memory_space_from_string("unified"), ConfigError);
}

DeviceDescriptor valid_host() {
  DeviceDescriptor d;
  d.name = std::string("h");
  d.type = DeviceType::kHost;
  d.memory = MemorySpace::kShared;
  d.link = kNoLink;
  d.peak_gflops = 100;
  d.sustained_gflops = 80;
  d.peak_membw_GBps = 50;
  d.sustained_membw_GBps = 40;
  return d;
}

TEST(MachineValidate, RequiresHostFirst) {
  MachineDescriptor m;
  EXPECT_THROW(m.validate(), ConfigError);  // empty

  m.devices.push_back(valid_host());
  m.devices[0].type = DeviceType::kNvGpu;
  m.devices[0].memory = MemorySpace::kDiscrete;
  m.links.push_back({"l", 1e-6, 1e9});
  m.devices[0].link = 0;
  EXPECT_THROW(m.validate(), ConfigError);  // no host
}

TEST(MachineValidate, RejectsDiscreteWithoutLink) {
  MachineDescriptor m;
  m.devices.push_back(valid_host());
  auto d = valid_host();
  d.name = std::string("g");
  d.type = DeviceType::kNvGpu;
  d.memory = MemorySpace::kDiscrete;
  d.link = kNoLink;
  m.devices.push_back(d);
  EXPECT_THROW(m.validate(), ConfigError);
}

TEST(MachineValidate, RejectsPeakBelowSustained) {
  MachineDescriptor m;
  m.devices.push_back(valid_host());
  m.devices[0].sustained_gflops = 200;  // above peak 100
  EXPECT_THROW(m.validate(), ConfigError);
}

TEST(MachineValidate, RejectsTwoHosts) {
  MachineDescriptor m;
  m.devices.push_back(valid_host());
  m.devices.push_back(valid_host());
  EXPECT_THROW(m.validate(), ConfigError);
}

TEST(Machine, DevicesOfType) {
  MachineDescriptor m;
  m.devices.push_back(valid_host());
  m.links.push_back({"l", 1e-6, 1e9});
  for (int i = 0; i < 2; ++i) {
    auto d = valid_host();
    d.name = std::string("g") + std::to_string(i);
    d.type = DeviceType::kNvGpu;
    d.memory = MemorySpace::kDiscrete;
    d.link = 0;
    m.devices.push_back(d);
  }
  m.validate();
  EXPECT_EQ(m.devices_of_type(DeviceType::kNvGpu),
            (std::vector<int>{1, 2}));
  EXPECT_EQ(m.devices_of_type(DeviceType::kHost), (std::vector<int>{0}));
  EXPECT_TRUE(m.devices_of_type(DeviceType::kMic).empty());
  EXPECT_EQ(m.host().name, "h");
}

}  // namespace
}  // namespace homp::mach
