#include "machine/profiles.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::mach {
namespace {

TEST(Profiles, AllBuiltinsValidate) {
  for (const auto& name : builtin_machine_names()) {
    auto m = builtin(name);  // validate() runs inside
    EXPECT_EQ(m.name, name);
    EXPECT_TRUE(m.devices.front().is_host());
  }
  EXPECT_THROW(builtin("quantum"), ConfigError);
}

TEST(Profiles, Gpu4MatchesPaperTopology) {
  auto m = builtin("gpu4");
  // 1 host + 4 K40s in 2 K80 cards sharing 2 PCIe links.
  ASSERT_EQ(m.devices.size(), 5u);
  ASSERT_EQ(m.links.size(), 2u);
  EXPECT_EQ(m.devices[1].link, m.devices[2].link);
  EXPECT_EQ(m.devices[3].link, m.devices[4].link);
  EXPECT_NE(m.devices[1].link, m.devices[3].link);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(m.devices[i].type, DeviceType::kNvGpu);
    EXPECT_EQ(m.devices[i].memory, MemorySpace::kDiscrete);
  }
}

TEST(Profiles, FullMachineHasSevenDevices) {
  auto m = builtin("full");
  // The paper's CUTOFF accounting: 7 devices (host counts once).
  EXPECT_EQ(m.devices.size(), 7u);
  EXPECT_EQ(m.devices_of_type(DeviceType::kNvGpu).size(), 4u);
  EXPECT_EQ(m.devices_of_type(DeviceType::kMic).size(), 2u);
}

TEST(Profiles, MicHasHigherLaunchOverheadThanGpu) {
  auto m = builtin("full");
  const auto gpus = m.devices_of_type(DeviceType::kNvGpu);
  const auto mics = m.devices_of_type(DeviceType::kMic);
  EXPECT_GT(m.devices[mics[0]].launch_overhead_s,
            m.devices[gpus[0]].launch_overhead_s);
  // And a slower PCIe link (KNC offload era).
  EXPECT_LT(m.links[m.devices[mics[0]].link].bandwidth_Bps,
            m.links[m.devices[gpus[0]].link].bandwidth_Bps);
}

TEST(Profiles, TestingMachineIsIdealized) {
  auto m = testing_machine(3);
  ASSERT_EQ(m.devices.size(), 4u);
  for (const auto& d : m.devices) {
    EXPECT_EQ(d.noise, 0.0);
    EXPECT_EQ(d.launch_overhead_s, 0.0);
    EXPECT_EQ(d.peak_gflops, d.sustained_gflops);
  }
  // Separate links by default, one shared link on request.
  EXPECT_EQ(m.links.size(), 3u);
  EXPECT_EQ(testing_machine(3, /*shared_link=*/true).links.size(), 1u);
  EXPECT_THROW(testing_machine(-1), ConfigError);
}

}  // namespace
}  // namespace homp::mach
