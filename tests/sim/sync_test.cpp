#include "sim/sync.h"

#include <gtest/gtest.h>

namespace homp::sim {
namespace {

TEST(Latch, OpensAfterCountDowns) {
  Engine e;
  Latch latch(e, 3);
  bool released = false;
  latch.wait([&] { released = true; });
  latch.count_down();
  latch.count_down();
  e.run();
  EXPECT_FALSE(released);
  latch.count_down();
  e.run();
  EXPECT_TRUE(released);
}

TEST(Latch, WaitAfterOpenFiresImmediately) {
  Engine e;
  Latch latch(e, 1);
  latch.count_down();
  bool released = false;
  latch.wait([&] { released = true; });
  e.run();
  EXPECT_TRUE(released);
}

TEST(Barrier, ReleasesAllOnLastArrival) {
  Engine e;
  Barrier b(e, 3);
  int released = 0;
  e.schedule_at(1.0, [&] { b.arrive([&] { ++released; }); });
  e.schedule_at(2.0, [&] { b.arrive([&] { ++released; }); });
  e.schedule_at(5.0, [&] { b.arrive([&] { ++released; }); });
  e.run();
  EXPECT_EQ(released, 3);
  // Wait accounting: (5-1) + (5-2) + 0 = 7.
  EXPECT_NEAR(b.total_wait_time(), 7.0, 1e-12);
  ASSERT_EQ(b.last_generation_arrivals().size(), 3u);
  EXPECT_EQ(b.generations(), 1u);
}

TEST(Barrier, IsCyclic) {
  Engine e;
  Barrier b(e, 2);
  int released = 0;
  auto arrive_pair = [&](double t1, double t2) {
    e.schedule_at(t1, [&] { b.arrive([&] { ++released; }); });
    e.schedule_at(t2, [&] { b.arrive([&] { ++released; }); });
  };
  arrive_pair(1.0, 2.0);
  arrive_pair(3.0, 4.0);
  e.run();
  EXPECT_EQ(released, 4);
  EXPECT_EQ(b.generations(), 2u);
}

}  // namespace
}  // namespace homp::sim
