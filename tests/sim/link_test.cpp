#include "sim/link.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::sim {
namespace {

TEST(SharedLink, UncontendedTransferFollowsHockney) {
  Engine e;
  SharedLink link(e, "l", /*latency=*/1e-6, /*bw=*/1e9);
  double done_at = -1.0;
  link.transfer(1e6, [&] { done_at = e.now(); });
  e.run();
  // alpha + bytes/beta = 1us + 1ms.
  EXPECT_NEAR(done_at, 1e-6 + 1e-3, 1e-12);
  EXPECT_EQ(link.transfers_completed(), 1u);
  EXPECT_NEAR(link.bytes_delivered(), 1e6, 1.0);
}

TEST(SharedLink, TwoEqualTransfersShareBandwidth) {
  Engine e;
  SharedLink link(e, "l", 0.0, 1e9);
  double t1 = -1, t2 = -1;
  link.transfer(1e6, [&] { t1 = e.now(); });
  link.transfer(1e6, [&] { t2 = e.now(); });
  e.run();
  // Both get beta/2: each takes 2 ms, finishing together.
  EXPECT_NEAR(t1, 2e-3, 1e-9);
  EXPECT_NEAR(t2, 2e-3, 1e-9);
}

TEST(SharedLink, SmallTransferFinishesFirstThenBigSpeedsUp) {
  Engine e;
  SharedLink link(e, "l", 0.0, 1e9);
  double t_small = -1, t_big = -1;
  link.transfer(1e6, [&] { t_small = e.now(); });
  link.transfer(3e6, [&] { t_big = e.now(); });
  e.run();
  // Shared until small is done: small moves at 0.5 GB/s -> 2 ms.
  // Big then has 2e6 left at full rate -> 2 ms + 2 ms = 4 ms
  // (= total bytes / beta, a property of processor sharing).
  EXPECT_NEAR(t_small, 2e-3, 1e-9);
  EXPECT_NEAR(t_big, 4e-3, 1e-9);
}

TEST(SharedLink, LateArrivalSharesRemainingBandwidth) {
  Engine e;
  SharedLink link(e, "l", 0.0, 1e9);
  double t1 = -1, t2 = -1;
  link.transfer(2e6, [&] { t1 = e.now(); });
  e.schedule_at(1e-3, [&] { link.transfer(1e6, [&] { t2 = e.now(); }); });
  e.run();
  // First: 1 ms alone (1e6 done), then shares; both have 1e6 left at
  // 0.5 GB/s -> 2 more ms. Both finish at 3 ms.
  EXPECT_NEAR(t1, 3e-3, 1e-9);
  EXPECT_NEAR(t2, 3e-3, 1e-9);
}

TEST(SharedLink, ZeroByteTransferPaysOnlyLatency) {
  Engine e;
  SharedLink link(e, "l", 5e-6, 1e9);
  double t = -1;
  link.transfer(0.0, [&] { t = e.now(); });
  e.run();
  EXPECT_NEAR(t, 5e-6, 1e-12);
}

TEST(SharedLink, CompletionCallbackCanStartNextTransfer) {
  Engine e;
  SharedLink link(e, "l", 0.0, 1e9);
  double t = -1;
  link.transfer(1e6, [&] {
    link.transfer(1e6, [&] { t = e.now(); });
  });
  e.run();
  EXPECT_NEAR(t, 2e-3, 1e-9);
  EXPECT_EQ(link.transfers_completed(), 2u);
}

TEST(SharedLink, BusyTimeExcludesIdleGaps) {
  Engine e;
  SharedLink link(e, "l", 0.0, 1e9);
  link.transfer(1e6, [] {});
  e.schedule_at(10e-3, [&] { link.transfer(1e6, [] {}); });
  e.run();
  EXPECT_NEAR(link.busy_time(), 2e-3, 1e-8);
}

TEST(SharedLink, RejectsBadParameters) {
  Engine e;
  EXPECT_THROW({ SharedLink bad(e, "l", -1.0, 1e9); }, homp::ConfigError);
  EXPECT_THROW({ SharedLink bad(e, "l", 0.0, 0.0); }, homp::ConfigError);
  SharedLink ok(e, "l", 0.0, 1.0);
  EXPECT_THROW(ok.transfer(-5.0, [] {}), homp::ConfigError);
}

}  // namespace
}  // namespace homp::sim
