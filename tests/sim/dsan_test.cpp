#include "sim/dsan.h"

#include <gtest/gtest.h>

#include <string>

#include "sim/engine.h"

namespace homp::sim {
namespace {

// The whole suite only makes sense when the hooks are compiled in; an
// -DHOMP_DSAN=OFF build skips it (and separately asserts zero cost by
// construction — the macros expand to nothing).
#if HOMP_DSAN_ENABLED

/// Two causally unrelated events at one timestamp, at least one writing
/// an ordered cell: the defining violation.
TEST(Dsan, OrderedWriteWriteSameTimestampViolates) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
    e.run();
  }
  ctx.finish();
  ASSERT_EQ(ctx.total_conflicts(), 1u);
  ASSERT_EQ(ctx.violations().size(), 1u);
  const dsan::Violation& v = ctx.violations()[0];
  EXPECT_EQ(v.time, 1.0);
  EXPECT_TRUE(v.first_write);
  EXPECT_TRUE(v.second_write);
  EXPECT_LT(v.first.seq, v.second.seq);
  // The rendering is the repro's payload — pin its shape.
  EXPECT_NE(v.to_string().find("test/ordered"), std::string::npos);
  EXPECT_NE(v.to_string().find("concurrent"), std::string::npos);
}

TEST(Dsan, ReadReadNeverConflicts) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_READ(cell); });
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_READ(cell); });
    e.run();
  }
  ctx.finish();
  EXPECT_TRUE(ctx.ok());
}

/// Different timestamps are always ordered by virtual time.
TEST(Dsan, CrossTimestampWritesAreOrdered) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
    e.schedule_at(2.0, [&cell] { HOMP_DSAN_WRITE(cell); });
    e.run();
  }
  ctx.finish();
  EXPECT_TRUE(ctx.ok());
}

/// A zero-delay schedule chain parent -> child -> grandchild stays inside
/// the timestamp and carries happens-before all the way down.
TEST(Dsan, ZeroDelayScheduleChainIsHappensBefore) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&] {
      HOMP_DSAN_WRITE(cell);
      e.schedule_after(0.0, [&] {
        HOMP_DSAN_WRITE(cell);
        e.schedule_after(0.0, [&] { HOMP_DSAN_WRITE(cell); });
      });
    });
    e.run();
  }
  ctx.finish();
  EXPECT_TRUE(ctx.ok()) << (ctx.violations().empty()
                                ? ""
                                : ctx.violations()[0].to_string());
}

/// Two zero-delay children of *different* roots at the same timestamp
/// share no chain — they are concurrent.
TEST(Dsan, SiblingChainsAreConcurrent) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0,
                  [&] { e.schedule_after(0.0, [&] { HOMP_DSAN_WRITE(cell); }); });
    e.schedule_at(1.0,
                  [&] { e.schedule_after(0.0, [&] { HOMP_DSAN_WRITE(cell); }); });
    e.run();
  }
  ctx.finish();
  EXPECT_EQ(ctx.total_conflicts(), 1u);
}

/// A non-zero-delay reschedule leaves the timestamp; ordering comes from
/// virtual time again, not the chain.
TEST(Dsan, NonZeroDelayBreaksTheChainButTimeOrders) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&] {
      HOMP_DSAN_WRITE(cell);
      e.schedule_after(0.5, [&] { HOMP_DSAN_WRITE(cell); });
    });
    e.run();
  }
  ctx.finish();
  EXPECT_TRUE(ctx.ok());
}

/// Same non-zero generation tag = single-owner contract = ordered.
TEST(Dsan, SameGenerationTagIsHappensBefore) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  const Engine::GenTag gen = e.new_generation();
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); }, gen);
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); }, gen);
    e.run();
  }
  ctx.finish();
  EXPECT_TRUE(ctx.ok());
}

TEST(Dsan, DifferentGenerationTagsAreConcurrent) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); }, e.new_generation());
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); }, e.new_generation());
    e.run();
  }
  ctx.finish();
  EXPECT_EQ(ctx.total_conflicts(), 1u);
}

/// Commutative cells declare concurrent write-write order-insensitive...
TEST(Dsan, CommutativeWritesDoNotConflict) {
  Engine e;
  dsan::Cell cell("test/commutative", dsan::CellKind::kCommutative);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
    e.run();
  }
  ctx.finish();
  EXPECT_TRUE(ctx.ok());
}

/// ...but a concurrent read against a write still violates: the reader
/// observes an intermediate state that depends on intra-timestamp order.
TEST(Dsan, CommutativeReadVsWriteStillConflicts) {
  Engine e;
  dsan::Cell cell("test/commutative", dsan::CellKind::kCommutative);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
    e.schedule_at(1.0, [&cell] { HOMP_DSAN_READ(cell); });
    e.run();
  }
  ctx.finish();
  ASSERT_EQ(ctx.total_conflicts(), 1u);
  EXPECT_TRUE(ctx.violations()[0].first_write);
  EXPECT_FALSE(ctx.violations()[0].second_write);
}

/// Repeated touches by one event collapse to one logical access; a lone
/// event can never conflict with itself.
TEST(Dsan, OneEventRmwIsOneAccess) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    e.schedule_at(1.0, [&cell] {
      HOMP_DSAN_READ(cell);
      HOMP_DSAN_WRITE(cell);
      HOMP_DSAN_READ(cell);
    });
    e.run();
  }
  ctx.finish();
  EXPECT_TRUE(ctx.ok());
}

/// Sequential engines under one context never cross-talk: the window
/// flushes when the engine pointer changes.
TEST(Dsan, SequentialEnginesDoNotCrossConflict) {
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    {
      Engine a;
      a.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
      a.run();
    }
    {
      Engine b;
      b.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
      b.run();
    }
  }
  ctx.finish();
  EXPECT_TRUE(ctx.ok());
}

/// Accesses outside any event (sequential harness code) are ignored.
TEST(Dsan, AccessOutsideEventsIsIgnored) {
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  dsan::Context ctx;
  {
    dsan::Scope scope(ctx);
    HOMP_DSAN_WRITE(cell);
    HOMP_DSAN_WRITE(cell);
  }
  ctx.finish();
  EXPECT_TRUE(ctx.ok());
}

/// With no scope attached the hooks are inert — the runtime gate.
TEST(Dsan, NoActiveContextMeansNoTracking) {
  Engine e;
  dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
  e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
  e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
  e.run();
  EXPECT_EQ(dsan::active(), nullptr);
}

/// Violation reports are byte-identical across identical runs — the
/// property that makes dsan repros diffable in CI.
TEST(Dsan, ReportsAreByteStableAcrossRuns) {
  auto run = [] {
    Engine e;
    dsan::Cell cell("test/ordered", dsan::CellKind::kOrdered);
    dsan::Context ctx;
    {
      dsan::Scope scope(ctx);
      e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
      e.schedule_at(1.0, [&cell] { HOMP_DSAN_WRITE(cell); });
      e.run();
    }
    ctx.finish();
    std::string out;
    for (const auto& v : ctx.violations()) out += v.to_string() + "\n";
    return out;
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  for (int i = 0; i < 10; ++i) {
    // Cell uids advance between runs (construction-order identity), so
    // compare everything after the "#<uid>" prefix.
    const std::string again = run();
    EXPECT_EQ(first.substr(first.find(':')), again.substr(again.find(':')));
  }
}

#else  // !HOMP_DSAN_ENABLED

TEST(Dsan, CompiledOut) { EXPECT_FALSE(dsan::compiled_in()); }

#endif  // HOMP_DSAN_ENABLED

}  // namespace
}  // namespace homp::sim
