#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace homp::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, CallbacksCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.schedule_after(1.0, [&] {
      ++fired;
      e.schedule_after(1.0, [&] { ++fired; });
    });
  });
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  auto id = e.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  e.schedule_at(5.0, [&] { ++fired; });
  const std::size_t n = e.run_until(3.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, StopInterruptsRun) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, IdleReflectsPendingEvents) {
  Engine e;
  EXPECT_TRUE(e.idle());
  auto id = e.schedule_at(1.0, [] {});
  EXPECT_FALSE(e.idle());
  e.cancel(id);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, CancelOfCompletedEventIsRejected) {
  // Cancelling an id that already ran must fail — and must not corrupt
  // the live-event accounting (a historical bug tombstoned such ids
  // forever, leaking memory and decrementing live_events_ twice).
  Engine e;
  auto id = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
  EXPECT_TRUE(e.idle());
  e.schedule_at(2.0, [] {});
  EXPECT_FALSE(e.idle());  // accounting intact after the bogus cancel
  e.run();
  EXPECT_TRUE(e.idle());
}

TEST(Engine, CancelOfUnknownIdIsRejected) {
  Engine e;
  EXPECT_FALSE(e.cancel(12345));
  EXPECT_TRUE(e.idle());
}

TEST(Engine, RunUsableAfterStop) {
  // stop() only interrupts the current drain; the engine must keep
  // working across repeated stop/run cycles.
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    e.schedule_at(static_cast<double>(i + 1), [&order, &e, i] {
      order.push_back(i);
      e.stop();
    });
  }
  for (int i = 0; i < 4; ++i) e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(e.idle());

  // run_until after stop behaves the same way.
  bool ran = false;
  e.schedule_at(10.0, [&] { ran = true; });
  e.stop();  // stale request must not poison the next drain
  EXPECT_EQ(e.run_until(20.0), 1u);
  EXPECT_TRUE(ran);
}

TEST(Engine, RunUntilSeesDeadlinePastTombstones) {
  // A cancelled event sitting at the queue top must not hide the next
  // live event from the deadline check.
  Engine e;
  int fired = 0;
  auto id = e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(5.0, [&] { ++fired; });
  e.cancel(id);
  EXPECT_EQ(e.run_until(3.0), 0u);  // live event at 5.0 is past deadline
  EXPECT_EQ(fired, 0);
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, GenerationCancelRevokesOnlyItsOwnEvents) {
  Engine e;
  const auto gen = e.new_generation();
  const auto other = e.new_generation();
  EXPECT_NE(gen, other);
  EXPECT_NE(gen, 0u);

  int mine = 0, theirs = 0, untagged = 0;
  e.schedule_after(1.0, [&] { ++mine; }, gen);
  e.schedule_after(2.0, [&] { ++mine; }, gen);
  e.schedule_after(1.5, [&] { ++theirs; }, other);
  e.schedule_after(1.5, [&] { ++untagged; });
  EXPECT_EQ(e.pending_in(gen), 2u);
  EXPECT_EQ(e.pending_in(other), 1u);
  EXPECT_EQ(e.live_generations(), 2u);

  EXPECT_EQ(e.cancel_generation(gen), 2u);
  EXPECT_EQ(e.pending_in(gen), 0u);
  EXPECT_EQ(e.live_generations(), 1u);

  e.run();
  EXPECT_EQ(mine, 0);
  EXPECT_EQ(theirs, 1);
  EXPECT_EQ(untagged, 1);
  EXPECT_EQ(e.live_generations(), 0u);  // ran events retire their gen
  EXPECT_EQ(e.live_events(), 0u);
}

TEST(Engine, GenerationBookkeepingSurvivesIndividualCancel) {
  // cancel() on a tagged event must retire it from its generation too,
  // and cancelling an already-drained generation is a harmless no-op.
  Engine e;
  const auto gen = e.new_generation();
  const auto id = e.schedule_after(1.0, [] {}, gen);
  e.schedule_after(2.0, [] {}, gen);
  EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending_in(gen), 1u);
  e.run();
  EXPECT_EQ(e.pending_in(gen), 0u);
  EXPECT_EQ(e.live_generations(), 0u);
  EXPECT_EQ(e.cancel_generation(gen), 0u);

  // The tag may be re-armed after a full drain.
  int fired = 0;
  e.schedule_after(1.0, [&] { ++fired; }, gen);
  EXPECT_EQ(e.pending_in(gen), 1u);
  EXPECT_EQ(e.cancel_generation(gen), 1u);
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, GenerationCancelFromInsideACallback) {
  // A callback revoking its own generation mid-run (how a finishing job
  // kills its pending watchdog/deadline timers) must stop every later
  // event of that generation, including ones at the same timestamp.
  Engine e;
  const auto gen = e.new_generation();
  int fired = 0;
  e.schedule_at(1.0, [&] { e.cancel_generation(gen); });
  e.schedule_at(1.0, [&] { ++fired; }, gen);
  e.schedule_at(2.0, [&] { ++fired; }, gen);
  e.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.live_generations(), 0u);
}

TEST(Engine, RepeatedCancelCyclesReclaimTombstones) {
  // Schedule/cancel churn must not grow the engine without bound: every
  // tombstone is reclaimed when its queue entry surfaces.
  Engine e;
  for (int round = 0; round < 1000; ++round) {
    auto id = e.schedule_after(1.0, [] {});
    e.cancel(id);
    e.run();  // drains the tombstone
    EXPECT_TRUE(e.idle());
  }
  EXPECT_EQ(e.events_processed(), 0u);
}

}  // namespace
}  // namespace homp::sim
