#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace homp::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, CallbacksCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.schedule_after(1.0, [&] {
      ++fired;
      e.schedule_after(1.0, [&] { ++fired; });
    });
  });
  e.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  auto id = e.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  e.schedule_at(5.0, [&] { ++fired; });
  const std::size_t n = e.run_until(3.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, StopInterruptsRun) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(2.0, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, IdleReflectsPendingEvents) {
  Engine e;
  EXPECT_TRUE(e.idle());
  auto id = e.schedule_at(1.0, [] {});
  EXPECT_FALSE(e.idle());
  e.cancel(id);
  EXPECT_TRUE(e.idle());
}

}  // namespace
}  // namespace homp::sim
