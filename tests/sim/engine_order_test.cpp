#include "sim/engine.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace homp::sim {
namespace {

/// The tie-break contract (docs/DETERMINISM.md, engine.h file comment):
/// events pop in strict (time, seq) lexicographic order — FIFO within a
/// timestamp, regardless of generation tag, scheduling nesting, or
/// cancellation history. homp-dsan's event identity and the future
/// parallel engine's commit order both assume exactly this; a change
/// here is a breaking change to the determinism model, not a tweak.

/// One mixed scenario: N events at one timestamp across several
/// generations, interleaved with cancellations and zero-delay
/// reschedules. Returns the serialized pop order.
std::string run_tiebreak_scenario() {
  Engine e;
  std::ostringstream log;
  const Engine::GenTag g1 = e.new_generation();
  const Engine::GenTag g2 = e.new_generation();
  const Engine::GenTag tags[] = {0, g1, g2, g1, 0, g2, g1, 0};

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    const int label = i;
    ids.push_back(e.schedule_at(
        1.0, [&log, label] { log << "a" << label << " "; }, tags[i % 8]));
  }
  // Cancellation must not disturb the survivors' relative order.
  e.cancel(ids[2]);
  e.cancel(ids[5]);
  // A pre-timestamp event that schedules into t=1.0: its child carries a
  // larger seq than every pre-scheduled event, so it pops last.
  e.schedule_at(0.5, [&] {
    log << "pre ";
    e.schedule_at(1.0, [&log] { log << "child "; });
  });
  // Same-timestamp zero-delay chains append in scheduling order too.
  e.schedule_at(1.0, [&] {
    log << "tail ";
    e.schedule_after(0.0, [&log] { log << "tail-child "; });
  });
  e.run();
  return log.str();
}

TEST(EngineOrder, TieBreakIsTimeThenSeq) {
  EXPECT_EQ(run_tiebreak_scenario(),
            "pre a0 a1 a3 a4 a6 a7 tail child tail-child ");
}

/// Byte-stability: the contract holds identically across 100 fresh
/// engines in one process (allocator state, uid counters, and prior
/// cancellations must not leak into pop order).
TEST(EngineOrder, ByteStableAcrossHundredRuns) {
  const std::string first = run_tiebreak_scenario();
  for (int i = 0; i < 99; ++i) {
    ASSERT_EQ(run_tiebreak_scenario(), first) << "run " << (i + 1);
  }
}

/// Many events, one timestamp, many generations: strict FIFO by seq.
TEST(EngineOrder, FifoWithinTimestampAcrossGenerations) {
  Engine e;
  std::vector<int> order;
  std::vector<Engine::GenTag> gens;
  for (int g = 0; g < 5; ++g) gens.push_back(e.new_generation());
  for (int i = 0; i < 50; ++i) {
    e.schedule_at(
        2.0, [&order, i] { order.push_back(i); },
        gens[static_cast<std::size_t>(i) % gens.size()]);
  }
  e.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace homp::sim
