// The fault model must be deterministic (same seed + script => same fault
// sequence) and script placement must be exact — the recovery tests in
// tests/runtime/failure_test.cpp depend on both.

#include "sim/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace homp::sim {
namespace {

TEST(FaultProfile, ValidateRejectsOutOfRangeRates) {
  FaultProfile p;
  p.transfer_fault_rate = 1.0;  // must be < 1
  EXPECT_THROW(p.validate("dev"), ConfigError);
  p = FaultProfile{};
  p.launch_fault_rate = -0.1;
  EXPECT_THROW(p.validate("dev"), ConfigError);
  p = FaultProfile{};
  p.slowdown_factor = 0.5;  // must be >= 1
  EXPECT_THROW(p.validate("dev"), ConfigError);
  p = FaultProfile{};
  p.transfer_fault_rate = 0.5;
  EXPECT_NO_THROW(p.validate("dev"));
}

TEST(FaultProfile, CombinedTreatsSourcesAsIndependent) {
  FaultProfile a, b;
  a.transfer_fault_rate = 0.5;
  b.transfer_fault_rate = 0.5;
  a.fail_at_s = 3.0;
  b.fail_at_s = 2.0;
  b.slowdown_factor = 8.0;
  const FaultProfile c = a.combined(b);
  EXPECT_DOUBLE_EQ(c.transfer_fault_rate, 0.75);  // 1 - 0.5 * 0.5
  EXPECT_DOUBLE_EQ(c.fail_at_s, 2.0);             // earliest loss wins
  EXPECT_DOUBLE_EQ(c.slowdown_factor, 8.0);
  EXPECT_TRUE(c.any());
  EXPECT_FALSE(FaultProfile{}.any());
}

TEST(FaultPlan, InactiveWithoutProfilesOrScripts) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  // Zero-rate profile keeps the plan inactive — the runtime relies on
  // this to skip fault bookkeeping on clean machines.
  plan.set_profile(0, FaultProfile{});
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.transfer_fails(0));
  EXPECT_FALSE(plan.launch_fails(0));
  EXPECT_DOUBLE_EQ(plan.slowdown(0), 1.0);
  EXPECT_LT(plan.loss_time(0), 0.0);
}

TEST(FaultPlan, SameSeedSameSequence) {
  FaultProfile p;
  p.transfer_fault_rate = 0.3;
  p.launch_fault_rate = 0.2;

  auto sample = [&](std::uint64_t seed) {
    FaultPlan plan;
    plan.set_seed(seed);
    plan.set_profile(1, p);
    plan.set_profile(2, p);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(plan.transfer_fails(1));
      out.push_back(plan.launch_fails(2));
    }
    return out;
  };
  EXPECT_EQ(sample(7), sample(7));
  EXPECT_NE(sample(7), sample(8));
}

TEST(FaultPlan, DevicesHaveIndependentStreams) {
  FaultProfile p;
  p.transfer_fault_rate = 0.5;
  FaultPlan plan;
  plan.set_profile(0, p);
  plan.set_profile(1, p);
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(plan.transfer_fails(0));
    b.push_back(plan.transfer_fails(1));
  }
  EXPECT_NE(a, b);

  // Interleaving order must not change each device's own sequence.
  FaultPlan plan2;
  plan2.set_profile(0, p);
  plan2.set_profile(1, p);
  std::vector<bool> b2;
  for (int i = 0; i < 64; ++i) b2.push_back(plan2.transfer_fails(1));
  std::vector<bool> a2;
  for (int i = 0; i < 64; ++i) a2.push_back(plan2.transfer_fails(0));
  EXPECT_EQ(a, a2);
  EXPECT_EQ(b, b2);
}

TEST(FaultPlan, ScriptedFaultFiresAtExactOp) {
  FaultPlan plan;
  ScriptedFault f;
  f.device_id = 3;
  f.kind = FaultKind::kTransfer;
  f.op = 2;
  plan.add_scripted(f);
  EXPECT_TRUE(plan.active());
  EXPECT_FALSE(plan.transfer_fails(3));  // op 0
  EXPECT_FALSE(plan.transfer_fails(3));  // op 1
  EXPECT_TRUE(plan.transfer_fails(3));   // op 2 <- scripted
  EXPECT_FALSE(plan.transfer_fails(3));  // op 3
  // Launch ops are counted separately.
  EXPECT_FALSE(plan.launch_fails(3));
}

TEST(FaultPlan, ScriptedFaultDoesNotShiftRandomSequence) {
  // Adding a scripted fault must not perturb which *random* ops fail —
  // the draw is consumed on every query regardless.
  FaultProfile p;
  p.transfer_fault_rate = 0.3;
  auto sample = [&](bool with_script) {
    FaultPlan plan;
    plan.set_profile(0, p);
    if (with_script) {
      ScriptedFault f;
      f.device_id = 0;
      f.op = 5;
      plan.add_scripted(f);
    }
    std::vector<bool> out;
    for (int i = 0; i < 32; ++i) out.push_back(plan.transfer_fails(0));
    return out;
  };
  auto plain = sample(false);
  auto scripted = sample(true);
  scripted[5] = plain[5];  // the scripted op itself differs, nothing else
  EXPECT_EQ(plain, scripted);
}

TEST(FaultPlan, ScriptedSlowdownFactorOverride) {
  FaultPlan plan;
  ScriptedFault f;
  f.device_id = 0;
  f.kind = FaultKind::kSlowdown;
  f.op = 0;
  f.factor = 6.0;
  plan.add_scripted(f);
  EXPECT_DOUBLE_EQ(plan.slowdown(0), 6.0);
  EXPECT_DOUBLE_EQ(plan.slowdown(0), 1.0);
}

TEST(FaultPlan, LossTimeEarliestWins) {
  FaultPlan plan;
  FaultProfile p;
  p.fail_at_s = 5.0;
  plan.set_profile(0, p);
  EXPECT_DOUBLE_EQ(plan.loss_time(0), 5.0);
  ScriptedFault f;
  f.device_id = 0;
  f.kind = FaultKind::kDeviceLoss;
  f.at_s = 2.0;
  plan.add_scripted(f);
  EXPECT_DOUBLE_EQ(plan.loss_time(0), 2.0);
  EXPECT_LT(plan.loss_time(1), 0.0);  // other devices unaffected
}

TEST(FaultPlan, RejectsMalformedScripts) {
  FaultPlan plan;
  ScriptedFault f;
  f.device_id = -1;
  EXPECT_THROW(plan.add_scripted(f), ConfigError);
  f.device_id = 0;
  f.kind = FaultKind::kDeviceLoss;
  f.at_s = -1.0;
  EXPECT_THROW(plan.add_scripted(f), ConfigError);
  f.kind = FaultKind::kTransfer;
  f.op = -2;
  EXPECT_THROW(plan.add_scripted(f), ConfigError);
}

TEST(FaultKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(FaultKind::kTransfer), "transfer-fault");
  EXPECT_STREQ(to_string(FaultKind::kLaunch), "launch-fault");
  EXPECT_STREQ(to_string(FaultKind::kSlowdown), "slowdown");
  EXPECT_STREQ(to_string(FaultKind::kDeviceLoss), "device-loss");
  EXPECT_STREQ(to_string(FaultKind::kHang), "hang");
  EXPECT_STREQ(to_string(FaultKind::kDegrade), "degrade");
}

TEST(FaultProfile, ValidateRejectsBadHangAndDegrade) {
  FaultProfile p;
  p.hang_rate = 1.0;  // must be < 1
  EXPECT_THROW(p.validate("dev"), ConfigError);
  p = FaultProfile{};
  p.degrade_rate = -0.1;
  EXPECT_THROW(p.validate("dev"), ConfigError);
  p = FaultProfile{};
  p.degrade_factor = 0.5;  // must be >= 1
  EXPECT_THROW(p.validate("dev"), ConfigError);
  p = FaultProfile{};
  p.hang_rate = 0.1;
  p.degrade_rate = 0.1;
  EXPECT_NO_THROW(p.validate("dev"));
  EXPECT_TRUE(p.any());
}

TEST(FaultProfile, CombinedMergesHangAndDegrade) {
  FaultProfile a, b;
  a.hang_rate = 0.5;
  b.hang_rate = 0.5;
  a.degrade_rate = 0.2;
  a.degrade_factor = 4.0;
  b.degrade_factor = 16.0;
  const FaultProfile c = a.combined(b);
  EXPECT_DOUBLE_EQ(c.hang_rate, 0.75);  // independent sources
  EXPECT_DOUBLE_EQ(c.degrade_rate, 0.2);
  EXPECT_DOUBLE_EQ(c.degrade_factor, 16.0);  // worst factor wins
}

TEST(FaultPlan, ScriptedHangHitsTheExactComputeOp) {
  FaultPlan plan;
  ScriptedFault f;
  f.device_id = 3;
  f.kind = FaultKind::kHang;
  f.op = 2;
  plan.add_scripted(f);
  EXPECT_TRUE(plan.active());
  EXPECT_FALSE(plan.compute_hangs(3));  // op 0
  EXPECT_FALSE(plan.compute_hangs(3));  // op 1
  EXPECT_TRUE(plan.compute_hangs(3));   // op 2: the scripted hang
  EXPECT_FALSE(plan.compute_hangs(3));  // op 3
  EXPECT_FALSE(plan.compute_hangs(0));  // other devices unaffected
}

TEST(FaultPlan, ScriptedDegradeUsesTheFactorOverride) {
  FaultPlan plan;
  ScriptedFault f;
  f.device_id = 1;
  f.kind = FaultKind::kDegrade;
  f.op = 1;
  f.factor = 32.0;
  plan.add_scripted(f);
  EXPECT_DOUBLE_EQ(plan.degrade(1), 1.0);   // op 0: healthy
  EXPECT_DOUBLE_EQ(plan.degrade(1), 32.0);  // op 1: scripted factor
  EXPECT_DOUBLE_EQ(plan.degrade(1), 1.0);

  // Factor <= 1 falls back to the profile's (or the 8x default).
  FaultPlan plan2;
  f.factor = 0.0;
  f.op = 0;
  plan2.add_scripted(f);
  EXPECT_DOUBLE_EQ(plan2.degrade(1), 8.0);
}

TEST(FaultPlan, HangAndDegradeStreamsAreDeterministic) {
  FaultProfile p;
  p.hang_rate = 0.3;
  p.degrade_rate = 0.3;
  p.degrade_factor = 5.0;
  auto sample = [&](std::uint64_t seed) {
    FaultPlan plan;
    plan.set_seed(seed);
    plan.set_profile(2, p);
    std::vector<double> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(plan.compute_hangs(2) ? 1.0 : 0.0);
      out.push_back(plan.degrade(2));
    }
    return out;
  };
  EXPECT_EQ(sample(11), sample(11));
  EXPECT_NE(sample(11), sample(12));
}

TEST(FaultKindNames, CorruptionKindsAreDistinct) {
  EXPECT_STREQ(to_string(FaultKind::kCorruptTransfer), "corrupt-transfer");
  EXPECT_STREQ(to_string(FaultKind::kCorruptCompute), "corrupt-compute");
}

TEST(FaultProfile, ValidateRejectsBadCorruptionRates) {
  FaultProfile p;
  p.corrupt_transfer_rate = 1.0;  // must be < 1
  EXPECT_THROW(p.validate("dev"), ConfigError);
  p = FaultProfile{};
  p.corrupt_compute_rate = -0.1;
  EXPECT_THROW(p.validate("dev"), ConfigError);
  p = FaultProfile{};
  p.corrupt_transfer_rate = 0.01;
  p.corrupt_compute_rate = 0.01;
  EXPECT_NO_THROW(p.validate("dev"));
  EXPECT_TRUE(p.any());
  const auto v = FaultProfile{}.violations("dev");
  EXPECT_TRUE(v.empty());
}

TEST(FaultProfile, CombinedMergesCorruptionRates) {
  FaultProfile a, b;
  a.corrupt_transfer_rate = 0.5;
  b.corrupt_transfer_rate = 0.5;
  b.corrupt_compute_rate = 0.25;
  const FaultProfile c = a.combined(b);
  EXPECT_DOUBLE_EQ(c.corrupt_transfer_rate, 0.75);  // independent sources
  EXPECT_DOUBLE_EQ(c.corrupt_compute_rate, 0.25);
}

TEST(FaultPlan, ZeroCorruptionRateNeverCorrupts) {
  FaultPlan plan;
  FaultProfile p;
  p.transfer_fault_rate = 0.5;  // other faults active, corruption off
  plan.set_profile(0, p);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(plan.transfer_corrupts(0), 0u);
    EXPECT_EQ(plan.compute_corrupts(0), 0u);
  }
}

TEST(FaultPlan, ScriptedCorruptionFiresAtExactOpWithNonzeroSeed) {
  FaultPlan plan;
  ScriptedFault f;
  f.device_id = 2;
  f.kind = FaultKind::kCorruptTransfer;
  f.op = 1;
  plan.add_scripted(f);
  EXPECT_TRUE(plan.active());
  EXPECT_EQ(plan.transfer_corrupts(2), 0u);  // op 0: intact
  EXPECT_NE(plan.transfer_corrupts(2), 0u);  // op 1: the scripted flip
  EXPECT_EQ(plan.transfer_corrupts(2), 0u);  // op 2: intact again
  // Compute corruption counts its own ops on its own counter.
  f.kind = FaultKind::kCorruptCompute;
  f.op = 0;
  plan.add_scripted(f);
  EXPECT_NE(plan.compute_corrupts(2), 0u);
  EXPECT_EQ(plan.compute_corrupts(2), 0u);
  EXPECT_EQ(plan.compute_corrupts(0), 0u);  // other devices unaffected
}

TEST(FaultPlan, CorruptionSeedsAreDeterministicAndPerDevice) {
  FaultProfile p;
  p.corrupt_transfer_rate = 0.4;
  p.corrupt_compute_rate = 0.4;
  auto sample = [&](std::uint64_t seed, int dev) {
    FaultPlan plan;
    plan.set_seed(seed);
    plan.set_profile(dev, p);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(plan.transfer_corrupts(dev));
      out.push_back(plan.compute_corrupts(dev));
    }
    return out;
  };
  EXPECT_EQ(sample(21, 1), sample(21, 1));
  EXPECT_NE(sample(21, 1), sample(22, 1));
  EXPECT_NE(sample(21, 1), sample(21, 2));
}

TEST(FaultPlan, CorruptionQueriesDoNotPerturbFailureStreams) {
  // The corruption draws are *pure* (hash of device/kind/op), not pulls
  // from the shared PRNG — interleaving them must leave the pre-existing
  // transfer/launch failure sequences bit-identical, so enabling
  // checksums never changes which ops fail.
  FaultProfile p;
  p.transfer_fault_rate = 0.3;
  p.launch_fault_rate = 0.3;
  p.corrupt_transfer_rate = 0.3;
  p.corrupt_compute_rate = 0.3;
  auto sample = [&](bool interleave) {
    FaultPlan plan;
    plan.set_profile(0, p);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) {
      if (interleave) {
        plan.transfer_corrupts(0);
        plan.compute_corrupts(0);
      }
      out.push_back(plan.transfer_fails(0));
      out.push_back(plan.launch_fails(0));
    }
    return out;
  };
  EXPECT_EQ(sample(false), sample(true));
}

}  // namespace
}  // namespace homp::sim
