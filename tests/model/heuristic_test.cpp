#include "model/heuristic.h"

#include <gtest/gtest.h>

#include "kernels/case.h"

namespace homp::model {
namespace {

TEST(Classify, TableIVKernelsLandInTheirClasses) {
  auto cls = [](const char* name, long long n) {
    return classify(kern::make_case(name, n, false)->kernel().cost);
  };
  EXPECT_EQ(cls("axpy", 1'000'000), KernelClass::kDataIntensive);
  EXPECT_EQ(cls("sum", 1'000'000), KernelClass::kDataIntensive);
  EXPECT_EQ(cls("matvec", 4096), KernelClass::kBalanced);
  EXPECT_EQ(cls("stencil2d", 256), KernelClass::kBalanced);
  EXPECT_EQ(cls("matmul", 6144), KernelClass::kComputeIntensive);
  EXPECT_EQ(cls("bm2d", 256), KernelClass::kComputeIntensive);
}

TEST(Classify, ThresholdsSitBetweenClusters) {
  KernelCostProfile k;
  k.flops_per_iter = 1.0;
  k.elem_bytes = 8.0;
  k.transfer_bytes_per_iter = 8.0 * 1.0;  // DataComp 1.0
  EXPECT_EQ(classify(k), KernelClass::kDataIntensive);
  k.transfer_bytes_per_iter = 8.0 * 0.5;  // 0.5 — matvec-like
  EXPECT_EQ(classify(k), KernelClass::kBalanced);
  k.transfer_bytes_per_iter = 8.0 * 0.06;  // bm-like
  EXPECT_EQ(classify(k), KernelClass::kComputeIntensive);
}

TEST(Classify, NamesAreReadable) {
  EXPECT_STREQ(to_string(KernelClass::kBalanced), "balanced");
  EXPECT_STREQ(to_string(KernelClass::kDataIntensive), "data-intensive");
  EXPECT_STREQ(to_string(KernelClass::kComputeIntensive),
               "compute-intensive");
}

}  // namespace
}  // namespace homp::model
