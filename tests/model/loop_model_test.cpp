#include "model/loop_model.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "machine/profiles.h"

namespace homp::model {
namespace {

DevicePredictionInput fast_gpu() {
  DevicePredictionInput d;
  d.peak_flops = 1000e9;
  d.peak_membw_Bps = 200e9;
  d.has_link = true;
  d.link_latency_s = 1e-5;
  d.link_bandwidth_Bps = 10e9;
  return d;
}

DevicePredictionInput slow_host() {
  DevicePredictionInput d;
  d.peak_flops = 250e9;
  d.peak_membw_Bps = 100e9;
  d.has_link = false;
  return d;
}

KernelCostProfile compute_heavy() {
  KernelCostProfile k;
  k.flops_per_iter = 1e6;
  k.mem_bytes_per_iter = 100.0;
  k.transfer_bytes_per_iter = 100.0;
  return k;
}

KernelCostProfile data_heavy() {
  KernelCostProfile k;
  k.flops_per_iter = 2.0;
  k.mem_bytes_per_iter = 24.0;
  k.transfer_bytes_per_iter = 24.0;
  return k;
}

TEST(Model1, WeightsProportionalToPeakFlops) {
  auto w = model1_weights(compute_heavy(), {fast_gpu(), slow_host()});
  EXPECT_NEAR(w[0], 0.8, 1e-9);  // 1000 / (1000 + 250)
  EXPECT_NEAR(w[1], 0.2, 1e-9);
}

TEST(Model2, PenalizesTransferBoundDevices) {
  // For a data-heavy kernel the GPU's PCIe link dominates; the host (no
  // link) must get relatively more work than MODEL_1 would give it.
  auto w1 = model1_weights(data_heavy(), {fast_gpu(), slow_host()});
  auto w2 = model2_weights(data_heavy(), {fast_gpu(), slow_host()});
  EXPECT_GT(w2[1], w1[1]);
  EXPECT_LT(w2[0], w1[0]);
}

TEST(Model2, ComputeHeavyKernelsBarelyNoticeTheLink) {
  auto w1 = model1_weights(compute_heavy(), {fast_gpu(), slow_host()});
  auto w2 = model2_weights(compute_heavy(), {fast_gpu(), slow_host()});
  EXPECT_NEAR(w1[0], w2[0], 0.01);
}

TEST(WeightsFromRates, NormalizesAndValidates) {
  auto w = weights_from_rates({3.0, 1.0, 0.0});
  EXPECT_NEAR(w[0], 0.75, 1e-12);
  EXPECT_NEAR(w[2], 0.0, 1e-12);
  EXPECT_THROW(weights_from_rates({}), homp::ConfigError);
  EXPECT_THROW(weights_from_rates({0.0, 0.0}), homp::ConfigError);
  EXPECT_THROW(weights_from_rates({-1.0, 1.0}), homp::ConfigError);
}

TEST(PredictedCompletion, IsTheSlowestDevice) {
  // 100 iters, 60/40 split, iter times 1 ms and 2 ms.
  const double t =
      predicted_completion_time(100, {0.6, 0.4}, {1e-3, 2e-3});
  EXPECT_NEAR(t, 0.08, 1e-12);  // 40 iters x 2 ms
}

TEST(Cutoff, DropsBelowThresholdIteratively) {
  // 50/30/12/8: at 15%, drop 8 -> renorm {54,33,13} -> drop 13 ->
  // renorm {60,37} (within rounding) -> done.
  auto r = apply_cutoff({0.50, 0.30, 0.12, 0.08}, 0.15);
  EXPECT_EQ(r.num_selected, 2);
  EXPECT_TRUE(r.selected[0]);
  EXPECT_TRUE(r.selected[1]);
  EXPECT_FALSE(r.selected[2]);
  EXPECT_FALSE(r.selected[3]);
  EXPECT_NEAR(r.weights[0] + r.weights[1], 1.0, 1e-12);
  EXPECT_EQ(r.weights[3], 0.0);
}

TEST(Cutoff, EqualDevicesKeepAUsableSet) {
  // 7 equal devices at 15%: each 1/7 < 0.15; the iterative rule drops the
  // highest index once, leaving 6 at 1/6 > 0.15.
  std::vector<double> w(7, 1.0 / 7.0);
  auto r = apply_cutoff(w, 0.15);
  EXPECT_EQ(r.num_selected, 6);
  EXPECT_FALSE(r.selected[6]);  // tie drops the "farthest" device
}

TEST(Cutoff, ZeroRatioSelectsEveryone) {
  auto r = apply_cutoff({0.9, 0.05, 0.05}, 0.0);
  EXPECT_EQ(r.num_selected, 3);
}

TEST(Cutoff, NeverEmptiesTheSet) {
  auto r = apply_cutoff({0.5, 0.5}, 0.99);
  EXPECT_GE(r.num_selected, 1);
  EXPECT_THROW(apply_cutoff({}, 0.15), homp::ConfigError);
  EXPECT_THROW(apply_cutoff({1.0}, 1.5), homp::ConfigError);
}

TEST(PredictionInputs, ExtractedFromMachine) {
  auto m = mach::builtin("full");
  auto in = prediction_inputs(m, {0, 1, 5});
  ASSERT_EQ(in.size(), 3u);
  EXPECT_FALSE(in[0].has_link);  // host
  EXPECT_TRUE(in[1].has_link);   // K40
  EXPECT_TRUE(in[2].has_link);   // Phi
  EXPECT_GT(in[1].link_bandwidth_Bps, in[2].link_bandwidth_Bps);
  EXPECT_THROW(prediction_inputs(m, {99}), homp::ConfigError);
}

}  // namespace
}  // namespace homp::model
