#include "model/cost.h"

#include <gtest/gtest.h>

#include "model/kernel_profile.h"

namespace homp::model {
namespace {

TEST(Hockney, LatencyPlusBandwidth) {
  EXPECT_NEAR(hockney_time(1e6, 1e-5, 1e9), 1e-5 + 1e-3, 1e-12);
  EXPECT_NEAR(hockney_time(0.0, 2e-6, 1e9), 2e-6, 1e-15);
}

TEST(Roofline, PicksTheBindingResource) {
  // Compute-bound: lots of flops per byte.
  auto c = roofline_time(1e9, 1e3, 1e12, 1e11);
  EXPECT_FALSE(c.memory_bound);
  EXPECT_NEAR(c.seconds, 1e-3, 1e-9);
  // Memory-bound: streaming kernel.
  auto m = roofline_time(1e6, 1e9, 1e12, 1e11);
  EXPECT_TRUE(m.memory_bound);
  EXPECT_NEAR(m.seconds, 1e-2, 1e-9);
}

TEST(KernelProfile, TableIVRatios) {
  KernelCostProfile axpy;
  axpy.flops_per_iter = 2.0;
  axpy.mem_bytes_per_iter = 24.0;
  axpy.transfer_bytes_per_iter = 24.0;
  EXPECT_NEAR(axpy.mem_comp(), 1.5, 1e-12);
  EXPECT_NEAR(axpy.data_comp(), 1.5, 1e-12);
  EXPECT_NEAR(axpy.flops_per_transfer_byte(), 2.0 / 24.0, 1e-12);
}

TEST(KernelProfile, DegenerateProfilesAreSafe) {
  KernelCostProfile p;  // all zeros
  EXPECT_EQ(p.mem_comp(), 0.0);
  EXPECT_EQ(p.data_comp(), 0.0);
  p.flops_per_iter = 10.0;
  EXPECT_GT(p.flops_per_transfer_byte(), 1e20);  // no transfers: "infinite"
}

}  // namespace
}  // namespace homp::model
