// The C-style API shim: handles, error codes, string directives.

#include "capi/homp.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace homp::capi {
namespace {

struct AxpyCtx {
  double a;
};

double axpy_body(long long lo, long long hi, void* ctx) {
  const double a = static_cast<AxpyCtx*>(ctx)->a;
  homp_view_t x{}, y{};
  EXPECT_EQ(homp_view("x", &x), HOMP_OK);
  EXPECT_EQ(homp_view("y", &y), HOMP_OK);
  for (long long i = lo; i < hi; ++i) {
    y.base[i - y.lo0] += a * x.base[i - x.lo0];
  }
  return 0.0;
}

double sum_body(long long lo, long long hi, void*) {
  homp_view_t x{};
  EXPECT_EQ(homp_view("x", &x), HOMP_OK);
  double s = 0.0;
  for (long long i = lo; i < hi; ++i) s += x.base[i - x.lo0];
  return s;
}

TEST(CApi, LifecycleAndErrors) {
  homp_runtime_t rt = nullptr;
  EXPECT_EQ(homp_init("no-such-machine.ini", &rt), HOMP_ERR_INVALID);
  EXPECT_NE(std::strlen(homp_last_error()), 0u);
  ASSERT_EQ(homp_init("full", &rt), HOMP_OK);
  EXPECT_EQ(homp_num_devices(rt), 7);
  EXPECT_EQ(homp_fini(rt), HOMP_OK);
  EXPECT_EQ(homp_fini(nullptr), HOMP_ERR_INVALID);
  EXPECT_EQ(homp_init(nullptr, &rt), HOMP_ERR_INVALID);
}

TEST(CApi, AxpyEndToEnd) {
  constexpr long long kN = 10'000;
  std::vector<double> x(kN), y(kN, 1.0);
  for (long long i = 0; i < kN; ++i) x[i] = static_cast<double>(i % 100);

  homp_runtime_t rt = nullptr;
  ASSERT_EQ(homp_init("gpu4", &rt), HOMP_OK);
  ASSERT_EQ(homp_register_array(rt, "x", x.data(), kN, 0), HOMP_OK);
  ASSERT_EQ(homp_register_array(rt, "y", y.data(), kN, 0), HOMP_OK);
  ASSERT_EQ(homp_let(rt, "n", kN), HOMP_OK);

  AxpyCtx ctx{2.0};
  homp_kernel_desc k{};
  k.name = "axpy";
  k.iterations = kN;
  k.flops_per_iter = 2.0;
  k.mem_bytes_per_iter = 24.0;
  k.transfer_bytes_per_iter = 24.0;
  k.body = axpy_body;
  k.ctx = &ctx;
  k.execute_bodies = 1;

  homp_result res{};
  ASSERT_EQ(homp_offload(rt,
                         "parallel target device(0:*) "
                         "map(tofrom: y[0:n] partition([ALIGN(loop)])) "
                         "map(to: x[0:n] partition([ALIGN(loop)])) "
                         "distribute dist_schedule(target: BLOCK)",
                         &k, &res),
            HOMP_OK)
      << homp_last_error();
  EXPECT_GT(res.total_time_s, 0.0);
  EXPECT_EQ(res.chunks, 5);  // one per device with work
  for (long long i = 0; i < kN; ++i) {
    ASSERT_EQ(y[i], 1.0 + 2.0 * (i % 100)) << i;
  }
  homp_fini(rt);
}

TEST(CApi, ReductionAndSimulationMode) {
  constexpr long long kN = 5'000;
  std::vector<double> x(kN, 0.5);
  homp_runtime_t rt = nullptr;
  ASSERT_EQ(homp_init("full", &rt), HOMP_OK);
  ASSERT_EQ(homp_register_array(rt, "x", x.data(), kN, 0), HOMP_OK);
  ASSERT_EQ(homp_let(rt, "n", kN), HOMP_OK);

  homp_kernel_desc k{};
  k.name = "sum";
  k.iterations = kN;
  k.flops_per_iter = 1.0;
  k.mem_bytes_per_iter = 8.0;
  k.transfer_bytes_per_iter = 8.0;
  k.has_reduction = 1;
  k.body = sum_body;
  k.ctx = nullptr;
  k.execute_bodies = 1;

  const char* directive =
      "parallel target device(0:*) "
      "map(to: x[0:n] partition([ALIGN(loop)])) "
      "distribute dist_schedule(target: SCHED_DYNAMIC(5%))";
  homp_result res{};
  ASSERT_EQ(homp_offload(rt, directive, &k, &res), HOMP_OK)
      << homp_last_error();
  EXPECT_NEAR(res.reduction, 0.5 * kN, 1e-9);

  // Simulation-only: no body needed, reduction is 0.
  k.body = nullptr;
  k.execute_bodies = 0;
  ASSERT_EQ(homp_offload(rt, directive, &k, &res), HOMP_OK)
      << homp_last_error();
  EXPECT_EQ(res.reduction, 0.0);
  EXPECT_GT(res.total_time_s, 0.0);
  homp_fini(rt);
}

TEST(CApi, ParseAndExecErrorsAreDistinguished) {
  homp_runtime_t rt = nullptr;
  ASSERT_EQ(homp_init("gpu4", &rt), HOMP_OK);
  homp_kernel_desc k{};
  k.name = "k";
  k.iterations = 10;
  k.flops_per_iter = 1.0;
  k.mem_bytes_per_iter = 8.0;
  k.execute_bodies = 0;
  homp_result res{};
  EXPECT_EQ(homp_offload(rt, "target frobnicate(1) device(*)", &k, &res),
            HOMP_ERR_PARSE);
  EXPECT_EQ(homp_offload(rt, "target device(*) map(to: ghost[0:10])", &k,
                         &res),
            HOMP_ERR_INVALID);  // unbound array
  homp_fini(rt);
}

TEST(CApi, ViewOutsideKernelFails) {
  homp_view_t v{};
  EXPECT_EQ(homp_view("x", &v), HOMP_ERR_INVALID);
}

TEST(CApi, TwoDimensionalViews) {
  constexpr long long kN = 32, kM = 8;
  std::vector<double> a(kN * kM);
  for (long long i = 0; i < kN * kM; ++i) a[i] = static_cast<double>(i);
  std::vector<double> out(kN, 0.0);

  homp_runtime_t rt = nullptr;
  ASSERT_EQ(homp_init("gpu4", &rt), HOMP_OK);
  ASSERT_EQ(homp_register_array(rt, "A", a.data(), kN, kM), HOMP_OK);
  ASSERT_EQ(homp_register_array(rt, "out", out.data(), kN, 0), HOMP_OK);
  ASSERT_EQ(homp_let(rt, "n", kN), HOMP_OK);
  ASSERT_EQ(homp_let(rt, "m", kM), HOMP_OK);

  homp_kernel_desc k{};
  k.name = "rowsum";
  k.iterations = kN;
  k.flops_per_iter = kM;
  k.mem_bytes_per_iter = kM * 8.0;
  k.execute_bodies = 1;
  k.body = +[](long long lo, long long hi, void*) {
    homp_view_t av{}, ov{};
    EXPECT_EQ(homp_view("A", &av), HOMP_OK);
    EXPECT_EQ(homp_view("out", &ov), HOMP_OK);
    for (long long i = lo; i < hi; ++i) {
      double s = 0.0;
      for (long long j = av.lo1; j < av.hi1; ++j) {
        s += av.base[(i - av.lo0) * av.stride0 + (j - av.lo1)];
      }
      ov.base[i - ov.lo0] = s;
    }
    return 0.0;
  };

  homp_result res{};
  ASSERT_EQ(homp_offload(rt,
                         "parallel target device(0:*) "
                         "map(to: A[0:n][0:m] partition([ALIGN(loop)], "
                         "FULL)) "
                         "map(from: out[0:n] partition([ALIGN(loop)])) "
                         "distribute dist_schedule(target: BLOCK)",
                         &k, &res),
            HOMP_OK)
      << homp_last_error();
  for (long long i = 0; i < kN; ++i) {
    double expect = 0.0;
    for (long long j = 0; j < kM; ++j) expect += a[i * kM + j];
    ASSERT_EQ(out[i], expect) << i;
  }
  homp_fini(rt);
}

}  // namespace
}  // namespace homp::capi
