// Unit coverage for the homp-fuzz harness itself (docs/FUZZING.md):
// scenario generation must be deterministic and always-valid, the
// serialization formats must round-trip exactly, the oracle must catch a
// planted violation, and the shrinker must minimize while preserving the
// failure. The end-to-end CLI contract (byte-identical summaries, repro
// files on disk, --replay) lives in tests/fuzz/run_fuzz_tests.py.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fuzz/oracle.h"
#include "fuzz/scenario.h"
#include "fuzz/shrink.h"
#include "kernels/case.h"
#include "machine/parser.h"
#include "runtime/runtime.h"
#include "sched/algorithm.h"
#include "sim/engine.h"

namespace homp {
namespace {

TEST(FuzzScenario, GenerationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 22ull, 1000003ull}) {
    const auto a = fuzz::generate_scenario(seed);
    const auto b = fuzz::generate_scenario(seed);
    EXPECT_EQ(fuzz::to_toml(a), fuzz::to_toml(b)) << "seed " << seed;
    EXPECT_EQ(mach::to_text(a.machine), mach::to_text(b.machine))
        << "seed " << seed;
  }
}

TEST(FuzzScenario, DifferentSeedsExploreTheSpace) {
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    distinct.insert(fuzz::to_toml(fuzz::generate_scenario(seed)));
  }
  // Collisions are possible in principle but 16 identical scenarios
  // would mean the seed is ignored.
  EXPECT_GT(distinct.size(), 8u);
}

TEST(FuzzScenario, GeneratedScenariosAreAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto s = fuzz::generate_scenario(seed);
    EXPECT_NO_THROW(s.machine.validate()) << "seed " << seed;
    EXPECT_GE(s.machine.devices.size(), 1u);
    EXPECT_EQ(s.n, fuzz::quantize_trip(s.kernel, s.n)) << "seed " << seed;
    EXPECT_GT(s.step_budget, 0) << "seed " << seed;
    for (const auto& f : s.faults) {
      EXPECT_GT(f.device_id, 0) << "seed " << seed << ": host must not fault";
      EXPECT_LT(static_cast<std::size_t>(f.device_id),
                s.machine.devices.size())
          << "seed " << seed;
      if (f.kind == sim::FaultKind::kCorruptCompute ||
          f.kind == sim::FaultKind::kCorruptTransfer) {
        EXPECT_TRUE(s.integrity)
            << "seed " << seed
            << ": corruption scripted with integrity disabled";
      }
      if (f.kind == sim::FaultKind::kHang) {
        EXPECT_TRUE(s.watchdog) << "seed " << seed;
      }
    }
  }
}

TEST(FuzzScenario, MachineTextRoundTripsExactly) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto s = fuzz::generate_scenario(seed);
    const std::string once = mach::to_text(s.machine);
    const std::string twice = mach::to_text(mach::parse_machine(once));
    EXPECT_EQ(once, twice) << "seed " << seed;
  }
}

TEST(FuzzScenario, TomlRoundTripsExactly) {
  for (std::uint64_t seed : {1ull, 7ull, 22ull, 75ull}) {
    const auto s = fuzz::generate_scenario(seed);
    const std::string once =
        fuzz::to_toml(s, "repro.ini", "progress", "BLOCK");
    const auto parsed = fuzz::parse_scenario(once);
    EXPECT_EQ(parsed.machine_file, "repro.ini");
    EXPECT_EQ(parsed.invariant, "progress");
    EXPECT_EQ(parsed.algorithm, "BLOCK");
    auto round = parsed.scenario;
    round.machine = s.machine;  // machine travels in the paired .ini
    EXPECT_EQ(once, fuzz::to_toml(round, "repro.ini", "progress", "BLOCK"))
        << "seed " << seed;
  }
}

TEST(FuzzScenario, ParserRejectsGarbageWithLineNumbers) {
  EXPECT_THROW(fuzz::parse_scenario("[scenario]\nseed = frog\n"),
               ConfigError);
  EXPECT_THROW(fuzz::parse_scenario("no section header\n"), ConfigError);
}

TEST(FuzzOracle, CleanScenarioPassesEveryInvariant) {
  fuzz::GeneratorLimits limits;
  limits.max_devices = 3;
  limits.max_trip = 256;
  limits.allow_faults = false;
  const auto s = fuzz::generate_scenario(5, limits);
  const auto report = fuzz::run_oracle(s);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations[0].invariant + ": " +
                                         report.violations[0].detail);
  EXPECT_EQ(report.runs.size(),
            static_cast<std::size_t>(sched::kNumEveryAlgorithm));
  for (const auto& r : report.runs) {
    EXPECT_TRUE(r.completed) << r.algorithm;
    EXPECT_GT(r.engine_events, 0u) << r.algorithm;
  }
}

TEST(FuzzOracle, DigestIsDeterministic) {
  const auto s = fuzz::generate_scenario(9);
  EXPECT_EQ(fuzz::run_oracle(s).digest(), fuzz::run_oracle(s).digest());
}

TEST(FuzzOracle, CatchesPlantedCorruptCommit) {
  fuzz::GeneratorLimits limits;
  limits.max_devices = 3;
  limits.max_trip = 256;
  auto s = fuzz::generate_scenario(11, limits);
  fuzz::plant_corrupt_commit(s);
  ASSERT_FALSE(s.integrity);
  const auto report = fuzz::run_oracle(s);
  ASSERT_FALSE(report.ok());
  bool caught = false;
  for (const auto& v : report.violations) {
    if (v.invariant == "reference" || v.invariant == "differential-results") {
      caught = true;
    }
  }
  EXPECT_TRUE(caught)
      << "planted silent corruption must trip the result invariants; got "
      << report.violations[0].invariant;
}

TEST(FuzzShrink, MinimizesWhilePreservingTheFailure) {
  fuzz::GeneratorLimits limits;
  limits.max_devices = 5;
  auto s = fuzz::generate_scenario(13, limits);
  fuzz::plant_corrupt_commit(s);
  const auto before = fuzz::run_oracle(s);
  ASSERT_FALSE(before.ok());
  const std::string invariant = before.violations[0].invariant;

  const auto shrunk = fuzz::shrink(s, invariant, /*max_oracle_runs=*/24);
  EXPECT_LE(shrunk.scenario.machine.devices.size(),
            s.machine.devices.size());
  EXPECT_LE(shrunk.scenario.n, s.n);
  EXPECT_LE(shrunk.oracle_runs, 24);

  // The minimized scenario still fails the same invariant.
  const auto after = fuzz::run_oracle(shrunk.scenario);
  bool still = false;
  for (const auto& v : after.violations) {
    if (v.invariant == invariant) still = true;
  }
  EXPECT_TRUE(still);
}

TEST(FuzzEngine, RunBoundedStopsAtBudgetAndResumes) {
  sim::Engine e;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule_after(static_cast<double>(i), [&] { ++fired; });
  }
  EXPECT_EQ(e.run_bounded(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_FALSE(e.idle());
  EXPECT_EQ(e.run_bounded(100), 6u);
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(e.idle());
}

TEST(FuzzHarness, StepBudgetAbortsRunawayOffloadLoudly) {
  const auto s = fuzz::generate_scenario(3);
  rt::Runtime rt{s.machine};
  auto c = kern::make_case(s.kernel, s.n, /*materialize=*/false);
  rt::OffloadOptions o;
  for (std::size_t d = 0; d < s.machine.devices.size(); ++d) {
    o.device_ids.push_back(static_cast<int>(d));
  }
  o.execute_bodies = false;
  o.harness.step_budget = static_cast<long long>(o.device_ids.size());
  auto maps = c->maps();
  auto kernel = c->kernel();
  EXPECT_THROW(rt.offload(kernel, maps, o), OffloadError);
}

TEST(FuzzHarness, ResultChecksumIsCapturedAndStable) {
  const auto s = fuzz::generate_scenario(4);
  rt::Runtime rt{s.machine};
  auto run = [&] {
    auto c = kern::make_case("axpy", 512, /*materialize=*/true);
    c->init();
    rt::OffloadOptions o;
    o.device_ids = {0};
    o.harness.capture_result_checksum = true;
    auto maps = c->maps();
    auto kernel = c->kernel();
    return rt.offload(kernel, maps, o);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_TRUE(a.result_checksum_valid);
  ASSERT_TRUE(b.result_checksum_valid);
  EXPECT_EQ(a.result_checksum, b.result_checksum);
  EXPECT_NE(a.result_checksum, 0u);
}

}  // namespace
}  // namespace homp
