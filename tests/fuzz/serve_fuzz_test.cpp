// Unit coverage for homp-fuzz's serve mode (docs/FUZZING.md "--serve"):
// serve-scenario generation must be deterministic and always-valid, the
// TOML serialization must round-trip exactly, the replay sniffer must
// tell serve repros from single-offload ones, the serve oracle must pass
// clean scenarios and catch an injected mid-run abort, and the corpus
// driver's summary must be byte-identical across same-config runs.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "common/error.h"
#include "fuzz/serve_driver.h"
#include "fuzz/serve_oracle.h"
#include "fuzz/serve_scenario.h"
#include "machine/parser.h"

namespace homp {
namespace {

TEST(ServeScenario, GenerationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 1000003ull}) {
    const auto a = fuzz::generate_serve_scenario(seed);
    const auto b = fuzz::generate_serve_scenario(seed);
    EXPECT_EQ(fuzz::serve_to_toml(a), fuzz::serve_to_toml(b))
        << "seed " << seed;
    EXPECT_EQ(mach::to_text(a.machine), mach::to_text(b.machine))
        << "seed " << seed;
  }
}

TEST(ServeScenario, DifferentSeedsExploreTheSpace) {
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    distinct.insert(fuzz::serve_to_toml(fuzz::generate_serve_scenario(seed)));
  }
  EXPECT_GT(distinct.size(), 8u);
}

TEST(ServeScenario, GeneratedScenariosAreAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto s = fuzz::generate_serve_scenario(seed);
    EXPECT_NO_THROW(s.machine.validate()) << "seed " << seed;
    EXPECT_GE(s.tenants.size(), 1u) << "seed " << seed;
    EXPECT_GE(s.jobs.size(), 1u) << "seed " << seed;
    for (const auto& j : s.jobs) {
      EXPECT_GE(j.tenant, 0) << "seed " << seed;
      EXPECT_LT(static_cast<std::size_t>(j.tenant), s.tenants.size())
          << "seed " << seed;
      EXPECT_EQ(j.job.n, fuzz::quantize_trip(j.job.kernel, j.job.n))
          << "seed " << seed;
      EXPECT_GE(j.at_s, 0.0) << "seed " << seed;
    }
    // Livelocks must be containable: the step budget is always armed.
    EXPECT_GT(s.options.base.harness.step_budget, 0) << "seed " << seed;
  }
}

TEST(ServeScenario, TomlRoundTripsExactly) {
  for (std::uint64_t seed : {1ull, 7ull, 22ull}) {
    const auto s = fuzz::generate_serve_scenario(seed);
    const std::string once =
        fuzz::serve_to_toml(s, "serve-repro.ini", "serve-progress");
    const auto parsed = fuzz::parse_serve_scenario(once);
    EXPECT_EQ(parsed.machine_file, "serve-repro.ini");
    EXPECT_EQ(parsed.invariant, "serve-progress");
    auto round = parsed.scenario;
    round.machine = s.machine;  // machine travels in the paired .ini
    EXPECT_EQ(once,
              fuzz::serve_to_toml(round, "serve-repro.ini", "serve-progress"))
        << "seed " << seed;
  }
}

TEST(ServeScenario, SnifferTellsServeFromOffloadRepros) {
  const auto s = fuzz::generate_serve_scenario(3);
  EXPECT_TRUE(fuzz::is_serve_scenario(fuzz::serve_to_toml(s)));
  EXPECT_FALSE(fuzz::is_serve_scenario("[scenario]\nseed = 3\n"));
  EXPECT_FALSE(fuzz::is_serve_scenario("# just a comment\n"));
}

TEST(ServeScenario, ParserRejectsGarbageWithLineNumbers) {
  EXPECT_THROW(fuzz::parse_serve_scenario("[serve]\nseed = frog\n"),
               ConfigError);
  EXPECT_THROW(fuzz::parse_serve_scenario("[serve]\nseed = 1\n"),
               ConfigError);  // no tenants or jobs
  EXPECT_THROW(
      fuzz::parse_serve_scenario(
          "[serve]\nseed = 1\n[tenant.0]\nname = \"t\"\n"
          "[job.0]\ntenant = 7\n"),
      ConfigError);  // job references a missing tenant
}

TEST(ServeOracle, CleanScenarioPassesEveryInvariant) {
  fuzz::ServeGeneratorLimits limits;
  limits.max_devices = 4;
  limits.max_jobs = 6;
  limits.allow_faults = false;
  const auto s = fuzz::generate_serve_scenario(5, limits);
  const auto report = fuzz::run_serve_oracle(s);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations[0].invariant + ": " +
                                         report.violations[0].detail);
}

TEST(ServeOracle, DigestIsDeterministic) {
  fuzz::ServeGeneratorLimits limits;
  limits.max_jobs = 5;
  const auto s = fuzz::generate_serve_scenario(9, limits);
  EXPECT_EQ(fuzz::run_serve_oracle(s).digest(),
            fuzz::run_serve_oracle(s).digest());
}

TEST(ServeOracle, MidRunAbortBecomesProgressViolation) {
  // An unknown kernel makes submit() throw from inside the engine run —
  // exactly the class of abort the serve-progress invariant exists for.
  auto s = fuzz::generate_serve_scenario(4);
  s.jobs[0].job.kernel = "no-such-kernel";
  const auto report = fuzz::run_serve_oracle(s);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].invariant, "serve-progress");
}

TEST(ServeDriver, CorpusSummaryIsByteIdentical) {
  fuzz::ServeFuzzConfig cfg;
  cfg.seed = 3;
  cfg.count = 4;
  cfg.limits.max_jobs = 6;
  cfg.repro_dir = ::testing::TempDir() + "serve_fuzz_det";
  const auto a = fuzz::run_serve_fuzz(cfg);
  const auto b = fuzz::run_serve_fuzz(cfg);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.violations, 0) << a.json;
  EXPECT_EQ(a.scenarios, 4);
  EXPECT_GT(a.jobs, 0);
}

TEST(ServeDriver, ReplayReproducesARecordedFailure) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "serve_fuzz_replay";
  fs::create_directories(dir);

  // Handcraft a repro whose failure is deterministic: the bogus kernel
  // aborts the run, which the oracle reports as serve-progress.
  auto s = fuzz::generate_serve_scenario(4);
  s.jobs[0].job.kernel = "no-such-kernel";
  {
    std::ofstream ini(dir / "serve-repro-4.ini", std::ios::binary);
    ini << mach::to_text(s.machine);
    std::ofstream toml(dir / "serve-repro-4.toml", std::ios::binary);
    toml << fuzz::serve_to_toml(s, "serve-repro-4.ini", "serve-progress");
  }

  const auto outcome =
      fuzz::serve_replay((dir / "serve-repro-4.toml").string());
  EXPECT_EQ(outcome.recorded_invariant, "serve-progress");
  EXPECT_TRUE(outcome.reproduced);

  // A clean scenario recorded against the same invariant does NOT
  // reproduce.
  const auto clean = fuzz::generate_serve_scenario(1);
  {
    std::ofstream ini(dir / "serve-repro-1.ini", std::ios::binary);
    ini << mach::to_text(clean.machine);
    std::ofstream toml(dir / "serve-repro-1.toml", std::ios::binary);
    toml << fuzz::serve_to_toml(clean, "serve-repro-1.ini",
                                "serve-progress");
  }
  const auto held =
      fuzz::serve_replay((dir / "serve-repro-1.toml").string());
  EXPECT_FALSE(held.reproduced);
}

}  // namespace
}  // namespace homp
