#!/usr/bin/env python3
"""End-to-end contract suite for the homp-fuzz CLI, run under ctest.

Contract under test (docs/FUZZING.md):
  * a fixed-seed corpus run is deterministic: two runs with the same
    configuration print byte-identical summary JSON and exit 0 when no
    invariant is violated;
  * every scenario is swept through all ten algorithm families;
  * `--plant corrupt-commit` plants a silent-corruption violation that
    the oracle catches, the shrinker minimizes, and the driver writes as
    a self-contained repro pair (.toml + .ini);
  * `--replay` on that repro re-runs it deterministically and exits 0
    reporting the same invariant failing;
  * usage errors exit 2.

Needs the homp-fuzz binary: pass --fuzz-bin, as the ctest entry does.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import unittest

FUZZ_BIN = None  # set by main()
WORK = None


def fuzz(*args, timeout=300):
    return subprocess.run([FUZZ_BIN, *args], capture_output=True,
                          text=True, timeout=timeout)


def setUpModule():
    global WORK
    WORK = tempfile.TemporaryDirectory(prefix="homp_fuzz_test_")


def tearDownModule():
    WORK.cleanup()


class Determinism(unittest.TestCase):
    def test_same_corpus_twice_is_byte_identical(self):
        args = ("--seed", "3", "--count", "6",
                "--repro-dir", os.path.join(WORK.name, "det"))
        a = fuzz(*args)
        b = fuzz(*args)
        self.assertEqual(a.returncode, 0, a.stdout + a.stderr)
        self.assertEqual(b.returncode, 0, b.stdout + b.stderr)
        self.assertEqual(a.stdout, b.stdout,
                         "summary JSON is not deterministic")

    def test_every_scenario_sweeps_all_ten_algorithms(self):
        r = fuzz("--seed", "3", "--count", "4",
                 "--repro-dir", os.path.join(WORK.name, "sweep"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        doc = json.loads(r.stdout)
        self.assertEqual(doc["scenarios"], 4)
        # 10 algorithms per scenario (the oracle sweeps every family).
        self.assertEqual(doc["offloads"], 40)
        self.assertEqual(doc["violations"], 0)
        for s in doc["runs"]:
            self.assertTrue(s["digest"].startswith("0x"))


class PlantedViolation(unittest.TestCase):
    def test_planted_corruption_is_caught_shrunk_and_replayable(self):
        repro_dir = os.path.join(WORK.name, "planted")
        r = fuzz("--seed", "11", "--count", "1", "--plant", "corrupt-commit",
                 "--repro-dir", repro_dir)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        doc = json.loads(r.stdout)
        self.assertGreaterEqual(doc["violations"], 1)
        self.assertEqual(len(doc["failures"]), 1)
        failure = doc["failures"][0]
        self.assertIn(failure["invariant"],
                      ("reference", "differential-results"))

        # Self-contained repro pair on disk.
        toml = failure["repro"]
        self.assertTrue(os.path.exists(toml), toml)
        ini = os.path.join(os.path.dirname(toml),
                           "repro-%d.ini" % failure["seed"])
        self.assertTrue(os.path.exists(ini), ini)

        # Shrinking made it smaller than the generator's default ceiling.
        self.assertLessEqual(failure["shrunk_devices"], 6)

        # Replay reproduces the same invariant failure deterministically.
        rep = fuzz("--replay", toml)
        self.assertEqual(rep.returncode, 0, rep.stdout + rep.stderr)
        self.assertIn("REPRODUCED", rep.stdout)
        self.assertIn(failure["invariant"], rep.stdout)


class DsanSanitizer(unittest.TestCase):
    def test_planted_dsan_conflict_is_caught_shrunk_and_replayable(self):
        """`--plant dsan-conflict` schedules two same-timestamp writes to
        an ordered cell with no happens-before edge; homp-dsan must flag
        them, the shrinker must minimize the carrier scenario, and the
        repro (written as dsan-repro-<seed>.toml) must replay."""
        repro_dir = os.path.join(WORK.name, "dsan-planted")
        r = fuzz("--seed", "5", "--count", "1", "--plant", "dsan-conflict",
                 "--repro-dir", repro_dir)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        doc = json.loads(r.stdout)
        self.assertTrue(doc["config"]["dsan"])
        self.assertIn("dsan-determinism", doc["invariants"])
        failure = doc["failures"][0]
        self.assertEqual(failure["invariant"], "dsan-determinism")
        self.assertIn("concurrent", failure["detail"])

        toml = failure["repro"]
        self.assertEqual(os.path.basename(toml),
                         "dsan-repro-%d.toml" % failure["seed"])
        self.assertTrue(os.path.exists(toml), toml)
        self.assertLessEqual(failure["shrunk_devices"], 6)

        rep = fuzz("--replay", toml)
        self.assertEqual(rep.returncode, 0, rep.stdout + rep.stderr)
        self.assertIn("REPRODUCED", rep.stdout)
        self.assertIn("dsan-determinism", rep.stdout)

    def test_dsan_corpus_is_clean_and_deterministic(self):
        """A --dsan sweep over a fixed-seed corpus reports zero
        violations and byte-identical summaries across two runs: the
        sanitizer itself must not perturb simulation results."""
        args = ("--dsan", "--seed", "3", "--count", "6",
                "--repro-dir", os.path.join(WORK.name, "dsan-det"))
        a = fuzz(*args)
        b = fuzz(*args)
        self.assertEqual(a.returncode, 0, a.stdout + a.stderr)
        self.assertEqual(a.stdout, b.stdout,
                         "--dsan summary JSON is not deterministic")
        doc = json.loads(a.stdout)
        self.assertTrue(doc["config"]["dsan"])
        self.assertEqual(doc["violations"], 0)

    def test_serve_dsan_corpus_is_clean_and_deterministic(self):
        args = ("--serve", "--dsan", "--seed", "3", "--count", "4",
                "--repro-dir", os.path.join(WORK.name, "dsan-serve"))
        a = fuzz(*args)
        b = fuzz(*args)
        self.assertEqual(a.returncode, 0, a.stdout + a.stderr)
        self.assertEqual(a.stdout, b.stdout)
        self.assertEqual(json.loads(a.stdout)["violations"], 0)

    def test_serve_mode_rejects_planting(self):
        r = fuzz("--serve", "--plant", "dsan-conflict")
        self.assertEqual(r.returncode, 2)


class ErrorContract(unittest.TestCase):
    def test_unknown_flag_exits_2(self):
        r = fuzz("--frobnicate")
        self.assertEqual(r.returncode, 2)

    def test_replay_of_missing_file_exits_2(self):
        r = fuzz("--replay", os.path.join(WORK.name, "nope.toml"))
        self.assertEqual(r.returncode, 2)

    def test_replay_of_malformed_file_exits_2(self):
        bad = os.path.join(WORK.name, "bad.toml")
        with open(bad, "w", encoding="utf-8") as f:
            f.write("[scenario]\nseed = frog\n")
        r = fuzz("--replay", bad)
        self.assertEqual(r.returncode, 2)
        self.assertNotIn("Traceback", r.stderr)


def main():
    global FUZZ_BIN
    ap = argparse.ArgumentParser()
    ap.add_argument("--fuzz-bin", required=True,
                    help="path to the built homp-fuzz binary")
    args, rest = ap.parse_known_args()
    FUZZ_BIN = args.fuzz_bin
    unittest.main(argv=[sys.argv[0]] + rest)


if __name__ == "__main__":
    main()
