#include "dist/align.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::dist {
namespace {

TEST(AlignmentGraph, ResolvesConcreteDirectly) {
  AlignmentGraph g;
  g.set_concrete("x", Distribution::block(Range(0, 10), 2));
  EXPECT_EQ(g.resolve("x").part(0), Range(0, 5));
  EXPECT_EQ(g.root_of("x"), "x");
  EXPECT_EQ(g.ratio_to_root("x"), 1.0);
}

TEST(AlignmentGraph, FollowsChainToRoot) {
  AlignmentGraph g;
  g.set_concrete("loop", Distribution::block(Range(0, 8), 2));
  g.set_aligned("x", "loop");
  g.set_aligned("y", "x");
  EXPECT_EQ(g.root_of("y"), "loop");
  EXPECT_EQ(g.resolve("y").part(1), Range(4, 8));
}

TEST(AlignmentGraph, ComposesRatiosAlongChain) {
  AlignmentGraph g;
  g.set_concrete("loop", Distribution::block(Range(0, 4), 2));
  g.set_aligned("blocks", "loop", 4.0);
  g.set_aligned("pixels", "blocks", 4.0);
  EXPECT_EQ(g.ratio_to_root("pixels"), 16.0);
  EXPECT_EQ(g.resolve("pixels").domain(), Range(0, 64));
  EXPECT_EQ(g.resolve("pixels").part(0), Range(0, 32));
}

TEST(AlignmentGraph, DetectsCycles) {
  AlignmentGraph g;
  g.set_aligned("a", "b");
  g.set_aligned("b", "a");
  EXPECT_THROW(g.resolve("a"), homp::ConfigError);
  EXPECT_THROW(g.root_of("b"), homp::ConfigError);
}

TEST(AlignmentGraph, DanglingTargetThrows) {
  AlignmentGraph g;
  g.set_aligned("a", "ghost");
  EXPECT_THROW(g.resolve("a"), homp::ConfigError);
  EXPECT_THROW(g.resolve("never-registered"), homp::ConfigError);
}

TEST(AlignmentGraph, SelfAlignmentRejected) {
  AlignmentGraph g;
  EXPECT_THROW(g.set_aligned("a", "a"), homp::ConfigError);
}

TEST(AlignmentGraph, RebindOverwrites) {
  AlignmentGraph g;
  g.set_concrete("loop", Distribution::block(Range(0, 10), 2));
  g.set_aligned("x", "loop");
  // Re-encountering the region rebinds the label.
  g.set_concrete("loop", Distribution::block(Range(0, 20), 2));
  EXPECT_EQ(g.resolve("x").domain(), Range(0, 20));
}

TEST(AlignmentGraph, NamesSorted) {
  AlignmentGraph g;
  g.set_concrete("zeta", Distribution::block(Range(0, 2), 1));
  g.set_aligned("alpha", "zeta");
  auto names = g.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace homp::dist
