#include "dist/distribution.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::dist {
namespace {

TEST(Distribution, BlockEvenAndRemnant) {
  // Matches the axpy_omp_mdev remnant logic: first (n % m) parts get one
  // extra iteration.
  auto d = Distribution::block(Range(0, 10), 4);
  EXPECT_EQ(d.part(0), Range(0, 3));
  EXPECT_EQ(d.part(1), Range(3, 6));
  EXPECT_EQ(d.part(2), Range(6, 8));
  EXPECT_EQ(d.part(3), Range(8, 10));
  EXPECT_TRUE(d.is_partition());
  EXPECT_FALSE(d.is_replication());
}

TEST(Distribution, BlockMoreDevicesThanWork) {
  auto d = Distribution::block(Range(0, 2), 5);
  EXPECT_EQ(d.part(0).size(), 1);
  EXPECT_EQ(d.part(1).size(), 1);
  for (std::size_t i = 2; i < 5; ++i) EXPECT_TRUE(d.part(i).empty());
  EXPECT_TRUE(d.is_partition());
}

TEST(Distribution, FullReplicates) {
  auto d = Distribution::full(Range(0, 8), 3);
  EXPECT_TRUE(d.is_replication());
  EXPECT_FALSE(d.is_partition());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(d.part(i), Range(0, 8));
}

TEST(Distribution, ByWeightsProportionalAndExact) {
  auto d = Distribution::by_weights(Range(0, 100), {3.0, 1.0});
  EXPECT_EQ(d.part(0).size(), 75);
  EXPECT_EQ(d.part(1).size(), 25);
  EXPECT_TRUE(d.is_partition());
}

TEST(Distribution, ByWeightsLargestRemainder) {
  // 10 over weights {1,1,1}: 4,3,3 (first gets the remainder).
  auto d = Distribution::by_weights(Range(0, 10), {1.0, 1.0, 1.0});
  EXPECT_EQ(d.part(0).size(), 4);
  EXPECT_EQ(d.part(1).size(), 3);
  EXPECT_EQ(d.part(2).size(), 3);
  EXPECT_TRUE(d.is_partition());
}

TEST(Distribution, ByWeightsZeroWeightGetsNothing) {
  auto d = Distribution::by_weights(Range(0, 10), {1.0, 0.0, 1.0});
  EXPECT_EQ(d.part(1).size(), 0);
  EXPECT_EQ(d.part(0).size() + d.part(2).size(), 10);
  EXPECT_TRUE(d.is_partition());
}

TEST(Distribution, ByWeightsRejectsBadInput) {
  EXPECT_THROW(Distribution::by_weights(Range(0, 10), {}), homp::ConfigError);
  EXPECT_THROW(Distribution::by_weights(Range(0, 10), {0.0, 0.0}),
               homp::ConfigError);
  EXPECT_THROW(Distribution::by_weights(Range(0, 10), {-1.0, 2.0}),
               homp::ConfigError);
}

TEST(Distribution, ByCountsValidatesTotal) {
  EXPECT_THROW(Distribution::by_counts(Range(0, 10), {3, 3}),
               homp::ConfigError);
  auto d = Distribution::by_counts(Range(5, 15), {4, 0, 6});
  EXPECT_EQ(d.part(0), Range(5, 9));
  EXPECT_EQ(d.part(2), Range(9, 15));
}

TEST(Distribution, AlignedScalesParts) {
  auto d = Distribution::block(Range(0, 4), 2).aligned(16.0);
  EXPECT_EQ(d.domain(), Range(0, 64));
  EXPECT_EQ(d.part(0), Range(0, 32));
  EXPECT_EQ(d.part(1), Range(32, 64));
  EXPECT_TRUE(d.is_partition());
}

TEST(Distribution, WidenedClampsToDomain) {
  auto d = Distribution::block(Range(0, 30), 3).widened(2, 2);
  EXPECT_EQ(d.part(0), Range(0, 12));   // clamped low
  EXPECT_EQ(d.part(1), Range(8, 22));
  EXPECT_EQ(d.part(2), Range(18, 30));  // clamped high
  EXPECT_FALSE(d.is_partition());       // halos overlap
}

TEST(Distribution, PartsOutsideDomainRejected) {
  EXPECT_THROW(Distribution(Range(0, 5), {Range(3, 7)}), homp::ConfigError);
}

}  // namespace
}  // namespace homp::dist
