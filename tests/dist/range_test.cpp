#include "dist/range.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::dist {
namespace {

TEST(Range, BasicProperties) {
  Range r(3, 10);
  EXPECT_EQ(r.size(), 7);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(3));
  EXPECT_TRUE(r.contains(9));
  EXPECT_FALSE(r.contains(10));
  EXPECT_TRUE(Range(5, 5).empty());
  EXPECT_EQ(Range(8, 2).size(), 0);
}

TEST(Range, Intersect) {
  EXPECT_EQ(Range(0, 10).intersect(Range(5, 15)), Range(5, 10));
  EXPECT_TRUE(Range(0, 5).intersect(Range(7, 9)).empty());
  EXPECT_EQ(Range(0, 10).intersect(Range(2, 3)), Range(2, 3));
}

TEST(Range, WidenAndClamp) {
  Range owned(4, 8);
  Range fp = owned.widened(2, 3);
  EXPECT_EQ(fp, Range(2, 11));
  EXPECT_EQ(fp.clamped_to(Range(0, 10)), Range(2, 10));
  EXPECT_EQ(Range(0, 2).widened(5, 0).clamped_to(Range(0, 10)), Range(0, 2));
}

TEST(Range, ScaledPreservesTiling) {
  // Adjacent ranges scaled by an integral ratio stay adjacent — the
  // ALIGN(loop, 16) case in block matching.
  Range a(0, 3), b(3, 7);
  EXPECT_EQ(a.scaled(16.0).hi, b.scaled(16.0).lo);
  EXPECT_EQ(a.scaled(16.0), Range(0, 48));
}

TEST(Range, ContainsRange) {
  EXPECT_TRUE(Range(0, 10).contains(Range(2, 5)));
  EXPECT_TRUE(Range(0, 10).contains(Range(7, 7)));  // empty always inside
  EXPECT_FALSE(Range(0, 10).contains(Range(5, 11)));
}

TEST(ExactCover, DetectsGapsAndOverlaps) {
  Range domain(0, 10);
  EXPECT_TRUE(exactly_covers(domain, {{0, 4}, {4, 10}}));
  EXPECT_TRUE(exactly_covers(domain, {{4, 10}, {0, 4}}));  // order-free
  EXPECT_TRUE(exactly_covers(domain, {{0, 4}, {4, 4}, {4, 10}}));  // empties ok
  EXPECT_FALSE(exactly_covers(domain, {{0, 4}, {5, 10}}));   // gap
  EXPECT_FALSE(exactly_covers(domain, {{0, 6}, {4, 10}}));   // overlap
  EXPECT_FALSE(exactly_covers(domain, {{0, 10}, {0, 10}}));  // duplicate
  EXPECT_TRUE(exactly_covers(Range(5, 5), {}));              // empty domain
}

TEST(Region, VolumeAndContains) {
  Region r = Region::of_shape({4, 5});
  EXPECT_EQ(r.rank(), 2u);
  EXPECT_EQ(r.volume(), 20);
  Region sub({Range(1, 3), Range(0, 5)});
  EXPECT_TRUE(r.contains(sub));
  EXPECT_EQ(sub.volume(), 10);
  EXPECT_FALSE(sub.contains(r));
}

TEST(Region, WithDimAndIntersect) {
  Region r = Region::of_shape({6, 6});
  Region s = r.with_dim(0, Range(2, 4));
  EXPECT_EQ(s.dim(0), Range(2, 4));
  EXPECT_EQ(s.dim(1), Range(0, 6));
  Region t = s.intersect(r.with_dim(0, Range(3, 6)));
  EXPECT_EQ(t.dim(0), Range(3, 4));
}

TEST(Region, RankMismatchThrows) {
  Region a = Region::of_shape({4});
  Region b = Region::of_shape({4, 4});
  EXPECT_THROW(a.intersect(b), homp::ConfigError);
  EXPECT_THROW(a.contains(b), homp::ConfigError);
}

}  // namespace
}  // namespace homp::dist
