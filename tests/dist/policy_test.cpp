#include "dist/policy.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::dist {
namespace {

TEST(PolicyParse, Keywords) {
  EXPECT_EQ(parse_dim_policy("FULL").kind, PolicyKind::kFull);
  EXPECT_EQ(parse_dim_policy("block").kind, PolicyKind::kBlock);
  EXPECT_EQ(parse_dim_policy(" Auto ").kind, PolicyKind::kAuto);
}

TEST(PolicyParse, Align) {
  auto p = parse_dim_policy("ALIGN(loop1)");
  EXPECT_EQ(p.kind, PolicyKind::kAlign);
  EXPECT_EQ(p.align_target, "loop1");
  EXPECT_EQ(p.align_ratio, 1.0);

  auto q = parse_dim_policy("align(x, 16)");
  EXPECT_EQ(q.align_target, "x");
  EXPECT_EQ(q.align_ratio, 16.0);
}

TEST(PolicyParse, Cyclic) {
  auto p = parse_dim_policy("CYCLIC(4)");
  EXPECT_EQ(p.kind, PolicyKind::kCyclic);
  EXPECT_EQ(p.cyclic_block, 4);
  EXPECT_EQ(parse_dim_policy("cyclic(2k)").cyclic_block, 2000);
}

TEST(PolicyParse, Malformed) {
  EXPECT_THROW(parse_dim_policy(""), ParseError);
  EXPECT_THROW(parse_dim_policy("BLOK"), ParseError);
  EXPECT_THROW(parse_dim_policy("ALIGN"), ParseError);
  EXPECT_THROW(parse_dim_policy("ALIGN()"), ParseError);
  EXPECT_THROW(parse_dim_policy("ALIGN(x, y)"), ParseError);
  EXPECT_THROW(parse_dim_policy("ALIGN(x, -2)"), ParseError);
  EXPECT_THROW(parse_dim_policy("CYCLIC()"), ParseError);
  EXPECT_THROW(parse_dim_policy("CYCLIC(0)"), ParseError);
  EXPECT_THROW(parse_dim_policy("CYCLIC(a)"), homp::Error);
}

TEST(PolicyPrint, RoundTrips) {
  for (const char* text :
       {"FULL", "BLOCK", "AUTO", "ALIGN(loop1)", "CYCLIC(8)"}) {
    auto p = parse_dim_policy(text);
    EXPECT_EQ(p.to_string(), text);
    EXPECT_EQ(parse_dim_policy(p.to_string()), p);
  }
  // Non-unit ratio prints with the ratio.
  auto p = parse_dim_policy("ALIGN(x, 16)");
  EXPECT_EQ(p.to_string(), "ALIGN(x, 16)");
}

TEST(PolicyFactories, MatchParsed) {
  EXPECT_EQ(DimPolicy::block(), parse_dim_policy("BLOCK"));
  EXPECT_EQ(DimPolicy::align("a", 2.0), parse_dim_policy("ALIGN(a, 2)"));
  EXPECT_EQ(DimPolicy::cyclic(3), parse_dim_policy("CYCLIC(3)"));
}

}  // namespace
}  // namespace homp::dist
