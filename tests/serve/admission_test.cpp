// Admission-control contract of serve::OffloadServer: bounded queues
// with reject-vs-block backpressure, deadline admission against the
// MODEL_2 prediction, memory-feasibility rejection, and configuration
// validation (docs/SERVING.md).

#include <gtest/gtest.h>

#include "common/error.h"
#include "machine/profiles.h"
#include "serve/server.h"

namespace homp::serve {
namespace {

TenantSpec tenant(const std::string& name, BackpressureMode bp,
                  std::size_t depth) {
  TenantSpec t;
  t.name = name;
  t.backpressure = bp;
  t.max_queue_depth = depth;
  return t;
}

JobSpec small_job() {
  JobSpec j;
  j.kernel = "axpy";
  j.n = 1 << 14;
  j.devices = 2;
  return j;
}

TEST(Admission, RejectModeFailsFastWithRetryAfter) {
  OffloadServer server(mach::builtin("full"),
                       {tenant("t", BackpressureMode::kReject, 1)});

  auto first = server.submit("t", small_job());
  EXPECT_EQ(first.outcome, AdmitOutcome::kAdmitted);
  EXPECT_GT(first.job_id, 0u);

  auto second = server.submit("t", small_job());
  EXPECT_EQ(second.outcome, AdmitOutcome::kRejectedQueueFull);
  EXPECT_FALSE(second.accepted());
  EXPECT_GT(second.retry_after_s, 0.0);

  server.run();
  const auto& c = server.report().counts[0];
  EXPECT_EQ(c.submitted, 2u);
  EXPECT_EQ(c.admitted, 1u);
  EXPECT_EQ(c.rejected_queue_full, 1u);
  EXPECT_EQ(c.completed, 1u);
}

TEST(Admission, BlockModeParksInVestibuleAndPromotes) {
  OffloadServer server(mach::builtin("full"),
                       {tenant("t", BackpressureMode::kBlock, 1)});

  // Whole-pool jobs: with depth 1, the third submission can only leave
  // the vestibule after the first job finishes and the second one pops,
  // so it accrues real (virtual-time) blocked wait.
  JobSpec wide = small_job();
  wide.devices = 6;
  auto first = server.submit("t", wide);
  auto second = server.submit("t", wide);
  auto third = server.submit("t", wide);
  EXPECT_EQ(first.outcome, AdmitOutcome::kAdmitted);
  EXPECT_EQ(second.outcome, AdmitOutcome::kBlocked);
  EXPECT_EQ(third.outcome, AdmitOutcome::kBlocked);
  EXPECT_TRUE(second.accepted());

  server.run();

  const auto& rep = server.report();
  const auto& c = rep.counts[0];
  EXPECT_EQ(c.blocked, 2u);
  EXPECT_EQ(c.admitted, 3u);  // promoted submissions are admitted too
  EXPECT_EQ(c.completed, 3u);

  // The audit shows both promotions; the third job, promoted only
  // after the first one finished, recorded a positive vestibule wait.
  std::size_t waited = 0, unblocks = 0;
  for (const auto& j : rep.jobs) waited += j.blocked_s > 0.0 ? 1 : 0;
  for (const auto& e : rep.events) {
    unblocks += e.kind == ServeEventKind::kUnblock ? 1 : 0;
  }
  EXPECT_GE(waited, 1u);
  EXPECT_EQ(unblocks, 2u);
  EXPECT_TRUE(rep.validate().empty());
}

TEST(Admission, DeadlineRejectsWhenPredictionExceedsIt) {
  OffloadServer server(mach::builtin("full"),
                       {tenant("t", BackpressureMode::kReject, 8)});

  JobSpec hopeless = small_job();
  hopeless.deadline_s = 1e-12;
  auto r = server.submit("t", hopeless);
  EXPECT_EQ(r.outcome, AdmitOutcome::kRejectedDeadline);

  JobSpec generous = small_job();
  generous.deadline_s =
      100.0 * server.predicted_job_seconds("axpy", generous.n, 2);
  EXPECT_EQ(server.submit("t", generous).outcome, AdmitOutcome::kAdmitted);

  server.run();
  EXPECT_EQ(server.report().counts[0].rejected_deadline, 1u);
  EXPECT_EQ(server.report().counts[0].completed, 1u);
}

TEST(Admission, InfeasibleFootprintRejectedAtTheDoor) {
  ServeOptions opts;
  opts.device_mem_bytes = 64.0;  // nothing real fits
  OffloadServer server(mach::builtin("full"),
                       {tenant("t", BackpressureMode::kReject, 8)}, opts);

  auto r = server.submit("t", small_job());
  EXPECT_EQ(r.outcome, AdmitOutcome::kRejectedInfeasible);
  server.run();
  EXPECT_EQ(server.report().counts[0].rejected_infeasible, 1u);
  EXPECT_TRUE(server.report().jobs.empty());
}

TEST(Admission, ConfigurationIsValidated) {
  const auto machine = mach::builtin("full");

  EXPECT_THROW(OffloadServer(machine, {}), ConfigError);

  auto dup = tenant("t", BackpressureMode::kReject, 4);
  EXPECT_THROW(OffloadServer(machine, {dup, dup}), ConfigError);

  auto bad_weight = tenant("t", BackpressureMode::kReject, 4);
  bad_weight.weight = 0.0;
  EXPECT_THROW(OffloadServer(machine, {bad_weight}), ConfigError);

  ServeOptions bad_floor;
  bad_floor.floor_fraction = 1.0;
  EXPECT_THROW(OffloadServer(machine, {tenant("t", BackpressureMode::kReject, 4)},
                             bad_floor),
               ConfigError);

  OffloadServer server(machine, {tenant("t", BackpressureMode::kReject, 4)});
  EXPECT_THROW(server.submit("nobody", small_job()), ConfigError);

  JobSpec bad_job = small_job();
  bad_job.n = 0;
  EXPECT_THROW(server.submit("t", bad_job), ConfigError);
}

}  // namespace
}  // namespace homp::serve
