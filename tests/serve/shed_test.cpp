// Load-shedding ladder contract (docs/SERVING.md): backlog-driven
// transitions land in the decision audit, L1 strips speculation, L2 caps
// device grants, L3 refuses the lowest class at the door, and hysteresis
// brings the ladder back down once the backlog drains.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "machine/profiles.h"
#include "serve/server.h"

namespace homp::serve {
namespace {

TenantSpec tenant(const std::string& name, PriorityClass cls) {
  TenantSpec t;
  t.name = name;
  t.priority = cls;
  t.max_queue_depth = 64;
  return t;
}

JobSpec job(int devices = 2) {
  JobSpec j;
  j.kernel = "axpy";
  j.n = 1 << 15;
  j.devices = devices;
  return j;
}

TEST(Shed, LadderClimbsShedsLowestClassAndRecovers) {
  ServeOptions opts;
  opts.shed_l1_depth = 2;
  opts.shed_l2_depth = 4;
  opts.shed_l3_depth = 6;
  OffloadServer server(mach::builtin("full"),
                       {tenant("gold", PriorityClass::kGold),
                        tenant("bronze", PriorityClass::kBronze)},
                       opts);

  for (int i = 0; i < 8; ++i) ASSERT_TRUE(server.submit("gold", job()).accepted());
  EXPECT_EQ(server.shed_level(), 3);

  // L3: bronze is refused before any planning work is spent on it.
  auto r = server.submit("bronze", job());
  EXPECT_EQ(r.outcome, AdmitOutcome::kRejectedShed);

  server.run();
  const auto& rep = server.report();

  // The drain empties the backlog, so the ladder walked back to L0 —
  // and every transition (up and down) is in the audit.
  EXPECT_EQ(rep.final_shed_level, 0);
  EXPECT_GE(rep.shed_transitions, 2u);
  std::size_t shed_events = 0;
  for (const auto& e : rep.events) {
    shed_events += e.kind == ServeEventKind::kShedLevel ? 1 : 0;
  }
  EXPECT_EQ(shed_events, rep.shed_transitions);

  // Jobs dispatched while the ladder was raised ran without
  // speculation (L1 degradation), and the records say so.
  EXPECT_GT(rep.speculation_shed_jobs, 0u);
  std::size_t flagged = 0;
  for (const auto& j : rep.jobs) flagged += j.speculation_shed ? 1 : 0;
  EXPECT_EQ(flagged, rep.speculation_shed_jobs);

  EXPECT_EQ(rep.counts[1].rejected_shed, 1u);
  EXPECT_TRUE(rep.validate().empty());
}

TEST(Shed, L2CapsDeviceGrants) {
  ServeOptions opts;
  opts.shed_l1_depth = 1;
  opts.shed_l2_depth = 2;
  opts.shed_l3_depth = 100;  // keep L3 out of the way
  opts.shed_l2_device_cap = 1;
  OffloadServer server(mach::builtin("full"),
                       {tenant("t", PriorityClass::kSilver)}, opts);

  // Every job asks for 4 devices; the backlog pins the ladder at L2
  // until the queue is nearly empty, so grants stay capped at 1.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(server.submit("t", job(4)).accepted());
  EXPECT_GE(server.shed_level(), 2);
  server.run();

  const auto& rep = server.report();
  ASSERT_EQ(rep.jobs.size(), 6u);
  std::size_t capped = 0;
  for (const auto& j : rep.jobs) capped += j.devices_granted == 1 ? 1 : 0;
  EXPECT_GE(capped, 4u);  // the tail may dispatch after the ladder drops
  EXPECT_TRUE(rep.validate().empty());
}

}  // namespace
}  // namespace homp::serve
