// Scheduling-fairness contract (docs/SERVING.md): weighted-fair shares
// within a class under saturation, strict priority across classes, and
// the starvation floor that keeps the lowest class alive anyway.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "machine/profiles.h"
#include "serve/server.h"

namespace homp::serve {
namespace {

TenantSpec tenant(const std::string& name, PriorityClass cls, double weight) {
  TenantSpec t;
  t.name = name;
  t.priority = cls;
  t.weight = weight;
  t.max_queue_depth = 64;
  return t;
}

JobSpec job(long long n = 1 << 15, int devices = 2) {
  JobSpec j;
  j.kernel = "axpy";
  j.n = n;
  j.devices = devices;
  return j;
}

/// Tenant names in dispatch order, from the decision audit.
std::vector<std::string> dispatch_order(const ServeReport& rep) {
  std::vector<std::string> order;
  for (const auto& e : rep.events) {
    if (e.kind == ServeEventKind::kDispatch) order.push_back(e.tenant);
  }
  return order;
}

/// A deep pre-run backlog is the saturation vehicle here; park the shed
/// ladder far away so admission stays open for it.
ServeOptions no_shedding() {
  ServeOptions opts;
  opts.shed_l1_depth = 1000;
  opts.shed_l2_depth = 2000;
  opts.shed_l3_depth = 3000;
  return opts;
}

TEST(Fairness, WfqSharesTrackWeightsUnderSaturation) {
  OffloadServer server(
      mach::builtin("full"),
      {tenant("heavy", PriorityClass::kSilver, 2.0),
       tenant("light", PriorityClass::kSilver, 1.0)},
      no_shedding());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(server.submit("heavy", job()).accepted());
    ASSERT_TRUE(server.submit("light", job()).accepted());
  }
  server.run();

  // While both tenants stay backlogged (the first 24 dispatches, well
  // before either 30-deep queue drains), identical jobs mean the WFQ
  // credits realize the 2:1 weight ratio directly.
  const auto order = dispatch_order(server.report());
  ASSERT_GE(order.size(), 24u);
  std::size_t heavy = 0, light = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    (order[i] == "heavy" ? heavy : light) += 1;
  }
  ASSERT_GT(light, 0u);
  const double ratio =
      static_cast<double>(heavy) / static_cast<double>(light);
  EXPECT_GE(ratio, 1.6) << "heavy=" << heavy << " light=" << light;
  EXPECT_LE(ratio, 2.6) << "heavy=" << heavy << " light=" << light;
  EXPECT_TRUE(server.report().validate().empty());
}

TEST(Fairness, StrictPriorityServesGoldBeforeBronze) {
  ServeOptions opts = no_shedding();
  opts.floor_fraction = 0.0;  // pure strict priority
  OffloadServer server(mach::builtin("full"),
                       {tenant("gold", PriorityClass::kGold, 1.0),
                        tenant("bronze", PriorityClass::kBronze, 1.0)},
                       opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.submit("gold", job()).accepted());
    ASSERT_TRUE(server.submit("bronze", job()).accepted());
  }
  server.run();

  // With no floor, every gold dispatch precedes the first bronze one.
  const auto order = dispatch_order(server.report());
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], "gold") << "position " << i;
  }
  EXPECT_TRUE(server.report().validate().empty());
}

TEST(Fairness, FloorKeepsLowestClassAliveUnderGoldPressure) {
  ServeOptions opts = no_shedding();
  opts.floor_fraction = 0.2;
  OffloadServer server(mach::builtin("full"),
                       {tenant("gold", PriorityClass::kGold, 1.0),
                        tenant("bronze", PriorityClass::kBronze, 1.0)},
                       opts);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(server.submit("gold", job()).accepted());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(server.submit("bronze", job()).accepted());
  server.run();

  const auto order = dispatch_order(server.report());
  ASSERT_EQ(order.size(), 50u);

  // Bronze progresses while gold still has a deep backlog: within the
  // first 20 dispatches it receives at least ~floor_fraction of them.
  std::size_t bronze_early = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    bronze_early += order[i] == "bronze" ? 1 : 0;
  }
  EXPECT_GE(bronze_early, 2u);

  // And no bronze starvation overall: its first dispatch is not parked
  // behind the whole gold queue.
  std::size_t first_bronze = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "bronze") {
      first_bronze = i;
      break;
    }
  }
  EXPECT_LT(first_bronze, 10u);
  EXPECT_TRUE(server.report().validate().empty());
}

}  // namespace
}  // namespace homp::serve
