// Job-level failure domains of serve::OffloadServer (docs/SERVING.md
// "Job failure domains"): an unrecoverable error inside one tenant's job
// becomes a terminal kFail record while every other tenant keeps being
// served; admitted deadlines cancel jobs cooperatively mid-run, from the
// queue, and from the vestibule (promote-then-terminate); consecutive
// failures trip the per-tenant circuit breaker, which re-admits through
// a probation probe; and a drained server retains zero job objects and
// zero pending engine timers (no graveyard).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "machine/profiles.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace homp::serve {
namespace {

TenantSpec tenant(const std::string& name,
                  BackpressureMode bp = BackpressureMode::kReject,
                  std::size_t depth = 8) {
  TenantSpec t;
  t.name = name;
  t.backpressure = bp;
  t.max_queue_depth = depth;
  return t;
}

JobSpec job(long long n, int devices,
            sched::AlgorithmKind alg = sched::AlgorithmKind::kDynamic) {
  JobSpec j;
  j.kernel = "axpy";
  j.n = n;
  j.devices = devices;
  j.algorithm = alg;
  return j;
}

/// Every test ends with this: no retained job objects, no pending
/// timers, no live generations — the drained-server memory-flatness
/// contract that replaced the graveyard.
void expect_drained_flat(OffloadServer& server) {
  EXPECT_EQ(server.retained_jobs(), 0u);
  EXPECT_EQ(server.engine().live_events(), 0u);
  EXPECT_EQ(server.engine().live_generations(), 0u);
}

const JobRecord* find_job(const ServeReport& rep, std::uint64_t id) {
  for (const auto& j : rep.jobs) {
    if (j.job_id == id) return &j;
  }
  return nullptr;
}

std::size_t count_events(const ServeReport& rep, ServeEventKind kind) {
  std::size_t n = 0;
  for (const auto& e : rep.events) n += e.kind == kind ? 1 : 0;
  return n;
}

// The ISSUE acceptance regression: a scripted unrecoverable fault in one
// tenant's jobs mid-run produces terminal kFail records, while every
// other tenant's jobs complete. materialize=true makes the server
// execute and verify each completed job against the sequential
// reference, so "completed" below also means bit-correct results.
TEST(FailureDomain, PoisonTenantContainedOthersCompleteVerified) {
  auto poison = tenant("poison");
  poison.fault.fail_at_s = 1e-4;  // all granted devices die mid-run

  ServeOptions opts;
  opts.materialize = true;
  opts.breaker_threshold = 0;  // isolate containment from the breaker
  OffloadServer server(mach::builtin("full"),
                       {poison, tenant("a"), tenant("b")}, opts);

  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(server.submit("poison", job(1 << 12, 3)).accepted());
    EXPECT_TRUE(server.submit("a", job(1 << 12, 2)).accepted());
    EXPECT_TRUE(server.submit("b", job(1 << 12, 2)).accepted());
  }
  server.run();

  const auto& rep = server.report();
  EXPECT_EQ(rep.counts[0].failed, 2u);
  EXPECT_EQ(rep.counts[0].completed, 0u);
  EXPECT_EQ(rep.counts[1].completed, 2u);
  EXPECT_EQ(rep.counts[2].completed, 2u);
  for (const auto& j : rep.jobs) {
    if (j.tenant == "poison") {
      EXPECT_EQ(j.outcome, JobOutcome::kFail);
      EXPECT_FALSE(j.ok);
      EXPECT_EQ(j.error_class, "all_devices_lost");
      EXPECT_FALSE(j.error.empty());
    } else {
      EXPECT_EQ(j.outcome, JobOutcome::kCompleted);
      EXPECT_TRUE(j.ok);
      EXPECT_EQ(j.iterations_done, j.n);
    }
  }
  EXPECT_EQ(count_events(rep, ServeEventKind::kFail), 2u);
  EXPECT_TRUE(rep.validate().empty());
  expect_drained_flat(server);
}

// An admitted job whose deadline passes mid-run is cooperatively
// cancelled: terminal kCancelled record with class "deadline_miss", the
// devices come back, and a concurrent clean tenant is untouched.
TEST(FailureDomain, DeadlineMissMidRunCancelsJob) {
  auto slow = tenant("slow");
  slow.fault.slowdown_rate = 0.95;  // admission's predictor can't see this
  slow.fault.slowdown_factor = 64.0;

  OffloadServer server(mach::builtin("full"), {slow, tenant("fast")});
  const double p = server.predicted_job_seconds("axpy", 1 << 14, 2);

  JobSpec doomed = job(1 << 14, 2);
  doomed.deadline_s = 4.0 * p;  // passes admission, unreachable at 64x
  const auto r = server.submit("slow", doomed);
  ASSERT_EQ(r.outcome, AdmitOutcome::kAdmitted);
  EXPECT_TRUE(server.submit("fast", job(1 << 14, 2)).accepted());
  server.run();

  const auto& rep = server.report();
  EXPECT_EQ(rep.counts[0].cancelled, 1u);
  EXPECT_EQ(rep.counts[1].completed, 1u);
  const JobRecord* doomed_rec = find_job(rep, r.job_id);
  ASSERT_NE(doomed_rec, nullptr);
  EXPECT_EQ(doomed_rec->outcome, JobOutcome::kCancelled);
  EXPECT_EQ(doomed_rec->error_class, "deadline_miss");
  EXPECT_EQ(count_events(rep, ServeEventKind::kCancel), 1u);

  // The cancelled job's devices were reclaimed: a follow-up run on a
  // fresh submission completes.
  EXPECT_TRUE(rep.validate().empty());
  expect_drained_flat(server);
}

// A deadline that expires while the job still waits in the queue
// cancels it without a dispatch: the record is terminal kCancelled with
// dispatch_time == finish_time, and FIFO/accounting stay valid.
TEST(FailureDomain, DeadlineExpiredInQueueCancelsWithoutDispatch) {
  auto slow = tenant("slow");
  slow.fault.slowdown_rate = 0.95;
  slow.fault.slowdown_factor = 64.0;

  OffloadServer server(mach::builtin("full"), {slow});
  const double p = server.predicted_job_seconds("axpy", 1 << 14, 6);

  // Job 1 holds the whole pool ~64x longer than predicted; job 2's
  // deadline is generous against the (fault-blind) queue estimate but
  // expires long before job 1 actually finishes.
  EXPECT_TRUE(server.submit("slow", job(1 << 14, 6)).accepted());
  JobSpec queued = job(1 << 14, 6);
  queued.deadline_s = 10.0 * p;
  const auto r = server.submit("slow", queued);
  ASSERT_EQ(r.outcome, AdmitOutcome::kAdmitted);
  server.run();

  const auto& rep = server.report();
  EXPECT_EQ(rep.counts[0].completed, 1u);
  EXPECT_EQ(rep.counts[0].cancelled, 1u);
  const JobRecord* rec = find_job(rep, r.job_id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->outcome, JobOutcome::kCancelled);
  EXPECT_EQ(rec->error_class, "deadline_miss");
  EXPECT_EQ(rec->dispatch_time, rec->finish_time);  // never dispatched
  EXPECT_EQ(rec->iterations_done, 0);
  EXPECT_TRUE(rep.validate().empty());
  expect_drained_flat(server);
}

// Vestibule x cancellation: a blocked submission whose deadline expires
// before room opens is promoted then terminated — it formally enters
// the queue (kUnblock + kAdmit, admitted counted) so per-tenant FIFO
// and accounting hold, then records terminal kCancelled.
TEST(FailureDomain, VestibuleDeadlinePromoteThenTerminate) {
  auto slow = tenant("slow", BackpressureMode::kBlock, 1);
  slow.fault.slowdown_rate = 0.95;
  slow.fault.slowdown_factor = 64.0;

  OffloadServer server(mach::builtin("full"), {slow});
  const double p = server.predicted_job_seconds("axpy", 1 << 14, 6);

  EXPECT_TRUE(server.submit("slow", job(1 << 14, 6)).accepted());  // runs
  EXPECT_TRUE(server.submit("slow", job(1 << 14, 6)).accepted());  // queued
  JobSpec parked = job(1 << 14, 6);
  parked.deadline_s = 10.0 * p;  // expires while job 1 still runs
  const auto r = server.submit("slow", parked);
  ASSERT_EQ(r.outcome, AdmitOutcome::kBlocked);
  server.run();

  const auto& rep = server.report();
  EXPECT_EQ(rep.counts[0].blocked, 2u);   // jobs 2 and 3 both parked
  EXPECT_EQ(rep.counts[0].admitted, 3u);  // both promotions count
  EXPECT_EQ(rep.counts[0].completed, 2u);
  EXPECT_EQ(rep.counts[0].cancelled, 1u);
  const JobRecord* rec = find_job(rep, r.job_id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->outcome, JobOutcome::kCancelled);
  EXPECT_EQ(rec->error_class, "deadline_miss");
  EXPECT_GT(rec->blocked_s, 0.0);

  // Audit order for the parked job: kBlock, then kUnblock + kAdmit +
  // kCancel at expiry.
  int saw = 0;
  for (const auto& e : rep.events) {
    if (e.job_id != r.job_id) continue;
    if (e.kind == ServeEventKind::kBlock) EXPECT_EQ(saw++, 0);
    if (e.kind == ServeEventKind::kUnblock) EXPECT_EQ(saw++, 1);
    if (e.kind == ServeEventKind::kAdmit) EXPECT_EQ(saw++, 2);
    if (e.kind == ServeEventKind::kCancel) EXPECT_EQ(saw++, 3);
  }
  EXPECT_EQ(saw, 4);
  EXPECT_TRUE(rep.validate().empty());
  expect_drained_flat(server);
}

// A completed job cancels its own watchdog deadline timer: nothing
// fires later, no cancellation is recorded, and the engine drains
// clean.
TEST(FailureDomain, CompletionCancelsDeadlineTimer) {
  OffloadServer server(mach::builtin("full"), {tenant("t")});
  JobSpec j = job(1 << 14, 2);
  j.deadline_s = 100.0 * server.predicted_job_seconds("axpy", j.n, 2);
  EXPECT_TRUE(server.submit("t", j).accepted());
  server.run();

  const auto& rep = server.report();
  EXPECT_EQ(rep.counts[0].completed, 1u);
  EXPECT_EQ(rep.counts[0].cancelled, 0u);
  EXPECT_EQ(count_events(rep, ServeEventKind::kCancel), 0u);
  expect_drained_flat(server);
}

// Breaker lifecycle: consecutive kFail records trip the tenant open
// (submissions rejected with retry-after), the cooldown admits one
// probation probe, and the probe's success closes the breaker. Failures
// come from the per-job step budget — a dynamic 6-device offload costs
// ~225 engine events, a block 1-device one costs 3 — so the same tenant
// can fail deterministically and then recover.
TEST(FailureDomain, BreakerTripsProbesAndCloses) {
  ServeOptions opts;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown_base_s = 10.0;
  opts.breaker_cooldown_cap_s = 40.0;
  opts.base.harness.step_budget = 100;
  OffloadServer server(mach::builtin("full"),
                       {tenant("t", BackpressureMode::kReject, 16)}, opts);

  auto big = [&] { return job(1 << 14, 6); };
  auto small = [&] { return job(1 << 8, 1, sched::AlgorithmKind::kBlock); };

  AdmitOutcome while_open = AdmitOutcome::kAdmitted;
  double retry_after = 0.0;
  AdmitOutcome probe_verdict = AdmitOutcome::kRejectedBreaker;
  AdmitOutcome after_close = AdmitOutcome::kRejectedBreaker;

  auto& eng = server.engine();
  eng.schedule_after(0.0, [&] {
    EXPECT_TRUE(server.submit("t", big()).accepted());
    EXPECT_TRUE(server.submit("t", big()).accepted());
  });
  eng.schedule_after(5.0, [&] {  // both kFails landed; cooldown runs
    const auto r = server.submit("t", small());
    while_open = r.outcome;
    retry_after = r.retry_after_s;
  });
  eng.schedule_after(20.0, [&] {  // past the cooldown: probe slot
    probe_verdict = server.submit("t", small()).outcome;
  });
  eng.schedule_after(30.0, [&] {  // probe succeeded: breaker closed
    after_close = server.submit("t", small()).outcome;
  });
  server.run();

  EXPECT_EQ(while_open, AdmitOutcome::kRejectedBreaker);
  EXPECT_GT(retry_after, 0.0);
  EXPECT_EQ(probe_verdict, AdmitOutcome::kAdmitted);
  EXPECT_EQ(after_close, AdmitOutcome::kAdmitted);

  const auto& rep = server.report();
  EXPECT_EQ(rep.counts[0].failed, 2u);
  EXPECT_EQ(rep.counts[0].completed, 2u);
  EXPECT_EQ(rep.counts[0].rejected_breaker, 1u);
  EXPECT_EQ(rep.counts[0].breaker_trips, 1u);
  EXPECT_EQ(count_events(rep, ServeEventKind::kBreakerOpen), 1u);
  EXPECT_EQ(count_events(rep, ServeEventKind::kBreakerProbe), 1u);
  EXPECT_EQ(count_events(rep, ServeEventKind::kBreakerClose), 1u);
  for (const auto& j : rep.jobs) {
    if (j.outcome == JobOutcome::kFail) {
      EXPECT_EQ(j.error_class, "step_budget");
    }
  }
  EXPECT_TRUE(rep.validate().empty());
  expect_drained_flat(server);
}

// A failed probe re-opens the breaker with the cooldown grown
// (exponential backoff, capped), and counts another trip.
TEST(FailureDomain, FailedProbeReopensWithGrownCooldown) {
  ServeOptions opts;
  opts.breaker_threshold = 1;
  opts.breaker_cooldown_base_s = 10.0;
  opts.breaker_cooldown_growth = 2.0;
  opts.breaker_cooldown_cap_s = 80.0;
  opts.base.harness.step_budget = 100;
  OffloadServer server(mach::builtin("full"), {tenant("t")}, opts);

  auto big = [&] { return job(1 << 14, 6); };
  AdmitOutcome probe1 = AdmitOutcome::kRejectedBreaker;
  AdmitOutcome inside_grown = AdmitOutcome::kAdmitted;
  AdmitOutcome probe2 = AdmitOutcome::kRejectedBreaker;

  auto& eng = server.engine();
  eng.schedule_after(0.0, [&] {
    EXPECT_TRUE(server.submit("t", big()).accepted());  // kFail -> trip 1
  });
  eng.schedule_after(15.0, [&] {  // past cooldown 10: probe, fails again
    probe1 = server.submit("t", big()).outcome;
  });
  // Trip 2's cooldown is 20s from ~15s; still open at 25.
  eng.schedule_after(25.0, [&] {
    inside_grown =
        server.submit("t", job(1 << 8, 1, sched::AlgorithmKind::kBlock))
            .outcome;
  });
  eng.schedule_after(40.0, [&] {  // past the grown cooldown: probe again
    probe2 = server.submit("t", job(1 << 8, 1,
                                    sched::AlgorithmKind::kBlock)).outcome;
  });
  server.run();

  EXPECT_EQ(probe1, AdmitOutcome::kAdmitted);
  EXPECT_EQ(inside_grown, AdmitOutcome::kRejectedBreaker);
  EXPECT_EQ(probe2, AdmitOutcome::kAdmitted);
  const auto& rep = server.report();
  EXPECT_EQ(rep.counts[0].breaker_trips, 2u);
  EXPECT_EQ(count_events(rep, ServeEventKind::kBreakerOpen), 2u);
  EXPECT_EQ(count_events(rep, ServeEventKind::kBreakerClose), 1u);
  EXPECT_TRUE(rep.validate().empty());
  expect_drained_flat(server);
}

// Vestibule x cancellation x FIFO: when a parked submission expires and
// a later parked submission survives, the expired one is still admitted
// first (promote-then-terminate), and every dispatch for the tenant
// happens in submission order.
TEST(FailureDomain, VestibuleExpiryPreservesPerTenantFifo) {
  auto slow = tenant("slow", BackpressureMode::kBlock, 1);
  slow.fault.slowdown_rate = 0.95;
  slow.fault.slowdown_factor = 64.0;

  OffloadServer server(mach::builtin("full"), {slow});
  const double p = server.predicted_job_seconds("axpy", 1 << 14, 6);

  EXPECT_TRUE(server.submit("slow", job(1 << 14, 6)).accepted());  // runs
  EXPECT_TRUE(server.submit("slow", job(1 << 14, 6)).accepted());  // queued
  JobSpec doomed = job(1 << 14, 6);
  doomed.deadline_s = 10.0 * p;  // expires while job 1 still runs
  const auto a = server.submit("slow", doomed);
  ASSERT_EQ(a.outcome, AdmitOutcome::kBlocked);
  const auto b = server.submit("slow", job(1 << 14, 6));  // parked behind
  ASSERT_EQ(b.outcome, AdmitOutcome::kBlocked);
  server.run();

  const auto& rep = server.report();
  EXPECT_EQ(rep.counts[0].completed, 3u);
  EXPECT_EQ(rep.counts[0].cancelled, 1u);
  const JobRecord* cancelled = find_job(rep, a.job_id);
  ASSERT_NE(cancelled, nullptr);
  EXPECT_EQ(cancelled->outcome, JobOutcome::kCancelled);
  const JobRecord* survivor = find_job(rep, b.job_id);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->outcome, JobOutcome::kCompleted);

  // Job ids are assigned in submission order, so FIFO means both the
  // admit and the dispatch streams carry strictly increasing ids — with
  // the expired submission admitted (then terminated) before its
  // younger sibling, and never dispatched at all.
  std::uint64_t last_admit = 0, last_dispatch = 0;
  for (const auto& e : rep.events) {
    if (e.kind == ServeEventKind::kAdmit) {
      EXPECT_GT(e.job_id, last_admit);
      last_admit = e.job_id;
    } else if (e.kind == ServeEventKind::kDispatch) {
      EXPECT_GT(e.job_id, last_dispatch);
      EXPECT_NE(e.job_id, a.job_id);
      last_dispatch = e.job_id;
    }
  }
  EXPECT_EQ(last_admit, b.job_id);  // the parked survivor was admitted
  EXPECT_TRUE(rep.validate().empty());
  expect_drained_flat(server);
}

// A poison tenant behind a full vestibule: every parked submission is
// promoted in FIFO order and fails terminally after dispatch — failure
// containment and the vestibule compose.
TEST(FailureDomain, VestibulePromotionsOfFailingJobsKeepFifo) {
  auto poison = tenant("poison", BackpressureMode::kBlock, 1);
  poison.fault.fail_at_s = 1e-4;
  ServeOptions opts;
  opts.breaker_threshold = 0;  // every job must reach its own kFail
  OffloadServer server(mach::builtin("full"), {poison}, opts);

  // Dispatch is itself an engine event, so before run() the first
  // submission fills the depth-1 queue and both later ones park.
  const auto r1 = server.submit("poison", job(1 << 12, 2));
  EXPECT_EQ(r1.outcome, AdmitOutcome::kAdmitted);
  const auto r2 = server.submit("poison", job(1 << 12, 2));
  ASSERT_EQ(r2.outcome, AdmitOutcome::kBlocked);
  const auto r3 = server.submit("poison", job(1 << 12, 2));
  ASSERT_EQ(r3.outcome, AdmitOutcome::kBlocked);
  server.run();

  const auto& rep = server.report();
  EXPECT_EQ(rep.counts[0].failed, 3u);
  EXPECT_EQ(rep.counts[0].completed, 0u);
  EXPECT_EQ(rep.counts[0].blocked, 2u);
  EXPECT_EQ(rep.counts[0].admitted, 3u);
  std::uint64_t last_dispatch = 0;
  for (const auto& e : rep.events) {
    if (e.kind != ServeEventKind::kDispatch) continue;
    EXPECT_GT(e.job_id, last_dispatch);
    last_dispatch = e.job_id;
  }
  EXPECT_EQ(last_dispatch, r3.job_id);
  for (const auto& j : rep.jobs) {
    EXPECT_EQ(j.outcome, JobOutcome::kFail);
    EXPECT_EQ(j.error_class, "all_devices_lost");
  }
  EXPECT_TRUE(rep.validate().empty());
  expect_drained_flat(server);
}

// Failure records flow into the summary JSON's per-tenant error-class
// map and the exported metrics.
TEST(FailureDomain, ErrorClassesReachSummaryAndMetrics) {
  auto poison = tenant("poison");
  poison.fault.fail_at_s = 1e-4;
  ServeOptions opts;
  opts.breaker_threshold = 0;
  OffloadServer server(mach::builtin("full"), {poison}, opts);
  EXPECT_TRUE(server.submit("poison", job(1 << 12, 2)).accepted());
  server.run();

  std::ostringstream ss;
  server.report().write_summary_json(ss);
  const std::string json = ss.str();
  EXPECT_NE(json.find("homp-serve-report-v2"), std::string::npos);
  EXPECT_NE(json.find("\"error_classes\""), std::string::npos);
  EXPECT_NE(json.find("\"all_devices_lost\": 1"), std::string::npos);

  obs::MetricsRegistry reg;
  server.report().export_metrics(reg);
  EXPECT_EQ(reg.value("homp_serve_failed_total", "tenant=\"poison\""), 1.0);
  expect_drained_flat(server);
}

}  // namespace
}  // namespace homp::serve
