// Reproducibility and reporting contract (docs/SERVING.md): same-seed
// traffic-driven serving runs produce byte-identical summary JSON;
// concurrent materialized jobs on the shared engine still compute the
// right answers; metrics and trace exports carry the tenant labels.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "machine/profiles.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/traffic.h"

namespace homp::serve {
namespace {

TenantSpec tenant(const std::string& name, PriorityClass cls,
                  BackpressureMode bp = BackpressureMode::kReject) {
  TenantSpec t;
  t.name = name;
  t.priority = cls;
  t.backpressure = bp;
  t.max_queue_depth = 8;
  return t;
}

/// One mixed open/closed-loop run; returns the summary JSON.
std::string traffic_run_summary(std::vector<JobRecord>* jobs_out = nullptr) {
  ServeOptions opts;
  opts.seed = 0xdecaf;
  opts.shed_l1_depth = 4;
  opts.shed_l2_depth = 8;
  opts.shed_l3_depth = 12;
  OffloadServer server(
      mach::builtin("full"),
      {tenant("gold", PriorityClass::kGold),
       tenant("bronze", PriorityClass::kBronze, BackpressureMode::kBlock)},
      opts);

  TenantLoad open;
  open.tenant = tenant("gold", PriorityClass::kGold);
  open.arrival_rate_hz = 400.0;
  open.duration_s = 0.05;
  open.seed = 7;

  TenantLoad closed;
  closed.tenant =
      tenant("bronze", PriorityClass::kBronze, BackpressureMode::kBlock);
  closed.closed_loop = true;
  closed.population = 3;
  closed.think_s = 1e-3;
  closed.duration_s = 0.05;
  closed.seed = 9;

  TrafficGen gen(server, {open, closed});
  gen.start();
  server.run();

  EXPECT_GT(gen.submitted(), 0u);
  EXPECT_TRUE(server.report().validate().empty());
  if (jobs_out) *jobs_out = server.report().jobs;
  std::ostringstream ss;
  server.report().write_summary_json(ss);
  return ss.str();
}

TEST(Determinism, SameSeedRunsProduceByteIdenticalSummaries) {
  const std::string a = traffic_run_summary();
  const std::string b = traffic_run_summary();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, ConcurrentMaterializedJobsComputeCorrectResults) {
  ServeOptions opts;
  opts.materialize = true;  // execute bodies and verify outputs
  OffloadServer server(mach::builtin("full"),
                       {tenant("a", PriorityClass::kSilver),
                        tenant("b", PriorityClass::kSilver)},
                       opts);
  JobSpec j;
  j.kernel = "axpy";
  j.n = 1 << 12;
  j.devices = 2;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(server.submit("a", j).accepted());
    ASSERT_TRUE(server.submit("b", j).accepted());
  }
  server.run();

  const auto& rep = server.report();
  ASSERT_EQ(rep.jobs.size(), 4u);
  for (const auto& job : rep.jobs) {
    EXPECT_TRUE(job.ok) << job.tenant << " job " << job.job_id;
    EXPECT_EQ(job.iterations_done, j.n);
  }
  // Concurrency actually happened: some job dispatched before the
  // previous one finished.
  bool overlapped = false;
  for (const auto& x : rep.jobs) {
    for (const auto& y : rep.jobs) {
      if (x.job_id != y.job_id && x.dispatch_time < y.finish_time &&
          y.dispatch_time < x.finish_time) {
        overlapped = true;
      }
    }
  }
  EXPECT_TRUE(overlapped);
  EXPECT_TRUE(rep.validate().empty());
}

TEST(Determinism, MetricsExportCarriesTenantLabels) {
  std::vector<JobRecord> jobs;
  (void)traffic_run_summary(&jobs);

  ServeOptions opts;
  OffloadServer server(mach::builtin("full"),
                       {tenant("gold", PriorityClass::kGold)}, opts);
  ASSERT_TRUE(server.submit("gold", JobSpec{}).accepted());
  server.run();

  obs::MetricsRegistry reg;
  server.report().export_metrics(reg);
  std::ostringstream prom;
  reg.write_prometheus(prom);
  const std::string text = prom.str();
  EXPECT_NE(text.find("homp_serve_submitted_total"), std::string::npos);
  EXPECT_NE(text.find("homp_serve_job_latency_seconds"), std::string::npos);
  EXPECT_NE(text.find("tenant=\"gold\""), std::string::npos);
}

TEST(Determinism, TraceExportGroupsSpansByTenant) {
  ServeOptions opts;
  opts.collect_trace = true;
  OffloadServer server(mach::builtin("full"),
                       {tenant("gold", PriorityClass::kGold),
                        tenant("bronze", PriorityClass::kBronze)},
                       opts);
  JobSpec j;
  j.kernel = "axpy";
  j.n = 1 << 14;
  ASSERT_TRUE(server.submit("gold", j).accepted());
  ASSERT_TRUE(server.submit("bronze", j).accepted());
  server.run();

  std::ostringstream ss;
  server.report().write_trace_json(ss);
  const std::string trace = ss.str();
  // One chrome-trace process per tenant, named via metadata, plus the
  // serve decision audit as instant events.
  EXPECT_NE(trace.find("process_name"), std::string::npos);
  EXPECT_NE(trace.find("\"gold\""), std::string::npos);
  EXPECT_NE(trace.find("\"bronze\""), std::string::npos);
  EXPECT_NE(trace.find("\"serve\""), std::string::npos);
}

}  // namespace
}  // namespace homp::serve
