// Lexer and parser of the HOMP kernel language.

#include <gtest/gtest.h>

#include "common/error.h"
#include "lang/parser.h"
#include "lang/token.h"

namespace homp::lang {
namespace {

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  auto toks = lex("y[i] += 2.5e-1 * x[i]; // comment\n i++");
  ASSERT_GE(toks.size(), 11u);
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "y");
  EXPECT_EQ(toks[1].kind, Tok::kLBracket);
  EXPECT_EQ(toks[4].kind, Tok::kPlusAssign);
  EXPECT_EQ(toks[5].kind, Tok::kNumber);
  EXPECT_DOUBLE_EQ(toks[5].number, 0.25);
  EXPECT_EQ(toks.back().kind, Tok::kEnd);
}

TEST(Lexer, SkipsTypeKeywordsAndComments) {
  auto toks = lex("int i; /* block\ncomment */ double resid;");
  // 'int' and 'double' vanish: "i ; resid ;"
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "i");
  EXPECT_EQ(toks[2].text, "resid");
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_THROW(lex("a @ b"), ParseError);
  EXPECT_THROW(lex("/* unterminated"), ParseError);
}

TEST(Parser, AxpyShape) {
  auto k = parse_kernel(
      "#pragma omp parallel target device(0:*) map(tofrom: y[0:n])\n"
      "for (i = 0; i < n; i++) y[i] = y[i] + a * x[i];");
  ASSERT_EQ(k.pragmas.size(), 1u);
  EXPECT_EQ(k.outer.var, "i");
  EXPECT_EQ(k.outer.step, 1);
  ASSERT_EQ(k.outer.body.size(), 1u);
  const auto& s = *k.outer.body[0];
  EXPECT_EQ(s.kind, Stmt::Kind::kAssign);
  EXPECT_EQ(s.target->kind, Expr::Kind::kArrayRef);
  EXPECT_EQ(s.target->name, "y");
  EXPECT_FALSE(s.compound);
}

TEST(Parser, PragmaContinuationLines) {
  auto k = parse_kernel(
      "#pragma omp parallel target device(0:*) \\\n"
      "    map(to: x[0:n])\n"
      "#pragma omp parallel for distribute dist_schedule(target:[AUTO])\n"
      "for (i = 0; i < n; i++) x[i] = 0;");
  ASSERT_EQ(k.pragmas.size(), 2u);
  EXPECT_NE(k.pragmas[0].find("map(to: x[0:n])"), std::string::npos);
}

TEST(Parser, NestedLoopsAndGuards) {
  auto k = parse_kernel(
      "#pragma omp target device(*) map(tofrom: u[0:n][0:m])\n"
      "for (i = 0; i < n; i++) {\n"
      "  if (i == 0 || i == n - 1) continue;\n"
      "  for (j = 1; j < m - 1; j++) {\n"
      "    u[i][j] = 0.25 * (u[i-1][j] + u[i+1][j]);\n"
      "  }\n"
      "}");
  ASSERT_EQ(k.outer.body.size(), 2u);
  EXPECT_EQ(k.outer.body[0]->kind, Stmt::Kind::kIfContinue);
  EXPECT_EQ(k.outer.body[1]->kind, Stmt::Kind::kFor);
  const auto& inner = *k.outer.body[1]->loop;
  EXPECT_EQ(inner.var, "j");
  ASSERT_EQ(inner.body.size(), 1u);
  const auto& asg = *inner.body[0];
  ASSERT_EQ(asg.target->args.size(), 2u);
}

TEST(Parser, IncrementForms) {
  for (const char* incr : {"i++", "i += 1", "i = i + 1"}) {
    auto k = parse_kernel(std::string("#pragma omp target device(*)\n") +
                          "for (i = 0; i < 8; " + incr + ") x[i] = 1;");
    EXPECT_EQ(k.outer.step, 1) << incr;
  }
  auto k = parse_kernel(
      "#pragma omp target device(*)\nfor (i = 0; i < 8; i += 2) x[i] = 1;");
  EXPECT_EQ(k.outer.step, 2);
}

TEST(Parser, Malformed) {
  EXPECT_THROW(parse_kernel("for (i = 0; i < 8; i++) x[i] = 1;"),
               homp::Error);  // no pragma
  EXPECT_THROW(parse_kernel("#pragma omp target device(*)\n"
                            "for (i = 0; j < 8; i++) x[i] = 1;"),
               ParseError);  // condition on the wrong variable
  EXPECT_THROW(parse_kernel("#pragma omp target device(*)\n"
                            "for (i = 0; i < 8; i--) x[i] = 1;"),
               ParseError);  // unsupported decrement
  EXPECT_THROW(parse_kernel("#pragma omp target device(*)\n"
                            "for (i = 0; i < 8; i++) { x[i] = 1;"),
               ParseError);  // unterminated brace
  EXPECT_THROW(parse_kernel("#pragma omp target device(*)\n"
                            "for (i = 0; i < 8; i++) if (i) x[i] = 1;"),
               ParseError);  // only if(...)continue guards
  EXPECT_THROW(parse_kernel("#pragma omp target device(*)\n"
                            "for (i = 0; i < 8; i++) 3 = x[i];"),
               ParseError);  // bad assignment target
}

TEST(Parser, ExpressionPrecedence) {
  auto k = parse_kernel(
      "#pragma omp target device(*)\n"
      "for (i = 0; i < 4; i++) r = a + b * c - d / e;");
  const auto& v = *k.outer.body[0]->value;
  // ((a + (b*c)) - (d/e))
  ASSERT_EQ(v.kind, Expr::Kind::kBinary);
  EXPECT_EQ(v.op, BinOp::kSub);
  EXPECT_EQ(v.lhs->op, BinOp::kAdd);
  EXPECT_EQ(v.lhs->rhs->op, BinOp::kMul);
  EXPECT_EQ(v.rhs->op, BinOp::kDiv);
}

}  // namespace
}  // namespace homp::lang
