// The paper's complete Fig. 3 Jacobi program — data region, copy loop,
// halo exchange and reduction sweep — compiled from (near-verbatim)
// source text and checked against a sequential solver.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lang/compile.h"
#include "memory/host_array.h"
#include "runtime/runtime.h"

namespace homp::lang {
namespace {

constexpr long long kN = 36;
constexpr long long kM = 30;
constexpr double kOmega = 0.6;
constexpr double kAx = 1.0;
constexpr double kAy = 1.1;
constexpr double kB = -4.5;
constexpr int kIters = 4;

double f_init(long long i, long long j) {
  return std::cos(0.2 * i) * std::sin(0.3 * j);
}
double u_init(long long i, long long j) {
  return 0.02 * static_cast<double>((3 * i + j) % 13);
}

double sequential(std::vector<std::vector<double>>* u_out) {
  std::vector<std::vector<double>> u(kN, std::vector<double>(kM));
  std::vector<std::vector<double>> uold = u;
  for (long long i = 0; i < kN; ++i) {
    for (long long j = 0; j < kM; ++j) u[i][j] = u_init(i, j);
  }
  double error = 0.0;
  for (int it = 0; it < kIters; ++it) {
    uold = u;
    error = 0.0;
    for (long long i = 1; i < kN - 1; ++i) {
      for (long long j = 1; j < kM - 1; ++j) {
        const double resid =
            (kAx * (uold[i - 1][j] + uold[i + 1][j]) +
             kAy * (uold[i][j - 1] + uold[i][j + 1]) + kB * uold[i][j] -
             f_init(i, j)) /
            kB;
        u[i][j] = uold[i][j] - kOmega * resid;
        error += resid * resid;
      }
    }
  }
  *u_out = u;
  return error;
}

TEST(RegionProgram, Figure3JacobiFromSource) {
  auto rt = rt::Runtime::from_builtin("full");
  auto u = mem::HostArray<double>::matrix(kN, kM);
  auto uold = mem::HostArray<double>::matrix(kN, kM, 0.0);
  auto f = mem::HostArray<double>::matrix(kN, kM);
  u.fill_with_indices(u_init);
  f.fill_with_indices(f_init);

  pragma::Bindings b;
  b.bind("f", f);
  b.bind("u", u);
  b.bind("uold", uold);
  b.let("n", kN);
  b.let("m", kM);
  Scalars consts;
  consts.let("omega", kOmega);
  consts.let("ax", kAx);
  consts.let("ay", kAy);
  consts.let("b", kB);

  // Fig. 3 lines 1-7 (the scalars travel by value with the bodies).
  auto region_src = compile_data_region(
      "#pragma omp parallel target data device(*) "
      "map(to:n, m, omega, ax, ay, b, "
      "  f[0:n][0:m] partition([ALIGN(loop1)], FULL)) "
      "map(tofrom:u[0:n][0:m] partition([ALIGN(loop1)], FULL)) "
      "map(alloc:uold[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,))",
      b, rt.machine(), "n");
  EXPECT_EQ(region_src.options.loop_label, "loop1");
  EXPECT_EQ(region_src.options.loop_domain, dist::Range(0, kN));
  EXPECT_EQ(region_src.options.device_ids.size(), 7u);
  auto region = rt.map_data(std::move(region_src.maps),
                            std::move(region_src.options));

  // Fig. 3 lines 9-13: the copy loop.
  auto copy_loop = compile_region_loop(
      "#pragma omp parallel for target device(*) collapse(2) "
      "distribute dist_schedule(target:[ALIGN(loop1)])\n"
      "for (i = 0; i < n; i++)\n"
      "  for (j = 0; j < m; j++)\n"
      "    uold[i][j] = u[i][j];\n",
      b, consts, "jacobi-copy");

  // Fig. 3 lines 17-29: the sweep with reduction.
  auto sweep_loop = compile_region_loop(
      "#pragma omp parallel for target device(*) reduction(+:error) "
      "distribute dist_schedule(target:[AUTO]) label(loop1)\n"
      "for (i = 0; i < n; i++) {\n"
      "  if (i == 0 || i == n - 1) continue;\n"
      "  for (j = 1; j < m - 1; j++) {\n"
      "    resid = (ax * (uold[i-1][j] + uold[i+1][j])\n"
      "           + ay * (uold[i][j-1] + uold[i][j+1])\n"
      "           + b * uold[i][j] - f[i][j]) / b;\n"
      "    u[i][j] = uold[i][j] - omega * resid;\n"
      "    error = error + resid * resid;\n"
      "  }\n"
      "}\n",
      b, consts, "jacobi-sweep");
  EXPECT_TRUE(sweep_loop.kernel.has_reduction);

  double error = 0.0;
  for (int it = 0; it < kIters; ++it) {
    region->offload(copy_loop.kernel);
    region->halo_exchange("uold");  // Fig. 3 line 15
    error = region->offload(sweep_loop.kernel).reduction;
  }
  region->close();

  std::vector<std::vector<double>> expect;
  const double expect_error = sequential(&expect);
  EXPECT_NEAR(error, expect_error, 1e-9 * std::max(1.0, expect_error));
  for (long long i = 0; i < kN; ++i) {
    for (long long j = 0; j < kM; ++j) {
      ASSERT_NEAR(u(i, j), expect[i][j], 1e-12) << i << "," << j;
    }
  }
}

TEST(RegionProgram, RegionCompileRejectsNonRegionDirectives) {
  auto rt = rt::Runtime::from_builtin("gpu4");
  pragma::Bindings b;
  b.let("n", 8);
  EXPECT_THROW(compile_data_region("#pragma omp parallel target device(*)",
                                   b, rt.machine(), "n"),
               homp::Error);
  // A region whose maps never mention a label has nothing to distribute.
  auto x = mem::HostArray<double>::vector(8, 0.0);
  b.bind("x", x);
  EXPECT_THROW(compile_data_region(
                   "#pragma omp target data device(*) map(to: x[0:n])", b,
                   rt.machine(), "n"),
               homp::ConfigError);
}

}  // namespace
}  // namespace homp::lang
