// Static cost analysis: the mini-compiler must derive the Table IV
// characteristics from kernel source.

#include <gtest/gtest.h>

#include "common/error.h"
#include "lang/analyze.h"
#include "lang/parser.h"

namespace homp::lang {
namespace {

CostCounts analyze(const std::string& body_src,
                   std::map<std::string, double> symbols) {
  auto k = parse_kernel("#pragma omp target device(*)\n" + body_src);
  return analyze_body(k.outer, symbols);
}

TEST(Analyze, AxpyMatchesTableIV) {
  // y[i] = y[i] + a*x[i]: 2 FLOPs, 3 element accesses = 24 bytes.
  auto c = analyze("for (i = 0; i < n; i++) y[i] = y[i] + a * x[i];",
                   {{"n", 1000}});
  EXPECT_DOUBLE_EQ(c.flops, 2.0);
  EXPECT_DOUBLE_EQ(c.mem_bytes, 24.0);
}

TEST(Analyze, CompoundAssignCountsReadAndFlop) {
  // y[i] += a*x[i]: same as axpy.
  auto c = analyze("for (i = 0; i < n; i++) y[i] += a * x[i];",
                   {{"n", 10}});
  EXPECT_DOUBLE_EQ(c.flops, 2.0);
  EXPECT_DOUBLE_EQ(c.mem_bytes, 24.0);
}

TEST(Analyze, SubscriptArithmeticIsFree) {
  // Index math (i+1, 2*i) costs no FLOPs; two loads + one store.
  auto c = analyze("for (i = 0; i < n; i++) y[i] = x[i + 1] + x[2 * i];",
                   {{"n", 10}});
  EXPECT_DOUBLE_EQ(c.flops, 1.0);  // the one value '+'
  EXPECT_DOUBLE_EQ(c.mem_bytes, 24.0);
}

TEST(Analyze, MatVecScalesWithInnerTripCount) {
  // Per row: N mul + N add (the acc += counts 1 add + the mul), N loads
  // of A, N loads of x, one store of y.
  auto c = analyze(
      "for (i = 0; i < n; i++) {\n"
      "  acc = 0;\n"
      "  for (j = 0; j < m; j++) acc += A[i][j] * x[j];\n"
      "  y[i] = acc;\n"
      "}",
      {{"n", 100}, {"m", 64}});
  EXPECT_DOUBLE_EQ(c.flops, 2.0 * 64);
  EXPECT_DOUBLE_EQ(c.mem_bytes, (2.0 * 64 + 1) * 8.0);
}

TEST(Analyze, GuardedBodyCountsInFull) {
  // SIMD assumption: the guard doesn't discount the following work.
  auto guarded = analyze(
      "for (i = 0; i < n; i++) {\n"
      "  if (i == 0 || i == n - 1) continue;\n"
      "  y[i] = 2 * x[i];\n"
      "}",
      {{"n", 10}});
  auto plain = analyze("for (i = 0; i < n; i++) y[i] = 2 * x[i];",
                       {{"n", 10}});
  // The guard's condition adds one '-' FLOP (n - 1); comparisons are free.
  EXPECT_DOUBLE_EQ(guarded.flops, plain.flops + 1.0);
  EXPECT_DOUBLE_EQ(guarded.mem_bytes, plain.mem_bytes);
}

TEST(Analyze, CallsCostOneFlop) {
  auto c = analyze("for (i = 0; i < n; i++) y[i] = fabs(x[i]);",
                   {{"n", 4}});
  EXPECT_DOUBLE_EQ(c.flops, 1.0);
}

TEST(Analyze, OuterTripCount) {
  auto k = parse_kernel(
      "#pragma omp target device(*)\n"
      "for (i = 2; i < n - 1; i++) y[i] = 0;");
  EXPECT_EQ(outer_trip_count(k.outer, {{"n", 100}}), 97);
}

TEST(Analyze, UnboundSymbolInBoundThrows) {
  auto k = parse_kernel(
      "#pragma omp target device(*)\n"
      "for (i = 0; i < n; i++) { for (j = 0; j < mystery; j++) y[j] = 0; }");
  EXPECT_THROW(analyze_body(k.outer, {{"n", 10}}), homp::ConfigError);
}

TEST(Analyze, ArrayRefInBoundThrows) {
  auto k = parse_kernel(
      "#pragma omp target device(*)\n"
      "for (i = 0; i < n; i++) { for (j = 0; j < y[0]; j++) x[j] = 0; }");
  EXPECT_THROW(analyze_body(k.outer, {{"n", 10}}), homp::ConfigError);
}

}  // namespace
}  // namespace homp::lang
