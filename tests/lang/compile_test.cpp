// End-to-end mini-compiler: the paper's source snippets compile into
// offloads whose results match native (hand-written) kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "lang/compile.h"
#include "machine/profiles.h"
#include "memory/host_array.h"
#include "runtime/runtime.h"

namespace homp::lang {
namespace {

TEST(Compile, AxpyFromFigure2Source) {
  constexpr long long kN = 4000;
  auto rt = rt::Runtime::from_builtin("full");
  auto x = mem::HostArray<double>::vector(kN);
  auto y = mem::HostArray<double>::vector(kN);
  x.fill_with_index([](long long i) { return static_cast<double>(i % 37); });
  y.fill(1.0);

  pragma::Bindings b;
  b.bind("x", x);
  b.bind("y", y);
  b.let("n", kN);
  Scalars consts;
  consts.let("a", 2.0);

  auto compiled = compile_kernel(R"(
#pragma omp parallel target device(0:*) \
    map(tofrom: y[0:n] partition([ALIGN(loop)])) \
    map(to: x[0:n] partition([ALIGN(loop)]), a, n)
#pragma omp parallel for distribute dist_schedule(target:[AUTO])
for (i = 0; i < n; i++)
  y[i] = y[i] + a * x[i];
)",
                                 b, consts, rt.machine(), "axpy-src");

  // Compiler analysis reproduced Table IV's axpy row.
  EXPECT_DOUBLE_EQ(compiled.kernel.cost.flops_per_iter, 2.0);
  EXPECT_DOUBLE_EQ(compiled.kernel.cost.mem_bytes_per_iter, 24.0);
  EXPECT_EQ(compiled.kernel.iterations, dist::Range(0, kN));
  EXPECT_EQ(compiled.options.device_ids.size(), 7u);
  EXPECT_TRUE(compiled.options.auto_select_algorithm);
  ASSERT_EQ(compiled.maps.size(), 2u);  // scalars skipped

  auto res = rt.offload(compiled.kernel, compiled.maps, compiled.options);
  EXPECT_EQ(res.total_iterations(), kN);
  for (long long i = 0; i < kN; ++i) {
    ASSERT_EQ(y(i), 1.0 + 2.0 * (i % 37)) << i;
  }
}

TEST(Compile, ReductionSumFromSource) {
  constexpr long long kN = 3000;
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto x = mem::HostArray<double>::vector(kN);
  x.fill_with_index([](long long i) { return static_cast<double>(i % 7); });

  pragma::Bindings b;
  b.bind("x", x);
  b.let("n", kN);
  auto compiled = compile_kernel(R"(
#pragma omp parallel for target device(0:*) reduction(+:s) \
    map(to: x[0:n] partition([ALIGN(loop)])) \
    distribute dist_schedule(target: SCHED_DYNAMIC(5%))
for (i = 0; i < n; i++)
  s = s + x[i];
)",
                                 b, Scalars{}, rt.machine(), "sum-src");

  EXPECT_TRUE(compiled.kernel.has_reduction);
  auto res = rt.offload(compiled.kernel, compiled.maps, compiled.options);
  double expect = 0.0;
  for (long long i = 0; i < kN; ++i) expect += x(i);
  EXPECT_NEAR(res.reduction, expect, 1e-9);
}

TEST(Compile, JacobiSweepFromFigure3Source) {
  // One sweep of the paper's Fig. 3 stencil, compiled from source and
  // compared to a direct computation. Single offload (uold = to) rather
  // than a data region, to isolate the compiler path.
  constexpr long long kN = 24, kM = 20;
  auto rt = rt::Runtime::from_builtin("cpu-mic");
  auto u = mem::HostArray<double>::matrix(kN, kM, 0.0);
  auto uold = mem::HostArray<double>::matrix(kN, kM);
  auto f = mem::HostArray<double>::matrix(kN, kM);
  uold.fill_with_indices([](long long i, long long j) {
    return std::sin(0.1 * i) + 0.05 * j;
  });
  f.fill_with_indices([](long long i, long long j) {
    return 0.01 * static_cast<double>(i * j % 11);
  });

  pragma::Bindings b;
  b.bind("u", u);
  b.bind("uold", uold);
  b.bind("f", f);
  b.let("n", kN);
  b.let("m", kM);
  Scalars consts;
  consts.let("ax", 1.0);
  consts.let("ay", 1.2);
  consts.let("b", -4.4);
  consts.let("omega", 0.7);

  auto compiled = compile_kernel(R"(
#pragma omp parallel for target device(*) reduction(+:error) \
    map(to: f[0:n][0:m] partition([ALIGN(loop1)], FULL)) \
    map(to: uold[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,)) \
    map(from: u[0:n][0:m] partition([ALIGN(loop1)], FULL)) \
    distribute dist_schedule(target:[AUTO]) label(loop1)
for (i = 0; i < n; i++) {
  if (i == 0 || i == n - 1) continue;
  for (j = 1; j < m - 1; j++) {
    resid = (ax * (uold[i-1][j] + uold[i+1][j])
           + ay * (uold[i][j-1] + uold[i][j+1])
           + b * uold[i][j] - f[i][j]) / b;
    u[i][j] = uold[i][j] - omega * resid;
    error = error + resid * resid;
  }
}
)",
                                 b, consts, rt.machine(), "jacobi-src");

  // Analysis: 13 FLOPs per interior point (paper's count) x m... our
  // counting sees (m-2) interior columns of 13 value ops each plus the
  // guard's two. Just check it's in the right ballpark and positive.
  EXPECT_GT(compiled.kernel.cost.flops_per_iter, 10.0 * (kM - 2));
  EXPECT_GT(compiled.kernel.cost.mem_bytes_per_iter, 0.0);

  auto res = rt.offload(compiled.kernel, compiled.maps, compiled.options);

  double expect_error = 0.0;
  for (long long i = 1; i < kN - 1; ++i) {
    for (long long j = 1; j < kM - 1; ++j) {
      const double resid =
          (1.0 * (uold(i - 1, j) + uold(i + 1, j)) +
           1.2 * (uold(i, j - 1) + uold(i, j + 1)) - 4.4 * uold(i, j) -
           f(i, j)) /
          -4.4;
      expect_error += resid * resid;
      ASSERT_NEAR(u(i, j), uold(i, j) - 0.7 * resid, 1e-12)
          << i << "," << j;
    }
  }
  EXPECT_NEAR(res.reduction, expect_error, 1e-9);
}

TEST(Compile, ErrorsAreDiagnosed) {
  auto rt = rt::Runtime::from_builtin("gpu4");
  pragma::Bindings b;
  b.let("n", 16);
  auto x = mem::HostArray<double>::vector(16, 0.0);
  b.bind("x", x);

  // No device clause anywhere.
  EXPECT_THROW(compile_kernel("#pragma omp parallel for\n"
                              "for (i = 0; i < n; i++) x[i] = 0;",
                              b, Scalars{}, rt.machine()),
               homp::Error);
  // Non-unit step cannot be distributed.
  EXPECT_THROW(compile_kernel(
                   "#pragma omp target device(*) map(to: x[0:n])\n"
                   "for (i = 0; i < n; i += 2) x[i] = 0;",
                   b, Scalars{}, rt.machine()),
               homp::ConfigError);
  // Empty loop.
  EXPECT_THROW(compile_kernel(
                   "#pragma omp target device(*) map(to: x[0:n])\n"
                   "for (i = 8; i < 8; i++) x[i] = 0;",
                   b, Scalars{}, rt.machine()),
               homp::ConfigError);
  // Unknown identifier at execution time.
  auto compiled = compile_kernel(
      "#pragma omp target device(*) map(tofrom: x[0:n] "
      "partition([ALIGN(loop)]))\n"
      "for (i = 0; i < n; i++) x[i] = ghost + 1;",
      b, Scalars{}, rt.machine());
  EXPECT_THROW(
      rt.offload(compiled.kernel, compiled.maps, compiled.options),
      homp::ExecutionError);
}

}  // namespace
}  // namespace homp::lang
