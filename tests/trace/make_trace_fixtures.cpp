// Fixture generator for the homp-trace CLI contract suite
// (tests/trace/run_trace_tests.py).
//
// Usage: make_trace_fixtures <outdir>
//
// Writes into <outdir>:
//   run1.trace.json / run1.metrics.json   one seeded traced offload
//   run2.trace.json / run2.metrics.json   the identical offload, re-run
//     (the suite asserts both pairs are byte-identical — the
//     determinism contract of trace + metrics export)
//   adversarial.trace.json / adversarial.metrics.json   a hand-built
//     result whose device names / labels / details carry quotes,
//     backslashes, newlines and control characters (the suite
//     json.loads-round-trips them — the escaping contract)
//
// Ground truth for the run pair goes to stdout as key=value lines, so
// the suite can check the CLI's derived figures against the runtime's
// own telemetry (notably Imbalance::percent()).

#include <cstdio>
#include <fstream>
#include <string>

#include "kernels/axpy.h"
#include "machine/profiles.h"
#include "runtime/metrics_export.h"
#include "runtime/runtime.h"
#include "runtime/trace.h"
#include "serve/server.h"

namespace {

using namespace homp;

rt::OffloadResult seeded_run() {
  rt::Runtime runtime{mach::testing_machine(3)};
  kern::AxpyCase c(200'000, /*materialize=*/false);
  rt::OffloadOptions o;
  o.device_ids = {1, 2, 3};
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  o.execute_bodies = false;
  o.collect_trace = true;
  auto maps = c.maps();
  auto kernel = c.kernel();
  return runtime.offload(kernel, maps, o);
}

void write_pair(const rt::OffloadResult& res, const std::string& stem) {
  rt::write_chrome_trace_file(res, stem + ".trace.json");
  rt::write_metrics_file(res, stem + ".metrics.json");
}

/// A result whose every string field tries to break the JSON document.
rt::OffloadResult adversarial_result() {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t bell\x07";
  rt::OffloadResult res;
  res.total_time = 10e-6;
  res.chunks_issued = 2;
  for (int slot = 0; slot < 2; ++slot) {
    rt::DeviceStats d;
    d.device_name = "dev\"" + std::to_string(slot) + "\\\n";
    d.device_id = slot + 1;
    d.chunks = 1;
    d.iterations = 100;
    d.finish_time = (slot + 1) * 5e-6;
    d.chunk_seconds.observe(3e-6);
    res.devices.push_back(d);

    rt::TraceSpan span;
    span.slot = slot;
    span.device = d.device_name;
    span.phase = rt::Phase::kCompute;
    span.t0 = 0.0;
    span.t1 = d.finish_time;
    span.label = nasty;
    res.trace.push_back(span);

    rt::SchedDecision dec;
    dec.time = 0.0;
    dec.slot = slot;
    dec.device_id = d.device_id;
    dec.kind = rt::DecisionKind::kChunkAssigned;
    dec.range = dist::Range(0, 100);
    dec.detail = nasty;
    res.decisions.push_back(dec);

    rt::CounterSample cs;
    cs.time = 1e-6;
    cs.slot = slot;
    cs.track = rt::CounterTrack::kQueueDepth;
    cs.value = 1.0;
    res.counters.push_back(cs);
  }
  rt::FaultEvent f;
  f.time = 2e-6;
  f.slot = 0;
  f.device_id = 1;
  f.detail = nasty;
  res.fault_events.push_back(f);
  rt::RecoveryEvent r;
  r.time = 3e-6;
  r.slot = 1;
  r.device_id = 2;
  r.detail = nasty;
  res.recovery_events.push_back(r);
  return res;
}

/// A small two-tenant serving run with trace collection on: its export
/// exercises the CLI's per-tenant report sections against real spans.
void write_serve_fixture(const std::string& path) {
  serve::TenantSpec gold, bronze;
  gold.name = "gold";
  gold.priority = serve::PriorityClass::kGold;
  bronze.name = "bronze";
  bronze.priority = serve::PriorityClass::kBronze;

  serve::ServeOptions opts;
  opts.collect_trace = true;
  serve::OffloadServer server(mach::builtin("full"), {gold, bronze}, opts);
  serve::JobSpec j;
  j.kernel = "axpy";
  j.n = 1 << 14;
  j.devices = 2;
  server.submit("gold", j);
  server.submit("bronze", j);
  server.run();

  std::ofstream out(path);
  server.report().write_trace_json(out);
}

/// A serving run with a poison tenant (every granted device dies
/// mid-run -> terminal kFail) and a deadline job on a covertly slow
/// tenant (admitted, then cancelled mid-run as deadline_miss): real
/// serve events for the CLI's failed/cancelled-jobs report section.
void write_serve_failure_fixture(const std::string& path) {
  serve::TenantSpec good, poison, slow;
  good.name = "good";
  poison.name = "poison";
  poison.fault.fail_at_s = 1e-4;
  slow.name = "slow";
  slow.fault.slowdown_rate = 0.95;
  slow.fault.slowdown_factor = 64.0;

  serve::ServeOptions opts;
  opts.collect_trace = true;
  opts.breaker_threshold = 0;  // keep every poison job a kFail record
  serve::OffloadServer server(mach::builtin("full"), {good, poison, slow},
                              opts);
  serve::JobSpec j;
  j.kernel = "axpy";
  j.n = 1 << 14;
  j.devices = 2;
  server.submit("good", j);
  server.submit("poison", j);
  serve::JobSpec doomed = j;
  // Clears admission on the predicted runtime, unreachable at 64x slow.
  doomed.deadline_s =
      4.0 * server.predicted_job_seconds(doomed.kernel, doomed.n, 2);
  server.submit("slow", doomed);
  server.run();

  std::ofstream out(path);
  server.report().write_trace_json(out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <outdir>\n", argv[0]);
    return 2;
  }
  const std::string outdir = argv[1];

  const auto run1 = seeded_run();
  const auto run2 = seeded_run();
  write_pair(run1, outdir + "/run1");
  write_pair(run2, outdir + "/run2");
  write_pair(adversarial_result(), outdir + "/adversarial");
  write_serve_fixture(outdir + "/serve.trace.json");
  write_serve_failure_fixture(outdir + "/servefail.trace.json");

  std::printf("run_imbalance_pct=%.17g\n", run1.imbalance().percent());
  std::printf("run_total_time_s=%.17g\n", run1.total_time);
  std::printf("run_chunks=%zu\n", run1.chunks_issued);
  std::printf("run_decisions=%zu\n", run1.decisions.size());
  std::printf("run_counters=%zu\n", run1.counters.size());
  std::printf("run_devices=%zu\n", run1.devices.size());
  return 0;
}
