#!/usr/bin/env python3
"""Contract suite for tools/trace/homp_trace.py, run under ctest.

Contract under test:
  * every file the runtime exports (traces, metrics, adversarial labels)
    is valid JSON — json.loads round-trips it;
  * two identical seeded offloads export byte-identical trace and
    metrics files (the determinism contract);
  * `report` figures agree with the runtime's own telemetry — notably
    imbalance_pct against Imbalance::percent() — and with the
    hand-computed ground truth of the static fixture;
  * `diff` exits 0 on identical runs, 1 on differing runs;
  * usage/input errors exit 2, never 0 or 1.

Needs the make_trace_fixtures binary (built from
tests/trace/make_trace_fixtures.cpp): pass --fixtures-bin, as the ctest
entry does.
"""

import argparse
import filecmp
import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
CLI = os.path.join(REPO, "tools", "trace", "homp_trace.py")
STATIC_FIXTURE = os.path.join(HERE, "fixtures", "static_trace.json")
TENANT_FIXTURE = os.path.join(HERE, "fixtures", "tenant_trace.json")

FIXTURES_BIN = None  # set by main()
WORK = None  # tempdir holding generated fixtures
TRUTH = {}  # key=value ground truth printed by the generator


def cli(*args):
    return subprocess.run(
        [sys.executable, CLI, *args], capture_output=True, text=True)


def out_path(name):
    return os.path.join(WORK.name, name)


def parse_report(stdout):
    """`key: value` lines -> dict (values kept as strings)."""
    rep = {}
    for line in stdout.splitlines():
        if ": " in line:
            key, val = line.split(": ", 1)
            rep[key] = val
    return rep


def setUpModule():
    global WORK, TRUTH
    WORK = tempfile.TemporaryDirectory(prefix="homp_trace_test_")
    r = subprocess.run([FIXTURES_BIN, WORK.name],
                       capture_output=True, text=True)
    if r.returncode != 0:
        raise RuntimeError("make_trace_fixtures failed: %s" % r.stderr)
    for line in r.stdout.splitlines():
        key, _, val = line.partition("=")
        TRUTH[key] = float(val)


def tearDownModule():
    WORK.cleanup()


GENERATED = ["run1.trace.json", "run1.metrics.json", "run2.trace.json",
             "run2.metrics.json", "adversarial.trace.json",
             "adversarial.metrics.json", "serve.trace.json",
             "servefail.trace.json"]


class ExportedJson(unittest.TestCase):
    def test_every_exported_file_round_trips_json_loads(self):
        for name in GENERATED:
            with self.subTest(file=name):
                with open(out_path(name), encoding="utf-8") as f:
                    doc = json.load(f)
                self.assertTrue(doc)  # non-empty array or object

    def test_adversarial_labels_survive_intact(self):
        # The escaped control characters decode back to the original
        # bytes the runtime put into the labels.
        with open(out_path("adversarial.trace.json"), encoding="utf-8") as f:
            doc = json.load(f)
        names = " ".join(e.get("name", "") for e in doc)
        devices = " ".join(e.get("args", {}).get("device", "") for e in doc)
        self.assertIn('quote" backslash\\ newline\n tab\t bell\x07', names)
        self.assertIn('dev"0\\\n', devices)

    def test_identical_seeded_runs_export_byte_identical_files(self):
        for kind in ("trace", "metrics"):
            with self.subTest(kind=kind):
                a = out_path("run1.%s.json" % kind)
                b = out_path("run2.%s.json" % kind)
                self.assertTrue(filecmp.cmp(a, b, shallow=False),
                                "%s export is not deterministic" % kind)


class Report(unittest.TestCase):
    def report(self, *args):
        r = cli("report", *args)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        return parse_report(r.stdout)

    def test_agrees_with_runtime_telemetry(self):
        rep = self.report(out_path("run1.trace.json"))
        imb = float(rep["imbalance_pct"])
        truth = TRUTH["run_imbalance_pct"]
        self.assertLessEqual(abs(imb - truth), 1e-6 * max(truth, 1.0),
                             "CLI imbalance %g vs runtime %g" % (imb, truth))
        self.assertEqual(float(rep["devices"]), TRUTH["run_devices"])
        self.assertEqual(float(rep["decisions"]), TRUTH["run_decisions"])
        total = float(rep["total_time_us"])
        self.assertAlmostEqual(total, TRUTH["run_total_time_s"] * 1e6,
                               delta=1e-6 * total)
        self.assertGreater(float(rep["critical_path_us"]), 0.0)
        ratio = float(rep["overlap_ratio"])
        self.assertGreaterEqual(ratio, 0.0)
        self.assertLessEqual(ratio, 1.0)
        self.assertLessEqual(float(rep["transfer_hidden_us"]),
                             float(rep["transfer_us"]) + 1e-9)

    def test_counter_tracks_and_metrics_sections(self):
        rep = self.report(out_path("run1.trace.json"),
                          "--metrics", out_path("run1.metrics.json"))
        counter_keys = [k for k in rep if k.startswith("counter[")]
        self.assertTrue(counter_keys, "no counter tracks in the report")
        self.assertTrue(any("queue depth" in k for k in counter_keys))
        self.assertEqual(float(rep["metric[homp_offloads_total]"]), 1.0)
        self.assertTrue(any(k.startswith("metric[homp_device_chunks_total")
                            for k in rep))

    def test_adversarial_trace_is_reportable(self):
        rep = self.report(out_path("adversarial.trace.json"), "--timeline")
        self.assertEqual(float(rep["devices"]), 2)
        self.assertEqual(float(rep["faults"]), 1)


class StaticFixture(unittest.TestCase):
    """Hand-computed ground truth: finish times 6/8/10 us, transfers
    6 us of which 2 us hide behind same-device compute."""

    def test_known_figures(self):
        r = cli("report", STATIC_FIXTURE)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        rep = parse_report(r.stdout)
        self.assertAlmostEqual(float(rep["imbalance_pct"]), 20.0)
        self.assertAlmostEqual(float(rep["barrier_skew_us"]), 4.0)
        self.assertEqual(rep["critical_device"], "gpu1")
        self.assertAlmostEqual(float(rep["critical_path_us"]), 10.0)
        self.assertAlmostEqual(float(rep["total_time_us"]), 10.0)
        self.assertAlmostEqual(float(rep["overlap_ratio"]), 1.0 / 3.0)
        self.assertEqual(float(rep["devices"]), 3)
        self.assertEqual(float(rep["decisions"]), 1)
        self.assertIn("counter[queue depth (cpu)]", rep)


class MultiTenant(unittest.TestCase):
    """Per-tenant report sections for serving traces, against a
    hand-built two-tenant fixture: gold runs job threads finishing at
    4 and 8 us (25% finish imbalance), bronze one thread over [2, 8)."""

    def test_tenant_sections(self):
        r = cli("report", TENANT_FIXTURE)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        rep = parse_report(r.stdout)
        self.assertEqual(float(rep["tenants"]), 2)
        self.assertEqual(float(rep["tenant[gold].spans"]), 2)
        self.assertEqual(float(rep["tenant[gold].threads"]), 2)
        self.assertAlmostEqual(float(rep["tenant[gold].busy_us"]), 12.0)
        self.assertAlmostEqual(float(rep["tenant[gold].critical_path_us"]),
                               8.0)
        self.assertAlmostEqual(float(rep["tenant[gold].makespan_us"]), 8.0)
        self.assertAlmostEqual(float(rep["tenant[gold].imbalance_pct"]), 25.0)
        self.assertEqual(float(rep["tenant[bronze].spans"]), 1)
        self.assertAlmostEqual(float(rep["tenant[bronze].busy_us"]), 6.0)
        self.assertAlmostEqual(float(rep["tenant[bronze].makespan_us"]), 6.0)
        self.assertAlmostEqual(float(rep["tenant[bronze].imbalance_pct"]),
                               0.0)

    def test_single_offload_reports_keep_their_shape(self):
        # Runtime traces put every span on pid 0 with no process
        # metadata: no tenant keys may appear.
        r = cli("report", out_path("run1.trace.json"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        rep = parse_report(r.stdout)
        self.assertNotIn("tenants", rep)
        self.assertFalse([k for k in rep if k.startswith("tenant[")])

    def test_real_serving_trace_round_trips(self):
        # The generator's serve fixture (if present) must report with a
        # tenant section per process.
        path = out_path("serve.trace.json")
        if not os.path.exists(path):
            self.skipTest("generator built without the serve fixture")
        r = cli("report", path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        rep = parse_report(r.stdout)
        self.assertGreaterEqual(float(rep["tenants"]), 2)
        self.assertTrue([k for k in rep if k.startswith("tenant[")])


class ServeFailures(unittest.TestCase):
    """Failed/cancelled-jobs report section (docs/SERVING.md "Job
    failure domains"): serve traces carrying terminal fail/cancel
    instants get counts, an error-class breakdown, and per-job lines;
    traces without them keep their exact prior shape."""

    def report(self, path):
        r = cli("report", path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        return parse_report(r.stdout)

    def test_failure_fixture_sections(self):
        # Generator fixture: one poison kFail (all_devices_lost) and one
        # mid-run deadline cancellation (deadline_miss).
        rep = self.report(out_path("servefail.trace.json"))
        self.assertEqual(float(rep["serve.failed_jobs"]), 1)
        self.assertEqual(float(rep["serve.cancelled_jobs"]), 1)
        self.assertEqual(
            float(rep["serve.failed[poison/all_devices_lost]"]), 1)
        self.assertEqual(
            float(rep["serve.cancelled[slow/deadline_miss]"]), 1)
        fails = [k for k in rep if k.startswith("serve.failed_job[")]
        self.assertEqual(len(fails), 1)
        self.assertIn("tenant=poison", rep[fails[0]])
        self.assertIn("all_devices_lost:", rep[fails[0]])
        cancels = [k for k in rep if k.startswith("serve.cancelled_job[")]
        self.assertEqual(len(cancels), 1)
        self.assertIn("tenant=slow", rep[cancels[0]])

    def test_clean_traces_have_no_failure_section(self):
        # Neither a single-offload trace nor an all-success serving
        # trace may grow serve.* keys.
        for name in ("run1.trace.json", "serve.trace.json"):
            with self.subTest(file=name):
                rep = self.report(out_path(name))
                self.assertFalse([k for k in rep if k.startswith("serve.")])

    def test_hand_built_counts_classes_and_escaping(self):
        serve_i = {"cat": "serve", "ph": "i", "s": "g", "pid": 1, "tid": 0}
        doc = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "t0"}},
            {"ph": "X", "name": "compute k", "pid": 1, "tid": 64,
             "ts": 0.0, "dur": 4.0},
            dict(serve_i, name="fail", ts=4.0,
                 args={"job": 1, "detail": "step_budget: over\nbudget"}),
            dict(serve_i, name="fail", ts=5.0,
                 args={"job": 2, "detail": "step_budget: again"}),
            dict(serve_i, name="cancel", ts=6.0,
                 args={"job": 3, "detail": "deadline_miss: in queue"}),
            dict(serve_i, name="breaker-open", ts=7.0,
                 args={"job": 0, "detail": "cooldown 1s"}),
        ]
        path = out_path("servefail_static.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        rep = self.report(path)
        self.assertEqual(float(rep["serve.failed_jobs"]), 2)
        self.assertEqual(float(rep["serve.cancelled_jobs"]), 1)
        self.assertEqual(float(rep["serve.breaker_trips"]), 1)
        self.assertEqual(float(rep["serve.failed[t0/step_budget]"]), 2)
        self.assertEqual(float(rep["serve.cancelled[t0/deadline_miss]"]), 1)
        # Newlines inside an error collapse so `key: value` lines hold.
        self.assertEqual(rep["serve.failed_job[1]"],
                         "tenant=t0 step_budget: over budget")
        self.assertEqual(rep["serve.cancelled_job[3]"],
                         "tenant=t0 deadline_miss: in queue")


class Diff(unittest.TestCase):
    def test_identical_runs_diff_clean(self):
        for kind in ("trace", "metrics"):
            with self.subTest(kind=kind):
                r = cli("diff", out_path("run1.%s.json" % kind),
                        out_path("run2.%s.json" % kind))
                self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
                self.assertIn("differing_keys: 0", r.stdout)

    def test_different_runs_diff_dirty(self):
        r = cli("diff", out_path("run1.trace.json"), STATIC_FIXTURE)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertNotIn("differing_keys: 0", r.stdout)

    def test_tolerance_swallows_small_deltas(self):
        r = cli("diff", out_path("run1.trace.json"), STATIC_FIXTURE,
                "--tolerance", "1e9")
        # A huge relative tolerance leaves only non-numeric differences
        # (device names); the command still reports them.
        self.assertIn("critical_device", r.stdout)


class ErrorContract(unittest.TestCase):
    def test_report_rejects_metrics_file(self):
        r = cli("report", out_path("run1.metrics.json"))
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    def test_missing_file_exits_2(self):
        r = cli("report", out_path("no_such_file.json"))
        self.assertEqual(r.returncode, 2)

    def test_invalid_json_exits_2(self):
        bad = out_path("bad.json")
        with open(bad, "w", encoding="utf-8") as f:
            f.write("{not json")
        r = cli("report", bad)
        self.assertEqual(r.returncode, 2)

    def test_diff_rejects_mixed_kinds(self):
        r = cli("diff", out_path("run1.trace.json"),
                out_path("run1.metrics.json"))
        self.assertEqual(r.returncode, 2)

    def write_trace(self, name, doc):
        path = out_path(name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def assert_clean_exit_2(self, r, needle):
        """Exit 2 with a diagnostic on stderr — never a traceback."""
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertNotIn("Traceback", r.stderr)
        self.assertIn(needle, r.stderr)

    def test_empty_trace_exits_2(self):
        r = cli("report", self.write_trace("empty.json", []))
        self.assert_clean_exit_2(r, "empty")

    def test_zero_span_trace_exits_2(self):
        doc = [{"ph": "M", "name": "thread_name", "tid": 0,
                "args": {"name": "host"}}]
        r = cli("report", self.write_trace("nospans.json", doc))
        self.assert_clean_exit_2(r, "no spans")

    def test_span_missing_tid_exits_2(self):
        doc = [{"ph": "X", "name": "compute k", "ts": 0.0, "dur": 1.0}]
        r = cli("report", self.write_trace("notid.json", doc))
        self.assert_clean_exit_2(r, "tid")

    def test_non_object_event_exits_2(self):
        r = cli("report", self.write_trace("nonobj.json", ["zap"]))
        self.assert_clean_exit_2(r, "not an object")

    def test_malformed_metrics_entry_exits_2(self):
        doc = {"homp_metrics_version": 1, "metrics": [{"value": 3}]}
        r = cli("report", out_path("run1.trace.json"),
                "--metrics", self.write_trace("badmetrics.json", doc))
        self.assert_clean_exit_2(r, "name")

    def test_non_integer_pid_exits_2(self):
        doc = [{"ph": "X", "name": "compute k", "tid": 0, "ts": 0.0,
                "dur": 1.0, "pid": "gold"}]
        r = cli("report", self.write_trace("badpid.json", doc))
        self.assert_clean_exit_2(r, "pid")

    def test_multi_tenant_metadata_without_spans_exits_2(self):
        # Degenerate serving trace: tenant processes declared, zero
        # spans. The exit-2 contract holds for tenant traces too.
        doc = [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                "args": {"name": "gold"}}]
        r = cli("report", self.write_trace("tenants_only.json", doc))
        self.assert_clean_exit_2(r, "no spans")

    def test_degenerate_diff_exits_2(self):
        r = cli("diff", self.write_trace("empty2.json", []),
                out_path("run1.trace.json"))
        self.assert_clean_exit_2(r, "empty")


def main():
    global FIXTURES_BIN
    ap = argparse.ArgumentParser()
    ap.add_argument("--fixtures-bin", required=True,
                    help="path to the built make_trace_fixtures binary")
    args, rest = ap.parse_known_args()
    FIXTURES_BIN = args.fixtures_bin
    unittest.main(argv=[sys.argv[0]] + rest)


if __name__ == "__main__":
    main()
