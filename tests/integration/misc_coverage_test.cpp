// Cross-cutting coverage: region CUTOFF, serialized chunked offloads,
// registry errors, directive-merge conflicts, CYCLIC end-to-end.

#include <gtest/gtest.h>

#include "kernels/case.h"
#include "kernels/sum.h"
#include "lang/compile.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

TEST(MiscCoverage, RegionEntryCutoffDropsWeakDevices) {
  // A MODEL_1 entry distribution with a 15% cutoff on the full machine
  // must leave some devices without rows, and the region must still
  // produce correct results (including halo exchange around empty parts).
  auto rt = rt::Runtime::from_builtin("full");
  constexpr long long kN = 200;
  auto a = mem::HostArray<double>::matrix(kN, 4, 1.0);
  mem::MapSpec s;
  s.name = "a";
  s.dir = mem::MapDirection::kToFrom;
  s.binding = mem::bind_array(a);
  s.region = a.region();
  s.partition = {dist::DimPolicy::align("L"), dist::DimPolicy::full()};
  s.halo_before = 1;
  s.halo_after = 1;

  rt::RegionOptions ro;
  ro.device_ids = rt.all_devices();
  ro.loop_label = "L";
  ro.loop_domain = dist::Range::of_size(kN);
  ro.dist_algorithm = sched::AlgorithmKind::kModel1Auto;
  ro.cost_hint.flops_per_iter = 1000.0;
  ro.cost_hint.mem_bytes_per_iter = 8.0;
  ro.cutoff_ratio = 0.15;
  std::vector<mem::MapSpec> maps{s};
  auto region = rt.map_data(std::move(maps), ro);

  int empty_parts = 0;
  for (std::size_t i = 0; i < region->loop_distribution().num_parts(); ++i) {
    if (region->loop_distribution().part(i).empty()) ++empty_parts;
  }
  EXPECT_GT(empty_parts, 0);
  EXPECT_TRUE(region->loop_distribution().is_partition());

  rt::LoopKernel k;
  k.name = "inc";
  k.iterations = dist::Range::of_size(kN);
  k.cost.flops_per_iter = 4.0;
  k.cost.mem_bytes_per_iter = 64.0;
  k.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto v = env.view<double>("a");
    for (long long i = chunk.lo; i < chunk.hi; ++i) {
      for (long long j = 0; j < 4; ++j) v(i, j) += 1.0;
    }
    return 0.0;
  };
  region->offload(k);
  EXPECT_GT(region->halo_exchange("a"), 0.0);
  region->close();
  for (long long i = 0; i < kN; ++i) {
    ASSERT_EQ(a(i, 0), 2.0) << i;
  }
}

TEST(MiscCoverage, SerializedOffloadWithChunkSchedulerIsCorrect) {
  auto rt = rt::Runtime::from_builtin("cpu-mic");
  auto c = kern::make_case("sum", 5000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  o.parallel_offload = false;  // serialized device setup
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);
  dynamic_cast<kern::SumCase&>(*c).set_result(res.reduction);
  std::string why;
  EXPECT_TRUE(c->verify(&why)) << why;
  EXPECT_EQ(res.total_iterations(), 5000);
}

TEST(MiscCoverage, CyclicLoopPolicyEndToEnd) {
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("axpy", 1000, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = rt.accelerators();
  o.loop_policy = dist::DimPolicy::cyclic(100);
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);
  EXPECT_EQ(res.algorithm_used, sched::AlgorithmKind::kCyclic);
  EXPECT_EQ(res.chunks_issued, 10u);
  std::string why;
  EXPECT_TRUE(c->verify(&why)) << why;
}

TEST(MiscCoverage, RegistryRejectsUnknownKernelAndBadSizes) {
  EXPECT_THROW(kern::make_case("fft", 128, false), ConfigError);
  EXPECT_THROW(kern::make_case("axpy", 0, false), ConfigError);
  EXPECT_THROW(kern::paper_size("fft"), ConfigError);
  EXPECT_THROW(kern::make_case("bm2d", 40, false), ConfigError);  // !16x
  EXPECT_THROW(kern::make_case("stencil2d", 4, false), ConfigError);
}

TEST(MiscCoverage, DirectiveMergeConflictsAreDiagnosed) {
  auto rt = rt::Runtime::from_builtin("gpu4");
  pragma::Bindings b;
  auto x = mem::HostArray<double>::vector(8, 0.0);
  b.bind("x", x);
  b.let("n", 8);
  // Two device clauses across the pragma block.
  EXPECT_THROW(lang::compile_kernel(
                   "#pragma omp target device(*) map(to: x[0:n])\n"
                   "#pragma omp target device(0:2)\n"
                   "for (i = 0; i < n; i++) x[i] = 1;",
                   b, lang::Scalars{}, rt.machine()),
               ConfigError);
  // Two dist_schedule(target:) clauses.
  EXPECT_THROW(lang::compile_kernel(
                   "#pragma omp target device(*) map(to: x[0:n]) "
                   "dist_schedule(target:[AUTO])\n"
                   "#pragma omp parallel for distribute "
                   "dist_schedule(target: BLOCK)\n"
                   "for (i = 0; i < n; i++) x[i] = 1;",
                   b, lang::Scalars{}, rt.machine()),
               ConfigError);
}

TEST(MiscCoverage, HistoryRecordsFromEveryOffload) {
  auto rt = rt::Runtime::from_builtin("gpu4");
  EXPECT_EQ(rt.history().size(), 0u);
  auto c = kern::make_case("matvec", 512, /*materialize=*/false);
  rt::OffloadOptions o;
  o.device_ids = rt.accelerators();
  o.sched.kind = sched::AlgorithmKind::kGuided;
  o.execute_bodies = false;
  auto maps = c->maps();
  auto kernel = c->kernel();
  rt.offload(kernel, maps, o);
  // Every device that did work now has a recorded rate.
  int recorded = 0;
  for (int id : o.device_ids) {
    if (rt.history().has("matvec", id)) ++recorded;
  }
  EXPECT_GT(recorded, 0);
}

TEST(MiscCoverage, UnifiedMemoryInsideHaloKernels) {
  // Unified mapping + halo'd stencil: shared aliasing must still verify.
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("stencil2d", 40, /*materialize=*/true);
  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.use_unified_memory = true;
  o.sched.kind = sched::AlgorithmKind::kBlock;
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);
  EXPECT_EQ(res.total_iterations(), 40);
  std::string why;
  EXPECT_TRUE(c->verify(&why)) << why;
}

}  // namespace
}  // namespace homp
