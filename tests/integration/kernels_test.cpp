// End-to-end correctness: every kernel offloaded across a small simulated
// machine must produce results identical to its sequential reference —
// the data path (distribution, alignment, halo, copies) is real even
// though time is virtual.

#include <gtest/gtest.h>

#include "kernels/case.h"
#include "kernels/sum.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

long long small_size(const std::string& name) {
  if (name == "axpy") return 1000;
  if (name == "matvec") return 64;
  if (name == "matmul") return 48;
  if (name == "stencil2d") return 40;
  if (name == "sum") return 2000;
  if (name == "bm2d") return 64;  // 4x4 blocks
  ADD_FAILURE() << "unknown kernel " << name;
  return 16;
}

class KernelCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelCorrectness, MatchesSequentialReferenceOnBlockSchedule) {
  const std::string name = GetParam();
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case(name, small_size(name), /*materialize=*/true);
  c->init();

  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = sched::AlgorithmKind::kBlock;
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);

  if (name == "sum") {
    dynamic_cast<kern::SumCase&>(*c).set_result(res.reduction);
  }
  std::string why;
  EXPECT_TRUE(c->verify(&why)) << why;
  EXPECT_GT(res.total_time, 0.0);
  EXPECT_EQ(res.total_iterations(), c->kernel().iterations.size());
}

TEST_P(KernelCorrectness, MatchesReferenceOnHostOnly) {
  const std::string name = GetParam();
  auto rt = rt::Runtime::from_builtin("host-only");
  auto c = kern::make_case(name, small_size(name), /*materialize=*/true);
  c->init();

  rt::OffloadOptions o;
  o.device_ids = {0};
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);

  if (name == "sum") {
    dynamic_cast<kern::SumCase&>(*c).set_result(res.reduction);
  }
  std::string why;
  EXPECT_TRUE(c->verify(&why)) << why;
  // Host is shared memory: nothing crosses an interconnect.
  EXPECT_EQ(res.devices[0].bytes_in, 0.0);
  EXPECT_EQ(res.devices[0].bytes_out, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelCorrectness,
                         ::testing::ValuesIn(kern::all_kernel_names()),
                         [](const auto& tpinfo) { return tpinfo.param; });

TEST(KernelCases, PaperProfilesMatchComputedCharacteristics) {
  // Table IV: our per-iteration accounting must reproduce the paper's
  // MemComp / DataComp within modelling tolerance.
  struct Row {
    const char* name;
    long long n;
    double mem_comp;
    double data_comp;
    double tol;
  };
  const Row rows[] = {
      {"axpy", 1 << 20, 1.5, 1.5, 0.01},
      {"matvec", 1024, 1.0 + 0.5 / 1024, 0.5 + 1.0 / 1024, 0.01},
      {"matmul", 1024, 1.5 / 1024, 1.5 / 1024, 0.01},
      {"stencil2d", 256, 0.5, 1.0 / 13.0, 0.12},
      {"sum", 1 << 20, 1.0, 1.0, 0.01},
  };
  for (const auto& r : rows) {
    auto c = kern::make_case(r.name, r.n, /*materialize=*/false);
    const auto k = c->kernel();
    EXPECT_NEAR(k.cost.mem_comp(), r.mem_comp, r.mem_comp * r.tol) << r.name;
    EXPECT_NEAR(k.cost.data_comp(), r.data_comp, r.data_comp * r.tol)
        << r.name;
  }
}

}  // namespace
}  // namespace homp
