// CUTOFF device selection end-to-end (§IV-E, Table V).

#include <gtest/gtest.h>

#include "kernels/case.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

TEST(Cutoff, DropsSlowDevicesAndKeepsResultsCorrect) {
  auto rt = rt::Runtime::from_builtin("full");
  auto c = kern::make_case("matmul", 40, /*materialize=*/true);
  c->init();

  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = sched::AlgorithmKind::kModel1Auto;
  o.sched.cutoff_ratio = 0.15;  // the paper's 100/7 ~ 15%
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);

  ASSERT_TRUE(res.has_cutoff);
  EXPECT_LT(res.cutoff.num_selected, 7);
  EXPECT_GE(res.cutoff.num_selected, 1);
  // Dropped devices did no iterations and moved no bytes.
  for (std::size_t i = 0; i < res.devices.size(); ++i) {
    if (!res.cutoff.selected[i]) {
      EXPECT_EQ(res.devices[i].iterations, 0);
      EXPECT_EQ(res.devices[i].bytes_in, 0.0);
    }
  }
  std::string why;
  EXPECT_TRUE(c->verify(&why)) << why;
}

TEST(Cutoff, ProfilingSchedulerDropsAfterStage1) {
  auto rt = rt::Runtime::from_builtin("full");
  auto c = kern::make_case("matmul", 64, /*materialize=*/true);
  c->init();

  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = sched::AlgorithmKind::kSchedProfileAuto;
  o.sched.cutoff_ratio = 0.15;
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);

  ASSERT_TRUE(res.has_cutoff);
  EXPECT_GE(res.cutoff.num_selected, 1);
  // Every device computed in stage 1 (constant samples) even if dropped
  // for stage 2.
  for (const auto& d : res.devices) EXPECT_GT(d.iterations, 0);
  std::string why;
  EXPECT_TRUE(c->verify(&why)) << why;
}

TEST(Cutoff, CutoffCanOnlyHelpOrMildlyHurt) {
  // Compare total time with and without CUTOFF on a compute-intensive
  // kernel: dropping the slow MICs should speed up matmul (Table V:
  // matmul-6144 -> 4 GPUs, 2.68x).
  auto rt = rt::Runtime::from_builtin("full");
  auto c = kern::make_case("matmul", 2048, /*materialize=*/false);
  auto run = [&](double cutoff) {
    rt::OffloadOptions o;
    o.device_ids = rt.all_devices();
    o.sched.kind = sched::AlgorithmKind::kModel2Auto;
    o.sched.cutoff_ratio = cutoff;
    o.execute_bodies = false;
    auto maps = c->maps();
    auto kernel = c->kernel();
    return rt.offload(kernel, maps, o).total_time;
  };
  const double with = run(0.15);
  const double without = run(0.0);
  EXPECT_LT(with, without * 1.5) << "cutoff should not catastrophically hurt";
}

TEST(Cutoff, NeverDropsEveryDevice) {
  // Identical devices each contribute 1/M < 15% for M = 7; the iterative
  // cutoff must still keep a usable device set.
  auto machine = mach::testing_machine(6);
  rt::Runtime rt{machine};
  auto c = kern::make_case("axpy", 10'000, /*materialize=*/true);
  c->init();
  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = sched::AlgorithmKind::kModel1Auto;
  o.sched.cutoff_ratio = 0.15;
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);
  ASSERT_TRUE(res.has_cutoff);
  EXPECT_GE(res.cutoff.num_selected, 1);
  EXPECT_EQ(res.total_iterations(), kernel.iterations.size());
  std::string why;
  EXPECT_TRUE(c->verify(&why)) << why;
}

}  // namespace
}  // namespace homp
