// Every kernel under every one of the seven algorithms, on every built-in
// machine, must (a) produce correct results, (b) cover the iteration space
// exactly, and (c) leave no device incomplete. This is the broad
// cross-product that exercises scheduler/runtime/memory interplay.

#include <gtest/gtest.h>

#include <tuple>

#include "kernels/case.h"
#include "kernels/sum.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

long long small_size(const std::string& name) {
  if (name == "axpy") return 1500;
  if (name == "matvec") return 72;
  if (name == "matmul") return 40;
  if (name == "stencil2d") return 48;
  if (name == "sum") return 3000;
  if (name == "bm2d") return 64;
  return 32;
}

using Param = std::tuple<std::string, sched::AlgorithmKind, std::string>;

class SchedulerMatrix : public ::testing::TestWithParam<Param> {};

TEST_P(SchedulerMatrix, CorrectAndComplete) {
  const auto& [kernel_name, algo, machine] = GetParam();
  auto rt = rt::Runtime::from_builtin(machine);
  auto c = kern::make_case(kernel_name, small_size(kernel_name), true);
  c->init();

  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = algo;
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);

  if (kernel_name == "sum") {
    dynamic_cast<kern::SumCase&>(*c).set_result(res.reduction);
  }
  std::string why;
  EXPECT_TRUE(c->verify(&why)) << why;
  EXPECT_EQ(res.total_iterations(), kernel.iterations.size());
  EXPECT_GT(res.total_time, 0.0);
  EXPECT_GE(res.chunks_issued, 1u);

  const auto& info = sched::algorithm_info(algo);
  if (info.stages == 1) {
    // Single-shot algorithms issue at most one chunk per device.
    EXPECT_LE(res.chunks_issued, o.device_ids.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchedulerMatrix,
    ::testing::Combine(
        ::testing::ValuesIn(kern::all_kernel_names()),
        ::testing::Values(sched::AlgorithmKind::kBlock,
                          sched::AlgorithmKind::kDynamic,
                          sched::AlgorithmKind::kGuided,
                          sched::AlgorithmKind::kModel1Auto,
                          sched::AlgorithmKind::kModel2Auto,
                          sched::AlgorithmKind::kSchedProfileAuto,
                          sched::AlgorithmKind::kModelProfileAuto),
        ::testing::Values("gpu4", "cpu-mic", "full")),
    [](const auto& tpinfo) {
      std::string s = std::get<0>(tpinfo.param) + "_" +
                      std::string(sched::to_string(std::get<1>(tpinfo.param))) +
                      "_" + std::get<2>(tpinfo.param);
      for (auto& c : s) {
        if (c == '-') c = '_';
      }
      return s;
    });

TEST(SchedulerBehaviour, DynamicBeatsBlockOnDataIntensiveIdenticalGpus) {
  // The paper's §VI-A headline: on 4 identical GPUs, SCHED_DYNAMIC
  // overlaps transfers with compute and wins on data-intensive kernels.
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("axpy", 4'000'000, /*materialize=*/false);

  auto run = [&](sched::AlgorithmKind k) {
    rt::OffloadOptions o;
    o.device_ids = rt.accelerators();  // the 4 K40s, as in Fig. 5
    o.sched.kind = k;
    o.execute_bodies = false;
    auto maps = c->maps();
    auto kernel = c->kernel();
    return rt.offload(kernel, maps, o).total_time;
  };
  const double t_block = run(sched::AlgorithmKind::kBlock);
  const double t_dyn = run(sched::AlgorithmKind::kDynamic);
  EXPECT_LT(t_dyn, t_block);
}

TEST(SchedulerBehaviour, BlockWinsOnComputeIntensiveIdenticalGpus) {
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("matmul", 2048, /*materialize=*/false);

  auto run = [&](sched::AlgorithmKind k) {
    rt::OffloadOptions o;
    o.device_ids = rt.accelerators();
    o.sched.kind = k;
    o.execute_bodies = false;
    auto maps = c->maps();
    auto kernel = c->kernel();
    return rt.offload(kernel, maps, o).total_time;
  };
  const double t_block = run(sched::AlgorithmKind::kBlock);
  const double t_dyn = run(sched::AlgorithmKind::kDynamic);
  // BLOCK avoids per-chunk scheduling/launch overhead; on a compute-bound
  // kernel with identical devices it should be at least as good.
  EXPECT_LE(t_block, t_dyn * 1.02);
}

TEST(SchedulerBehaviour, ModelWeightsFavourFasterDevices) {
  // On the heterogeneous machine, MODEL_1 must give the GPUs more work
  // than the MICs (higher peak FLOPs).
  auto rt = rt::Runtime::from_builtin("full");
  auto c = kern::make_case("matmul", 1024, /*materialize=*/false);
  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = sched::AlgorithmKind::kModel1Auto;
  o.execute_bodies = false;
  auto maps = c->maps();
  auto kernel = c->kernel();
  auto res = rt.offload(kernel, maps, o);
  ASSERT_EQ(res.planned_weights.size(), 7u);
  // Slots: 0 host, 1..4 GPUs, 5..6 MICs.
  EXPECT_GT(res.planned_weights[1], res.planned_weights[5]);
  EXPECT_GT(res.devices[1].iterations, res.devices[5].iterations);
}

TEST(SchedulerBehaviour, WorkFactorImbalanceFavoursDynamic) {
  // Inject strongly iteration-dependent work: static BLOCK suffers, the
  // chunk schedulers adapt (§IV-A2's motivation).
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("axpy", 1'000'000, /*materialize=*/false);
  auto kernel = c->kernel();
  // Later iterations are 9x more expensive.
  kernel.work_factor = [&](const dist::Range& chunk) {
    const double mid = (chunk.lo + chunk.hi) / 2.0;
    return 1.0 + 8.0 * mid / 1'000'000.0;
  };
  auto run = [&](sched::AlgorithmKind k) {
    rt::OffloadOptions o;
    o.device_ids = rt.accelerators();
    o.sched.kind = k;
    o.execute_bodies = false;
    auto maps = c->maps();
    return rt.offload(kernel, maps, o);
  };
  auto block = run(sched::AlgorithmKind::kBlock);
  auto dyn = run(sched::AlgorithmKind::kDynamic);
  EXPECT_GT(block.imbalance().percent(), dyn.imbalance().percent());
}

}  // namespace
}  // namespace homp
