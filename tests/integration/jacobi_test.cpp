// The paper's Fig. 3 Jacobi kernel: persistent data region, ALIGN(loop1)
// array distribution, halo exchange, reduction — compared against a
// sequential Jacobi solver.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "memory/host_array.h"
#include "runtime/runtime.h"

namespace homp {
namespace {

constexpr long long kN = 32;
constexpr long long kM = 28;
constexpr double kOmega = 0.5;
constexpr double kAx = 1.0;
constexpr double kAy = 1.2;
constexpr double kB = -4.4;

double f_init(long long i, long long j) {
  return std::sin(0.3 * static_cast<double>(i)) *
         std::cos(0.2 * static_cast<double>(j));
}
double u_init(long long i, long long j) {
  return 0.01 * static_cast<double>((i * kM + j) % 17);
}

/// Plain sequential Jacobi, the ground truth.
double sequential_jacobi(std::vector<std::vector<double>>* u_out, int iters) {
  std::vector<std::vector<double>> u(kN, std::vector<double>(kM));
  std::vector<std::vector<double>> uold(kN, std::vector<double>(kM));
  double error = 0.0;
  for (long long i = 0; i < kN; ++i) {
    for (long long j = 0; j < kM; ++j) u[i][j] = u_init(i, j);
  }
  for (int it = 0; it < iters; ++it) {
    uold = u;
    error = 0.0;
    for (long long i = 1; i < kN - 1; ++i) {
      for (long long j = 1; j < kM - 1; ++j) {
        const double resid =
            (kAx * (uold[i - 1][j] + uold[i + 1][j]) +
             kAy * (uold[i][j - 1] + uold[i][j + 1]) + kB * uold[i][j] -
             f_init(i, j)) /
            kB;
        u[i][j] = uold[i][j] - kOmega * resid;
        error += resid * resid;
      }
    }
  }
  *u_out = u;
  return error;
}

class JacobiRegion : public ::testing::TestWithParam<std::string> {};

TEST_P(JacobiRegion, MatchesSequentialSolver) {
  auto rt = rt::Runtime::from_builtin(GetParam());

  mem::HostArray<double> u = mem::HostArray<double>::matrix(kN, kM);
  mem::HostArray<double> uold = mem::HostArray<double>::matrix(kN, kM);
  mem::HostArray<double> f = mem::HostArray<double>::matrix(kN, kM);
  u.fill_with_indices(u_init);
  f.fill_with_indices(f_init);

  // map(to: f partition([ALIGN(loop1)], FULL))
  // map(tofrom: u partition([ALIGN(loop1)], FULL))
  // map(alloc: uold partition([ALIGN(loop1)], FULL) halo(1,))
  auto spec = [&](const char* name, mem::HostArray<double>& a,
                  mem::MapDirection dir, long long halo) {
    mem::MapSpec s;
    s.name = name;
    s.dir = dir;
    s.binding = mem::bind_array(a);
    s.region = dist::Region::of_shape({kN, kM});
    s.partition = {dist::DimPolicy::align("loop1"), dist::DimPolicy::full()};
    s.halo_before = halo;
    s.halo_after = halo;
    return s;
  };
  std::vector<mem::MapSpec> maps;
  maps.push_back(spec("f", f, mem::MapDirection::kTo, 0));
  maps.push_back(spec("u", u, mem::MapDirection::kToFrom, 0));
  maps.push_back(spec("uold", uold, mem::MapDirection::kAlloc, 1));

  rt::RegionOptions ro;
  ro.device_ids = rt.all_devices();
  ro.loop_label = "loop1";
  ro.loop_domain = dist::Range::of_size(kN);
  ro.dist_algorithm = sched::AlgorithmKind::kBlock;
  auto region = rt.map_data(std::move(maps), ro);

  // Loop 1: uold = u (the copy loop of Fig. 3).
  rt::LoopKernel copy_k;
  copy_k.name = "jacobi-copy";
  copy_k.iterations = dist::Range::of_size(kN);
  copy_k.cost.flops_per_iter = static_cast<double>(kM);
  copy_k.cost.mem_bytes_per_iter = 2.0 * kM * 8.0;
  copy_k.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto u_v = env.view<double>("u");
    auto uold_v = env.view<double>("uold");
    for (long long i = chunk.lo; i < chunk.hi; ++i) {
      for (long long j = 0; j < kM; ++j) uold_v(i, j) = u_v(i, j);
    }
    return 0.0;
  };

  // Loop 2: the stencil update with reduction(+:error).
  rt::LoopKernel sweep_k;
  sweep_k.name = "jacobi-sweep";
  sweep_k.iterations = dist::Range::of_size(kN);
  sweep_k.cost.flops_per_iter = 13.0 * kM;
  sweep_k.cost.mem_bytes_per_iter = 7.0 * kM * 8.0;
  sweep_k.has_reduction = true;
  sweep_k.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto u_v = env.view<double>("u");
    auto uold_v = env.view<double>("uold");
    auto f_v = env.view<double>("f");
    double error = 0.0;
    for (long long i = chunk.lo; i < chunk.hi; ++i) {
      if (i == 0 || i == kN - 1) continue;
      for (long long j = 1; j < kM - 1; ++j) {
        const double resid =
            (kAx * (uold_v(i - 1, j) + uold_v(i + 1, j)) +
             kAy * (uold_v(i, j - 1) + uold_v(i, j + 1)) +
             kB * uold_v(i, j) - f_v(i, j)) /
            kB;
        u_v(i, j) = uold_v(i, j) - kOmega * resid;
        error += resid * resid;
      }
    }
    return error;
  };

  constexpr int kIters = 5;
  double error = 0.0;
  for (int it = 0; it < kIters; ++it) {
    region->offload(copy_k);
    region->halo_exchange("uold");
    error = region->offload(sweep_k).reduction;
  }
  region->close();

  std::vector<std::vector<double>> expect;
  const double expect_error = sequential_jacobi(&expect, kIters);

  EXPECT_NEAR(error, expect_error, 1e-9 * std::max(1.0, expect_error));
  for (long long i = 0; i < kN; ++i) {
    for (long long j = 0; j < kM; ++j) {
      ASSERT_NEAR(u(i, j), expect[i][j], 1e-12)
          << "u[" << i << "][" << j << "] diverged on " << GetParam();
    }
  }
  EXPECT_GT(region->total_time(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Machines, JacobiRegion,
                         ::testing::Values("host-only", "gpu4", "cpu-mic",
                                           "full"),
                         [](const auto& tpinfo) {
                           std::string s = tpinfo.param;
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace homp
