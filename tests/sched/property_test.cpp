// Property-based scheduler tests: for randomized loop sizes, device
// counts and capabilities, every algorithm must hand out chunks that tile
// the iteration space exactly once (no gaps, no overlaps), terminate, and
// respect the scheduler protocol.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "common/prng.h"
#include "sched/extended_sched.h"
#include "sched/scheduler.h"

namespace homp::sched {
namespace {

/// Drive a scheduler through the full protocol with synthetic chunk
/// timings; returns every chunk handed out.
std::vector<dist::Range> drive(LoopScheduler& s, std::size_t m,
                               Prng& rng) {
  std::vector<dist::Range> chunks;
  std::vector<bool> done(m, false);
  // Round-robin with random skips, emulating devices finishing in any
  // order.
  int guard = 0;
  for (;;) {
    bool all_done = true;
    bool any_progress = false;
    std::size_t waiting = 0;
    for (std::size_t slot = 0; slot < m; ++slot) {
      if (done[slot]) continue;
      all_done = false;
      if (rng.next_double() < 0.3) continue;  // device "busy"
      auto c = s.next_chunk(static_cast<int>(slot));
      if (c.has_value()) {
        any_progress = true;
        chunks.push_back(*c);
        // Report a random positive duration (profiling uses these).
        s.report(static_cast<int>(slot), *c, 1e-6 + rng.next_double());
      } else if (s.finished(static_cast<int>(slot))) {
        done[slot] = true;
        any_progress = true;
      } else {
        ++waiting;
      }
    }
    if (all_done) break;
    if (waiting > 0 && s.stage_barrier_pending()) {
      // Only advance when every live slot is waiting.
      std::size_t live = 0;
      for (std::size_t slot = 0; slot < m; ++slot) {
        if (!done[slot]) ++live;
      }
      if (waiting == live) {
        s.advance_stage();
        any_progress = true;
      }
    }
    if (!any_progress && ++guard > 10000) {
      ADD_FAILURE() << "scheduler made no progress (deadlock)";
      break;
    }
  }
  return chunks;
}

using Param = std::tuple<AlgorithmKind, int /*seed*/>;

class SchedulerProperty : public ::testing::TestWithParam<Param> {};

TEST_P(SchedulerProperty, ChunksTileTheLoopExactly) {
  const auto [kind, seed] = GetParam();
  Prng rng(static_cast<std::uint64_t>(seed) * 7919u + 13u);
  for (int trial = 0; trial < 20; ++trial) {
    const long long n = 1 + static_cast<long long>(rng.below(5000));
    const std::size_t m = 1 + rng.below(8);
    LoopContext ctx;
    ctx.loop = dist::Range(static_cast<long long>(rng.below(100)), 0);
    ctx.loop.hi = ctx.loop.lo + n;
    ctx.devices.resize(m);
    for (auto& d : ctx.devices) {
      d.peak_flops = 1e9 * (1.0 + rng.next_double() * 15.0);
      d.peak_membw_Bps = 1e9 * (1.0 + rng.next_double() * 30.0);
      if (rng.next_double() < 0.5) {
        d.has_link = true;
        d.link_latency_s = 1e-6;
        d.link_bandwidth_Bps = 1e9 * (0.5 + rng.next_double() * 10.0);
      }
    }
    ctx.kernel.flops_per_iter = 1.0 + rng.next_double() * 1000.0;
    ctx.kernel.mem_bytes_per_iter = 8.0 + rng.next_double() * 100.0;
    ctx.kernel.transfer_bytes_per_iter = rng.next_double() * 100.0;

    SchedulerConfig cfg;
    cfg.kind = kind;
    cfg.cutoff_ratio = rng.next_double() < 0.5 ? 0.15 : 0.0;
    if (kind == AlgorithmKind::kHistoryAuto) {
      // Random partial history; unseen devices fall back to the model.
      static ThroughputHistory h;
      cfg.history = &h;
      cfg.history_kernel = "prop";
      for (std::size_t i = 0; i < m; ++i) {
        cfg.history_device_ids.push_back(static_cast<int>(i));
        if (rng.next_double() < 0.6) {
          h.record("prop", static_cast<int>(i),
                   1.0 + rng.next_double() * 100.0);
        }
      }
    }
    auto s = make_scheduler(cfg, ctx);
    auto chunks = drive(*s, m, rng);

    ASSERT_TRUE(exactly_covers(ctx.loop, chunks))
        << to_string(kind) << " trial " << trial << ": n=" << n
        << " m=" << m << " chunks=" << chunks.size();
    EXPECT_EQ(s->chunks_issued(), chunks.size());
    for (const auto& c : chunks) {
      EXPECT_FALSE(c.empty());
      EXPECT_TRUE(ctx.loop.contains(c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SchedulerProperty,
    ::testing::Combine(
        ::testing::Values(AlgorithmKind::kBlock, AlgorithmKind::kDynamic,
                          AlgorithmKind::kGuided,
                          AlgorithmKind::kModel1Auto,
                          AlgorithmKind::kModel2Auto,
                          AlgorithmKind::kSchedProfileAuto,
                          AlgorithmKind::kModelProfileAuto,
                          AlgorithmKind::kCyclic,
                          AlgorithmKind::kWorkStealing,
                          AlgorithmKind::kHistoryAuto),
        ::testing::Range(0, 3)),
    [](const auto& tpinfo) {
      return std::string(to_string(std::get<0>(tpinfo.param))) + "_seed" +
             std::to_string(std::get<1>(tpinfo.param));
    });

TEST(SchedulerProperty, WeightsSumToOneWhenPlanned) {
  Prng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    LoopContext ctx;
    ctx.loop = dist::Range::of_size(1000);
    ctx.devices.resize(2 + rng.below(6));
    for (auto& d : ctx.devices) {
      d.peak_flops = 1e9 * (1.0 + rng.next_double() * 20.0);
      d.peak_membw_Bps = 1e11;
    }
    ctx.kernel.flops_per_iter = 10.0;
    ctx.kernel.mem_bytes_per_iter = 8.0;
    SchedulerConfig cfg;
    cfg.kind = trial % 2 ? AlgorithmKind::kModel1Auto
                         : AlgorithmKind::kModel2Auto;
    auto s = make_scheduler(cfg, ctx);
    auto w = s->planned_weights();
    double sum = 0.0;
    for (double x : w) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace homp::sched
