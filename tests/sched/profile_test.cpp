// Two-stage profiling schedulers, driven through the runtime protocol by
// hand: stage-1 samples, reports, barrier, stage-2 distribution.

#include "sched/profile_sched.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::sched {
namespace {

LoopContext ctx(long long n, std::size_t m) {
  LoopContext c;
  c.loop = dist::Range::of_size(n);
  c.devices.resize(m);
  for (auto& d : c.devices) {
    d.peak_flops = 1e9;
    d.peak_membw_Bps = 1e9;
  }
  return c;
}

TEST(ProfileScheduler, ConstantSamplesAreEqual) {
  ProfileScheduler s(ctx(1000, 4), /*model_based=*/false,
                     /*sample_fraction=*/0.1, /*cutoff=*/0.0, 1);
  EXPECT_EQ(s.num_stages(), 2);
  EXPECT_TRUE(s.stage_barrier_pending());
  long long total = 0;
  for (int slot = 0; slot < 4; ++slot) {
    auto c = s.next_chunk(slot);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->size(), 25);  // 10% of 1000 split evenly
    total += c->size();
    EXPECT_FALSE(s.finished(slot));
  }
  EXPECT_EQ(total, 100);
  EXPECT_FALSE(s.next_chunk(0).has_value());  // one sample each
}

TEST(ProfileScheduler, Stage2FollowsObservedThroughput) {
  ProfileScheduler s(ctx(1000, 2), false, 0.1, 0.0, 1);
  auto c0 = *s.next_chunk(0);
  auto c1 = *s.next_chunk(1);
  // Device 0 is 3x faster.
  s.report(0, c0, 1.0);
  s.report(1, c1, 3.0);
  s.advance_stage();
  EXPECT_FALSE(s.stage_barrier_pending());
  auto f0 = *s.next_chunk(0);
  auto f1 = *s.next_chunk(1);
  EXPECT_EQ(f0.size(), 675);  // 75% of the remaining 900
  EXPECT_EQ(f1.size(), 225);
  EXPECT_TRUE(s.finished(0));
  EXPECT_TRUE(s.finished(1));
  auto w = s.planned_weights();
  EXPECT_NEAR(w[0], 0.75, 1e-9);
  EXPECT_EQ(s.observed_rates()[0], 50.0);
}

TEST(ProfileScheduler, AdvanceBeforeAllReportsIsAnError) {
  ProfileScheduler s(ctx(100, 2), false, 0.1, 0.0, 1);
  s.next_chunk(0);
  s.next_chunk(1);
  s.report(0, dist::Range(0, 5), 1.0);
  EXPECT_THROW(s.advance_stage(), homp::ConfigError);
}

TEST(ProfileScheduler, ModelBasedSamplesAreWeighted) {
  auto c = ctx(1000, 2);
  c.devices[0].peak_flops = 3e9;  // 3x the peak of device 1
  c.kernel.flops_per_iter = 1000.0;
  c.kernel.mem_bytes_per_iter = 8.0;
  ProfileScheduler s(c, /*model_based=*/true, 0.1, 0.0, 1);
  auto s0 = *s.next_chunk(0);
  auto s1 = *s.next_chunk(1);
  EXPECT_EQ(s0.size(), 75);
  EXPECT_EQ(s1.size(), 25);
}

TEST(ProfileScheduler, CutoffAppliesToStage2Only) {
  ProfileScheduler s(ctx(1000, 3), false, 0.1, /*cutoff=*/0.2, 1);
  std::vector<dist::Range> samples;
  for (int slot = 0; slot < 3; ++slot) {
    samples.push_back(*s.next_chunk(slot));
  }
  // Device 2 is 20x slower than the others.
  s.report(0, samples[0], 1.0);
  s.report(1, samples[1], 1.0);
  s.report(2, samples[2], 20.0);
  s.advance_stage();
  ASSERT_NE(s.cutoff(), nullptr);
  EXPECT_EQ(s.cutoff()->num_selected, 2);
  EXPECT_FALSE(s.next_chunk(2).has_value());
  EXPECT_TRUE(s.finished(2));
  EXPECT_EQ(s.next_chunk(0)->size() + s.next_chunk(1)->size(), 900);
}

TEST(ProfileScheduler, SampleLargerThanLoopStillWorks) {
  // min_chunk * devices exceeds the sample fraction; the whole loop may be
  // consumed by stage 1.
  ProfileScheduler s(ctx(8, 4), false, 0.1, 0.0, /*min_chunk=*/2);
  long long total = 0;
  for (int slot = 0; slot < 4; ++slot) {
    auto c = s.next_chunk(slot);
    if (c) total += c->size();
    s.report(slot, c.value_or(dist::Range()), 1e-6);
  }
  EXPECT_EQ(total, 8);
  s.advance_stage();
  for (int slot = 0; slot < 4; ++slot) {
    EXPECT_FALSE(s.next_chunk(slot).has_value());
    EXPECT_TRUE(s.finished(slot));
  }
}

TEST(ProfileScheduler, RejectsBadParameters) {
  EXPECT_THROW(ProfileScheduler(ctx(10, 1), false, 0.0, 0.0, 1),
               homp::ConfigError);
  EXPECT_THROW(ProfileScheduler(ctx(10, 1), false, 1.0, 0.0, 1),
               homp::ConfigError);
  EXPECT_THROW(ProfileScheduler(ctx(10, 1), false, 0.1, 0.0, 0),
               homp::ConfigError);
}

}  // namespace
}  // namespace homp::sched
