#include "sched/algorithm.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::sched {
namespace {

TEST(Algorithm, RoundTripsThroughStrings) {
  for (int i = 0; i < kNumAlgorithms; ++i) {
    const AlgorithmKind k = all_algorithms()[i];
    EXPECT_EQ(algorithm_from_string(to_string(k)), k);
  }
}

TEST(Algorithm, AcceptsPaperTypoSpellings) {
  // Table II writes SCED_DYNAMIC / SCED_GUIDED / SCED_PROFILE_AUTO.
  EXPECT_EQ(algorithm_from_string("SCED_DYNAMIC"), AlgorithmKind::kDynamic);
  EXPECT_EQ(algorithm_from_string("SCED_GUIDED"), AlgorithmKind::kGuided);
  EXPECT_EQ(algorithm_from_string("SCED_PROFILE_AUTO"),
            AlgorithmKind::kSchedProfileAuto);
  EXPECT_EQ(algorithm_from_string("sched_dynamic"), AlgorithmKind::kDynamic);
}

TEST(Algorithm, UnknownNameThrows) {
  EXPECT_THROW(algorithm_from_string("ROUND_ROBIN"), homp::ConfigError);
  EXPECT_THROW(algorithm_from_string(""), homp::ConfigError);
}

TEST(Algorithm, ExtendedAlgorithmsRoundTrip) {
  for (int i = 0; i < kNumExtendedAlgorithms; ++i) {
    const AlgorithmKind k = extended_algorithms()[i];
    EXPECT_EQ(algorithm_from_string(to_string(k)), k);
    // Extended kinds are not in the paper's seven.
    for (int j = 0; j < kNumAlgorithms; ++j) {
      EXPECT_NE(all_algorithms()[j], k);
    }
  }
  const auto& ws = algorithm_info(AlgorithmKind::kWorkStealing);
  EXPECT_STREQ(ws.approach, "Work Stealing");
  EXPECT_EQ(ws.stages, 0);
  const auto& hist = algorithm_info(AlgorithmKind::kHistoryAuto);
  EXPECT_TRUE(hist.supports_cutoff);
}

TEST(Algorithm, TableIIMetadata) {
  const auto& block = algorithm_info(AlgorithmKind::kBlock);
  EXPECT_STREQ(block.approach, "Chunk Scheduling");
  EXPECT_EQ(block.stages, 1);
  EXPECT_FALSE(block.supports_cutoff);

  const auto& dyn = algorithm_info(AlgorithmKind::kDynamic);
  EXPECT_EQ(dyn.stages, 0);  // "Multiple"
  EXPECT_STREQ(dyn.overhead, "High");

  const auto& m2 = algorithm_info(AlgorithmKind::kModel2Auto);
  EXPECT_STREQ(m2.approach, "Analytical Modeling");
  EXPECT_TRUE(m2.supports_cutoff);

  const auto& prof = algorithm_info(AlgorithmKind::kModelProfileAuto);
  EXPECT_EQ(prof.stages, 2);
  EXPECT_STREQ(prof.overhead, "Medium");
  EXPECT_TRUE(prof.supports_cutoff);
}

}  // namespace
}  // namespace homp::sched
