// LoopScheduler::deactivate / reactivate contract (scheduler.h): orphaned
// work is handed back exactly once, double-deactivate is idempotent,
// deactivating the last active slot with work still inside the scheduler
// throws OffloadError, and a reactivated slot serves chunks again — the
// edge the probation re-admission path in the offload runtime relies on.

#include <gtest/gtest.h>

#include "common/error.h"
#include "sched/chunk_sched.h"
#include "sched/extended_sched.h"
#include "sched/partition_sched.h"

namespace homp::sched {
namespace {

LoopContext ctx(long long n, std::size_t m) {
  LoopContext c;
  c.loop = dist::Range::of_size(n);
  c.devices.resize(m);
  for (auto& d : c.devices) {
    d.peak_flops = 1e9;
    d.peak_membw_Bps = 1e9;
  }
  return c;
}

long long total_size(const std::vector<dist::Range>& rs) {
  long long n = 0;
  for (const auto& r : rs) n += r.size();
  return n;
}

TEST(Deactivate, DynamicSlotStopsServingAndSurvivorsDrain) {
  DynamicScheduler s(ctx(100, 2), /*chunk_fraction=*/0.1, /*min_chunk=*/1);
  ASSERT_TRUE(s.next_chunk(0).has_value());
  EXPECT_TRUE(s.deactivate(0).empty());  // shared cursor: nothing reserved
  EXPECT_FALSE(s.next_chunk(0).has_value());
  EXPECT_TRUE(s.finished(0));
  // The survivor drains everything the dead slot would have taken.
  long long served = 10;  // slot 0's first chunk
  while (auto c = s.next_chunk(1)) served += c->size();
  EXPECT_EQ(served, 100);
}

TEST(Deactivate, DynamicDoubleDeactivateIsIdempotent) {
  DynamicScheduler s(ctx(100, 2), 0.1, 1);
  EXPECT_TRUE(s.deactivate(0).empty());
  EXPECT_TRUE(s.deactivate(0).empty());  // no throw, no change
  EXPECT_TRUE(s.next_chunk(1).has_value());
}

TEST(Deactivate, DynamicLastActiveSlotWithRemainingWorkThrows) {
  DynamicScheduler s(ctx(100, 2), 0.1, 1);
  s.deactivate(0);
  EXPECT_THROW(s.deactivate(1), OffloadError);
}

TEST(Deactivate, DynamicLastActiveSlotWithNothingLeftIsFine) {
  DynamicScheduler s(ctx(20, 2), 0.5, 1);
  ASSERT_TRUE(s.next_chunk(0).has_value());
  ASSERT_TRUE(s.next_chunk(1).has_value());
  ASSERT_FALSE(s.next_chunk(0).has_value());  // drained
  s.deactivate(0);
  EXPECT_NO_THROW(s.deactivate(1));
}

TEST(Deactivate, DynamicReactivateServesChunksAgain) {
  DynamicScheduler s(ctx(100, 2), 0.1, 1);
  s.deactivate(0);
  ASSERT_FALSE(s.next_chunk(0).has_value());
  s.reactivate(0);
  auto c = s.next_chunk(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 10);
  // Reactivating a never-deactivated (or already active) slot is a no-op.
  s.reactivate(0);
  EXPECT_TRUE(s.next_chunk(0).has_value());
}

TEST(Deactivate, GuidedMirrorsTheDynamicContract) {
  GuidedScheduler s(ctx(1000, 2), /*fraction=*/0.5, /*min_chunk=*/1);
  ASSERT_TRUE(s.next_chunk(0).has_value());
  EXPECT_TRUE(s.deactivate(0).empty());
  EXPECT_FALSE(s.next_chunk(0).has_value());
  EXPECT_TRUE(s.deactivate(0).empty());  // idempotent
  s.reactivate(0);
  EXPECT_TRUE(s.next_chunk(0).has_value());
  s.deactivate(0);
  EXPECT_THROW(s.deactivate(1), OffloadError);
}

TEST(Deactivate, WorkStealingHandsBackTheDequeAndStopsStealing) {
  WorkStealingScheduler s(ctx(100, 2), /*grain_fraction=*/0.1,
                          /*min_chunk=*/1);
  auto first = s.next_chunk(0);
  ASSERT_TRUE(first.has_value());
  auto orphaned = s.deactivate(0);
  EXPECT_EQ(total_size(orphaned), 50 - first->size());
  EXPECT_TRUE(s.deactivate(0).empty());  // idempotent
  // A deactivated slot neither serves its deque nor steals from others.
  EXPECT_FALSE(s.next_chunk(0).has_value());
  EXPECT_TRUE(s.finished(0));
  long long survivor = 0;
  while (auto c = s.next_chunk(1)) survivor += c->size();
  EXPECT_EQ(survivor, 50);  // its own half; the orphaned half went back
}

TEST(Deactivate, WorkStealingReactivatedSlotEarnsWorkByStealing) {
  WorkStealingScheduler s(ctx(100, 2), 0.1, 1);
  auto orphaned = s.deactivate(0);
  EXPECT_EQ(total_size(orphaned), 50);
  s.reactivate(0);
  // Its own deque is gone for good (handed back above): the readmitted
  // slot cold-starts by stealing from the survivor.
  auto c = s.next_chunk(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_GE(s.steals(), 1u);
  long long served = c->size();
  while (auto n = s.next_chunk(0)) served += n->size();
  while (auto n = s.next_chunk(1)) served += n->size();
  EXPECT_EQ(served, 50);
}

TEST(Deactivate, CyclicReturnsExactlyTheSlotsRemainingBlocks) {
  CyclicScheduler s(ctx(100, 2), /*block_fraction=*/0.1, /*min_chunk=*/1);
  ASSERT_EQ(s.block_size(), 10);
  auto c = s.next_chunk(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, dist::Range(0, 10));
  // Slot 0 owns blocks 0, 2, 4, 6, 8 and consumed the first: 4 remain.
  auto orphaned = s.deactivate(0);
  EXPECT_EQ(orphaned.size(), 4u);
  EXPECT_EQ(total_size(orphaned), 40);
  EXPECT_TRUE(s.finished(0));
  EXPECT_FALSE(s.next_chunk(0).has_value());
  EXPECT_TRUE(s.deactivate(0).empty());  // idempotent
  // Slot 1's interleaved blocks are untouched.
  long long survivor = 0;
  while (auto n = s.next_chunk(1)) survivor += n->size();
  EXPECT_EQ(survivor, 50);
}

TEST(Deactivate, PartitionReturnsTheUnconsumedPartOnce) {
  auto s = PartitionScheduler::from_distribution(
      dist::Distribution::block(dist::Range::of_size(100), 2));
  auto orphaned = s->deactivate(0);
  EXPECT_EQ(total_size(orphaned), 50);
  EXPECT_TRUE(s->finished(0));
  EXPECT_FALSE(s->next_chunk(0).has_value());
  EXPECT_TRUE(s->deactivate(0).empty());  // idempotent
  // A part already served is consumed: deactivate returns nothing.
  ASSERT_TRUE(s->next_chunk(1).has_value());
  EXPECT_TRUE(s->deactivate(1).empty());
}

TEST(Deactivate, HistorySchedulerMatchesThePartitionContract) {
  ThroughputHistory h;
  h.record("k", 1, 1e9);
  h.record("k", 2, 1e9);
  HistoryScheduler s(ctx(100, 2), h, "k", {1, 2}, /*cutoff_ratio=*/0.0);
  auto orphaned = s.deactivate(0);
  EXPECT_EQ(total_size(orphaned), 50);
  EXPECT_TRUE(s.deactivate(0).empty());
  ASSERT_TRUE(s.next_chunk(1).has_value());
  EXPECT_TRUE(s.deactivate(1).empty());
}

}  // namespace
}  // namespace homp::sched
