#include "sched/selector.h"

#include <gtest/gtest.h>

#include "kernels/case.h"
#include "machine/profiles.h"

namespace homp::sched {
namespace {

model::KernelCostProfile profile_of(const char* name, long long n) {
  return kern::make_case(name, n, false)->kernel().cost;
}

TEST(Selector, PaperSectionVIDHeuristics) {
  // 1. compute-intensive: BLOCK on identical devices, MODEL_1 otherwise.
  EXPECT_EQ(select_algorithm(profile_of("matmul", 6144), true),
            AlgorithmKind::kBlock);
  EXPECT_EQ(select_algorithm(profile_of("matmul", 6144), false),
            AlgorithmKind::kModel1Auto);
  EXPECT_EQ(select_algorithm(profile_of("bm2d", 256), true),
            AlgorithmKind::kBlock);
  // 2. balanced: SCHED_DYNAMIC.
  EXPECT_EQ(select_algorithm(profile_of("matvec", 48000), true),
            AlgorithmKind::kDynamic);
  EXPECT_EQ(select_algorithm(profile_of("stencil2d", 256), false),
            AlgorithmKind::kDynamic);
  // 3. data-intensive: MODEL_2.
  EXPECT_EQ(select_algorithm(profile_of("axpy", 100'000'000), true),
            AlgorithmKind::kModel2Auto);
  EXPECT_EQ(select_algorithm(profile_of("sum", 300'000'000), false),
            AlgorithmKind::kModel2Auto);
}

TEST(Selector, HomogeneityDetection) {
  auto gpus = model::prediction_inputs(mach::builtin("gpu4"), {1, 2, 3, 4});
  EXPECT_TRUE(devices_homogeneous(gpus));

  auto mixed =
      model::prediction_inputs(mach::builtin("full"), {0, 1, 2, 3, 4, 5, 6});
  EXPECT_FALSE(devices_homogeneous(mixed));

  auto gpu_and_mic = model::prediction_inputs(mach::builtin("full"), {1, 5});
  EXPECT_FALSE(devices_homogeneous(gpu_and_mic));

  EXPECT_TRUE(devices_homogeneous({}));
  EXPECT_TRUE(devices_homogeneous(
      model::prediction_inputs(mach::builtin("full"), {1})));
}

TEST(Selector, HostAmongAcceleratorsIsHeterogeneous) {
  auto host_gpu = model::prediction_inputs(mach::builtin("gpu4"), {0, 1});
  EXPECT_FALSE(devices_homogeneous(host_gpu));
}

TEST(Selector, DeviceListOverloadAgrees) {
  auto gpus = model::prediction_inputs(mach::builtin("gpu4"), {1, 2, 3, 4});
  EXPECT_EQ(select_algorithm(profile_of("matmul", 2048), gpus),
            AlgorithmKind::kBlock);
  auto mixed = model::prediction_inputs(mach::builtin("full"), {0, 1, 5});
  EXPECT_EQ(select_algorithm(profile_of("matmul", 2048), mixed),
            AlgorithmKind::kModel1Auto);
}

}  // namespace
}  // namespace homp::sched
