#include "sched/partition_sched.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::sched {
namespace {

LoopContext ctx_with(long long n, std::vector<model::DevicePredictionInput> d) {
  LoopContext c;
  c.loop = dist::Range::of_size(n);
  c.devices = std::move(d);
  c.kernel.flops_per_iter = 100.0;
  c.kernel.mem_bytes_per_iter = 8.0;
  c.kernel.transfer_bytes_per_iter = 8.0;
  return c;
}

model::DevicePredictionInput dev(double gflops) {
  model::DevicePredictionInput d;
  d.peak_flops = gflops * 1e9;
  d.peak_membw_Bps = 100e9;
  return d;
}

TEST(PartitionScheduler, BlockHandsOneChunkPerSlot) {
  auto s = PartitionScheduler::block(ctx_with(10, {dev(1), dev(1), dev(1)}));
  EXPECT_EQ(s->num_stages(), 1);
  auto c0 = s->next_chunk(0);
  ASSERT_TRUE(c0.has_value());
  EXPECT_EQ(*c0, dist::Range(0, 4));
  EXPECT_TRUE(s->finished(0));
  EXPECT_FALSE(s->next_chunk(0).has_value());
  EXPECT_EQ(*s->next_chunk(2), dist::Range(7, 10));
  EXPECT_FALSE(s->finished(1));
  s->next_chunk(1);
  EXPECT_TRUE(s->finished(1));
  EXPECT_EQ(s->chunks_issued(), 3u);
}

TEST(PartitionScheduler, EmptyPartIsFinishedImmediately) {
  auto s = PartitionScheduler::block(ctx_with(2, {dev(1), dev(1), dev(1)}));
  EXPECT_TRUE(s->finished(2));  // 2 iterations over 3 devices
  EXPECT_FALSE(s->next_chunk(2).has_value());
}

TEST(PartitionScheduler, ModelWeightsSkewChunks) {
  auto s = PartitionScheduler::from_model(
      ctx_with(100, {dev(3), dev(1)}), AlgorithmKind::kModel1Auto, 0.0);
  EXPECT_EQ(s->next_chunk(0)->size(), 75);
  EXPECT_EQ(s->next_chunk(1)->size(), 25);
  auto w = s->planned_weights();
  EXPECT_NEAR(w[0], 0.75, 1e-9);
  EXPECT_EQ(s->cutoff(), nullptr);
}

TEST(PartitionScheduler, CutoffZeroesSmallContributors) {
  auto s = PartitionScheduler::from_model(
      ctx_with(100, {dev(10), dev(10), dev(1)}),
      AlgorithmKind::kModel1Auto, 0.15);
  ASSERT_NE(s->cutoff(), nullptr);
  EXPECT_EQ(s->cutoff()->num_selected, 2);
  EXPECT_FALSE(s->next_chunk(2).has_value());
  EXPECT_TRUE(s->finished(2));
  EXPECT_EQ(s->next_chunk(0)->size() + s->next_chunk(1)->size(), 100);
}

TEST(PartitionScheduler, FromDistributionCopiesParts) {
  auto d = dist::Distribution::by_counts(dist::Range(0, 12), {2, 10});
  auto s = PartitionScheduler::from_distribution(d);
  EXPECT_EQ(*s->next_chunk(1), dist::Range(2, 12));
  auto w = s->planned_weights();
  EXPECT_NEAR(w[1], 10.0 / 12.0, 1e-12);
}

TEST(PartitionScheduler, FromModelRejectsWrongKind) {
  EXPECT_THROW(PartitionScheduler::from_model(ctx_with(10, {dev(1)}),
                                              AlgorithmKind::kDynamic, 0.0),
               homp::ConfigError);
}

}  // namespace
}  // namespace homp::sched
