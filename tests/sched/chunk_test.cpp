#include "sched/chunk_sched.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::sched {
namespace {

LoopContext ctx(long long n, std::size_t m) {
  LoopContext c;
  c.loop = dist::Range::of_size(n);
  c.devices.resize(m);
  for (auto& d : c.devices) {
    d.peak_flops = 1e9;
    d.peak_membw_Bps = 1e9;
  }
  return c;
}

TEST(DynamicScheduler, FixedSizeChunksInOrder) {
  DynamicScheduler s(ctx(100, 2), /*chunk_fraction=*/0.1, /*min_chunk=*/1);
  EXPECT_EQ(s.chunk_size(), 10);
  EXPECT_EQ(*s.next_chunk(0), dist::Range(0, 10));
  EXPECT_EQ(*s.next_chunk(1), dist::Range(10, 20));
  EXPECT_EQ(*s.next_chunk(0), dist::Range(20, 30));
  EXPECT_FALSE(s.finished(0));
  for (int i = 0; i < 7; ++i) s.next_chunk(i % 2);
  EXPECT_TRUE(s.finished(0));
  EXPECT_TRUE(s.finished(1));
  EXPECT_FALSE(s.next_chunk(0).has_value());
  EXPECT_EQ(s.chunks_issued(), 10u);
}

TEST(DynamicScheduler, LastChunkIsTruncated) {
  DynamicScheduler s(ctx(25, 1), 0.4, 1);  // chunks of 10
  EXPECT_EQ(s.next_chunk(0)->size(), 10);
  EXPECT_EQ(s.next_chunk(0)->size(), 10);
  EXPECT_EQ(s.next_chunk(0)->size(), 5);
  EXPECT_TRUE(s.finished(0));
}

TEST(DynamicScheduler, MinChunkFloorsTheSize) {
  DynamicScheduler s(ctx(1000, 1), 0.0001, 16);
  EXPECT_EQ(s.chunk_size(), 16);
}

TEST(DynamicScheduler, RejectsBadFractions) {
  EXPECT_THROW(DynamicScheduler(ctx(10, 1), 0.0, 1), homp::ConfigError);
  EXPECT_THROW(DynamicScheduler(ctx(10, 1), 1.5, 1), homp::ConfigError);
  EXPECT_THROW(DynamicScheduler(ctx(10, 1), 0.5, 0), homp::ConfigError);
}

TEST(GuidedScheduler, ChunksShrinkGeometrically) {
  GuidedScheduler s(ctx(1000, 2), /*fraction=*/0.5, /*min_chunk=*/1);
  EXPECT_EQ(s.next_chunk(0)->size(), 500);
  EXPECT_EQ(s.next_chunk(1)->size(), 250);
  EXPECT_EQ(s.next_chunk(0)->size(), 125);
  long long remaining = 125;
  long long consumed = 875;
  while (auto c = s.next_chunk(0)) {
    EXPECT_LE(c->size(), remaining);
    remaining -= c->size();
    consumed += c->size();
  }
  EXPECT_EQ(consumed, 1000);
  EXPECT_TRUE(s.finished(1));
}

TEST(GuidedScheduler, MinChunkStopsTheTail) {
  GuidedScheduler s(ctx(100, 1), 0.5, /*min_chunk=*/20);
  EXPECT_EQ(s.next_chunk(0)->size(), 50);
  EXPECT_EQ(s.next_chunk(0)->size(), 25);
  EXPECT_EQ(s.next_chunk(0)->size(), 20);  // floored
  EXPECT_EQ(s.next_chunk(0)->size(), 5);   // truncated remainder
  EXPECT_TRUE(s.finished(0));
}

TEST(GuidedScheduler, IssuesFarFewerChunksThanDynamicAtSameMinimum) {
  DynamicScheduler d(ctx(100000, 4), 0.01, 1);
  GuidedScheduler g(ctx(100000, 4), 0.2, 250);
  std::size_t nd = 0, ng = 0;
  while (d.next_chunk(0)) ++nd;
  while (g.next_chunk(0)) ++ng;
  EXPECT_GT(nd, 2 * ng);
}

}  // namespace
}  // namespace homp::sched
