// Extended schedulers: CYCLIC, WORK_STEALING, HISTORY_AUTO.

#include "sched/extended_sched.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "kernels/axpy.h"
#include "machine/profiles.h"
#include "runtime/runtime.h"

namespace homp::sched {
namespace {

LoopContext ctx(long long n, std::size_t m) {
  LoopContext c;
  c.loop = dist::Range::of_size(n);
  c.devices.resize(m);
  for (auto& d : c.devices) {
    d.peak_flops = 1e9;
    d.peak_membw_Bps = 1e9;
  }
  c.kernel.flops_per_iter = 1.0;
  c.kernel.mem_bytes_per_iter = 8.0;
  return c;
}

TEST(CyclicScheduler, RoundRobinBlocks) {
  CyclicScheduler s(ctx(100, 3), /*fraction=*/0.1, 1);  // blocks of 10
  EXPECT_EQ(s.block_size(), 10);
  EXPECT_EQ(*s.next_chunk(0), dist::Range(0, 10));
  EXPECT_EQ(*s.next_chunk(1), dist::Range(10, 20));
  EXPECT_EQ(*s.next_chunk(2), dist::Range(20, 30));
  EXPECT_EQ(*s.next_chunk(0), dist::Range(30, 40));  // slot 0's 2nd block
  EXPECT_EQ(*s.next_chunk(2), dist::Range(50, 60));
  EXPECT_FALSE(s.finished(1));
}

TEST(CyclicScheduler, AssignmentIsStaticPerSlot) {
  // Unlike dynamic chunking, slot k's blocks are fixed: k, k+M, k+2M, ...
  CyclicScheduler a(ctx(90, 3), 0.1, 1);
  long long covered = 0;
  for (int slot = 0; slot < 3; ++slot) {
    long long expect_lo = slot * 9;  // block = 9
    while (auto c = a.next_chunk(slot)) {
      EXPECT_EQ(c->lo, expect_lo);
      expect_lo += 3 * 9;
      covered += c->size();
    }
    EXPECT_TRUE(a.finished(slot));
  }
  EXPECT_EQ(covered, 90);
}

TEST(CyclicScheduler, AbsoluteBlockOverridesFraction) {
  CyclicScheduler s(ctx(100, 2), 0.5, 1, /*absolute_block=*/7);
  EXPECT_EQ(s.block_size(), 7);
  EXPECT_EQ(*s.next_chunk(1), dist::Range(7, 14));
  // Tail block is truncated.
  CyclicScheduler t(ctx(10, 1), 0.5, 1, 7);
  EXPECT_EQ(t.next_chunk(0)->size(), 7);
  EXPECT_EQ(t.next_chunk(0)->size(), 3);
}

TEST(WorkStealingScheduler, ServesOwnDequeFirst) {
  WorkStealingScheduler s(ctx(100, 2), /*grain=*/0.1, 1);
  EXPECT_EQ(*s.next_chunk(0), dist::Range(0, 10));
  EXPECT_EQ(*s.next_chunk(0), dist::Range(10, 20));
  EXPECT_EQ(*s.next_chunk(1), dist::Range(50, 60));
  EXPECT_EQ(s.steals(), 0u);
}

TEST(WorkStealingScheduler, IdleDeviceStealsHalf) {
  WorkStealingScheduler s(ctx(100, 2), 0.1, 1);
  // Drain slot 0's own half entirely.
  for (int i = 0; i < 5; ++i) s.next_chunk(0);
  EXPECT_EQ(s.steals(), 0u);
  // Next request steals the back half of slot 1's untouched [50,100).
  auto stolen = *s.next_chunk(0);
  EXPECT_EQ(s.steals(), 1u);
  EXPECT_EQ(stolen, dist::Range(75, 85));
  // Victim keeps its front.
  EXPECT_EQ(*s.next_chunk(1), dist::Range(50, 60));
}

TEST(WorkStealingScheduler, TerminatesAndCoversExactly) {
  WorkStealingScheduler s(ctx(997, 3), 0.03, 1);
  std::vector<dist::Range> chunks;
  int slot = 0;
  int idle_rounds = 0;
  while (!s.finished(0)) {
    auto c = s.next_chunk(slot % 3);
    ++slot;
    if (c) {
      chunks.push_back(*c);
      idle_rounds = 0;
    } else {
      ASSERT_LT(++idle_rounds, 10) << "no progress";
    }
  }
  EXPECT_TRUE(exactly_covers(dist::Range(0, 997), chunks));
}

TEST(ThroughputHistory, EwmaBlending) {
  ThroughputHistory h;
  EXPECT_FALSE(h.has("axpy", 1));
  EXPECT_EQ(h.rate("axpy", 1), 0.0);
  h.record("axpy", 1, 100.0);
  EXPECT_EQ(h.rate("axpy", 1), 100.0);
  h.record("axpy", 1, 200.0, 0.5);
  EXPECT_EQ(h.rate("axpy", 1), 150.0);
  // Keys are (kernel, device).
  h.record("axpy", 2, 50.0);
  h.record("sum", 1, 7.0);
  EXPECT_EQ(h.rate("axpy", 2), 50.0);
  EXPECT_EQ(h.rate("sum", 1), 7.0);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_THROW(h.record("x", 0, -1.0), homp::ConfigError);
}

TEST(ThroughputHistory, TextRoundTrip) {
  ThroughputHistory h;
  h.record("axpy", 0, 123.456);
  h.record("axpy", 3, 1e9);
  h.record("mat mul", 1, 0.25);  // names may contain spaces
  ThroughputHistory h2;
  h2.merge_text(h.to_text());
  EXPECT_EQ(h2.size(), 3u);
  EXPECT_EQ(h2.rate("axpy", 0), h.rate("axpy", 0));
  EXPECT_EQ(h2.rate("axpy", 3), h.rate("axpy", 3));
  EXPECT_EQ(h2.rate("mat mul", 1), 0.25);
}

TEST(ThroughputHistory, MergeOverwritesExisting) {
  ThroughputHistory h;
  h.record("k", 0, 1.0);
  h.merge_text("k\t0\t99\nother\t2\t5\n");
  EXPECT_EQ(h.rate("k", 0), 99.0);
  EXPECT_EQ(h.rate("other", 2), 5.0);
}

TEST(ThroughputHistory, MalformedTextRejected) {
  ThroughputHistory h;
  EXPECT_THROW(h.merge_text("no tabs here"), homp::ConfigError);
  EXPECT_THROW(h.merge_text("k\tx\t1.0\n"), homp::ConfigError);
  EXPECT_THROW(h.merge_text("k\t0\tfast\n"), homp::ConfigError);
  EXPECT_THROW(h.merge_text("k\t0\t-3\n"), homp::ConfigError);
  EXPECT_THROW(h.merge_text("\t0\t3\n"), homp::ConfigError);
}

TEST(ThroughputHistory, ClearEmptiesTheStore) {
  ThroughputHistory h;
  h.record("axpy", 0, 10.0);
  h.record("sum", 1, 20.0);
  h.clear();
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.has("axpy", 0));
  h.record("axpy", 0, 5.0);  // usable after clear
  EXPECT_EQ(h.rate("axpy", 0), 5.0);
}

TEST(ThroughputHistory, CapacityEvictsOldestEntries) {
  // A long-lived runtime records one entry per (kernel, device) pair ever
  // offloaded; the cap bounds the store, evicting in insertion order.
  ThroughputHistory h;
  EXPECT_EQ(h.capacity(), ThroughputHistory::kDefaultCapacity);
  h.set_capacity(3);
  h.record("k0", 0, 1.0);
  h.record("k1", 0, 2.0);
  h.record("k2", 0, 3.0);
  h.record("k3", 0, 4.0);  // evicts k0
  EXPECT_EQ(h.size(), 3u);
  EXPECT_FALSE(h.has("k0", 0));
  EXPECT_TRUE(h.has("k1", 0));
  EXPECT_TRUE(h.has("k3", 0));

  // Updating an existing entry is not an insertion: nothing is evicted.
  h.record("k1", 0, 20.0, /*alpha=*/1.0);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.rate("k1", 0), 20.0);
  EXPECT_TRUE(h.has("k2", 0));

  // Shrinking below the current size evicts immediately, oldest first.
  h.set_capacity(1);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.has("k3", 0));
  EXPECT_THROW(h.set_capacity(0), homp::ConfigError);
}

TEST(ThroughputHistory, DefaultCapBoundsUnboundedRecording) {
  ThroughputHistory h;
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    h.record(key, 0, 1.0 + i);
  }
  EXPECT_EQ(h.size(), ThroughputHistory::kDefaultCapacity);
  EXPECT_FALSE(h.has("k0", 0));      // oldest evicted
  EXPECT_TRUE(h.has("k1999", 0));    // newest kept
}

TEST(ThroughputHistory, FileRoundTrip) {
  ThroughputHistory h;
  h.record("sum", 5, 42.5);
  const std::string path = "/tmp/homp_history_test.tsv";
  h.save_file(path);
  ThroughputHistory h2;
  h2.load_file(path);
  EXPECT_EQ(h2.rate("sum", 5), 42.5);
  EXPECT_THROW(h2.load_file("/nonexistent/h.tsv"), homp::ConfigError);
}

TEST(HistoryScheduler, SplitsByRecordedRates) {
  ThroughputHistory h;
  h.record("k", 10, 300.0);
  h.record("k", 11, 100.0);
  HistoryScheduler s(ctx(100, 2), h, "k", {10, 11}, 0.0);
  EXPECT_TRUE(s.fully_informed());
  EXPECT_EQ(s.next_chunk(0)->size(), 75);
  EXPECT_EQ(s.next_chunk(1)->size(), 25);
  EXPECT_TRUE(s.finished(0));
}

TEST(HistoryScheduler, FallsBackToModelForUnseenDevices) {
  ThroughputHistory h;
  h.record("k", 10, 300.0);
  HistoryScheduler s(ctx(100, 2), h, "k", {10, 99}, 0.0);
  EXPECT_FALSE(s.fully_informed());
  // The unseen device still gets a share (model fallback), so it can earn
  // history.
  EXPECT_GT(s.next_chunk(1)->size(), 0);
}

TEST(HistoryScheduler, CutoffApplies) {
  ThroughputHistory h;
  h.record("k", 1, 100.0);
  h.record("k", 2, 100.0);
  h.record("k", 3, 1.0);
  HistoryScheduler s(ctx(100, 3), h, "k", {1, 2, 3}, 0.15);
  ASSERT_NE(s.cutoff(), nullptr);
  EXPECT_EQ(s.cutoff()->num_selected, 2);
  EXPECT_FALSE(s.next_chunk(2).has_value());
}

TEST(HistoryIntegration, SecondOffloadUsesObservedRates) {
  // End-to-end: a first offload (any algorithm) trains the runtime's
  // history; a HISTORY_AUTO offload then splits by what devices actually
  // delivered — on the heterogeneous machine that beats a BLOCK split.
  auto rt = rt::Runtime::from_builtin("full");
  kern::AxpyCase c(4'000'000, /*materialize=*/false);
  auto maps = c.maps();
  auto kernel = c.kernel();

  rt::OffloadOptions warm;
  warm.device_ids = rt.all_devices();
  warm.sched.kind = sched::AlgorithmKind::kBlock;
  warm.execute_bodies = false;
  const double t_block = rt.offload(kernel, maps, warm).total_time;
  EXPECT_TRUE(rt.history().has("axpy", 0));

  rt::OffloadOptions hist;
  hist.device_ids = rt.all_devices();
  hist.sched.kind = sched::AlgorithmKind::kHistoryAuto;
  hist.execute_bodies = false;
  const auto res = rt.offload(kernel, maps, hist);
  EXPECT_LT(res.total_time, t_block);
  // And the second history run refines further (or at least holds).
  const auto res2 = rt.offload(kernel, maps, hist);
  EXPECT_LT(res2.total_time, t_block);
}

TEST(HistoryIntegration, WithoutRuntimeFacadeRequiresStore) {
  SchedulerConfig cfg;
  cfg.kind = AlgorithmKind::kHistoryAuto;
  EXPECT_THROW(make_scheduler(cfg, ctx(10, 1)), homp::ConfigError);
}

}  // namespace
}  // namespace homp::sched
