// Extended algorithms driven end-to-end through directive strings.

#include <gtest/gtest.h>

#include "common/error.h"
#include "kernels/axpy.h"
#include "machine/profiles.h"
#include "pragma/parse.h"
#include "runtime/runtime.h"

namespace homp::pragma {
namespace {

rt::OffloadResult run_with(const std::string& dist_schedule,
                           long long n = 10'000) {
  rt::Runtime rt{mach::builtin("full")};
  kern::AxpyCase c(n, /*materialize=*/true);
  auto d = parse_directive(
      "parallel target device(0:*) "
      "map(tofrom: y[0:n] partition([ALIGN(loop)])) "
      "map(to: x[0:n] partition([ALIGN(loop)])) "
      "distribute dist_schedule(target: " +
      dist_schedule + ")");
  Bindings b;
  // Bind through the case's own maps for storage; the directive re-derives
  // identical specs.
  auto maps = c.maps();
  b.arrays["x"] = maps[0].binding;
  b.arrays["y"] = maps[1].binding;
  b.let("n", n);
  auto specs = build_map_specs(d, b);
  auto opts = to_offload_options(d, rt.machine());
  auto kernel = c.kernel();
  auto res = rt.offload(kernel, specs, opts);
  std::string why;
  EXPECT_TRUE(c.verify(&why)) << why << " (" << dist_schedule << ")";
  EXPECT_EQ(res.total_iterations(), n);
  return res;
}

TEST(ExtendedPragma, CyclicFractionSpelling) {
  auto res = run_with("CYCLIC(5%)");
  EXPECT_EQ(res.algorithm_used, sched::AlgorithmKind::kCyclic);
  EXPECT_EQ(res.chunks_issued, 20u);  // 1/0.05 blocks
}

TEST(ExtendedPragma, CyclicAbsoluteBlockSpelling) {
  auto res = run_with("CYCLIC(2500)");
  EXPECT_EQ(res.algorithm_used, sched::AlgorithmKind::kCyclic);
  EXPECT_EQ(res.chunks_issued, 4u);  // 10000 / 2500
}

TEST(ExtendedPragma, WorkStealing) {
  auto res = run_with("WORK_STEALING(2%)");
  EXPECT_EQ(res.algorithm_used, sched::AlgorithmKind::kWorkStealing);
  EXPECT_GE(res.chunks_issued, 7u);
}

TEST(ExtendedPragma, HistoryAutoThroughRuntimeFacade) {
  // Cold history: MODEL_2 fallback fills all slots, but the run must
  // still be correct and complete (and train the history it used).
  auto res = run_with("HISTORY_AUTO(15%)");
  EXPECT_EQ(res.algorithm_used, sched::AlgorithmKind::kHistoryAuto);
  EXPECT_TRUE(res.has_cutoff);
}

TEST(ExtendedPragma, MalformedExtensionArgs) {
  EXPECT_THROW(
      parse_directive("target device(*) dist_schedule(target: "
                      "WORK_STEALING(1%, 2%))"),
      ParseError);
  EXPECT_THROW(parse_directive("target device(*) dist_schedule(target: "
                               "HISTORY_AUTO(1%, 2%))"),
               ParseError);
  EXPECT_THROW(parse_directive("target device(*) dist_schedule(target: "
                               "CYCLIC(0))"),
               ParseError);
}

}  // namespace
}  // namespace homp::pragma
