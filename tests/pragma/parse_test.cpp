// Directive parser: the paper's own pragma examples must parse.

#include "pragma/parse.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "memory/host_array.h"

namespace homp::pragma {
namespace {

TEST(ParseDirective, AxpyHompV1FromFigure2) {
  auto d = parse_directive(
      "#pragma omp parallel target device (*) "
      "map(tofrom: y[0:n] partition([BLOCK])) "
      "map(to: x[0:n] partition([BLOCK]),a,n)");
  EXPECT_EQ(d.kind, ParsedDirective::Kind::kTarget);
  EXPECT_TRUE(d.parallel);
  EXPECT_EQ(d.device_clause, "*");
  ASSERT_EQ(d.maps.size(), 4u);
  EXPECT_EQ(d.maps[0].name, "y");
  EXPECT_EQ(d.maps[0].dir, mem::MapDirection::kToFrom);
  ASSERT_EQ(d.maps[0].partition.size(), 1u);
  EXPECT_EQ(d.maps[0].partition[0].kind, dist::PolicyKind::kBlock);
  EXPECT_EQ(d.maps[1].name, "x");
  EXPECT_EQ(d.maps[1].dir, mem::MapDirection::kTo);
  EXPECT_TRUE(d.maps[2].is_scalar);  // a
  EXPECT_TRUE(d.maps[3].is_scalar);  // n
}

TEST(ParseDirective, DistScheduleAlign) {
  auto d = parse_directive(
      "omp parallel for distribute dist_schedule(target:[ALIGN(x)])");
  EXPECT_TRUE(d.has_dist_schedule);
  EXPECT_EQ(d.loop_policy.kind, dist::PolicyKind::kAlign);
  EXPECT_EQ(d.loop_policy.align_target, "x");
  EXPECT_FALSE(d.sched_given);
}

TEST(ParseDirective, DistScheduleAuto) {
  auto d = parse_directive(
      "parallel target device(0:*) map(to: x[0:n] partition([ALIGN(loop)])) "
      "distribute dist_schedule(target:[AUTO])");
  EXPECT_EQ(d.loop_policy.kind, dist::PolicyKind::kAuto);
}

TEST(ParseDirective, JacobiDataRegionFromFigure3) {
  auto d = parse_directive(
      "#pragma omp parallel target data device(*) "
      "map(to:n, m, omega, ax, ay, b, "
      "f[0:n][0:m] partition([ALIGN(loop1)], FULL)) "
      "map(tofrom:u[0:n][0:m] partition([ALIGN(loop1)], FULL)) "
      "map(alloc:uold[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,))");
  EXPECT_EQ(d.kind, ParsedDirective::Kind::kTargetData);
  // 6 scalars + 3 arrays.
  int scalars = 0, arrays = 0;
  for (const auto& m : d.maps) (m.is_scalar ? scalars : arrays)++;
  EXPECT_EQ(scalars, 6);
  EXPECT_EQ(arrays, 3);
  const auto& uold = d.maps.back();
  EXPECT_EQ(uold.name, "uold");
  EXPECT_EQ(uold.dir, mem::MapDirection::kAlloc);
  EXPECT_EQ(uold.halo_before, 1);
  EXPECT_EQ(uold.halo_after, 1);
  ASSERT_EQ(uold.partition.size(), 2u);
  EXPECT_EQ(uold.partition[0].kind, dist::PolicyKind::kAlign);
  EXPECT_EQ(uold.partition[0].align_target, "loop1");
  EXPECT_EQ(uold.partition[1].kind, dist::PolicyKind::kFull);
}

TEST(ParseDirective, ReductionAndCollapse) {
  auto d = parse_directive(
      "parallel for target device(*) reduction(+:error) collapse(2) "
      "distribute dist_schedule(target:[AUTO]) label(loop1)");
  EXPECT_TRUE(d.has_reduction);
  EXPECT_EQ(d.reduction_var, "error");
  EXPECT_EQ(d.collapse, 2);
  EXPECT_EQ(d.loop_label, "loop1");
}

TEST(ParseDirective, HaloExchange) {
  auto d = parse_directive("#pragma omp halo_exchange (uold)");
  EXPECT_EQ(d.kind, ParsedDirective::Kind::kHaloExchange);
  EXPECT_EQ(d.halo_array, "uold");
}

TEST(ParseDirective, AlgorithmExtensionSyntax) {
  auto d = parse_directive(
      "target device(*) dist_schedule(target: SCHED_DYNAMIC(2%))");
  EXPECT_TRUE(d.sched_given);
  EXPECT_EQ(d.sched.kind, sched::AlgorithmKind::kDynamic);
  EXPECT_NEAR(d.sched.dynamic_chunk_fraction, 0.02, 1e-12);

  auto p = parse_directive(
      "target device(*) dist_schedule(target: MODEL_PROFILE_AUTO(10%, 15%))");
  EXPECT_EQ(p.sched.kind, sched::AlgorithmKind::kModelProfileAuto);
  EXPECT_NEAR(p.sched.sample_fraction, 0.10, 1e-12);
  EXPECT_NEAR(p.sched.cutoff_ratio, 0.15, 1e-12);

  auto m = parse_directive(
      "target device(*) dist_schedule(target: MODEL_2_AUTO(15%))");
  EXPECT_EQ(m.sched.kind, sched::AlgorithmKind::kModel2Auto);
  EXPECT_NEAR(m.sched.cutoff_ratio, 0.15, 1e-12);
}

TEST(ParseDirective, LineContinuationsAreTolerated) {
  auto d = parse_directive(
      "#pragma omp parallel target device (*) \\\n"
      "  map(tofrom: y[0:n] partition([BLOCK]))");
  EXPECT_EQ(d.maps.size(), 1u);
}

TEST(ParseDirective, Malformed) {
  EXPECT_THROW(parse_directive(""), homp::Error);
  EXPECT_THROW(parse_directive("target map(sideways: x[0:n])"), ParseError);
  EXPECT_THROW(parse_directive("target map(to: x[0:n)"), ParseError);
  EXPECT_THROW(parse_directive("target frobnicate(3)"), ParseError);
  EXPECT_THROW(parse_directive("parallel for"), homp::Error);  // no target
  EXPECT_THROW(parse_directive("target map(to: x[n])"), ParseError);
  EXPECT_THROW(
      parse_directive("target map(to: x[0:n] partition([BLOCK],[FULL]))"),
      ParseError);  // 2 policies, 1 dim
  EXPECT_THROW(parse_directive("target reduction(*:x)"), ParseError);
  EXPECT_THROW(parse_directive("target dist_schedule(teams: AUTO)"),
               ParseError);
}

TEST(BuildMapSpecs, BindsStorageAndResolvesSymbols) {
  auto d = parse_directive(
      "parallel target device(*) "
      "map(tofrom: y[0:n] partition([ALIGN(loop)])) "
      "map(to: x[0:n] partition([ALIGN(loop)]), a, n)");
  mem::HostArray<double> x = mem::HostArray<double>::vector(64);
  mem::HostArray<double> y = mem::HostArray<double>::vector(64);
  Bindings b;
  b.bind("x", x);
  b.bind("y", y);
  b.let("n", 64);
  auto specs = build_map_specs(d, b);
  ASSERT_EQ(specs.size(), 2u);  // scalars skipped
  EXPECT_EQ(specs[0].name, "y");
  EXPECT_EQ(specs[0].region.dim(0), dist::Range(0, 64));
  EXPECT_EQ(specs[1].dir, mem::MapDirection::kTo);
}

TEST(BuildMapSpecs, UnboundSymbolOrArrayThrows) {
  auto d = parse_directive("target device(*) map(to: x[0:n])");
  Bindings b;
  EXPECT_THROW(build_map_specs(d, b), homp::ConfigError);
  mem::HostArray<double> x = mem::HostArray<double>::vector(8);
  b.bind("x", x);
  EXPECT_THROW(build_map_specs(d, b), homp::ConfigError);  // n unbound
  b.let("n", 8);
  EXPECT_EQ(build_map_specs(d, b).size(), 1u);
}

TEST(BuildMapSpecs, SectionExceedingArrayThrows) {
  auto d = parse_directive("target device(*) map(to: x[0:n])");
  mem::HostArray<double> x = mem::HostArray<double>::vector(8);
  Bindings b;
  b.bind("x", x);
  b.let("n", 16);  // larger than the array
  EXPECT_THROW(build_map_specs(d, b), homp::ConfigError);
}

}  // namespace
}  // namespace homp::pragma
