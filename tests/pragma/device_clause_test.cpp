// Device-clause resolution: the paper's §III-1 examples.

#include <gtest/gtest.h>

#include "common/error.h"
#include "machine/profiles.h"
#include "pragma/parse.h"
#include "runtime/runtime.h"

namespace homp::pragma {
namespace {

TEST(DeviceClause, PaperExamples) {
  auto m = mach::builtin("full");  // host, 4 GPUs (1-4), 2 MICs (5-6)

  EXPECT_EQ(resolve_device_clause("0:*", m),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(resolve_device_clause("0, 2, 3, 5", m),
            (std::vector<int>{0, 2, 3, 5}));
  EXPECT_EQ(resolve_device_clause("0:2, 4:2", m),
            (std::vector<int>{0, 1, 4, 5}));
  EXPECT_EQ(resolve_device_clause("0:*:HOMP_DEVICE_NVGPU", m),
            (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(resolve_device_clause("*", m),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(DeviceClause, TypeFilterWithCount) {
  auto m = mach::builtin("full");
  EXPECT_EQ(resolve_device_clause("0:2:mic", m), (std::vector<int>{5, 6}));
  EXPECT_EQ(resolve_device_clause("2:2:nvgpu", m), (std::vector<int>{2, 3}));
  EXPECT_EQ(resolve_device_clause("0:1:host", m), (std::vector<int>{0}));
}

TEST(DeviceClause, DefaultCountIsOne) {
  auto m = mach::builtin("full");
  EXPECT_EQ(resolve_device_clause("3", m), (std::vector<int>{3}));
}

TEST(DeviceClause, Errors) {
  auto m = mach::builtin("gpu4");  // 5 devices
  EXPECT_THROW(resolve_device_clause("9", m), ConfigError);
  EXPECT_THROW(resolve_device_clause("0:9", m), ConfigError);  // too few
  EXPECT_THROW(resolve_device_clause("1, 1", m), ConfigError); // duplicate
  EXPECT_THROW(resolve_device_clause("0:2:mic", m), ConfigError);  // no MICs
  EXPECT_THROW(resolve_device_clause("", m), ConfigError);
  EXPECT_THROW(resolve_device_clause("0:1:quantum", m), ConfigError);
}

TEST(DeviceClause, EndToEndOffloadFromPragma) {
  // The whole front-end path: parse, bind, run, verify — axpy_homp_v2.
  rt::Runtime rt{mach::testing_machine(2)};
  constexpr long long kN = 512;
  auto x = mem::HostArray<double>::vector(kN);
  auto y = mem::HostArray<double>::vector(kN);
  x.fill_with_index([](long long i) { return static_cast<double>(i); });
  y.fill(1.0);

  auto d = parse_directive(
      "#pragma omp parallel target device(0:*) "
      "map(tofrom: y[0:n] partition([ALIGN(loop)])) "
      "map(to: x[0:n] partition([ALIGN(loop)]), a, n) "
      "distribute dist_schedule(target:[AUTO])");
  Bindings b;
  b.bind("x", x);
  b.bind("y", y);
  b.let("n", kN);
  auto maps = build_map_specs(d, b);
  auto opts = to_offload_options(d, rt.machine());
  EXPECT_EQ(opts.device_ids.size(), 3u);
  EXPECT_TRUE(opts.auto_select_algorithm);
  EXPECT_TRUE(opts.parallel_offload);

  rt::LoopKernel k;
  k.name = "axpy";
  k.iterations = dist::Range::of_size(kN);
  k.cost.flops_per_iter = 2.0;
  k.cost.mem_bytes_per_iter = 24.0;
  k.cost.transfer_bytes_per_iter = 24.0;
  k.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
    auto xv = env.view<double>("x");
    auto yv = env.view<double>("y");
    for (long long i = chunk.lo; i < chunk.hi; ++i) yv(i) += 2.0 * xv(i);
    return 0.0;
  };
  auto res = rt.offload(k, maps, opts);
  EXPECT_EQ(res.total_iterations(), kN);
  for (long long i = 0; i < kN; ++i) {
    ASSERT_EQ(y(i), 1.0 + 2.0 * i) << "y[" << i << "]";
  }
}

}  // namespace
}  // namespace homp::pragma
