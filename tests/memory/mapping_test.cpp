// DeviceMapping: real subregion copies, footprint bookkeeping, views.

#include <gtest/gtest.h>

#include "common/error.h"
#include "memory/data_env.h"
#include "memory/device_mapping.h"
#include "memory/host_array.h"

namespace homp::mem {
namespace {

MapSpec spec_1d(HostArray<double>& a, MapDirection dir) {
  MapSpec s;
  s.name = "a";
  s.dir = dir;
  s.binding = bind_array(a);
  s.region = a.region();
  s.partition = {dist::DimPolicy::align("loop")};
  return s;
}

TEST(DeviceMapping, CopyInOutRoundTrips1D) {
  auto a = HostArray<double>::vector(10);
  a.fill_with_index([](long long i) { return static_cast<double>(i); });
  auto s = spec_1d(a, MapDirection::kToFrom);

  dist::Region owned({dist::Range(3, 7)});
  DeviceMapping m(s, owned, owned, /*shared=*/false, /*materialize=*/true);
  m.copy_in();
  auto v = m.view<double>();
  EXPECT_EQ(v(3), 3.0);
  EXPECT_EQ(v(6), 6.0);
  v(4) = 44.0;
  m.copy_out();
  EXPECT_EQ(a(4), 44.0);
  EXPECT_EQ(a(2), 2.0);  // outside owned: untouched
  EXPECT_EQ(a(7), 7.0);
}

TEST(DeviceMapping, HaloFootprintCopiedButNotWrittenBack) {
  auto a = HostArray<double>::vector(10);
  a.fill_with_index([](long long i) { return static_cast<double>(i); });
  auto s = spec_1d(a, MapDirection::kToFrom);
  s.halo_before = 1;
  s.halo_after = 1;

  dist::Region owned({dist::Range(4, 6)});
  dist::Region fp({dist::Range(3, 7)});
  DeviceMapping m(s, owned, fp, false, true);
  m.copy_in();
  auto v = m.view<double>();
  EXPECT_EQ(v(3), 3.0);  // halo readable
  v(3) = -1.0;           // scribble on halo
  v(5) = 55.0;
  m.copy_out();
  EXPECT_EQ(a(3), 3.0);  // halo NOT written back
  EXPECT_EQ(a(5), 55.0);
  EXPECT_EQ(m.bytes_in(), 4 * 8.0);   // footprint
  EXPECT_EQ(m.bytes_out(), 2 * 8.0);  // owned only
}

TEST(DeviceMapping, TwoDimensionalRowSlices) {
  auto a = HostArray<double>::matrix(6, 4);
  a.fill_with_indices([](long long i, long long j) {
    return static_cast<double>(i * 10 + j);
  });
  MapSpec s;
  s.name = "m";
  s.dir = MapDirection::kToFrom;
  s.binding = bind_array(a);
  s.region = a.region();
  s.partition = {dist::DimPolicy::align("loop"), dist::DimPolicy::full()};

  dist::Region owned({dist::Range(2, 4), dist::Range(0, 4)});
  DeviceMapping m(s, owned, owned, false, true);
  m.copy_in();
  auto v = m.view<double>();
  EXPECT_EQ(v(2, 0), 20.0);
  EXPECT_EQ(v(3, 3), 33.0);
  v(2, 1) = 99.0;
  m.copy_out();
  EXPECT_EQ(a(2, 1), 99.0);
  EXPECT_EQ(a(1, 1), 11.0);
  EXPECT_EQ(a(4, 1), 41.0);
}

TEST(DeviceMapping, SharedAliasesHostStorage) {
  auto a = HostArray<double>::vector(8, 1.0);
  auto s = spec_1d(a, MapDirection::kToFrom);
  dist::Region owned({dist::Range(0, 8)});
  DeviceMapping m(s, owned, owned, /*shared=*/true, true);
  EXPECT_EQ(m.bytes_in(), 0.0);
  EXPECT_EQ(m.bytes_out(), 0.0);
  auto v = m.view<double>();
  v(5) = 7.0;
  EXPECT_EQ(a(5), 7.0);  // no copy needed
}

TEST(DeviceMapping, DirectionsGateTransfers) {
  auto a = HostArray<double>::vector(4, 2.0);
  dist::Region whole({dist::Range(0, 4)});
  {
    auto s = spec_1d(a, MapDirection::kTo);
    DeviceMapping m(s, whole, whole, false, true);
    EXPECT_GT(m.bytes_in(), 0.0);
    EXPECT_EQ(m.bytes_out(), 0.0);
  }
  {
    auto s = spec_1d(a, MapDirection::kFrom);
    DeviceMapping m(s, whole, whole, false, true);
    EXPECT_EQ(m.bytes_in(), 0.0);
    EXPECT_GT(m.bytes_out(), 0.0);
    m.copy_in();  // no-op
    auto v = m.view<double>();
    EXPECT_EQ(v(0), 0.0);  // storage zero-initialized, not copied from host
  }
  {
    auto s = spec_1d(a, MapDirection::kAlloc);
    DeviceMapping m(s, whole, whole, false, true);
    EXPECT_EQ(m.bytes_in(), 0.0);
    EXPECT_EQ(m.bytes_out(), 0.0);
  }
}

TEST(DeviceMapping, ViewOutsideFootprintThrows) {
  auto a = HostArray<double>::vector(10, 0.0);
  auto s = spec_1d(a, MapDirection::kTo);
  dist::Region owned({dist::Range(2, 5)});
  DeviceMapping m(s, owned, owned, false, true);
  auto v = m.view<double>();
  EXPECT_THROW(v(1), ExecutionError);
  EXPECT_THROW(v(5), ExecutionError);
  EXPECT_NO_THROW(v(4));
}

TEST(DeviceMapping, OwnedMustBeInsideFootprint) {
  auto a = HostArray<double>::vector(10, 0.0);
  auto s = spec_1d(a, MapDirection::kTo);
  EXPECT_THROW(DeviceMapping(s, dist::Region({dist::Range(0, 8)}),
                             dist::Region({dist::Range(2, 5)}), false, true),
               ConfigError);
}

TEST(DeviceMapping, PushPullSubregions) {
  auto a = HostArray<double>::vector(10);
  a.fill_with_index([](long long i) { return static_cast<double>(i); });
  auto s = spec_1d(a, MapDirection::kAlloc);
  dist::Region owned({dist::Range(2, 8)});
  DeviceMapping m(s, owned, owned, false, true);
  auto v = m.view<double>();
  for (long long i = 2; i < 8; ++i) v(i) = 100.0 + i;
  m.push_to_host(dist::Region({dist::Range(2, 4)}));
  EXPECT_EQ(a(2), 102.0);
  EXPECT_EQ(a(4), 4.0);  // outside pushed band
  a(7) = -7.0;
  m.pull_from_host(dist::Region({dist::Range(7, 8)}));
  EXPECT_EQ(v(7), -7.0);
  EXPECT_THROW(m.push_to_host(dist::Region({dist::Range(0, 3)})),
               ConfigError);
}

TEST(DataEnv, LookupAndTotals) {
  auto a = HostArray<double>::vector(6, 1.0);
  auto b = HostArray<double>::vector(4, 2.0);
  auto sa = spec_1d(a, MapDirection::kTo);
  auto sb = spec_1d(b, MapDirection::kToFrom);
  sb.name = "b";
  sb.region = b.region();

  MappingStore store;
  dist::Region ra({dist::Range(0, 6)});
  dist::Region rb({dist::Range(0, 4)});
  auto& ma = store.create(sa, ra, ra, false, true);
  auto& mb = store.create(sb, rb, rb, false, true);
  DeviceDataEnv env;
  env.add("a", &ma);
  env.add("b", &mb);
  EXPECT_TRUE(env.contains("a"));
  EXPECT_FALSE(env.contains("c"));
  EXPECT_THROW(env.mapping("c"), ConfigError);
  EXPECT_EQ(env.total_bytes_in(), 6 * 8.0 + 4 * 8.0);
  EXPECT_EQ(env.total_bytes_out(), 4 * 8.0);
  EXPECT_THROW(env.add("a", &ma), ConfigError);
  auto fork = env.fork();
  EXPECT_TRUE(fork.contains("b"));
  EXPECT_EQ(fork.size(), 2u);
}

TEST(DataEnv, ViewTypeSizeMismatchThrows) {
  auto a = HostArray<double>::vector(4, 0.0);
  auto s = spec_1d(a, MapDirection::kTo);
  dist::Region r({dist::Range(0, 4)});
  MappingStore store;
  auto& m = store.create(s, r, r, false, true);
  DeviceDataEnv env;
  env.add("a", &m);
  EXPECT_THROW(env.view<float>("a"), ConfigError);
  EXPECT_NO_THROW(env.view<double>("a"));
}

}  // namespace
}  // namespace homp::mem
