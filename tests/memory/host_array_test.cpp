#include "memory/host_array.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace homp::mem {
namespace {

TEST(HostArray, VectorBasics) {
  auto v = HostArray<double>::vector(5, 1.5);
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_EQ(v.extent(0), 5);
  EXPECT_EQ(v.size(), 5);
  EXPECT_EQ(v(3), 1.5);
  v(3) = 9.0;
  EXPECT_EQ(v(3), 9.0);
  EXPECT_EQ(v.region().dim(0).size(), 5);
}

TEST(HostArray, MatrixRowMajorLayout) {
  auto m = HostArray<double>::matrix(3, 4);
  EXPECT_EQ(m.stride(0), 4);
  EXPECT_EQ(m.stride(1), 1);
  m(2, 3) = 7.0;
  EXPECT_EQ(m.data()[2 * 4 + 3], 7.0);
}

TEST(HostArray, FillHelpers) {
  auto v = HostArray<double>::vector(4);
  v.fill_with_index([](long long i) { return i * 2.0; });
  EXPECT_EQ(v(3), 6.0);
  auto m = HostArray<double>::matrix(2, 2);
  m.fill_with_indices([](long long i, long long j) {
    return static_cast<double>(10 * i + j);
  });
  EXPECT_EQ(m(1, 1), 11.0);
  m.fill(0.5);
  EXPECT_EQ(m(0, 1), 0.5);
}

TEST(HostArray, Rank3) {
  HostArray<float> a({2, 3, 4});
  EXPECT_EQ(a.rank(), 3u);
  EXPECT_EQ(a.stride(0), 12);
  EXPECT_EQ(a.stride(1), 4);
  EXPECT_EQ(a.size(), 24);
}

TEST(HostArray, RejectsBadShapes) {
  EXPECT_THROW(HostArray<double>(std::vector<long long>{}), ConfigError);
  EXPECT_THROW(HostArray<double>({3, 0}), ConfigError);
  EXPECT_THROW(HostArray<double>({1, 2, 3, 4}), ConfigError);
}

}  // namespace
}  // namespace homp::mem
