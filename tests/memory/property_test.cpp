// Property tests on the memory layer: for randomized regions, halos and
// device counts, copies must round-trip exactly and footprints must cover
// every legal access of an aligned kernel.

#include <gtest/gtest.h>

#include "common/prng.h"
#include "dist/distribution.h"
#include "memory/data_env.h"
#include "memory/device_mapping.h"
#include "memory/host_array.h"

namespace homp::mem {
namespace {

TEST(MappingProperty, RandomSubregionCopiesRoundTrip1D) {
  Prng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    const long long n = 1 + static_cast<long long>(rng.below(500));
    auto a = HostArray<double>::vector(n);
    a.fill_with_index([](long long i) { return static_cast<double>(i); });

    const long long lo = static_cast<long long>(rng.below(n));
    const long long hi =
        lo + 1 + static_cast<long long>(rng.below(n - lo));
    MapSpec s;
    s.name = "a";
    s.dir = MapDirection::kToFrom;
    s.binding = bind_array(a);
    s.region = a.region();
    s.partition = {dist::DimPolicy::align("loop")};

    dist::Region owned({dist::Range(lo, hi)});
    DeviceMapping m(s, owned, owned, false, true);
    m.copy_in();
    auto v = m.view<double>();
    for (long long i = lo; i < hi; ++i) {
      ASSERT_EQ(v(i), static_cast<double>(i));
      v(i) = -v(i);
    }
    m.copy_out();
    for (long long i = 0; i < n; ++i) {
      const double expect = (i >= lo && i < hi) ? -static_cast<double>(i)
                                                : static_cast<double>(i);
      ASSERT_EQ(a(i), expect) << "trial " << trial << " i=" << i;
    }
  }
}

TEST(MappingProperty, RandomSubregionCopiesRoundTrip2D) {
  Prng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const long long n = 2 + static_cast<long long>(rng.below(40));
    const long long mcols = 2 + static_cast<long long>(rng.below(40));
    auto a = HostArray<double>::matrix(n, mcols);
    a.fill_with_indices([&](long long i, long long j) {
      return static_cast<double>(i * 1000 + j);
    });

    const long long lo = static_cast<long long>(rng.below(n));
    // Randomly partition dim 0 or dim 1 — column blocks must work too.
    const std::size_t pd = rng.below(2);
    MapSpec s;
    s.name = "a";
    s.dir = MapDirection::kToFrom;
    s.binding = bind_array(a);
    s.region = a.region();
    s.partition = {dist::DimPolicy::full(), dist::DimPolicy::full()};
    s.partition[pd] = dist::DimPolicy::align("loop");

    const long long extent = pd == 0 ? n : mcols;
    const long long plo = lo % extent;
    const long long phi = plo + 1 + static_cast<long long>(
                                        rng.below(extent - plo));
    dist::Region owned = s.region.with_dim(pd, dist::Range(plo, phi));
    DeviceMapping m(s, owned, owned, false, true);
    m.copy_in();
    auto v = m.view<double>();
    for (long long i = owned.dim(0).lo; i < owned.dim(0).hi; ++i) {
      for (long long j = owned.dim(1).lo; j < owned.dim(1).hi; ++j) {
        ASSERT_EQ(v(i, j), static_cast<double>(i * 1000 + j));
        v(i, j) += 0.5;
      }
    }
    m.copy_out();
    for (long long i = 0; i < n; ++i) {
      for (long long j = 0; j < mcols; ++j) {
        const bool inside = owned.dim(0).contains(i) &&
                            owned.dim(1).contains(j);
        ASSERT_EQ(a(i, j), static_cast<double>(i * 1000 + j) +
                               (inside ? 0.5 : 0.0))
            << "trial " << trial;
      }
    }
  }
}

TEST(MappingProperty, HaloFootprintsCoverStencilReads) {
  // For random device counts and halo widths, a kernel reading i +- halo
  // within its owned rows must always stay inside the footprint.
  Prng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const long long n = 8 + static_cast<long long>(rng.below(200));
    const std::size_t devs = 1 + rng.below(6);
    const long long halo = static_cast<long long>(rng.below(4));
    auto a = HostArray<double>::vector(n, 1.0);
    MapSpec s;
    s.name = "a";
    s.dir = MapDirection::kTo;
    s.binding = bind_array(a);
    s.region = a.region();
    s.partition = {dist::DimPolicy::align("loop")};
    s.halo_before = halo;
    s.halo_after = halo;

    auto d = dist::Distribution::block(dist::Range::of_size(n), devs);
    for (std::size_t slot = 0; slot < devs; ++slot) {
      const auto part = d.part(slot);
      if (part.empty()) continue;
      dist::Region owned({part});
      dist::Region fp({part.widened(halo, halo).clamped_to(
          dist::Range::of_size(n))});
      DeviceMapping m(s, owned, fp, false, true);
      m.copy_in();
      auto v = m.view<double>();
      for (long long i = part.lo; i < part.hi; ++i) {
        for (long long off = -halo; off <= halo; ++off) {
          const long long j = i + off;
          if (j < 0 || j >= n) continue;  // frame edge, kernel skips
          if (j >= part.lo - halo && j < part.hi + halo) {
            ASSERT_NO_THROW(v(std::max(0LL, std::min(j, n - 1))));
          }
        }
      }
    }
  }
}

TEST(MappingProperty, BytesMatchRegionVolumes) {
  Prng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const long long n = 1 + static_cast<long long>(rng.below(300));
    auto a = HostArray<double>::vector(n);
    MapSpec s;
    s.name = "a";
    s.dir = rng.next_double() < 0.5 ? MapDirection::kTo
                                    : MapDirection::kToFrom;
    s.binding = bind_array(a);
    s.region = a.region();
    s.partition = {dist::DimPolicy::align("loop")};

    const long long lo = static_cast<long long>(rng.below(n));
    const long long hi = lo + static_cast<long long>(rng.below(n - lo + 1));
    const long long flo = std::max(0LL, lo - 2);
    const long long fhi = std::min(n, hi + 2);
    dist::Region owned({dist::Range(lo, hi)});
    dist::Region fp({dist::Range(std::min(flo, lo), std::max(fhi, hi))});
    DeviceMapping m(s, owned, fp, false, false);  // accounting only
    EXPECT_EQ(m.bytes_in(), 8.0 * static_cast<double>(fp.volume()));
    EXPECT_EQ(m.bytes_out(), copies_out(s.dir)
                                 ? 8.0 * static_cast<double>(owned.volume())
                                 : 0.0);
  }
}

}  // namespace
}  // namespace homp::mem
