// The obs metrics registry: type semantics, histogram bucketing, merge,
// and the deterministic-export contract (docs/OBSERVABILITY.md).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "obs/metric_names.h"

namespace homp::obs {
namespace {

TEST(Histogram, BucketsArePowerOfTwoSpans) {
  Histogram h;
  h.observe(0.0);                    // below base -> bucket 0
  h.observe(Histogram::kBaseSeconds * 0.5);
  h.observe(Histogram::kBaseSeconds * 1.5);  // [base, 2*base) -> bucket 0
  h.observe(Histogram::kBaseSeconds * 3.0);  // [2*base, 4*base) -> bucket 1
  h.observe(1e9);                    // far above the top -> last bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(Histogram::kNumBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0 + Histogram::kBaseSeconds * 0.5 +
                                Histogram::kBaseSeconds * 1.5 +
                                Histogram::kBaseSeconds * 3.0 + 1e9);
}

TEST(Histogram, UpperBoundsDoubleAndEndAtInfinity) {
  EXPECT_DOUBLE_EQ(Histogram::upper_bound(0), Histogram::kBaseSeconds * 2);
  EXPECT_DOUBLE_EQ(Histogram::upper_bound(1), Histogram::kBaseSeconds * 4);
  EXPECT_TRUE(std::isinf(Histogram::upper_bound(Histogram::kNumBuckets - 1)));
  // Every sample lands strictly below its bucket's bound.
  Histogram h;
  const double v = 3.7e-4;
  h.observe(v);
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    EXPECT_LT(v, Histogram::upper_bound(i));
    if (i > 0) {
      EXPECT_GE(v, Histogram::upper_bound(i - 1));
    }
  }
}

TEST(Registry, CountersAccumulateGaugesOverwrite) {
  MetricsRegistry reg;
  reg.add("c", "", 2.0);
  reg.add("c", "", 3.0);
  reg.set("g", "", 7.0);
  reg.set("g", "", 9.0);
  EXPECT_DOUBLE_EQ(reg.value("c"), 5.0);
  EXPECT_DOUBLE_EQ(reg.value("g"), 9.0);
  EXPECT_DOUBLE_EQ(reg.value("absent"), 0.0);
}

TEST(Registry, LabelSetsAreIndependentSeries) {
  MetricsRegistry reg;
  reg.add("c", "device=\"a\"", 1.0);
  reg.add("c", "device=\"b\"", 2.0);
  EXPECT_DOUBLE_EQ(reg.value("c", "device=\"a\""), 1.0);
  EXPECT_DOUBLE_EQ(reg.value("c", "device=\"b\""), 2.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, TypeConflictThrows) {
  MetricsRegistry reg;
  reg.add("m", "");
  EXPECT_THROW(reg.set("m", "", 1.0), ConfigError);
  EXPECT_THROW(reg.observe("m", "", 1.0), ConfigError);
}

TEST(Registry, MergeFoldsAllThreeTypes) {
  MetricsRegistry a, b;
  a.add("c", "", 1.0);
  b.add("c", "", 2.0);
  a.set("g", "", 1.0);
  b.set("g", "", 5.0);
  a.observe("h", "", 1e-6);
  b.observe("h", "", 2e-6);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value("c"), 3.0);
  EXPECT_DOUBLE_EQ(a.value("g"), 5.0);
  const Histogram* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 3e-6);
}

TEST(Registry, MergeHistogramKeepsExactCountsAndSum) {
  Histogram h;
  h.observe(1e-6);
  h.observe(2e-3);
  MetricsRegistry reg;
  reg.merge_histogram(names::kDeviceChunkSeconds, "device=\"x\"", h);
  const Histogram* got =
      reg.find_histogram(names::kDeviceChunkSeconds, "device=\"x\"");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->count(), 2u);
  EXPECT_DOUBLE_EQ(got->sum(), h.sum());
}

TEST(Registry, JsonExportIsDeterministicAcrossInsertionOrders) {
  auto build = [](bool reversed) {
    MetricsRegistry reg;
    if (reversed) {
      reg.set("z_gauge", "", 0.25);
      reg.add("a_counter", "device=\"b\"", 2.0);
      reg.add("a_counter", "device=\"a\"", 1.0);
    } else {
      reg.add("a_counter", "device=\"a\"", 1.0);
      reg.add("a_counter", "device=\"b\"", 2.0);
      reg.set("z_gauge", "", 0.25);
    }
    reg.observe("h", "", 5e-5);
    std::ostringstream os;
    reg.write_json(os);
    return os.str();
  };
  EXPECT_EQ(build(false), build(true));
}

TEST(Registry, JsonEscapesLabelText) {
  MetricsRegistry reg;
  reg.add("c", "device=\"quote\\\"\"", 1.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  // The raw label's inner quote arrives escaped; the document stays
  // structurally balanced.
  EXPECT_NE(json.find("quote\\\\\\\""), std::string::npos);
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Registry, PrometheusExpositionShape) {
  MetricsRegistry reg;
  reg.add("homp_c_total", "device=\"a\"", 3.0);
  reg.set("homp_g", "", 1.5);
  reg.observe("homp_h_seconds", "", 3e-7);  // bucket 1
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE homp_c_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("homp_c_total{device=\"a\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE homp_g gauge\n"), std::string::npos);
  EXPECT_NE(text.find("homp_g 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE homp_h_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("homp_h_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("homp_h_seconds_count 1\n"), std::string::npos);
}

TEST(Registry, HistogramJsonBucketsAreCumulative) {
  MetricsRegistry reg;
  reg.observe("h", "", 1.5e-7);  // bucket 0
  reg.observe("h", "", 3e-7);    // bucket 1
  reg.observe("h", "", 3e-7);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find(R"("count": 1})"), std::string::npos);  // bucket 0
  EXPECT_NE(json.find(R"({"le": "+Inf", "count": 3})"), std::string::npos);
}

TEST(Histogram, AddBucketAndAddSumRebuildExactly) {
  // The advisor reloads exported histograms through add_bucket/add_sum
  // (advise/session.cpp); rebuilt state must match the original bucket
  // for bucket so a reload -> re-export round-trips byte-identically.
  Histogram h;
  h.observe(1.5e-7);
  h.observe(3e-3);
  h.observe(1e9);  // lands in the final bucket

  Histogram rebuilt;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    rebuilt.add_bucket(i, h.bucket(i));
  }
  rebuilt.add_sum(h.sum());
  EXPECT_EQ(rebuilt.count(), h.count());
  EXPECT_DOUBLE_EQ(rebuilt.sum(), h.sum());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(rebuilt.bucket(i), h.bucket(i));
  }
  // Out-of-range indices are ignored, not UB.
  rebuilt.add_bucket(-1, 5);
  rebuilt.add_bucket(Histogram::kNumBuckets, 5);
  EXPECT_EQ(rebuilt.count(), h.count());
}

TEST(Registry, HistogramJsonStaysValidWhenLastBucketIsOccupied) {
  // A sample beyond the finite range occupies the final bucket; the
  // export must still separate the last finite row from the +Inf row
  // with a comma (regression: the guard used to skip it).
  MetricsRegistry reg;
  reg.observe("h", "", 1.5e-7);  // bucket 0
  reg.observe("h", "", 1e9);     // final bucket
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.find("}{"), std::string::npos);
  EXPECT_NE(json.find(R"(}, {"le": "+Inf", "count": 2})"), std::string::npos);
}

}  // namespace
}  // namespace homp::obs
