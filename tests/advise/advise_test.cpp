// Unit tests for the offline advisor (src/advise): the JSON reader, the
// artifact sniffer, the metrics reload path, trace reduction, and the
// attribution engine's arithmetic on hand-built sessions with exact
// expected Inspection values (docs/OBSERVABILITY.md "The offline
// advisor").

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "advise/attribution.h"
#include "advise/json.h"
#include "advise/report.h"
#include "advise/report_keys.h"
#include "advise/session.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace {

using namespace homp;
using advise::Json;

// ---- JSON reader ---------------------------------------------------------

TEST(AdviseJson, ParsesEveryValueKindWithDocumentOrder) {
  const Json doc = Json::parse(
      R"({"b": true, "a": -2.5e3, "s": "hi", "n": null,)"
      R"( "arr": [1, 2, 3], "obj": {"k": 7}})");
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.members().size(), 6u);
  // Members keep document order, not sorted order.
  EXPECT_EQ(doc.members()[0].first, "b");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_TRUE(doc.find("b")->boolean());
  EXPECT_DOUBLE_EQ(doc.find("a")->number(), -2500.0);
  EXPECT_EQ(doc.find("s")->string(), "hi");
  EXPECT_TRUE(doc.find("n")->is_null());
  ASSERT_EQ(doc.find("arr")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("arr")->array()[2].number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.find("obj")->number_or("k", 0.0), 7.0);
}

TEST(AdviseJson, DecodesEscapesIncludingUnicode) {
  const Json doc = Json::parse(
      R"({"s": "q\" b\\ n\n t\t uA eé"})");
  EXPECT_EQ(doc.string_or_empty("s"), "q\" b\\ n\n t\t uA e\xc3\xa9");
}

TEST(AdviseJson, MalformedInputThrowsParseError) {
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("{} trailing"), ParseError);
  EXPECT_THROW(Json::parse(R"({"k": 1)"), ParseError);
  EXPECT_THROW(Json::parse(R"("bad \x escape")"), ParseError);
  EXPECT_THROW(Json::parse(""), ParseError);
}

TEST(AdviseJson, MissingFileThrowsConfigError) {
  EXPECT_THROW(Json::parse_file("/nonexistent/advise.json"), ConfigError);
}

TEST(AdviseJson, WrongTypeAccessIsNeutralNotThrowing) {
  const Json doc = Json::parse(R"({"s": "text"})");
  EXPECT_DOUBLE_EQ(doc.find("s")->number(), 0.0);
  EXPECT_FALSE(doc.find("s")->boolean());
  EXPECT_TRUE(doc.find("s")->array().empty());
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_DOUBLE_EQ(doc.number_or("absent", 42.0), 42.0);
  EXPECT_EQ(doc.string_or_empty("absent"), "");
}

// ---- artifact sniffing ---------------------------------------------------

TEST(AdviseClassify, SniffsEveryArtifactKind) {
  using advise::ArtifactKind;
  using advise::classify;
  EXPECT_EQ(classify(Json::parse(R"({"homp_audit_version": 1})")),
            ArtifactKind::kAudit);
  EXPECT_EQ(classify(Json::parse(R"({"homp_serve_audit_version": 1})")),
            ArtifactKind::kServeAudit);
  EXPECT_EQ(classify(Json::parse(R"({"homp_metrics_version": 1})")),
            ArtifactKind::kMetrics);
  EXPECT_EQ(classify(Json::parse("[]")), ArtifactKind::kTrace);
  EXPECT_EQ(classify(Json::parse(R"({"bench": "engine"})")),
            ArtifactKind::kBench);
  EXPECT_EQ(classify(Json::parse(R"({"foo": 1})")), ArtifactKind::kUnknown);
  EXPECT_EQ(classify(Json::parse("3")), ArtifactKind::kUnknown);
}

TEST(AdviseSession, UnknownArtifactThrowsNamingTheOrigin) {
  advise::Session s;
  try {
    s.add(Json::parse(R"({"foo": 1})"), "mystery.json");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("mystery.json"), std::string::npos);
  }
}

// ---- metrics reload ------------------------------------------------------

/// A registry with all three metric types, histogram samples spread over
/// low, mid, and beyond-the-top-finite-bucket values.
obs::MetricsRegistry sample_registry() {
  obs::MetricsRegistry reg;
  reg.add("homp_chunks_total", "device=\"gpu0\"", 12.0);
  reg.add("homp_chunks_total", "device=\"gpu1\"", 3.0);
  reg.set("homp_weight", "device=\"gpu0\"", 0.625);
  reg.observe("homp_chunk_seconds", "", 5e-8);   // below base: bucket 0
  reg.observe("homp_chunk_seconds", "", 3e-6);
  reg.observe("homp_chunk_seconds", "", 1e-3);
  reg.observe("homp_chunk_seconds", "", 1e9);    // beyond finite: last bucket
  return reg;
}

TEST(AdviseMetrics, ReloadedRegistryReExportsByteIdentically) {
  const obs::MetricsRegistry reg = sample_registry();
  std::ostringstream first;
  reg.write_json(first);

  obs::MetricsRegistry reloaded;
  advise::load_metrics(Json::parse(first.str()), reloaded);
  std::ostringstream second;
  reloaded.write_json(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(AdviseMetrics, ReloadIsBucketExact) {
  const obs::MetricsRegistry reg = sample_registry();
  std::ostringstream os;
  reg.write_json(os);
  obs::MetricsRegistry reloaded;
  advise::load_metrics(Json::parse(os.str()), reloaded);

  const obs::Histogram* a = reg.find_histogram("homp_chunk_seconds");
  const obs::Histogram* b = reloaded.find_histogram("homp_chunk_seconds");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->count(), b->count());
  EXPECT_DOUBLE_EQ(a->sum(), b->sum());
  for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(a->bucket(i), b->bucket(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(reloaded.value("homp_chunks_total", "device=\"gpu0\""),
                   12.0);
  EXPECT_DOUBLE_EQ(reloaded.value("homp_weight", "device=\"gpu0\""), 0.625);
}

TEST(AdviseMetrics, VersionMismatchThrows) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(
      advise::load_metrics(Json::parse(R"({"homp_metrics_version": 99})"),
                           reg),
      ConfigError);
}

TEST(AdviseHistogram, AddBucketAndAddSumRebuildExactly) {
  obs::Histogram h;
  h.observe(5e-8);
  h.observe(3e-6);
  h.observe(3e-6);
  h.observe(1e9);

  obs::Histogram rebuilt;
  for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    rebuilt.add_bucket(i, h.bucket(i));
  }
  rebuilt.add_sum(h.sum());
  EXPECT_EQ(rebuilt.count(), h.count());
  EXPECT_DOUBLE_EQ(rebuilt.sum(), h.sum());
  for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(rebuilt.bucket(i), h.bucket(i)) << "bucket " << i;
  }
  // Out-of-range indices are ignored, not UB.
  rebuilt.add_bucket(-1, 5);
  rebuilt.add_bucket(obs::Histogram::kNumBuckets, 5);
  EXPECT_EQ(rebuilt.count(), h.count());
}

// ---- trace reduction -----------------------------------------------------

TEST(AdviseTrace, ReducesOverlapPerDevice) {
  // One device: compute [0, 4]us, copy-in [0, 1]us (hidden) and
  // copy-out [5, 8]us (exposed). Transfer 4us, hidden 1us.
  const Json doc = Json::parse(R"trace([
    {"ph": "X", "tid": 0, "name": "compute [0, 100)", "ts": 0.0,
     "dur": 4.0, "args": {"device": "gpu0"}},
    {"ph": "X", "tid": 0, "name": "copy-in [0, 100)", "ts": 0.0, "dur": 1.0},
    {"ph": "X", "tid": 0, "name": "copy-out [0, 100)", "ts": 5.0, "dur": 3.0},
    {"ph": "M", "tid": 0, "name": "thread_name"}
  ])trace");
  const advise::TraceEvidence ev = advise::reduce_trace(doc);
  EXPECT_DOUBLE_EQ(ev.makespan_s, 8e-6);
  ASSERT_EQ(ev.devices.size(), 1u);
  const advise::TraceDevice& d = ev.devices[0];
  EXPECT_EQ(d.name, "gpu0");
  EXPECT_DOUBLE_EQ(d.transfer_s, 4e-6);
  EXPECT_DOUBLE_EQ(d.hidden_s, 1e-6);
  EXPECT_DOUBLE_EQ(d.compute_s, 4e-6);
  EXPECT_DOUBLE_EQ(d.finish_s, 8e-6);
}

// ---- attribution arithmetic ----------------------------------------------

advise::AuditDecision assigned(const std::string& device, double model2_s,
                               double actual_s) {
  advise::AuditDecision d;
  d.device = device;
  d.kind = "chunk-assigned";
  d.model2_s = model2_s;
  d.actual_s = actual_s;
  return d;
}

advise::AuditDevice device(const std::string& name, double finish_s,
                           long long chunks) {
  advise::AuditDevice d;
  d.name = name;
  d.finish_time_s = finish_s;
  d.chunks = chunks;
  return d;
}

/// Three devices, makespan 10s: "slow" ran 8x its MODEL_2 prediction
/// (bias 8, finish 10), "fast" ran at half (bias 0.5, finish 2), "ok"
/// was spot-on (finish 4).
advise::RunAudit biased_run() {
  advise::RunAudit run;
  run.algorithm = "MODEL_2";
  run.total_time_s = 10.0;
  run.chunks_issued = 3;
  run.devices = {device("fast", 2.0, 1), device("ok", 4.0, 1),
                 device("slow", 10.0, 1)};
  run.decisions = {assigned("fast", 1.0, 0.5), assigned("ok", 1.0, 1.0),
                   assigned("slow", 1.0, 8.0)};
  return run;
}

TEST(AdviseAttribution, BiasFindingsCarryExactSavings) {
  advise::Session s;
  s.runs.push_back(biased_run());
  const std::vector<advise::Inspection> out = advise::attribute(s, {});

  // Expected, ranked by saving: under_prediction@slow saving
  // 10 - (2+4)/2 = 7 (critical, >= 10% of makespan); blame@slow gap
  // 10 - 4 = 6 (info); over_prediction@fast (10-2)*(1-0.5) = 4 (warning).
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].kind, advise::kKindUnderPrediction);
  EXPECT_EQ(out[0].device, "slow");
  EXPECT_DOUBLE_EQ(out[0].saving_s, 7.0);
  EXPECT_EQ(out[0].severity, advise::kSeverityCritical);

  EXPECT_EQ(out[1].kind, advise::kKindCriticalPathBlame);
  EXPECT_EQ(out[1].device, "slow");
  EXPECT_DOUBLE_EQ(out[1].saving_s, 6.0);
  EXPECT_EQ(out[1].severity, advise::kSeverityInfo);

  EXPECT_EQ(out[2].kind, advise::kKindOverPrediction);
  EXPECT_EQ(out[2].device, "fast");
  EXPECT_DOUBLE_EQ(out[2].saving_s, 4.0);
  EXPECT_EQ(out[2].severity, advise::kSeverityWarning);
}

TEST(AdviseAttribution, BiasThresholdGatesBothDirections) {
  advise::Session s;
  s.runs.push_back(biased_run());
  advise::AttributionOptions opt;
  opt.bias_threshold = 100.0;
  const auto out = advise::attribute(s, opt);
  for (const advise::Inspection& f : out) {
    EXPECT_NE(f.kind, advise::kKindUnderPrediction);
    EXPECT_NE(f.kind, advise::kKindOverPrediction);
  }
}

TEST(AdviseAttribution, CutoffRegretUsesPreWeightAndBiasCorrection) {
  advise::RunAudit run;
  run.total_time_s = 10.0;
  run.has_cutoff = true;
  run.cutoff_selected = {1, 0};
  run.cutoff_pre_weights = {0.7, 0.3};
  run.devices = {device("kept", 10.0, 2), device("dropped", 0.0, 0)};
  run.decisions = {assigned("kept", 5.0, 5.0)};

  // Without bias evidence for the dropped device: regret = makespan x
  // pre-weight = 3, warning.
  {
    advise::Session s;
    s.runs.push_back(run);
    const auto out = advise::attribute(s, {});
    const advise::Inspection* regret = nullptr;
    for (const auto& f : out) {
      if (f.kind == advise::kKindCutoffDropRegret) regret = &f;
    }
    ASSERT_NE(regret, nullptr);
    EXPECT_EQ(regret->device, "dropped");
    EXPECT_DOUBLE_EQ(regret->saving_s, 3.0);
    EXPECT_EQ(regret->severity, advise::kSeverityWarning);
  }

  // A second run where "dropped" participated with bias 2 corrects the
  // regret by 1/bias: 10 x 0.3 x 0.5 = 1.5, demoted to info.
  {
    advise::RunAudit other;
    other.total_time_s = 4.0;
    other.devices = {device("dropped", 4.0, 1)};
    other.decisions = {assigned("dropped", 1.0, 2.0)};

    advise::Session s;
    s.runs.push_back(run);
    s.runs.push_back(other);
    const auto out = advise::attribute(s, {});
    const advise::Inspection* regret = nullptr;
    for (const auto& f : out) {
      if (f.kind == advise::kKindCutoffDropRegret) regret = &f;
    }
    ASSERT_NE(regret, nullptr);
    EXPECT_DOUBLE_EQ(regret->saving_s, 1.5);
    EXPECT_EQ(regret->severity, advise::kSeverityInfo);
  }
}

TEST(AdviseAttribution, SpeculationWasteIsLostCopiesTimesMeanChunk) {
  advise::RunAudit run = biased_run();
  run.devices[0].spec_copies_run = 3;
  run.devices[0].spec_copies_won = 1;
  advise::Session s;
  s.runs.push_back(run);
  const auto out = advise::attribute(s, {});
  const advise::Inspection* waste = nullptr;
  for (const auto& f : out) {
    if (f.kind == advise::kKindSpeculationWaste) waste = &f;
  }
  ASSERT_NE(waste, nullptr);
  EXPECT_EQ(waste->device, "fast");
  // 2 lost copies x mean actual chunk on "fast" (0.5s).
  EXPECT_DOUBLE_EQ(waste->saving_s, 1.0);
}

TEST(AdviseAttribution, ActualsCoverageFiresPastTheMissingRatio) {
  advise::RunAudit run = biased_run();
  // 3 of 6 assigned have actuals: exactly at the 50% default -> silent.
  run.decisions.push_back(assigned("slow", 1.0, -1.0));
  run.decisions.push_back(assigned("slow", 1.0, -1.0));
  run.decisions.push_back(assigned("slow", 1.0, -1.0));
  {
    advise::Session s;
    s.runs.push_back(run);
    for (const auto& f : advise::attribute(s, {})) {
      EXPECT_NE(f.kind, advise::kKindActualsCoverage);
    }
  }
  // One more missing tips it over.
  run.decisions.push_back(assigned("slow", 1.0, -1.0));
  {
    advise::Session s;
    s.runs.push_back(run);
    const auto out = advise::attribute(s, {});
    bool found = false;
    for (const auto& f : out) {
      found = found || f.kind == advise::kKindActualsCoverage;
    }
    EXPECT_TRUE(found);
  }
}

TEST(AdviseAttribution, OverlapDeficitFromTraceEvidence) {
  advise::TraceEvidence tr;
  tr.makespan_s = 10.0;
  advise::TraceDevice d;
  d.name = "gpu0";
  d.transfer_s = 4.0;
  d.hidden_s = 1.0;
  tr.devices.push_back(d);
  advise::Session s;
  s.traces.push_back(tr);
  const auto out = advise::attribute(s, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, advise::kKindOverlapDeficit);
  EXPECT_EQ(out[0].device, "gpu0");
  EXPECT_DOUBLE_EQ(out[0].saving_s, 3.0);  // 4 - 1 exposed
  EXPECT_EQ(out[0].severity, advise::kSeverityWarning);
}

TEST(AdviseAttribution, ServeShedPressureAndBreakerFlap) {
  advise::ServeAudit run;
  run.makespan_s = 10.0;
  run.shed_transitions = 2;
  advise::ServeTenantRow t;
  t.name = "poison";
  t.failed = 3;
  run.tenants.push_back(t);
  advise::ServeAuditEvent up, down, open1, open2;
  up.kind = "shed-level";
  up.time_s = 2.0;
  up.detail = "0 -> 1";
  down.kind = "shed-level";
  down.time_s = 5.0;
  down.detail = "1 -> 0";
  open1.kind = "breaker-open";
  open1.tenant = "poison";
  open2 = open1;
  run.events = {up, down, open1, open2};

  advise::Session s;
  s.serve_runs.push_back(run);
  const auto out = advise::attribute(s, {});
  ASSERT_EQ(out.size(), 2u);
  // Shed pressure integrates [2, 5) = 3s at level >= 1.
  EXPECT_EQ(out[0].kind, advise::kKindShedPressure);
  EXPECT_DOUBLE_EQ(out[0].saving_s, 3.0);
  EXPECT_EQ(out[0].severity, advise::kSeverityWarning);  // >= 25% of 10s
  // Two opens on one tenant flap the breaker.
  EXPECT_EQ(out[1].kind, advise::kKindBreakerFlap);
  EXPECT_EQ(out[1].tenant, "poison");
  EXPECT_EQ(out[1].severity, advise::kSeverityWarning);
}

TEST(AdviseAttribution, CrossRunMergeMarksPersistenceAndMeansSavings) {
  advise::Session s;
  s.runs.push_back(biased_run());
  s.runs.push_back(biased_run());
  const auto out = advise::attribute(s, {});
  ASSERT_FALSE(out.empty());
  const advise::Inspection& top = out[0];
  EXPECT_EQ(top.kind, advise::kKindUnderPrediction);
  EXPECT_EQ(top.runs_present, 2);
  EXPECT_EQ(top.runs_total, 2);
  EXPECT_TRUE(top.persistent);
  EXPECT_DOUBLE_EQ(top.saving_s, 7.0);  // mean of two identical savings
  EXPECT_NE(top.evidence.find("persistent across 2 runs"), std::string::npos);
}

TEST(AdviseAttribution, OneOffFindingIsNotPersistent) {
  advise::RunAudit clean = biased_run();
  clean.decisions = {assigned("fast", 1.0, 1.0), assigned("ok", 1.0, 1.0),
                     assigned("slow", 1.0, 1.0)};
  for (auto& d : clean.devices) d.finish_time_s = 4.0;
  advise::Session s;
  s.runs.push_back(biased_run());
  s.runs.push_back(clean);
  const auto out = advise::attribute(s, {});
  const advise::Inspection* under = nullptr;
  for (const auto& f : out) {
    if (f.kind == advise::kKindUnderPrediction) under = &f;
  }
  ASSERT_NE(under, nullptr);
  EXPECT_EQ(under->runs_present, 1);
  EXPECT_EQ(under->runs_total, 2);
  EXPECT_FALSE(under->persistent);
  EXPECT_DOUBLE_EQ(under->saving_s, 7.0);  // mean over firing runs only
  EXPECT_NE(under->evidence.find("seen in 1 of 2 runs"), std::string::npos);
}

// ---- rendering and diff --------------------------------------------------

TEST(AdviseReport, JsonRenderingIsDeterministic) {
  advise::Session s;
  s.runs.push_back(biased_run());
  const auto findings = advise::attribute(s, {});
  std::string first;
  for (int i = 0; i < 10; ++i) {
    std::ostringstream os;
    advise::write_report_json(findings, os);
    if (i == 0) {
      first = os.str();
    } else {
      EXPECT_EQ(os.str(), first);
    }
  }
  // And the rendered document is valid JSON with the rostered keys.
  const Json doc = Json::parse(first);
  EXPECT_DOUBLE_EQ(doc.number_or(advise::kReportVersionKey, 0.0), 1.0);
  ASSERT_NE(doc.find(advise::kFindingsKey), nullptr);
  EXPECT_EQ(doc.find(advise::kFindingsKey)->array().size(), 3u);
}

TEST(AdviseDiff, DirectionAwareRegressionsAndChanges) {
  const Json before = Json::parse(
      R"({"bench": "engine", "results": [)"
      R"({"name": "s1", "events_per_sec": 100.0, "total_time_s": 2.0}]})");
  const Json worse = Json::parse(
      R"({"bench": "engine", "results": [)"
      R"({"name": "s1", "events_per_sec": 50.0, "total_time_s": 4.0}]})");
  const advise::DiffResult r = advise::diff_artifacts(before, worse, 0.15);
  ASSERT_EQ(r.regressions.size(), 2u);
  EXPECT_EQ(r.regressions[0].key, "results/s1/events_per_sec");
  EXPECT_DOUBLE_EQ(r.regressions[0].rel, -0.5);
  EXPECT_EQ(r.regressions[1].key, "results/s1/total_time_s");

  // The same moves in the good direction are changes, not regressions.
  const advise::DiffResult g = advise::diff_artifacts(worse, before, 0.15);
  EXPECT_TRUE(g.regressions.empty());
  EXPECT_EQ(g.changes.size(), 2u);
}

TEST(AdviseDiff, ToleranceAndIdentity) {
  const Json a = Json::parse(
      R"({"bench": "engine", "results": [)"
      R"({"name": "s1", "events_per_sec": 100.0}]})");
  const Json b = Json::parse(
      R"({"bench": "engine", "results": [)"
      R"({"name": "s1", "events_per_sec": 90.0}]})");
  EXPECT_TRUE(advise::diff_artifacts(a, a, 0.0).identical());
  EXPECT_TRUE(advise::diff_artifacts(a, b, 0.15).identical());
  EXPECT_EQ(advise::diff_artifacts(a, b, 0.05).regressions.size(), 1u);
}

TEST(AdviseDiff, LabelSetsDisambiguateSharedMetricNames) {
  // Metrics exports repeat one metric name across many label sets; the
  // flatten key must carry the labels or same-named rows collide and a
  // self-diff comes back dirty (cross-device value "mismatches").
  const Json a = Json::parse(
      R"({"homp_metrics_version": 1, "metrics": [)"
      R"({"name": "homp_device_finish_seconds", "labels": "device=\"d0\"", "type": "gauge", "value": 1.0},)"
      R"({"name": "homp_device_finish_seconds", "labels": "device=\"d1\"", "type": "gauge", "value": 8.0}]})");
  EXPECT_TRUE(advise::diff_artifacts(a, a, 0.0).identical());

  const Json b = Json::parse(
      R"({"homp_metrics_version": 1, "metrics": [)"
      R"({"name": "homp_device_finish_seconds", "labels": "device=\"d0\"", "type": "gauge", "value": 1.0},)"
      R"({"name": "homp_device_finish_seconds", "labels": "device=\"d1\"", "type": "gauge", "value": 16.0}]})");
  const advise::DiffResult r = advise::diff_artifacts(a, b, 0.15);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].key,
            "metrics/homp_device_finish_seconds{device=\"d1\"}/value");
  EXPECT_DOUBLE_EQ(r.regressions[0].before, 8.0);
  EXPECT_DOUBLE_EQ(r.regressions[0].after, 16.0);
}

TEST(AdviseDiff, MixedKindsThrow) {
  const Json bench = Json::parse(R"({"bench": "engine"})");
  const Json metrics = Json::parse(R"({"homp_metrics_version": 1})");
  EXPECT_THROW(advise::diff_artifacts(bench, metrics, 0.15), ConfigError);
}

}  // namespace
