// Fixture generator for the homp-advise CLI contract suite
// (tests/advise/run_advise_tests.py).
//
// Usage: make_advise_fixtures <outdir>
//
// Writes a Fig. 6-style session into <outdir>:
//   run1.audit.json / run1.metrics.json / run1.trace.json
//   run2.audit.json / run2.metrics.json / run2.trace.json
//     two identical seeded offloads, MODEL_2-distributed, where one
//     device carries a scripted degrade fault the model knows nothing
//     about — the canonical "a device ran far slower than predicted"
//     scenario whose under-prediction the advisor must rank first.
//     The suite asserts both runs' exports are byte-identical and that
//     cross-run merging marks the finding persistent.
//   serve.audit.json
//     a small two-tenant serving run's audit (serve/report.h
//     write_audit_json) — exercises the serve-artifact ingestion path.
//
// Ground truth goes to stdout as key=value lines, replicating the
// attribution formulas (advise/attribution.cpp) on the runtime's own
// OffloadResult, so the suite can check the CLI's figures independently
// of the export/reload path.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "kernels/axpy.h"
#include "machine/profiles.h"
#include "runtime/audit_export.h"
#include "runtime/metrics_export.h"
#include "runtime/runtime.h"
#include "runtime/trace.h"
#include "serve/server.h"

namespace {

using namespace homp;

constexpr int kDegradedDevice = 2;
constexpr double kDegradeFactor = 64.0;

/// A static MODEL_2 split with a sustained degrade on one device from
/// its first compute onwards. The split has no way to know, so the
/// device runs far slower than its MODEL_2 prediction and finishes far
/// behind the others — textbook under-prediction with a large saving.
/// (The factor is large because axpy chunks are transfer-dominated:
/// only the compute fraction of the chunk degrades, and the bias must
/// clear the advisor's 1.5x threshold with margin.)
/// The watchdog stays off: speculation would steal the degraded chunks
/// (their actual_s would never backfill) and the bias evidence with it.
rt::OffloadResult degraded_run() {
  rt::Runtime runtime{mach::testing_machine(3)};
  kern::AxpyCase c(200'000, /*materialize=*/false);
  rt::OffloadOptions o;
  o.device_ids = {1, 2, 3};
  o.sched.kind = sched::AlgorithmKind::kModel2Auto;
  o.execute_bodies = false;
  o.collect_trace = true;  // implies collect_audit
  sim::ScriptedFault f;
  f.device_id = kDegradedDevice;
  f.kind = sim::FaultKind::kDegrade;
  f.op = 0;
  f.factor = kDegradeFactor;
  o.fault.scripted.push_back(f);
  o.watchdog.enabled = false;
  auto maps = c.maps();
  auto kernel = c.kernel();
  return runtime.offload(kernel, maps, o);
}

void write_run(const rt::OffloadResult& res, const std::string& stem) {
  rt::write_audit_file(res, stem + ".audit.json");
  rt::write_metrics_file(res, stem + ".metrics.json");
  rt::write_chrome_trace_file(res, stem + ".trace.json");
}

/// A small two-tenant serving run whose audit export feeds the advisor's
/// serve ingestion path (no overload: a clean run may yield zero serve
/// findings, which is itself part of the contract under test).
void write_serve_audit(const std::string& path) {
  serve::TenantSpec gold, bronze;
  gold.name = "gold";
  gold.priority = serve::PriorityClass::kGold;
  bronze.name = "bronze";
  bronze.priority = serve::PriorityClass::kBronze;

  serve::ServeOptions opts;
  serve::OffloadServer server(mach::builtin("full"), {gold, bronze}, opts);
  serve::JobSpec j;
  j.kernel = "axpy";
  j.n = 1 << 14;
  j.devices = 2;
  server.submit("gold", j);
  server.submit("bronze", j);
  server.run();

  std::ofstream out(path);
  server.report().write_audit_json(out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <outdir>\n", argv[0]);
    return 2;
  }
  const std::string outdir = argv[1];

  const auto run1 = degraded_run();
  const auto run2 = degraded_run();
  write_run(run1, outdir + "/run1");
  write_run(run2, outdir + "/run2");
  write_serve_audit(outdir + "/serve.audit.json");

  // Ground truth, replicating advise/attribution.cpp's arithmetic on the
  // in-memory result. Device rows match decisions by id; the advisor
  // matches by name after the audit reload — same pairing.
  const rt::DeviceStats* degraded = nullptr;
  for (const auto& d : run1.devices) {
    if (d.device_id == kDegradedDevice) degraded = &d;
  }
  if (degraded == nullptr || degraded->chunks == 0) {
    std::fprintf(stderr, "degraded device ran no chunks — fixture broken\n");
    return 1;
  }

  double actual = 0.0, predicted = 0.0;
  long long samples = 0;
  for (const auto& dec : run1.decisions) {
    if (dec.kind != rt::DecisionKind::kChunkAssigned ||
        dec.device_id != kDegradedDevice) {
      continue;
    }
    if (dec.actual_s <= 0.0 || dec.predicted_model2_s <= 0.0) continue;
    actual += dec.actual_s;
    predicted += dec.predicted_model2_s;
    ++samples;
  }
  if (samples == 0 || predicted <= 0.0) {
    std::fprintf(stderr, "no bias evidence for the degraded device\n");
    return 1;
  }
  const double bias = actual / predicted;

  // Mean finish of the other participating devices, in device order —
  // the under_prediction saving baseline.
  double others = 0.0;
  int n_others = 0;
  for (const auto& d : run1.devices) {
    if (d.chunks == 0 || d.device_id == kDegradedDevice) continue;
    others += d.finish_time;
    ++n_others;
  }
  const double mean_others = n_others > 0 ? others / n_others : 0.0;
  const double saving = std::max(0.0, degraded->finish_time - mean_others);

  std::printf("degraded_device=%s\n", degraded->device_name.c_str());
  std::printf("degraded_bias=%.17g\n", bias);
  std::printf("degraded_bias_samples=%lld\n", samples);
  std::printf("degraded_finish_s=%.17g\n", degraded->finish_time);
  std::printf("mean_other_finish_s=%.17g\n", mean_others);
  std::printf("expected_saving_s=%.17g\n", saving);
  std::printf("run_total_time_s=%.17g\n", run1.total_time);
  std::printf("run_chunks=%zu\n", run1.chunks_issued);
  std::printf("run_decisions=%zu\n", run1.decisions.size());
  std::printf("run_devices=%zu\n", run1.devices.size());
  return 0;
}
