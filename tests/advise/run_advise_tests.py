#!/usr/bin/env python3
"""Contract suite for the homp-advise CLI and the homp-trace advise
subcommand, run under ctest.

Contract under test (docs/OBSERVABILITY.md "The offline advisor"):
  * on a Fig. 6-style session with a scripted degrade fault, `report`
    ranks the degraded device's under-prediction as the top finding with
    a nonzero estimated saving that matches the attribution formula
    replicated on the runtime's own telemetry;
  * the report is byte-identical across repeated invocations and across
    the two identical seeded runs' artifacts (determinism contract);
  * cross-run merging marks a finding seen in every run persistent;
  * `diff` of two identical sessions exits 0; direction-aware regressions
    (throughput down, latency up) exit 1; improvements stay exit 0;
  * usage/degenerate input exits 2 with a one-line diagnostic, never a
    traceback, never a silent empty "all clear" report;
  * `homp-trace advise` mines the same under-prediction from the trace
    alone, with its own determinism and exit-code contract.

Needs the built binaries: pass --fixtures-bin (make_advise_fixtures) and
--advise-bin (homp-advise), as the ctest entry does.
"""

import argparse
import filecmp
import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
TRACE_CLI = os.path.join(REPO, "tools", "trace", "homp_trace.py")

FIXTURES_BIN = None  # set by main()
ADVISE_BIN = None  # set by main()
WORK = None  # tempdir holding generated fixtures
TRUTH = {}  # key=value ground truth printed by the generator


def advise(*args):
    return subprocess.run(
        [ADVISE_BIN, *args], capture_output=True, text=True)


def trace_cli(*args):
    return subprocess.run(
        [sys.executable, TRACE_CLI, *args], capture_output=True, text=True)


def out_path(name):
    return os.path.join(WORK.name, name)


def write_doc(name, doc):
    path = out_path(name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return path


SESSION = ["run1.audit.json", "run1.metrics.json", "run1.trace.json",
           "run2.audit.json", "run2.metrics.json", "run2.trace.json",
           "serve.audit.json"]


def session_paths():
    return [out_path(n) for n in SESSION]


def setUpModule():
    global WORK, TRUTH
    WORK = tempfile.TemporaryDirectory(prefix="homp_advise_test_")
    r = subprocess.run([FIXTURES_BIN, WORK.name],
                       capture_output=True, text=True)
    if r.returncode != 0:
        raise RuntimeError("make_advise_fixtures failed: %s" % r.stderr)
    for line in r.stdout.splitlines():
        key, _, val = line.partition("=")
        try:
            TRUTH[key] = float(val)
        except ValueError:
            TRUTH[key] = val


def tearDownModule():
    WORK.cleanup()


class ExportedJson(unittest.TestCase):
    def test_every_exported_file_round_trips_json_loads(self):
        for name in SESSION:
            with self.subTest(file=name):
                with open(out_path(name), encoding="utf-8") as f:
                    doc = json.load(f)
                self.assertTrue(doc)

    def test_identical_seeded_runs_export_byte_identical_files(self):
        for kind in ("audit", "metrics", "trace"):
            with self.subTest(kind=kind):
                a = out_path("run1.%s.json" % kind)
                b = out_path("run2.%s.json" % kind)
                self.assertTrue(filecmp.cmp(a, b, shallow=False),
                                "%s export is not deterministic" % kind)


class Report(unittest.TestCase):
    """The acceptance gate: attribution on the degrade-fault session."""

    def report_json(self, *extra):
        r = advise("report", *session_paths(), "--json", *extra)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        return json.loads(r.stdout)

    def test_degraded_under_prediction_is_the_top_finding(self):
        doc = self.report_json()
        self.assertEqual(doc["homp_advise_version"], 1)
        self.assertTrue(doc["findings"])
        top = doc["findings"][0]
        self.assertEqual(top["kind"], "under_prediction")
        self.assertEqual(top["device"], TRUTH["degraded_device"])
        self.assertGreater(top["saving_s"], 0.0)
        expected = TRUTH["expected_saving_s"]
        self.assertLessEqual(abs(top["saving_s"] - expected),
                             1e-9 * max(expected, 1e-12),
                             "saving %.17g vs attribution-formula ground "
                             "truth %.17g" % (top["saving_s"], expected))
        # An 8x degrade on a static split gates well over 10% of the
        # makespan: the finding must be critical.
        self.assertGreaterEqual(expected, 0.10 * TRUTH["run_total_time_s"])
        self.assertEqual(top["severity"], "critical")

    def test_cross_run_merge_marks_persistence(self):
        top = self.report_json()["findings"][0]
        self.assertEqual(top["runs_present"], 2)
        self.assertEqual(top["runs_total"], 2)
        self.assertTrue(top["persistent"])
        self.assertIn("persistent across 2 runs", top["evidence"])

    def test_evidence_carries_bias_and_metrics_corroboration(self):
        top = self.report_json()["findings"][0]
        self.assertIn("slower than MODEL_2 predicted", top["evidence"])
        # The session's metrics files carry model-accuracy series for the
        # device; the finding must cite them.
        self.assertIn("session metrics", top["evidence"])
        self.assertTrue(top["knob"])

    def test_report_is_byte_identical_across_ten_invocations(self):
        for flags in ((), ("--json",)):
            with self.subTest(flags=flags):
                outs = set()
                for _ in range(10):
                    r = advise("report", *session_paths(), *flags)
                    self.assertEqual(r.returncode, 1, r.stderr)
                    outs.add(r.stdout)
                self.assertEqual(len(outs), 1,
                                 "report output is not deterministic")

    def test_text_report_shape(self):
        r = advise("report", *session_paths())
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("ranked by estimated virtual-time saving", r.stdout)
        self.assertIn("1. [critical] under_prediction @ %s"
                      % TRUTH["degraded_device"], r.stdout)
        self.assertIn("evidence:", r.stdout)
        self.assertIn("knob:", r.stdout)

    def test_top_caps_the_finding_list(self):
        doc = self.report_json("--top", "1")
        self.assertEqual(len(doc["findings"]), 1)
        r = advise("report", *session_paths(), "--top", "1")
        self.assertEqual(r.returncode, 1)
        self.assertIn("showing top 1", r.stdout)

    def test_bias_threshold_gates_the_prediction_findings(self):
        doc = self.report_json("--bias-threshold", "1000")
        kinds = {f["kind"] for f in doc["findings"]}
        self.assertNotIn("under_prediction", kinds)
        self.assertNotIn("over_prediction", kinds)

    def test_single_run_session_still_ranks_the_degraded_device(self):
        r = advise("report", out_path("run1.audit.json"), "--json")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        top = json.loads(r.stdout)["findings"][0]
        self.assertEqual(top["kind"], "under_prediction")
        self.assertEqual(top["device"], TRUTH["degraded_device"])
        # Single-eligible-run findings carry no persistence note.
        self.assertNotIn(" runs", top["evidence"])

    def test_clean_serve_audit_alone_reports_no_findings(self):
        r = advise("report", out_path("serve.audit.json"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("no findings", r.stdout)


class Diff(unittest.TestCase):
    def test_identical_artifacts_diff_clean(self):
        for kind in ("audit", "metrics"):
            with self.subTest(kind=kind):
                r = advise("diff", out_path("run1.%s.json" % kind),
                           out_path("run2.%s.json" % kind))
                self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
                self.assertIn("identical within tolerance", r.stdout)

    def test_json_verdict_shape(self):
        r = advise("diff", out_path("run1.audit.json"),
                   out_path("run2.audit.json"), "--json")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        doc = json.loads(r.stdout)
        self.assertEqual(doc["homp_advise_diff_version"], 1)
        self.assertEqual(doc["regressions"], [])
        self.assertEqual(doc["changes"], [])

    BASE = {"bench": "engine", "results": [
        {"name": "s1", "events_per_sec": 100.0, "p99_launch_us": 5.0},
        {"name": "s2", "events_per_sec": 400.0, "p99_launch_us": 2.0}]}

    def bench(self, name, **overrides):
        doc = json.loads(json.dumps(self.BASE))
        doc["results"][0].update(overrides)
        return write_doc(name, doc)

    def test_throughput_drop_past_tolerance_is_a_regression(self):
        a = self.bench("bench_base.json")
        b = self.bench("bench_slow.json", events_per_sec=50.0)
        r = advise("diff", a, b, "--tolerance", "0.15")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("regressions:", r.stdout)
        self.assertIn("results/s1/events_per_sec", r.stdout)

    def test_throughput_gain_is_a_change_not_a_regression(self):
        a = self.bench("bench_base2.json")
        b = self.bench("bench_fast.json", events_per_sec=200.0)
        r = advise("diff", a, b, "--tolerance", "0.15")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("changes:", r.stdout)

    def test_latency_rise_past_tolerance_is_a_regression(self):
        a = self.bench("bench_base3.json")
        b = self.bench("bench_lat.json", p99_launch_us=50.0)
        r = advise("diff", a, b, "--tolerance", "0.15")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("results/s1/p99_launch_us", r.stdout)

    def test_tolerance_swallows_small_moves(self):
        a = self.bench("bench_base4.json")
        b = self.bench("bench_near.json", events_per_sec=90.0)
        r = advise("diff", a, b, "--tolerance", "0.15")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_structural_drift_is_reported_but_not_a_regression(self):
        a = self.bench("bench_base5.json")
        doc = json.loads(json.dumps(self.BASE))
        del doc["results"][1]
        b = write_doc("bench_missing.json", doc)
        r = advise("diff", a, b, "--tolerance", "0.15")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("only in A", r.stdout)


class ErrorContract(unittest.TestCase):
    def assert_clean_exit_2(self, r, needle=""):
        """Exit 2 with a one-line diagnostic — never a traceback, never a
        quiet success."""
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertNotIn("Traceback", r.stderr)
        self.assertIn("homp-advise:", r.stderr)
        if needle:
            self.assertIn(needle, r.stderr)

    def test_missing_file(self):
        self.assert_clean_exit_2(
            advise("report", out_path("no_such_file.json")))

    def test_malformed_json(self):
        path = out_path("bad.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        self.assert_clean_exit_2(advise("report", path))

    def test_unknown_artifact_kind(self):
        path = write_doc("mystery.json", {"foo": 1})
        self.assert_clean_exit_2(advise("report", path), "mystery.json")

    def test_metrics_only_session(self):
        self.assert_clean_exit_2(
            advise("report", out_path("run1.metrics.json")),
            "no audits or traces")

    def test_empty_audit(self):
        path = write_doc("empty_audit.json", {"homp_audit_version": 1})
        self.assert_clean_exit_2(advise("report", path), "actual")

    def test_audit_without_backfilled_actuals(self):
        path = write_doc("noactuals.json", {
            "homp_audit_version": 1, "algorithm": "MODEL_2",
            "total_time_s": 1.0, "chunks_issued": 1,
            "devices": [{"name": "gpu0", "id": 1, "slot": 0,
                         "finish_time_s": 1.0, "chunks": 1}],
            "decisions": [{"time_s": 0.0, "slot": 0, "device": "gpu0",
                           "kind": "chunk-assigned", "begin": 0, "end": 10,
                           "model2_s": 0.5, "actual_s": -1.0}]})
        self.assert_clean_exit_2(advise("report", path), "actual_s")

    def test_report_without_files(self):
        self.assert_clean_exit_2(advise("report"), "at least one")

    def test_diff_wants_exactly_two_files(self):
        self.assert_clean_exit_2(
            advise("diff", out_path("run1.audit.json")), "exactly two")

    def test_diff_rejects_mixed_kinds(self):
        self.assert_clean_exit_2(
            advise("diff", out_path("run1.audit.json"),
                   out_path("run1.metrics.json")), "different artifact kinds")

    def test_unknown_mode_and_flags(self):
        self.assert_clean_exit_2(advise("frobnicate"), "unknown mode")
        self.assert_clean_exit_2(
            advise("report", out_path("run1.audit.json"), "--wat"),
            "unknown argument")
        self.assert_clean_exit_2(
            advise("report", out_path("run1.audit.json"),
                   "--bias-threshold", "0.5"))


class TraceAdvise(unittest.TestCase):
    """homp-trace advise: the trace-only sibling mines the same
    under-prediction from decision instants alone."""

    def test_finds_the_degraded_device_from_the_trace_alone(self):
        r = trace_cli("advise", out_path("run1.trace.json"), "--json")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        doc = json.loads(r.stdout)
        self.assertEqual(doc["homp_trace_advise_version"], 1)
        self.assertTrue(doc["findings"])
        top = doc["findings"][0]
        self.assertEqual(top["kind"], "under_prediction")
        self.assertEqual(top["device"], TRUTH["degraded_device"])
        self.assertGreater(top["saving_us"], 0.0)

    def test_text_mode_and_determinism(self):
        outs = set()
        for _ in range(3):
            r = trace_cli("advise", out_path("run1.trace.json"))
            self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
            outs.add(r.stdout)
        self.assertEqual(len(outs), 1)
        self.assertIn("under_prediction", next(iter(outs)))

    def test_high_threshold_silences_prediction_findings(self):
        r = trace_cli("advise", out_path("run1.trace.json"),
                      "--bias-threshold", "1e9", "--json")
        doc = json.loads(r.stdout)
        kinds = {f["kind"] for f in doc["findings"]}
        self.assertNotIn("under_prediction", kinds)

    def test_metrics_file_is_rejected(self):
        r = trace_cli("advise", out_path("run1.metrics.json"))
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertNotIn("Traceback", r.stderr)


def main():
    global FIXTURES_BIN, ADVISE_BIN
    ap = argparse.ArgumentParser()
    ap.add_argument("--fixtures-bin", required=True,
                    help="path to the built make_advise_fixtures binary")
    ap.add_argument("--advise-bin", required=True,
                    help="path to the built homp-advise binary")
    args, rest = ap.parse_known_args()
    FIXTURES_BIN = args.fixtures_bin
    ADVISE_BIN = args.advise_bin
    unittest.main(argv=[sys.argv[0]] + rest)


if __name__ == "__main__":
    main()
