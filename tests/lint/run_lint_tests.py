#!/usr/bin/env python3
"""Self-test suite for tools/lint/homp_lint.py, run under ctest.

Contract under test:
  * each bad_* fixture makes the linter exit nonzero with a file:line
    diagnostic carrying the expected check ID;
  * good_* fixtures and suppressed_* fixtures lint clean;
  * --json output is stable machine-readable JSON;
  * config errors (cyclic layer graph, unknown check, missing path)
    exit 2, never 0 or 1.

Fixtures are linted with --strict so the built-in tests/-path exemption
for HL001 does not mask them.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINTER = os.path.join(REPO, "tools", "lint", "homp_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(*args):
    return subprocess.run(
        [sys.executable, LINTER, *args],
        capture_output=True, text=True, cwd=REPO)


def fx(*parts):
    return os.path.join(FIXTURES, *parts)


BAD_FIXTURES = {
    fx("bad_hl001.cpp"): ("HL001", 6),
    fx("bad_hl002.cpp"): ("HL002", 6),
    fx("layering", "src", "sim", "bad_hl003.cpp"): ("HL003", 2),
    fx("bad_hl004.h"): ("HL004", 2),
    fx("bad_hl005.cpp"): ("HL005", 2),
    fx("obs", "bad_hl005_names.h"): ("HL005", 2),
    fx("advise", "bad_hl005_keys.h"): ("HL005", 2),
    fx("serve", "src", "serve", "bad_hl006.cpp"): ("HL006", 4),
    fx("bad_hl007_report.cpp"): ("HL007", 2),
    fx("bad_hl008.cpp"): ("HL008", 2),
}

CLEAN_FIXTURES = [
    fx("good_hl001.cpp"),
    fx("good_hl002.cpp"),
    fx("layering", "src", "runtime", "good_hl003.cpp"),
    fx("good_hl004.h"),
    fx("good_hl005.cpp"),
    fx("obs", "good_hl005_names.h"),
    fx("advise", "good_hl005_keys.h"),
    fx("suppressed_hl001.cpp"),
    fx("suppressed_hl002.cpp"),
    fx("layering", "src", "sim", "suppressed_hl003.cpp"),
    fx("suppressed_hl004.h"),
    fx("suppressed_hl005.cpp"),
    fx("obs", "suppressed_hl005_names.h"),
    fx("advise", "suppressed_hl005_keys.h"),
    fx("serve", "src", "serve", "good_hl006.cpp"),
    fx("serve", "src", "serve", "suppressed_hl006.cpp"),
    fx("good_hl007_report.cpp"),
    fx("suppressed_hl007_report.cpp"),
    fx("good_hl008.cpp"),
    fx("suppressed_hl008.cpp"),
]


class BadFixtures(unittest.TestCase):
    def test_each_bad_fixture_fails_with_its_id(self):
        for path, (check_id, expected_count) in BAD_FIXTURES.items():
            with self.subTest(fixture=os.path.basename(path)):
                r = run_lint("--strict", path)
                self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
                lines = [l for l in r.stdout.splitlines() if check_id in l]
                self.assertEqual(len(lines), expected_count, r.stdout)
                # every diagnostic is file:line-anchored
                for line in lines:
                    prefix = line.split(" ", 1)[0]
                    f, ln, _ = prefix.rsplit(":", 2)
                    self.assertTrue(f.endswith(os.path.basename(path)), line)
                    self.assertTrue(int(ln) >= 1, line)
                # only the expected check fires on its fixture
                other = [l for l in r.stdout.splitlines()
                         if "HL0" in l and check_id not in l]
                self.assertEqual(other, [], r.stdout)


class CleanFixtures(unittest.TestCase):
    def test_good_and_suppressed_fixtures_pass(self):
        for path in CLEAN_FIXTURES:
            with self.subTest(fixture=os.path.basename(path)):
                r = run_lint("--strict", path)
                self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
                self.assertEqual(r.stdout.strip(), "")


class JsonContract(unittest.TestCase):
    def test_json_shape_on_bad_fixture(self):
        r = run_lint("--strict", "--json", fx("bad_hl001.cpp"))
        self.assertEqual(r.returncode, 1)
        doc = json.loads(r.stdout)
        self.assertEqual(doc["version"], 1)
        self.assertEqual(doc["files_scanned"], 1)
        self.assertEqual(doc["counts"], {"HL001": 6})
        for d in doc["diagnostics"]:
            self.assertEqual(sorted(d),
                             ["check", "file", "hint", "id", "line", "message"])
            self.assertEqual(d["id"], "HL001")
            self.assertEqual(d["check"], "deferred-ref-capture")
            self.assertIsInstance(d["line"], int)
            self.assertTrue(d["hint"])

    def test_json_clean_run(self):
        r = run_lint("--json", fx("good_hl001.cpp"))
        self.assertEqual(r.returncode, 0)
        doc = json.loads(r.stdout)
        self.assertEqual(doc["diagnostics"], [])
        self.assertEqual(doc["counts"], {})


class ErrorContract(unittest.TestCase):
    def test_cyclic_layer_graph_is_a_config_error(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".toml", delete=False) as f:
            f.write('[layers]\na = ["b"]\nb = ["a"]\n')
            path = f.name
        try:
            r = run_lint("--config", path, fx("good_hl001.cpp"))
            self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
            self.assertIn("cycle", r.stderr)
        finally:
            os.unlink(path)

    def test_undeclared_dependency_is_a_config_error(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".toml", delete=False) as f:
            f.write('[layers]\na = ["ghost"]\n')
            path = f.name
        try:
            r = run_lint("--config", path, fx("good_hl001.cpp"))
            self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
            self.assertIn("undeclared", r.stderr)
        finally:
            os.unlink(path)

    def test_unknown_check_id(self):
        r = run_lint("--checks", "HL999", fx("good_hl001.cpp"))
        self.assertEqual(r.returncode, 2)
        self.assertIn("HL999", r.stderr)

    def test_missing_path(self):
        r = run_lint(os.path.join(FIXTURES, "does_not_exist.cpp"))
        self.assertEqual(r.returncode, 2)


class ParallelScan(unittest.TestCase):
    def test_pool_and_serial_agree_byte_for_byte(self):
        """--jobs N must not change the report: same diagnostics, same
        order, same exit code as the serial scan."""
        serial = run_lint("--strict", "--jobs", "1", FIXTURES)
        pooled = run_lint("--strict", "--jobs", "4", FIXTURES)
        self.assertEqual(serial.returncode, 1)
        self.assertEqual(pooled.returncode, serial.returncode)
        self.assertEqual(pooled.stdout, serial.stdout)


class ChangedOnly(unittest.TestCase):
    def test_scans_only_git_changed_files(self):
        """--changed-only lints what git reports changed (plus untracked)
        and skips committed-clean files even when they carry findings."""
        bad = "#include <ctime>\nlong f() { return std::time(nullptr); }\n"
        with tempfile.TemporaryDirectory() as d:
            def git(*a):
                subprocess.run(
                    ["git", "-c", "user.email=l@l", "-c", "user.name=l", *a],
                    cwd=d, check=True, capture_output=True)
            git("init", "-q")
            with open(os.path.join(d, "committed.cpp"), "w") as f:
                f.write(bad)
            git("add", "committed.cpp")
            git("commit", "-q", "-m", "seed")
            with open(os.path.join(d, "fresh.cpp"), "w") as f:
                f.write(bad)
            r = subprocess.run(
                [sys.executable, LINTER, "--strict", "--changed-only", "."],
                capture_output=True, text=True, cwd=d)
            self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
            self.assertIn("fresh.cpp", r.stdout)
            self.assertNotIn("committed.cpp", r.stdout)
            self.assertIn("HL005", r.stderr)  # the disabled-pass notice


class TreeIsClean(unittest.TestCase):
    def test_src_and_tests_lint_clean(self):
        """The acceptance gate: the real tree has zero findings.  Fixture
        directories are excluded by the linter's default walk rules."""
        r = run_lint(os.path.join(REPO, "src"), os.path.join(REPO, "tests"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_strict_mode_still_fires_somewhere(self):
        """Guards against the linter silently matching nothing: test code
        legitimately uses [&] with a frame-owned engine, so --strict over
        tests/sim must produce HL001 findings."""
        r = run_lint("--strict", "--checks", "HL001",
                     os.path.join(REPO, "tests", "sim"))
        self.assertEqual(r.returncode, 1)
        self.assertIn("HL001", r.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
