// HL007 suppression fixture: a genuinely order-free fold over an
// unordered container — summing into a commutative accumulator — may be
// annotated instead of sorted.
#include <unordered_map>

double report_total() {
  std::unordered_map<int, double> totals;
  totals[3] = 1.0;
  double sum = 0.0;
  // homp-lint: allow(HL007)
  for (const auto& kv : totals) {
    sum += kv.second;
  }
  return sum;
}
