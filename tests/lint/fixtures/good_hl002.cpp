// homp-lint fixture: no HL002 finding — time comes from the engine,
// randomness from the seeded project PRNG, and identifiers that merely
// *contain* banned substrings (total_time, runtime) are not flagged.

struct Engine {
  double now() const { return 0.0; }
};
struct Prng {
  explicit Prng(unsigned long long) {}
  double uniform() { return 0.5; }
};

double total_time(const Engine& e) { return e.now(); }

double simulate(Engine& e) {
  Prng rng(1234);
  double runtime = total_time(e);
  return runtime + rng.uniform();
}
