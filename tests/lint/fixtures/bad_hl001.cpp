// homp-lint fixture: HL001 must fire on every deferred-execution site below.
// Minimal stand-ins; this file is never compiled, only linted.

struct Engine {
  template <class F> unsigned long schedule_at(double, F) { return 0; }
  template <class F> unsigned long schedule_after(double, F) { return 0; }
};
struct Latch {
  template <class F> void wait(F) {}
};
struct Barrier {
  template <class F> void arrive(F) {}
};
struct Link {
  template <class F> void transfer(double, F) {}
};

void all_bad(Engine& e, Latch& l, Barrier& b, Link& lk) {
  int local = 0;
  double when = 1.0;
  e.schedule_at(when, [&] { local += 1; });        // default ref capture
  e.schedule_after(0.5, [&local] { local += 1; }); // named ref capture
  l.wait([&] { local += 2; });
  b.arrive([&local, when] { local += static_cast<int>(when); });
  lk.transfer(1e6, [&local] { local += 3; });
  // multi-line capture lists must be seen too
  e.schedule_after(0.25, [&local,
                          when] { local += static_cast<int>(when); });
}
