// homp-lint fixture: untagged serve-layer timers carrying the allow
// comment, on the line and on the line above — HL006 must stay quiet.

using GenTag = unsigned long long;

struct Engine {
  template <class F>
  unsigned long schedule_at(double, F, GenTag = 0) { return 0; }
  template <class F>
  unsigned long schedule_after(double, F, GenTag = 0) { return 0; }
};

void deliberate(Engine& e) {
  int jobs = 0;
  e.schedule_at(1.0, [jobs] { (void)jobs; });  // homp-lint: allow(HL006)
  // homp-lint: allow(HL006)
  e.schedule_after(0.5, [jobs] { (void)jobs; });
}
