// homp-lint fixture: every serve-layer timer arm below carries its
// generation tag, so HL006 must stay quiet.  Never compiled, only linted.

using GenTag = unsigned long long;

struct Engine {
  GenTag new_generation() { return 1; }
  template <class F>
  unsigned long schedule_at(double, F, GenTag = 0) { return 0; }
  template <class F>
  unsigned long schedule_after(double, F, GenTag = 0) { return 0; }
};

struct Server {
  Engine& engine();
};

void all_good(Server& s, Engine& e) {
  const GenTag gen = e.new_generation();
  int jobs = 0;
  e.schedule_at(1.0, [jobs] { (void)jobs; }, gen);
  e.schedule_after(0.5, [jobs] { (void)jobs; }, gen);
  s.engine().schedule_after(0.25, [jobs]() {
    int a = 1, b = 2;
    (void)(a + b + jobs);
  }, gen);
  s.engine().schedule_at(2.0, [] {}, gen);
}
