// homp-lint fixture: HL006 must fire on every untagged timer arm below.
// Minimal stand-ins; this file is never compiled, only linted.  Captures
// are by value on purpose so HL001 stays quiet and only HL006 fires.

using GenTag = unsigned long long;

struct Engine {
  template <class F>
  unsigned long schedule_at(double, F, GenTag = 0) { return 0; }
  template <class F>
  unsigned long schedule_after(double, F, GenTag = 0) { return 0; }
};

struct Server {
  Engine& engine();
};

void all_bad(Server& s, Engine& e) {
  int jobs = 0;
  e.schedule_at(1.0, [jobs] { (void)jobs; });     // tag omitted
  e.schedule_after(0.5, [jobs] { (void)jobs; });  // tag omitted
  // A multi-line lambda whose body holds commas at deeper nesting must
  // still count as a single argument.
  s.engine().schedule_after(0.25, [jobs]() {
    int a = 1, b = 2;
    (void)(a + b + jobs);
  });
  s.engine().schedule_at(2.0, [] {});
}
