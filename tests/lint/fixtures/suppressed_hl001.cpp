// homp-lint fixture: same pattern as bad_hl001.cpp, silenced with the
// documented suppression comment (same line and line-above forms).

struct Engine {
  template <class F> unsigned long schedule_after(double, F) { return 0; }
};

void justified(Engine& e) {
  int local = 0;
  e.schedule_after(0.0, [&] { local += 1; });  // homp-lint: allow(HL001)
  // homp-lint: allow(HL001)
  e.schedule_after(1.0, [&local] { local += 1; });
}
