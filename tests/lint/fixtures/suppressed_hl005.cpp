// homp-lint fixture: a counter reserved for a follow-up PR, silenced at
// the declaration.

#include <cstddef>

struct DeviceStats {
  std::size_t chunks_done = 0;
  // homp-lint: allow(HL005)
  std::size_t reserved_for_pr5 = 0;
};

enum class RecoveryAction : int {
  kRetried = 0,
  kPlannedAction,  // homp-lint: allow(HL005)
};

std::size_t poke(DeviceStats& s, RecoveryAction a) {
  s.chunks_done += 1;
  return a == RecoveryAction::kRetried ? s.chunks_done : 0;
}
