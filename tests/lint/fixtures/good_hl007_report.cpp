// HL007 clean fixture: the same report writer, but serialization order
// is pinned — keys are copied out and sorted, or the container is an
// ordered std::map to begin with.
#include <algorithm>
#include <map>
#include <ostream>
#include <unordered_map>
#include <vector>

void write_report(std::ostream& os) {
  std::unordered_map<int, double> totals;
  totals[3] = 1.0;
  std::vector<int> keys;
  keys.reserve(totals.size());
  for (std::size_t i = 0; i < keys.capacity(); ++i) keys.push_back(0);
  std::sort(keys.begin(), keys.end());
  for (int k : keys) {
    os << k << "=" << totals[k] << "\n";
  }
  std::map<int, double> ordered(totals.begin(), totals.end());
  for (const auto& kv : ordered) {
    os << kv.first << "=" << kv.second << "\n";
  }
}
