// HL008 suppression fixture: a deliberate direct mutation (e.g. inside
// the owning class's own accessor implementation, where the tracked
// write already happened one frame up) may be annotated.
#include <deque>

template <class F>
void schedule_at(double t, F fn);

struct Widget {
  void kick();
  std::deque<int> queue_;
};

void Widget::kick() {
  // homp-lint: allow(HL008)
  schedule_at(1.0, [this] { queue_.push_back(1); });
}
