// HL007 fixture: a report writer iterating unordered containers.  Hash
// iteration order differs across standard libraries (and across hash
// seeds), so the serialized report stops being byte-identical.
#include <ostream>
#include <unordered_map>
#include <unordered_set>

void write_report(std::ostream& os) {
  std::unordered_map<int, double> totals;
  totals[3] = 1.0;
  for (const auto& kv : totals) {
    os << kv.first << "=" << kv.second << "\n";
  }
  std::unordered_set<int> seen;
  seen.insert(7);
  for (int id : seen) {
    os << "seen " << id << "\n";
  }
}
