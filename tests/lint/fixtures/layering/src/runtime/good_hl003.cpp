// homp-lint fixture: a runtime-layer file using only declared-lower layers.

#include "common/log.h"
#include "machine/device.h"
#include "memory/data_env.h"
#include "sched/scheduler.h"
#include "sim/engine.h"

void never_compiled() {}
