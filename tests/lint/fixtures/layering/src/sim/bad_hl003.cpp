// homp-lint fixture: a sim-layer file reaching *up* into runtime and sched —
// both violate the DAG in tools/lint/layers.toml (sim may only use common).
// The fake src/ path segment is what scopes HL003 onto this file.

#include "runtime/options.h"
#include "sched/scheduler.h"
#include "common/log.h"  // fine: common is below sim
#include "sim/engine.h"  // fine: own layer

void never_compiled() {}
