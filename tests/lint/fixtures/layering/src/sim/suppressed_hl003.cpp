// homp-lint fixture: an acknowledged, temporary layering leak silenced at
// the include site (the honest form is editing layers.toml in the same PR).

#include "runtime/options.h"  // homp-lint: allow(HL003)

void never_compiled() {}
