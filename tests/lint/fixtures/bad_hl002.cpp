// homp-lint fixture: HL002 must fire on each wall-clock / ambient-entropy
// use. This file is linted, never compiled.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double all_bad() {
  auto wall = std::chrono::steady_clock::now();
  auto sys = std::chrono::system_clock::now();
  std::random_device rd;
  std::srand(42);
  int noise = std::rand();
  long stamp = time(nullptr);
  (void)wall;
  (void)sys;
  return static_cast<double>(rd() + noise + stamp);
}
