#ifndef LEGACY_GUARD_KEPT_FOR_ABI  // homp-lint: allow(HL004)
#define LEGACY_GUARD_KEPT_FOR_ABI

// homp-lint fixture: a legacy guard name silenced in place.

// homp-lint: allow(HL004)
using namespace homp_fixture_compat;

#endif  // LEGACY_GUARD_KEPT_FOR_ABI
