// homp-lint fixture: HL005 must fire — one DeviceStats field and one
// RecoveryAction enumerator are declared but never referenced anywhere.

#include <cstddef>

struct DeviceStats {
  std::size_t chunks_done = 0;   // referenced below: fine
  std::size_t never_read = 0;    // dead telemetry: HL005
};

enum class RecoveryAction : int {
  kRetried = 0,   // referenced below: fine
  kNeverEmitted,  // dead telemetry: HL005
};

std::size_t poke(DeviceStats& s, RecoveryAction a) {
  s.chunks_done += 1;
  return a == RecoveryAction::kRetried ? s.chunks_done : 0;
}
