// HL008 clean fixture: event lambdas reach tracked state only through
// the owning object's accessor methods (which carry HOMP_DSAN_WRITE),
// never by mutating the member directly.
#include <deque>

template <class F>
void schedule_at(double t, F fn);

struct Widget {
  void kick();
  void enqueue(int v);   // accessor: HOMP_DSAN_WRITE(dsan_queue_) inside
  void drop_requeued();  // accessor: HOMP_DSAN_WRITE(dsan_queue_) inside

 private:
  std::deque<int> queue_;
  std::deque<int> requeue_;
};

void Widget::kick() {
  schedule_at(1.0, [this] { enqueue(1); });
  schedule_at(2.0, [this] { drop_requeued(); });
}
