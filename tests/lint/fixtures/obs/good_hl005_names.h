#ifndef HOMP_LINT_FIXTURE_GOOD_HL005_NAMES_H
#define HOMP_LINT_FIXTURE_GOOD_HL005_NAMES_H

// Fixture: a metric-name constant that IS referenced outside its
// declaration (here by an exporter-shaped function) lints clean.

namespace homp::obs::names {

inline constexpr char kExported[] = "homp_exported_total";

}  // namespace homp::obs::names

namespace homp::obs {

inline const char* exporter_uses_the_name() { return names::kExported; }

}  // namespace homp::obs

#endif  // HOMP_LINT_FIXTURE_GOOD_HL005_NAMES_H
