#ifndef HOMP_LINT_FIXTURE_BAD_HL005_NAMES_H
#define HOMP_LINT_FIXTURE_BAD_HL005_NAMES_H

// Fixture: metric-name constants in an obs/ catalog that no exporter
// references. Each one is a metric that silently vanished from every
// dashboard — HL005 must flag both.

namespace homp::obs::names {

inline constexpr char kNeverExported[] = "homp_never_exported_total";
inline constexpr char kAlsoForgotten[] = "homp_also_forgotten_seconds";

}  // namespace homp::obs::names

#endif  // HOMP_LINT_FIXTURE_BAD_HL005_NAMES_H
