#ifndef HOMP_LINT_FIXTURE_SUPPRESSED_HL005_NAMES_H
#define HOMP_LINT_FIXTURE_SUPPRESSED_HL005_NAMES_H

// Fixture: a reserved metric name (declared ahead of its exporter) can
// be suppressed explicitly while the wiring lands.

namespace homp::obs::names {

// homp-lint: allow(HL005)
inline constexpr char kReservedForNextRelease[] = "homp_reserved_total";

}  // namespace homp::obs::names

#endif  // HOMP_LINT_FIXTURE_SUPPRESSED_HL005_NAMES_H
