#ifndef HOMP_TESTS_LINT_FIXTURES_GOOD_HL004_H
#define HOMP_TESTS_LINT_FIXTURES_GOOD_HL004_H

// homp-lint fixture: guard ends with GOOD_HL004_H (the rule for headers
// outside src/) and nothing leaks.

namespace homp_fixture {
inline int never_compiled() { return 0; }
}  // namespace homp_fixture

#endif  // HOMP_TESTS_LINT_FIXTURES_GOOD_HL004_H
