// homp-lint fixture: a sanctioned wall-clock read silenced in place
// (e.g. coarse progress logging that never feeds simulated state).

#include <chrono>

long long wall_millis_for_logging() {
  auto t = std::chrono::steady_clock::now();  // homp-lint: allow(HL002)
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             t.time_since_epoch())
      .count();
}
