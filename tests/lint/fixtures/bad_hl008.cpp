// HL008 fixture: event lambdas mutating dsan-tracked members directly.
// The writes bypass the accessor carrying HOMP_DSAN_WRITE, so homp-dsan
// never sees them and its happens-before analysis is blind here.
#include <deque>

template <class F>
void schedule_at(double t, F fn);

struct Widget {
  void kick();
  std::deque<int> queue_;
  std::deque<int> requeue_;
};

void Widget::kick() {
  schedule_at(1.0, [this] { queue_.push_back(1); });
  schedule_at(2.0, [this] { requeue_.clear(); });
}
