#ifndef TOTALLY_WRONG_GUARD
#define TOTALLY_WRONG_GUARD

// homp-lint fixture: HL004 must fire twice — the guard name does not match
// the header path, and a `using namespace` leaks into every includer.

using namespace std;

inline int never_compiled() { return 0; }

#endif  // TOTALLY_WRONG_GUARD
