// homp-lint fixture: every telemetry field and enumerator is read
// somewhere outside its declaration — no HL005 finding.

#include <cstddef>

struct DeviceStats {
  std::size_t chunks_done = 0;
  std::size_t faults_seen = 0;
};

enum class RecoveryAction : int {
  kRetried = 0,
  kQuarantined,
};

std::size_t poke(DeviceStats& s, RecoveryAction a) {
  s.chunks_done += 1;
  s.faults_seen += (a == RecoveryAction::kQuarantined) ? 1u : 0u;
  return a == RecoveryAction::kRetried ? s.chunks_done : s.faults_seen;
}
