// homp-lint fixture: no HL001 finding — captures are by value, moved-in,
// or `this` held by an object that owns the engine.

#include <functional>
#include <utility>

struct Engine {
  template <class F> unsigned long schedule_at(double, F) { return 0; }
  template <class F> unsigned long schedule_after(double, F) { return 0; }
};
struct Latch {
  template <class F> void wait(F) {}
};

struct Actor {
  Engine& engine_;
  int state_ = 0;
  explicit Actor(Engine& e) : engine_(e) {}
  void kick() {
    int snapshot = state_;
    engine_.schedule_after(1.0, [this, snapshot] { state_ = snapshot + 1; });
  }
};

void move_ownership(Engine& e, Latch& l, std::function<void()> cont) {
  int copied = 7;
  e.schedule_at(2.0, [copied, cont = std::move(cont)]() mutable {
    if (copied > 0) cont();
  });
  l.wait([] {});
}
