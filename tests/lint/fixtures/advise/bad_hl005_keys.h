#ifndef HOMP_LINT_FIXTURE_BAD_HL005_KEYS_H
#define HOMP_LINT_FIXTURE_BAD_HL005_KEYS_H

// Fixture: report-key constants in an advise/ roster that no attribution
// or report code references. Each one is a finding kind that can no
// longer be emitted — HL005 must flag both.

namespace homp::advise {

inline constexpr char kKindNeverEmitted[] = "never_emitted";
inline constexpr char kKindAlsoOrphaned[] = "also_orphaned";

}  // namespace homp::advise

#endif  // HOMP_LINT_FIXTURE_BAD_HL005_KEYS_H
