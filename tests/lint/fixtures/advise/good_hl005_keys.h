#ifndef HOMP_LINT_FIXTURE_GOOD_HL005_KEYS_H
#define HOMP_LINT_FIXTURE_GOOD_HL005_KEYS_H

// Fixture: a report-key constant that IS referenced outside its
// declaration (here by an emitter-shaped function) lints clean.

namespace homp::advise {

inline constexpr char kKindEmitted[] = "emitted_kind";

inline const char* emitter_uses_the_key() { return kKindEmitted; }

}  // namespace homp::advise

#endif  // HOMP_LINT_FIXTURE_GOOD_HL005_KEYS_H
