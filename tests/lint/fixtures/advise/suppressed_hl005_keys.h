#ifndef HOMP_LINT_FIXTURE_SUPPRESSED_HL005_KEYS_H
#define HOMP_LINT_FIXTURE_SUPPRESSED_HL005_KEYS_H

// Fixture: a reserved report key (declared ahead of its attribution
// rule) can be suppressed explicitly while the wiring lands.

namespace homp::advise {

// homp-lint: allow(HL005)
inline constexpr char kKindReservedForNextRelease[] = "reserved_kind";

}  // namespace homp::advise

#endif  // HOMP_LINT_FIXTURE_SUPPRESSED_HL005_KEYS_H
