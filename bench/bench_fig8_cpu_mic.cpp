// Figure 8: Offloading Execution Time (ms) on 2 CPUs and 2 MICs Using
// Different Loop Distribution Policies — true hybrid offloading: the host
// computes through shared memory (no transfers) while the MICs pay LEO
// offload overheads.
//
// Expected shape (§VI-B): MODEL_1_AUTO effective for the
// compute-intensive kernels (matmul, bm2d, stencil2d); SCHED_DYNAMIC a
// good option for the rest. Barrier overheads 2-8% per device.

#include <cstdio>

#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("cpu-mic");
  bench::print_time_grid(
      rt, rt.all_devices(),
      "Figure 8 — offloading execution time on 2x CPU (one host device) + "
      "2x Xeon Phi");

  // Barrier-overhead summary the paper quotes for this machine.
  double lo = 100.0, hi = 0.0;
  for (const auto& name : kern::all_kernel_names()) {
    auto c = kern::make_case(name, kern::paper_size(name), false);
    for (const auto& p : bench::seven_policies()) {
      const auto res = bench::run_policy(rt, *c, rt.all_devices(), p);
      const double barrier =
          res.phase_fraction(rt::Phase::kBarrier) * 100.0;
      lo = std::min(lo, barrier);
      hi = std::max(hi, barrier);
    }
  }
  std::printf("\nbarrier overhead range across kernels/policies: "
              "%.1f%% .. %.1f%% of device time (paper: ~2-8%%)\n",
              lo, hi);
  return 0;
}
