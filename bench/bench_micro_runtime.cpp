// Microbenchmarks (google-benchmark) of the runtime's building blocks:
// pragma parsing, device-clause resolution, distribution computation,
// scheduler stepping, the DES engine, and whole simulated offloads.
// These measure *host* cost of the runtime machinery itself — the
// overhead a real HOMP deployment would add per offload.

#include <benchmark/benchmark.h>

#include "dist/distribution.h"
#include "kernels/case.h"
#include "machine/profiles.h"
#include "pragma/parse.h"
#include "runtime/runtime.h"
#include "sched/scheduler.h"
#include "sim/engine.h"

namespace {

using namespace homp;

void BM_PragmaParseTarget(benchmark::State& state) {
  const std::string text =
      "#pragma omp parallel target device(0:*) "
      "map(tofrom: y[0:n] partition([ALIGN(loop)])) "
      "map(to: x[0:n] partition([ALIGN(loop)]), a, n) "
      "distribute dist_schedule(target:[AUTO])";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pragma::parse_directive(text));
  }
}
BENCHMARK(BM_PragmaParseTarget);

void BM_DeviceClauseResolve(benchmark::State& state) {
  auto m = mach::builtin("full");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pragma::resolve_device_clause("0:2, 4:2", m));
  }
}
BENCHMARK(BM_DeviceClauseResolve);

void BM_DistributionByWeights(benchmark::State& state) {
  const std::vector<double> w = {0.3, 0.25, 0.2, 0.1, 0.08, 0.05, 0.02};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::Distribution::by_weights(dist::Range(0, 1 << 20), w));
  }
}
BENCHMARK(BM_DistributionByWeights);

void BM_SchedulerDynamicDrain(benchmark::State& state) {
  sched::LoopContext ctx;
  ctx.loop = dist::Range::of_size(state.range(0));
  ctx.devices.resize(7);
  for (auto& d : ctx.devices) {
    d.peak_flops = 1e12;
    d.peak_membw_Bps = 1e11;
  }
  sched::SchedulerConfig cfg;
  cfg.kind = sched::AlgorithmKind::kDynamic;
  for (auto _ : state) {
    auto s = make_scheduler(cfg, ctx);
    int slot = 0;
    while (auto c = s->next_chunk(slot)) {
      benchmark::DoNotOptimize(*c);
      slot = (slot + 1) % 7;
    }
  }
  state.SetItemsProcessed(state.iterations() * 50);  // 50 chunks at 2%
}
BENCHMARK(BM_SchedulerDynamicDrain)->Arg(1 << 20);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      e.schedule_at(static_cast<double>(i), [&fired] { ++fired; });
    }
    e.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_SimulatedOffload(benchmark::State& state) {
  auto rt = rt::Runtime::from_builtin("full");
  auto c = kern::make_case("matvec", 48'000, /*materialize=*/false);
  const auto devices = rt.all_devices();
  auto maps = c->maps();
  auto kernel = c->kernel();
  rt::OffloadOptions o;
  o.device_ids = devices;
  o.sched.kind = static_cast<sched::AlgorithmKind>(state.range(0));
  o.execute_bodies = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.offload(kernel, maps, o));
  }
}
BENCHMARK(BM_SimulatedOffload)
    ->DenseRange(0, sched::kNumAlgorithms - 1)
    ->Unit(benchmark::kMicrosecond);

void BM_RealOffloadAxpy(benchmark::State& state) {
  // With bodies executed and real copies: the full data path.
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("axpy", state.range(0), /*materialize=*/true);
  const auto devices = rt.accelerators();
  auto maps = c->maps();
  auto kernel = c->kernel();
  rt::OffloadOptions o;
  o.device_ids = devices;
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.offload(kernel, maps, o));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 24);
}
BENCHMARK(BM_RealOffloadAxpy)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

void BM_RealOffloadAxpyVerified(benchmark::State& state) {
  // Same offload with verified commits forced on (integrity.always): every
  // chunk payload is checksummed at compute, copy-in and commit — several
  // extra passes over every payload. The delta against BM_RealOffloadAxpy
  // is the price of *armed* verification; the disarmed checksum path (no
  // fault injection, always=false — what BM_RealOffloadAxpy itself runs)
  // is the one that must stay within a few percent of the pre-integrity
  // runtime.
  auto rt = rt::Runtime::from_builtin("gpu4");
  auto c = kern::make_case("axpy", state.range(0), /*materialize=*/true);
  const auto devices = rt.accelerators();
  auto maps = c->maps();
  auto kernel = c->kernel();
  rt::OffloadOptions o;
  o.device_ids = devices;
  o.sched.kind = sched::AlgorithmKind::kDynamic;
  o.integrity.always = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.offload(kernel, maps, o));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 24);
}
BENCHMARK(BM_RealOffloadAxpyVerified)->Arg(1 << 16)->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
