// Model-vs-reality ablation: the analytical models (which plan from
// *peak* capability) against the simulator's delivered time (driven by
// *sustained* capability and contention). This gap is the mechanism
// behind Table V's matvec-48k row, where CUTOFF — which trusts the model
// — makes things worse.

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "model/cost.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  const auto devices = rt.all_devices();
  auto inputs = model::prediction_inputs(rt.machine(), devices);

  std::printf("Analytical prediction vs simulated execution "
              "(full machine, MODEL_1/MODEL_2 single-shot splits)\n\n");
  TextTable t({"kernel", "algorithm", "predicted T0 (ms)",
               "simulated (ms)", "error %"});
  homp::Accumulator abs_err;
  for (const auto& name : kern::all_kernel_names()) {
    const long long n = kern::paper_size(name);
    auto c = kern::make_case(name, n, false);
    const auto cost = c->kernel().cost;
    for (auto kind : {sched::AlgorithmKind::kModel1Auto,
                      sched::AlgorithmKind::kModel2Auto}) {
      std::vector<double> iter_times;
      for (const auto& d : inputs) {
        iter_times.push_back(kind == sched::AlgorithmKind::kModel1Auto
                                 ? model::model1_iter_time(cost, d)
                                 : model::model2_iter_time(cost, d));
      }
      const auto weights =
          kind == sched::AlgorithmKind::kModel1Auto
              ? model::model1_weights(cost, inputs)
              : model::model2_weights(cost, inputs);
      const double predicted =
          model::predicted_completion_time(n, weights, iter_times);

      bench::PolicyRun p{kind, 0.0, std::string(to_string(kind))};
      const double simulated =
          bench::run_policy(rt, *c, devices, p).total_time;
      const double err = (predicted - simulated) / simulated * 100.0;
      abs_err.add(std::abs(err));
      t.row()
          .cell(bench::kernel_label(name, n))
          .cell(to_string(kind))
          .cell(predicted * 1e3, 3)
          .cell(simulated * 1e3, 3)
          .cell(err, 1);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nmean |error| %.0f%%. The models see peak FLOPs/bandwidth and no\n"
      "link contention or launch overheads, so they are optimistic for\n"
      "exactly the transfer-bound kernels whose CUTOFF decisions Table V\n"
      "shows going wrong. MODEL_2's data term shrinks the error for the\n"
      "data-intensive kernels — the reason §VI-D prescribes it for them.\n",
      abs_err.mean());
  return 0;
}
