// Figure 6: Accumulated Breakdown (%) of Offloading Time on 2 K80 GPUs
// (= 4 K40) Using Different Loop Distribution Policies, plus the
// load-imbalance curve ("below 5% in average" in the paper).

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("gpu4");
  const auto devices = rt.accelerators();
  std::printf(
      "Figure 6 — accumulated breakdown (%%) of offloading time on 4x K40\n"
      "per kernel x policy: share of device time per pipeline phase, plus\n"
      "the load-imbalance curve (percent idle at the final barrier)\n\n");

  double imbalance_sum = 0.0;
  int runs = 0;
  for (const auto& name : kern::all_kernel_names()) {
    const long long n = kern::paper_size(name);
    std::printf("--- %s ---\n", bench::kernel_label(name, n).c_str());
    TextTable t({"policy", "sched%", "alloc%", "copy-in%", "launch%",
                 "compute%", "copy-out%", "barrier%", "imbalance%"});
    auto c = kern::make_case(name, n, false);
    for (const auto& p : bench::seven_policies()) {
      const auto res = bench::run_policy(rt, *c, devices, p);
      t.row().cell(p.label);
      for (int ph = 0; ph < rt::kNumPhases; ++ph) {
        t.cell(res.phase_fraction(static_cast<rt::Phase>(ph)) * 100.0, 2);
      }
      const double imb = res.imbalance().percent();
      t.cell(imb, 2);
      imbalance_sum += imb;
      ++runs;
    }
    t.print(std::cout);
    std::printf("\n");
  }
  const double avg = imbalance_sum / runs;
  std::printf("average load imbalance across all kernels/policies: %.2f%% "
              "(paper: below 5%% on average)%s\n",
              avg, avg < 5.0 ? "" : "  << ABOVE PAPER'S FIGURE");
  return 0;
}
