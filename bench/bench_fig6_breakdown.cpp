// Figure 6: Accumulated Breakdown (%) of Offloading Time on 2 K80 GPUs
// (= 4 K40) Using Different Loop Distribution Policies, plus the
// load-imbalance curve ("below 5% in average" in the paper).
//
// Observability exports (docs/OBSERVABILITY.md):
//   --metrics-out PATH   session-aggregated metrics across every
//                        kernel x policy run (JSON; .prom for the
//                        Prometheus text exposition)
//   --trace-out PATH     Chrome/Perfetto trace of the first run

#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/table.h"
#include "runtime/metrics_export.h"
#include "runtime/trace.h"
#include "support/harness.h"

int main(int argc, char** argv) {
  using namespace homp;
  const char* metrics_out = nullptr;
  const char* trace_out = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) metrics_out = argv[++i];
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_out = argv[++i];
  }

  auto rt = rt::Runtime::from_builtin("gpu4");
  const auto devices = rt.accelerators();
  std::printf(
      "Figure 6 — accumulated breakdown (%%) of offloading time on 4x K40\n"
      "per kernel x policy: share of device time per pipeline phase, plus\n"
      "the load-imbalance curve (percent idle at the final barrier)\n\n");

  obs::MetricsRegistry session;
  bool traced = false;
  double imbalance_sum = 0.0;
  int runs = 0;
  for (const auto& name : kern::all_kernel_names()) {
    const long long n = kern::paper_size(name);
    std::printf("--- %s ---\n", bench::kernel_label(name, n).c_str());
    TextTable t({"policy", "sched%", "alloc%", "copy-in%", "launch%",
                 "compute%", "copy-out%", "barrier%", "imbalance%"});
    auto c = kern::make_case(name, n, false);
    for (const auto& p : bench::seven_policies()) {
      const bool trace_this = trace_out != nullptr && !traced;
      const auto res = bench::run_policy(rt, *c, devices, p,
                                         /*unified_memory=*/false,
                                         /*seed=*/42, trace_this);
      if (trace_this) {
        rt::write_chrome_trace_file(res, trace_out);
        traced = true;
      }
      if (metrics_out != nullptr) rt::collect_metrics(res, session);
      t.row().cell(p.label);
      for (int ph = 0; ph < rt::kNumPhases; ++ph) {
        t.cell(res.phase_fraction(static_cast<rt::Phase>(ph)) * 100.0, 2);
      }
      const double imb = res.imbalance().percent();
      t.cell(imb, 2);
      imbalance_sum += imb;
      ++runs;
    }
    t.print(std::cout);
    std::printf("\n");
  }
  const double avg = imbalance_sum / runs;
  std::printf("average load imbalance across all kernels/policies: %.2f%% "
              "(paper: below 5%% on average)%s\n",
              avg, avg < 5.0 ? "" : "  << ABOVE PAPER'S FIGURE");
  if (metrics_out != nullptr) {
    rt::write_registry_file(session, metrics_out);
    std::printf("session metrics (%d offloads) written to %s\n", runs,
                metrics_out);
  }
  if (trace_out != nullptr) {
    std::printf("trace of the first run written to %s\n", trace_out);
  }
  return 0;
}
