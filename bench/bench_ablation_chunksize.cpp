// Chunk-size sensitivity ablation (§IV-A2: "The selection of the chunk
// size is critical ... a decision for tradeoffs between load-balance and
// chunking scheduling overhead"). Sweeps SCHED_DYNAMIC's chunk fraction
// and SCHED_GUIDED's shrink fraction on a data-intensive and a
// compute-intensive kernel.

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  const auto devices = rt.all_devices();

  const double fractions[] = {0.005, 0.01, 0.02, 0.05, 0.10, 0.25};

  for (const char* name : {"axpy", "matmul"}) {
    const long long n = kern::paper_size(name);
    auto c = kern::make_case(name, n, false);
    std::printf("--- %s, 7 devices ---\n",
                bench::kernel_label(name, n).c_str());
    TextTable t({"chunk fraction", "DYNAMIC (ms)", "chunks",
                 "imbalance%", "GUIDED (ms)", "chunks", "imbalance%"});
    for (double f : fractions) {
      rt::OffloadOptions o;
      o.device_ids = devices;
      o.execute_bodies = false;
      auto maps = c->maps();
      auto kernel = c->kernel();

      o.sched.kind = sched::AlgorithmKind::kDynamic;
      o.sched.dynamic_chunk_fraction = f;
      auto dyn = rt.offload(kernel, maps, o);

      o.sched.kind = sched::AlgorithmKind::kGuided;
      o.sched.guided_chunk_fraction = f;
      auto gui = rt.offload(kernel, maps, o);

      t.row()
          .cell(f * 100.0, 1)
          .cell(dyn.total_time * 1e3, 3)
          .cell(dyn.chunks_issued)
          .cell(dyn.imbalance().percent(), 2)
          .cell(gui.total_time * 1e3, 3)
          .cell(gui.chunks_issued)
          .cell(gui.imbalance().percent(), 2);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "expected: small chunks balance better but pay per-chunk staging\n"
      "(catastrophically so for matmul, whose replicated B matrix ships\n"
      "with every chunk); large chunks approach BLOCK behaviour.\n");
  return 0;
}
