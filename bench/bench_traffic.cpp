// Multi-tenant overload serving benchmark (docs/SERVING.md).
//
// Two phases on the "full" machine (4x K40 + 2x Phi behind shared PCIe
// lanes):
//   1. unloaded: the gold tenant alone at ~10% of pool capacity — its
//      p99 latency here is the baseline.
//   2. overload: four tenants (gold / silver-a / silver-b / bronze)
//      offering ~2x the pool's device-seconds, with per-tenant fault
//      scripts, a deadline-carrying tenant, and a blocking tenant.
//
// The committed claim (BENCH_traffic.json): under 2x overload the
// admission/backpressure/shedding stack keeps gold's p99 within 3x of
// its unloaded p99, sheds/rejects visibly (nonzero counts per class),
// and never violates iteration conservation — while a same-seed rerun
// reproduces the JSON byte-for-byte (everything is virtual time; no
// wall clocks touch the output).
//
// --smoke exits nonzero if any of those checks fail; CI runs it on
// every push and uploads the JSON + metrics artifacts.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "machine/profiles.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/traffic.h"

namespace {

using namespace homp;
using namespace homp::serve;

constexpr std::uint64_t kSeed = 0xbe5715u;
constexpr double kOverloadFactor = 2.0;

/// Mean of the bounded Pareto on [lo, hi] with tail index a (a != 1).
double pareto_mean(long long lo, long long hi, double a) {
  if (lo == hi) return static_cast<double>(lo);
  const double xm = static_cast<double>(lo);
  const double xM = static_cast<double>(hi);
  const double head = std::pow(xm, a) / (1.0 - std::pow(xm / xM, a));
  return head * a / (a - 1.0) *
         (std::pow(xm, 1.0 - a) - std::pow(xM, 1.0 - a));
}

ServeOptions serve_options() {
  ServeOptions so;
  so.seed = kSeed;
  so.shed_l1_depth = 8;
  so.shed_l2_depth = 16;
  so.shed_l3_depth = 24;
  so.floor_fraction = 0.1;
  return so;
}

/// One tenant's shape in the overload mix: priority, WFQ weight,
/// capacity share of the offered load, and workload character.
struct Mix {
  const char* name;
  PriorityClass cls;
  double weight;
  BackpressureMode bp;
  std::size_t depth;
  double share;  ///< of pool capacity (sums to kOverloadFactor)
  const char* kernel;
  long long size_min, size_max;
  double tail_alpha;
  int devices;
  bool deadline;  ///< carry a per-job deadline (deadline admission)
  sim::FaultProfile fault;
};

std::vector<Mix> overload_mix() {
  sim::FaultProfile none;
  sim::FaultProfile flaky;  // transient-only: conservation must survive it
  flaky.transfer_fault_rate = 0.01;
  sim::FaultProfile slow;
  slow.slowdown_rate = 0.05;
  slow.slowdown_factor = 3.0;
  return {
      {"gold", PriorityClass::kGold, 2.0, BackpressureMode::kReject, 8,
       0.30, "axpy", 1 << 14, 1 << 17, 1.5, 2, false, none},
      {"silver-a", PriorityClass::kSilver, 2.0, BackpressureMode::kReject,
       12, 0.60, "matvec", 1 << 9, 1 << 11, 1.5, 2, true, none},
      {"silver-b", PriorityClass::kSilver, 1.0, BackpressureMode::kBlock,
       12, 0.50, "axpy", 1 << 14, 1 << 17, 1.5, 2, false, slow},
      {"bronze", PriorityClass::kBronze, 1.0, BackpressureMode::kReject, 16,
       0.60, "sum", 1 << 15, 1 << 19, 1.2, 1, false, flaky},
  };
}

TenantSpec spec_of(const Mix& m) {
  TenantSpec t;
  t.name = m.name;
  t.priority = m.cls;
  t.weight = m.weight;
  t.backpressure = m.bp;
  t.max_queue_depth = m.depth;
  t.fault = m.fault;
  return t;
}

/// Arrival rate placing `share` of the pool's device-seconds per second,
/// from the MODEL_2-predicted mean job, plus the matching load spec.
TenantLoad load_of(const OffloadServer& server, const Mix& m, double share,
                   double duration_s, std::uint64_t seed) {
  const double mean_n = pareto_mean(m.size_min, m.size_max, m.tail_alpha);
  const double pred =
      server.predicted_job_seconds(m.kernel, static_cast<long long>(mean_n),
                                   m.devices);
  const double pool = static_cast<double>(server.pool().size());
  const double rate =
      share * pool / (pred * static_cast<double>(m.devices));

  TenantLoad l;
  l.tenant = spec_of(m);
  l.job.kernel = m.kernel;
  l.job.devices = m.devices;
  if (m.deadline) {
    // Generous relative deadline: only a deep overload backlog breaks
    // it, which is exactly when rejecting at the door beats queueing.
    l.job.deadline_s = 8.0 * pred;
  }
  l.closed_loop = false;
  l.arrival_rate_hz = rate;
  l.size_min = m.size_min;
  l.size_max = m.size_max;
  l.tail_alpha = m.tail_alpha;
  l.duration_s = duration_s;
  l.seed = seed;
  return l;
}

struct PhaseResult {
  ServeReport report;
  std::string summary_json;
};

PhaseResult run_phase(bool overload) {
  const auto mixes = overload_mix();
  std::vector<TenantSpec> tenants;
  if (overload) {
    for (const auto& m : mixes) tenants.push_back(spec_of(m));
  } else {
    tenants.push_back(spec_of(mixes[0]));
  }

  OffloadServer server(mach::builtin("full"), tenants, serve_options());

  // Pick the duration so gold sees ~150 arrivals in both phases; the
  // other tenants run at their own (higher) rates for the same span.
  const double gold_share = overload ? mixes[0].share : 0.1;
  const double gold_mean =
      pareto_mean(mixes[0].size_min, mixes[0].size_max, mixes[0].tail_alpha);
  const double gold_pred = server.predicted_job_seconds(
      mixes[0].kernel, static_cast<long long>(gold_mean), mixes[0].devices);
  const double gold_rate =
      gold_share * static_cast<double>(server.pool().size()) /
      (gold_pred * static_cast<double>(mixes[0].devices));
  const double duration = 150.0 / gold_rate;

  std::vector<TenantLoad> loads;
  if (overload) {
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      loads.push_back(load_of(server, mixes[i], mixes[i].share, duration,
                              kSeed + 11 * (i + 1)));
    }
  } else {
    loads.push_back(load_of(server, mixes[0], 0.1, duration, kSeed + 11));
  }

  TrafficGen gen(server, loads);
  gen.start();
  server.run();

  PhaseResult out;
  out.report = server.report();
  std::ostringstream ss;
  out.report.write_summary_json(ss);
  out.summary_json = ss.str();
  return out;
}

/// --soak: one long overload run (>= 10k submissions) with the regular
/// mix plus a poison tenant whose every job dies mid-run, so terminal
/// kFail records, deadline cancellations and breaker trips all stay hot
/// for the whole soak. The claim under test is memory flatness: after
/// the drain the server retains zero job objects and the engine holds
/// zero pending events and zero live generations — constant state no
/// matter how many jobs flowed through (docs/SERVING.md "Timer
/// lifecycle").
struct SoakResult {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t rejected = 0;
  std::size_t breaker_trips = 0;
  std::size_t retained_jobs = 0;
  std::size_t live_events = 0;
  std::size_t live_generations = 0;
  std::vector<std::string> breaches;
};

SoakResult run_soak(std::size_t min_jobs) {
  auto mixes = overload_mix();
  sim::FaultProfile poison;
  poison.fail_at_s = 1e-4;  // every granted device dies mid-run
  mixes.push_back({"chaos", PriorityClass::kBronze, 1.0,
                   BackpressureMode::kReject, 8, 0.05, "axpy", 1 << 12,
                   1 << 14, 1.5, 2, false, poison});

  std::vector<TenantSpec> tenants;
  for (const auto& m : mixes) tenants.push_back(spec_of(m));
  OffloadServer server(mach::builtin("full"), tenants, serve_options());

  // Aggregate offered rate -> duration placing >= min_jobs submissions.
  double total_rate = 0.0;
  for (const auto& m : mixes) {
    const double mean_n = pareto_mean(m.size_min, m.size_max, m.tail_alpha);
    const double pred = server.predicted_job_seconds(
        m.kernel, static_cast<long long>(mean_n), m.devices);
    total_rate += m.share * static_cast<double>(server.pool().size()) /
                  (pred * static_cast<double>(m.devices));
  }
  const double duration =
      1.1 * static_cast<double>(min_jobs) / total_rate;

  std::vector<TenantLoad> loads;
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    loads.push_back(load_of(server, mixes[i], mixes[i].share, duration,
                            kSeed + 11 * (i + 1)));
  }
  TrafficGen gen(server, loads);
  gen.start();
  server.run();

  SoakResult out;
  for (const auto& c : server.report().counts) {
    out.submitted += c.submitted;
    out.completed += c.completed;
    out.failed += c.failed;
    out.cancelled += c.cancelled;
    out.rejected += c.rejected();
    out.breaker_trips += c.breaker_trips;
  }
  out.retained_jobs = server.retained_jobs();
  out.live_events = server.engine().live_events();
  out.live_generations = server.engine().live_generations();
  out.breaches = server.report().validate();
  return out;
}

std::string format_number(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out, metrics_out, audit_out;
  bool smoke = false;
  bool soak = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--audit-out") == 0 && i + 1 < argc) {
      audit_out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json-out FILE] [--metrics-out FILE] "
                   "[--audit-out FILE] [--smoke] [--soak]\n",
                   argv[0]);
      return 2;
    }
  }

  if (soak) {
    constexpr std::size_t kMinJobs = 10000;
    const auto r = run_soak(kMinJobs);
    std::printf("traffic soak (machine=full, >= %zu jobs)\n\n", kMinJobs);
    std::printf("%-22s %14zu\n", "submitted", r.submitted);
    std::printf("%-22s %14zu\n", "completed", r.completed);
    std::printf("%-22s %14zu\n", "failed", r.failed);
    std::printf("%-22s %14zu\n", "cancelled", r.cancelled);
    std::printf("%-22s %14zu\n", "rejected", r.rejected);
    std::printf("%-22s %14zu\n", "breaker trips", r.breaker_trips);
    std::printf("%-22s %14zu\n", "retained jobs", r.retained_jobs);
    std::printf("%-22s %14zu\n", "live engine events", r.live_events);
    std::printf("%-22s %14zu\n", "live generations", r.live_generations);
    for (const auto& v : r.breaches) {
      std::printf("  VIOLATION: %s\n", v.c_str());
    }
    int failures = 0;
    auto check = [&](bool ok, const char* what) {
      if (!ok) {
        ++failures;
        std::fprintf(stderr, "SOAK FAIL: %s\n", what);
      }
    };
    check(r.submitted >= kMinJobs, "soak placed fewer than 10k submissions");
    check(r.failed > 0, "poison tenant produced no terminal failures");
    check(r.breaker_trips > 0, "poison tenant never tripped its breaker");
    check(r.breaches.empty(), "soak run has invariant violations");
    check(r.retained_jobs == 0, "server retained job state after drain");
    check(r.live_events == 0, "engine holds pending events after drain");
    check(r.live_generations == 0,
          "engine holds live generations after drain");
    if (failures > 0) return 1;
    std::printf("\nsoak: memory-flat after %zu submissions\n", r.submitted);
    return 0;
  }

  const auto unloaded = run_phase(/*overload=*/false);
  const auto loaded = run_phase(/*overload=*/true);

  const PriorityClass gold = PriorityClass::kGold;
  const double p99_unloaded = unloaded.report.latency_percentile(0.99, &gold);
  const double p99_loaded = loaded.report.latency_percentile(0.99, &gold);
  const double ratio = p99_unloaded > 0.0 ? p99_loaded / p99_unloaded : 0.0;
  const auto breaches = loaded.report.validate();

  std::size_t rejected = 0, blocked = 0;
  for (const auto& c : loaded.report.counts) {
    rejected += c.rejected();
    blocked += c.blocked;
  }

  std::printf("traffic serving bench (machine=full, overload=%.1fx)\n\n",
              kOverloadFactor);
  std::printf("%-22s %14s %14s\n", "", "unloaded", "overload");
  std::printf("%-22s %14zu %14zu\n", "jobs completed",
              unloaded.report.jobs.size(), loaded.report.jobs.size());
  std::printf("%-22s %14.6f %14.6f\n", "gold p99 latency (s)", p99_unloaded,
              p99_loaded);
  std::printf("%-22s %14s %14.2f\n", "gold p99 ratio", "-", ratio);
  std::printf("%-22s %14s %14zu\n", "rejected", "-", rejected);
  std::printf("%-22s %14s %14zu\n", "blocked submissions", "-", blocked);
  std::printf("%-22s %14s %14zu\n", "shed transitions", "-",
              loaded.report.shed_transitions);
  std::printf("%-22s %14s %14zu\n", "violations", "-", breaches.size());
  for (const auto& v : breaches) std::printf("  VIOLATION: %s\n", v.c_str());

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "bench_traffic: cannot write %s\n",
                   json_out.c_str());
      return 2;
    }
    out << "{\n\"bench\": \"traffic\",\n\"machine\": \"full\",\n"
        << "\"overload_factor\": " << format_number(kOverloadFactor) << ",\n"
        << "\"gold_p99_unloaded_s\": " << format_number(p99_unloaded) << ",\n"
        << "\"gold_p99_overload_s\": " << format_number(p99_loaded) << ",\n"
        << "\"gold_p99_ratio\": " << format_number(ratio) << ",\n"
        << "\"unloaded\": " << unloaded.summary_json
        << ",\n\"overload\": " << loaded.summary_json << "}\n";
  }

  if (!audit_out.empty()) {
    // Serve decision audit of the overload phase: the shed-ladder and
    // breaker activity homp-advise attributes per tenant.
    std::ofstream out(audit_out);
    if (!out) {
      std::fprintf(stderr, "bench_traffic: cannot write %s\n",
                   audit_out.c_str());
      return 2;
    }
    loaded.report.write_audit_json(out);
  }

  if (!metrics_out.empty()) {
    obs::MetricsRegistry reg;
    loaded.report.export_metrics(reg);
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "bench_traffic: cannot write %s\n",
                   metrics_out.c_str());
      return 2;
    }
    if (metrics_out.size() > 5 &&
        metrics_out.compare(metrics_out.size() - 5, 5, ".prom") == 0) {
      reg.write_prometheus(out);
    } else {
      reg.write_json(out);
    }
  }

  if (smoke) {
    int failures = 0;
    auto check = [&](bool ok, const char* what) {
      if (!ok) {
        ++failures;
        std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
      }
    };
    check(breaches.empty(), "overload run has invariant violations");
    check(ratio > 0.0 && ratio <= 3.0,
          "gold p99 under overload exceeds 3x unloaded p99");
    check(rejected > 0, "2x overload produced no rejections");
    check(loaded.report.shed_transitions > 0,
          "2x overload never moved the shed ladder");
    check(!loaded.report.jobs.empty() && !unloaded.report.jobs.empty(),
          "a phase completed zero jobs");
    if (failures > 0) return 1;
    std::printf("\nsmoke: all serving-overload checks passed\n");
  }
  return 0;
}
