// Table II: Comparisons of Loop Distribution Algorithms — the static
// metadata plus *measured* per-algorithm overhead on a reference workload
// (chunks issued, scheduling time, data moved), substantiating the
// Low/Medium/High overhead column.

#include <cstdio>
#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  const auto devices = rt.all_devices();
  std::printf("Table II — loop distribution algorithms (static metadata + "
              "measured overhead on matvec-48k, 7 devices)\n\n");

  auto c = kern::make_case("matvec", kern::paper_size("matvec"), false);
  TextTable t({"algorithm", "approach", "stages", "overhead (paper)",
               "balancing (paper)", "chunks", "sched time", "bytes moved",
               "imbalance%"});
  for (const auto& p : bench::seven_policies()) {
    const auto& info = sched::algorithm_info(p.kind);
    const auto res = bench::run_policy(rt, *c, devices, p);
    double sched_time = 0.0, bytes = 0.0;
    for (const auto& d : res.devices) {
      sched_time += d.phase_time[static_cast<int>(rt::Phase::kScheduling)];
      bytes += d.bytes_in + d.bytes_out;
    }
    t.row()
        .cell(p.label)
        .cell(info.approach)
        .cell(info.stages == 0 ? std::string("Multiple")
                               : std::to_string(info.stages))
        .cell(info.overhead)
        .cell(info.balance)
        .cell(res.chunks_issued)
        .cell(format_seconds(sched_time))
        .cell(format_bytes(bytes))
        .cell(res.imbalance().percent(), 2);
  }
  t.print(std::cout);
  std::printf("\nexpected: multi-stage algorithms issue more chunks and "
              "move more bytes (re-staged replicated data); single-stage "
              "ones are cheap but balance only as well as their model.\n");
  return 0;
}
