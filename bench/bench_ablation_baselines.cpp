// Baseline comparison: the paper's seven algorithms against the extension
// schedulers — CYCLIC (Table I's remaining policy), WORK_STEALING (the
// related-work runtime family: StarPU / Harmony / XKaapi, refs [2], [7],
// [20]) and HISTORY_AUTO (Qilin-like adaptive mapping, ref [21], the
// paper's stated future work). HISTORY_AUTO is warmed by one BLOCK run of
// each kernel first, then measured.

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  const auto devices = rt.all_devices();
  std::printf("Extension baselines vs the paper's algorithms "
              "(full machine, ms)\n\n");

  TextTable t({"kernel", "best of paper's 7", "(which)", "CYCLIC,2%",
               "WORK_STEALING", "HISTORY_AUTO (warmed)"});
  for (const auto& name : kern::all_kernel_names()) {
    const long long n = kern::paper_size(name);
    auto c = kern::make_case(name, n, false);

    double best = 1e300;
    std::string best_label;
    for (const auto& p : bench::seven_policies()) {
      const double ti = bench::run_policy(rt, *c, devices, p).total_time;
      if (ti < best) {
        best = ti;
        best_label = p.label;
      }
    }

    auto run_ext = [&](sched::AlgorithmKind kind) {
      bench::PolicyRun p{kind, 0.0, std::string(to_string(kind))};
      return bench::run_policy(rt, *c, devices, p).total_time;
    };
    const double cyclic = run_ext(sched::AlgorithmKind::kCyclic);
    const double stealing = run_ext(sched::AlgorithmKind::kWorkStealing);
    // Warm history with one BLOCK run, then measure.
    run_ext(sched::AlgorithmKind::kBlock);
    const double history = run_ext(sched::AlgorithmKind::kHistoryAuto);

    t.row()
        .cell(bench::kernel_label(name, n))
        .cell(best * 1e3, 3)
        .cell(best_label)
        .cell(cyclic * 1e3, 3)
        .cell(stealing * 1e3, 3)
        .cell(history * 1e3, 3);
  }
  t.print(std::cout);
  std::printf(
      "\nreading: WORK_STEALING tracks SCHED_DYNAMIC (both adapt by\n"
      "stealing/claiming work, both re-stage replicated inputs per\n"
      "chunk); CYCLIC behaves like DYNAMIC with a fixed assignment;\n"
      "HISTORY_AUTO approaches the best single-shot split once it has\n"
      "seen each kernel once — the adaptivity the paper names as future\n"
      "work.\n");
  return 0;
}
