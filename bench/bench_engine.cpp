// Engine-throughput microbenchmark: how many discrete-event-simulator
// events (and whole simulated offloads) the runtime machinery pushes
// through per wall-clock second. This is host overhead, not simulated
// time — the cost of running HOMP's scheduling/transfer/fault pipeline
// itself. Regressions here mean every bench and every fuzz corpus got
// slower.
//
// Three scenarios spanning the machinery's operating points:
//   - gpu4 + axpy@1M, SCHED_DYNAMIC: many small chunks, chunk-per-event
//     pressure on the scheduler and transfer pipeline.
//   - full + matmul@512, MODEL_2_AUTO: heterogeneous 9-device machine,
//     model-weighted single-stage distribution.
//   - cpu-mic + stencil2d@128, SCHED_GUIDED: shared+discrete memory mix
//     with shrinking chunk sizes.
//
// Output: a human table on stdout and (with --json-out FILE) a JSON
// document suitable for committing as BENCH_engine.json and diffing
// across PRs. Numbers vary with host load; treat >2x deltas as signal.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "kernels/case.h"
#include "obs/metrics.h"
#include "runtime/audit_export.h"
#include "runtime/metrics_export.h"
#include "runtime/runtime.h"
#include "sched/scheduler.h"
#include "sim/dsan.h"
#include "support/harness.h"

namespace {

using namespace homp;

struct Scenario {
  const char* name;
  const char* machine;
  const char* kernel;
  long long n;
  sched::AlgorithmKind kind;
};

struct Result {
  const char* name = nullptr;
  int reps = 0;
  double seconds = 0.0;
  long long events = 0;
  double events_per_s = 0.0;
  double offloads_per_s = 0.0;
};

Result run_scenario(const Scenario& s, bool with_dsan = false) {
  auto rt = rt::Runtime::from_builtin(s.machine);
  auto c = kern::make_case(s.kernel, s.n, /*materialize=*/false);
  auto maps = c->maps();
  auto kernel = c->kernel();

  rt::OffloadOptions o;
  o.device_ids = rt.all_devices();
  o.sched.kind = s.kind;
  o.execute_bodies = false;

  // Warm-up offload: first-touch allocations and lazy tables out of the
  // timed region.
  (void)rt.offload(kernel, maps, o);

  // Time enough repetitions to get past clock granularity (~0.5 s).
  // With --dsan, the whole timed region runs under an active sanitizer
  // context — the overhead being measured is exactly what a --dsan fuzz
  // corpus pays per event.
  sim::dsan::Context dsan_ctx;
  std::optional<sim::dsan::Scope> dsan_scope;
  if (with_dsan) dsan_scope.emplace(dsan_ctx);
  Result r;
  r.name = s.name;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.5) {
    const auto res = rt.offload(kernel, maps, o);
    r.events += static_cast<long long>(res.engine_events);
    ++r.reps;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  }
  dsan_ctx.finish();
  r.seconds = elapsed;
  r.events_per_s = static_cast<double>(r.events) / elapsed;
  r.offloads_per_s = static_cast<double>(r.reps) / elapsed;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace homp;
  std::string json_out;
  std::string audit_out;
  std::string metrics_out;
  bool with_dsan = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--audit-out") == 0 && i + 1 < argc) {
      audit_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--dsan") == 0) {
      with_dsan = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json-out FILE] [--audit-out FILE] "
                   "[--metrics-out FILE] [--dsan]\n",
                   argv[0]);
      return 2;
    }
  }

  const Scenario scenarios[] = {
      {"gpu4-axpy1M-dynamic", "gpu4", "axpy", 1'000'000,
       sched::AlgorithmKind::kDynamic},
      {"full-matmul512-model2", "full", "matmul", 512,
       sched::AlgorithmKind::kModel2Auto},
      {"cpumic-stencil128-guided", "cpu-mic", "stencil2d", 128,
       sched::AlgorithmKind::kGuided},
  };

  std::vector<Result> results;
  std::vector<Result> dsan_results;
  std::printf("engine throughput (host wall-clock; execute_bodies=off)\n");
  if (with_dsan) {
    std::printf("dsan: %s\n",
                sim::dsan::compiled_in() ? "compiled in (HOMP_DSAN=ON)"
                                         : "compiled out (HOMP_DSAN=OFF)");
  }
  std::printf("\n");
  std::printf("%-28s %8s %10s %14s %12s", "scenario", "reps", "events",
              "events/sec", "offloads/sec");
  if (with_dsan) std::printf(" %14s %9s", "dsan-ev/sec", "overhead");
  std::printf("\n");
  for (const auto& s : scenarios) {
    const auto r = run_scenario(s);
    std::printf("%-28s %8d %10lld %14.0f %12.1f", r.name, r.reps, r.events,
                r.events_per_s, r.offloads_per_s);
    results.push_back(r);
    if (with_dsan) {
      const auto d = run_scenario(s, /*with_dsan=*/true);
      std::printf(" %14.0f %8.2fx", d.events_per_s,
                  r.events_per_s / d.events_per_s);
      dsan_results.push_back(d);
    }
    std::printf("\n");
  }

  // Advisor artifacts: one extra audited offload per scenario, outside
  // the timed region. These are deterministic (virtual time only, no
  // wall clocks), unlike the throughput numbers above — so the CI perf
  // sentinel can attribute a regression from the same invocation that
  // measured it.
  if (!audit_out.empty() || !metrics_out.empty()) {
    obs::MetricsRegistry reg;
    bool audit_written = false;
    for (const auto& s : scenarios) {
      auto rt = rt::Runtime::from_builtin(s.machine);
      auto c = kern::make_case(s.kernel, s.n, /*materialize=*/false);
      rt::OffloadOptions o;
      o.device_ids = rt.all_devices();
      o.sched.kind = s.kind;
      o.execute_bodies = false;
      o.collect_audit = true;
      const auto res = rt.offload(c->kernel(), c->maps(), o);
      rt::collect_metrics(res, reg);
      if (!audit_out.empty() && !audit_written) {
        rt::write_audit_file(res, audit_out);
        audit_written = true;
      }
    }
    if (!metrics_out.empty()) {
      rt::write_registry_file(reg, metrics_out);
    }
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "bench_engine: cannot write %s\n",
                   json_out.c_str());
      return 2;
    }
    out << "{\n  \"bench\": \"engine\",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      char buf[512];
      std::snprintf(buf, sizeof buf,
                    "    {\"name\": \"%s\", \"reps\": %d, \"events\": %lld, "
                    "\"events_per_sec\": %.0f, \"offloads_per_sec\": %.1f",
                    r.name, r.reps, r.events, r.events_per_s, r.offloads_per_s);
      out << buf;
      if (with_dsan) {
        const auto& d = dsan_results[i];
        std::snprintf(buf, sizeof buf,
                      ", \"dsan_events_per_sec\": %.0f, "
                      "\"dsan_overhead\": %.2f",
                      d.events_per_s, r.events_per_s / d.events_per_s);
        out << buf;
      }
      out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return 0;
}
