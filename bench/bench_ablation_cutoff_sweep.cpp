// CUTOFF-ratio sweep ablation (§IV-E): the paper picks 15% as "the
// average contribution by one device when considering all the devices are
// the same" (100/7). This sweep shows how the chosen ratio trades device
// utilization against the cost of keeping weak contributors.

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  const auto devices = rt.all_devices();
  const double ratios[] = {0.0, 0.05, 0.10, 0.1429, 0.15, 0.20, 0.30};

  std::printf("CUTOFF-ratio sweep, MODEL_2_AUTO on 7 devices\n"
              "(100/7 = 14.29%% is the paper's equal-contribution point)\n\n");
  for (const auto& name : kern::all_kernel_names()) {
    const long long n = kern::paper_size(name);
    auto c = kern::make_case(name, n, false);
    std::printf("--- %s ---\n", bench::kernel_label(name, n).c_str());
    TextTable t({"cutoff %", "time (ms)", "devices kept",
                 "speedup vs no cutoff"});
    double base = 0.0;
    for (double r : ratios) {
      bench::PolicyRun p{sched::AlgorithmKind::kModel2Auto, r,
                         "MODEL_2_AUTO"};
      const auto res = bench::run_policy(rt, *c, devices, p);
      if (r == 0.0) base = res.total_time;
      const int kept =
          res.has_cutoff ? res.cutoff.num_selected
                         : static_cast<int>(devices.size());
      t.row()
          .cell(r * 100.0, 2)
          .cell(res.total_time * 1e3, 3)
          .cell(static_cast<long long>(kept))
          .cell(base / res.total_time, 2);
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
