#include "support/harness.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/table.h"

namespace homp::bench {

std::vector<PolicyRun> seven_policies(double cutoff) {
  std::vector<PolicyRun> out;
  for (int a = 0; a < sched::kNumAlgorithms; ++a) {
    const auto kind = sched::all_algorithms()[a];
    PolicyRun p;
    p.kind = kind;
    p.cutoff = sched::algorithm_info(kind).supports_cutoff ? cutoff : 0.0;
    switch (kind) {
      case sched::AlgorithmKind::kBlock:
        p.label = "BLOCK";
        break;
      case sched::AlgorithmKind::kDynamic:
        p.label = "SCHED_DYNAMIC,2%";
        break;
      case sched::AlgorithmKind::kGuided:
        p.label = "SCHED_GUIDED,20%";
        break;
      case sched::AlgorithmKind::kModel1Auto:
        p.label = "MODEL_1_AUTO";
        break;
      case sched::AlgorithmKind::kModel2Auto:
        p.label = "MODEL_2_AUTO";
        break;
      case sched::AlgorithmKind::kSchedProfileAuto:
        p.label = "SCHED_PROFILE_AUTO,10%";
        break;
      case sched::AlgorithmKind::kModelProfileAuto:
        p.label = "MODEL_PROFILE_AUTO,10%";
        break;
      default:
        // Extension algorithms never appear in seven_policies().
        p.label = to_string(kind);
        break;
    }
    if (p.cutoff > 0.0) {
      char buf[16];
      std::snprintf(buf, sizeof buf, ",%g%%", p.cutoff * 100.0);
      p.label += buf;
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::string kernel_label(const std::string& name, long long n) {
  if (n % 1'000'000 == 0) return name + "-" + std::to_string(n / 1'000'000) + "M";
  if (n % 1'000 == 0) return name + "-" + std::to_string(n / 1'000) + "k";
  return name + "-" + std::to_string(n);
}

rt::OffloadResult run_policy(const rt::Runtime& rt, const kern::KernelCase& c,
                             const std::vector<int>& devices,
                             const PolicyRun& policy, bool unified_memory,
                             std::uint64_t seed, bool collect_trace) {
  rt::OffloadOptions o;
  o.device_ids = devices;
  o.sched.kind = policy.kind;
  o.sched.cutoff_ratio = policy.cutoff;
  o.execute_bodies = false;
  o.use_unified_memory = unified_memory;
  o.noise_seed = seed;
  o.collect_trace = collect_trace;
  auto maps = c.maps();
  auto kernel = c.kernel();
  return rt.offload(kernel, maps, o);
}

void print_time_grid(const rt::Runtime& rt, const std::vector<int>& devices,
                     const std::string& title, bool cutoff_column) {
  std::printf("%s\n", title.c_str());
  std::printf("(offloading execution time in ms; %zu devices)\n\n",
              devices.size());
  auto policies = seven_policies(0.0);
  std::vector<std::string> header{"kernel"};
  for (const auto& p : policies) header.push_back(p.label);
  if (cutoff_column) header.push_back("min w/ CUTOFF,15%");
  TextTable t(header);

  for (const auto& name : kern::all_kernel_names()) {
    const long long n = kern::paper_size(name);
    auto c = kern::make_case(name, n, /*materialize=*/false);
    t.row().cell(kernel_label(name, n));
    for (const auto& p : policies) {
      const auto res = run_policy(rt, *c, devices, p);
      t.cell(res.total_time * 1e3, 3);
    }
    if (cutoff_column) {
      double best = 1e300;
      for (const auto& p : seven_policies(0.15)) {
        if (p.cutoff == 0.0) continue;  // chunk schedulers have no cutoff
        const auto res = run_policy(rt, *c, devices, p);
        best = std::min(best, res.total_time);
      }
      t.cell(best * 1e3, 3);
    }
  }
  t.print(std::cout);
}

}  // namespace homp::bench
