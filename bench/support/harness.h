#ifndef HOMP_BENCH_SUPPORT_HARNESS_H
#define HOMP_BENCH_SUPPORT_HARNESS_H

/// \file harness.h
/// Shared helpers for the table/figure reproduction binaries. Each bench
/// prints the same rows/series the paper reports (DESIGN.md §4); absolute
/// milliseconds come from the calibrated virtual-time simulation, so the
/// *shape* (who wins, by what factor) is the claim, not the numbers.

#include <string>
#include <vector>

#include "kernels/case.h"
#include "runtime/runtime.h"

namespace homp::bench {

/// One scheduling policy as the paper's figures label it.
struct PolicyRun {
  sched::AlgorithmKind kind;
  double cutoff = 0.0;
  std::string label;  ///< e.g. "SCHED_DYNAMIC,2%"
};

/// The seven Table II policies with the paper's tuning (2% dynamic chunks,
/// 20% guided, 10% profiling samples). `cutoff` is applied to the four
/// algorithms that support it (Table II note), 0 to the rest.
std::vector<PolicyRun> seven_policies(double cutoff = 0.0);

/// "matmul-6144"-style label.
std::string kernel_label(const std::string& name, long long n);

/// Offload `c` across `devices` under `policy` (pure simulation — bodies
/// are not executed; benches run at paper scale). `collect_trace` turns
/// on span/decision/counter collection for --trace-out exports.
rt::OffloadResult run_policy(const rt::Runtime& rt, const kern::KernelCase& c,
                             const std::vector<int>& devices,
                             const PolicyRun& policy,
                             bool unified_memory = false,
                             std::uint64_t seed = 42,
                             bool collect_trace = false);

/// Execution-time grid: one row per kernel (at its Table V size), one
/// column per policy, in milliseconds — the shape of Figures 5, 8 and 9.
/// When `cutoff_column` is true, a final column reports the minimum time
/// across policies with the 15% CUTOFF applied (Figure 9's extra bar).
void print_time_grid(const rt::Runtime& rt, const std::vector<int>& devices,
                     const std::string& title, bool cutoff_column = false);

}  // namespace homp::bench

#endif  // HOMP_BENCH_SUPPORT_HARNESS_H
