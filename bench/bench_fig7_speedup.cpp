// Figure 7: Speedup using 2 K80 GPUs (Total 4 K40 GPUs) — strong scaling
// of each kernel from 1 to 4 GPUs under its best-performing policy.

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("gpu4");
  std::printf(
      "Figure 7 — strong scaling on 1..4 K40 GPUs (speedup vs 1 GPU,\n"
      "best policy per device count)\n\n");

  TextTable t({"kernel", "1 GPU (ms)", "2 GPUs", "speedup x2", "3 GPUs",
               "speedup x3", "4 GPUs", "speedup x4"});
  for (const auto& name : kern::all_kernel_names()) {
    const long long n = kern::paper_size(name);
    auto c = kern::make_case(name, n, false);
    double times[4];
    for (int g = 1; g <= 4; ++g) {
      std::vector<int> devices;
      for (int d = 1; d <= g; ++d) devices.push_back(d);
      double best = 1e300;
      for (const auto& p : bench::seven_policies()) {
        best = std::min(best,
                        bench::run_policy(rt, *c, devices, p).total_time);
      }
      times[g - 1] = best;
    }
    t.row().cell(bench::kernel_label(name, n));
    t.cell(times[0] * 1e3, 3);
    for (int g = 2; g <= 4; ++g) {
      t.cell(times[g - 1] * 1e3, 3);
      t.cell(times[0] / times[g - 1], 2);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nexpected shape: near-linear scaling for compute-bound kernels\n"
      "(matmul, bm2d); sublinear for PCIe-bound ones (axpy, sum) — the two\n"
      "dies of one K80 card share a PCIe lane pair, so the 1->2 GPU step\n"
      "adds no interconnect bandwidth.\n");
  return 0;
}
