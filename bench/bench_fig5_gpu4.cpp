// Figure 5: Offloading Execution Time (ms) on 2 K80 GPUs (= 4 K40) Using
// Different Loop Distribution Policies.
//
// Expected shape (paper §VI-A): BLOCK best for the compute-intensive
// kernels (matmul, stencil2d, bm2d); SCHED_DYNAMIC best for the
// data-intensive ones (axpy, matvec, sum) thanks to transfer/compute
// overlap across chunks.

#include <cstdio>

#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("gpu4");
  // Figure 5 uses the four K40s only (devices 1-4); the host stages data.
  bench::print_time_grid(
      rt, rt.accelerators(),
      "Figure 5 — offloading execution time on 4x K40 (2x K80 cards)");

  // Shape check for the harness output (§VI-A text).
  auto policies = bench::seven_policies();
  const auto& block = policies[0];
  const auto& dynamic = policies[1];
  int ok = 0, checked = 0;
  for (const auto& [name, dyn_wins] :
       std::initializer_list<std::pair<const char*, bool>>{
           {"axpy", true},
           {"matvec", true},
           {"sum", true},
           {"matmul", false},
           {"stencil2d", false},
           {"bm2d", false}}) {
    auto c = kern::make_case(name, kern::paper_size(name), false);
    const double tb =
        bench::run_policy(rt, *c, rt.accelerators(), block).total_time;
    const double td =
        bench::run_policy(rt, *c, rt.accelerators(), dynamic).total_time;
    ++checked;
    const bool got = td < tb;
    if (got == dyn_wins) ++ok;
    std::printf("  %-12s %s wins (paper: %s expected)%s\n", name,
                got ? "SCHED_DYNAMIC" : "BLOCK",
                dyn_wins ? "SCHED_DYNAMIC" : "BLOCK",
                got == dyn_wins ? "" : "  << MISMATCH");
  }
  std::printf("shape agreement with paper Fig. 5: %d/%d kernels\n", ok,
              checked);
  return 0;
}
