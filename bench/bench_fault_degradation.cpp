// Graceful degradation under injected faults: every Table II algorithm,
// run fault-free and at 1% / 5% per-operation transient fault rates, plus
// four scripted scenarios — a permanent single-device loss halfway
// through the fault-free makespan, a mid-run kernel hang on one device
// (reclaimed by the watchdog + speculative re-execution), a sustained
// straggler (one device latches a 16x degrade), and 1% silent corruption
// of transfers and kernel results (caught by checksummed verified
// commits). Emits a JSON summary of the slowdown each algorithm suffers —
// the recovery machinery (docs/RESILIENCE.md) keeps every run completing,
// so the cost of a fault is time, never correctness.
//
// `--smoke` switches to a correctness gate for CI: materialized kernels
// run under 1% corruption on every device and the final host arrays are
// checked against the sequential reference — any mismatch (silent
// corruption reaching the host) exits nonzero.

// `--metrics-out PATH` writes session-aggregated metrics across every
// scenario run (docs/OBSERVABILITY.md) — the resilience counters
// (faults, retries, speculation, integrity) summed over the whole sweep.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/metrics_export.h"
#include "support/harness.h"

namespace {

homp::rt::OffloadResult run_with_faults(const homp::rt::Runtime& rt,
                                        const homp::kern::KernelCase& c,
                                        const std::vector<int>& devices,
                                        const homp::bench::PolicyRun& policy,
                                        double rate, double loss_at_s) {
  homp::rt::OffloadOptions o;
  o.device_ids = devices;
  o.sched.kind = policy.kind;
  o.sched.cutoff_ratio = policy.cutoff;
  o.execute_bodies = false;
  o.fault.extra.transfer_fault_rate = rate;
  o.fault.extra.launch_fault_rate = rate;
  if (loss_at_s >= 0.0) {
    homp::sim::ScriptedFault loss;
    loss.device_id = devices.back();
    loss.kind = homp::sim::FaultKind::kDeviceLoss;
    loss.at_s = loss_at_s;
    o.fault.scripted.push_back(loss);
  }
  auto maps = c.maps();
  auto kernel = c.kernel();
  return rt.offload(kernel, maps, o);
}

/// One scripted compute fault (hang or degrade) on the last device.
homp::rt::OffloadResult run_with_straggler(const homp::rt::Runtime& rt,
                                           const homp::kern::KernelCase& c,
                                           const std::vector<int>& devices,
                                           const homp::bench::PolicyRun& policy,
                                           homp::sim::FaultKind kind,
                                           double factor) {
  homp::rt::OffloadOptions o;
  o.device_ids = devices;
  o.sched.kind = policy.kind;
  o.sched.cutoff_ratio = policy.cutoff;
  o.execute_bodies = false;
  homp::sim::ScriptedFault f;
  f.device_id = devices.back();
  f.kind = kind;
  f.op = 0;  // the device's first compute, so single-shot plans hit it too
  f.factor = factor;
  o.fault.scripted.push_back(f);
  auto maps = c.maps();
  auto kernel = c.kernel();
  return rt.offload(kernel, maps, o);
}

std::string scenario_json(const char* name,
                          const homp::rt::OffloadResult& res,
                          double base_time) {
  std::size_t tardy = 0, spec_run = 0, spec_won = 0, readmissions = 0;
  for (const auto& d : res.devices) {
    tardy += d.tardy_chunks;
    spec_run += d.spec_copies_run;
    spec_won += d.spec_copies_won;
    readmissions += d.readmissions;
  }
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "      {\"scenario\": \"%s\", \"time_ms\": %.6f, "
                "\"slowdown\": %.4f, \"tardy_chunks\": %zu, "
                "\"spec_copies_run\": %zu, \"spec_copies_won\": %zu, "
                "\"readmissions\": %zu, \"degraded\": %s}",
                name, res.total_time * 1e3,
                base_time > 0.0 ? res.total_time / base_time : 1.0, tardy,
                spec_run, spec_won, readmissions,
                res.degraded ? "true" : "false");
  return buf;
}

homp::rt::OffloadResult run_with_corruption(
    const homp::rt::Runtime& rt, const homp::kern::KernelCase& c,
    const std::vector<int>& devices, const homp::bench::PolicyRun& policy,
    double rate, bool execute_bodies) {
  homp::rt::OffloadOptions o;
  o.device_ids = devices;
  o.sched.kind = policy.kind;
  o.sched.cutoff_ratio = policy.cutoff;
  o.execute_bodies = execute_bodies;
  o.fault.extra.corrupt_transfer_rate = rate;
  o.fault.extra.corrupt_compute_rate = rate;
  auto maps = c.maps();
  auto kernel = c.kernel();
  return rt.offload(kernel, maps, o);
}

std::string corruption_json(const homp::rt::OffloadResult& res,
                            double base_time) {
  std::size_t injected = 0, checks = 0, caught = 0, reexec = 0, votes = 0;
  for (const auto& d : res.devices) {
    injected += d.corruptions_injected;
    checks += d.integrity_checks;
    caught += d.integrity_failures;
    reexec += d.integrity_reexecutions;
    votes += d.vote_rounds;
  }
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "      {\"scenario\": \"corrupt_1pct\", \"time_ms\": %.6f, "
                "\"slowdown\": %.4f, \"corruptions_injected\": %zu, "
                "\"integrity_checks\": %zu, \"integrity_failures\": %zu, "
                "\"reexecutions\": %zu, \"vote_rounds\": %zu}",
                res.total_time * 1e3,
                base_time > 0.0 ? res.total_time / base_time : 1.0, injected,
                checks, caught, reexec, votes);
  return buf;
}

/// CI smoke gate: materialized kernels under 1% silent corruption on every
/// device must still produce host arrays identical to the sequential
/// reference. Returns the process exit code.
int run_smoke() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("gpu4");
  const auto devices = rt.all_devices();
  const auto policies = bench::seven_policies();
  struct SmokeCase {
    const char* name;
    long long n;
  };
  const SmokeCase cases[] = {{"axpy", 4096}, {"stencil2d", 48}};

  int failures = 0;
  std::size_t injected_total = 0, caught_total = 0;
  for (const auto& sc : cases) {
    auto c = kern::make_case(sc.name, sc.n, /*materialize=*/true);
    for (const auto& p : policies) {
      c->init();
      const auto res =
          run_with_corruption(rt, *c, devices, p, 0.01, /*bodies=*/true);
      std::size_t injected = 0, caught = 0;
      for (const auto& d : res.devices) {
        injected += d.corruptions_injected;
        caught += d.integrity_failures;
      }
      injected_total += injected;
      caught_total += caught;
      std::string why;
      const bool ok = c->verify(&why);
      std::printf("%-12s %-22s injected=%-3zu caught=%-3zu %s\n", sc.name,
                  p.label.c_str(), injected, caught,
                  ok ? "OK" : ("MISMATCH: " + why).c_str());
      if (!ok) ++failures;
    }
  }
  if (injected_total == 0) {
    std::printf("smoke: no corruption was injected — the scenario tests "
                "nothing\n");
    return 1;
  }
  std::printf("smoke: %zu corruptions injected, %zu caught at commit, "
              "%d result mismatches\n",
              injected_total, caught_total, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();
  using namespace homp;
  const char* metrics_out = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) metrics_out = argv[++i];
  }
  obs::MetricsRegistry session;
  std::size_t session_offloads = 0;
  auto note = [&](const rt::OffloadResult& res) {
    if (metrics_out == nullptr) return;
    rt::collect_metrics(res, session);
    ++session_offloads;
  };
  auto rt = rt::Runtime::from_builtin("gpu4");
  const auto devices = rt.all_devices();
  const std::string kernel_name = "matvec";
  const long long n = kern::paper_size(kernel_name);
  auto c = kern::make_case(kernel_name, n, /*materialize=*/false);

  const double rates[] = {0.0, 0.01, 0.05};

  std::printf("{\n  \"kernel\": \"%s\",\n  \"devices\": %zu,\n"
              "  \"fault_rates\": [0, 0.01, 0.05],\n  \"algorithms\": [\n",
              bench::kernel_label(kernel_name, n).c_str(), devices.size());

  const auto policies = bench::seven_policies();
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& p = policies[i];
    double base_time = 0.0;
    std::string runs;
    for (double rate : rates) {
      const auto res = run_with_faults(rt, *c, devices, p, rate, -1.0);
      note(res);
      if (rate == 0.0) base_time = res.total_time;
      std::size_t retries = 0;
      for (const auto& d : res.devices) retries += d.retries;
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "      {\"rate\": %g, \"time_ms\": %.6f, "
                    "\"slowdown\": %.4f, \"faults\": %zu, "
                    "\"retries\": %zu, \"degraded\": %s}",
                    rate, res.total_time * 1e3,
                    base_time > 0.0 ? res.total_time / base_time : 1.0,
                    res.fault_events.size(), retries,
                    res.degraded ? "true" : "false");
      runs += buf;
      runs += ",\n";
    }
    // Permanent loss of one device at half the fault-free makespan: the
    // survivors absorb the orphaned iterations.
    const auto loss =
        run_with_faults(rt, *c, devices, p, 0.0, base_time * 0.5);
    note(loss);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "      {\"scenario\": \"device_loss\", \"time_ms\": %.6f, "
                  "\"slowdown\": %.4f, \"degraded\": %s}",
                  loss.total_time * 1e3,
                  base_time > 0.0 ? loss.total_time / base_time : 1.0,
                  loss.degraded ? "true" : "false");
    runs += buf;
    runs += ",\n";
    // One device's first kernel hangs: the watchdog speculates the chunk
    // onto a survivor and hard-kills the stuck device. The speculative
    // path keeps the slowdown well under the 2x a naive restart costs.
    const auto hang = run_with_straggler(rt, *c, devices, p,
                                         sim::FaultKind::kHang, 0.0);
    note(hang);
    runs += scenario_json("hang", hang, base_time);
    runs += ",\n";
    // One device latches a sustained 16x degrade: the tardiness circuit
    // breaker quarantines it, probation may re-admit (and re-quarantine)
    // it, and the survivors absorb the rest.
    const auto straggler = run_with_straggler(
        rt, *c, devices, p, sim::FaultKind::kDegrade, 16.0);
    note(straggler);
    runs += scenario_json("degrade_16x", straggler, base_time);
    runs += ",\n";
    // 1% of transfers and kernel results silently bit-flipped on every
    // device: checksummed verified commits discard and re-execute the
    // damaged chunks, so the cost is bounded re-execution time.
    const auto corrupt =
        run_with_corruption(rt, *c, devices, p, 0.01, /*bodies=*/false);
    note(corrupt);
    runs += corruption_json(corrupt, base_time);
    std::printf("    {\"algorithm\": \"%s\", \"runs\": [\n%s\n    ]}%s\n",
                p.label.c_str(), runs.c_str(),
                i + 1 < policies.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  if (metrics_out != nullptr) {
    rt::write_registry_file(session, metrics_out);
    std::fprintf(stderr, "session metrics (%zu offloads) written to %s\n",
                 session_offloads, metrics_out);
  }
  return 0;
}
