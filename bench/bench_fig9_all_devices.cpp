// Figure 9: Offloading Execution Time (ms) on 2 CPUs, 2 K80 GPUs and
// 2 MICs Using Different Loop Distribution Policies and Using
// CUTOFF_RATIO(15%).
//
// Expected shape (§VI-C): with strongly heterogeneous devices
// SCHED_DYNAMIC yields decent performance for most kernels, and the final
// column (minimum time with the 15% CUTOFF applied) improves on the
// no-cutoff times for most kernels by dropping weak contributors.

#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  bench::print_time_grid(
      rt, rt.all_devices(),
      "Figure 9 — offloading execution time on 2x CPU + 4x K40 + 2x Phi",
      /*cutoff_column=*/true);
  return 0;
}
