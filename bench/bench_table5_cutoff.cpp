// Table V: Speedup Using CUTOFF — per kernel, the surviving device set
// and the speedup of (best policy with 15% CUTOFF) over (the same policy
// without CUTOFF), on the full 7-device machine.
//
// Paper rows:
//   axpy-10M      2 CPU + 4 GPUs    1.35
//   bm2d-256      2 CPU + 4 GPUs    1.01
//   matmul-6144   4 GPUs            2.68
//   matvec-48k    4 GPUs            0.56   (CUTOFF hurts here)
//   stencil2d-256 4 GPUs            3.43
//   sum-300M      2 CPUs + 4 GPUs   2.09

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("full");
  const auto devices = rt.all_devices();
  std::printf("Table V — speedup using CUTOFF (15%% = 100/7, one host "
              "device + 4 GPUs + 2 MICs)\n\n");

  TextTable t({"benchmark", "devices after CUTOFF", "CUTOFF speedup",
               "max speedup (any algo)", "paper speedup"});
  const std::pair<const char*, double> paper[] = {
      {"axpy", 1.35},   {"bm2d", 1.01}, {"matmul", 2.68},
      {"matvec", 0.56}, {"stencil2d", 3.43}, {"sum", 2.09},
  };
  for (const auto& [name, paper_speedup] : paper) {
    const long long n = kern::paper_size(name);
    auto c = kern::make_case(name, n, false);

    // The paper reports the best cutoff-capable algorithm per kernel.
    double best_with = 1e300, best_without = 1e300;
    double max_per_algo_speedup = 0.0;
    const rt::OffloadResult* chosen = nullptr;
    rt::OffloadResult chosen_res;
    for (const auto& p : bench::seven_policies(0.15)) {
      if (p.cutoff == 0.0) continue;  // cutoff applies to 4 algorithms
      auto with = bench::run_policy(rt, *c, devices, p);
      bench::PolicyRun no_cut = p;
      no_cut.cutoff = 0.0;
      auto without = bench::run_policy(rt, *c, devices, no_cut);
      max_per_algo_speedup = std::max(
          max_per_algo_speedup, without.total_time / with.total_time);
      if (with.total_time < best_with) {
        best_with = with.total_time;
        best_without = without.total_time;
        chosen_res = with;
        chosen = &chosen_res;
      }
    }
    std::string kept;
    int cpus = 0, gpus = 0, mics = 0;
    if (chosen != nullptr && chosen->has_cutoff) {
      for (std::size_t i = 0; i < chosen->devices.size(); ++i) {
        if (!chosen->cutoff.selected[i]) continue;
        const auto& d = rt.machine().devices[chosen->devices[i].device_id];
        if (d.type == mach::DeviceType::kHost) ++cpus;
        if (d.type == mach::DeviceType::kNvGpu) ++gpus;
        if (d.type == mach::DeviceType::kMic) ++mics;
      }
    }
    if (cpus) kept += "2 CPU";  // the host device is the 2-socket pair
    if (gpus) kept += (kept.empty() ? "" : " + ") + std::to_string(gpus) +
                      " GPUs";
    if (mics) kept += (kept.empty() ? "" : " + ") + std::to_string(mics) +
                      " MICs";
    if (kept.empty()) kept = "(none dropped)";
    t.row()
        .cell(bench::kernel_label(name, n))
        .cell(kept)
        .cell(best_without / best_with, 2)
        .cell(max_per_algo_speedup, 2)
        .cell(paper_speedup, 2);
  }
  t.print(std::cout);
  std::printf(
      "\nnote: speedup = best cutoff-capable policy without CUTOFF divided\n"
      "by the same with 15%% CUTOFF. The paper's matvec-48k row (0.56)\n"
      "shows CUTOFF can hurt when the model mispredicts contributions;\n"
      "any value < 1 here reproduces that phenomenon.\n");
  return 0;
}
