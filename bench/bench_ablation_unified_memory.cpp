// Ablation for the §V-C claim: "maximum of 10 and 18 times slowdown in
// our BLAS examples" when using CUDA unified memory instead of explicit
// data movement. We run the BLAS kernels (axpy, matvec, matmul) plus the
// rest under both mapping modes on the 4-GPU machine.

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("gpu4");
  const auto devices = rt.accelerators();
  std::printf("Unified-memory ablation (§V-C) on 4x K40, BLOCK policy\n\n");

  TextTable t({"kernel", "explicit copies (ms)", "unified memory (ms)",
               "slowdown"});
  double blas_max = 0.0;
  bench::PolicyRun block{sched::AlgorithmKind::kBlock, 0.0, "BLOCK"};
  for (const auto& name : kern::all_kernel_names()) {
    const long long n = kern::paper_size(name);
    auto c = kern::make_case(name, n, false);
    const double t_explicit =
        bench::run_policy(rt, *c, devices, block, false).total_time;
    const double t_unified =
        bench::run_policy(rt, *c, devices, block, true).total_time;
    const double slowdown = t_unified / t_explicit;
    if (name == "axpy" || name == "matvec" || name == "matmul") {
      blas_max = std::max(blas_max, slowdown);
    }
    t.row()
        .cell(bench::kernel_label(name, n))
        .cell(t_explicit * 1e3, 3)
        .cell(t_unified * 1e3, 3)
        .cell(slowdown, 2);
  }
  t.print(std::cout);
  std::printf("\nmax BLAS slowdown: %.1fx (paper: 10-18x). This is why the\n"
              "runtime defaults to explicit movement unless the program\n"
              "asks for unified memory.\n",
              blas_max);
  return 0;
}
