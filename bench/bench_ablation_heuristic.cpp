// Ablation of the §IV-D/§VI-D algorithm-selection heuristic: compare the
// heuristic's pick against every algorithm (the oracle) for each kernel x
// machine, reporting the regret. Substantiates the evaluation-summary
// rules (BLOCK/MODEL_1 for compute-intensive, SCHED_DYNAMIC for balanced,
// MODEL_2 for data-intensive).

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  std::printf("Heuristic-selection ablation: pick vs oracle across "
              "machines\n\n");
  double worst_regret = 0.0;
  std::vector<double> regrets;
  for (const std::string machine : {"gpu4", "cpu-mic", "full"}) {
    auto rt = rt::Runtime::from_builtin(machine);
    const auto devices =
        machine == "gpu4" ? rt.accelerators() : rt.all_devices();
    TextTable t({"kernel", "pick", "pick (ms)", "oracle", "oracle (ms)",
                 "regret %"});
    for (const auto& name : kern::all_kernel_names()) {
      const long long n = kern::paper_size(name);
      auto c = kern::make_case(name, n, false);

      double oracle_t = 1e300;
      std::string oracle_label;
      for (const auto& p : bench::seven_policies()) {
        const double ti = bench::run_policy(rt, *c, devices, p).total_time;
        if (ti < oracle_t) {
          oracle_t = ti;
          oracle_label = p.label;
        }
      }

      rt::OffloadOptions o;
      o.device_ids = devices;
      o.auto_select_algorithm = true;
      o.execute_bodies = false;
      auto maps = c->maps();
      auto kernel = c->kernel();
      auto picked = rt.offload(kernel, maps, o);
      const double regret =
          (picked.total_time - oracle_t) / oracle_t * 100.0;
      regrets.push_back(regret);
      worst_regret = std::max(worst_regret, regret);
      t.row()
          .cell(bench::kernel_label(name, n))
          .cell(to_string(picked.algorithm_used))
          .cell(picked.total_time * 1e3, 3)
          .cell(oracle_label)
          .cell(oracle_t * 1e3, 3)
          .cell(regret, 1);
    }
    std::printf("--- machine %s (%zu devices) ---\n", machine.c_str(),
                devices.size());
    t.print(std::cout);
    std::printf("\n");
  }
  double sum = 0.0;
  for (double r : regrets) sum += r;
  std::printf("mean regret %.1f%%, worst %.1f%% — the heuristic costs "
              "little while avoiding per-kernel tuning.\n",
              sum / regrets.size(), worst_regret);
  return 0;
}
