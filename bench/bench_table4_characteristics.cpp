// Table IV: Benchmark Characteristics — MemComp and DataComp of the six
// kernels, computed from our kernel definitions next to the paper's
// stated values.

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "model/heuristic.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  std::printf("Table IV — benchmark characteristics (REAL elements per "
              "FLOP)\n\n");
  TextTable t({"kernel", "MemComp (ours)", "MemComp (paper)",
               "DataComp (ours)", "DataComp (paper)", "class"});
  struct Row {
    const char* name;
    const char* paper_mem;
    const char* paper_data;
  };
  const Row rows[] = {
      {"axpy", "1.5", "1.5"},
      {"matvec", "1 + 0.5/N", "0.5 + 1/N"},
      {"matmul", "1.5/N", "1.5/N"},
      {"stencil2d", "0.5", "1/13"},
      {"sum", "1", "1"},
      {"bm2d", "0.5", "0.06"},
  };
  for (const auto& r : rows) {
    const long long n = kern::paper_size(r.name);
    auto c = kern::make_case(r.name, n, false);
    const auto cost = c->kernel().cost;
    t.row()
        .cell(bench::kernel_label(r.name, n))
        .cell(cost.mem_comp(), 4)
        .cell(r.paper_mem)
        .cell(cost.data_comp(), 4)
        .cell(r.paper_data)
        .cell(to_string(model::classify(cost)));
  }
  t.print(std::cout);
  std::printf(
      "\nnote: bm2d's DataComp depends on the search-window accounting;\n"
      "ours counts the exact per-band transfer (cur + ref with halo +\n"
      "outputs) for a 16px block, +-8px search. The class column drives\n"
      "the §IV-D algorithm-selection heuristic.\n");
  return 0;
}
