// Within-device (teams) distribution ablation — the dist_schedule(teams:)
// level of the HOMP extension. Two effects the device model captures:
//
//  1. quantization: a kernel whose iterations cannot be split internally
//     wastes units when chunks are smaller than the unit count — which
//     penalizes fine-grained dynamic chunking on wide devices;
//  2. skew: under iteration-dependent work, teams BLOCK's critical path
//     is the heaviest contiguous subrange, teams CYCLIC averages it out.

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "support/harness.h"

int main() {
  using namespace homp;
  auto rt = rt::Runtime::from_builtin("gpu4");
  const auto devices = rt.accelerators();

  // --- 1. quantization vs chunk size -----------------------------------
  std::printf("teams quantization: indivisible iterations on 15-SM K40s\n");
  {
    TextTable t({"dynamic chunk %", "divisible (ms)", "indivisible (ms)",
                 "waste factor"});
    for (double frac : {0.005, 0.02, 0.10, 0.50}) {
      double times[2];
      for (int divisible = 1; divisible >= 0; --divisible) {
        rt::LoopKernel k;
        k.name = "teams-quant";
        k.iterations = dist::Range::of_size(2000);
        k.cost.flops_per_iter = 1e7;
        k.cost.mem_bytes_per_iter = 64.0;
        k.cost.transfer_bytes_per_iter = 64.0;
        k.cost.divisible_iterations = divisible != 0;
        auto c = kern::make_case("axpy", 2000, false);  // storage shape
        auto maps = c->maps();
        rt::OffloadOptions o;
        o.device_ids = devices;
        o.sched.kind = sched::AlgorithmKind::kDynamic;
        o.sched.dynamic_chunk_fraction = frac;
        o.execute_bodies = false;
        times[divisible] = rt.offload(k, maps, o).total_time;
      }
      t.row()
          .cell(frac * 100.0, 1)
          .cell(times[1] * 1e3, 3)
          .cell(times[0] * 1e3, 3)
          .cell(times[0] / times[1], 2);
    }
    t.print(std::cout);
  }

  // --- 2. skewed work: teams BLOCK vs CYCLIC ---------------------------
  std::printf("\nteams policy under skewed per-iteration work "
              "(triangular workload)\n");
  {
    TextTable t({"teams policy", "time (ms)"});
    for (auto pol : {dist::PolicyKind::kBlock, dist::PolicyKind::kCyclic}) {
      rt::LoopKernel k;
      k.name = "teams-skew";
      k.iterations = dist::Range::of_size(30'000);
      k.cost.flops_per_iter = 1e6;
      k.cost.mem_bytes_per_iter = 64.0;
      k.cost.transfer_bytes_per_iter = 64.0;
      k.work_factor = [](const dist::Range& r) {
        const double mid = 0.5 * static_cast<double>(r.lo + r.hi);
        return 0.05 + mid / 30'000.0;
      };
      auto c = kern::make_case("axpy", 30'000, false);
      auto maps = c->maps();
      rt::OffloadOptions o;
      o.device_ids = devices;
      o.sched.kind = sched::AlgorithmKind::kBlock;
      o.teams_policy = pol;
      o.execute_bodies = false;
      t.row()
          .cell(pol == dist::PolicyKind::kBlock ? "BLOCK" : "CYCLIC")
          .cell(rt.offload(k, maps, o).total_time * 1e3, 3);
    }
    t.print(std::cout);
  }
  return 0;
}
