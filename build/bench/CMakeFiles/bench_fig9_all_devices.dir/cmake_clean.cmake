file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_all_devices.dir/bench_fig9_all_devices.cpp.o"
  "CMakeFiles/bench_fig9_all_devices.dir/bench_fig9_all_devices.cpp.o.d"
  "bench_fig9_all_devices"
  "bench_fig9_all_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_all_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
