# Empty dependencies file for bench_fig9_all_devices.
# This may be replaced when dependencies are built.
