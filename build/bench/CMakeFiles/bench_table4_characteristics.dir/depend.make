# Empty dependencies file for bench_table4_characteristics.
# This may be replaced when dependencies are built.
