file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_algorithms.dir/bench_table2_algorithms.cpp.o"
  "CMakeFiles/bench_table2_algorithms.dir/bench_table2_algorithms.cpp.o.d"
  "bench_table2_algorithms"
  "bench_table2_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
