# Empty dependencies file for bench_table2_algorithms.
# This may be replaced when dependencies are built.
