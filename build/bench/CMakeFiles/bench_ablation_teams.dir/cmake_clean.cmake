file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_teams.dir/bench_ablation_teams.cpp.o"
  "CMakeFiles/bench_ablation_teams.dir/bench_ablation_teams.cpp.o.d"
  "bench_ablation_teams"
  "bench_ablation_teams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_teams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
