# Empty compiler generated dependencies file for bench_ablation_teams.
# This may be replaced when dependencies are built.
