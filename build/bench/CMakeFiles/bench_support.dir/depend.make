# Empty dependencies file for bench_support.
# This may be replaced when dependencies are built.
