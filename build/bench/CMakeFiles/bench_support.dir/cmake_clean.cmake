file(REMOVE_RECURSE
  "CMakeFiles/bench_support.dir/support/harness.cpp.o"
  "CMakeFiles/bench_support.dir/support/harness.cpp.o.d"
  "libbench_support.a"
  "libbench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
