file(REMOVE_RECURSE
  "libbench_support.a"
)
