file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cutoff_sweep.dir/bench_ablation_cutoff_sweep.cpp.o"
  "CMakeFiles/bench_ablation_cutoff_sweep.dir/bench_ablation_cutoff_sweep.cpp.o.d"
  "bench_ablation_cutoff_sweep"
  "bench_ablation_cutoff_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cutoff_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
