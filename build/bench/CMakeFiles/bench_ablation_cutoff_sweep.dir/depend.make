# Empty dependencies file for bench_ablation_cutoff_sweep.
# This may be replaced when dependencies are built.
