file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_cutoff.dir/bench_table5_cutoff.cpp.o"
  "CMakeFiles/bench_table5_cutoff.dir/bench_table5_cutoff.cpp.o.d"
  "bench_table5_cutoff"
  "bench_table5_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
