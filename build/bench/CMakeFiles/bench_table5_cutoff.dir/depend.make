# Empty dependencies file for bench_table5_cutoff.
# This may be replaced when dependencies are built.
