file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_runtime.dir/bench_micro_runtime.cpp.o"
  "CMakeFiles/bench_micro_runtime.dir/bench_micro_runtime.cpp.o.d"
  "bench_micro_runtime"
  "bench_micro_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
