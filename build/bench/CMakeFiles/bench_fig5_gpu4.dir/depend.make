# Empty dependencies file for bench_fig5_gpu4.
# This may be replaced when dependencies are built.
