file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_gpu4.dir/bench_fig5_gpu4.cpp.o"
  "CMakeFiles/bench_fig5_gpu4.dir/bench_fig5_gpu4.cpp.o.d"
  "bench_fig5_gpu4"
  "bench_fig5_gpu4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gpu4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
