file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_heuristic.dir/bench_ablation_heuristic.cpp.o"
  "CMakeFiles/bench_ablation_heuristic.dir/bench_ablation_heuristic.cpp.o.d"
  "bench_ablation_heuristic"
  "bench_ablation_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
