# Empty compiler generated dependencies file for bench_ablation_baselines.
# This may be replaced when dependencies are built.
