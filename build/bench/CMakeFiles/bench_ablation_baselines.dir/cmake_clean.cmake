file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_baselines.dir/bench_ablation_baselines.cpp.o"
  "CMakeFiles/bench_ablation_baselines.dir/bench_ablation_baselines.cpp.o.d"
  "bench_ablation_baselines"
  "bench_ablation_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
