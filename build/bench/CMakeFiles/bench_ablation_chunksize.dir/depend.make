# Empty dependencies file for bench_ablation_chunksize.
# This may be replaced when dependencies are built.
