file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chunksize.dir/bench_ablation_chunksize.cpp.o"
  "CMakeFiles/bench_ablation_chunksize.dir/bench_ablation_chunksize.cpp.o.d"
  "bench_ablation_chunksize"
  "bench_ablation_chunksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
