file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_model_error.dir/bench_ablation_model_error.cpp.o"
  "CMakeFiles/bench_ablation_model_error.dir/bench_ablation_model_error.cpp.o.d"
  "bench_ablation_model_error"
  "bench_ablation_model_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_model_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
