# Empty dependencies file for bench_ablation_model_error.
# This may be replaced when dependencies are built.
