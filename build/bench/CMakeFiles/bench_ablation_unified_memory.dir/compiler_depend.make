# Empty compiler generated dependencies file for bench_ablation_unified_memory.
# This may be replaced when dependencies are built.
