file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unified_memory.dir/bench_ablation_unified_memory.cpp.o"
  "CMakeFiles/bench_ablation_unified_memory.dir/bench_ablation_unified_memory.cpp.o.d"
  "bench_ablation_unified_memory"
  "bench_ablation_unified_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unified_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
