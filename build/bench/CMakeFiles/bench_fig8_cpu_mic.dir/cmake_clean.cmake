file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cpu_mic.dir/bench_fig8_cpu_mic.cpp.o"
  "CMakeFiles/bench_fig8_cpu_mic.dir/bench_fig8_cpu_mic.cpp.o.d"
  "bench_fig8_cpu_mic"
  "bench_fig8_cpu_mic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cpu_mic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
