# Empty dependencies file for bench_fig8_cpu_mic.
# This may be replaced when dependencies are built.
