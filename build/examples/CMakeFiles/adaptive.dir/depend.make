# Empty dependencies file for adaptive.
# This may be replaced when dependencies are built.
