file(REMOVE_RECURSE
  "CMakeFiles/adaptive.dir/adaptive.cpp.o"
  "CMakeFiles/adaptive.dir/adaptive.cpp.o.d"
  "adaptive"
  "adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
