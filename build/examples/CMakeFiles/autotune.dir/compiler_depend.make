# Empty compiler generated dependencies file for autotune.
# This may be replaced when dependencies are built.
