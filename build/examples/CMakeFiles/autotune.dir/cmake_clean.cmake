file(REMOVE_RECURSE
  "CMakeFiles/autotune.dir/autotune.cpp.o"
  "CMakeFiles/autotune.dir/autotune.cpp.o.d"
  "autotune"
  "autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
