# Empty compiler generated dependencies file for jacobi.
# This may be replaced when dependencies are built.
