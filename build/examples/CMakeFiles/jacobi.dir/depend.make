# Empty dependencies file for jacobi.
# This may be replaced when dependencies are built.
