file(REMOVE_RECURSE
  "CMakeFiles/jacobi.dir/jacobi.cpp.o"
  "CMakeFiles/jacobi.dir/jacobi.cpp.o.d"
  "jacobi"
  "jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
