file(REMOVE_RECURSE
  "CMakeFiles/source_kernels.dir/source_kernels.cpp.o"
  "CMakeFiles/source_kernels.dir/source_kernels.cpp.o.d"
  "source_kernels"
  "source_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
