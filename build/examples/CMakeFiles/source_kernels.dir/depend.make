# Empty dependencies file for source_kernels.
# This may be replaced when dependencies are built.
