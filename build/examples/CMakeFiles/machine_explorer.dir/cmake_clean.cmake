file(REMOVE_RECURSE
  "CMakeFiles/machine_explorer.dir/machine_explorer.cpp.o"
  "CMakeFiles/machine_explorer.dir/machine_explorer.cpp.o.d"
  "machine_explorer"
  "machine_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
