# Empty compiler generated dependencies file for machine_explorer.
# This may be replaced when dependencies are built.
