# Empty dependencies file for block_matching.
# This may be replaced when dependencies are built.
