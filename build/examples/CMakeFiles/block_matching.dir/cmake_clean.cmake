file(REMOVE_RECURSE
  "CMakeFiles/block_matching.dir/block_matching.cpp.o"
  "CMakeFiles/block_matching.dir/block_matching.cpp.o.d"
  "block_matching"
  "block_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
