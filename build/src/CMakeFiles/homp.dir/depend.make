# Empty dependencies file for homp.
# This may be replaced when dependencies are built.
