file(REMOVE_RECURSE
  "libhomp.a"
)
