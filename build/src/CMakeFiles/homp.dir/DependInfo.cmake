
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capi/homp.cpp" "src/CMakeFiles/homp.dir/capi/homp.cpp.o" "gcc" "src/CMakeFiles/homp.dir/capi/homp.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/homp.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/homp.dir/common/error.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/homp.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/homp.dir/common/log.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/homp.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/homp.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/homp.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/homp.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/homp.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/homp.dir/common/table.cpp.o.d"
  "/root/repo/src/dist/align.cpp" "src/CMakeFiles/homp.dir/dist/align.cpp.o" "gcc" "src/CMakeFiles/homp.dir/dist/align.cpp.o.d"
  "/root/repo/src/dist/distribution.cpp" "src/CMakeFiles/homp.dir/dist/distribution.cpp.o" "gcc" "src/CMakeFiles/homp.dir/dist/distribution.cpp.o.d"
  "/root/repo/src/dist/policy.cpp" "src/CMakeFiles/homp.dir/dist/policy.cpp.o" "gcc" "src/CMakeFiles/homp.dir/dist/policy.cpp.o.d"
  "/root/repo/src/dist/range.cpp" "src/CMakeFiles/homp.dir/dist/range.cpp.o" "gcc" "src/CMakeFiles/homp.dir/dist/range.cpp.o.d"
  "/root/repo/src/kernels/axpy.cpp" "src/CMakeFiles/homp.dir/kernels/axpy.cpp.o" "gcc" "src/CMakeFiles/homp.dir/kernels/axpy.cpp.o.d"
  "/root/repo/src/kernels/bm2d.cpp" "src/CMakeFiles/homp.dir/kernels/bm2d.cpp.o" "gcc" "src/CMakeFiles/homp.dir/kernels/bm2d.cpp.o.d"
  "/root/repo/src/kernels/matmul.cpp" "src/CMakeFiles/homp.dir/kernels/matmul.cpp.o" "gcc" "src/CMakeFiles/homp.dir/kernels/matmul.cpp.o.d"
  "/root/repo/src/kernels/matvec.cpp" "src/CMakeFiles/homp.dir/kernels/matvec.cpp.o" "gcc" "src/CMakeFiles/homp.dir/kernels/matvec.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/homp.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/homp.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/kernels/stencil2d.cpp" "src/CMakeFiles/homp.dir/kernels/stencil2d.cpp.o" "gcc" "src/CMakeFiles/homp.dir/kernels/stencil2d.cpp.o.d"
  "/root/repo/src/kernels/sum.cpp" "src/CMakeFiles/homp.dir/kernels/sum.cpp.o" "gcc" "src/CMakeFiles/homp.dir/kernels/sum.cpp.o.d"
  "/root/repo/src/lang/analyze.cpp" "src/CMakeFiles/homp.dir/lang/analyze.cpp.o" "gcc" "src/CMakeFiles/homp.dir/lang/analyze.cpp.o.d"
  "/root/repo/src/lang/compile.cpp" "src/CMakeFiles/homp.dir/lang/compile.cpp.o" "gcc" "src/CMakeFiles/homp.dir/lang/compile.cpp.o.d"
  "/root/repo/src/lang/interp.cpp" "src/CMakeFiles/homp.dir/lang/interp.cpp.o" "gcc" "src/CMakeFiles/homp.dir/lang/interp.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/homp.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/homp.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/token.cpp" "src/CMakeFiles/homp.dir/lang/token.cpp.o" "gcc" "src/CMakeFiles/homp.dir/lang/token.cpp.o.d"
  "/root/repo/src/machine/device.cpp" "src/CMakeFiles/homp.dir/machine/device.cpp.o" "gcc" "src/CMakeFiles/homp.dir/machine/device.cpp.o.d"
  "/root/repo/src/machine/parser.cpp" "src/CMakeFiles/homp.dir/machine/parser.cpp.o" "gcc" "src/CMakeFiles/homp.dir/machine/parser.cpp.o.d"
  "/root/repo/src/machine/profiles.cpp" "src/CMakeFiles/homp.dir/machine/profiles.cpp.o" "gcc" "src/CMakeFiles/homp.dir/machine/profiles.cpp.o.d"
  "/root/repo/src/memory/data_env.cpp" "src/CMakeFiles/homp.dir/memory/data_env.cpp.o" "gcc" "src/CMakeFiles/homp.dir/memory/data_env.cpp.o.d"
  "/root/repo/src/memory/device_mapping.cpp" "src/CMakeFiles/homp.dir/memory/device_mapping.cpp.o" "gcc" "src/CMakeFiles/homp.dir/memory/device_mapping.cpp.o.d"
  "/root/repo/src/memory/map_spec.cpp" "src/CMakeFiles/homp.dir/memory/map_spec.cpp.o" "gcc" "src/CMakeFiles/homp.dir/memory/map_spec.cpp.o.d"
  "/root/repo/src/model/heuristic.cpp" "src/CMakeFiles/homp.dir/model/heuristic.cpp.o" "gcc" "src/CMakeFiles/homp.dir/model/heuristic.cpp.o.d"
  "/root/repo/src/model/loop_model.cpp" "src/CMakeFiles/homp.dir/model/loop_model.cpp.o" "gcc" "src/CMakeFiles/homp.dir/model/loop_model.cpp.o.d"
  "/root/repo/src/pragma/parse.cpp" "src/CMakeFiles/homp.dir/pragma/parse.cpp.o" "gcc" "src/CMakeFiles/homp.dir/pragma/parse.cpp.o.d"
  "/root/repo/src/runtime/data_region.cpp" "src/CMakeFiles/homp.dir/runtime/data_region.cpp.o" "gcc" "src/CMakeFiles/homp.dir/runtime/data_region.cpp.o.d"
  "/root/repo/src/runtime/offload_exec.cpp" "src/CMakeFiles/homp.dir/runtime/offload_exec.cpp.o" "gcc" "src/CMakeFiles/homp.dir/runtime/offload_exec.cpp.o.d"
  "/root/repo/src/runtime/options.cpp" "src/CMakeFiles/homp.dir/runtime/options.cpp.o" "gcc" "src/CMakeFiles/homp.dir/runtime/options.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/homp.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/homp.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/CMakeFiles/homp.dir/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/homp.dir/runtime/trace.cpp.o.d"
  "/root/repo/src/sched/algorithm.cpp" "src/CMakeFiles/homp.dir/sched/algorithm.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sched/algorithm.cpp.o.d"
  "/root/repo/src/sched/chunk_sched.cpp" "src/CMakeFiles/homp.dir/sched/chunk_sched.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sched/chunk_sched.cpp.o.d"
  "/root/repo/src/sched/extended_sched.cpp" "src/CMakeFiles/homp.dir/sched/extended_sched.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sched/extended_sched.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/CMakeFiles/homp.dir/sched/factory.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sched/factory.cpp.o.d"
  "/root/repo/src/sched/partition_sched.cpp" "src/CMakeFiles/homp.dir/sched/partition_sched.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sched/partition_sched.cpp.o.d"
  "/root/repo/src/sched/profile_sched.cpp" "src/CMakeFiles/homp.dir/sched/profile_sched.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sched/profile_sched.cpp.o.d"
  "/root/repo/src/sched/selector.cpp" "src/CMakeFiles/homp.dir/sched/selector.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sched/selector.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/homp.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/CMakeFiles/homp.dir/sim/link.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sim/link.cpp.o.d"
  "/root/repo/src/sim/sync.cpp" "src/CMakeFiles/homp.dir/sim/sync.cpp.o" "gcc" "src/CMakeFiles/homp.dir/sim/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
