# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("machine")
subdirs("dist")
subdirs("memory")
subdirs("model")
subdirs("sched")
subdirs("runtime")
subdirs("pragma")
subdirs("kernels")
subdirs("capi")
subdirs("lang")
