# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_machine "/root/repo/build/tests/test_machine")
set_tests_properties(test_machine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dist "/root/repo/build/tests/test_dist")
set_tests_properties(test_dist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;24;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memory "/root/repo/build/tests/test_memory")
set_tests_properties(test_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;30;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build/tests/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;35;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sched "/root/repo/build/tests/test_sched")
set_tests_properties(test_sched PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;40;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pragma "/root/repo/build/tests/test_pragma")
set_tests_properties(test_pragma PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;49;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;54;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;62;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_capi "/root/repo/build/tests/test_capi")
set_tests_properties(test_capi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;69;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lang "/root/repo/build/tests/test_lang")
set_tests_properties(test_lang PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;72;homp_add_test;/root/repo/tests/CMakeLists.txt;0;")
