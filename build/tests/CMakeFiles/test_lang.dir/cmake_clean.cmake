file(REMOVE_RECURSE
  "CMakeFiles/test_lang.dir/lang/analyze_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang/analyze_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang/compile_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang/compile_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang/lexer_parser_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang/lexer_parser_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang/region_program_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang/region_program_test.cpp.o.d"
  "test_lang"
  "test_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
