
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/breakdown_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/breakdown_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/breakdown_test.cpp.o.d"
  "/root/repo/tests/runtime/data_region_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/data_region_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/data_region_test.cpp.o.d"
  "/root/repo/tests/runtime/failure_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/failure_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/failure_test.cpp.o.d"
  "/root/repo/tests/runtime/offload_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/offload_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/offload_test.cpp.o.d"
  "/root/repo/tests/runtime/teams_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/teams_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/teams_test.cpp.o.d"
  "/root/repo/tests/runtime/trace_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/homp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
