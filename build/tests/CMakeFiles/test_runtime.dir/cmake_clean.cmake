file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/breakdown_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/breakdown_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/data_region_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/data_region_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/failure_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/failure_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/offload_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/offload_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/teams_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/teams_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/trace_test.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/trace_test.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
