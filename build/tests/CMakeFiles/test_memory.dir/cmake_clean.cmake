file(REMOVE_RECURSE
  "CMakeFiles/test_memory.dir/memory/host_array_test.cpp.o"
  "CMakeFiles/test_memory.dir/memory/host_array_test.cpp.o.d"
  "CMakeFiles/test_memory.dir/memory/mapping_test.cpp.o"
  "CMakeFiles/test_memory.dir/memory/mapping_test.cpp.o.d"
  "CMakeFiles/test_memory.dir/memory/property_test.cpp.o"
  "CMakeFiles/test_memory.dir/memory/property_test.cpp.o.d"
  "test_memory"
  "test_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
