file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/algorithm_test.cpp.o"
  "CMakeFiles/test_sched.dir/sched/algorithm_test.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/chunk_test.cpp.o"
  "CMakeFiles/test_sched.dir/sched/chunk_test.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/extended_test.cpp.o"
  "CMakeFiles/test_sched.dir/sched/extended_test.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/partition_test.cpp.o"
  "CMakeFiles/test_sched.dir/sched/partition_test.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/profile_test.cpp.o"
  "CMakeFiles/test_sched.dir/sched/profile_test.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/property_test.cpp.o"
  "CMakeFiles/test_sched.dir/sched/property_test.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/selector_test.cpp.o"
  "CMakeFiles/test_sched.dir/sched/selector_test.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
