
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/algorithm_test.cpp" "tests/CMakeFiles/test_sched.dir/sched/algorithm_test.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/algorithm_test.cpp.o.d"
  "/root/repo/tests/sched/chunk_test.cpp" "tests/CMakeFiles/test_sched.dir/sched/chunk_test.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/chunk_test.cpp.o.d"
  "/root/repo/tests/sched/extended_test.cpp" "tests/CMakeFiles/test_sched.dir/sched/extended_test.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/extended_test.cpp.o.d"
  "/root/repo/tests/sched/partition_test.cpp" "tests/CMakeFiles/test_sched.dir/sched/partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/partition_test.cpp.o.d"
  "/root/repo/tests/sched/profile_test.cpp" "tests/CMakeFiles/test_sched.dir/sched/profile_test.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/profile_test.cpp.o.d"
  "/root/repo/tests/sched/property_test.cpp" "tests/CMakeFiles/test_sched.dir/sched/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/property_test.cpp.o.d"
  "/root/repo/tests/sched/selector_test.cpp" "tests/CMakeFiles/test_sched.dir/sched/selector_test.cpp.o" "gcc" "tests/CMakeFiles/test_sched.dir/sched/selector_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/homp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
