file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/cutoff_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/cutoff_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/jacobi_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/jacobi_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/kernels_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/kernels_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/misc_coverage_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/misc_coverage_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/schedulers_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/schedulers_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
