
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/cutoff_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/cutoff_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/cutoff_test.cpp.o.d"
  "/root/repo/tests/integration/jacobi_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/jacobi_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/jacobi_test.cpp.o.d"
  "/root/repo/tests/integration/kernels_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/kernels_test.cpp.o.d"
  "/root/repo/tests/integration/misc_coverage_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/misc_coverage_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/misc_coverage_test.cpp.o.d"
  "/root/repo/tests/integration/schedulers_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/schedulers_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/schedulers_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/homp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
