file(REMOVE_RECURSE
  "CMakeFiles/test_capi.dir/capi/capi_test.cpp.o"
  "CMakeFiles/test_capi.dir/capi/capi_test.cpp.o.d"
  "test_capi"
  "test_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
