
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/prng_test.cpp" "tests/CMakeFiles/test_common.dir/common/prng_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/prng_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/test_common.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/common/strings_test.cpp" "tests/CMakeFiles/test_common.dir/common/strings_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/strings_test.cpp.o.d"
  "/root/repo/tests/common/table_test.cpp" "tests/CMakeFiles/test_common.dir/common/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/homp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
