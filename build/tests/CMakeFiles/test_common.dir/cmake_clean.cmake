file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/prng_test.cpp.o"
  "CMakeFiles/test_common.dir/common/prng_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/stats_test.cpp.o"
  "CMakeFiles/test_common.dir/common/stats_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/strings_test.cpp.o"
  "CMakeFiles/test_common.dir/common/strings_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/table_test.cpp.o"
  "CMakeFiles/test_common.dir/common/table_test.cpp.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
