file(REMOVE_RECURSE
  "CMakeFiles/test_machine.dir/machine/device_test.cpp.o"
  "CMakeFiles/test_machine.dir/machine/device_test.cpp.o.d"
  "CMakeFiles/test_machine.dir/machine/machine_files_test.cpp.o"
  "CMakeFiles/test_machine.dir/machine/machine_files_test.cpp.o.d"
  "CMakeFiles/test_machine.dir/machine/parser_test.cpp.o"
  "CMakeFiles/test_machine.dir/machine/parser_test.cpp.o.d"
  "CMakeFiles/test_machine.dir/machine/profiles_test.cpp.o"
  "CMakeFiles/test_machine.dir/machine/profiles_test.cpp.o.d"
  "test_machine"
  "test_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
