file(REMOVE_RECURSE
  "CMakeFiles/test_dist.dir/dist/align_test.cpp.o"
  "CMakeFiles/test_dist.dir/dist/align_test.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/distribution_test.cpp.o"
  "CMakeFiles/test_dist.dir/dist/distribution_test.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/policy_test.cpp.o"
  "CMakeFiles/test_dist.dir/dist/policy_test.cpp.o.d"
  "CMakeFiles/test_dist.dir/dist/range_test.cpp.o"
  "CMakeFiles/test_dist.dir/dist/range_test.cpp.o.d"
  "test_dist"
  "test_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
