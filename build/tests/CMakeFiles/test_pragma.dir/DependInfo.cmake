
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pragma/device_clause_test.cpp" "tests/CMakeFiles/test_pragma.dir/pragma/device_clause_test.cpp.o" "gcc" "tests/CMakeFiles/test_pragma.dir/pragma/device_clause_test.cpp.o.d"
  "/root/repo/tests/pragma/extended_algorithms_test.cpp" "tests/CMakeFiles/test_pragma.dir/pragma/extended_algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/test_pragma.dir/pragma/extended_algorithms_test.cpp.o.d"
  "/root/repo/tests/pragma/parse_test.cpp" "tests/CMakeFiles/test_pragma.dir/pragma/parse_test.cpp.o" "gcc" "tests/CMakeFiles/test_pragma.dir/pragma/parse_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/homp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
