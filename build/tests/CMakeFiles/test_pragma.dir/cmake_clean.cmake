file(REMOVE_RECURSE
  "CMakeFiles/test_pragma.dir/pragma/device_clause_test.cpp.o"
  "CMakeFiles/test_pragma.dir/pragma/device_clause_test.cpp.o.d"
  "CMakeFiles/test_pragma.dir/pragma/extended_algorithms_test.cpp.o"
  "CMakeFiles/test_pragma.dir/pragma/extended_algorithms_test.cpp.o.d"
  "CMakeFiles/test_pragma.dir/pragma/parse_test.cpp.o"
  "CMakeFiles/test_pragma.dir/pragma/parse_test.cpp.o.d"
  "test_pragma"
  "test_pragma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pragma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
