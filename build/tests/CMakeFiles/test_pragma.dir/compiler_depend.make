# Empty compiler generated dependencies file for test_pragma.
# This may be replaced when dependencies are built.
