
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/cost_test.cpp" "tests/CMakeFiles/test_model.dir/model/cost_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/cost_test.cpp.o.d"
  "/root/repo/tests/model/heuristic_test.cpp" "tests/CMakeFiles/test_model.dir/model/heuristic_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/heuristic_test.cpp.o.d"
  "/root/repo/tests/model/loop_model_test.cpp" "tests/CMakeFiles/test_model.dir/model/loop_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/model/loop_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/homp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
