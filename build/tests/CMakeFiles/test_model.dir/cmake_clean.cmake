file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/cost_test.cpp.o"
  "CMakeFiles/test_model.dir/model/cost_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/heuristic_test.cpp.o"
  "CMakeFiles/test_model.dir/model/heuristic_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/loop_model_test.cpp.o"
  "CMakeFiles/test_model.dir/model/loop_model_test.cpp.o.d"
  "test_model"
  "test_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
