#include "sched/profile_sched.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "dist/distribution.h"

namespace homp::sched {

ProfileScheduler::ProfileScheduler(const LoopContext& ctx, bool model_based,
                                   double sample_fraction,
                                   double cutoff_ratio, long long min_chunk)
    : cutoff_ratio_(cutoff_ratio) {
  HOMP_REQUIRE(ctx.num_devices() > 0, "no devices to schedule onto");
  HOMP_REQUIRE(sample_fraction > 0.0 && sample_fraction < 1.0,
               "sample fraction must be in (0, 1)");
  HOMP_REQUIRE(min_chunk >= 1, "min_chunk must be at least 1");
  const std::size_t m = ctx.num_devices();

  const long long n = ctx.loop.size();
  long long sample_total = std::max(
      static_cast<long long>(m) * min_chunk,
      static_cast<long long>(
          std::llround(sample_fraction * static_cast<double>(n))));
  sample_total = std::min(sample_total, n);
  const dist::Range sample_domain(ctx.loop.lo, ctx.loop.lo + sample_total);
  remaining_ = dist::Range(sample_domain.hi, ctx.loop.hi);

  dist::Distribution stage1 =
      model_based
          ? dist::Distribution::by_weights(
                sample_domain, model::model2_weights(ctx.kernel, ctx.devices))
          : dist::Distribution::block(sample_domain, m);
  sample_ = stage1.parts();

  handed_out_[0].assign(m, false);
  handed_out_[1].assign(m, false);
  rates_.assign(m, 0.0);
  reported_.assign(m, false);
  final_.assign(m, dist::Range());
}

std::optional<dist::Range> ProfileScheduler::next_chunk(int slot) {
  HOMP_ASSERT(slot >= 0 && static_cast<std::size_t>(slot) < sample_.size());
  const auto s = static_cast<std::size_t>(slot);
  auto& handed = handed_out_[stage_ - 1];
  if (handed[s]) return std::nullopt;
  handed[s] = true;
  const dist::Range chunk = stage_ == 1 ? sample_[s] : final_[s];
  if (chunk.empty()) {
    // A device with an empty sample has nothing to report; mark it so the
    // stage transition does not wait on it.
    if (stage_ == 1) reported_[s] = true;
    return std::nullopt;
  }
  ++issued_;
  return chunk;
}

bool ProfileScheduler::finished(int slot) const {
  HOMP_ASSERT(slot >= 0 && static_cast<std::size_t>(slot) < sample_.size());
  const auto s = static_cast<std::size_t>(slot);
  return stage_ == 2 && (handed_out_[1][s] || final_[s].empty());
}

void ProfileScheduler::report(int slot, const dist::Range& chunk,
                              double seconds) {
  if (stage_ != 1) return;  // stage-2 timings are not fed back
  const auto s = static_cast<std::size_t>(slot);
  HOMP_ASSERT(s < rates_.size());
  HOMP_REQUIRE(seconds >= 0.0, "negative chunk time reported");
  // Guard zero-duration samples (idealized devices on tiny chunks) with a
  // very small floor so the rate stays finite.
  rates_[s] = static_cast<double>(chunk.size()) / std::max(seconds, 1e-12);
  reported_[s] = true;
}

void ProfileScheduler::advance_stage() {
  HOMP_REQUIRE(stage_ == 1, "advance_stage called twice");
  for (std::size_t s = 0; s < reported_.size(); ++s) {
    HOMP_REQUIRE(reported_[s],
                 "stage barrier released before all samples reported");
  }
  stage_ = 2;

  double total_rate = 0.0;
  for (double r : rates_) total_rate += r;
  std::vector<double> weights;
  if (total_rate <= 0.0) {
    // No device demonstrated throughput (all samples empty) — fall back to
    // an even split.
    weights.assign(rates_.size(), 1.0 / static_cast<double>(rates_.size()));
    HOMP_WARN << "profiling produced no throughput data; falling back to "
                 "even distribution";
  } else {
    weights = model::weights_from_rates(rates_);
  }

  if (cutoff_ratio_ > 0.0) {
    cutoff_ = model::apply_cutoff(weights, cutoff_ratio_);
    has_cutoff_ = true;
    weights = cutoff_.weights;
    if (cutoff_.num_selected < static_cast<int>(rates_.size())) {
      HOMP_INFO << "profiling CUTOFF kept " << cutoff_.num_selected << "/"
                << rates_.size() << " devices for stage 2";
    }
  }
  stage2_weights_ = weights;
  final_ = dist::Distribution::by_weights(remaining_, weights).parts();
}

std::vector<double> ProfileScheduler::planned_weights() const {
  return stage2_weights_;
}

std::vector<dist::Range> ProfileScheduler::deactivate(int slot) {
  HOMP_ASSERT(slot >= 0 && static_cast<std::size_t>(slot) < sample_.size());
  const auto s = static_cast<std::size_t>(slot);
  std::vector<dist::Range> orphaned;
  if (stage_ == 1) {
    // The slot's unissued sample is orphaned; an issued-but-unfinished
    // sample is the runtime's to requeue. Either way the slot reports a
    // zero rate so the stage barrier can release without it and stage 2
    // plans it no work.
    if (!handed_out_[0][s] && !sample_[s].empty()) {
      orphaned.push_back(sample_[s]);
    }
    handed_out_[0][s] = true;
    rates_[s] = 0.0;
    reported_[s] = true;
  } else if (!handed_out_[1][s] && !final_[s].empty()) {
    orphaned.push_back(final_[s]);
  }
  handed_out_[1][s] = true;
  return orphaned;
}

}  // namespace homp::sched
