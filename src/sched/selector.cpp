#include "sched/selector.h"

#include <algorithm>

namespace homp::sched {

bool devices_homogeneous(
    const std::vector<model::DevicePredictionInput>& devices,
    double tolerance) {
  if (devices.size() <= 1) return true;
  auto spread_ok = [&](auto field) {
    double lo = field(devices.front());
    double hi = lo;
    for (const auto& d : devices) {
      lo = std::min(lo, field(d));
      hi = std::max(hi, field(d));
    }
    return hi <= lo * (1.0 + tolerance);
  };
  // A host among accelerators (no link vs link) is heterogeneous by
  // construction.
  for (const auto& d : devices) {
    if (d.has_link != devices.front().has_link) return false;
  }
  return spread_ok([](const auto& d) { return d.peak_flops; }) &&
         spread_ok([](const auto& d) { return d.peak_membw_Bps; }) &&
         (!devices.front().has_link ||
          spread_ok([](const auto& d) { return d.link_bandwidth_Bps; }));
}

AlgorithmKind select_algorithm(const model::KernelCostProfile& kernel,
                               bool homogeneous_devices) {
  switch (model::classify(kernel)) {
    case model::KernelClass::kComputeIntensive:
      return homogeneous_devices ? AlgorithmKind::kBlock
                                 : AlgorithmKind::kModel1Auto;
    case model::KernelClass::kBalanced:
      return AlgorithmKind::kDynamic;
    case model::KernelClass::kDataIntensive:
      return AlgorithmKind::kModel2Auto;
  }
  return AlgorithmKind::kBlock;
}

AlgorithmKind select_algorithm(
    const model::KernelCostProfile& kernel,
    const std::vector<model::DevicePredictionInput>& devices) {
  return select_algorithm(kernel, devices_homogeneous(devices));
}

}  // namespace homp::sched
