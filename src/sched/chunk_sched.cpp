#include "sched/chunk_sched.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace homp::sched {

bool SlotLiveness::deactivate(int slot, long long remaining) {
  HOMP_ASSERT(slot >= 0 && static_cast<std::size_t>(slot) < active_.size());
  if (!active_[static_cast<std::size_t>(slot)]) return false;
  active_[static_cast<std::size_t>(slot)] = false;
  --alive_;
  if (alive_ == 0 && remaining > 0) {
    throw OffloadError("deactivated the last active device with " +
                           std::to_string(remaining) +
                           " iterations still undistributed",
                       FailClass::kAllDevicesLost);
  }
  return true;
}

bool SlotLiveness::reactivate(int slot) {
  HOMP_ASSERT(slot >= 0 && static_cast<std::size_t>(slot) < active_.size());
  if (active_[static_cast<std::size_t>(slot)]) return false;
  active_[static_cast<std::size_t>(slot)] = true;
  ++alive_;
  return true;
}

DynamicScheduler::DynamicScheduler(const LoopContext& ctx,
                                   double chunk_fraction, long long min_chunk)
    : domain_(ctx.loop), cursor_(ctx.loop.lo), live_(ctx.num_devices()) {
  HOMP_REQUIRE(chunk_fraction > 0.0 && chunk_fraction <= 1.0,
               "dynamic chunk fraction must be in (0, 1]");
  HOMP_REQUIRE(min_chunk >= 1, "min_chunk must be at least 1");
  chunk_ = std::max(
      min_chunk,
      static_cast<long long>(std::llround(
          chunk_fraction * static_cast<double>(domain_.size()))));
}

std::optional<dist::Range> DynamicScheduler::next_chunk(int slot) {
  if (!live_.active(slot)) return std::nullopt;
  if (cursor_ >= domain_.hi) return std::nullopt;
  const long long hi = std::min(cursor_ + chunk_, domain_.hi);
  dist::Range r(cursor_, hi);
  cursor_ = hi;
  ++issued_;
  return r;
}

bool DynamicScheduler::finished(int slot) const {
  if (!live_.active(slot)) return true;
  return cursor_ >= domain_.hi;
}

std::vector<dist::Range> DynamicScheduler::deactivate(int slot) {
  // Shared cursor: nothing is reserved per slot, so nothing is orphaned;
  // the survivors keep draining the cursor.
  live_.deactivate(slot, domain_.hi - cursor_);
  return {};
}

void DynamicScheduler::reactivate(int slot) { live_.reactivate(slot); }

GuidedScheduler::GuidedScheduler(const LoopContext& ctx,
                                 double chunk_fraction, long long min_chunk)
    : domain_(ctx.loop),
      cursor_(ctx.loop.lo),
      fraction_(chunk_fraction),
      min_chunk_(min_chunk),
      live_(ctx.num_devices()) {
  HOMP_REQUIRE(chunk_fraction > 0.0 && chunk_fraction <= 1.0,
               "guided chunk fraction must be in (0, 1]");
  HOMP_REQUIRE(min_chunk >= 1, "min_chunk must be at least 1");
}

std::optional<dist::Range> GuidedScheduler::next_chunk(int slot) {
  if (!live_.active(slot)) return std::nullopt;
  if (cursor_ >= domain_.hi) return std::nullopt;
  const long long remaining = domain_.hi - cursor_;
  const long long size = std::min(
      remaining,
      std::max(min_chunk_,
               static_cast<long long>(std::ceil(
                   fraction_ * static_cast<double>(remaining)))));
  dist::Range r(cursor_, cursor_ + size);
  cursor_ += size;
  ++issued_;
  return r;
}

bool GuidedScheduler::finished(int slot) const {
  if (!live_.active(slot)) return true;
  return cursor_ >= domain_.hi;
}

std::vector<dist::Range> GuidedScheduler::deactivate(int slot) {
  live_.deactivate(slot, domain_.hi - cursor_);
  return {};
}

void GuidedScheduler::reactivate(int slot) { live_.reactivate(slot); }

}  // namespace homp::sched
