#include "sched/chunk_sched.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace homp::sched {

DynamicScheduler::DynamicScheduler(const LoopContext& ctx,
                                   double chunk_fraction, long long min_chunk)
    : domain_(ctx.loop), cursor_(ctx.loop.lo) {
  HOMP_REQUIRE(chunk_fraction > 0.0 && chunk_fraction <= 1.0,
               "dynamic chunk fraction must be in (0, 1]");
  HOMP_REQUIRE(min_chunk >= 1, "min_chunk must be at least 1");
  chunk_ = std::max(
      min_chunk,
      static_cast<long long>(std::llround(
          chunk_fraction * static_cast<double>(domain_.size()))));
}

std::optional<dist::Range> DynamicScheduler::next_chunk(int slot) {
  (void)slot;
  if (cursor_ >= domain_.hi) return std::nullopt;
  const long long hi = std::min(cursor_ + chunk_, domain_.hi);
  dist::Range r(cursor_, hi);
  cursor_ = hi;
  ++issued_;
  return r;
}

bool DynamicScheduler::finished(int slot) const {
  (void)slot;
  return cursor_ >= domain_.hi;
}

GuidedScheduler::GuidedScheduler(const LoopContext& ctx,
                                 double chunk_fraction, long long min_chunk)
    : domain_(ctx.loop),
      cursor_(ctx.loop.lo),
      fraction_(chunk_fraction),
      min_chunk_(min_chunk) {
  HOMP_REQUIRE(chunk_fraction > 0.0 && chunk_fraction <= 1.0,
               "guided chunk fraction must be in (0, 1]");
  HOMP_REQUIRE(min_chunk >= 1, "min_chunk must be at least 1");
}

std::optional<dist::Range> GuidedScheduler::next_chunk(int slot) {
  (void)slot;
  if (cursor_ >= domain_.hi) return std::nullopt;
  const long long remaining = domain_.hi - cursor_;
  const long long size = std::min(
      remaining,
      std::max(min_chunk_,
               static_cast<long long>(std::ceil(
                   fraction_ * static_cast<double>(remaining)))));
  dist::Range r(cursor_, cursor_ + size);
  cursor_ += size;
  ++issued_;
  return r;
}

bool GuidedScheduler::finished(int slot) const {
  (void)slot;
  return cursor_ >= domain_.hi;
}

}  // namespace homp::sched
