#include "sched/partition_sched.h"

#include "common/error.h"
#include "common/log.h"

namespace homp::sched {

PartitionScheduler::PartitionScheduler(dist::Distribution d,
                                       std::vector<double> weights)
    : dist_(std::move(d)),
      weights_(std::move(weights)),
      consumed_(dist_.num_parts(), false) {}

std::unique_ptr<PartitionScheduler> PartitionScheduler::block(
    const LoopContext& ctx) {
  HOMP_REQUIRE(ctx.num_devices() > 0, "no devices to schedule onto");
  auto d = dist::Distribution::block(ctx.loop, ctx.num_devices());
  std::vector<double> w(ctx.num_devices(),
                        1.0 / static_cast<double>(ctx.num_devices()));
  return std::unique_ptr<PartitionScheduler>(
      new PartitionScheduler(std::move(d), std::move(w)));
}

std::unique_ptr<PartitionScheduler> PartitionScheduler::from_model(
    const LoopContext& ctx, AlgorithmKind kind, double cutoff_ratio) {
  HOMP_REQUIRE(ctx.num_devices() > 0, "no devices to schedule onto");
  HOMP_REQUIRE(kind == AlgorithmKind::kModel1Auto ||
                   kind == AlgorithmKind::kModel2Auto,
               "from_model expects an analytical-model algorithm");
  std::vector<double> w =
      kind == AlgorithmKind::kModel1Auto
          ? model::model1_weights(ctx.kernel, ctx.devices)
          : model::model2_weights(ctx.kernel, ctx.devices);

  std::unique_ptr<PartitionScheduler> sched;
  if (cutoff_ratio > 0.0) {
    model::CutoffResult cut = model::apply_cutoff(w, cutoff_ratio);
    if (cut.num_selected < static_cast<int>(w.size())) {
      HOMP_INFO << "CUTOFF(" << cutoff_ratio << ") kept "
                << cut.num_selected << "/" << w.size() << " devices";
    }
    auto d = dist::Distribution::by_weights(ctx.loop, cut.weights);
    sched.reset(new PartitionScheduler(std::move(d), cut.weights));
    sched->cutoff_ = std::move(cut);
    sched->has_cutoff_ = true;
  } else {
    auto d = dist::Distribution::by_weights(ctx.loop, w);
    sched.reset(new PartitionScheduler(std::move(d), std::move(w)));
  }
  return sched;
}

std::unique_ptr<PartitionScheduler> PartitionScheduler::from_distribution(
    dist::Distribution d) {
  HOMP_REQUIRE(d.num_parts() > 0, "empty distribution for loop scheduling");
  const double total = static_cast<double>(d.domain().size());
  std::vector<double> w(d.num_parts(), 0.0);
  if (total > 0.0) {
    for (std::size_t i = 0; i < d.num_parts(); ++i) {
      w[i] = static_cast<double>(d.part(i).size()) / total;
    }
  }
  return std::unique_ptr<PartitionScheduler>(
      new PartitionScheduler(std::move(d), std::move(w)));
}

std::optional<dist::Range> PartitionScheduler::next_chunk(int slot) {
  HOMP_ASSERT(slot >= 0 &&
              static_cast<std::size_t>(slot) < consumed_.size());
  const auto s = static_cast<std::size_t>(slot);
  if (consumed_[s]) return std::nullopt;
  consumed_[s] = true;
  const dist::Range part = dist_.part(s);
  if (part.empty()) return std::nullopt;
  ++issued_;
  return part;
}

std::vector<dist::Range> PartitionScheduler::deactivate(int slot) {
  HOMP_ASSERT(slot >= 0 &&
              static_cast<std::size_t>(slot) < consumed_.size());
  const auto s = static_cast<std::size_t>(slot);
  if (consumed_[s]) return {};
  consumed_[s] = true;
  const dist::Range part = dist_.part(s);
  if (part.empty()) return {};
  return {part};
}

bool PartitionScheduler::finished(int slot) const {
  HOMP_ASSERT(slot >= 0 &&
              static_cast<std::size_t>(slot) < consumed_.size());
  const auto s = static_cast<std::size_t>(slot);
  return consumed_[s] || dist_.part(s).empty();
}

}  // namespace homp::sched
