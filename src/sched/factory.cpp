#include "common/error.h"
#include "sched/chunk_sched.h"
#include "sched/extended_sched.h"
#include "sched/partition_sched.h"
#include "sched/profile_sched.h"
#include "sched/scheduler.h"

namespace homp::sched {

std::unique_ptr<LoopScheduler> make_scheduler(const SchedulerConfig& config,
                                              const LoopContext& context) {
  HOMP_REQUIRE(context.num_devices() > 0, "offload has no devices");
  HOMP_REQUIRE(context.devices.size() < 1u << 16, "absurd device count");
  switch (config.kind) {
    case AlgorithmKind::kBlock:
      return PartitionScheduler::block(context);
    case AlgorithmKind::kDynamic:
      return std::make_unique<DynamicScheduler>(
          context, config.dynamic_chunk_fraction, config.min_chunk);
    case AlgorithmKind::kGuided:
      return std::make_unique<GuidedScheduler>(
          context, config.guided_chunk_fraction, config.min_chunk);
    case AlgorithmKind::kModel1Auto:
    case AlgorithmKind::kModel2Auto:
      return PartitionScheduler::from_model(context, config.kind,
                                            config.cutoff_ratio);
    case AlgorithmKind::kSchedProfileAuto:
      return std::make_unique<ProfileScheduler>(
          context, /*model_based=*/false, config.sample_fraction,
          config.cutoff_ratio, config.min_chunk);
    case AlgorithmKind::kModelProfileAuto:
      return std::make_unique<ProfileScheduler>(
          context, /*model_based=*/true, config.sample_fraction,
          config.cutoff_ratio, config.min_chunk);
    case AlgorithmKind::kCyclic:
      return std::make_unique<CyclicScheduler>(
          context, config.cyclic_block_fraction, config.min_chunk,
          config.cyclic_absolute_block);
    case AlgorithmKind::kWorkStealing:
      return std::make_unique<WorkStealingScheduler>(
          context, config.steal_grain_fraction, config.min_chunk);
    case AlgorithmKind::kHistoryAuto:
      HOMP_REQUIRE(config.history != nullptr,
                   "HISTORY_AUTO needs a ThroughputHistory (use the "
                   "Runtime facade, which provides one)");
      return std::make_unique<HistoryScheduler>(
          context, *config.history, config.history_kernel,
          config.history_device_ids, config.cutoff_ratio);
  }
  throw ConfigError("unhandled algorithm kind");
}

}  // namespace homp::sched
