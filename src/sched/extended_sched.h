#ifndef HOMP_SCHED_EXTENDED_SCHED_H
#define HOMP_SCHED_EXTENDED_SCHED_H

/// \file extended_sched.h
/// Schedulers beyond the paper's Table II:
///
///  * CyclicScheduler — block-cyclic static chunking. Table I names the
///    policy family; the paper evaluates only BLOCK. Device i receives
///    chunks i, i+M, i+2M, ... of a fixed block size. Single "stage"
///    (the assignment is static) but multiple chunks per device.
///
///  * WorkStealingScheduler — the related-work baseline (StarPU, Harmony,
///    XKaapi-style, refs [2], [7], [20]): each device owns a contiguous
///    deque seeded by BLOCK and serves itself small grains from its front;
///    an idle device steals the *back half* of the largest remaining
///    victim deque. Deterministic on the DES engine.
///
///  * HistoryScheduler — Qilin-like ([21]; the paper's "improving
///    prediction models" future work): partition proportionally to the
///    throughput each device *demonstrated on this kernel in previous
///    offloads* (EWMA), falling back to MODEL_2 weights for devices with
///    no history. The runtime records observed rates into a
///    ThroughputHistory after every offload that ran with history enabled.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dist/distribution.h"
#include "sched/chunk_sched.h"  // SlotLiveness
#include "sched/scheduler.h"

namespace homp::sched {

class CyclicScheduler : public LoopScheduler {
 public:
  /// \param block_fraction each cyclic block is this fraction of the loop
  ///        (mirrors SCHED_DYNAMIC's chunk sizing; a CYCLIC(b) policy can
  ///        instead pass an absolute block via `absolute_block`)
  CyclicScheduler(const LoopContext& ctx, double block_fraction,
                  long long min_chunk, long long absolute_block = 0);

  std::optional<dist::Range> next_chunk(int slot) override;
  bool finished(int slot) const override;
  std::size_t chunks_issued() const override { return issued_; }
  std::vector<dist::Range> deactivate(int slot) override;

  long long block_size() const noexcept { return block_; }

 private:
  dist::Range domain_;
  long long block_;
  std::size_t parties_;
  std::vector<long long> next_block_;  // per slot: index of its next block
  std::size_t issued_ = 0;
};

class WorkStealingScheduler : public LoopScheduler {
 public:
  /// \param grain_fraction self-service grain as a fraction of the loop
  WorkStealingScheduler(const LoopContext& ctx, double grain_fraction,
                        long long min_chunk);

  std::optional<dist::Range> next_chunk(int slot) override;
  bool finished(int slot) const override;
  int num_stages() const override { return 0; }
  std::size_t chunks_issued() const override { return issued_; }
  std::vector<dist::Range> deactivate(int slot) override;
  void reactivate(int slot) override;

  std::size_t steals() const noexcept { return steals_; }

 private:
  std::vector<dist::Range> deque_;  // per slot: remaining contiguous work
  long long grain_;
  std::size_t issued_ = 0;
  std::size_t steals_ = 0;
  SlotLiveness live_;
};

/// Persistent per-(kernel, device) observed throughput store, owned by
/// whoever wants history to span offloads (the Runtime facade exposes
/// one). The store is bounded: at most capacity() EWMA entries are kept,
/// and inserting a fresh (kernel, device) pair beyond that evicts the
/// oldest-inserted entry, so a long-lived Runtime cycling through many
/// kernels cannot grow it without bound.
class ThroughputHistory {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  /// Record an observed rate (iterations/second) for kernel x device;
  /// blended into an EWMA with weight `alpha` on the new sample.
  void record(const std::string& kernel, int device_id, double rate,
              double alpha = 0.5);

  /// Observed rate, or 0 when unseen.
  double rate(const std::string& kernel, int device_id) const;

  bool has(const std::string& kernel, int device_id) const;
  std::size_t size() const noexcept { return rates_.size(); }
  void clear() {
    rates_.clear();
    order_.clear();
  }

  /// Change the entry cap (>= 1); evicts oldest entries immediately if
  /// the store is already over the new cap.
  void set_capacity(std::size_t n);
  std::size_t capacity() const noexcept { return capacity_; }

  /// Serialize as "kernel<TAB>device_id<TAB>rate" lines (Qilin keeps its
  /// per-program model across runs; so can we).
  std::string to_text() const;

  /// Parse the to_text() format, merging into this store (existing
  /// entries are overwritten). Throws ConfigError on malformed input.
  void merge_text(const std::string& text);

  void save_file(const std::string& path) const;
  void load_file(const std::string& path);

 private:
  /// Insert-or-update one entry, maintaining insertion order and the cap.
  void upsert(const std::string& kernel, int device_id, double rate,
              double alpha);

  std::map<std::pair<std::string, int>, double> rates_;
  std::vector<std::pair<std::string, int>> order_;  // insertion order
  std::size_t capacity_ = kDefaultCapacity;
};

class HistoryScheduler : public LoopScheduler {
 public:
  /// \param kernel_name history key
  /// \param device_ids  global device ids per slot (history is keyed by
  ///        device id, not slot, so it survives device-list changes)
  HistoryScheduler(const LoopContext& ctx, const ThroughputHistory& history,
                   std::string kernel_name, std::vector<int> device_ids,
                   double cutoff_ratio);

  std::optional<dist::Range> next_chunk(int slot) override;
  bool finished(int slot) const override;
  std::vector<double> planned_weights() const override { return weights_; }
  const model::CutoffResult* cutoff() const override {
    return has_cutoff_ ? &cutoff_ : nullptr;
  }
  std::size_t chunks_issued() const override { return issued_; }
  std::vector<dist::Range> deactivate(int slot) override;

  /// True if every device had history (no model fallback needed).
  bool fully_informed() const noexcept { return fully_informed_; }

 private:
  dist::Distribution dist_;
  std::vector<double> weights_;
  std::vector<bool> consumed_;
  model::CutoffResult cutoff_;
  bool has_cutoff_ = false;
  bool fully_informed_ = true;
  std::size_t issued_ = 0;
};

}  // namespace homp::sched

#endif  // HOMP_SCHED_EXTENDED_SCHED_H
