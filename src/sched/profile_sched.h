#ifndef HOMP_SCHED_PROFILE_SCHED_H
#define HOMP_SCHED_PROFILE_SCHED_H

/// \file profile_sched.h
/// Two-stage sample-profiling schedulers (§IV-C).
///
/// Stage 1 hands every device a sample chunk — equal sizes for
/// SCHED_PROFILE_AUTO, MODEL_2-weighted sizes for MODEL_PROFILE_AUTO.
/// Devices rendezvous at a stage barrier; the measured per-chunk times
/// ("broadcast" between the proxies in the real runtime) yield observed
/// throughputs, which (after optional CUTOFF) weight the distribution of
/// the remaining iterations in stage 2.

#include <optional>

#include "sched/scheduler.h"

namespace homp::sched {

class ProfileScheduler : public LoopScheduler {
 public:
  /// \param model_based  false: constant sample sizes (SCHED_PROFILE_AUTO);
  ///                     true: MODEL_2-weighted (MODEL_PROFILE_AUTO)
  /// \param sample_fraction total fraction of the loop consumed in stage 1
  ProfileScheduler(const LoopContext& ctx, bool model_based,
                   double sample_fraction, double cutoff_ratio,
                   long long min_chunk);

  std::optional<dist::Range> next_chunk(int slot) override;
  bool finished(int slot) const override;
  void report(int slot, const dist::Range& chunk, double seconds) override;
  int num_stages() const override { return 2; }
  bool stage_barrier_pending() const override { return stage_ == 1; }
  void advance_stage() override;
  std::vector<double> planned_weights() const override;
  const model::CutoffResult* cutoff() const override {
    return has_cutoff_ ? &cutoff_ : nullptr;
  }
  std::size_t chunks_issued() const override { return issued_; }
  std::vector<dist::Range> deactivate(int slot) override;

  /// Observed stage-1 throughputs (iterations/second), for diagnostics.
  const std::vector<double>& observed_rates() const noexcept {
    return rates_;
  }

 private:
  int stage_ = 1;
  dist::Range remaining_;  // iterations not consumed by stage 1
  std::vector<dist::Range> sample_;   // stage-1 chunk per slot
  std::vector<dist::Range> final_;    // stage-2 chunk per slot
  std::vector<bool> handed_out_[2];   // per stage, per slot
  std::vector<double> rates_;         // observed iters/sec per slot
  std::vector<bool> reported_;
  std::vector<double> stage2_weights_;
  model::CutoffResult cutoff_;
  bool has_cutoff_ = false;
  double cutoff_ratio_;
  std::size_t issued_ = 0;
};

}  // namespace homp::sched

#endif  // HOMP_SCHED_PROFILE_SCHED_H
