#ifndef HOMP_SCHED_SCHEDULER_H
#define HOMP_SCHED_SCHEDULER_H

/// \file scheduler.h
/// Incremental loop-scheduler interface driven by the runtime's per-device
/// proxies, plus the configuration shared by all seven algorithms.
///
/// Protocol (single-threaded — proxies are actors on the DES engine):
///   1. proxy calls next_chunk(slot);
///      - a range: execute it, then report(slot, range, seconds), repeat;
///      - nullopt and finished(slot): device is done, go to final barrier;
///      - nullopt and !finished(slot): two-stage scheduler waiting for the
///        other devices; the proxy arrives at the stage barrier, and the
///        runtime calls advance_stage() exactly once when all proxies
///        are waiting, then releases them to call next_chunk again.
///   2. report() feeds measured chunk times back (profiling algorithms
///      use them; others ignore them).

#include <memory>
#include <optional>
#include <vector>

#include "dist/range.h"
#include "model/kernel_profile.h"
#include "model/loop_model.h"
#include "sched/algorithm.h"

namespace homp::sched {

class ThroughputHistory;  // extended_sched.h

/// Everything a scheduler may consult about the loop being distributed.
struct LoopContext {
  dist::Range loop;  ///< full iteration domain
  model::KernelCostProfile kernel;
  /// Participating devices in slot order (slot i of the scheduler is
  /// devices[i] of the offload's device list).
  std::vector<model::DevicePredictionInput> devices;

  std::size_t num_devices() const noexcept { return devices.size(); }
};

/// Tuning parameters; defaults follow the paper's evaluation notation
/// (SCHED_DYNAMIC,2% / SCHED_GUIDED,20% / *_PROFILE_AUTO,10%,15%).
struct SchedulerConfig {
  AlgorithmKind kind = AlgorithmKind::kBlock;

  /// DYNAMIC: each chunk is this fraction of the full loop.
  double dynamic_chunk_fraction = 0.02;

  /// GUIDED: each chunk is this fraction of the *remaining* iterations.
  double guided_chunk_fraction = 0.20;

  /// Two-stage profiling: total fraction of the loop sampled in stage 1.
  double sample_fraction = 0.10;

  /// CUTOFF ratio (§IV-E); 0 disables device selection. Applies to the
  /// model and profiling algorithms only (Table II note).
  double cutoff_ratio = 0.0;

  /// Smallest chunk any algorithm will hand out.
  long long min_chunk = 1;

  // ---- extension algorithms (see extended_sched.h) ----

  /// CYCLIC: block size as a fraction of the loop; an explicit
  /// CYCLIC(b) loop policy overrides it with an absolute block.
  double cyclic_block_fraction = 0.02;
  long long cyclic_absolute_block = 0;

  /// WORK_STEALING: self-service grain as a fraction of the loop.
  double steal_grain_fraction = 0.01;

  /// HISTORY_AUTO: observed-throughput store and its keys. The Runtime
  /// facade fills these automatically; set them only when driving
  /// make_scheduler() directly.
  const ThroughputHistory* history = nullptr;
  std::string history_kernel;
  std::vector<int> history_device_ids;
};

class LoopScheduler {
 public:
  virtual ~LoopScheduler() = default;

  virtual std::optional<dist::Range> next_chunk(int slot) = 0;

  /// True when `slot` will never receive another chunk.
  virtual bool finished(int slot) const = 0;

  /// Feed back the measured (virtual) duration of a completed chunk,
  /// inclusive of its data movement — what a proxy thread would time.
  virtual void report(int slot, const dist::Range& chunk, double seconds) {
    (void)slot;
    (void)chunk;
    (void)seconds;
  }

  /// Number of distribution stages (Table II; 0 = "multiple").
  virtual int num_stages() const { return 1; }

  /// True while devices must rendezvous before more chunks can be handed
  /// out (between profiling stage 1 and stage 2).
  virtual bool stage_barrier_pending() const { return false; }

  /// Called once by the runtime when every proxy is waiting at the stage
  /// barrier.
  virtual void advance_stage() {}

  /// The up-front weights this scheduler planned with (empty for chunk
  /// schedulers; profiling schedulers report stage-2 weights once known).
  virtual std::vector<double> planned_weights() const { return {}; }

  /// CUTOFF selection outcome, if the algorithm applied one.
  virtual const model::CutoffResult* cutoff() const { return nullptr; }

  /// Total chunks handed out so far (scheduling-transaction count).
  virtual std::size_t chunks_issued() const = 0;

  /// Withdraw `slot` from the schedule (the runtime quarantined its
  /// device): the slot requests no more chunks, and any iterations
  /// *reserved* for it but not yet handed out are returned so the runtime
  /// can redistribute them to the surviving devices. Chunks already handed
  /// out are the runtime's to requeue. Schedulers with no per-slot
  /// reservations (shared-cursor chunk schedulers) return nothing; their
  /// cursor simply keeps serving the survivors. Two-stage schedulers must
  /// also stop waiting on the slot at the stage barrier.
  ///
  /// Contract edge cases (tests/sched/deactivate_test.cpp):
  ///  * double-deactivate is idempotent — the second call returns nothing
  ///    and changes no state;
  ///  * deactivating the last active slot while undistributed iterations
  ///    remain in the scheduler throws OffloadError (nobody is left to
  ///    serve them — better a clean error than a spin).
  virtual std::vector<dist::Range> deactivate(int slot) {
    (void)slot;
    return {};
  }

  /// Re-admit a previously deactivated slot (probation re-entry after a
  /// quarantine cooldown, docs/RESILIENCE.md). Shared-cursor schedulers
  /// re-include the slot so it draws fresh chunks again; schedulers whose
  /// deactivate() already handed the slot's reserved work back have
  /// nothing to restore — the readmitted device is fed from the runtime's
  /// requeue instead — so the base implementation is a no-op. Idempotent;
  /// reactivating a never-deactivated slot is a no-op.
  virtual void reactivate(int slot) { (void)slot; }
};

/// Instantiate the scheduler for `config.kind`.
std::unique_ptr<LoopScheduler> make_scheduler(const SchedulerConfig& config,
                                              const LoopContext& context);

}  // namespace homp::sched

#endif  // HOMP_SCHED_SCHEDULER_H
