#ifndef HOMP_SCHED_SELECTOR_H
#define HOMP_SCHED_SELECTOR_H

/// \file selector.h
/// Automatic algorithm selection (§IV-D, validated in §VI-D):
///
///  1. compute-intensive kernels: BLOCK on identical devices,
///     MODEL_1_AUTO on heterogeneous ones — both single-stage and cheap;
///  2. compute/data-balanced kernels: SCHED_DYNAMIC, whose multiple chunks
///     per device overlap data movement with computation;
///  3. data-intensive kernels: MODEL_2_AUTO, which prices data movement.
///
/// This is what `dist_schedule(target:[AUTO])` resolves to when the user
/// does not name an algorithm.

#include "model/heuristic.h"
#include "model/loop_model.h"
#include "sched/algorithm.h"

namespace homp::sched {

/// True when all devices advertise (near-)identical capability — within
/// `tolerance` relative spread on peak FLOPs and link bandwidth.
bool devices_homogeneous(
    const std::vector<model::DevicePredictionInput>& devices,
    double tolerance = 0.05);

/// Pick the algorithm for a kernel per the §VI-D heuristics.
AlgorithmKind select_algorithm(const model::KernelCostProfile& kernel,
                               bool homogeneous_devices);

/// Convenience overload deriving homogeneity from the device list.
AlgorithmKind select_algorithm(
    const model::KernelCostProfile& kernel,
    const std::vector<model::DevicePredictionInput>& devices);

}  // namespace homp::sched

#endif  // HOMP_SCHED_SELECTOR_H
