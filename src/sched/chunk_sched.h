#ifndef HOMP_SCHED_CHUNK_SCHED_H
#define HOMP_SCHED_CHUNK_SCHED_H

/// \file chunk_sched.h
/// Multi-stage chunk schedulers (§IV-A2, §IV-A3): devices repeatedly
/// acquire chunks from the shared remaining range until it is exhausted.
/// In the real runtime this is a compare-and-swap on a shared cursor; on
/// the single-threaded DES engine a plain cursor gives identical
/// semantics, with FIFO event order standing in for CAS arbitration.

#include "sched/scheduler.h"

namespace homp::sched {

/// SCHED_DYNAMIC: every chunk has the same size (a fraction of the loop).
class DynamicScheduler : public LoopScheduler {
 public:
  DynamicScheduler(const LoopContext& ctx, double chunk_fraction,
                   long long min_chunk);

  std::optional<dist::Range> next_chunk(int slot) override;
  bool finished(int slot) const override;
  int num_stages() const override { return 0; }  // "Multiple" in Table II
  std::size_t chunks_issued() const override { return issued_; }

  long long chunk_size() const noexcept { return chunk_; }

 private:
  dist::Range domain_;
  long long cursor_;
  long long chunk_;
  std::size_t issued_ = 0;
};

/// SCHED_GUIDED: each chunk is a fraction of the *remaining* iterations,
/// so sizes shrink as the loop drains (large chunks first, small chunks
/// near the end to polish the balance).
class GuidedScheduler : public LoopScheduler {
 public:
  GuidedScheduler(const LoopContext& ctx, double chunk_fraction,
                  long long min_chunk);

  std::optional<dist::Range> next_chunk(int slot) override;
  bool finished(int slot) const override;
  int num_stages() const override { return 0; }
  std::size_t chunks_issued() const override { return issued_; }

 private:
  dist::Range domain_;
  long long cursor_;
  double fraction_;
  long long min_chunk_;
  std::size_t issued_ = 0;
};

}  // namespace homp::sched

#endif  // HOMP_SCHED_CHUNK_SCHED_H
