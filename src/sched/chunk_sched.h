#ifndef HOMP_SCHED_CHUNK_SCHED_H
#define HOMP_SCHED_CHUNK_SCHED_H

/// \file chunk_sched.h
/// Multi-stage chunk schedulers (§IV-A2, §IV-A3): devices repeatedly
/// acquire chunks from the shared remaining range until it is exhausted.
/// In the real runtime this is a compare-and-swap on a shared cursor; on
/// the single-threaded DES engine a plain cursor gives identical
/// semantics, with FIFO event order standing in for CAS arbitration.

#include "sched/scheduler.h"

namespace homp::sched {

/// Slot-liveness bookkeeping shared by the shared-cursor schedulers: a
/// deactivated slot draws no more chunks, and withdrawing the last active
/// slot while iterations remain undistributed is a hard error (nobody
/// left to serve them).
class SlotLiveness {
 public:
  explicit SlotLiveness(std::size_t parties)
      : active_(parties, true), alive_(parties) {}

  bool active(int slot) const {
    return active_[static_cast<std::size_t>(slot)];
  }

  /// Returns true when this call actually deactivated the slot (false on
  /// double-deactivate). Throws OffloadError when the last active slot is
  /// withdrawn and `remaining` iterations are still undistributed.
  bool deactivate(int slot, long long remaining);

  /// Returns true when this call re-admitted a deactivated slot.
  bool reactivate(int slot);

 private:
  std::vector<bool> active_;
  std::size_t alive_;
};

/// SCHED_DYNAMIC: every chunk has the same size (a fraction of the loop).
class DynamicScheduler : public LoopScheduler {
 public:
  DynamicScheduler(const LoopContext& ctx, double chunk_fraction,
                   long long min_chunk);

  std::optional<dist::Range> next_chunk(int slot) override;
  bool finished(int slot) const override;
  int num_stages() const override { return 0; }  // "Multiple" in Table II
  std::size_t chunks_issued() const override { return issued_; }
  std::vector<dist::Range> deactivate(int slot) override;
  void reactivate(int slot) override;

  long long chunk_size() const noexcept { return chunk_; }

 private:
  dist::Range domain_;
  long long cursor_;
  long long chunk_;
  std::size_t issued_ = 0;
  SlotLiveness live_;
};

/// SCHED_GUIDED: each chunk is a fraction of the *remaining* iterations,
/// so sizes shrink as the loop drains (large chunks first, small chunks
/// near the end to polish the balance).
class GuidedScheduler : public LoopScheduler {
 public:
  GuidedScheduler(const LoopContext& ctx, double chunk_fraction,
                  long long min_chunk);

  std::optional<dist::Range> next_chunk(int slot) override;
  bool finished(int slot) const override;
  int num_stages() const override { return 0; }
  std::size_t chunks_issued() const override { return issued_; }
  std::vector<dist::Range> deactivate(int slot) override;
  void reactivate(int slot) override;

 private:
  dist::Range domain_;
  long long cursor_;
  double fraction_;
  long long min_chunk_;
  std::size_t issued_ = 0;
  SlotLiveness live_;
};

}  // namespace homp::sched

#endif  // HOMP_SCHED_CHUNK_SCHED_H
