#include "sched/extended_sched.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/log.h"

namespace homp::sched {

CyclicScheduler::CyclicScheduler(const LoopContext& ctx,
                                 double block_fraction, long long min_chunk,
                                 long long absolute_block)
    : domain_(ctx.loop), parties_(ctx.num_devices()) {
  HOMP_REQUIRE(parties_ > 0, "no devices to schedule onto");
  HOMP_REQUIRE(min_chunk >= 1, "min_chunk must be at least 1");
  if (absolute_block > 0) {
    block_ = absolute_block;
  } else {
    HOMP_REQUIRE(block_fraction > 0.0 && block_fraction <= 1.0,
                 "cyclic block fraction must be in (0, 1]");
    block_ = std::max(min_chunk,
                      static_cast<long long>(std::llround(
                          block_fraction *
                          static_cast<double>(domain_.size()))));
  }
  next_block_.assign(parties_, 0);
  for (std::size_t s = 0; s < parties_; ++s) {
    next_block_[s] = static_cast<long long>(s);
  }
}

std::optional<dist::Range> CyclicScheduler::next_chunk(int slot) {
  HOMP_ASSERT(slot >= 0 && static_cast<std::size_t>(slot) < parties_);
  auto& idx = next_block_[static_cast<std::size_t>(slot)];
  const long long lo = domain_.lo + idx * block_;
  if (lo >= domain_.hi) return std::nullopt;
  const long long hi = std::min(lo + block_, domain_.hi);
  idx += static_cast<long long>(parties_);
  ++issued_;
  return dist::Range(lo, hi);
}

std::vector<dist::Range> CyclicScheduler::deactivate(int slot) {
  HOMP_ASSERT(slot >= 0 && static_cast<std::size_t>(slot) < parties_);
  auto& idx = next_block_[static_cast<std::size_t>(slot)];
  std::vector<dist::Range> orphaned;
  for (;; idx += static_cast<long long>(parties_)) {
    const long long lo = domain_.lo + idx * block_;
    if (lo >= domain_.hi) break;
    orphaned.emplace_back(lo, std::min(lo + block_, domain_.hi));
  }
  return orphaned;  // idx now points past the domain: finished(slot)
}

bool CyclicScheduler::finished(int slot) const {
  HOMP_ASSERT(slot >= 0 && static_cast<std::size_t>(slot) < parties_);
  const long long lo =
      domain_.lo + next_block_[static_cast<std::size_t>(slot)] * block_;
  return lo >= domain_.hi;
}

WorkStealingScheduler::WorkStealingScheduler(const LoopContext& ctx,
                                             double grain_fraction,
                                             long long min_chunk)
    : live_(ctx.num_devices()) {
  HOMP_REQUIRE(ctx.num_devices() > 0, "no devices to schedule onto");
  HOMP_REQUIRE(grain_fraction > 0.0 && grain_fraction <= 1.0,
               "grain fraction must be in (0, 1]");
  HOMP_REQUIRE(min_chunk >= 1, "min_chunk must be at least 1");
  deque_ = dist::Distribution::block(ctx.loop, ctx.num_devices()).parts();
  grain_ = std::max(min_chunk,
                    static_cast<long long>(std::llround(
                        grain_fraction *
                        static_cast<double>(ctx.loop.size()))));
}

std::optional<dist::Range> WorkStealingScheduler::next_chunk(int slot) {
  HOMP_ASSERT(slot >= 0 &&
              static_cast<std::size_t>(slot) < deque_.size());
  if (!live_.active(slot)) return std::nullopt;
  auto& own = deque_[static_cast<std::size_t>(slot)];
  if (own.empty()) {
    // Steal the back half of the largest victim deque. Ties pick the
    // lowest victim index — deterministic on the single-threaded engine.
    std::size_t victim = deque_.size();
    long long best = 0;
    for (std::size_t v = 0; v < deque_.size(); ++v) {
      if (v == static_cast<std::size_t>(slot)) continue;
      if (deque_[v].size() > best) {
        best = deque_[v].size();
        victim = v;
      }
    }
    if (victim == deque_.size() || best == 0) return std::nullopt;
    auto& loot = deque_[victim];
    const long long half = (loot.size() + 1) / 2;
    own = dist::Range(loot.hi - half, loot.hi);
    loot.hi -= half;
    ++steals_;
  }
  const long long take = std::min(grain_, own.size());
  dist::Range chunk(own.lo, own.lo + take);
  own.lo += take;
  ++issued_;
  return chunk;
}

std::vector<dist::Range> WorkStealingScheduler::deactivate(int slot) {
  HOMP_ASSERT(slot >= 0 && static_cast<std::size_t>(slot) < deque_.size());
  auto& own = deque_[static_cast<std::size_t>(slot)];
  // The slot's own deque is handed back to the runtime, so the iterations
  // still *inside* the scheduler are everyone else's deques.
  long long elsewhere = 0;
  for (std::size_t v = 0; v < deque_.size(); ++v) {
    if (v != static_cast<std::size_t>(slot)) elsewhere += deque_[v].size();
  }
  if (!live_.deactivate(slot, elsewhere)) return {};
  if (own.empty()) return {};
  const dist::Range orphaned = own;
  own = dist::Range();  // survivors could also steal it, but returning it
                        // lets the runtime redistribute immediately
  return {orphaned};
}

void WorkStealingScheduler::reactivate(int slot) {
  // The readmitted slot comes back with an empty deque and earns work by
  // stealing — exactly the cold-start path a late-joining device takes.
  live_.reactivate(slot);
}

bool WorkStealingScheduler::finished(int slot) const {
  if (!live_.active(slot)) return true;
  for (const auto& d : deque_) {
    if (!d.empty()) return false;
  }
  return true;
}

void ThroughputHistory::upsert(const std::string& kernel, int device_id,
                               double rate, double alpha) {
  auto key = std::make_pair(kernel, device_id);
  auto it = rates_.find(key);
  if (it != rates_.end()) {
    it->second = alpha * rate + (1.0 - alpha) * it->second;
    return;
  }
  while (rates_.size() >= capacity_ && !order_.empty()) {
    rates_.erase(order_.front());
    order_.erase(order_.begin());
  }
  order_.push_back(key);
  rates_.emplace(std::move(key), rate);
}

void ThroughputHistory::record(const std::string& kernel, int device_id,
                               double rate, double alpha) {
  HOMP_REQUIRE(rate >= 0.0 && std::isfinite(rate),
               "throughput must be finite and non-negative");
  HOMP_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
  upsert(kernel, device_id, rate, alpha);
}

void ThroughputHistory::set_capacity(std::size_t n) {
  HOMP_REQUIRE(n >= 1, "throughput history capacity must be at least 1");
  capacity_ = n;
  while (rates_.size() > capacity_ && !order_.empty()) {
    rates_.erase(order_.front());
    order_.erase(order_.begin());
  }
}

double ThroughputHistory::rate(const std::string& kernel,
                               int device_id) const {
  auto it = rates_.find({kernel, device_id});
  return it == rates_.end() ? 0.0 : it->second;
}

bool ThroughputHistory::has(const std::string& kernel, int device_id) const {
  return rates_.count({kernel, device_id}) != 0;
}

std::string ThroughputHistory::to_text() const {
  std::string out;
  char buf[64];
  for (const auto& [key, rate] : rates_) {
    std::snprintf(buf, sizeof buf, "\t%d\t%.17g\n", key.second, rate);
    out += key.first;
    out += buf;
  }
  return out;
}

void ThroughputHistory::merge_text(const std::string& text) {
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (line.empty()) continue;
    const auto t1 = line.find('\t');
    const auto t2 = line.find('\t', t1 + 1);
    HOMP_REQUIRE(t1 != std::string::npos && t2 != std::string::npos,
                 "throughput history line " + std::to_string(lineno) +
                     " is not kernel<TAB>device<TAB>rate");
    try {
      const std::string kernel = line.substr(0, t1);
      HOMP_REQUIRE(!kernel.empty(), "empty kernel name in history line " +
                                        std::to_string(lineno));
      const int device = std::stoi(line.substr(t1 + 1, t2 - t1 - 1));
      const double rate = std::stod(line.substr(t2 + 1));
      HOMP_REQUIRE(rate >= 0.0 && std::isfinite(rate),
                   "bad rate in history line " + std::to_string(lineno));
      upsert(kernel, device, rate, /*alpha=*/1.0);  // overwrite on merge
    } catch (const std::invalid_argument&) {
      throw ConfigError("malformed throughput history line " +
                        std::to_string(lineno));
    } catch (const std::out_of_range&) {
      throw ConfigError("out-of-range value in throughput history line " +
                        std::to_string(lineno));
    }
  }
}

void ThroughputHistory::save_file(const std::string& path) const {
  std::ofstream out(path);
  HOMP_REQUIRE(out.good(), "cannot open history file for writing: " + path);
  out << to_text();
}

void ThroughputHistory::load_file(const std::string& path) {
  std::ifstream in(path);
  HOMP_REQUIRE(in.good(), "cannot open history file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  merge_text(buf.str());
}

HistoryScheduler::HistoryScheduler(const LoopContext& ctx,
                                   const ThroughputHistory& history,
                                   std::string kernel_name,
                                   std::vector<int> device_ids,
                                   double cutoff_ratio) {
  HOMP_REQUIRE(ctx.num_devices() > 0, "no devices to schedule onto");
  HOMP_REQUIRE(device_ids.size() == ctx.num_devices(),
               "device id list does not match context");

  // Rates from history; model-predicted rates fill the gaps so a fresh
  // device is not starved (and can therefore earn history).
  std::vector<double> rates(ctx.num_devices(), 0.0);
  for (std::size_t s = 0; s < rates.size(); ++s) {
    if (history.has(kernel_name, device_ids[s])) {
      rates[s] = history.rate(kernel_name, device_ids[s]);
    } else {
      fully_informed_ = false;
      rates[s] = 1.0 / model::model2_iter_time(ctx.kernel, ctx.devices[s]);
    }
  }
  if (!fully_informed_) {
    HOMP_DEBUG << "history incomplete for '" << kernel_name
               << "'; MODEL_2 fills " << ctx.num_devices() << " slots";
  }
  std::vector<double> w = model::weights_from_rates(rates);
  if (cutoff_ratio > 0.0) {
    cutoff_ = model::apply_cutoff(w, cutoff_ratio);
    has_cutoff_ = true;
    w = cutoff_.weights;
  }
  weights_ = w;
  dist_ = dist::Distribution::by_weights(ctx.loop, w);
  consumed_.assign(ctx.num_devices(), false);
}

std::optional<dist::Range> HistoryScheduler::next_chunk(int slot) {
  HOMP_ASSERT(slot >= 0 &&
              static_cast<std::size_t>(slot) < consumed_.size());
  const auto s = static_cast<std::size_t>(slot);
  if (consumed_[s]) return std::nullopt;
  consumed_[s] = true;
  const dist::Range part = dist_.part(s);
  if (part.empty()) return std::nullopt;
  ++issued_;
  return part;
}

bool HistoryScheduler::finished(int slot) const {
  const auto s = static_cast<std::size_t>(slot);
  return consumed_[s] || dist_.part(s).empty();
}

std::vector<dist::Range> HistoryScheduler::deactivate(int slot) {
  HOMP_ASSERT(slot >= 0 &&
              static_cast<std::size_t>(slot) < consumed_.size());
  const auto s = static_cast<std::size_t>(slot);
  if (consumed_[s]) return {};
  consumed_[s] = true;
  const dist::Range part = dist_.part(s);
  if (part.empty()) return {};
  return {part};
}

}  // namespace homp::sched
