#ifndef HOMP_SCHED_ALGORITHM_H
#define HOMP_SCHED_ALGORITHM_H

/// \file algorithm.h
/// The seven loop-distribution algorithms of the paper (Table II) as an
/// enumeration, plus their static metadata. Notation strings follow the
/// paper's evaluation figures ("SCHED_DYNAMIC,2%" etc.).

#include <string>

namespace homp::sched {

enum class AlgorithmKind {
  kBlock,             ///< static chunking (even blocks)
  kDynamic,           ///< dynamic chunking, fixed chunk size
  kGuided,            ///< guided chunking, shrinking chunk size
  kModel1Auto,        ///< analytical, compute capability only
  kModel2Auto,        ///< analytical, compute + data movement
  kSchedProfileAuto,  ///< 2-stage, constant sample size
  kModelProfileAuto,  ///< 2-stage, model-chosen sample sizes

  // ---- extensions beyond the paper's Table II ----
  kCyclic,        ///< block-cyclic static chunking (Table I lists the
                  ///< policy; the paper evaluates only the above)
  kWorkStealing,  ///< per-device deques + steal-half — the related-work
                  ///< baseline family (StarPU/Harmony/XKaapi, refs [2],
                  ///< [7], [20])
  kHistoryAuto,   ///< partition by throughput observed in *previous*
                  ///< offloads (Qilin-like, ref [21]; the paper's
                  ///< "improving prediction models" future work)
};

inline constexpr int kNumAlgorithms = 7;
inline constexpr int kNumExtendedAlgorithms = 3;

/// The paper's seven, in Table II order.
const AlgorithmKind* all_algorithms() noexcept;

/// The extension algorithms (kCyclic, kWorkStealing, kHistoryAuto).
const AlgorithmKind* extended_algorithms() noexcept;

/// All ten: the paper's seven (Table II order) followed by the three
/// extensions — the iteration order of the differential oracle
/// (src/fuzz), which runs every scenario through every family.
const AlgorithmKind* every_algorithm() noexcept;
inline constexpr int kNumEveryAlgorithm =
    kNumAlgorithms + kNumExtendedAlgorithms;

const char* to_string(AlgorithmKind k) noexcept;

/// Parse "BLOCK", "SCHED_DYNAMIC", "MODEL_1_AUTO", ... (case-insensitive;
/// also accepts the paper's "SCED_" typo variants). Throws ConfigError.
AlgorithmKind algorithm_from_string(const std::string& s);

/// Static Table II metadata.
struct AlgorithmInfo {
  AlgorithmKind kind;
  const char* approach;    ///< "Chunk Scheduling" | "Analytical Modeling" |
                           ///< "Sample Profiling"
  const char* notation;    ///< evaluation notation, e.g. "SCHED_DYNAMIC,2%"
  int stages;              ///< 0 = multiple (dynamic/guided)
  const char* overhead;    ///< Low | Medium | High
  const char* balance;     ///< qualitative load-balancing rating
  bool supports_cutoff;    ///< CUTOFF applies to the last four algorithms
};

const AlgorithmInfo& algorithm_info(AlgorithmKind k) noexcept;

}  // namespace homp::sched

#endif  // HOMP_SCHED_ALGORITHM_H
