#ifndef HOMP_SCHED_PARTITION_SCHED_H
#define HOMP_SCHED_PARTITION_SCHED_H

/// \file partition_sched.h
/// Single-stage schedulers that compute the whole partition up front:
/// BLOCK (even chunks) and the two analytical models (weight-proportional
/// chunks, optionally CUTOFF-filtered). One chunk per device, handed out
/// on first request.

#include <optional>

#include "dist/distribution.h"
#include "sched/scheduler.h"

namespace homp::sched {

class PartitionScheduler : public LoopScheduler {
 public:
  /// BLOCK.
  static std::unique_ptr<PartitionScheduler> block(const LoopContext& ctx);

  /// MODEL_1_AUTO / MODEL_2_AUTO; `cutoff_ratio` <= 0 disables selection.
  static std::unique_ptr<PartitionScheduler> from_model(
      const LoopContext& ctx, AlgorithmKind kind, double cutoff_ratio);

  /// Loop distribution dictated externally — dist_schedule(target:
  /// [ALIGN(x)]) copies the array's distribution onto the loop (§III-3
  /// "align computation with data").
  static std::unique_ptr<PartitionScheduler> from_distribution(
      dist::Distribution d);

  std::optional<dist::Range> next_chunk(int slot) override;
  bool finished(int slot) const override;
  std::vector<double> planned_weights() const override { return weights_; }
  const model::CutoffResult* cutoff() const override {
    return has_cutoff_ ? &cutoff_ : nullptr;
  }
  std::size_t chunks_issued() const override { return issued_; }
  std::vector<dist::Range> deactivate(int slot) override;

 private:
  PartitionScheduler(dist::Distribution d, std::vector<double> weights);

  dist::Distribution dist_;
  std::vector<double> weights_;
  std::vector<bool> consumed_;
  model::CutoffResult cutoff_;
  bool has_cutoff_ = false;
  std::size_t issued_ = 0;
};

}  // namespace homp::sched

#endif  // HOMP_SCHED_PARTITION_SCHED_H
