#include "sched/algorithm.h"

#include "common/error.h"
#include "common/strings.h"

namespace homp::sched {

namespace {
constexpr AlgorithmKind kAll[kNumAlgorithms] = {
    AlgorithmKind::kBlock,          AlgorithmKind::kDynamic,
    AlgorithmKind::kGuided,         AlgorithmKind::kModel1Auto,
    AlgorithmKind::kModel2Auto,     AlgorithmKind::kSchedProfileAuto,
    AlgorithmKind::kModelProfileAuto,
};

constexpr AlgorithmKind kExtended[kNumExtendedAlgorithms] = {
    AlgorithmKind::kCyclic,
    AlgorithmKind::kWorkStealing,
    AlgorithmKind::kHistoryAuto,
};

constexpr AlgorithmInfo kInfo[kNumAlgorithms + kNumExtendedAlgorithms] = {
    {AlgorithmKind::kBlock, "Chunk Scheduling", "BLOCK", 1, "Low",
     "Poor to good", false},
    {AlgorithmKind::kDynamic, "Chunk Scheduling", "SCHED_DYNAMIC,2%", 0,
     "High", "Good", false},
    {AlgorithmKind::kGuided, "Chunk Scheduling", "SCHED_GUIDED,20%", 0,
     "High", "Good", false},
    {AlgorithmKind::kModel1Auto, "Analytical Modeling", "MODEL_1_AUTO,-1,15%",
     1, "Low", "Medium", true},
    {AlgorithmKind::kModel2Auto, "Analytical Modeling", "MODEL_2_AUTO,-1,15%",
     1, "Low", "Medium to good", true},
    {AlgorithmKind::kSchedProfileAuto, "Sample Profiling",
     "SCHED_PROFILE_AUTO,10%,15%", 2, "Medium", "Medium to good", true},
    {AlgorithmKind::kModelProfileAuto, "Sample Profiling",
     "MODEL_PROFILE_AUTO,10%,15%", 2, "Medium", "Medium to good", true},
    // Extensions (not part of the paper's Table II).
    {AlgorithmKind::kCyclic, "Chunk Scheduling", "CYCLIC,2%", 1, "Low",
     "Poor to good", false},
    {AlgorithmKind::kWorkStealing, "Work Stealing", "WORK_STEALING", 0,
     "Medium", "Good", false},
    {AlgorithmKind::kHistoryAuto, "Historical Modeling", "HISTORY_AUTO", 1,
     "Low", "Medium to good", true},
};
}  // namespace

namespace {
constexpr AlgorithmKind kEvery[kNumEveryAlgorithm] = {
    AlgorithmKind::kBlock,          AlgorithmKind::kDynamic,
    AlgorithmKind::kGuided,         AlgorithmKind::kModel1Auto,
    AlgorithmKind::kModel2Auto,     AlgorithmKind::kSchedProfileAuto,
    AlgorithmKind::kModelProfileAuto, AlgorithmKind::kCyclic,
    AlgorithmKind::kWorkStealing,   AlgorithmKind::kHistoryAuto,
};
}  // namespace

const AlgorithmKind* all_algorithms() noexcept { return kAll; }

const AlgorithmKind* extended_algorithms() noexcept { return kExtended; }

const AlgorithmKind* every_algorithm() noexcept { return kEvery; }

const char* to_string(AlgorithmKind k) noexcept {
  switch (k) {
    case AlgorithmKind::kBlock:
      return "BLOCK";
    case AlgorithmKind::kDynamic:
      return "SCHED_DYNAMIC";
    case AlgorithmKind::kGuided:
      return "SCHED_GUIDED";
    case AlgorithmKind::kModel1Auto:
      return "MODEL_1_AUTO";
    case AlgorithmKind::kModel2Auto:
      return "MODEL_2_AUTO";
    case AlgorithmKind::kSchedProfileAuto:
      return "SCHED_PROFILE_AUTO";
    case AlgorithmKind::kModelProfileAuto:
      return "MODEL_PROFILE_AUTO";
    case AlgorithmKind::kCyclic:
      return "CYCLIC";
    case AlgorithmKind::kWorkStealing:
      return "WORK_STEALING";
    case AlgorithmKind::kHistoryAuto:
      return "HISTORY_AUTO";
  }
  return "?";
}

AlgorithmKind algorithm_from_string(const std::string& raw) {
  const std::string s(trim(raw));
  for (AlgorithmKind k : kAll) {
    if (iequals(s, to_string(k))) return k;
  }
  for (AlgorithmKind k : kExtended) {
    if (iequals(s, to_string(k))) return k;
  }
  // Tolerate the paper's Table II spellings with a single C:
  // SCED_DYNAMIC / SCED_GUIDED / SCED_PROFILE_AUTO.
  if (iequals(s, "SCED_DYNAMIC")) return AlgorithmKind::kDynamic;
  if (iequals(s, "SCED_GUIDED")) return AlgorithmKind::kGuided;
  if (iequals(s, "SCED_PROFILE_AUTO")) return AlgorithmKind::kSchedProfileAuto;
  // AUTO alone means "let the runtime pick" and is resolved by the
  // selector, not here.
  throw ConfigError("unknown loop-distribution algorithm: '" + s + "'");
}

const AlgorithmInfo& algorithm_info(AlgorithmKind k) noexcept {
  for (const auto& info : kInfo) {
    if (info.kind == k) return info;
  }
  return kInfo[0];  // unreachable; enum is exhaustive
}

}  // namespace homp::sched
