#ifndef HOMP_RUNTIME_AUDIT_EXPORT_H
#define HOMP_RUNTIME_AUDIT_EXPORT_H

/// \file audit_export.h
/// Deterministic JSON export of one offload's scheduler decision audit
/// (docs/OBSERVABILITY.md "Decision audit"): the offline advisor's
/// primary input (src/advise, the homp-advise CLI).
///
/// The document carries everything attribution needs in one file:
///   - the run header (algorithm, virtual makespan, chunk count,
///     degraded flag) and, when CUTOFF ran, the selection verdict with
///     both pre-drop and renormalized weights;
///   - per-device telemetry: finish time, work counters, the
///     watchdog/speculation counters, and the full PredictionErrorStats
///     (means, sample counts, relative-error extrema);
///   - the decision stream itself, each record with its chunk range,
///     chunk_bytes, the three predictor estimates, the EWMA at decision
///     time, and the backfilled actual.
///
/// Schema version rides in "homp_audit_version" so consumers can sniff
/// the kind of a JSON artifact (metrics files carry
/// "homp_metrics_version", serve audits "homp_serve_audit_version").
/// Export is byte-identical across identical seeded runs: numbers render
/// through the same integer/%.17g rule as the metrics registry, strings
/// are fully escaped.

#include <iosfwd>
#include <string>

#include "runtime/options.h"

namespace homp::rt {

/// Current "homp_audit_version" value.
inline constexpr int kAuditVersion = 1;

/// Write the audit document for `res`. The result must carry decisions
/// (run with OffloadOptions::collect_audit or collect_trace) — throws
/// ConfigError otherwise, mirroring write_chrome_trace_file's contract.
void write_audit_json(const OffloadResult& res, std::ostream& os);

/// write_audit_json to `path`; throws ConfigError when the file cannot
/// be opened.
void write_audit_file(const OffloadResult& res, const std::string& path);

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_AUDIT_EXPORT_H
