#ifndef HOMP_RUNTIME_KERNEL_H
#define HOMP_RUNTIME_KERNEL_H

/// \file kernel.h
/// An offloadable parallel loop: the runtime-facing form of the outlined
/// multi-target function the paper's compiler generates (§V-A).
///
/// The body is written once against global indices and DeviceDataEnv views
/// (the "single kernel, multiple targets" substitution of DESIGN.md §2).
/// The cost profile drives the simulator's ground-truth timing and the
/// analytical models.

#include <functional>
#include <string>

#include "dist/range.h"
#include "memory/data_env.h"
#include "model/kernel_profile.h"

namespace homp::rt {

struct LoopKernel {
  /// Diagnostic name ("axpy", "jacobi-copy", ...).
  std::string name;

  /// Distributed (outermost / collapsed) loop iteration domain.
  dist::Range iterations;

  /// Per-iteration cost characteristics (Table IV inputs).
  model::KernelCostProfile cost;

  /// Compute `chunk` against the device's mapped data; returns the chunk's
  /// partial reduction value (0.0 when the loop has no reduction clause).
  /// Invoked only when OffloadOptions::execute_bodies is set; pure
  /// simulation runs skip it and rely on `cost` alone.
  std::function<double(const dist::Range& chunk, mem::DeviceDataEnv& env)>
      body;

  /// Optional per-chunk work-variability factor (>= 0) multiplying the
  /// modelled compute time of a chunk; identity when unset. Lets tests and
  /// ablations inject irregular workloads, the case where dynamic/guided
  /// chunking earns its overhead (§IV-A2).
  std::function<double(const dist::Range& chunk)> work_factor;

  bool has_reduction = false;
};

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_KERNEL_H
