#ifndef HOMP_RUNTIME_METRICS_EXPORT_H
#define HOMP_RUNTIME_METRICS_EXPORT_H

/// \file metrics_export.h
/// Bridge from OffloadResult telemetry to the obs::MetricsRegistry
/// (docs/OBSERVABILITY.md).
///
/// collect_metrics() registers every catalogued metric
/// (obs/metric_names.h) for one offload: offload-level counters and
/// gauges, then per-device pipeline / resilience / integrity /
/// model-accuracy series labelled `device="<name>"`. Calling it for
/// several results on the same registry aggregates a session: counters
/// accumulate, gauges keep the last offload's value, histograms merge.
///
/// Export is deterministic — identical seeded runs produce byte-identical
/// JSON (the registry's contract), which the test suite asserts.

#include <iosfwd>
#include <string>

#include "obs/metrics.h"
#include "runtime/options.h"

namespace homp::rt {

/// Register all metrics of `res` into `reg` (see file comment).
void collect_metrics(const OffloadResult& res, obs::MetricsRegistry& reg);

/// Write a registry (one offload or a whole aggregated session) to
/// `path` — JSON (the homp-trace CLI's input) unless the path ends in
/// ".prom", which selects the Prometheus text exposition. Throws
/// ConfigError when the file cannot be opened.
void write_registry_file(const obs::MetricsRegistry& reg,
                         const std::string& path);

/// Convenience: collect_metrics into a fresh registry, then
/// write_registry_file.
void write_metrics_file(const OffloadResult& res, const std::string& path);

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_METRICS_EXPORT_H
