#ifndef HOMP_RUNTIME_DATA_REGION_H
#define HOMP_RUNTIME_DATA_REGION_H

/// \file data_region.h
/// Persistent multi-device data region — the HOMP analogue of
/// `#pragma omp parallel target data device(*) map(...)` in the paper's
/// Jacobi example (Fig. 3).
///
/// At entry the region fixes the distribution of its label ("loop1"),
/// decomposes every partitioned array accordingly, allocates device
/// storage and performs the copy-in. Offloads executed *inside* the region
/// reuse the resident data and the fixed loop distribution (the paper's
/// runtime re-links AUTO/ALIGN(loop1) loops to the root alignee's
/// distribution, §V-D). halo_exchange() implements the
/// `#pragma omp halo_exchange(array)` directive; close() copies results
/// out. Virtual time for entry/halo/exit transfers is accounted with the
/// same Hockney + fair-share-contention model the offload engine uses.

#include <memory>
#include <string>
#include <vector>

#include "dist/distribution.h"
#include "machine/device.h"
#include "memory/data_env.h"
#include "memory/map_spec.h"
#include "runtime/kernel.h"
#include "runtime/options.h"

namespace homp::rt {

struct RegionOptions {
  std::vector<int> device_ids;
  std::string loop_label = "loop";
  dist::Range loop_domain;

  /// Algorithm used to fix the label's distribution at entry: kBlock,
  /// kModel1Auto or kModel2Auto (chunk/profiling algorithms need live
  /// feedback and cannot pin data up front).
  sched::AlgorithmKind dist_algorithm = sched::AlgorithmKind::kBlock;

  /// Cost profile for the model-based entry distributions.
  model::KernelCostProfile cost_hint;

  double cutoff_ratio = 0.0;
  bool execute_bodies = true;
  std::uint64_t noise_seed = 42;

  /// Verified exit (docs/RESILIENCE.md "Integrity"): close() checksums
  /// every device's outgoing payload before the copy-out and compares it
  /// against the host copy after; a mismatch re-copies (the device copy
  /// is the ground truth) and the re-sent bytes are charged to the exit
  /// time. Only meaningful with execute_bodies (there are no real bytes
  /// to verify otherwise).
  bool verify_exit = false;
  /// Re-copies allowed per device before close() gives up (ConfigError).
  int max_exit_retries = 2;
  ChecksumKind exit_checksum = ChecksumKind::kMix64;
  /// Test hook: after the first exit copy-out of `exit_corrupt_slot`,
  /// flip seeded bytes in its host copy — as if the exit transfer were
  /// silently corrupted. 0 = off.
  std::uint64_t exit_corrupt_seed = 0;
  int exit_corrupt_slot = 0;
};

class DataRegion {
 public:
  /// Takes ownership of `maps`; performs distribution, allocation and
  /// copy-in immediately.
  DataRegion(const mach::MachineDescriptor& machine,
             std::vector<mem::MapSpec> maps, RegionOptions opts);

  DataRegion(const DataRegion&) = delete;
  DataRegion& operator=(const DataRegion&) = delete;

  /// Run one parallel loop against the resident data. The kernel's
  /// iteration domain must equal the region's loop domain; its chunks are
  /// the region's fixed distribution (AUTO and ALIGN(label) both resolve
  /// to it). The result is also accumulated into the region totals.
  OffloadResult offload(const LoopKernel& kernel, bool parallel = true);

  /// Refresh the halo rows of `array` on every device from the owning
  /// neighbours. Returns the (virtual) exchange time, also accumulated.
  double halo_exchange(const std::string& array);

  /// Copy `from`/`tofrom` arrays back to the host. Idempotent. Returns
  /// the exit-transfer time.
  double close();

  /// Entry-transfer time (alloc + copy-in).
  double entry_time() const noexcept { return entry_time_; }

  /// Exit re-copies forced by verification mismatches (verify_exit).
  int exit_retries() const noexcept { return exit_retries_; }

  /// Entry + all offloads + halo exchanges + exit so far.
  double total_time() const noexcept { return total_time_; }

  const dist::Distribution& loop_distribution() const noexcept {
    return loop_dist_;
  }

  /// Per-device environment (tests peek at mapped footprints).
  const mem::DeviceDataEnv& env(std::size_t slot) const;

  ~DataRegion();

 private:
  /// Fair-share Hockney time for a set of per-device transfer byte counts
  /// happening concurrently (devices sharing a link divide its bandwidth).
  double concurrent_transfer_time(const std::vector<double>& bytes) const;

  const mach::MachineDescriptor& machine_;
  std::vector<mem::MapSpec> maps_;
  RegionOptions opts_;
  dist::Distribution loop_dist_;
  std::vector<std::unique_ptr<mem::MappingStore>> stores_;  // per slot
  std::vector<mem::DeviceDataEnv> envs_;                    // per slot
  double entry_time_ = 0.0;
  double total_time_ = 0.0;
  bool closed_ = false;
  int exit_retries_ = 0;
};

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_DATA_REGION_H
