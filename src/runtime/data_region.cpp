#include "runtime/data_region.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "runtime/offload_exec.h"

namespace homp::rt {

DataRegion::DataRegion(const mach::MachineDescriptor& machine,
                       std::vector<mem::MapSpec> maps, RegionOptions opts)
    : machine_(machine), maps_(std::move(maps)), opts_(std::move(opts)) {
  HOMP_REQUIRE(!opts_.device_ids.empty(), "data region has no devices");
  HOMP_REQUIRE(!opts_.loop_domain.empty(),
               "data region needs a non-empty loop domain for its label");
  const std::size_t m = opts_.device_ids.size();

  // Fix the label's distribution now; every resident array aligns to it.
  switch (opts_.dist_algorithm) {
    case sched::AlgorithmKind::kBlock:
      loop_dist_ = dist::Distribution::block(opts_.loop_domain, m);
      break;
    case sched::AlgorithmKind::kModel1Auto:
    case sched::AlgorithmKind::kModel2Auto: {
      auto inputs = model::prediction_inputs(machine_, opts_.device_ids);
      std::vector<double> w =
          opts_.dist_algorithm == sched::AlgorithmKind::kModel1Auto
              ? model::model1_weights(opts_.cost_hint, inputs)
              : model::model2_weights(opts_.cost_hint, inputs);
      if (opts_.cutoff_ratio > 0.0) {
        w = model::apply_cutoff(w, opts_.cutoff_ratio).weights;
      }
      loop_dist_ = dist::Distribution::by_weights(opts_.loop_domain, w);
      break;
    }
    default:
      throw ConfigError(
          "data regions pin data up front; only BLOCK / MODEL_1_AUTO / "
          "MODEL_2_AUTO can fix the entry distribution");
  }

  // Resolve each array's distribution: ALIGN chains must root at the
  // region label or at a BLOCK-partitioned resident array.
  std::map<std::string, const mem::MapSpec*> by_name;
  for (const auto& s : maps_) {
    s.validate();
    HOMP_REQUIRE(by_name.emplace(s.name, &s).second,
                 "variable '" + s.name + "' mapped twice in data region");
    if (s.partitioned_dim() < 0) {
      HOMP_REQUIRE(!mem::copies_out(s.dir) || m == 1,
                   "replicated array '" + s.name +
                       "' cannot be copied out from multiple devices");
    }
  }

  stores_.reserve(m);
  envs_.resize(m);
  std::vector<double> entry_bytes(m, 0.0);
  double max_alloc = 0.0;

  for (std::size_t slot = 0; slot < m; ++slot) {
    stores_.push_back(std::make_unique<mem::MappingStore>());
    const auto& desc =
        machine_.devices[static_cast<std::size_t>(opts_.device_ids[slot])];
    const bool shared = desc.memory == mach::MemorySpace::kShared;
    if (!shared) {
      max_alloc = std::max(
          max_alloc, desc.alloc_overhead_s * static_cast<double>(maps_.size()));
    }
    for (const auto& s : maps_) {
      dist::Region owned = s.region;
      dist::Region footprint = s.region;
      const int pd = s.partitioned_dim();
      if (pd >= 0) {
        const auto d = static_cast<std::size_t>(pd);
        const dist::DimPolicy pol = s.partitioned_policy();
        dist::Range part;
        if (pol.kind == dist::PolicyKind::kBlock) {
          part = dist::Distribution::block(s.region.dim(d), m).part(slot);
        } else {
          HOMP_ASSERT(pol.kind == dist::PolicyKind::kAlign);
          // Walk the chain to the label, composing ratios.
          double ratio = pol.align_ratio;
          std::string target = pol.align_target;
          std::map<std::string, bool> seen{{s.name, true}};
          while (target != opts_.loop_label) {
            auto it = by_name.find(target);
            HOMP_REQUIRE(it != by_name.end(),
                         "ALIGN target '" + target + "' of '" + s.name +
                             "' not found in data region");
            HOMP_REQUIRE(seen.emplace(target, true).second,
                         "alignment cycle involving '" + target + "'");
            const dist::DimPolicy tp = it->second->partitioned_policy();
            HOMP_REQUIRE(tp.kind == dist::PolicyKind::kAlign,
                         "ALIGN chain of '" + s.name +
                             "' must end at the region label '" +
                             opts_.loop_label + "'");
            ratio *= tp.align_ratio;
            target = tp.align_target;
          }
          part = loop_dist_.part(slot).scaled(ratio).clamped_to(
              s.region.dim(d));
        }
        owned = s.region.with_dim(d, part);
        dist::Range fp = part.widened(s.halo_before, s.halo_after)
                             .clamped_to(s.region.dim(d));
        if (part.empty()) fp = part;
        footprint = s.region.with_dim(d, fp);
      }
      auto& mapping = stores_[slot]->create(s, owned, footprint, shared,
                                            opts_.execute_bodies);
      entry_bytes[slot] += mapping.bytes_in();
      envs_[slot].add(s.name, &mapping);
    }
    if (opts_.execute_bodies) envs_[slot].copy_in_all();
  }

  entry_time_ = max_alloc + concurrent_transfer_time(entry_bytes);
  total_time_ += entry_time_;
}

DataRegion::~DataRegion() = default;

const mem::DeviceDataEnv& DataRegion::env(std::size_t slot) const {
  HOMP_ASSERT(slot < envs_.size());
  return envs_[slot];
}

double DataRegion::concurrent_transfer_time(
    const std::vector<double>& bytes) const {
  // Processor-sharing completion on each link: with all transfers starting
  // together, the last one on a link finishes at alpha + total_bytes/beta.
  std::map<int, double> per_link;
  for (std::size_t slot = 0; slot < bytes.size(); ++slot) {
    if (bytes[slot] <= 0.0) continue;
    const auto& desc =
        machine_.devices[static_cast<std::size_t>(opts_.device_ids[slot])];
    if (desc.link == mach::kNoLink) continue;  // shared memory: no transfer
    per_link[desc.link] += bytes[slot];
  }
  double t = 0.0;
  for (const auto& [link, total] : per_link) {
    const auto& l = machine_.links[static_cast<std::size_t>(link)];
    t = std::max(t, l.latency_s + total / l.bandwidth_Bps);
  }
  return t;
}

OffloadResult DataRegion::offload(const LoopKernel& kernel, bool parallel) {
  HOMP_REQUIRE(!closed_, "offload on a closed data region");
  HOMP_REQUIRE(kernel.iterations == opts_.loop_domain,
               "kernel loop " + kernel.iterations.to_string() +
                   " does not match region domain " +
                   opts_.loop_domain.to_string());
  OffloadOptions o;
  o.device_ids = opts_.device_ids;
  o.loop_label = opts_.loop_label;
  o.execute_bodies = opts_.execute_bodies;
  o.parallel_offload = parallel;
  o.noise_seed = opts_.noise_seed;
  static const std::vector<mem::MapSpec> kNoMaps;
  OffloadExecution exec(machine_, kernel, kNoMaps, o, &loop_dist_, &envs_);
  OffloadResult res = exec.run();
  total_time_ += res.total_time;
  return res;
}

double DataRegion::halo_exchange(const std::string& array) {
  HOMP_REQUIRE(!closed_, "halo_exchange on a closed data region");
  const mem::MapSpec* spec = nullptr;
  for (const auto& s : maps_) {
    if (s.name == array) spec = &s;
  }
  HOMP_REQUIRE(spec != nullptr,
               "halo_exchange: '" + array + "' is not mapped in this region");
  const int pd = spec->partitioned_dim();
  HOMP_REQUIRE(pd >= 0 && (spec->halo_before > 0 || spec->halo_after > 0),
               "halo_exchange: '" + array + "' has no halo");
  const auto d = static_cast<std::size_t>(pd);

  const std::size_t m = envs_.size();
  std::vector<double> push_bytes(m, 0.0);
  std::vector<double> pull_bytes(m, 0.0);

  // Phase 1: every device publishes the boundary bands of its owned
  // region (the rows neighbouring footprints overlap).
  for (std::size_t slot = 0; slot < m; ++slot) {
    auto& mp = envs_[slot].mapping(array);
    const dist::Range owned = mp.owned().dim(d);
    if (owned.empty()) continue;
    const double row_bytes =
        static_cast<double>(mp.owned().volume() / std::max(owned.size(), 1LL)) *
        static_cast<double>(spec->binding.elem_size);
    // First halo_after rows go to the neighbour above; last halo_before
    // rows to the neighbour below. Clamp to the owned extent.
    const long long top = std::min(spec->halo_after, owned.size());
    const long long bottom = std::min(spec->halo_before, owned.size());
    if (top > 0) {
      const dist::Range band(owned.lo, owned.lo + top);
      mp.push_to_host(mp.owned().with_dim(d, band));
      push_bytes[slot] += static_cast<double>(top) * row_bytes;
    }
    if (bottom > 0) {
      const dist::Range band(owned.hi - bottom, owned.hi);
      mp.push_to_host(mp.owned().with_dim(d, band));
      push_bytes[slot] += static_cast<double>(bottom) * row_bytes;
    }
  }

  // Phase 2: every device refreshes its halo bands (footprint minus
  // owned) from the now-coherent host copy.
  for (std::size_t slot = 0; slot < m; ++slot) {
    auto& mp = envs_[slot].mapping(array);
    const dist::Range owned = mp.owned().dim(d);
    const dist::Range fp = mp.footprint().dim(d);
    if (fp.empty()) continue;
    const double row_bytes =
        static_cast<double>(mp.footprint().volume() /
                            std::max(fp.size(), 1LL)) *
        static_cast<double>(spec->binding.elem_size);
    if (fp.lo < owned.lo) {
      const dist::Range band(fp.lo, owned.lo);
      mp.pull_from_host(mp.footprint().with_dim(d, band));
      pull_bytes[slot] += static_cast<double>(band.size()) * row_bytes;
    }
    if (fp.hi > owned.hi) {
      const dist::Range band(owned.hi, fp.hi);
      mp.pull_from_host(mp.footprint().with_dim(d, band));
      pull_bytes[slot] += static_cast<double>(band.size()) * row_bytes;
    }
  }

  const double t = concurrent_transfer_time(push_bytes) +
                   concurrent_transfer_time(pull_bytes);
  total_time_ += t;
  return t;
}

double DataRegion::close() {
  if (closed_) return 0.0;
  closed_ = true;
  std::vector<double> exit_bytes(envs_.size(), 0.0);
  for (std::size_t slot = 0; slot < envs_.size(); ++slot) {
    exit_bytes[slot] = envs_[slot].total_bytes_out();
    if (!opts_.execute_bodies) continue;

    // The device copies are the ground truth at exit; snapshot their
    // combined sum before anything crosses the wire.
    const std::uint64_t want =
        opts_.verify_exit
            ? envs_[slot].checksum_out_device(opts_.exit_checksum)
            : 0;
    envs_[slot].copy_out_all();
    if (opts_.exit_corrupt_seed != 0 &&
        slot == static_cast<std::size_t>(opts_.exit_corrupt_slot)) {
      // Test hook: damage the host copy as if the exit transfer flipped
      // bits on the wire. The device copy stays intact, so a re-copy
      // repairs it.
      for (const auto& name : envs_[slot].names()) {
        auto& mp = envs_[slot].mapping(name);
        if (mp.shared() || !mem::copies_out(mp.spec().dir) ||
            mp.owned().empty()) {
          continue;
        }
        mp.corrupt_host(mp.owned(), opts_.exit_corrupt_seed);
        break;
      }
    }
    if (!opts_.verify_exit) continue;

    int attempt = 0;
    while (envs_[slot].checksum_out_host(opts_.exit_checksum) != want) {
      HOMP_REQUIRE(attempt < opts_.max_exit_retries,
                   "data region exit verification still failing after " +
                       std::to_string(attempt) +
                       " re-copies — host copy cannot be trusted");
      ++attempt;
      ++exit_retries_;
      // The re-copy re-sends the payload; its bytes join the exit bill.
      exit_bytes[slot] += envs_[slot].total_bytes_out();
      envs_[slot].copy_out_all();
    }
  }
  const double t = concurrent_transfer_time(exit_bytes);
  total_time_ += t;
  return t;
}

}  // namespace homp::rt
