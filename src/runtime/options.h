#ifndef HOMP_RUNTIME_OPTIONS_H
#define HOMP_RUNTIME_OPTIONS_H

/// \file options.h
/// Offload configuration and result/telemetry types.

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "dist/policy.h"
#include "model/loop_model.h"
#include "sched/scheduler.h"

namespace homp::rt {

/// Phases of the offloading procedure a proxy thread walks through
/// (paper Fig. 4); the accumulated per-phase times are the Figure 6
/// breakdown.
enum class Phase : int {
  kScheduling = 0,  ///< loop-distribution bookkeeping, chunk acquisition
  kAlloc,           ///< device buffer allocation
  kCopyIn,          ///< host -> device transfers
  kLaunch,          ///< kernel-launch overhead
  kCompute,         ///< kernel execution
  kCopyOut,         ///< device -> host transfers
  kBarrier,         ///< waiting for other devices (stage + final barriers)
};

inline constexpr int kNumPhases = 7;

const char* to_string(Phase p) noexcept;

struct OffloadOptions {
  /// Global device ids participating in the offload (the `device(...)`
  /// list). Must be non-empty; id 0 is the host.
  std::vector<int> device_ids;

  /// Loop-distribution algorithm and tuning.
  sched::SchedulerConfig sched;

  /// Loop distribution policy from dist_schedule(target:[...]):
  ///  - kAuto: resolve via `sched.kind` (or the selector when
  ///    `auto_select_algorithm`)
  ///  - kAlign: copy the named array's distribution onto the loop
  ///  - kBlock: force BLOCK regardless of sched.kind
  dist::DimPolicy loop_policy = dist::DimPolicy::auto_();

  /// Label under which the loop's distribution is registered for
  /// ALIGN(label) references from map clauses (e.g. "loop1").
  std::string loop_label = "loop";

  /// Resolve AUTO through the §IV-D heuristic instead of sched.kind.
  bool auto_select_algorithm = false;

  /// Execute kernel bodies and perform real copies (tests/examples); when
  /// false, run the pure discrete-event simulation (benchmarks at paper
  /// scale).
  bool execute_bodies = true;

  /// The `parallel target` composite construct (§III-4): offload setup on
  /// all devices concurrently. When false, device setup (alloc + copy-in
  /// issue) is serialized in device order, as plain multi-device target
  /// offloading would be.
  bool parallel_offload = true;

  /// Map data through unified memory instead of explicit transfers
  /// (§V-C ablation).
  bool use_unified_memory = false;

  /// Within-device distribution of a chunk across the device's parallel
  /// units — the dist_schedule(teams:[...]) level of the HOMP extension.
  /// Only BLOCK and CYCLIC are meaningful here. It matters when the
  /// kernel's iterations are indivisible (quantization onto units) or
  /// carry a work_factor skew: BLOCK gives each unit a contiguous
  /// subrange (imbalanced under skew), CYCLIC interleaves (mean-field
  /// balanced).
  dist::PolicyKind teams_policy = dist::PolicyKind::kBlock;

  /// Seed for the per-device execution-time noise streams.
  std::uint64_t noise_seed = 42;

  /// Record per-activity spans into OffloadResult::trace (see
  /// runtime/trace.h for the chrome://tracing exporter).
  bool collect_trace = false;
};

/// One pipeline activity on one device, in virtual time.
struct TraceSpan {
  int slot = -1;      ///< device slot within the offload
  std::string device;
  Phase phase = Phase::kCompute;
  double t0 = 0.0;    ///< virtual seconds
  double t1 = 0.0;
  std::string label;  ///< e.g. the chunk range
};

/// Per-device telemetry for one offload.
struct DeviceStats {
  std::string device_name;
  int device_id = -1;
  double phase_time[kNumPhases] = {};
  std::size_t chunks = 0;
  long long iterations = 0;
  double bytes_in = 0.0;
  double bytes_out = 0.0;
  /// Virtual time the device arrived at the final barrier.
  double finish_time = 0.0;

  double busy_time() const noexcept {
    double t = 0.0;
    for (int p = 0; p < kNumPhases; ++p) {
      if (p != static_cast<int>(Phase::kBarrier)) t += phase_time[p];
    }
    return t;
  }
};

struct OffloadResult {
  /// Offload wall time in virtual seconds (start to last device done).
  double total_time = 0.0;

  std::vector<DeviceStats> devices;  ///< per slot, in device_ids order

  double reduction = 0.0;

  /// Scheduler introspection.
  std::vector<double> planned_weights;
  model::CutoffResult cutoff;
  bool has_cutoff = false;
  sched::AlgorithmKind algorithm_used = sched::AlgorithmKind::kBlock;
  std::size_t chunks_issued = 0;

  /// Per-activity spans (only when OffloadOptions::collect_trace).
  std::vector<TraceSpan> trace;

  /// Load imbalance over per-device finish times (Figure 6 curve).
  Imbalance imbalance() const;

  /// Aggregate fraction of device-seconds spent in `p` across devices.
  double phase_fraction(Phase p) const;

  long long total_iterations() const;
};

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_OPTIONS_H
