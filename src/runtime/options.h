#ifndef HOMP_RUNTIME_OPTIONS_H
#define HOMP_RUNTIME_OPTIONS_H

/// \file options.h
/// Offload configuration and result/telemetry types.

#include <cstdint>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/error.h"
#include "common/stats.h"
#include "dist/policy.h"
#include "model/loop_model.h"
#include "obs/metrics.h"
#include "sched/scheduler.h"
#include "sim/fault.h"

namespace homp::rt {

/// Phases of the offloading procedure a proxy thread walks through
/// (paper Fig. 4); the accumulated per-phase times are the Figure 6
/// breakdown.
enum class Phase : int {
  kScheduling = 0,  ///< loop-distribution bookkeeping, chunk acquisition
  kAlloc,           ///< device buffer allocation
  kCopyIn,          ///< host -> device transfers
  kLaunch,          ///< kernel-launch overhead
  kCompute,         ///< kernel execution
  kCopyOut,         ///< device -> host transfers
  kBarrier,         ///< waiting for other devices (stage + final barriers)
  kRecovery,        ///< fault handling: failed-attempt time + retry backoff
};

inline constexpr int kNumPhases = 8;

const char* to_string(Phase p) noexcept;

/// Fault-injection knobs for one offload. Per-device `fault_*` keys from
/// the machine file are combined with the offload-level `extra` profile
/// (independent fault sources); scripted faults fire regardless of rates.
/// Everything is reproducible: the same seed + plan yields the same fault
/// sequence and the same OffloadResult (docs/RESILIENCE.md).
struct FaultInjection {
  /// Seed for the per-device fault streams (independent of noise_seed).
  std::uint64_t seed = 0x5eedfa;

  /// Additional fault profile applied to every participating device on
  /// top of its machine-file profile.
  sim::FaultProfile extra;

  /// Deterministic scripted faults (fire at a given op index or virtual
  /// time, regardless of the random rates).
  std::vector<sim::ScriptedFault> scripted;

  /// Retry budget per pipeline stage attempt chain; exceeding it
  /// quarantines the device.
  int max_retries = 3;

  /// Exponential backoff before retry k (1-based):
  /// min(backoff_base_s * 2^(k-1), backoff_cap_s) virtual seconds.
  double backoff_base_s = 100e-6;
  double backoff_cap_s = 10e-3;
};

/// Watchdog, straggler mitigation and probation re-admission knobs
/// (docs/RESILIENCE.md). Only consulted while fault injection is active:
/// a fault-free offload runs with zero watchdog machinery, so it stays
/// bit-identical to a run without the subsystem.
struct WatchdogOptions {
  /// Master switch. Off: no deadlines, no speculation, no probation —
  /// PR-1 recovery semantics (permanent quarantine) apply.
  bool enabled = true;

  /// Soft deadline for one chunk = max(deadline_floor_s,
  /// deadline_multiplier x predicted), where predicted comes from the
  /// model layer (MODEL_2 per-iteration time), loosened by the device's
  /// ThroughputHistory rate and its own observed per-iteration EWMA.
  /// Missing the soft deadline marks the chunk tardy and (optionally)
  /// speculates it onto the fastest idle survivor.
  double deadline_multiplier = 4.0;
  double deadline_floor_s = 50e-6;

  /// Hard deadline = hard_kill_multiplier x (soft deadline + the chunk's
  /// round-trip link latency). The latency grace leaves a speculative
  /// duplicate — which pays its own copy-in/copy-out alpha cost — room to
  /// commit before the original is killed. A chunk still computing past
  /// the hard deadline is presumed hung; the device is quarantined.
  double hard_kill_multiplier = 3.0;

  /// Duplicate a tardy chunk onto the fastest idle survivor; the first
  /// copy to commit wins, the loser is discarded before touching host
  /// state (first-commit-wins keeps results bit-identical).
  bool speculation = true;

  /// Quarantine a device once this many of its chunks went tardy
  /// (repeatedly-slow circuit breaker); 0 disables.
  int tardy_quarantine_threshold = 3;

  /// Re-admit quarantined devices after a cooldown, in probation: small
  /// probe chunks, promoted after `probation_successes` commits,
  /// re-quarantined (cooldown grows by `cooldown_growth`) on failure.
  /// Devices that are permanently lost (kDeviceLoss) are never readmitted.
  bool probation = true;
  double cooldown_base_s = 1e-3;
  double cooldown_growth = 2.0;
  double cooldown_cap_s = 1.0;

  /// Probe chunk size while in probation; 0 derives
  /// max(sched.min_chunk, loop/64).
  long long probe_iterations = 0;
  int probation_successes = 2;
};

/// End-to-end data-integrity knobs (docs/RESILIENCE.md "Integrity").
/// Every chunk payload is checksummed on the device side and verified at
/// commit; a mismatch discards the chunk before it touches host state and
/// re-executes it on a different device, escalating to quorum voting on
/// repeated disagreement. Armed only while fault injection is active
/// (or with `always`), so a fault-free offload pays nothing.
struct IntegrityOptions {
  /// Master switch. Off: injected corruption is committed silently — the
  /// pre-integrity behavior (useful as a negative control in tests).
  bool enabled = true;

  /// Arm verification even without fault injection (overhead
  /// measurement; also catches host-side memory errors in principle).
  bool always = false;

  /// Verify host->device chunk payloads right after copy-in. On by
  /// default: a corrupted *input* yields a wrong-but-self-consistent
  /// kernel result that no output checksum can catch. A detected input
  /// mismatch is repaired by re-transfer (transient-retry path).
  bool verify_copy_in = true;

  /// Checksum algorithm for payload verification.
  ChecksumKind checksum = ChecksumKind::kMix64;

  /// After this many integrity failures on one chunk, stop trusting any
  /// single device for it and escalate to voting.
  int vote_after_failures = 2;

  /// Ballots that must agree byte-for-byte before a voted chunk commits
  /// (2 = classic 2-of-3 with the failed original).
  int vote_quorum = 2;

  /// Hard cap on total executions + ballots for one chunk; exceeding it
  /// raises OffloadError instead of looping forever.
  int max_attempts = 8;

  /// Quarantine a device once this many of its commits failed
  /// verification (flaky-DMA circuit breaker, healed by the watchdog's
  /// probation machinery); 0 disables.
  int quarantine_threshold = 3;
};

/// Differential-harness taps consumed by the scenario fuzzer
/// (src/fuzz, the homp-fuzz driver; docs/FUZZING.md). All off by default:
/// a production offload pays nothing for them.
struct HarnessOptions {
  /// Engine step-budget watchdog: abort the offload with OffloadError once
  /// the DES engine has processed this many events without draining its
  /// queue. A scheduler livelock advances virtual time forever, so only an
  /// event budget — not a deadline — can catch it. 0 disables.
  long long step_budget = 0;

  /// Checksum every copies-out host buffer after the final write-backs
  /// and publish it as OffloadResult::result_checksum — the differential
  /// oracle's bit-exactness probe. Requires execute_bodies (a pure
  /// simulation has no result bytes to hash).
  bool capture_result_checksum = false;

  /// This offload is a deterministic replay of a recorded fuzz scenario
  /// (homp-fuzz --replay). Replays must carry the exact seed the repro
  /// file recorded — validate() rejects a replay without one, because a
  /// defaulted seed silently reproduces a *different* fault trajectory.
  bool replay = false;
  std::uint64_t replay_seed = 0;
};

struct OffloadOptions {
  /// Global device ids participating in the offload (the `device(...)`
  /// list). Must be non-empty; id 0 is the host.
  std::vector<int> device_ids;

  /// Loop-distribution algorithm and tuning.
  sched::SchedulerConfig sched;

  /// Loop distribution policy from dist_schedule(target:[...]):
  ///  - kAuto: resolve via `sched.kind` (or the selector when
  ///    `auto_select_algorithm`)
  ///  - kAlign: copy the named array's distribution onto the loop
  ///  - kBlock: force BLOCK regardless of sched.kind
  dist::DimPolicy loop_policy = dist::DimPolicy::auto_();

  /// Label under which the loop's distribution is registered for
  /// ALIGN(label) references from map clauses (e.g. "loop1").
  std::string loop_label = "loop";

  /// Resolve AUTO through the §IV-D heuristic instead of sched.kind.
  bool auto_select_algorithm = false;

  /// Execute kernel bodies and perform real copies (tests/examples); when
  /// false, run the pure discrete-event simulation (benchmarks at paper
  /// scale).
  bool execute_bodies = true;

  /// The `parallel target` composite construct (§III-4): offload setup on
  /// all devices concurrently. When false, device setup (alloc + copy-in
  /// issue) is serialized in device order, as plain multi-device target
  /// offloading would be.
  bool parallel_offload = true;

  /// Map data through unified memory instead of explicit transfers
  /// (§V-C ablation).
  bool use_unified_memory = false;

  /// Within-device distribution of a chunk across the device's parallel
  /// units — the dist_schedule(teams:[...]) level of the HOMP extension.
  /// Only BLOCK and CYCLIC are meaningful here. It matters when the
  /// kernel's iterations are indivisible (quantization onto units) or
  /// carry a work_factor skew: BLOCK gives each unit a contiguous
  /// subrange (imbalanced under skew), CYCLIC interleaves (mean-field
  /// balanced).
  dist::PolicyKind teams_policy = dist::PolicyKind::kBlock;

  /// Seed for the per-device execution-time noise streams.
  std::uint64_t noise_seed = 42;

  /// Fault injection and recovery tuning (docs/RESILIENCE.md). Faults are
  /// active when any device's machine-file profile, `fault.extra`, or
  /// `fault.scripted` specifies one; otherwise this adds no overhead.
  FaultInjection fault;

  /// Watchdog / straggler-mitigation / probation tuning; armed only while
  /// fault injection is active.
  WatchdogOptions watchdog;

  /// Data-integrity verification tuning; armed only while fault
  /// injection is active unless `integrity.always`.
  IntegrityOptions integrity;

  /// Fuzz/differential-harness taps (step-budget watchdog, result
  /// checksum capture, replay bookkeeping; docs/FUZZING.md).
  HarnessOptions harness;

  /// Record per-activity spans into OffloadResult::trace (see
  /// runtime/trace.h for the chrome://tracing exporter). Also implies
  /// collect_audit and per-device counter samples so the exported trace
  /// carries decision instants and Perfetto counter tracks.
  bool collect_trace = false;

  /// Record the scheduler decision audit trail into
  /// OffloadResult::decisions (docs/OBSERVABILITY.md) without paying for
  /// full span collection. The always-on prediction-error telemetry in
  /// DeviceStats does not depend on this flag.
  bool collect_audit = false;

  /// All knob-range violations across sched / fault / watchdog /
  /// integrity options (empty = valid). Centralized here so every entry
  /// point — Runtime::offload, direct OffloadExecution use, tests —
  /// shares one diagnostic.
  std::vector<std::string> validate() const;

  /// Throws ConfigError listing every violation.
  void validate_or_throw() const;
};

/// One injected fault observed by the recovery machinery, in virtual time.
struct FaultEvent {
  double time = 0.0;
  int slot = -1;
  int device_id = -1;
  sim::FaultKind kind = sim::FaultKind::kTransfer;
  bool fatal = false;  ///< true when the fault quarantined the device
  std::string detail;  ///< e.g. "copy-in [0,1024) attempt 2"
};

/// What the watchdog / probation machinery did (as opposed to FaultEvent,
/// which records what the fault *injection* did).
enum class RecoveryAction : int {
  kWatchdogFired = 0,  ///< a chunk missed its soft deadline (tardy)
  kSpeculated,         ///< tardy chunk duplicated onto a survivor
  kSpecCommitted,      ///< a speculative duplicate committed first
  kTardyAbandoned,     ///< the losing copy of a speculated chunk discarded
  kReadmitted,         ///< quarantined device re-entered in probation
  kProbePassed,        ///< a probation probe chunk committed
  kPromoted,           ///< probation device restored to full service
  kCorruptionDetected,  ///< a payload checksum mismatch; chunk discarded
  kReexecuteQueued,     ///< discarded chunk queued for another device
  kReexecuteCommitted,  ///< a re-executed chunk passed and committed
  kVoteOpened,          ///< repeated disagreement escalated to voting
  kVoteCommitted,       ///< a quorum of agreeing ballots committed
};

const char* to_string(RecoveryAction a) noexcept;

/// One watchdog/probation decision, in virtual-time order.
struct RecoveryEvent {
  double time = 0.0;
  int slot = -1;
  int device_id = -1;
  RecoveryAction action = RecoveryAction::kWatchdogFired;
  std::string detail;  ///< e.g. the chunk range and the deadline that fired
};

/// What a scheduler-audit record describes (docs/OBSERVABILITY.md).
enum class DecisionKind : int {
  kChunkAssigned = 0,  ///< scheduler handed a chunk to a device
  kCutoffKept,         ///< CUTOFF retained the device with this weight
  kCutoffDropped,      ///< CUTOFF removed the device from the plan
  kSpeculated,         ///< watchdog duplicated a tardy chunk
  kQuarantined,        ///< device withdrawn from service
  kReadmitted,         ///< device re-entered service in probation
};

const char* to_string(DecisionKind k) noexcept;

/// One scheduler/runtime decision with the inputs it was made on, in
/// virtual-time order. Chunk assignments carry the per-predictor
/// expected chunk seconds current at assignment time; `actual_s` is
/// backfilled when the chunk's compute completes on this device (and
/// stays negative when it never does — requeued, hung, cancelled).
/// Recorded when OffloadOptions::collect_audit or collect_trace is set.
struct SchedDecision {
  double time = 0.0;
  int slot = -1;
  int device_id = -1;
  DecisionKind kind = DecisionKind::kChunkAssigned;
  dist::Range range;  ///< chunk concerned; empty for device-level records

  /// Bytes this chunk moves over the device link (the kernel profile's
  /// per-iteration transfer characteristic times the chunk size); 0 for
  /// device-level records. The advisor's regret estimates divide by it.
  double chunk_bytes = 0.0;

  /// MODEL_1 prediction: pure compute seconds for the chunk.
  double predicted_model1_s = -1.0;
  /// MODEL_2 prediction: compute + Hockney transfer + launch seconds.
  double predicted_model2_s = -1.0;
  /// ThroughputHistory prediction (profiled rate); < 0 when no history.
  double predicted_profile_s = -1.0;
  /// Device per-iteration EWMA at decision time (0 until first chunk).
  double ewma_iter_s = 0.0;

  /// Measured fetch-to-compute-done seconds; < 0 = never completed here.
  double actual_s = -1.0;

  std::string detail;  ///< e.g. "scheduler", "requeue", "weight 0.31"
};

/// Perfetto counter-track ids emitted as "ph":"C" rows by
/// write_chrome_trace (one track per device per counter).
enum class CounterTrack : int {
  kQueueDepth = 0,     ///< chunks resident in the device pipeline
  kOutstandingBytes,   ///< transfer bytes currently in flight
  kIterations,         ///< cumulative committed iterations
  kEwmaThroughput,     ///< iterations/second from the per-device EWMA
};

inline constexpr int kNumCounterTracks = 4;

const char* to_string(CounterTrack t) noexcept;

/// One counter-track sample on one device, in virtual time. Recorded at
/// pipeline transitions when OffloadOptions::collect_trace is set.
struct CounterSample {
  double time = 0.0;
  int slot = -1;
  CounterTrack track = CounterTrack::kQueueDepth;
  double value = 0.0;
};

/// One pipeline activity on one device, in virtual time.
struct TraceSpan {
  int slot = -1;      ///< device slot within the offload
  std::string device;
  Phase phase = Phase::kCompute;
  double t0 = 0.0;    ///< virtual seconds
  double t1 = 0.0;
  std::string label;  ///< e.g. the chunk range
};

/// Accuracy of the model layer's predictions against what one device
/// actually measured, accumulated over its healthy scheduler-issued
/// chunks (requeued/speculative copies excluded — their timings carry
/// recovery noise). Relative error of one chunk = |predicted - actual|
/// / actual. Always collected; it is a handful of adds per chunk.
struct PredictionErrorStats {
  double model1_err_sum = 0.0;   ///< vs measured compute seconds
  double model2_err_sum = 0.0;   ///< vs measured fetch-to-compute-done
  double profile_err_sum = 0.0;  ///< history rate vs fetch-to-compute-done
  std::size_t model_samples = 0;
  std::size_t profile_samples = 0;  ///< chunks with a history rate

  /// Per-predictor relative-error extrema (-1 until the first sample):
  /// the advisor's spread evidence — a mean alone cannot distinguish a
  /// uniformly-wrong model from one wrecked by a single outlier chunk.
  double model1_err_min = -1.0;
  double model1_err_max = -1.0;
  double model2_err_min = -1.0;
  double model2_err_max = -1.0;
  double profile_err_min = -1.0;
  double profile_err_max = -1.0;

  double model1_mean() const noexcept {
    return model_samples == 0 ? 0.0 : model1_err_sum / double(model_samples);
  }
  double model2_mean() const noexcept {
    return model_samples == 0 ? 0.0 : model2_err_sum / double(model_samples);
  }
  double profile_mean() const noexcept {
    return profile_samples == 0 ? 0.0
                                : profile_err_sum / double(profile_samples);
  }
};

/// Per-device telemetry for one offload.
struct DeviceStats {
  std::string device_name;
  int device_id = -1;
  double phase_time[kNumPhases] = {};
  std::size_t chunks = 0;
  long long iterations = 0;
  double bytes_in = 0.0;
  double bytes_out = 0.0;
  /// Virtual time the device arrived at the final barrier.
  double finish_time = 0.0;

  /// Fault/recovery telemetry (all zero on a fault-free run).
  std::size_t faults = 0;   ///< injected faults observed on this device
  std::size_t retries = 0;  ///< stage attempts retried after a transient
  long long requeued_iterations = 0;  ///< iterations taken FROM this device
  bool quarantined = false;     ///< still quarantined at offload end
  double quarantined_at = 0.0;  ///< virtual time of (last) quarantine

  /// Watchdog / straggler / probation telemetry (docs/RESILIENCE.md).
  std::size_t tardy_chunks = 0;   ///< own chunks that missed the deadline
  std::size_t spec_copies_run = 0;  ///< duplicates executed ON this device
  std::size_t spec_copies_won = 0;  ///< duplicates that committed first
  std::size_t probe_chunks = 0;     ///< chunks served while in probation
  std::size_t readmissions = 0;     ///< probation re-entries
  std::size_t quarantine_count = 0;  ///< total quarantines (>=1 can heal)

  /// Data-integrity telemetry (docs/RESILIENCE.md "Integrity").
  std::size_t corruptions_injected = 0;  ///< payloads/results bit-flipped
  std::size_t integrity_checks = 0;      ///< payload verifications run
  std::size_t integrity_failures = 0;    ///< checksum mismatches caught
  std::size_t integrity_reexecutions = 0;  ///< discarded chunks re-run here
  std::size_t vote_rounds = 0;           ///< ballot executions served here

  /// Model-accuracy telemetry (docs/OBSERVABILITY.md).
  PredictionErrorStats prediction;

  /// End-to-end (fetch to compute-done) seconds of every chunk computed
  /// on this device, including requeued/speculative copies.
  obs::Histogram chunk_seconds;

  double busy_time() const noexcept {
    double t = 0.0;
    for (int p = 0; p < kNumPhases; ++p) {
      if (p != static_cast<int>(Phase::kBarrier)) t += phase_time[p];
    }
    return t;
  }
};

struct OffloadResult {
  /// Offload wall time in virtual seconds (start to last device done).
  double total_time = 0.0;

  std::vector<DeviceStats> devices;  ///< per slot, in device_ids order

  double reduction = 0.0;

  /// Scheduler introspection.
  std::vector<double> planned_weights;
  model::CutoffResult cutoff;
  bool has_cutoff = false;
  sched::AlgorithmKind algorithm_used = sched::AlgorithmKind::kBlock;
  std::size_t chunks_issued = 0;

  /// Per-activity spans (only when OffloadOptions::collect_trace).
  std::vector<TraceSpan> trace;

  /// Every injected fault the recovery machinery observed, in time order.
  std::vector<FaultEvent> fault_events;

  /// Every watchdog / speculation / probation decision, in time order.
  std::vector<RecoveryEvent> recovery_events;

  /// Scheduler decision audit trail (only when collect_audit or
  /// collect_trace), in decision order.
  std::vector<SchedDecision> decisions;

  /// Counter-track samples (only when collect_trace), in time order per
  /// device; write_chrome_trace turns them into Perfetto counter rows.
  std::vector<CounterSample> counters;

  /// True when at least one device was quarantined at some point (even if
  /// later re-admitted): the offload ran degraded for a while.
  bool degraded = false;

  /// DES engine events processed by this offload — the denominator of the
  /// step-budget watchdog and the bench_engine events/sec figure.
  std::size_t engine_events = 0;

  /// Combined checksum over every copies-out host buffer after the final
  /// write-backs (only when OffloadOptions::harness.capture_result_checksum
  /// and the buffers are real and contiguous — `result_checksum_valid`
  /// says so). Two algorithms distributing the same loop must agree here
  /// bit for bit; the fuzz oracle's differential invariant.
  std::uint64_t result_checksum = 0;
  bool result_checksum_valid = false;

  /// Failure-domain outcome (shared-context executions only; standalone
  /// run() still throws). `failed` marks an unrecoverable error captured
  /// by the execution's containment guard; `cancelled` marks cooperative
  /// cancellation (e.g. the serving layer revoking a job that blew its
  /// admitted deadline). When either is set the result carries whatever
  /// partial statistics were gathered — iteration coverage is NOT
  /// guaranteed and the checksum is never valid.
  bool failed = false;
  bool cancelled = false;
  FailClass fail_class = FailClass::kUnspecified;
  std::string error;  ///< empty unless failed/cancelled

  /// Load imbalance over per-device finish times (Figure 6 curve).
  Imbalance imbalance() const;

  /// Aggregate fraction of device-seconds spent in `p` across devices.
  double phase_fraction(Phase p) const;

  long long total_iterations() const;
};

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_OPTIONS_H
