#include "runtime/options.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace homp::rt {

const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kScheduling:
      return "scheduling";
    case Phase::kAlloc:
      return "alloc";
    case Phase::kCopyIn:
      return "copy-in";
    case Phase::kLaunch:
      return "launch";
    case Phase::kCompute:
      return "compute";
    case Phase::kCopyOut:
      return "copy-out";
    case Phase::kBarrier:
      return "barrier";
    case Phase::kRecovery:
      return "recovery";
  }
  return "?";
}

const char* to_string(RecoveryAction a) noexcept {
  switch (a) {
    case RecoveryAction::kWatchdogFired:
      return "watchdog-fired";
    case RecoveryAction::kSpeculated:
      return "speculated";
    case RecoveryAction::kSpecCommitted:
      return "spec-committed";
    case RecoveryAction::kTardyAbandoned:
      return "tardy-abandoned";
    case RecoveryAction::kReadmitted:
      return "readmitted";
    case RecoveryAction::kProbePassed:
      return "probe-passed";
    case RecoveryAction::kPromoted:
      return "promoted";
    case RecoveryAction::kCorruptionDetected:
      return "corruption-detected";
    case RecoveryAction::kReexecuteQueued:
      return "reexecute-queued";
    case RecoveryAction::kReexecuteCommitted:
      return "reexecute-committed";
    case RecoveryAction::kVoteOpened:
      return "vote-opened";
    case RecoveryAction::kVoteCommitted:
      return "vote-committed";
  }
  return "?";
}

const char* to_string(DecisionKind k) noexcept {
  switch (k) {
    case DecisionKind::kChunkAssigned:
      return "chunk-assigned";
    case DecisionKind::kCutoffKept:
      return "cutoff-kept";
    case DecisionKind::kCutoffDropped:
      return "cutoff-dropped";
    case DecisionKind::kSpeculated:
      return "speculated";
    case DecisionKind::kQuarantined:
      return "quarantined";
    case DecisionKind::kReadmitted:
      return "readmitted";
  }
  return "?";
}

const char* to_string(CounterTrack t) noexcept {
  switch (t) {
    case CounterTrack::kQueueDepth:
      return "queue depth";
    case CounterTrack::kOutstandingBytes:
      return "outstanding transfer bytes";
    case CounterTrack::kIterations:
      return "committed iterations";
    case CounterTrack::kEwmaThroughput:
      return "EWMA throughput (iter/s)";
  }
  return "?";
}

std::vector<std::string> OffloadOptions::validate() const {
  std::vector<std::string> v;

  auto fraction = [&](double x, const char* key) {
    if (!(x > 0.0 && x <= 1.0)) {
      v.push_back(std::string("sched.") + key + " must be in (0, 1]");
    }
  };
  fraction(sched.dynamic_chunk_fraction, "dynamic_chunk_fraction");
  fraction(sched.guided_chunk_fraction, "guided_chunk_fraction");
  fraction(sched.sample_fraction, "sample_fraction");
  fraction(sched.cyclic_block_fraction, "cyclic_block_fraction");
  fraction(sched.steal_grain_fraction, "steal_grain_fraction");
  if (!(sched.cutoff_ratio >= 0.0 && sched.cutoff_ratio < 1.0)) {
    v.push_back("sched.cutoff_ratio must be in [0, 1)");
  }
  if (sched.min_chunk < 1) v.push_back("sched.min_chunk must be >= 1");
  if (sched.cyclic_absolute_block < 0) {
    v.push_back("sched.cyclic_absolute_block must be >= 0 (0 derives from "
                "cyclic_block_fraction)");
  }

  if (fault.max_retries < 0) {
    v.push_back("fault.max_retries must be non-negative");
  }
  if (!(fault.backoff_base_s >= 0.0 &&
        fault.backoff_cap_s >= fault.backoff_base_s)) {
    v.push_back("fault backoff must satisfy 0 <= base <= cap");
  }
  auto fv = fault.extra.violations("offload fault options");
  v.insert(v.end(), fv.begin(), fv.end());

  const WatchdogOptions& w = watchdog;
  if (!(w.deadline_multiplier > 0.0 && w.deadline_floor_s >= 0.0)) {
    v.push_back("watchdog deadline_multiplier must be > 0 and the floor "
                ">= 0");
  }
  if (!(w.hard_kill_multiplier >= 1.0)) {
    v.push_back("watchdog hard_kill_multiplier must be >= 1 (the hard "
                "deadline cannot precede the soft one)");
  }
  if (w.tardy_quarantine_threshold < 0) {
    v.push_back("watchdog tardy_quarantine_threshold must be >= 0");
  }
  if (!(w.cooldown_base_s >= 0.0 && w.cooldown_growth >= 1.0 &&
        w.cooldown_cap_s >= w.cooldown_base_s)) {
    v.push_back("watchdog cooldown must satisfy 0 <= base <= cap, "
                "growth >= 1");
  }
  if (!(w.probe_iterations >= 0 && w.probation_successes >= 1)) {
    v.push_back("watchdog probation knobs must be non-negative (and at "
                "least one probe success required)");
  }

  const HarnessOptions& h = harness;
  if (h.step_budget < 0) {
    v.push_back("harness.step_budget must be >= 0 (0 disables the "
                "step-budget watchdog)");
  } else if (h.step_budget > 0 &&
             static_cast<std::size_t>(h.step_budget) <
                 std::max<std::size_t>(device_ids.size(), 1)) {
    v.push_back("harness.step_budget is below one engine event per "
                "participating device — even fetching the first chunks "
                "would exhaust it");
  }
  if (h.replay && h.replay_seed == 0) {
    v.push_back("harness.replay requires the recorded nonzero "
                "harness.replay_seed (a defaulted seed replays a "
                "different fault trajectory)");
  }

  const IntegrityOptions& in = integrity;
  if (in.vote_after_failures < 1) {
    v.push_back("integrity.vote_after_failures must be >= 1");
  }
  if (in.vote_quorum < 1) v.push_back("integrity.vote_quorum must be >= 1");
  if (in.max_attempts < 2) {
    v.push_back("integrity.max_attempts must be >= 2 (the original "
                "execution plus at least one re-execution)");
  }
  if (in.quarantine_threshold < 0) {
    v.push_back("integrity.quarantine_threshold must be >= 0");
  }

  return v;
}

void OffloadOptions::validate_or_throw() const {
  const auto v = validate();
  if (!v.empty()) {
    throw ConfigError("invalid offload options: " + join(v, "; "));
  }
}

Imbalance OffloadResult::imbalance() const {
  std::vector<double> finish;
  finish.reserve(devices.size());
  for (const auto& d : devices) {
    // Devices that did no work (CUTOFF-dropped) do not skew the balance
    // figure; the paper reports imbalance over participating devices.
    if (d.iterations > 0) finish.push_back(d.finish_time);
  }
  return imbalance_of(finish);
}

double OffloadResult::phase_fraction(Phase p) const {
  double phase = 0.0;
  double total = 0.0;
  for (const auto& d : devices) {
    phase += d.phase_time[static_cast<int>(p)];
    for (int i = 0; i < kNumPhases; ++i) total += d.phase_time[i];
  }
  return total > 0.0 ? phase / total : 0.0;
}

long long OffloadResult::total_iterations() const {
  long long n = 0;
  for (const auto& d : devices) n += d.iterations;
  return n;
}

}  // namespace homp::rt
