#include "runtime/options.h"

namespace homp::rt {

const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kScheduling:
      return "scheduling";
    case Phase::kAlloc:
      return "alloc";
    case Phase::kCopyIn:
      return "copy-in";
    case Phase::kLaunch:
      return "launch";
    case Phase::kCompute:
      return "compute";
    case Phase::kCopyOut:
      return "copy-out";
    case Phase::kBarrier:
      return "barrier";
    case Phase::kRecovery:
      return "recovery";
  }
  return "?";
}

const char* to_string(RecoveryAction a) noexcept {
  switch (a) {
    case RecoveryAction::kWatchdogFired:
      return "watchdog-fired";
    case RecoveryAction::kSpeculated:
      return "speculated";
    case RecoveryAction::kSpecCommitted:
      return "spec-committed";
    case RecoveryAction::kTardyAbandoned:
      return "tardy-abandoned";
    case RecoveryAction::kReadmitted:
      return "readmitted";
    case RecoveryAction::kProbePassed:
      return "probe-passed";
    case RecoveryAction::kPromoted:
      return "promoted";
  }
  return "?";
}

Imbalance OffloadResult::imbalance() const {
  std::vector<double> finish;
  finish.reserve(devices.size());
  for (const auto& d : devices) {
    // Devices that did no work (CUTOFF-dropped) do not skew the balance
    // figure; the paper reports imbalance over participating devices.
    if (d.iterations > 0) finish.push_back(d.finish_time);
  }
  return imbalance_of(finish);
}

double OffloadResult::phase_fraction(Phase p) const {
  double phase = 0.0;
  double total = 0.0;
  for (const auto& d : devices) {
    phase += d.phase_time[static_cast<int>(p)];
    for (int i = 0; i < kNumPhases; ++i) total += d.phase_time[i];
  }
  return total > 0.0 ? phase / total : 0.0;
}

long long OffloadResult::total_iterations() const {
  long long n = 0;
  for (const auto& d : devices) n += d.iterations;
  return n;
}

}  // namespace homp::rt
