#ifndef HOMP_RUNTIME_EXEC_CONTEXT_H
#define HOMP_RUNTIME_EXEC_CONTEXT_H

/// \file exec_context.h
/// Shared execution substrate for concurrent offloads.
///
/// Standalone, an OffloadExecution owns a private sim::Engine and one
/// pair of full-duplex link lanes per machine link — the whole machine
/// belongs to one offload. A multi-tenant server (src/serve) instead
/// owns the engine and the lanes itself and lends them to every
/// execution it launches via this context, so N offloads advance on one
/// virtual clock and their transfers contend on the same
/// processor-shared lanes (sim/link.h), exactly as N tenants' DMA
/// streams would contend on one PCIe switch.
///
/// Lifetime: the context (and everything it points to) must outlive
/// every OffloadExecution launched against it, *including* executions
/// that already delivered their result — stragglers such as probation
/// cooldown timers may still fire on the shared engine after a job
/// completes, and they dereference the execution they belong to.

#include <functional>
#include <vector>

namespace homp::sim {
class Engine;
class SharedLink;
}  // namespace homp::sim

namespace homp::rt {

struct ExecContext {
  /// The shared clock. Executions schedule onto it relative to "now"
  /// (launch time), never at absolute t=0.
  sim::Engine* engine = nullptr;

  /// Full-duplex lanes per machine link, indexed like
  /// MachineDescriptor::links (same layout OffloadExecution builds for
  /// itself standalone). Borrowed, never owned.
  std::vector<sim::SharedLink*> down_links;
  std::vector<sim::SharedLink*> up_links;

  /// Optional compute-dilation hook, sampled once per chunk launch:
  /// returns the multiplicative slowdown (>= 1) of running a kernel on
  /// `device_id` right now. The serving layer uses it to model
  /// time-slicing when device sharing (rather than exclusive
  /// reservation) is configured; identity when unset.
  std::function<double(int device_id)> load_factor;
};

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_EXEC_CONTEXT_H
