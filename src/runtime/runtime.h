#ifndef HOMP_RUNTIME_RUNTIME_H
#define HOMP_RUNTIME_RUNTIME_H

/// \file runtime.h
/// Public facade of the HOMP runtime: owns the machine description and
/// launches offloads and data regions. One Runtime per simulated node.
///
/// Typical use (the axpy_homp_v2 pattern of Fig. 2):
///
///   auto rt = homp::rt::Runtime::from_builtin("gpu4");
///   homp::rt::OffloadOptions o;
///   o.device_ids = rt.all_devices();
///   o.sched.kind = homp::sched::AlgorithmKind::kDynamic;
///   auto result = rt.offload(kernel, maps, o);

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "machine/device.h"
#include "memory/map_spec.h"
#include "runtime/data_region.h"
#include "runtime/kernel.h"
#include "runtime/options.h"
#include "sched/extended_sched.h"

namespace homp::rt {

class Runtime {
 public:
  explicit Runtime(mach::MachineDescriptor machine);

  /// Construct over a built-in machine profile ("gpu4", "cpu-mic",
  /// "full", "host-only" — see machine/profiles.h).
  static Runtime from_builtin(const std::string& name);

  /// Construct from a machine-description file (§V: "the HOMP runtime
  /// reads from a given machine description file").
  static Runtime from_machine_file(const std::string& path);

  const mach::MachineDescriptor& machine() const noexcept { return machine_; }

  /// omp_get_num_devices() analogue (includes the host, device 0).
  int num_devices() const noexcept {
    return static_cast<int>(machine_.devices.size());
  }

  /// All device ids, host first — the device(0:*) target list.
  std::vector<int> all_devices() const;

  /// All accelerators, excluding the host — device(1:*).
  std::vector<int> accelerators() const;

  /// All devices of one type — device(0:*:HOMP_DEVICE_NVGPU) etc.
  std::vector<int> devices_of_type(mach::DeviceType t) const;

  /// Execute one multi-device offload. `maps` must outlive the call.
  ///
  /// Every offload also records the per-device throughput it observed
  /// into the runtime's ThroughputHistory, which the HISTORY_AUTO
  /// extension algorithm consumes on later offloads of the same kernel
  /// (Qilin-style adaptive mapping; see sched/extended_sched.h).
  ///
  /// Not re-entrant: one offload at a time per Runtime. A second call
  /// while one is in flight — from another thread, or from a kernel
  /// body calling back into the same Runtime — throws ExecutionError
  /// immediately instead of silently interleaving ThroughputHistory
  /// updates. Concurrent offloads over one machine are what
  /// serve::OffloadServer (docs/SERVING.md) is for.
  OffloadResult offload(const LoopKernel& kernel,
                        const std::vector<mem::MapSpec>& maps,
                        const OffloadOptions& opts) const;

  /// Observed-throughput store fed by offload(); HISTORY_AUTO reads it.
  sched::ThroughputHistory& history() const { return history_; }

  /// Open a persistent data region (the `target data` construct).
  std::unique_ptr<DataRegion> map_data(std::vector<mem::MapSpec> maps,
                                       RegionOptions opts) const;

 private:
  mach::MachineDescriptor machine_;
  mutable sched::ThroughputHistory history_;
  /// In-flight guard for offload()'s single-offload invariant. Held by
  /// shared_ptr so Runtime stays movable (from_builtin returns by
  /// value); the flag itself never moves.
  mutable std::shared_ptr<std::atomic<bool>> offload_in_flight_ =
      std::make_shared<std::atomic<bool>>(false);
};

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_RUNTIME_H
