#ifndef HOMP_RUNTIME_TRACE_H
#define HOMP_RUNTIME_TRACE_H

/// \file trace.h
/// Offload execution traces.
///
/// With OffloadOptions::collect_trace set, the runtime records one span
/// per pipeline activity (copy-in, launch+compute, copy-out, barrier
/// waits) per device, in virtual time. write_chrome_trace() serializes
/// them in the Chrome trace-event format ("catapult"), loadable in
/// chrome://tracing or Perfetto — one row per device, so the overlap of
/// transfers with computation and the barrier skew are directly visible.

#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/options.h"

namespace homp::rt {

/// Serialize spans as a Chrome trace-event JSON array. Virtual seconds
/// are mapped to microseconds (the format's native unit).
void write_chrome_trace(const std::vector<TraceSpan>& spans,
                        std::ostream& os);

/// Serialize a whole result: the spans plus one instant event ("ph": "i")
/// per injected fault, per watchdog/probation recovery action, and per
/// scheduler decision-audit record (cat "decision", carrying the
/// predicted MODEL_1/MODEL_2/PROFILE times and the actual chunk time in
/// args), on the row of the device concerned — so the scheduler's plan
/// lines up with the pipeline activity it produced. Counter samples
/// (OffloadResult::counters) become Perfetto counter tracks ("ph": "C")
/// with device-qualified names, e.g. "queue depth (gpu0)": queue depth,
/// outstanding transfer bytes, committed iterations, and EWMA throughput
/// per device. All labels are fully JSON-escaped; the output is a valid
/// JSON document (docs/OBSERVABILITY.md).
void write_chrome_trace(const OffloadResult& result, std::ostream& os);

/// Convenience: write a result's trace to a file. Throws ConfigError if
/// the file cannot be opened or the result carries no trace.
void write_chrome_trace_file(const OffloadResult& result,
                             const std::string& path);

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_TRACE_H
