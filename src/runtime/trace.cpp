#include "runtime/trace.h"

#include <fstream>
#include <ostream>

#include "common/error.h"

namespace homp::rt {

namespace {
void json_escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}
}  // namespace

namespace {
/// Shared body: spans, then optional instant fault/recovery markers, then
/// the thread-name metadata rows.
void write_events(const std::vector<TraceSpan>& spans,
                  const std::vector<FaultEvent>* faults,
                  const std::vector<RecoveryEvent>* recovery,
                  std::ostream& os);
}  // namespace

void write_chrome_trace(const std::vector<TraceSpan>& spans,
                        std::ostream& os) {
  write_events(spans, nullptr, nullptr, os);
}

void write_chrome_trace(const OffloadResult& result, std::ostream& os) {
  write_events(result.trace, &result.fault_events, &result.recovery_events,
               os);
}

namespace {
void write_events(const std::vector<TraceSpan>& spans,
                  const std::vector<FaultEvent>* faults,
                  const std::vector<RecoveryEvent>* recovery,
                  std::ostream& os) {
  os << "[\n";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) os << ",\n";
    first = false;
    os << R"(  {"name": ")";
    json_escape_into(os, std::string(to_string(s.phase)) +
                             (s.label.empty() ? "" : " " + s.label));
    os << R"(", "cat": "homp", "ph": "X", "pid": 0, "tid": )" << s.slot
       << R"(, "ts": )" << s.t0 * 1e6 << R"(, "dur": )"
       << (s.t1 - s.t0) * 1e6 << R"(, "args": {"device": ")";
    json_escape_into(os, s.device);
    os << R"("}})";
  }
  if (faults != nullptr) {
    for (const auto& f : *faults) {
      if (!first) os << ",\n";
      first = false;
      os << R"(  {"name": "fault: )";
      json_escape_into(os, std::string(sim::to_string(f.kind)) +
                               (f.detail.empty() ? "" : " " + f.detail));
      os << R"(", "cat": "fault", "ph": "i", "s": "t", "pid": 0, "tid": )"
         << f.slot << R"(, "ts": )" << f.time * 1e6
         << R"(, "args": {"fatal": )" << (f.fatal ? "true" : "false")
         << "}}";
    }
  }
  if (recovery != nullptr) {
    for (const auto& r : *recovery) {
      if (!first) os << ",\n";
      first = false;
      os << R"(  {"name": ")";
      json_escape_into(os, std::string(to_string(r.action)) +
                               (r.detail.empty() ? "" : " " + r.detail));
      os << R"(", "cat": "recovery", "ph": "i", "s": "t", "pid": 0, )"
         << R"("tid": )" << r.slot << R"(, "ts": )" << r.time * 1e6 << "}";
    }
  }
  // Thread-name metadata rows so devices are labelled in the viewer.
  std::vector<std::pair<int, std::string>> seen;
  for (const auto& s : spans) {
    bool dup = false;
    for (const auto& [slot, _] : seen) {
      if (slot == s.slot) dup = true;
    }
    if (!dup) seen.emplace_back(s.slot, s.device);
  }
  for (const auto& [slot, device] : seen) {
    if (!first) os << ",\n";
    first = false;
    os << R"(  {"name": "thread_name", "ph": "M", "pid": 0, "tid": )"
       << slot << R"(, "args": {"name": ")";
    json_escape_into(os, device);
    os << R"("}})";
  }
  os << "\n]\n";
}
}  // namespace

void write_chrome_trace_file(const OffloadResult& result,
                             const std::string& path) {
  HOMP_REQUIRE(!result.trace.empty(),
               "offload carries no trace; set OffloadOptions::collect_trace");
  std::ofstream out(path);
  HOMP_REQUIRE(out.good(), "cannot open trace file: " + path);
  write_chrome_trace(result, out);
}

}  // namespace homp::rt
