#include "runtime/trace.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/error.h"

namespace homp::rt {

namespace {
/// Full JSON string escaping: quotes, backslashes, and every control
/// character (labels interpolate chunk ranges and fault detail strings,
/// which must never be able to break the document).
void json_escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}
}  // namespace

namespace {
/// Shared body: spans, then optional instant fault/recovery/decision
/// markers and counter-track samples, then the thread-name metadata rows.
void write_events(const std::vector<TraceSpan>& spans,
                  const std::vector<FaultEvent>* faults,
                  const std::vector<RecoveryEvent>* recovery,
                  const std::vector<SchedDecision>* decisions,
                  const std::vector<CounterSample>* counters,
                  std::ostream& os);
}  // namespace

void write_chrome_trace(const std::vector<TraceSpan>& spans,
                        std::ostream& os) {
  write_events(spans, nullptr, nullptr, nullptr, nullptr, os);
}

void write_chrome_trace(const OffloadResult& result, std::ostream& os) {
  write_events(result.trace, &result.fault_events, &result.recovery_events,
               &result.decisions, &result.counters, os);
}

namespace {
void write_events(const std::vector<TraceSpan>& spans,
                  const std::vector<FaultEvent>* faults,
                  const std::vector<RecoveryEvent>* recovery,
                  const std::vector<SchedDecision>* decisions,
                  const std::vector<CounterSample>* counters,
                  std::ostream& os) {
  // Slot -> device name, for counter-track naming and the metadata rows.
  std::vector<std::pair<int, std::string>> seen;
  for (const auto& s : spans) {
    bool dup = false;
    for (const auto& [slot, _] : seen) {
      if (slot == s.slot) dup = true;
    }
    if (!dup) seen.emplace_back(s.slot, s.device);
  }
  auto device_of = [&seen](int slot) -> std::string {
    for (const auto& [s, name] : seen) {
      if (s == slot) return name;
    }
    return "slot " + std::to_string(slot);
  };

  // Full-fidelity timestamps: the default 6 significant digits would
  // round microsecond stamps of longer runs and defeat byte-identical
  // determinism checks on derived figures.
  const auto old_precision = os.precision(15);

  os << "[\n";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) os << ",\n";
    first = false;
    os << R"(  {"name": ")";
    json_escape_into(os, std::string(to_string(s.phase)) +
                             (s.label.empty() ? "" : " " + s.label));
    os << R"(", "cat": "homp", "ph": "X", "pid": 0, "tid": )" << s.slot
       << R"(, "ts": )" << s.t0 * 1e6 << R"(, "dur": )"
       << (s.t1 - s.t0) * 1e6 << R"(, "args": {"device": ")";
    json_escape_into(os, s.device);
    os << R"("}})";
  }
  if (faults != nullptr) {
    for (const auto& f : *faults) {
      if (!first) os << ",\n";
      first = false;
      os << R"(  {"name": "fault: )";
      json_escape_into(os, std::string(sim::to_string(f.kind)) +
                               (f.detail.empty() ? "" : " " + f.detail));
      os << R"(", "cat": "fault", "ph": "i", "s": "t", "pid": 0, "tid": )"
         << f.slot << R"(, "ts": )" << f.time * 1e6
         << R"(, "args": {"fatal": )" << (f.fatal ? "true" : "false")
         << "}}";
    }
  }
  if (recovery != nullptr) {
    for (const auto& r : *recovery) {
      if (!first) os << ",\n";
      first = false;
      os << R"(  {"name": ")";
      json_escape_into(os, std::string(to_string(r.action)) +
                               (r.detail.empty() ? "" : " " + r.detail));
      os << R"(", "cat": "recovery", "ph": "i", "s": "t", "pid": 0, )"
         << R"("tid": )" << r.slot << R"(, "ts": )" << r.time * 1e6 << "}";
    }
  }
  if (decisions != nullptr) {
    // Decision-audit instants: the plan lined up against the pipeline
    // activity it produced. Prediction inputs ride in args (negative
    // predictions mean "no such predictor for this record").
    for (const auto& d : *decisions) {
      if (!first) os << ",\n";
      first = false;
      os << R"(  {"name": "decision: )";
      std::string label = to_string(d.kind);
      if (!d.range.empty()) {
        label += ' ';
        label += d.range.to_string();
      }
      json_escape_into(os, label);
      os << R"(", "cat": "decision", "ph": "i", "s": "t", "pid": 0, )"
         << R"("tid": )" << d.slot << R"(, "ts": )" << d.time * 1e6
         << R"(, "args": {"chunk_bytes": )" << d.chunk_bytes
         << R"(, "model1_s": )" << d.predicted_model1_s
         << R"(, "model2_s": )" << d.predicted_model2_s
         << R"(, "profile_s": )" << d.predicted_profile_s
         << R"(, "ewma_iter_s": )" << d.ewma_iter_s << R"(, "actual_s": )"
         << d.actual_s << R"(, "detail": ")";
      json_escape_into(os, d.detail);
      os << R"("}})";
    }
  }
  if (counters != nullptr) {
    // Perfetto counter tracks: one track per (counter, device) thanks to
    // the device-qualified name; "ph":"C" rows are keyed by name+pid.
    for (const auto& c : *counters) {
      if (!first) os << ",\n";
      first = false;
      os << R"(  {"name": ")";
      json_escape_into(os, std::string(to_string(c.track)) + " (" +
                               device_of(c.slot) + ")");
      os << R"(", "cat": "counter", "ph": "C", "pid": 0, "tid": )" << c.slot
         << R"(, "ts": )" << c.time * 1e6 << R"(, "args": {"value": )"
         << c.value << "}}";
    }
  }
  // Thread-name metadata rows so devices are labelled in the viewer.
  for (const auto& [slot, device] : seen) {
    if (!first) os << ",\n";
    first = false;
    os << R"(  {"name": "thread_name", "ph": "M", "pid": 0, "tid": )"
       << slot << R"(, "args": {"name": ")";
    json_escape_into(os, device);
    os << R"("}})";
  }
  os << "\n]\n";
  os.precision(old_precision);
}
}  // namespace

void write_chrome_trace_file(const OffloadResult& result,
                             const std::string& path) {
  HOMP_REQUIRE(!result.trace.empty(),
               "offload carries no trace; set OffloadOptions::collect_trace");
  std::ofstream out(path);
  HOMP_REQUIRE(out.good(), "cannot open trace file: " + path);
  write_chrome_trace(result, out);
}

}  // namespace homp::rt
