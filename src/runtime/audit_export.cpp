#include "runtime/audit_export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/error.h"
#include "sched/algorithm.h"

namespace homp::rt {

namespace {

/// Deterministic number rendering, the registry's rule: integers print
/// without a fraction, everything else round-trips via %.17g.
std::string num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void escape_into(std::ostream& os, const std::string& s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"') {
      os << "\\\"";
    } else if (c == '\\') {
      os << "\\\\";
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      os << buf;
    } else {
      os << c;
    }
  }
}

void write_prediction(const PredictionErrorStats& e, std::ostream& os) {
  os << "{\"model1_mean\": " << num(e.model1_mean())
     << ", \"model2_mean\": " << num(e.model2_mean())
     << ", \"profile_mean\": " << num(e.profile_mean())
     << ", \"model_samples\": " << e.model_samples
     << ", \"profile_samples\": " << e.profile_samples
     << ", \"model1_min\": " << num(e.model1_err_min)
     << ", \"model1_max\": " << num(e.model1_err_max)
     << ", \"model2_min\": " << num(e.model2_err_min)
     << ", \"model2_max\": " << num(e.model2_err_max)
     << ", \"profile_min\": " << num(e.profile_err_min)
     << ", \"profile_max\": " << num(e.profile_err_max) << '}';
}

}  // namespace

void write_audit_json(const OffloadResult& res, std::ostream& os) {
  HOMP_REQUIRE(!res.decisions.empty(),
               "offload carries no decision audit; set "
               "OffloadOptions::collect_audit");

  os << "{\n  \"homp_audit_version\": " << kAuditVersion
     << ",\n  \"algorithm\": \"" << sched::to_string(res.algorithm_used)
     << "\",\n  \"total_time_s\": " << num(res.total_time)
     << ",\n  \"chunks_issued\": " << res.chunks_issued
     << ",\n  \"degraded\": " << (res.degraded ? "true" : "false")
     << ",\n  \"has_cutoff\": " << (res.has_cutoff ? "true" : "false");

  if (res.has_cutoff) {
    os << ",\n  \"cutoff\": {\"selected\": [";
    for (std::size_t i = 0; i < res.cutoff.selected.size(); ++i) {
      os << (i ? ", " : "") << (res.cutoff.selected[i] ? 1 : 0);
    }
    os << "], \"weights\": [";
    for (std::size_t i = 0; i < res.cutoff.weights.size(); ++i) {
      os << (i ? ", " : "") << num(res.cutoff.weights[i]);
    }
    os << "], \"pre_weights\": [";
    for (std::size_t i = 0; i < res.cutoff.pre_weights.size(); ++i) {
      os << (i ? ", " : "") << num(res.cutoff.pre_weights[i]);
    }
    os << "]}";
  }

  os << ",\n  \"devices\": [";
  for (std::size_t s = 0; s < res.devices.size(); ++s) {
    const DeviceStats& d = res.devices[s];
    os << (s ? ",\n" : "\n") << "    {\"name\": \"";
    escape_into(os, d.device_name);
    os << "\", \"id\": " << d.device_id << ", \"slot\": " << s
       << ", \"finish_time_s\": " << num(d.finish_time)
       << ", \"chunks\": " << d.chunks << ", \"iterations\": " << d.iterations
       << ", \"bytes_in\": " << num(d.bytes_in)
       << ", \"bytes_out\": " << num(d.bytes_out)
       << ", \"tardy_chunks\": " << d.tardy_chunks
       << ", \"spec_copies_run\": " << d.spec_copies_run
       << ", \"spec_copies_won\": " << d.spec_copies_won
       << ", \"requeued_iterations\": " << d.requeued_iterations
       << ", \"quarantine_count\": " << d.quarantine_count
       << ", \"prediction\": ";
    write_prediction(d.prediction, os);
    os << '}';
  }

  os << "\n  ],\n  \"decisions\": [";
  for (std::size_t i = 0; i < res.decisions.size(); ++i) {
    const SchedDecision& d = res.decisions[i];
    const std::string device =
        d.slot >= 0 && static_cast<std::size_t>(d.slot) < res.devices.size()
            ? res.devices[static_cast<std::size_t>(d.slot)].device_name
            : "";
    os << (i ? ",\n" : "\n") << "    {\"time_s\": " << num(d.time)
       << ", \"slot\": " << d.slot << ", \"device\": \"";
    escape_into(os, device);
    os << "\", \"kind\": \"" << to_string(d.kind)
       << "\", \"begin\": " << d.range.lo << ", \"end\": " << d.range.hi
       << ", \"chunk_bytes\": " << num(d.chunk_bytes)
       << ", \"model1_s\": " << num(d.predicted_model1_s)
       << ", \"model2_s\": " << num(d.predicted_model2_s)
       << ", \"profile_s\": " << num(d.predicted_profile_s)
       << ", \"ewma_iter_s\": " << num(d.ewma_iter_s)
       << ", \"actual_s\": " << num(d.actual_s) << ", \"detail\": \"";
    escape_into(os, d.detail);
    os << "\"}";
  }
  os << "\n  ]\n}\n";
}

void write_audit_file(const OffloadResult& res, const std::string& path) {
  std::ofstream out(path);
  HOMP_REQUIRE(out.good(), "cannot open audit file: " + path);
  write_audit_json(res, out);
}

}  // namespace homp::rt
