#include "runtime/runtime.h"

#include "common/error.h"
#include "machine/parser.h"
#include "machine/profiles.h"
#include "runtime/offload_exec.h"

namespace homp::rt {

Runtime::Runtime(mach::MachineDescriptor machine)
    : machine_(std::move(machine)) {
  machine_.validate();
}

Runtime Runtime::from_builtin(const std::string& name) {
  return Runtime(mach::builtin(name));
}

Runtime Runtime::from_machine_file(const std::string& path) {
  return Runtime(mach::load_machine_file(path));
}

std::vector<int> Runtime::all_devices() const {
  std::vector<int> out(machine_.devices.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<int>(i);
  return out;
}

std::vector<int> Runtime::accelerators() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < machine_.devices.size(); ++i) {
    if (!machine_.devices[i].is_host()) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Runtime::devices_of_type(mach::DeviceType t) const {
  return machine_.devices_of_type(t);
}

namespace {
/// RAII release of the offload-in-flight flag: the guard must drop on
/// every exit path, including the many throw sites below offload().
struct InFlightGuard {
  std::atomic<bool>* flag;
  ~InFlightGuard() { flag->store(false, std::memory_order_release); }
};
}  // namespace

OffloadResult Runtime::offload(const LoopKernel& kernel,
                               const std::vector<mem::MapSpec>& maps,
                               const OffloadOptions& opts) const {
  // Fail fast on concurrent entry (docs/SERVING.md): two interleaved
  // offloads would race on history_ and double-use engine state that is
  // designed for one execution at a time.
  if (offload_in_flight_->exchange(true, std::memory_order_acq_rel)) {
    throw ExecutionError(
        "Runtime::offload is not re-entrant: an offload of '" + kernel.name +
        "' was requested while another offload is still in flight on this "
        "Runtime. Serialize the calls, use one Runtime per thread, or use "
        "serve::OffloadServer to run concurrent offloads on one machine.");
  }
  InFlightGuard guard{offload_in_flight_.get()};

  OffloadOptions o = opts;
  // Wire the runtime's throughput history into every offload: HISTORY_AUTO
  // partitions by it, and the watchdog consults it (whatever the
  // algorithm) to loosen its deadlines for demonstrably slow devices.
  o.sched.history = &history_;
  o.sched.history_kernel = kernel.name;
  o.sched.history_device_ids = o.device_ids;
  // Reject bad knob combinations up front, with every violation in one
  // message, before any planning work starts.
  o.validate_or_throw();
  OffloadExecution exec(machine_, kernel, maps, o);
  OffloadResult res = exec.run();

  // Feed observed throughput back for HISTORY_AUTO. The rate is the
  // device's end-to-end iteration rate for this offload (including its
  // data movement), which is exactly what a proportional split needs.
  for (const auto& d : res.devices) {
    if (d.iterations > 0 && d.finish_time > 0.0) {
      history_.record(kernel.name, d.device_id,
                      static_cast<double>(d.iterations) / d.finish_time);
    }
  }
  return res;
}

std::unique_ptr<DataRegion> Runtime::map_data(std::vector<mem::MapSpec> maps,
                                              RegionOptions opts) const {
  return std::make_unique<DataRegion>(machine_, std::move(maps),
                                      std::move(opts));
}

}  // namespace homp::rt
