#include "runtime/offload_exec.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/checksum.h"
#include "common/error.h"
#include "common/log.h"
#include "common/prng.h"
#include "model/cost.h"
#include "model/loop_model.h"
#include "sched/extended_sched.h"
#include "sched/partition_sched.h"
#include "sched/selector.h"
#include "sim/sync.h"

namespace homp::rt {

namespace {
/// Cost of one chunk acquisition (shared-cursor CAS plus bookkeeping on
/// the proxy thread).
constexpr double kChunkSchedOverheadS = 1e-6;
}  // namespace

/// How one mapped array participates in the distribution.
struct OffloadExecution::SpecPlan {
  const mem::MapSpec* spec = nullptr;
  int pdim = -1;            ///< partitioned dimension, -1 = FULL
  bool follows_loop = false;  ///< owned region derived from loop chunks
  double ratio = 1.0;       ///< composite ALIGN ratio to the loop / root
  dist::Distribution static_dist;  ///< for partitioned non-following arrays
};

/// Shared state of the copies of one tardy chunk racing to commit.
/// Exactly one copy wins (`committed` flips once, on the single-threaded
/// engine); every other copy discards its results before they reach the
/// host, so the race cannot double-apply effects or corrupt arrays.
struct OffloadExecution::SpecToken {
  dist::Range range;
  int origin_slot = -1;   ///< the tardy device that triggered speculation
  int runners = 0;        ///< copies currently in some pipeline
  bool committed = false; ///< a copy's host effects have landed
  bool queued = false;    ///< still offered in spec_queue_
  /// Non-null once a copy of this chunk failed payload verification; the
  /// surviving racers inherit the integrity state so a late clean copy
  /// settles the chunk instead of re-queueing it.
  std::shared_ptr<IntegrityState> integ;
};

/// Shared recovery state of one chunk whose commit failed payload
/// verification (docs/RESILIENCE.md "Integrity"). The chunk is queued
/// for re-execution on another device; after `vote_after_failures`
/// mismatches it escalates to voting, where each execution becomes a
/// ballot keyed by its payload checksum and the chunk commits only once
/// `vote_quorum` ballots agree on the same sum.
struct OffloadExecution::IntegrityState {
  dist::Range range;
  int failures = 0;     ///< verification mismatches observed so far
  int executions = 0;   ///< re-executions served from the integrity queue
  bool voting = false;  ///< escalated to quorum voting
  bool resolved = false;  ///< the range's host commit has landed
  std::vector<int> suspects;  ///< slots whose payload failed verification
  std::vector<int> balloted;  ///< slots that already cast a ballot
  struct Ballot {
    std::uint64_t sum = 0;
    int count = 0;
  };
  std::vector<Ballot> ballots;  ///< distinct payload sums seen while voting
};

/// A chunk moving through a proxy's pipeline.
struct OffloadExecution::PendingChunk {
  dist::Range range;
  std::vector<mem::DeviceMapping*> chunk_maps;
  mem::DeviceDataEnv env;      ///< statics + chunk slices
  double fetch_start = 0.0;    ///< virtual time the chunk was acquired
  double bytes_in = 0.0;
  double bytes_out = 0.0;
  bool from_requeue = false;   ///< redistributed after a quarantine
  std::shared_ptr<SpecToken> token;  ///< non-null once speculated
  bool is_spec = false;        ///< this copy is the speculative duplicate
  bool is_probe = false;       ///< probation probe chunk
  /// Non-zero: FaultPlan decided this chunk's kernel output is silently
  /// corrupted; the seed drives the injected bit flips.
  std::uint64_t corrupt_seed = 0;
  std::shared_ptr<IntegrityState> integ;  ///< set for re-executions
  /// Index of this chunk's kChunkAssigned audit record (actual_s is
  /// backfilled at compute completion); npos when audit is off.
  std::size_t decision_index = static_cast<std::size_t>(-1);
};

/// A computed chunk whose results are still device-resident: the output
/// transfer is in flight (possibly retrying). Host-visible effects —
/// copy_out into host arrays, the partial reduction, the iteration count —
/// commit only when the transfer succeeds, so a device quarantined
/// mid-copy-out leaves the host bit-identical and its chunk free to
/// requeue.
struct OffloadExecution::OutRecord {
  dist::Range range;
  std::vector<mem::DeviceMapping*> maps;
  double bytes_out = 0.0;
  double reduction = 0.0;  ///< body result, committed on success
  bool abandoned = false;  ///< quarantine requeued this chunk
  std::shared_ptr<SpecToken> token;  ///< first-commit-wins gate
  bool is_spec = false;
  bool is_probe = false;
  /// Integrity verification (docs/RESILIENCE.md "Integrity"). The three
  /// sums snapshot the payload at each hand-off: after the kernel body
  /// (`sum_result`), after any injected compute corruption
  /// (`sum_payload`, the device-side checksum shipped with the chunk),
  /// and as received after the output transfer (`sum_wire`). The commit
  /// compares them to tell a corrupted kernel result from a corrupted
  /// transfer.
  bool verify = false;
  std::uint64_t sum_result = 0;
  std::uint64_t sum_payload = 0;
  std::uint64_t sum_wire = 0;
  std::shared_ptr<IntegrityState> integ;
};

/// Per-device proxy actor state.
struct OffloadExecution::Proxy {
  int slot = -1;
  int device_id = -1;
  const mach::DeviceDescriptor* desc = nullptr;
  sim::SharedLink* down = nullptr;  ///< host -> device lane
  sim::SharedLink* up = nullptr;    ///< device -> host lane
  Prng noise{0};

  mem::MappingStore store;
  mem::DeviceDataEnv static_env;
  bool statics_loaded = false;
  bool alloc_paid = false;
  bool setup_signalled = false;  ///< for serialized (!parallel) offloading

  bool fetching = false;
  std::optional<PendingChunk> inflight;   ///< input transfer in progress
  std::optional<PendingChunk> ready;      ///< resident, awaiting compute
  std::optional<PendingChunk> computing;  ///< kernel in progress
  double compute_started = 0.0;
  int outstanding_outputs = 0;
  std::vector<std::shared_ptr<OutRecord>> outputs;  ///< in-flight copy-outs

  bool waiting_stage = false;
  double stage_wait_start = 0.0;
  bool finalizing = false;
  bool done = false;

  bool lost = false;        ///< quarantined (possibly re-admitted later)
  double loss_time = -1.0;  ///< scheduled permanent loss; < 0 = never

  /// Watchdog / probation state.
  std::uint64_t compute_serial = 0;  ///< guards stale watchdog events
  double degrade_factor = 1.0;  ///< latched sustained-slowdown multiplier
  double ewma_iter_s = 0.0;     ///< observed per-iteration time (EWMA)
  bool probation = false;       ///< re-admitted, serving probe chunks
  int probes_passed = 0;

  double partial_reduction = 0.0;
  double outstanding_bytes = 0.0;  ///< transfer bytes currently in flight
  DeviceStats stats;
  std::vector<TraceSpan> spans;

  void record_span(bool enabled, Phase phase, double t0, double t1,
                   std::string label = {}) {
    if (!enabled || t1 <= t0) return;
    spans.push_back(TraceSpan{slot, desc->name, phase, t0, t1,
                              std::move(label)});
  }
};

OffloadExecution::~OffloadExecution() {
  // Shared mode: revoke anything still pending (normally finish_now()
  // already did — this covers owners tearing down mid-flight). The
  // context's engine outlives the execution by contract.
  if (ctx_ != nullptr) engine_.cancel_generation(gen_);
}

OffloadExecution::OffloadExecution(const mach::MachineDescriptor& machine,
                                   const LoopKernel& kernel,
                                   const std::vector<mem::MapSpec>& maps,
                                   const OffloadOptions& opts,
                                   const dist::Distribution* forced_loop_dist,
                                   const std::vector<mem::DeviceDataEnv>*
                                       region_envs,
                                   const ExecContext* ctx)
    : machine_(machine),
      kernel_(kernel),
      maps_(maps),
      opts_(opts),
      ctx_(ctx),
      owned_engine_(ctx == nullptr ? std::make_unique<sim::Engine>()
                                   : nullptr),
      engine_(ctx == nullptr ? *owned_engine_ : *ctx->engine),
      region_envs_(region_envs) {
  if (ctx_ != nullptr) {
    HOMP_REQUIRE(ctx_->engine != nullptr,
                 "ExecContext has no engine");
    HOMP_REQUIRE(ctx_->down_links.size() == machine_.links.size() &&
                     ctx_->up_links.size() == machine_.links.size(),
                 "ExecContext link lanes do not match the machine's links");
    gen_ = engine_.new_generation();
    alive_ = std::make_shared<bool>(true);
  }
  opts_.validate_or_throw();
  if (region_envs_ != nullptr) {
    HOMP_REQUIRE(maps_.empty(),
                 "offloads inside a data region use the region's mappings; "
                 "per-offload map clauses are not supported");
    HOMP_REQUIRE(forced_loop_dist != nullptr,
                 "offloads inside a data region must use the region's loop "
                 "distribution");
    HOMP_REQUIRE(region_envs_->size() == opts_.device_ids.size(),
                 "region environment count does not match device list");
  }
  validate_and_plan();

  // Prediction context (model-visible peak numbers).
  loop_context_.loop = kernel_.iterations;
  loop_context_.devices =
      model::prediction_inputs(machine_, opts_.device_ids);
  loop_context_.kernel = effective_profile_;

  // Resolve the loop scheduler.
  if (forced_loop_dist != nullptr) {
    HOMP_REQUIRE(forced_loop_dist->domain() == kernel_.iterations,
                 "data-region loop distribution does not cover this loop");
    HOMP_REQUIRE(forced_loop_dist->num_parts() == opts_.device_ids.size(),
                 "data-region device count mismatch");
    scheduler_ = sched::PartitionScheduler::from_distribution(
        *forced_loop_dist);
    algorithm_used_ = opts_.sched.kind;
  } else if (opts_.loop_policy.kind == dist::PolicyKind::kAlign) {
    // Align computation with data: copy the target array's distribution.
    const SpecPlan* root = nullptr;
    for (const auto& p : plans_) {
      if (p.spec->name == opts_.loop_policy.align_target) root = &p;
    }
    HOMP_REQUIRE(root != nullptr, "dist_schedule ALIGN target '" +
                                      opts_.loop_policy.align_target +
                                      "' is not a mapped array");
    HOMP_REQUIRE(!root->follows_loop,
                 "circular alignment: loop aligns to '" + root->spec->name +
                     "' which aligns back to the loop");
    HOMP_REQUIRE(root->pdim >= 0,
                 "loop cannot align to non-partitioned array '" +
                     root->spec->name + "'");
    dist::Distribution d =
        root->static_dist.aligned(opts_.loop_policy.align_ratio);
    HOMP_REQUIRE(d.domain() == kernel_.iterations,
                 "aligned loop distribution " + d.domain().to_string() +
                     " does not match loop domain " +
                     kernel_.iterations.to_string());
    scheduler_ = sched::PartitionScheduler::from_distribution(std::move(d));
    algorithm_used_ = sched::AlgorithmKind::kBlock;
  } else {
    sched::SchedulerConfig cfg = opts_.sched;
    if (opts_.loop_policy.kind == dist::PolicyKind::kBlock) {
      cfg.kind = sched::AlgorithmKind::kBlock;
    } else if (opts_.loop_policy.kind == dist::PolicyKind::kCyclic) {
      cfg.kind = sched::AlgorithmKind::kCyclic;
      cfg.cyclic_absolute_block = opts_.loop_policy.cyclic_block;
    } else if (opts_.auto_select_algorithm) {
      cfg.kind = sched::select_algorithm(effective_profile_,
                                         loop_context_.devices);
      HOMP_INFO << "AUTO selected " << sched::to_string(cfg.kind) << " for "
                << kernel_.name;
    }
    algorithm_used_ = cfg.kind;
    scheduler_ = sched::make_scheduler(cfg, loop_context_);
  }

  build_proxies();
  build_fault_plan();
}

void OffloadExecution::build_fault_plan() {
  // Option values were already validated (OffloadOptions::validate_or_throw
  // in the constructor); this only derives the runtime plan from them.
  const WatchdogOptions& w = opts_.watchdog;
  probe_grain_ = w.probe_iterations > 0
                     ? w.probe_iterations
                     : std::max(opts_.sched.min_chunk,
                                kernel_.iterations.size() / 64);
  if (probe_grain_ < 1) probe_grain_ = 1;

  fault_plan_.set_seed(opts_.fault.seed);
  for (const auto& p : proxies_) {
    const sim::FaultProfile combined =
        p->desc->fault.combined(opts_.fault.extra);
    if (combined.any()) fault_plan_.set_profile(p->device_id, combined);
  }
  for (const auto& f : opts_.fault.scripted) fault_plan_.add_scripted(f);
  fault_active_ = fault_plan_.active();
  // Checksumming is armed whenever it could matter (fault injection on) or
  // when explicitly requested (`integrity.always`, to measure its cost).
  // Offloads inside a data region move no per-chunk bytes — integrity of
  // the region's bulk transfers is the DataRegion's own verified exit.
  integrity_armed_ = opts_.integrity.enabled && region_envs_ == nullptr &&
                     (fault_active_ || opts_.integrity.always);
}

void OffloadExecution::validate_and_plan() {
  HOMP_REQUIRE(!opts_.device_ids.empty(), "offload has no target devices");
  for (int id : opts_.device_ids) {
    HOMP_REQUIRE(id >= 0 &&
                     static_cast<std::size_t>(id) < machine_.devices.size(),
                 "device id " + std::to_string(id) + " out of range");
  }
  for (std::size_t i = 0; i < opts_.device_ids.size(); ++i) {
    for (std::size_t j = i + 1; j < opts_.device_ids.size(); ++j) {
      HOMP_REQUIRE(opts_.device_ids[i] != opts_.device_ids[j],
                   "device " + std::to_string(opts_.device_ids[i]) +
                       " listed twice");
    }
  }
  HOMP_REQUIRE(!kernel_.iterations.empty(), "offloaded loop is empty");
  HOMP_REQUIRE(kernel_.cost.flops_per_iter >= 0.0 &&
                   kernel_.cost.mem_bytes_per_iter >= 0.0,
               "kernel cost profile has negative entries");
  if (opts_.execute_bodies) {
    HOMP_REQUIRE(kernel_.body != nullptr,
                 "execute_bodies requested but kernel '" + kernel_.name +
                     "' has no body");
  }

  const std::size_t m = opts_.device_ids.size();
  std::map<std::string, const mem::MapSpec*> by_name;
  for (const auto& s : maps_) {
    s.validate();
    HOMP_REQUIRE(by_name.emplace(s.name, &s).second,
                 "variable '" + s.name + "' mapped twice");
  }

  plans_.clear();
  plans_.reserve(maps_.size());
  const bool single_shot =
      scheduler_ == nullptr;  // plans built before scheduler; decided below
  (void)single_shot;

  for (const auto& s : maps_) {
    SpecPlan plan;
    plan.spec = &s;
    plan.pdim = s.partitioned_dim();
    if (plan.pdim < 0) {
      // FULL replication: multi-device copy-out of a replicated array is
      // ill-defined (every device would write the whole array).
      HOMP_REQUIRE(!mem::copies_out(s.dir) || m == 1,
                   "array '" + s.name +
                       "' is replicated (FULL) but mapped '" +
                       to_string(s.dir) +
                       "' on multiple devices; partition it or use a "
                       "reduction");
      plans_.push_back(std::move(plan));
      continue;
    }
    const dist::DimPolicy pol = s.partitioned_policy();
    if (pol.kind == dist::PolicyKind::kBlock) {
      plan.static_dist = dist::Distribution::block(
          s.region.dim(static_cast<std::size_t>(plan.pdim)), m);
      plans_.push_back(std::move(plan));
      continue;
    }
    HOMP_ASSERT(pol.kind == dist::PolicyKind::kAlign);
    // Walk the ALIGN chain to its root: the loop label or a BLOCK array.
    double ratio = pol.align_ratio;
    std::string target = pol.align_target;
    std::map<std::string, bool> seen;
    seen[s.name] = true;
    for (;;) {
      if (target == opts_.loop_label) {
        plan.follows_loop = true;
        plan.ratio = ratio;
        break;
      }
      auto it = by_name.find(target);
      HOMP_REQUIRE(it != by_name.end(),
                   "ALIGN target '" + target + "' of '" + s.name +
                       "' is neither the loop label '" + opts_.loop_label +
                       "' nor a mapped array");
      HOMP_REQUIRE(seen.emplace(target, true).second,
                   "alignment cycle involving '" + target + "'");
      const mem::MapSpec* t = it->second;
      const int tp = t->partitioned_dim();
      HOMP_REQUIRE(tp >= 0, "ALIGN target '" + target +
                                "' is not partitioned");
      const dist::DimPolicy tpol = t->partitioned_policy();
      if (tpol.kind == dist::PolicyKind::kBlock) {
        plan.ratio = ratio;
        plan.static_dist =
            dist::Distribution::block(
                t->region.dim(static_cast<std::size_t>(tp)), m)
                .aligned(ratio);
        break;
      }
      HOMP_ASSERT(tpol.kind == dist::PolicyKind::kAlign);
      ratio *= tpol.align_ratio;
      target = tpol.align_target;
    }
    // Domain sanity for static aligned arrays.
    if (!plan.follows_loop) {
      HOMP_REQUIRE(
          plan.static_dist.domain() ==
              s.region.dim(static_cast<std::size_t>(plan.pdim)),
          "aligned distribution domain mismatch for '" + s.name + "'");
    }
    plans_.push_back(std::move(plan));
  }

  // Chunk schedulers re-slice data per chunk, which requires every
  // partitioned array to follow the loop; pinned (BLOCK) arrays force an
  // aligned single-shot loop distribution.
  const bool loop_is_aligned =
      opts_.loop_policy.kind == dist::PolicyKind::kAlign;
  for (const auto& p : plans_) {
    if (p.pdim >= 0 && !p.follows_loop && !loop_is_aligned) {
      throw ConfigError(
          "array '" + p.spec->name +
          "' has a pinned (BLOCK) distribution; the loop must use "
          "dist_schedule(target:[ALIGN(" +
          p.spec->name + ")]) so computation follows the data");
    }
  }

  // Effective per-iteration transfer bytes, derived from the real maps.
  const double n = static_cast<double>(kernel_.iterations.size());
  double bytes_per_iter = 0.0;
  for (const auto& p : plans_) {
    const auto& s = *p.spec;
    const double dir_factor = (mem::copies_in(s.dir) ? 1.0 : 0.0) +
                              (mem::copies_out(s.dir) ? 1.0 : 0.0);
    if (dir_factor == 0.0) continue;
    if (p.pdim < 0) {
      // Replicated: amortize one full copy over the loop (the models treat
      // transfer as a per-iteration characteristic; see DESIGN.md).
      bytes_per_iter += s.region_bytes() * (mem::copies_in(s.dir) ? 1 : 0) / n;
    } else {
      const double vol = static_cast<double>(s.region.volume());
      const double pdim_size = static_cast<double>(
          s.region.dim(static_cast<std::size_t>(p.pdim)).size());
      const double per_index =
          vol / pdim_size * static_cast<double>(s.binding.elem_size);
      bytes_per_iter += per_index * p.ratio * dir_factor;
    }
  }
  effective_profile_ = kernel_.cost;
  effective_profile_.transfer_bytes_per_iter = bytes_per_iter;
}

void OffloadExecution::build_proxies() {
  if (ctx_ != nullptr) {
    // Shared-engine mode: every concurrent execution's transfers ride
    // the server's lanes, so cross-tenant link contention falls out of
    // SharedLink's processor sharing with no further machinery.
    down_links_ = ctx_->down_links;
    up_links_ = ctx_->up_links;
  } else {
    // One pair of full-duplex lanes per machine link, owned.
    owned_down_links_.resize(machine_.links.size());
    owned_up_links_.resize(machine_.links.size());
    down_links_.resize(machine_.links.size());
    up_links_.resize(machine_.links.size());
    for (std::size_t i = 0; i < machine_.links.size(); ++i) {
      const auto& l = machine_.links[i];
      owned_down_links_[i] = std::make_unique<sim::SharedLink>(
          engine_, l.name + ".down", l.latency_s, l.bandwidth_Bps);
      owned_up_links_[i] = std::make_unique<sim::SharedLink>(
          engine_, l.name + ".up", l.latency_s, l.bandwidth_Bps);
      down_links_[i] = owned_down_links_[i].get();
      up_links_[i] = owned_up_links_[i].get();
    }
  }

  proxies_.clear();
  for (std::size_t slot = 0; slot < opts_.device_ids.size(); ++slot) {
    auto p = std::make_unique<Proxy>();
    p->slot = static_cast<int>(slot);
    p->device_id = opts_.device_ids[slot];
    p->desc = &machine_.devices[static_cast<std::size_t>(p->device_id)];
    const bool transfers = p->desc->memory == mach::MemorySpace::kDiscrete &&
                           !opts_.use_unified_memory &&
                           p->desc->link != mach::kNoLink;
    if (transfers) {
      p->down = down_links_[static_cast<std::size_t>(p->desc->link)];
      p->up = up_links_[static_cast<std::size_t>(p->desc->link)];
    }
    p->noise = Prng(opts_.noise_seed ^ (0x9e37u * (slot + 1)));
    p->stats.device_name = p->desc->name;
    p->stats.device_id = p->device_id;
    proxies_.push_back(std::move(p));
  }
}

void OffloadExecution::make_static_mappings(Proxy& p) {
  const bool shared_with_host =
      p.desc->memory == mach::MemorySpace::kShared || opts_.use_unified_memory;
  for (const auto& plan : plans_) {
    if (plan.follows_loop) continue;
    const auto& s = *plan.spec;
    dist::Region owned = s.region;
    dist::Region footprint = s.region;
    if (plan.pdim >= 0) {
      const auto d = static_cast<std::size_t>(plan.pdim);
      const dist::Range part =
          plan.static_dist.part(static_cast<std::size_t>(p.slot));
      owned = s.region.with_dim(d, part.clamped_to(s.region.dim(d)));
      footprint = s.region.with_dim(
          d, part.widened(s.halo_before, s.halo_after)
                 .clamped_to(s.region.dim(d)));
      if (part.empty()) footprint = owned;  // no data for this device
    }
    auto& m = p.store.create(s, owned, footprint, shared_with_host,
                             opts_.execute_bodies);
    p.static_env.add(s.name, &m);
  }
}

void OffloadExecution::make_chunk_mappings(
    Proxy& p, const dist::Range& chunk,
    std::vector<mem::DeviceMapping*>* out) const {
  const bool shared_with_host =
      p.desc->memory == mach::MemorySpace::kShared || opts_.use_unified_memory;
  for (const auto& plan : plans_) {
    if (!plan.follows_loop) continue;
    const auto& s = *plan.spec;
    const auto d = static_cast<std::size_t>(plan.pdim);
    const dist::Range owned_dim =
        chunk.scaled(plan.ratio).clamped_to(s.region.dim(d));
    const dist::Range fp_dim = owned_dim.widened(s.halo_before, s.halo_after)
                                   .clamped_to(s.region.dim(d));
    auto& m = p.store.create(s, s.region.with_dim(d, owned_dim),
                             s.region.with_dim(d, fp_dim), shared_with_host,
                             opts_.execute_bodies);
    out->push_back(&m);
  }
}

double OffloadExecution::compute_seconds(Proxy& p,
                                         const dist::Range& chunk) const {
  const double iters = static_cast<double>(chunk.size());
  const double flops = kernel_.cost.flops_per_iter * iters;
  const double mem = kernel_.cost.mem_bytes_per_iter * iters;
  double t = model::roofline_time(flops, mem, p.desc->sustained_flops(),
                                  p.desc->sustained_membw_Bps())
                 .seconds;

  // Within-device (teams) distribution across the device's parallel
  // units. The sustained_* rates describe all units running flat out, so
  // the base roofline above *is* the perfectly-divisible case; the two
  // effects modelled on top are
  //  (a) quantization: indivisible iterations leave units idle when the
  //      chunk is small (critical path = ceil(size/units) iterations),
  //  (b) skew: with a work_factor, teams BLOCK puts a whole contiguous
  //      subrange on one unit (critical path = heaviest subrange) while
  //      teams CYCLIC interleaves iterations and averages the skew out.
  const int units = p.desc->parallel_units;
  if (!kernel_.cost.divisible_iterations && units > 1 && chunk.size() > 0) {
    const double per_unit =
        std::ceil(iters / static_cast<double>(units));
    t *= per_unit * static_cast<double>(units) / iters;
  }
  if (kernel_.work_factor) {
    if (opts_.teams_policy == dist::PolicyKind::kBlock && units > 1) {
      // Critical path: the heaviest contiguous per-unit subrange.
      const auto parts = dist::Distribution::block(chunk, units).parts();
      double worst = 0.0;
      for (const auto& part : parts) {
        if (part.empty()) continue;
        worst = std::max(worst, kernel_.work_factor(part));
      }
      t *= worst;
    } else {
      t *= kernel_.work_factor(chunk);
    }
  }
  if (opts_.use_unified_memory &&
      p.desc->memory == mach::MemorySpace::kDiscrete &&
      p.desc->link != mach::kNoLink) {
    // On-demand page migration of the chunk's data slice instead of bulk
    // DMA: pay the transfer at a page-fault-degraded rate inside the
    // kernel (§V-C).
    const double slice_bytes =
        effective_profile_.transfer_bytes_per_iter * iters;
    const auto& l =
        machine_.links[static_cast<std::size_t>(p.desc->link)];
    t += model::kUnifiedMemoryFaultFactor * slice_bytes / l.bandwidth_Bps;
  }
  if (p.desc->noise > 0.0) {
    const double factor =
        std::clamp(1.0 + p.desc->noise * p.noise.next_gaussian(), 0.5, 1.5);
    t *= factor;
  }
  if (ctx_ != nullptr && ctx_->load_factor) {
    // Tenant time-slicing on a shared device (exec_context.h): sampled
    // once at chunk launch, like the noise factor above.
    t *= std::max(1.0, ctx_->load_factor(p.device_id));
  }
  return t;
}

void OffloadExecution::pass_serial_token(int slot) {
  if (opts_.parallel_offload || slot != serial_token_) return;
  ++serial_token_;
  if (static_cast<std::size_t>(serial_token_) < proxies_.size()) {
    const int next = serial_token_;
    sched_after(0.0, [this, next] { try_fetch(next); });
  }
}

dist::Range OffloadExecution::take_requeue() {
  HOMP_ASSERT(!requeue_.empty());
  dist::Range& front = requeue_.front();
  const long long take = std::min(requeue_grain_, front.size());
  const dist::Range chunk(front.lo, front.lo + take);
  front.lo += take;
  if (front.empty()) requeue_.pop_front();
  return chunk;
}

void OffloadExecution::try_fetch(int slot) {
  // One logical scheduler-fetch operation (dsan): same-timestamp sibling
  // fetches commute — the engine's FIFO tie-break picks the documented
  // winner, and a parallel engine replays fetches in (time, seq) order.
  HOMP_DSAN_WRITE(dsan_sched_);
  if (cancelled_) {
    // Cancelled jobs fetch nothing more: every drain path funnels back
    // here, so the proxy parks the moment its pipeline empties.
    park_proxy(slot);
    maybe_finish();
    return;
  }
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost) {
    // A quarantined proxy that still holds the serial token must hand it
    // on, or the remaining devices would never start.
    pass_serial_token(slot);
    return;
  }
  if (p.done || p.finalizing || p.fetching || p.inflight || p.ready ||
      p.waiting_stage) {
    return;
  }
  if (!opts_.parallel_offload && slot > serial_token_) return;

  std::optional<dist::Range> chunk_opt;
  bool from_requeue = false;
  std::shared_ptr<SpecToken> token;
  std::shared_ptr<IntegrityState> integ;
  bool is_spec = false;
  bool is_probe = false;
  while (!integrity_queue_.empty() && integrity_queue_.front()->resolved) {
    integrity_queue_.pop_front();
  }
  for (auto it = integrity_queue_.begin(); it != integrity_queue_.end();
       ++it) {
    // Chunks that failed payload verification outrank everything else:
    // they sit on the critical path (completion waits on them) and may
    // need several sequential vote rounds to settle.
    if ((*it)->resolved || !integrity_slot_allowed(**it, slot)) continue;
    integ = *it;
    integrity_queue_.erase(it);
    break;
  }
  if (integ) {
    chunk_opt = integ->range;
    from_requeue = true;  // recovery work, not the scheduler's own chunk
    ++integ->executions;
    ++p.stats.integrity_reexecutions;
    if (integ->voting) ++p.stats.vote_rounds;
  } else if (!requeue_.empty()) {
    // Orphaned iterations of a quarantined device are served first, in
    // dynamic grains, regardless of the algorithm in use — the
    // redistribution fallback that lets single-stage (BLOCK/MODEL) plans
    // survive a device loss.
    chunk_opt = take_requeue();
    from_requeue = true;
  } else {
    // Speculative duplicates of tardy chunks come next. Not for the tardy
    // device itself (it is still running the original) and not for
    // probation devices (probes must be cheap scheduler work).
    while (!spec_queue_.empty() && spec_queue_.front()->committed) {
      spec_queue_.front()->queued = false;
      spec_queue_.pop_front();
    }
    if (!p.probation) {
      for (auto it = spec_queue_.begin(); it != spec_queue_.end(); ++it) {
        if ((*it)->committed || (*it)->origin_slot == slot) continue;
        token = *it;
        spec_queue_.erase(it);
        token->queued = false;
        ++token->runners;
        is_spec = true;
        chunk_opt = token->range;
        ++p.stats.spec_copies_run;
        break;
      }
    }
    if (!chunk_opt) chunk_opt = scheduler_->next_chunk(slot);
  }
  if (chunk_opt && p.probation && !is_spec && !integ) {
    // Probation: serve only a small probe; the rest goes back to the
    // requeue where any device (including this one, later) can take it.
    is_probe = true;
    ++p.stats.probe_chunks;
    if (chunk_opt->size() > probe_grain_) {
      requeue_.push_front(
          dist::Range(chunk_opt->lo + probe_grain_, chunk_opt->hi));
      chunk_opt = dist::Range(chunk_opt->lo, chunk_opt->lo + probe_grain_);
      kick_survivors();
    }
  }
  if (!chunk_opt) {
    // A proxy handed no work does no serialized setup, so it must pass
    // the token on: a two-stage scheduler can give a device an empty
    // stage-1 sample, and under serialized setup the devices behind it
    // would otherwise never start — deadlocking the stage barrier.
    pass_serial_token(slot);
    if (scheduler_->finished(slot)) {
      check_completion(slot);
    } else if (!p.computing && p.outstanding_outputs == 0) {
      // Two-stage scheduler: wait for the others at the stage barrier.
      p.waiting_stage = true;
      p.stage_wait_start = engine_.now();
      check_stage_barrier();
    }
    return;
  }

  p.stats.phase_time[static_cast<int>(Phase::kScheduling)] +=
      kChunkSchedOverheadS;
  ++p.stats.chunks;

  PendingChunk chunk;
  chunk.range = *chunk_opt;
  chunk.fetch_start = engine_.now();
  chunk.from_requeue = from_requeue;
  chunk.token = std::move(token);
  chunk.is_spec = is_spec;
  chunk.is_probe = is_probe;
  // A speculative copy of a chunk that already failed verification
  // inherits its integrity state (set when the mismatch happened after
  // speculation started).
  chunk.integ =
      integ ? std::move(integ) : (chunk.token ? chunk.token->integ : nullptr);

  if (audit_on()) {
    const char* source = chunk.integ && chunk.from_requeue
                             ? "integrity re-execution"
                             : chunk.is_spec     ? "speculative duplicate"
                             : chunk.from_requeue ? "requeue"
                             : chunk.is_probe     ? "probation probe"
                                                  : "scheduler";
    chunk.decision_index =
        note_decision(slot, DecisionKind::kChunkAssigned, chunk.range, source);
    SchedDecision& d = decisions_.back();
    d.chunk_bytes = effective_profile_.transfer_bytes_per_iter *
                    static_cast<double>(chunk.range.size());
    predict_chunk(p, chunk.range, &d.predicted_model1_s,
                  &d.predicted_model2_s, &d.predicted_profile_s);
  }

  // Inside a data region the data is already resident on the devices:
  // no allocation, no transfers — just compute against the region's
  // environment.
  double alloc_delay = 0.0;
  if (region_envs_ != nullptr) {
    p.alloc_paid = true;
    p.statics_loaded = true;
    chunk.env = (*region_envs_)[static_cast<std::size_t>(slot)].fork();
  } else if (!p.alloc_paid) {
    p.alloc_paid = true;
    if (p.desc->memory == mach::MemorySpace::kDiscrete &&
        !opts_.use_unified_memory) {
      alloc_delay = p.desc->alloc_overhead_s *
                    static_cast<double>(maps_.size());
    }
    p.stats.phase_time[static_cast<int>(Phase::kAlloc)] += alloc_delay;
    make_static_mappings(p);
  }

  if (region_envs_ == nullptr) {
    make_chunk_mappings(p, chunk.range, &chunk.chunk_maps);
    chunk.env = p.static_env.fork();
    for (auto* m : chunk.chunk_maps) chunk.env.add(m->spec().name, m);

    for (auto* m : chunk.chunk_maps) {
      chunk.bytes_in += m->bytes_in();
      chunk.bytes_out += m->bytes_out();
    }
    // Every chunk is an independent offload transaction: read-only static
    // data (replicated FULL inputs, pinned 'to' arrays) is staged per
    // chunk. This is the "more stages need more memory movement
    // transactions" overhead of Table II, and it is why BLOCK beats
    // SCHED_DYNAMIC on matmul (B is re-shipped with every chunk) while
    // data-intensive kernels with no replicated inputs still profit from
    // dynamic chunking's transfer/compute overlap. Statics the device
    // writes (tofrom) are staged once — restaging would clobber earlier
    // chunk results. Persistent residency across offloads is what data
    // regions are for.
    for (const auto& name : p.static_env.names()) {
      const auto& m = p.static_env.mapping(name);
      const bool writes_back = mem::copies_out(m.spec().dir);
      if (!p.statics_loaded || !writes_back) chunk.bytes_in += m.bytes_in();
    }
  }

  p.fetching = true;
  if (!p.setup_signalled) {
    p.setup_signalled = true;
    pass_serial_token(slot);
  }

  auto issue = [this, slot, c = std::make_shared<PendingChunk>(
                                   std::move(chunk))]() mutable {
    Proxy& pr = *proxies_[static_cast<std::size_t>(slot)];
    if (pr.lost) {
      // Quarantined inside the alloc/scheduling-delay window: hand the
      // chunk straight back for redistribution.
      long long taken = 0;
      orphan_range(slot, c->range, c->token, &taken);
      pr.stats.requeued_iterations += taken;
      kick_survivors();
      return;
    }
    pr.inflight = std::move(*c);
    issue_input(slot, 1);
  };
  if (alloc_delay > 0.0 || kChunkSchedOverheadS > 0.0) {
    sched_after(alloc_delay + kChunkSchedOverheadS,
                           std::move(issue));
  } else {
    issue();
  }
}

void OffloadExecution::issue_input(int slot, int attempt) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost || !p.inflight) return;
  const double bytes = p.inflight->bytes_in;
  if (p.down == nullptr || bytes <= 0.0) {
    on_input_done(slot, attempt, 0);
    return;
  }
  const double start = engine_.now();
  // Per-transfer jitter (DMA setup, switch arbitration): without it,
  // same-size transfers on sibling links complete in exact lockstep
  // and the FIFO tie-break systematically hands consecutive tail
  // chunks to one link pair — a knife-edge a real machine never sits
  // on. The jitter lets dynamic chunking self-balance across links.
  const double jitter =
      p.desc->noise > 0.0
          ? bytes / p.down->bandwidth() * p.desc->noise *
                std::abs(p.noise.next_gaussian())
          : 0.0;
  // Whether this transfer attempt fails is drawn when it is issued; the
  // failure surfaces when the transfer (virtually) completes, so a failed
  // attempt costs its full transfer time before the retry backoff.
  const bool failed = fault_active_ && fault_plan_.transfer_fails(p.device_id);
  // Silent corruption of the payload is drawn alongside the loss fault so
  // the per-device fault stream stays deterministic; a *failed* attempt
  // delivers no payload, so it cannot also be corrupted.
  std::uint64_t wire_seed = 0;
  if (fault_active_) {
    wire_seed = fault_plan_.transfer_corrupts(p.device_id);
    if (failed) wire_seed = 0;
  }
  if (attempt == 1) sample_queue_depth(p);
  adjust_outstanding_bytes(p, bytes);
  p.down->transfer(bytes, guard([this, slot, start, jitter, bytes, attempt,
                                 failed, wire_seed] {
    adjust_outstanding_bytes(*proxies_[static_cast<std::size_t>(slot)],
                             -bytes);
    sched_after(jitter, [this, slot, start, attempt, failed,
                                    wire_seed] {
      Proxy& q = *proxies_[static_cast<std::size_t>(slot)];
      if (q.lost || !q.inflight) return;  // quarantined mid-transfer
      if (failed) {
        q.stats.phase_time[static_cast<int>(Phase::kRecovery)] +=
            engine_.now() - start;
        q.record_span(opts_.collect_trace, Phase::kRecovery, start,
                      engine_.now(),
                      q.inflight->range.to_string() + " copy-in fault");
        note_fault(slot, sim::FaultKind::kTransfer, false,
                   "copy-in " + q.inflight->range.to_string() + " attempt " +
                       std::to_string(attempt));
        handle_transient(slot, attempt, sim::FaultKind::kTransfer,
                         [this, slot, attempt] {
                           issue_input(slot, attempt + 1);
                         });
        return;
      }
      q.stats.phase_time[static_cast<int>(Phase::kCopyIn)] +=
          engine_.now() - start;
      q.record_span(opts_.collect_trace, Phase::kCopyIn, start,
                    engine_.now(), q.inflight->range.to_string());
      on_input_done(slot, attempt, wire_seed);
    });
  }));
}

void OffloadExecution::on_input_done(int slot, int attempt,
                                     std::uint64_t wire_seed) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost || !p.inflight) return;

  // Perform the real copies now that the transfer has (virtually)
  // completed. Read-only statics are restaged with every chunk (matching
  // the byte accounting — idempotent copies); writable statics only once.
  if (region_envs_ == nullptr) {
    if (opts_.execute_bodies) {
      for (const auto& name : p.static_env.names()) {
        auto& m = p.static_env.mapping(name);
        if (!p.statics_loaded || !mem::copies_out(m.spec().dir)) {
          m.copy_in();
        }
      }
    }
    p.statics_loaded = true;
  }
  if (opts_.execute_bodies) {
    for (auto* m : p.inflight->chunk_maps) m->copy_in();
  }

  const bool had_transfer = p.down != nullptr && p.inflight->bytes_in > 0.0;
  if (wire_seed != 0) {
    // The copy-in payload was silently flipped on the wire. Only the
    // chunk's own input slices are damaged (never writable statics — those
    // are staged once and a re-transfer could not repair them).
    ++p.stats.corruptions_injected;
    note_fault(slot, sim::FaultKind::kCorruptTransfer, false,
               "copy-in " + p.inflight->range.to_string() +
                   " payload silently corrupted");
    if (opts_.execute_bodies) {
      apply_corruption(p.inflight->chunk_maps, /*input_side=*/true,
                       wire_seed);
    }
  }

  if (integrity_armed_ && opts_.integrity.verify_copy_in && had_transfer) {
    // Corrupted *input* would produce a wrong-but-self-consistent result
    // that output verification can never catch, so inputs get their own
    // check: host-side sum (computed before the DMA) against the
    // device-side sum of what arrived.
    ++p.stats.integrity_checks;
    bool bad;
    if (opts_.execute_bodies) {
      const std::uint64_t want =
          payload_checksum(p.inflight->chunk_maps, /*input_side=*/true,
                           /*host_side=*/true);
      const std::uint64_t got =
          payload_checksum(p.inflight->chunk_maps, /*input_side=*/true);
      bad = want != got;
    } else {
      bad = wire_seed != 0;  // pure-simulation mode models the comparison
    }
    const double vdelay = integrity_delay(p.inflight->bytes_in, p);
    p.stats.phase_time[static_cast<int>(Phase::kCopyIn)] += vdelay;
    if (bad) {
      ++p.stats.integrity_failures;
      note_recovery(slot, RecoveryAction::kCorruptionDetected,
                    "copy-in " + p.inflight->range.to_string() +
                        " checksum mismatch — re-transferring");
      // The verification scan still costs its time before the retry; the
      // re-transfer re-stages the slices, repairing the flipped bytes.
      sched_after(vdelay, [this, slot, attempt] {
        Proxy& q = *proxies_[static_cast<std::size_t>(slot)];
        if (q.lost || !q.inflight) return;
        handle_transient(slot, attempt, sim::FaultKind::kCorruptTransfer,
                         [this, slot, attempt] {
                           issue_input(slot, attempt + 1);
                         });
      });
      return;
    }
    if (vdelay > 0.0) {
      sched_after(vdelay, [this, slot] { input_ready(slot); });
      return;
    }
  }
  input_ready(slot);
}

void OffloadExecution::input_ready(int slot) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost || !p.inflight) return;
  p.fetching = false;
  p.stats.bytes_in += p.inflight->bytes_in;
  p.ready = std::move(p.inflight);
  p.inflight.reset();
  try_start_compute(slot);
}

void OffloadExecution::try_start_compute(int slot) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost || p.computing || !p.ready || !p.statics_loaded) return;
  p.computing = std::move(p.ready);
  p.ready.reset();
  start_launch(slot, 1);
}

void OffloadExecution::start_launch(int slot, int attempt) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost || !p.computing) return;
  p.compute_started = engine_.now();
  const double launch = p.desc->launch_overhead_s;

  if (fault_active_ && fault_plan_.launch_fails(p.device_id)) {
    // The failure surfaces after the launch overhead has been spent.
    sched_after(launch, [this, slot, attempt, launch] {
      Proxy& q = *proxies_[static_cast<std::size_t>(slot)];
      if (q.lost || !q.computing) return;  // quarantined meanwhile
      q.stats.phase_time[static_cast<int>(Phase::kRecovery)] += launch;
      q.record_span(opts_.collect_trace, Phase::kRecovery,
                    engine_.now() - launch, engine_.now(),
                    q.computing->range.to_string() + " launch fault");
      note_fault(slot, sim::FaultKind::kLaunch, false,
                 "launch " + q.computing->range.to_string() + " attempt " +
                     std::to_string(attempt));
      handle_transient(slot, attempt, sim::FaultKind::kLaunch,
                       [this, slot, attempt] {
                         start_launch(slot, attempt + 1);
                       });
    });
    return;
  }

  double compute = compute_seconds(p, p.computing->range);
  bool hangs = false;
  if (fault_active_) {
    const double slow = fault_plan_.slowdown(p.device_id);
    if (slow > 1.0) {
      note_fault(slot, sim::FaultKind::kSlowdown, false,
                 "compute " + p.computing->range.to_string() + " slowed x" +
                     std::to_string(slow));
      compute *= slow;
    }
    hangs = fault_plan_.compute_hangs(p.device_id);
    if (hangs) {
      note_fault(slot, sim::FaultKind::kHang, false,
                 "compute " + p.computing->range.to_string() +
                     " hangs (silent stall)");
    }
    const double deg = fault_plan_.degrade(p.device_id);
    if (deg > 1.0) {
      p.degrade_factor = std::max(p.degrade_factor, deg);
      note_fault(slot, sim::FaultKind::kDegrade, false,
                 "sustained degradation x" + std::to_string(deg) +
                     " from " + p.computing->range.to_string());
    }
    compute *= p.degrade_factor;
    if (p.up != nullptr) {
      // Silent compute corruption: the kernel finishes on time but its
      // output region is bit-flipped. Shared-memory devices are exempt —
      // their writes land directly in host arrays with no commit
      // boundary to verify at, so modelling silent corruption there
      // would be undetectable by construction.
      const std::uint64_t cs = fault_plan_.compute_corrupts(p.device_id);
      if (cs != 0) {
        p.computing->corrupt_seed = cs;
        ++p.stats.corruptions_injected;
        note_fault(slot, sim::FaultKind::kCorruptCompute, false,
                   "compute " + p.computing->range.to_string() +
                       " result silently corrupted");
      }
    }
  }
  p.stats.phase_time[static_cast<int>(Phase::kLaunch)] += launch;

  // Prefetch the next chunk while this one computes (double buffering).
  try_fetch(slot);

  ++p.compute_serial;
  if (!hangs) {
    p.stats.phase_time[static_cast<int>(Phase::kCompute)] += compute;
    sched_after(launch + compute,
                           [this, slot] { on_compute_done(slot); });
  }
  // A hung chunk never completes; only the watchdog below can reclaim it
  // (with the watchdog disabled, the offload deadlocks and run() reports
  // the stuck device — the pre-watchdog behaviour).
  if (fault_active_ && opts_.watchdog.enabled) {
    const std::uint64_t serial = p.compute_serial;
    const double soft =
        std::max(opts_.watchdog.deadline_floor_s,
                 opts_.watchdog.deadline_multiplier *
                     predicted_chunk_seconds(p, p.computing->range));
    sched_after(launch + soft, [this, slot, serial] {
      watchdog_soft(slot, serial);
    });
    // The kill window after the soft fire must leave a speculative
    // duplicate room to complete end-to-end, and the duplicate pays the
    // per-transfer alpha cost the per-iteration prediction deliberately
    // excludes — so the hard deadline scales (soft + round-trip latency),
    // not soft alone. With no link the grace is zero and hard stays a
    // plain multiple of soft.
    const auto& din = loop_context_.devices[static_cast<std::size_t>(slot)];
    const double grace = din.has_link ? 2.0 * din.link_latency_s : 0.0;
    sched_after(
        launch + (soft + grace) * opts_.watchdog.hard_kill_multiplier,
        [this, slot, serial] { watchdog_hard(slot, serial); });
  }
}

void OffloadExecution::on_compute_done(int slot) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost || !p.computing) return;  // quarantined; chunk was requeued
  PendingChunk chunk = std::move(*p.computing);
  p.computing.reset();
  ++p.compute_serial;  // invalidates this chunk's pending watchdog events

  p.record_span(opts_.collect_trace, Phase::kCompute, p.compute_started,
                engine_.now(), chunk.range.to_string());
  // Requeued and speculative chunks are recovery work the scheduler never
  // issued; feeding their timings back would skew the profiling rates.
  if (!chunk.from_requeue && !chunk.is_spec) {
    scheduler_->report(slot, chunk.range, engine_.now() - chunk.fetch_start);
  }
  if (!chunk.token && chunk.range.size() > 0) {
    // Healthy completions feed the per-device observed per-iteration time
    // the watchdog uses to loosen its deadline (tardy chunks excluded:
    // they would teach the watchdog to tolerate the very straggling it is
    // meant to catch).
    const double per_iter = (engine_.now() - p.compute_started) /
                            static_cast<double>(chunk.range.size());
    p.ewma_iter_s = p.ewma_iter_s > 0.0
                        ? 0.3 * per_iter + 0.7 * p.ewma_iter_s
                        : per_iter;
    record_counter(p, CounterTrack::kEwmaThroughput, 1.0 / p.ewma_iter_s);
  }

  const double chunk_elapsed = engine_.now() - chunk.fetch_start;
  p.stats.chunk_seconds.observe(chunk_elapsed);
  if (chunk.decision_index < decisions_.size()) {
    decisions_[chunk.decision_index].actual_s = chunk_elapsed;
  }
  if (!chunk.from_requeue && !chunk.is_spec && !chunk.token) {
    accumulate_prediction_error(p, chunk.range,
                                engine_.now() - p.compute_started,
                                chunk_elapsed);
  }

  if (chunk.token && chunk.token->committed) {
    // Another copy of this chunk already committed while we computed:
    // discard before any host effect, skip the (now pointless) output.
    --chunk.token->runners;
    note_recovery(slot, RecoveryAction::kTardyAbandoned,
                  chunk.range.to_string() + " (other copy committed)");
    try_start_compute(slot);
    try_fetch(slot);
    check_completion(slot);
    return;
  }

  // The body runs now, on the device, against device-resident storage.
  // Its host-visible effects commit when the output transfer lands.
  double red = 0.0;
  if (opts_.execute_bodies) red = kernel_.body(chunk.range, chunk.env);
  bool integ_settled = false;

  if (p.up != nullptr && chunk.bytes_out > 0.0) {
    ++p.outstanding_outputs;
    auto rec = std::make_shared<OutRecord>();
    rec->range = chunk.range;
    rec->maps = chunk.chunk_maps;
    rec->bytes_out = chunk.bytes_out;
    rec->reduction = red;
    rec->token = chunk.token;
    rec->is_spec = chunk.is_spec;
    rec->is_probe = chunk.is_probe;
    rec->integ = chunk.integ;
    rec->verify = integrity_armed_;
    if (rec->verify || chunk.corrupt_seed != 0) {
      if (opts_.execute_bodies) {
        rec->sum_result = payload_checksum(chunk.chunk_maps,
                                           /*input_side=*/false);
        if (chunk.corrupt_seed != 0) {
          apply_corruption(chunk.chunk_maps, /*input_side=*/false,
                           chunk.corrupt_seed);
          rec->sum_payload = payload_checksum(chunk.chunk_maps,
                                              /*input_side=*/false);
        } else {
          rec->sum_payload = rec->sum_result;
        }
      } else {
        // Pure-simulation mode: model the sums symbolically. An injected
        // flip XORs in a nonzero token, so a corrupted hand-off always
        // compares unequal — same detection outcome, no real bytes.
        rec->sum_result = 0;
        rec->sum_payload = chunk.corrupt_seed != 0
                               ? (mix64(chunk.corrupt_seed) | 1)
                               : 0;
      }
      rec->sum_wire = rec->sum_payload;
    }
    p.outputs.push_back(rec);
    issue_output(slot, std::move(rec), 1);
  } else {
    // Shared memory (or nothing to ship): effects become host-visible the
    // instant compute completes — an atomic commit on the DES engine, so
    // a later loss cannot leave them half-applied. No wire was crossed,
    // so a re-executed chunk landing here settles its integrity state
    // without further verification.
    if (chunk.integ && !chunk.integ->resolved) {
      chunk.integ->resolved = true;
      note_recovery(slot,
                    chunk.integ->voting ? RecoveryAction::kVoteCommitted
                                        : RecoveryAction::kReexecuteCommitted,
                    chunk.range.to_string() +
                        " settled by a shared-memory execution");
      integ_settled = true;
    }
    if (claim_commit(slot, chunk.token, chunk.is_spec, chunk.is_probe,
                     chunk.range)) {
      if (opts_.execute_bodies) {
        for (auto* m : chunk.chunk_maps) m->copy_out();
      }
      p.partial_reduction += red;
      p.stats.iterations += chunk.range.size();
      record_counter(p, CounterTrack::kIterations,
                     static_cast<double>(p.stats.iterations));
    }
  }

  sample_queue_depth(p);
  try_start_compute(slot);
  try_fetch(slot);
  if (integ_settled) {
    // Settling an integrity re-execution lifts a *global* completion
    // block; proxies parked on the unresolved chunk need a fresh look.
    sweep_completion();
  } else {
    check_completion(slot);
  }
}

void OffloadExecution::issue_output(int slot, std::shared_ptr<OutRecord> rec,
                                    int attempt) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost || rec->abandoned) return;
  const double start = engine_.now();
  const double bytes = rec->bytes_out;
  const bool failed = fault_active_ && fault_plan_.transfer_fails(p.device_id);
  std::uint64_t wire_seed = 0;
  if (fault_active_) {
    wire_seed = fault_plan_.transfer_corrupts(p.device_id);
    if (failed) wire_seed = 0;  // a failed attempt delivers no payload
  }
  adjust_outstanding_bytes(p, bytes);
  p.up->transfer(bytes, guard([this, slot, rec, start, bytes, attempt,
                               failed, wire_seed] {
    Proxy& q = *proxies_[static_cast<std::size_t>(slot)];
    adjust_outstanding_bytes(q, -bytes);
    if (q.lost || rec->abandoned) return;  // requeued at quarantine
    if (failed) {
      q.stats.phase_time[static_cast<int>(Phase::kRecovery)] +=
          engine_.now() - start;
      q.record_span(opts_.collect_trace, Phase::kRecovery, start,
                    engine_.now(),
                    rec->range.to_string() + " copy-out fault");
      note_fault(slot, sim::FaultKind::kTransfer, false,
                 "copy-out " + rec->range.to_string() + " attempt " +
                     std::to_string(attempt));
      handle_transient(slot, attempt, sim::FaultKind::kTransfer,
                       [this, slot, rec, attempt]() mutable {
                         issue_output(slot, std::move(rec), attempt + 1);
                       });
      return;
    }
    q.stats.phase_time[static_cast<int>(Phase::kCopyOut)] +=
        engine_.now() - start;
    q.record_span(opts_.collect_trace, Phase::kCopyOut, start, engine_.now(),
                  rec->range.to_string());
    q.stats.bytes_out += bytes;  // physically transferred either way
    if (wire_seed != 0) {
      // The copy-out payload was flipped on the wire. The flips land in
      // the device-side chunk slices (the staging the host commit reads
      // from), so an unverified commit materialises the damage.
      ++q.stats.corruptions_injected;
      note_fault(slot, sim::FaultKind::kCorruptTransfer, false,
                 "copy-out " + rec->range.to_string() +
                     " payload silently corrupted");
      if (opts_.execute_bodies) {
        apply_corruption(rec->maps, /*input_side=*/false, wire_seed);
        rec->sum_wire = payload_checksum(rec->maps, /*input_side=*/false);
      } else {
        rec->sum_wire = rec->sum_payload ^ (mix64(wire_seed) | 1);
      }
    }
    if (rec->verify) {
      // Verified commit: spend the checksum scan (device-side sum was
      // computed at compute end; the host side re-scans the received
      // payload), then compare before any host effect lands.
      const double vdelay = integrity_delay(2.0 * bytes, q);
      q.stats.phase_time[static_cast<int>(Phase::kCopyOut)] += vdelay;
      if (vdelay > 0.0) {
        sched_after(vdelay,
                               [this, slot, rec] { finish_commit(slot, rec); });
      } else {
        finish_commit(slot, rec);
      }
      return;
    }
    // Unverified commit: only now do the chunk's results reach the host —
    // and only for the first copy of a speculated chunk
    // (first-commit-wins).
    if (claim_commit(slot, rec->token, rec->is_spec, rec->is_probe,
                     rec->range)) {
      if (opts_.execute_bodies) {
        for (auto* m : rec->maps) m->copy_out();
      }
      q.partial_reduction += rec->reduction;
      q.stats.iterations += rec->range.size();
      record_counter(q, CounterTrack::kIterations,
                     static_cast<double>(q.stats.iterations));
    }
    auto it = std::find(q.outputs.begin(), q.outputs.end(), rec);
    if (it != q.outputs.end()) q.outputs.erase(it);
    --q.outstanding_outputs;
    sample_queue_depth(q);
    // Draining the last output may let this proxy enter (and possibly
    // release) the stage barrier, or finish the offload.
    try_fetch(slot);
    check_completion(slot);
  }));
}

std::uint64_t OffloadExecution::payload_checksum(
    const std::vector<mem::DeviceMapping*>& maps, bool input_side,
    bool host_side) const {
  const ChecksumKind kind = opts_.integrity.checksum;
  std::uint64_t h = 0;
  for (auto* m : maps) {
    if (m->shared()) continue;  // no wire crossed, nothing to verify
    if (input_side ? !mem::copies_in(m->spec().dir)
                   : !mem::copies_out(m->spec().dir)) {
      continue;
    }
    const dist::Region& r = input_side ? m->footprint() : m->owned();
    const std::uint64_t s =
        host_side ? m->checksum_host(r, kind) : m->checksum_device(r, kind);
    h = mix64(h ^ s);
  }
  return h;
}

void OffloadExecution::apply_corruption(
    const std::vector<mem::DeviceMapping*>& maps, bool input_side,
    std::uint64_t seed) const {
  // The seed picks one of the chunk's transferable slices and drives the
  // byte flips inside it — always in *device* storage, so a re-transfer
  // (copy-in) or a discarded commit (copy-out) leaves the host intact.
  std::vector<mem::DeviceMapping*> candidates;
  for (auto* m : maps) {
    if (m->shared()) continue;
    if (input_side ? !mem::copies_in(m->spec().dir)
                   : !mem::copies_out(m->spec().dir)) {
      continue;
    }
    const dist::Region& r = input_side ? m->footprint() : m->owned();
    if (r.empty()) continue;
    candidates.push_back(m);
  }
  if (candidates.empty()) return;
  auto* m = candidates[static_cast<std::size_t>(
      seed % static_cast<std::uint64_t>(candidates.size()))];
  m->corrupt_device(input_side ? m->footprint() : m->owned(), seed);
}

double OffloadExecution::integrity_delay(double bytes, const Proxy& p) const {
  // One pass over the payload at the device's sustained memory bandwidth —
  // the checksum is memory-bound by construction.
  const double bw = p.desc->sustained_membw_Bps();
  return bw > 0.0 && bytes > 0.0 ? bytes / bw : 0.0;
}

bool OffloadExecution::integrity_slot_allowed(const IntegrityState& st,
                                              int slot) const {
  const Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost) return false;
  auto excluded = [&st](int s) {
    if (std::find(st.suspects.begin(), st.suspects.end(), s) !=
        st.suspects.end()) {
      return true;
    }
    return st.voting && std::find(st.balloted.begin(), st.balloted.end(),
                                  s) != st.balloted.end();
  };
  // Graduated fallback: prefer an untainted full-service device; if none
  // is alive, accept an untainted probation device; if even that fails
  // (e.g. a two-device machine where both are implicated), let anyone
  // alive serve so the queue can always drain.
  bool strict = false;
  bool relaxed = false;
  for (const auto& q : proxies_) {
    if (q->lost) continue;
    if (!excluded(q->slot)) {
      relaxed = true;
      if (!q->probation) strict = true;
    }
  }
  if (strict) return !excluded(slot) && !p.probation;
  if (relaxed) return !excluded(slot);
  return true;
}

void OffloadExecution::finish_commit(int slot, std::shared_ptr<OutRecord> rec) {
  HOMP_DSAN_WRITE(dsan_commit_);
  Proxy& q = *proxies_[static_cast<std::size_t>(slot)];
  if (q.lost || rec->abandoned) return;  // quarantined during the scan
  ++q.stats.integrity_checks;
  const bool bad_compute = rec->sum_payload != rec->sum_result;
  const bool bad_wire = rec->sum_wire != rec->sum_payload;
  if (bad_compute || bad_wire) {
    handle_corrupt_commit(slot, rec, bad_wire && !bad_compute);
    return;
  }

  auto st = rec->integ;
  if (st && st->resolved) {
    // Another execution already settled this chunk (vote quorum reached,
    // or a clean re-execution committed): discard this late clean copy
    // before it double-applies host effects.
    if (rec->token) --rec->token->runners;
    note_recovery(slot, RecoveryAction::kTardyAbandoned,
                  rec->range.to_string() + " (chunk already settled)");
    auto it = std::find(q.outputs.begin(), q.outputs.end(), rec);
    if (it != q.outputs.end()) q.outputs.erase(it);
    --q.outstanding_outputs;
    try_fetch(slot);
    sweep_completion();
    return;
  }
  if (st && rec->token && rec->token->committed) {
    // The racing copy committed while we verified; claim_commit below
    // discards this copy, and the race winner's commit settled the range.
    st->resolved = true;
    st = nullptr;
  }
  if (st && st->voting) {
    // Voting: this clean execution is a ballot keyed by its payload sum.
    // The chunk commits only when vote_quorum ballots agree — and since
    // equal checksums mean equal payloads, committing the quorum-reaching
    // copy commits the agreed bytes.
    int agree = 0;
    for (auto& b : st->ballots) {
      if (b.sum == rec->sum_wire) {
        agree = ++b.count;
        break;
      }
    }
    if (agree == 0) {
      st->ballots.push_back({rec->sum_wire, 1});
      agree = 1;
    }
    st->balloted.push_back(slot);
    if (agree < opts_.integrity.vote_quorum) {
      if (rec->token) --rec->token->runners;
      note_recovery(slot, RecoveryAction::kReexecuteQueued,
                    rec->range.to_string() + " ballot " +
                        std::to_string(agree) + "/" +
                        std::to_string(opts_.integrity.vote_quorum) +
                        " — needs another agreeing execution");
      if (st->executions >= opts_.integrity.max_attempts) {
        throw OffloadError(
            "chunk " + rec->range.to_string() + " failed to reach a " +
            std::to_string(opts_.integrity.vote_quorum) +
            "-vote integrity quorum within integrity.max_attempts (" +
            std::to_string(opts_.integrity.max_attempts) +
                ") executions — data integrity cannot be established",
            FailClass::kQuorumExhausted);
      }
      integrity_queue_.push_back(st);
      auto it = std::find(q.outputs.begin(), q.outputs.end(), rec);
      if (it != q.outputs.end()) q.outputs.erase(it);
      --q.outstanding_outputs;
      kick_survivors();
      try_fetch(slot);
      sweep_completion();
      return;
    }
    st->resolved = true;
    note_recovery(slot, RecoveryAction::kVoteCommitted,
                  rec->range.to_string() + " quorum " +
                      std::to_string(agree) + "/" +
                      std::to_string(opts_.integrity.vote_quorum) +
                      " — agreed payload committed");
  } else if (st) {
    st->resolved = true;
    note_recovery(slot, RecoveryAction::kReexecuteCommitted,
                  rec->range.to_string() +
                      " re-execution verified and committed");
  }

  if (claim_commit(slot, rec->token, rec->is_spec, rec->is_probe,
                   rec->range)) {
    if (opts_.execute_bodies) {
      for (auto* m : rec->maps) m->copy_out();
    }
    q.partial_reduction += rec->reduction;
    q.stats.iterations += rec->range.size();
    record_counter(q, CounterTrack::kIterations,
                   static_cast<double>(q.stats.iterations));
  }
  auto it = std::find(q.outputs.begin(), q.outputs.end(), rec);
  if (it != q.outputs.end()) q.outputs.erase(it);
  --q.outstanding_outputs;
  sample_queue_depth(q);
  try_fetch(slot);
  sweep_completion();
}

void OffloadExecution::handle_corrupt_commit(
    int slot, const std::shared_ptr<OutRecord>& rec, bool wire_only) {
  Proxy& q = *proxies_[static_cast<std::size_t>(slot)];
  ++q.stats.integrity_failures;
  note_recovery(slot, RecoveryAction::kCorruptionDetected,
                rec->range.to_string() +
                    (wire_only ? " copy-out" : " kernel result") +
                    " checksum mismatch — chunk discarded before commit");

  auto st = rec->integ;
  if (!st) {
    st = std::make_shared<IntegrityState>();
    st->range = rec->range;
  }
  ++st->failures;
  if (std::find(st->suspects.begin(), st->suspects.end(), slot) ==
      st->suspects.end()) {
    st->suspects.push_back(slot);
  }
  if (!st->voting && st->failures >= opts_.integrity.vote_after_failures) {
    st->voting = true;
    note_recovery(slot, RecoveryAction::kVoteOpened,
                  rec->range.to_string() + " escalated to " +
                      std::to_string(opts_.integrity.vote_quorum) +
                      "-vote agreement after " +
                      std::to_string(st->failures) + " integrity failures");
  }

  // Spec-token bookkeeping: this copy is discarded. If a racing copy is
  // still running it inherits the integrity state and may settle the
  // chunk; a still-queued offer is withdrawn (offers are optional work —
  // nobody has to take them, which would strand the chunk).
  bool need_requeue = !st->resolved;
  if (rec->token) {
    --rec->token->runners;
    if (rec->token->committed) {
      need_requeue = false;
    } else {
      rec->token->integ = st;
      if (rec->token->queued) {
        auto sit =
            std::find(spec_queue_.begin(), spec_queue_.end(), rec->token);
        if (sit != spec_queue_.end()) spec_queue_.erase(sit);
        rec->token->queued = false;
      }
      if (rec->token->runners > 0) need_requeue = false;
    }
  }

  rec->abandoned = true;
  auto it = std::find(q.outputs.begin(), q.outputs.end(), rec);
  if (it != q.outputs.end()) q.outputs.erase(it);
  --q.outstanding_outputs;

  if (need_requeue) {
    if (st->executions >= opts_.integrity.max_attempts) {
      throw OffloadError(
          "chunk " + rec->range.to_string() +
          " still fails integrity verification after integrity."
          "max_attempts (" +
          std::to_string(opts_.integrity.max_attempts) +
              ") executions — data integrity cannot be established",
          FailClass::kMaxAttempts);
    }
    note_recovery(slot, RecoveryAction::kReexecuteQueued,
                  st->range.to_string() +
                      " queued for re-execution on another device");
    integrity_queue_.push_back(st);
  }

  // Integrity circuit breaker: a device that repeatedly ships corrupt
  // payloads is quarantined like a tardy straggler — and a probation
  // device gets no second chance at all.
  const sim::FaultKind kind = wire_only ? sim::FaultKind::kCorruptTransfer
                                        : sim::FaultKind::kCorruptCompute;
  const int threshold = opts_.integrity.quarantine_threshold;
  if (q.probation) {
    quarantine(slot, kind, "probation chunk failed integrity verification");
  } else if (threshold > 0 &&
             q.stats.integrity_failures >=
                 static_cast<std::size_t>(threshold)) {
    quarantine(slot, kind,
               "repeated integrity failures (" +
                   std::to_string(q.stats.integrity_failures) + ")");
  } else {
    kick_survivors();
    try_fetch(slot);
    sweep_completion();
  }
}

void OffloadExecution::handle_transient(int slot, int attempt,
                                        sim::FaultKind kind,
                                        std::function<void()> retry) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (attempt > opts_.fault.max_retries) {
    quarantine(slot, kind,
               std::string(sim::to_string(kind)) + " retry budget (" +
                   std::to_string(opts_.fault.max_retries) + ") exhausted");
    return;
  }
  ++p.stats.retries;
  const double backoff =
      std::min(opts_.fault.backoff_base_s *
                   std::pow(2.0, static_cast<double>(attempt - 1)),
               opts_.fault.backoff_cap_s);
  p.stats.phase_time[static_cast<int>(Phase::kRecovery)] += backoff;
  p.record_span(opts_.collect_trace, Phase::kRecovery, engine_.now(),
                engine_.now() + backoff,
                "backoff #" + std::to_string(attempt));
  sched_after(backoff, [this, slot, retry = std::move(retry)] {
    if (!proxies_[static_cast<std::size_t>(slot)]->lost) retry();
  });
}

void OffloadExecution::note_fault(int slot, sim::FaultKind kind, bool fatal,
                                  std::string detail) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  ++p.stats.faults;
  fault_events_.push_back(FaultEvent{engine_.now(), slot, p.device_id, kind,
                                     fatal, std::move(detail)});
}

void OffloadExecution::on_device_lost(int slot) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost) return;
  if (p.done) {
    // The device finished its share before failing: its results are
    // committed and nothing needs requeuing — but it must never be
    // revived for redistribution work.
    p.lost = true;
    ++p.stats.faults;
    fault_events_.push_back(
        FaultEvent{engine_.now(), slot, p.device_id,
                   sim::FaultKind::kDeviceLoss, true,
                   "device lost after completing its share"});
    return;
  }
  ++p.stats.faults;
  quarantine(slot, sim::FaultKind::kDeviceLoss, "device permanently lost");
}

void OffloadExecution::quarantine(int slot, sim::FaultKind kind,
                                  const std::string& detail) {
  // Quarantine feeds the requeue — one logical scheduler mutation (dsan).
  HOMP_DSAN_WRITE(dsan_sched_);
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost) return;
  p.lost = true;
  p.probation = false;
  p.probes_passed = 0;
  p.stats.quarantined = true;
  p.stats.quarantined_at = engine_.now();
  ++p.stats.quarantine_count;
  ++p.compute_serial;  // disarm any pending watchdog events
  fault_events_.push_back(FaultEvent{engine_.now(), slot, p.device_id, kind,
                                     /*fatal=*/true,
                                     "quarantined: " + detail});
  HOMP_WARN << "device '" << p.desc->name << "' quarantined at t="
            << engine_.now() << ": " << detail;
  if (audit_on()) {
    note_decision(slot, DecisionKind::kQuarantined, dist::Range(),
                  std::string(sim::to_string(kind)) + ": " + detail);
  }
  if (opts_.collect_trace) {
    p.outstanding_bytes = 0.0;
    record_counter(p, CounterTrack::kOutstandingBytes, 0.0);
    sample_queue_depth(p);
  }

  // Requeue everything in flight. None of it has been committed to the
  // host (commits ride the copy-out completion), so re-executing the
  // chunks elsewhere cannot double-count or corrupt host arrays.
  // Spec-token'd chunks go through orphan_range, which keeps the
  // first-commit-wins invariant (committed ranges never requeue).
  long long taken = 0;
  if (p.inflight) {
    orphan_range(slot, p.inflight->range, p.inflight->token, &taken);
    p.inflight.reset();
  }
  if (p.ready) {
    orphan_range(slot, p.ready->range, p.ready->token, &taken);
    p.ready.reset();
  }
  if (p.computing) {
    orphan_range(slot, p.computing->range, p.computing->token, &taken);
    p.computing.reset();
  }
  p.fetching = false;
  for (auto& rec : p.outputs) {
    if (!rec->abandoned) {
      rec->abandoned = true;
      orphan_range(slot, rec->range, rec->token, &taken);
    }
  }
  p.outputs.clear();
  p.outstanding_outputs = 0;
  if (p.waiting_stage) {
    p.waiting_stage = false;
    p.stats.phase_time[static_cast<int>(Phase::kBarrier)] +=
        engine_.now() - p.stage_wait_start;
  }

  // No survivors means nobody is left to serve the requeue: surface a
  // clean error *before* asking the scheduler to deactivate its last
  // slot (which would throw its own, less informative, OffloadError).
  std::size_t survivors = 0;
  for (const auto& q : proxies_) {
    if (!q->lost) ++survivors;
  }
  if (survivors == 0) {
    throw OffloadError("all devices lost during offload of '" +
                           kernel_.name + "' (last: '" + p.desc->name +
                           "', " + detail + ")",
                       FailClass::kAllDevicesLost);
  }

  // Reserved-but-unissued iterations come back from the scheduler.
  // Single-shot (BLOCK / MODEL_*) plans thereby fall back to dynamic
  // redistribution of the orphaned partition.
  for (const auto& r : scheduler_->deactivate(slot)) {
    orphan_range(slot, r, nullptr, &taken);
  }
  p.stats.requeued_iterations += taken;

  if (!requeue_.empty()) {
    long long total = 0;
    for (const auto& r : requeue_) total += r.size();
    requeue_grain_ = std::max(
        opts_.sched.min_chunk,
        total / static_cast<long long>(4 * survivors));
    if (requeue_grain_ < 1) requeue_grain_ = 1;
  }

  // Unless the device is *really* gone, give it a path back: after an
  // exponentially growing cooldown it re-enters in probation.
  const bool permanent =
      kind == sim::FaultKind::kDeviceLoss ||
      (p.loss_time >= 0.0 && engine_.now() >= p.loss_time);
  if (!permanent && opts_.watchdog.enabled && opts_.watchdog.probation) {
    schedule_readmission(slot);
  }

  pass_serial_token(slot);
  kick_survivors();
  // The dead slot no longer holds the stage barrier; removing it may
  // release the survivors.
  check_stage_barrier();
  // A spec-token'd chunk whose duplicate already committed requeues
  // nothing, so this quarantine may have been the offload's last word.
  maybe_finish();
}

void OffloadExecution::orphan_range(int slot, const dist::Range& range,
                                    const std::shared_ptr<SpecToken>& token,
                                    long long* taken) {
  if (token) {
    --token->runners;
    if (token->committed) return;  // results already on the host
    if (token->queued) {
      // Still offered as optional work: withdraw the offer, the range
      // becomes mandatory requeue work below.
      token->queued = false;
      for (auto it = spec_queue_.begin(); it != spec_queue_.end(); ++it) {
        if (*it == token) {
          spec_queue_.erase(it);
          break;
        }
      }
    }
    if (token->runners > 0) return;  // another copy is still racing
  }
  (void)slot;
  if (range.empty()) return;
  requeue_.push_back(range);
  *taken += range.size();
}

double OffloadExecution::predicted_chunk_seconds(
    const Proxy& p, const dist::Range& chunk) const {
  // MODEL_2's per-iteration prediction (peak numbers: systematically
  // optimistic), loosened by what the device has actually demonstrated —
  // its cross-offload throughput history and this offload's per-iteration
  // EWMA — so a legitimately slow device is not hounded by false fires.
  double iter_s = model::model2_iter_time(
      loop_context_.kernel,
      loop_context_.devices[static_cast<std::size_t>(p.slot)]);
  if (opts_.sched.history != nullptr &&
      opts_.sched.history->has(opts_.sched.history_kernel, p.device_id)) {
    const double rate =
        opts_.sched.history->rate(opts_.sched.history_kernel, p.device_id);
    if (rate > 0.0) iter_s = std::max(iter_s, 1.0 / rate);
  }
  if (p.ewma_iter_s > 0.0) iter_s = std::max(iter_s, p.ewma_iter_s);
  double t = static_cast<double>(chunk.size()) * iter_s +
             p.desc->launch_overhead_s;
  if (kernel_.work_factor) t *= kernel_.work_factor(chunk);
  return t;
}

void OffloadExecution::watchdog_soft(int slot, std::uint64_t serial) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost || !p.computing || p.compute_serial != serial) return;
  ++p.stats.tardy_chunks;
  note_recovery(slot, RecoveryAction::kWatchdogFired,
                p.computing->range.to_string() + " missed its soft deadline");

  if (p.probation) {
    // A probe that cannot even meet a 4x-slack deadline fails probation.
    quarantine(slot, sim::FaultKind::kHang,
               "probation probe " + p.computing->range.to_string() +
                   " missed its deadline");
    return;
  }
  const int threshold = opts_.watchdog.tardy_quarantine_threshold;
  if (threshold > 0 &&
      p.stats.tardy_chunks >= static_cast<std::size_t>(threshold)) {
    quarantine(slot, sim::FaultKind::kHang,
               "repeatedly tardy (" + std::to_string(p.stats.tardy_chunks) +
                   " chunks missed their deadline)");
    return;
  }

  // Speculate the tardy chunk onto a survivor. Disabled inside data
  // regions (the chunk's data lives only in the tardy device's region
  // slice) and for chunks that already carry a token.
  if (!opts_.watchdog.speculation || region_envs_ != nullptr ||
      p.computing->token) {
    return;
  }
  std::vector<Proxy*> candidates;
  for (const auto& q : proxies_) {
    if (q->lost || q->slot == slot || q->probation) continue;
    candidates.push_back(q.get());
  }
  if (candidates.empty()) return;

  auto token = std::make_shared<SpecToken>();
  token->range = p.computing->range;
  token->origin_slot = slot;
  token->runners = 1;  // the tardy original
  token->queued = true;
  token->integ = p.computing->integ;  // racing copies share the vote state
  p.computing->token = token;
  spec_queue_.push_back(std::move(token));
  note_recovery(slot, RecoveryAction::kSpeculated,
                p.computing->range.to_string() +
                    " duplicated onto the survivors");
  if (audit_on()) {
    note_decision(slot, DecisionKind::kSpeculated, p.computing->range,
                  "tardy chunk offered to the survivors");
    SchedDecision& d = decisions_.back();
    d.chunk_bytes = effective_profile_.transfer_bytes_per_iter *
                    static_cast<double>(p.computing->range.size());
    predict_chunk(p, p.computing->range, &d.predicted_model1_s,
                  &d.predicted_model2_s, &d.predicted_profile_s);
  }

  // Wake idle survivors, fastest first: FIFO at the same virtual instant
  // means the first proxy roused fetches the duplicate first.
  std::sort(candidates.begin(), candidates.end(),
            [](const Proxy* a, const Proxy* b) {
              if (a->desc->sustained_gflops != b->desc->sustained_gflops) {
                return a->desc->sustained_gflops > b->desc->sustained_gflops;
              }
              return a->slot < b->slot;
            });
  for (Proxy* q : candidates) rouse(*q);
}

void OffloadExecution::watchdog_hard(int slot, std::uint64_t serial) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost || !p.computing || p.compute_serial != serial) return;
  // The chunk blew even the hard deadline: presumed hung. The time sunk
  // into it was recovery overhead, not useful compute.
  p.stats.phase_time[static_cast<int>(Phase::kRecovery)] +=
      engine_.now() - p.compute_started;
  p.record_span(opts_.collect_trace, Phase::kRecovery, p.compute_started,
                engine_.now(), p.computing->range.to_string() + " hung");
  quarantine(slot, sim::FaultKind::kHang,
             "compute " + p.computing->range.to_string() +
                 " exceeded the hard watchdog deadline");
}

bool OffloadExecution::claim_commit(int slot,
                                    const std::shared_ptr<SpecToken>& token,
                                    bool is_spec, bool is_probe,
                                    const dist::Range& range) {
  // First-commit-wins claim (dsan): commutative — the winner under a
  // parallel engine is fixed by canonical (time, seq) commit order.
  HOMP_DSAN_WRITE(dsan_commit_);
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (token) {
    --token->runners;
    if (token->committed) {
      note_recovery(slot, RecoveryAction::kTardyAbandoned,
                    range.to_string() + " (lost the commit race)");
      return false;
    }
    token->committed = true;
    if (is_spec) {
      ++p.stats.spec_copies_won;
      note_recovery(slot, RecoveryAction::kSpecCommitted, range.to_string());
      // First-commit-wins cancels the loser *now*. The origin missed its
      // soft deadline and then lost to a from-scratch duplicate that paid
      // the full copy-in/copy-out cost — it is hung or degraded beyond
      // use, and every further second it grinds on an already-committed
      // chunk holds the final barrier hostage. Quarantine it immediately
      // (probation can re-admit it); the hard deadline stays as the
      // backstop for chunks that were never speculated.
      Proxy& origin = *proxies_[static_cast<std::size_t>(token->origin_slot)];
      if (!origin.lost && origin.computing &&
          origin.computing->token == token) {
        origin.stats.phase_time[static_cast<int>(Phase::kRecovery)] +=
            engine_.now() - origin.compute_started;
        origin.record_span(opts_.collect_trace, Phase::kRecovery,
                           origin.compute_started, engine_.now(),
                           range.to_string() + " lost to its duplicate");
        quarantine(token->origin_slot, sim::FaultKind::kHang,
                   "compute " + range.to_string() +
                       " lost the commit race to its speculative duplicate");
      }
    }
  }
  if (is_probe && p.probation) {
    ++p.probes_passed;
    note_recovery(slot, RecoveryAction::kProbePassed, range.to_string());
    if (p.probes_passed >= opts_.watchdog.probation_successes) {
      p.probation = false;
      note_recovery(slot, RecoveryAction::kPromoted,
                    "restored to full service after " +
                        std::to_string(p.probes_passed) + " probes");
    }
  }
  return true;
}

void OffloadExecution::schedule_readmission(int slot) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  const double cooldown = std::min(
      opts_.watchdog.cooldown_cap_s,
      opts_.watchdog.cooldown_base_s *
          std::pow(opts_.watchdog.cooldown_growth,
                   static_cast<double>(p.stats.quarantine_count - 1)));
  p.record_span(opts_.collect_trace, Phase::kRecovery, engine_.now(),
                engine_.now() + cooldown, "quarantine cooldown");
  sched_after(cooldown, [this, slot] { readmit(slot); });
}

void OffloadExecution::readmit(int slot) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (!p.lost) return;
  // Quarantined first, *then* its scheduled permanent loss passed: dead.
  if (p.loss_time >= 0.0 && engine_.now() >= p.loss_time) return;
  // Offload effectively over: nothing left to prove, stay quarantined.
  bool work_left = !requeue_.empty();
  for (const auto& q : proxies_) {
    if (!q->lost && !q->done) work_left = true;
  }
  if (!work_left) return;

  p.lost = false;
  p.probation = true;
  p.probes_passed = 0;
  p.done = false;
  p.finalizing = false;
  p.stats.quarantined = false;
  ++p.stats.readmissions;
  note_recovery(slot, RecoveryAction::kReadmitted,
                "probation after cooldown (quarantine #" +
                    std::to_string(p.stats.quarantine_count) + ")");
  if (audit_on()) {
    note_decision(slot, DecisionKind::kReadmitted, dist::Range(),
                  "probation after cooldown (quarantine #" +
                      std::to_string(p.stats.quarantine_count) + ")");
  }
  HOMP_INFO << "device '" << p.desc->name << "' re-admitted in probation at "
            << "t=" << engine_.now();
  scheduler_->reactivate(slot);
  sched_after(0.0, [this, slot] { try_fetch(slot); });
}

bool OffloadExecution::has_work_for(int slot) const {
  if (!requeue_.empty()) return true;
  for (const auto& st : integrity_queue_) {
    if (!st->resolved && integrity_slot_allowed(*st, slot)) return true;
  }
  for (const auto& t : spec_queue_) {
    if (!t->committed && t->origin_slot != slot) return true;
  }
  return false;
}

void OffloadExecution::rouse(Proxy& q) {
  const int s = q.slot;
  if (q.done) {
    // Revival: the proxy had already finalized, but new work arrived. It
    // re-enters the pipeline and finalizes again later (the repeated
    // static write-back is deterministic byte accounting on idempotent
    // copies, not a correctness hazard).
    q.done = false;
    q.finalizing = false;
  } else if (q.waiting_stage) {
    // Barrier waiters pick up work before re-waiting.
    q.waiting_stage = false;
    q.stats.phase_time[static_cast<int>(Phase::kBarrier)] +=
        engine_.now() - q.stage_wait_start;
    q.record_span(opts_.collect_trace, Phase::kBarrier, q.stage_wait_start,
                  engine_.now(), "stage");
  } else if (q.fetching || q.inflight || q.ready || q.computing ||
             q.finalizing || q.outstanding_outputs > 0) {
    return;  // busy: picks work up at its next pipeline step
  }
  sched_after(0.0, [this, s] { try_fetch(s); });
}

void OffloadExecution::note_recovery(int slot, RecoveryAction action,
                                     std::string detail) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  recovery_events_.push_back(RecoveryEvent{engine_.now(), slot, p.device_id,
                                           action, std::move(detail)});
}

std::size_t OffloadExecution::note_decision(int slot, DecisionKind kind,
                                            const dist::Range& range,
                                            std::string detail) {
  const Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  SchedDecision d;
  d.time = engine_.now();
  d.slot = slot;
  d.device_id = p.device_id;
  d.kind = kind;
  d.range = range;
  d.ewma_iter_s = p.ewma_iter_s;
  d.detail = std::move(detail);
  decisions_.push_back(std::move(d));
  return decisions_.size() - 1;
}

void OffloadExecution::record_counter(const Proxy& p, CounterTrack track,
                                      double value) {
  if (!opts_.collect_trace) return;
  counters_.push_back(CounterSample{engine_.now(), p.slot, track, value});
}

void OffloadExecution::sample_queue_depth(const Proxy& p) {
  if (!opts_.collect_trace) return;
  const double depth = (p.inflight ? 1.0 : 0.0) + (p.ready ? 1.0 : 0.0) +
                       (p.computing ? 1.0 : 0.0) +
                       static_cast<double>(p.outstanding_outputs);
  record_counter(p, CounterTrack::kQueueDepth, p.lost ? 0.0 : depth);
}

void OffloadExecution::adjust_outstanding_bytes(Proxy& p, double delta) {
  if (!opts_.collect_trace) return;
  p.outstanding_bytes += delta;
  if (p.outstanding_bytes < 0.0) p.outstanding_bytes = 0.0;
  record_counter(p, CounterTrack::kOutstandingBytes,
                 p.lost ? 0.0 : p.outstanding_bytes);
}

void OffloadExecution::predict_chunk(const Proxy& p, const dist::Range& chunk,
                                     double* model1_s, double* model2_s,
                                     double* profile_s) const {
  const auto& din = loop_context_.devices[static_cast<std::size_t>(p.slot)];
  const double iters = static_cast<double>(chunk.size());
  double m1 = iters * model::model1_iter_time(loop_context_.kernel, din);
  double m2 = iters * model::model2_iter_time(loop_context_.kernel, din) +
              p.desc->launch_overhead_s;
  if (kernel_.work_factor) {
    const double wf = kernel_.work_factor(chunk);
    m1 *= wf;
    m2 *= wf;
  }
  *model1_s = m1;
  *model2_s = m2;
  *profile_s = -1.0;
  if (opts_.sched.history != nullptr &&
      opts_.sched.history->has(opts_.sched.history_kernel, p.device_id)) {
    const double rate =
        opts_.sched.history->rate(opts_.sched.history_kernel, p.device_id);
    if (rate > 0.0) *profile_s = iters / rate;
  }
}

void OffloadExecution::accumulate_prediction_error(Proxy& p,
                                                   const dist::Range& chunk,
                                                   double compute_s,
                                                   double chunk_s) {
  if (chunk.size() <= 0 || compute_s <= 0.0 || chunk_s <= 0.0) return;
  double m1 = 0.0;
  double m2 = 0.0;
  double prof = -1.0;
  predict_chunk(p, chunk, &m1, &m2, &prof);
  PredictionErrorStats& e = p.stats.prediction;
  // MODEL_1 predicts pure compute; MODEL_2 and PROFILE predict the whole
  // fetch-to-compute-done span the scheduler's report() also sees.
  const auto extrema = [](double& mn, double& mx, double v) {
    if (mn < 0.0 || v < mn) mn = v;
    if (v > mx) mx = v;
  };
  const double e1 = std::abs(m1 - compute_s) / compute_s;
  const double e2 = std::abs(m2 - chunk_s) / chunk_s;
  e.model1_err_sum += e1;
  e.model2_err_sum += e2;
  extrema(e.model1_err_min, e.model1_err_max, e1);
  extrema(e.model2_err_min, e.model2_err_max, e2);
  ++e.model_samples;
  if (prof >= 0.0) {
    const double ep = std::abs(prof - chunk_s) / chunk_s;
    e.profile_err_sum += ep;
    extrema(e.profile_err_min, e.profile_err_max, ep);
    ++e.profile_samples;
  }
}

void OffloadExecution::kick_survivors() {
  for (const auto& q : proxies_) {
    if (q->lost || !has_work_for(q->slot)) continue;
    rouse(*q);
  }
}

void OffloadExecution::maybe_revive(int slot) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (!p.done || p.lost || !has_work_for(slot)) return;
  p.done = false;
  p.finalizing = false;
  sched_after(0.0, [this, slot] { try_fetch(slot); });
}

void OffloadExecution::check_stage_barrier() {
  if (!scheduler_->stage_barrier_pending()) return;
  std::size_t waiting = 0;
  std::size_t active = 0;
  for (const auto& p : proxies_) {
    if (p->done || p->lost) continue;
    ++active;
    if (p->waiting_stage && p->outstanding_outputs == 0) ++waiting;
  }
  if (waiting != active || active == 0) return;

  scheduler_->advance_stage();
  for (const auto& p : proxies_) {
    if (!p->waiting_stage) continue;
    p->waiting_stage = false;
    p->stats.phase_time[static_cast<int>(Phase::kBarrier)] +=
        engine_.now() - p->stage_wait_start;
    p->record_span(opts_.collect_trace, Phase::kBarrier,
                   p->stage_wait_start, engine_.now(), "stage");
    const int slot = p->slot;
    sched_after(0.0, [this, slot] { try_fetch(slot); });
  }
}

void OffloadExecution::check_completion(int slot) {
  if (cancelled_) {
    park_proxy(slot);
    maybe_finish();
    return;
  }
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.done || p.finalizing || p.lost) return;
  if (!scheduler_->finished(slot) || !requeue_.empty()) return;
  // Unsettled integrity re-executions are mandatory work: nobody
  // finalizes while a discarded chunk still awaits a verified commit.
  for (auto it = integrity_queue_.begin(); it != integrity_queue_.end();) {
    it = (*it)->resolved ? integrity_queue_.erase(it) : std::next(it);
  }
  if (!integrity_queue_.empty()) return;
  if (p.fetching || p.inflight || p.ready || p.computing ||
      p.outstanding_outputs > 0) {
    return;
  }
  finalize_device(slot);
}

void OffloadExecution::sweep_completion() {
  // Serving or settling integrity work changes a *global* completion
  // precondition, so every proxy needs a fresh look — earlier refusals
  // may have parked idle proxies that can now finalize.
  for (const auto& p : proxies_) check_completion(p->slot);
}

void OffloadExecution::finalize_device(int slot) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  p.finalizing = true;

  // A device that got work earlier still has its static (pinned/FULL)
  // output regions to write back; one that never computed has nothing.
  double bytes = p.statics_loaded ? p.static_env.total_bytes_out() : 0.0;
  if (kernel_.has_reduction && p.up != nullptr && p.stats.iterations > 0) {
    bytes += 8.0;  // the device's partial reduction value
  }
  if (p.up != nullptr && bytes > 0.0) {
    issue_finalize(slot, bytes, 1);
  } else {
    complete_finalize(slot);
  }

  // A device that finished without ever fetching must pass the token on.
  pass_serial_token(slot);
}

void OffloadExecution::issue_finalize(int slot, double bytes, int attempt) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.lost) return;
  const double start = engine_.now();
  const bool failed = fault_active_ && fault_plan_.transfer_fails(p.device_id);
  // The final static write-back rides the same transfer fault stream, so
  // it can also be silently corrupted. With integrity armed it is caught
  // and re-sent; unarmed it is modelled only (no real bytes are flipped:
  // flipping host statics could poison a later revived device's copy-in,
  // and the retry path could not repair it — see docs/RESILIENCE.md).
  std::uint64_t wire_seed = 0;
  if (fault_active_) {
    wire_seed = fault_plan_.transfer_corrupts(p.device_id);
    if (failed) wire_seed = 0;
  }
  adjust_outstanding_bytes(p, bytes);
  p.up->transfer(bytes, guard([this, slot, start, bytes, attempt, failed,
                               wire_seed] {
    Proxy& q = *proxies_[static_cast<std::size_t>(slot)];
    adjust_outstanding_bytes(q, -bytes);
    if (q.lost) return;  // quarantined mid-write-back
    if (failed) {
      q.stats.phase_time[static_cast<int>(Phase::kRecovery)] +=
          engine_.now() - start;
      q.record_span(opts_.collect_trace, Phase::kRecovery, start,
                    engine_.now(), "write-back fault");
      note_fault(slot, sim::FaultKind::kTransfer, false,
                 "final write-back attempt " + std::to_string(attempt));
      handle_transient(slot, attempt, sim::FaultKind::kTransfer,
                       [this, slot, bytes, attempt] {
                         issue_finalize(slot, bytes, attempt + 1);
                       });
      return;
    }
    q.stats.phase_time[static_cast<int>(Phase::kCopyOut)] +=
        engine_.now() - start;
    q.stats.bytes_out += bytes;
    if (wire_seed != 0) {
      ++q.stats.corruptions_injected;
      note_fault(slot, sim::FaultKind::kCorruptTransfer, false,
                 "final write-back payload silently corrupted");
      if (integrity_armed_) {
        ++q.stats.integrity_checks;
        ++q.stats.integrity_failures;
        note_recovery(slot, RecoveryAction::kCorruptionDetected,
                      "final write-back checksum mismatch — re-sending");
        handle_transient(slot, attempt, sim::FaultKind::kCorruptTransfer,
                         [this, slot, bytes, attempt] {
                           issue_finalize(slot, bytes, attempt + 1);
                         });
        return;
      }
    }
    complete_finalize(slot);
  }));
}

void OffloadExecution::complete_finalize(int slot) {
  Proxy& q = *proxies_[static_cast<std::size_t>(slot)];
  if (opts_.execute_bodies && q.statics_loaded) {
    q.static_env.copy_out_all();
  }
  q.done = true;
  q.stats.finish_time = engine_.now();
  // Redistribution work may have arrived while the write-back was in
  // flight; a healthy finished device takes its share.
  maybe_revive(slot);
  maybe_finish();
}

void OffloadExecution::launch() {
  HOMP_REQUIRE(!ran_, "OffloadExecution launched twice");
  ran_ = true;
  start_time_ = engine_.now();
  events_at_launch_ = engine_.events_processed();

  // CUTOFF verdicts are part of the audit trail: one record per slot at
  // launch time, carrying the renormalized weight (Table V's predicted
  // contribution) in the detail field.
  if (audit_on()) {
    if (const auto* cut = scheduler_->cutoff()) {
      for (const auto& p : proxies_) {
        const auto s = static_cast<std::size_t>(p->slot);
        const bool kept = s < cut->selected.size() && cut->selected[s];
        // Kept devices report their renormalized share (Table V's
        // predicted contribution); dropped devices report the pre-drop
        // share — their renormalized weight is 0 by definition, which
        // would erase the very figure drop-regret analysis needs.
        const double w = kept ? (s < cut->weights.size() ? cut->weights[s] : 0.0)
                              : (s < cut->pre_weights.size()
                                     ? cut->pre_weights[s]
                                     : 0.0);
        note_decision(p->slot,
                      kept ? DecisionKind::kCutoffKept
                           : DecisionKind::kCutoffDropped,
                      dist::Range(),
                      "weight " + std::to_string(w) +
                          (kept ? "" : " below the cutoff ratio"));
      }
    }
  }

  for (std::size_t slot = 0; slot < proxies_.size(); ++slot) {
    const int s = static_cast<int>(slot);
    sched_after(0.0, [this, s] { try_fetch(s); });
  }
  if (fault_active_) {
    for (const auto& p : proxies_) {
      const double lt = fault_plan_.loss_time(p->device_id);
      // loss_time() is relative to the offload's start; store and
      // schedule it absolute so quarantine's permanence check and the
      // event both live on the shared clock.
      p->loss_time = lt >= 0.0 ? start_time_ + lt : -1.0;
      if (lt >= 0.0) {
        const int s = p->slot;
        sched_after(lt, [this, s] { on_device_lost(s); });
      }
    }
  }
}

void OffloadExecution::start(std::function<void(OffloadResult&&)>
                                 on_complete) {
  HOMP_REQUIRE(ctx_ != nullptr,
               "OffloadExecution::start() needs a shared ExecContext; "
               "standalone executions use run()");
  HOMP_REQUIRE(on_complete != nullptr, "start() needs a completion callback");
  on_complete_ = std::move(on_complete);
  launch();
}

void OffloadExecution::maybe_finish() {
  if (!on_complete_ || finished_) return;
  for (const auto& p : proxies_) {
    if (!p->done && !p->lost) return;
  }
  if (!cancelled_) {
    if (!requeue_.empty()) return;
    // Unsettled integrity re-executions are mandatory work even when
    // every surviving proxy believes it is done (check_completion would
    // have parked them, not finalized them — but a quarantine can strand
    // the queue momentarily). A cancelled job owes neither: its results
    // are discarded anyway.
    for (const auto& st : integrity_queue_) {
      if (!st->resolved) return;
    }
  }
  finish_now();
}

void OffloadExecution::finish_now() {
  if (finished_) return;
  finished_ = true;
  // Revoke every timer this job ever armed — watchdog deadlines, loss
  // schedules, retry backoffs, probation cooldowns. After delivery the
  // owner may destroy the execution: nothing tagged can fire, and the
  // untagged link completions are made inert by the alive_ sentinel.
  engine_.cancel_generation(gen_);
  // Deliver from a fresh event: the caller's completion handler may
  // destroy queues, launch new executions — or destroy *this* — which
  // must not run inside whatever commit chain called us. Move the
  // callback to a local before invoking: its body may free the member.
  std::weak_ptr<bool> alive = std::weak_ptr<bool>(alive_);
  engine_.schedule_after(0.0, [this, alive] {
    if (alive.expired()) return;
    auto cb = std::move(on_complete_);
    on_complete_ = nullptr;
    cb(harvest());
  });
}

sim::Engine::Callback OffloadExecution::guard(sim::Engine::Callback fn) {
  if (ctx_ == nullptr) return fn;  // standalone: exceptions leave run()
  std::weak_ptr<bool> alive = std::weak_ptr<bool>(alive_);
  return [this, alive, fn = std::move(fn)] {
    if (alive.expired()) return;  // owner destroyed us; late completion
    if (failed_) return;          // the domain is sealed
    if (opts_.harness.step_budget > 0 &&
        ++events_used_ >
            static_cast<std::size_t>(opts_.harness.step_budget)) {
      fail(FailClass::kStepBudget,
           "job step budget (" + std::to_string(opts_.harness.step_budget) +
               " events) exhausted during offload of '" + kernel_.name +
               "' — livelock or deadlock suspected");
      return;
    }
    try {
      fn();
    } catch (const OffloadError& e) {
      fail(e.fail_class(), e.what());
    } catch (const ExecutionError& e) {
      fail(FailClass::kUnspecified, e.what());
    }
  };
}

std::uint64_t OffloadExecution::sched_after(double dt,
                                            sim::Engine::Callback fn) {
  return engine_.schedule_after(dt, guard(std::move(fn)), gen_);
}

void OffloadExecution::fail(FailClass cls, std::string what) {
  if (ctx_ == nullptr || finished_ || failed_) return;
  failed_ = true;
  if (!cancelled_) {
    // A failure that lands while a cancellation is draining completes
    // the cancellation; the first terminal cause keeps its class.
    fail_class_ = cls;
    fail_error_ = std::move(what);
  }
  finish_now();
}

void OffloadExecution::request_cancel(FailClass cls, std::string reason) {
  if (ctx_ == nullptr || finished_ || failed_ || cancelled_) return;
  cancelled_ = true;
  fail_class_ = cls;
  fail_error_ = std::move(reason);
  // Park everything idle right now; busy proxies drain their in-flight
  // transfer/compute and park when their pipeline next reaches
  // try_fetch / check_completion.
  for (const auto& p : proxies_) park_proxy(p->slot);
  maybe_finish();
}

void OffloadExecution::park_proxy(int slot) {
  Proxy& p = *proxies_[static_cast<std::size_t>(slot)];
  if (p.done || p.lost) {
    pass_serial_token(slot);
    return;
  }
  if (p.waiting_stage) {
    p.waiting_stage = false;
    p.stats.phase_time[static_cast<int>(Phase::kBarrier)] +=
        engine_.now() - p.stage_wait_start;
    p.record_span(opts_.collect_trace, Phase::kBarrier, p.stage_wait_start,
                  engine_.now(), "stage (cancelled)");
  }
  if (p.fetching || p.inflight || p.ready || p.computing || p.finalizing ||
      p.outstanding_outputs > 0) {
    return;  // busy: drains back through try_fetch and parks there
  }
  // No final static write-back: a cancelled job's results are discarded,
  // so it does not get to occupy the up-lane on its way out.
  p.done = true;
  p.stats.finish_time = engine_.now();
  pass_serial_token(slot);
}

OffloadResult OffloadExecution::run() {
  HOMP_REQUIRE(ctx_ == nullptr,
               "OffloadExecution::run() drives a private engine; "
               "shared-context executions use start()");
  launch();
  if (opts_.harness.step_budget > 0) {
    // The fuzz harness's livelock watchdog: a wedged scheduler keeps the
    // queue busy forever in bounded virtual time, which run_until cannot
    // catch but an event budget can (docs/FUZZING.md).
    engine_.run_bounded(static_cast<std::size_t>(opts_.harness.step_budget));
    if (!engine_.idle()) {
      throw OffloadError(
          "engine step budget (" +
          std::to_string(opts_.harness.step_budget) +
          " events) exhausted with work still pending during offload of '" +
              kernel_.name + "' — livelock or deadlock suspected",
          FailClass::kStepBudget);
    }
  } else {
    engine_.run();
  }
  return harvest();
}

OffloadResult OffloadExecution::harvest() {
  OffloadResult res;
  const bool aborted = failed_ || cancelled_;
  res.failed = failed_ && !cancelled_;
  res.cancelled = cancelled_;
  res.fail_class = fail_class_;
  res.error = fail_error_;
  res.engine_events = engine_.events_processed() - events_at_launch_;
  res.algorithm_used = algorithm_used_;
  res.planned_weights = scheduler_->planned_weights();
  if (const auto* cut = scheduler_->cutoff()) {
    res.cutoff = *cut;
    res.has_cutoff = true;
  }
  res.chunks_issued = scheduler_->chunks_issued();
  res.fault_events = std::move(fault_events_);
  res.recovery_events = std::move(recovery_events_);
  res.decisions = std::move(decisions_);
  res.counters = std::move(counters_);

  double end = 0.0;
  long long covered = 0;
  for (auto& p : proxies_) {
    if (p->stats.quarantine_count > 0) res.degraded = true;
    if (p->stats.quarantined) {
      // Chunks this device committed before its quarantine are valid host
      // results and stay counted; the rest were redistributed.
      p->stats.finish_time = p->stats.quarantined_at;
      covered += p->stats.iterations;
      continue;
    }
    if (!aborted) {
      HOMP_REQUIRE(p->done, "device '" + p->desc->name +
                                "' never completed — scheduler deadlock");
    } else if (!p->done) {
      // The failure sealed the domain mid-flight; the proxy's clock
      // stops at the seal, not at some never-reached finish.
      p->stats.finish_time = engine_.now();
    }
    end = std::max(end, p->stats.finish_time);
    covered += p->stats.iterations;
  }
  // A failed or cancelled job surrenders its coverage guarantee: the
  // record carries whatever partial iteration counts accrued.
  if (!aborted) HOMP_ASSERT(covered == kernel_.iterations.size());
  end = std::max(end, start_time_);
  res.total_time = end - start_time_;

  for (auto& p : proxies_) {
    if (!p->stats.quarantined) {
      p->stats.phase_time[static_cast<int>(Phase::kBarrier)] +=
          end - p->stats.finish_time;
      p->record_span(opts_.collect_trace, Phase::kBarrier,
                     p->stats.finish_time, end, "final");
    }
    // Stats times are job-relative (launch = 0) so imbalance() and the
    // throughput feedback read the same whether the execution ran
    // standalone (start_time_ == 0: identity) or on a shared engine.
    // Trace spans above stay absolute for multi-tenant interleaving.
    p->stats.finish_time = std::max(0.0, p->stats.finish_time - start_time_);
    if (p->stats.quarantined) {
      p->stats.quarantined_at =
          std::max(0.0, p->stats.quarantined_at - start_time_);
    }
    res.reduction += p->partial_reduction;
    res.devices.push_back(p->stats);
    if (opts_.collect_trace) {
      res.trace.insert(res.trace.end(), p->spans.begin(), p->spans.end());
    }
  }

  if (opts_.harness.capture_result_checksum && opts_.execute_bodies &&
      region_envs_ == nullptr && !aborted) {
    // Differential-oracle tap (docs/FUZZING.md): fold every copies-out
    // host array into one digest, in map order. The reduction is
    // deliberately excluded — its partial-sum grouping differs across
    // algorithms, so the oracle compares it under a tolerance, never
    // bit-exactly. Only packed row-major bindings are digestible; a
    // strided view leaves the checksum invalid rather than silently
    // covering a subset of the result.
    Checksummer sum(opts_.integrity.checksum);
    bool digestible = true;
    for (const auto& spec : maps_) {
      if (!mem::copies_out(spec.dir)) continue;
      const mem::ArrayBinding& b = spec.binding;
      long long elems = 1;
      bool packed = b.base != nullptr;
      for (std::size_t d = b.shape.size(); d-- > 0;) {
        if (b.strides[d] != elems) packed = false;
        elems *= b.shape[d];
      }
      if (!packed) {
        digestible = false;
        break;
      }
      sum.update(b.base, static_cast<std::size_t>(elems) * b.elem_size);
    }
    if (digestible) {
      res.result_checksum = sum.digest();
      res.result_checksum_valid = true;
    }
  }
  return res;
}

}  // namespace homp::rt
