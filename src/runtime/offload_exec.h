#ifndef HOMP_RUNTIME_OFFLOAD_EXEC_H
#define HOMP_RUNTIME_OFFLOAD_EXEC_H

/// \file offload_exec.h
/// Execution of one multi-device offload on the discrete-event engine.
///
/// Each participating device is driven by a proxy actor — the simulated
/// counterpart of the paper's per-device host pthread proxies (§V, Fig. 4).
/// A proxy walks the offloading pipeline:
///
///   acquire chunk -> (alloc +) copy-in -> launch + compute -> copy-out
///        ^                                    |
///        +--------- prefetch next chunk ------+   (double buffering)
///
/// Input transfer of chunk k+1 overlaps computation of chunk k, which is
/// the mechanism behind the paper's observation that SCHED_DYNAMIC wins on
/// data-intensive kernels (§VI-A). Host->device and device->host
/// directions are independent full-duplex PCIe lanes; dies sharing a card
/// contend on the same lane pair.
///
/// Data movement is real: unless `execute_bodies` is off, mapped
/// subregions are memcpy'd between host arrays and per-device storage and
/// kernel bodies run against the device copies, so distribution bugs
/// corrupt results instead of hiding in the timing model.
///
/// The pipeline is fault-tolerant (docs/RESILIENCE.md): transient
/// transfer/launch faults injected by the sim::FaultPlan are retried with
/// capped exponential backoff; a device that exhausts its retry budget or
/// is permanently lost is quarantined, and its in-flight plus unissued
/// iterations are requeued and redistributed to the survivors. Host
/// commits (copy-out, reduction, iteration counts) ride the copy-out
/// completion, so a quarantined chunk never half-writes host arrays.

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dist/distribution.h"
#include "machine/device.h"
#include "memory/data_env.h"
#include "memory/map_spec.h"
#include "runtime/kernel.h"
#include "runtime/options.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/link.h"

namespace homp::rt {

class OffloadExecution {
 public:
  /// \param forced_loop_dist non-null inside a `target data` region whose
  ///        entry already fixed the loop distribution (DataRegion).
  /// \param region_envs per-slot data environments of an enclosing data
  ///        region; when given, data is already device-resident, so the
  ///        offload moves no bytes (entry/halo/exit transfers are the
  ///        region's) and `maps` should be empty.
  OffloadExecution(const mach::MachineDescriptor& machine,
                   const LoopKernel& kernel,
                   const std::vector<mem::MapSpec>& maps,
                   const OffloadOptions& opts,
                   const dist::Distribution* forced_loop_dist = nullptr,
                   const std::vector<mem::DeviceDataEnv>* region_envs =
                       nullptr);

  ~OffloadExecution();  // out-of-line: Proxy/SpecPlan are private types

  /// Run the offload to completion; single use.
  OffloadResult run();

  /// The effective cost profile (kernel FLOPs/memory plus transfer bytes
  /// per iteration derived from the actual map footprints) used for model
  /// predictions.
  const model::KernelCostProfile& effective_profile() const noexcept {
    return effective_profile_;
  }

 private:
  struct SpecPlan;
  struct PendingChunk;
  struct OutRecord;
  struct Proxy;

  void validate_and_plan();
  void build_proxies();
  void build_fault_plan();
  double compute_seconds(Proxy& p, const dist::Range& chunk) const;
  void make_chunk_mappings(Proxy& p, const dist::Range& chunk,
                           std::vector<mem::DeviceMapping*>* out) const;
  void make_static_mappings(Proxy& p);

  // Proxy state machine.
  void try_fetch(int slot);
  void issue_input(int slot, int attempt);
  void on_input_done(int slot);
  void try_start_compute(int slot);
  void start_launch(int slot, int attempt);
  void on_compute_done(int slot);
  void issue_output(int slot, std::shared_ptr<OutRecord> rec, int attempt);
  void check_stage_barrier();
  void check_completion(int slot);
  void finalize_device(int slot);
  void issue_finalize(int slot, double bytes, int attempt);
  void complete_finalize(int slot);
  void pass_serial_token(int slot);

  // Fault recovery (docs/RESILIENCE.md).
  void on_device_lost(int slot);
  void handle_transient(int slot, int attempt, sim::FaultKind kind,
                        std::function<void()> retry);
  void quarantine(int slot, sim::FaultKind kind, const std::string& detail);
  void note_fault(int slot, sim::FaultKind kind, bool fatal,
                  std::string detail);
  dist::Range take_requeue();
  void kick_survivors();
  void maybe_revive(int slot);

  const mach::MachineDescriptor& machine_;
  const LoopKernel& kernel_;
  const std::vector<mem::MapSpec>& maps_;
  OffloadOptions opts_;

  sim::Engine engine_;
  std::vector<std::unique_ptr<sim::SharedLink>> down_links_;  // per machine link
  std::vector<std::unique_ptr<sim::SharedLink>> up_links_;

  std::vector<SpecPlan> plans_;
  model::KernelCostProfile effective_profile_;
  sched::LoopContext loop_context_;
  std::unique_ptr<sched::LoopScheduler> scheduler_;
  sched::AlgorithmKind algorithm_used_ = sched::AlgorithmKind::kBlock;

  std::vector<std::unique_ptr<Proxy>> proxies_;
  const std::vector<mem::DeviceDataEnv>* region_envs_ = nullptr;
  int serial_token_ = 0;  // !parallel_offload: next slot allowed to set up
  bool ran_ = false;

  sim::FaultPlan fault_plan_;
  bool fault_active_ = false;
  /// Orphaned iterations of quarantined devices, redistributed to the
  /// survivors in dynamic grains ahead of the scheduler's own chunks.
  std::deque<dist::Range> requeue_;
  long long requeue_grain_ = 1;
  std::vector<FaultEvent> fault_events_;
};

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_OFFLOAD_EXEC_H
