#ifndef HOMP_RUNTIME_OFFLOAD_EXEC_H
#define HOMP_RUNTIME_OFFLOAD_EXEC_H

/// \file offload_exec.h
/// Execution of one multi-device offload on the discrete-event engine.
///
/// Each participating device is driven by a proxy actor — the simulated
/// counterpart of the paper's per-device host pthread proxies (§V, Fig. 4).
/// A proxy walks the offloading pipeline:
///
///   acquire chunk -> (alloc +) copy-in -> launch + compute -> copy-out
///        ^                                    |
///        +--------- prefetch next chunk ------+   (double buffering)
///
/// Input transfer of chunk k+1 overlaps computation of chunk k, which is
/// the mechanism behind the paper's observation that SCHED_DYNAMIC wins on
/// data-intensive kernels (§VI-A). Host->device and device->host
/// directions are independent full-duplex PCIe lanes; dies sharing a card
/// contend on the same lane pair.
///
/// Data movement is real: unless `execute_bodies` is off, mapped
/// subregions are memcpy'd between host arrays and per-device storage and
/// kernel bodies run against the device copies, so distribution bugs
/// corrupt results instead of hiding in the timing model.
///
/// The pipeline is fault-tolerant (docs/RESILIENCE.md): transient
/// transfer/launch faults injected by the sim::FaultPlan are retried with
/// capped exponential backoff; a device that exhausts its retry budget or
/// is permanently lost is quarantined, and its in-flight plus unissued
/// iterations are requeued and redistributed to the survivors. Host
/// commits (copy-out, reduction, iteration counts) ride the copy-out
/// completion, so a quarantined chunk never half-writes host arrays.
///
/// On top of retry/quarantine sits a watchdog (armed only while fault
/// injection is active): every compute gets a soft deadline derived from
/// the model-predicted chunk time, and a hard deadline a fixed multiple
/// beyond it. A chunk past its soft deadline is *tardy* — it may be
/// speculatively duplicated onto the fastest idle survivor, with
/// first-commit-wins deciding which copy's host effects land (the loser
/// is discarded before touching host state, keeping results
/// bit-identical). A chunk past its hard deadline is presumed hung
/// (FaultKind::kHang) and its device is quarantined. Quarantine is no
/// longer necessarily permanent: unless the device is really lost, it is
/// re-admitted after an exponentially growing cooldown into a probation
/// state that feeds it small probe chunks until it either proves itself
/// (promotion) or fails again (re-quarantine).
///
/// The third resilience leg is end-to-end data integrity
/// (docs/RESILIENCE.md "Integrity"): chunk payloads are checksummed on
/// the device side and verified before their host commit, so silently
/// corrupted transfers or kernel results (FaultKind::kCorruptTransfer /
/// kCorruptCompute) are discarded before touching host state,
/// re-executed on a different device, and escalated to quorum voting on
/// repeated disagreement. Devices that repeatedly fail verification trip
/// a circuit breaker into the same quarantine + probation machinery.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dist/distribution.h"
#include "machine/device.h"
#include "memory/data_env.h"
#include "memory/map_spec.h"
#include "runtime/exec_context.h"
#include "runtime/kernel.h"
#include "runtime/options.h"
#include "sched/scheduler.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/link.h"

namespace homp::rt {

class OffloadExecution {
 public:
  /// \param forced_loop_dist non-null inside a `target data` region whose
  ///        entry already fixed the loop distribution (DataRegion).
  /// \param region_envs per-slot data environments of an enclosing data
  ///        region; when given, data is already device-resident, so the
  ///        offload moves no bytes (entry/halo/exit transfers are the
  ///        region's) and `maps` should be empty.
  /// \param ctx non-null to run on a *shared* engine + link lanes
  ///        (exec_context.h): the execution schedules relative to the
  ///        engine's current time and delivers its result through the
  ///        callback given to start() instead of returning from run().
  ///        The context must outlive this object.
  OffloadExecution(const mach::MachineDescriptor& machine,
                   const LoopKernel& kernel,
                   const std::vector<mem::MapSpec>& maps,
                   const OffloadOptions& opts,
                   const dist::Distribution* forced_loop_dist = nullptr,
                   const std::vector<mem::DeviceDataEnv>* region_envs =
                       nullptr,
                   const ExecContext* ctx = nullptr);

  ~OffloadExecution();  // out-of-line: Proxy/SpecPlan are private types

  /// Run the offload to completion on the *owned* engine; single use.
  /// Standalone mode only (no ExecContext).
  OffloadResult run();

  /// Shared-engine mode: enqueue the offload's first events on the
  /// context's engine and return immediately. `on_complete` fires (as an
  /// engine event) once every device is done or quarantined and all
  /// redistribution/integrity work has settled; the caller drives the
  /// shared engine. Times inside the result (total_time, per-device
  /// finish_time) are relative to launch; trace spans and event streams
  /// keep absolute virtual time so multi-tenant traces interleave
  /// correctly. Single use, requires a context.
  ///
  /// Shared-mode executions are their own *failure domain*
  /// (docs/SERVING.md): an unrecoverable OffloadError raised inside any
  /// of this execution's events is captured, every timer the execution
  /// armed is revoked (cancel_generation), and on_complete receives a
  /// result with `failed` set instead of the exception unwinding the
  /// caller's engine drain. After on_complete returns the caller may
  /// destroy the execution immediately — nothing it scheduled can fire
  /// afterwards.
  void start(std::function<void(OffloadResult&&)> on_complete);

  /// Cooperative cancellation (shared mode; no-op standalone or once the
  /// result is already on its way). New work stops being fetched, idle
  /// proxies park immediately, busy ones drain their in-flight transfer
  /// or compute and then park — no final static write-back is paid. The
  /// result arrives through on_complete with `cancelled` set, carrying
  /// `cls`/`reason` and whatever partial statistics accrued.
  void request_cancel(FailClass cls, std::string reason);

  /// Shared mode: the cancellation generation every timer this execution
  /// arms belongs to; 0 standalone. After the completion callback fires
  /// the generation has no pending events — the serving layer's
  /// memory-flatness invariant checks this via Engine::live_generations.
  sim::Engine::GenTag generation() const noexcept { return gen_; }

  /// The effective cost profile (kernel FLOPs/memory plus transfer bytes
  /// per iteration derived from the actual map footprints) used for model
  /// predictions.
  const model::KernelCostProfile& effective_profile() const noexcept {
    return effective_profile_;
  }

 private:
  struct SpecPlan;
  struct SpecToken;
  struct PendingChunk;
  struct OutRecord;
  struct Proxy;
  struct IntegrityState;

  void validate_and_plan();
  void build_proxies();
  void build_fault_plan();
  /// Schedule the offload's opening events (fetches, loss timers) at the
  /// engine's current time; shared front half of run()/start().
  void launch();
  /// Collect the OffloadResult once every proxy has settled; shared back
  /// half of run()/start().
  OffloadResult harvest();
  /// Shared-engine completion probe: when every proxy is done or lost
  /// and no mandatory work remains, fire the start() callback exactly
  /// once (as a fresh engine event, so it never runs inside a commit
  /// chain). No-op in standalone mode.
  void maybe_finish();

  // Failure domain (shared mode; docs/SERVING.md "Job failure domains").
  /// Event trampoline: every engine event and link-completion callback
  /// this execution arms goes through here. Standalone it is the
  /// identity (exceptions propagate out of run(), as ever). Shared, it
  /// (a) goes inert once the owner destroyed the execution or the
  /// domain is sealed by a failure, (b) charges the per-job step budget,
  /// and (c) converts an escaping OffloadError/ExecutionError into
  /// fail() instead of unwinding the shared engine.
  sim::Engine::Callback guard(sim::Engine::Callback fn);
  /// schedule_after through guard(), tagged with this job's generation.
  std::uint64_t sched_after(double dt, sim::Engine::Callback fn);
  /// Seal the domain: record the error, revoke every pending timer and
  /// deliver the failed result. Idempotent.
  void fail(FailClass cls, std::string what);
  /// Common terminal path: cancel the generation and schedule the
  /// (untagged, lifetime-guarded) delivery event.
  void finish_now();
  /// Cancellation parking: retire an idle / barrier-waiting proxy; busy
  /// proxies drain back through try_fetch and park there.
  void park_proxy(int slot);
  double compute_seconds(Proxy& p, const dist::Range& chunk) const;
  void make_chunk_mappings(Proxy& p, const dist::Range& chunk,
                           std::vector<mem::DeviceMapping*>* out) const;
  void make_static_mappings(Proxy& p);

  // Proxy state machine.
  void try_fetch(int slot);
  void issue_input(int slot, int attempt);
  void on_input_done(int slot, int attempt, std::uint64_t wire_seed);
  void input_ready(int slot);
  void try_start_compute(int slot);
  void start_launch(int slot, int attempt);
  void on_compute_done(int slot);
  void issue_output(int slot, std::shared_ptr<OutRecord> rec, int attempt);
  void check_stage_barrier();
  void check_completion(int slot);
  void finalize_device(int slot);
  void issue_finalize(int slot, double bytes, int attempt);
  void complete_finalize(int slot);
  void pass_serial_token(int slot);

  // Fault recovery (docs/RESILIENCE.md).
  void on_device_lost(int slot);
  void handle_transient(int slot, int attempt, sim::FaultKind kind,
                        std::function<void()> retry);
  void quarantine(int slot, sim::FaultKind kind, const std::string& detail);
  void note_fault(int slot, sim::FaultKind kind, bool fatal,
                  std::string detail);
  dist::Range take_requeue();
  void kick_survivors();
  void maybe_revive(int slot);

  // Watchdog, speculation, probation (docs/RESILIENCE.md).
  double predicted_chunk_seconds(const Proxy& p,
                                 const dist::Range& chunk) const;
  void watchdog_soft(int slot, std::uint64_t serial);
  void watchdog_hard(int slot, std::uint64_t serial);
  /// First-commit-wins gate + probation bookkeeping; true when this copy
  /// of the chunk owns the host commit.
  bool claim_commit(int slot, const std::shared_ptr<SpecToken>& token,
                    bool is_spec, bool is_probe, const dist::Range& range);
  /// Requeue one orphaned range at quarantine, honouring its spec token
  /// (committed ranges are never requeued; racing copies keep running).
  void orphan_range(int slot, const dist::Range& range,
                    const std::shared_ptr<SpecToken>& token,
                    long long* taken);
  /// Anything (mandatory requeue or a speculative duplicate another
  /// device originated) this slot could usefully fetch right now?
  bool has_work_for(int slot) const;
  /// Wake an idle / done / barrier-waiting proxy to fetch work.
  void rouse(Proxy& q);
  void schedule_readmission(int slot);
  void readmit(int slot);
  void note_recovery(int slot, RecoveryAction action, std::string detail);

  // Data integrity (docs/RESILIENCE.md "Integrity").
  /// Device-side (or host-side) combined checksum over the chunk's
  /// mappings in the given direction. 0 in pure-simulation mode.
  std::uint64_t payload_checksum(
      const std::vector<mem::DeviceMapping*>& maps, bool input_side,
      bool host_side = false) const;
  /// Flip seeded bytes in one of the chunk's mappings (device storage).
  void apply_corruption(const std::vector<mem::DeviceMapping*>& maps,
                        bool input_side, std::uint64_t seed) const;
  /// Virtual time to checksum `bytes` on the device (device memory scan).
  double integrity_delay(double bytes, const Proxy& p) const;
  /// May `slot` serve this troubled chunk? Suspect and already-balloted
  /// devices are excluded, with graduated fallback so the queue can
  /// always drain (docs/RESILIENCE.md).
  bool integrity_slot_allowed(const IntegrityState& st, int slot) const;
  /// Deferred half of the output-commit path: verify the payload
  /// checksums, ballot when voting, then commit via claim_commit.
  void finish_commit(int slot, std::shared_ptr<OutRecord> rec);
  /// A commit-side checksum mismatch: discard, queue a re-execution,
  /// maybe open a vote, maybe trip the integrity circuit breaker.
  void handle_corrupt_commit(int slot, const std::shared_ptr<OutRecord>& rec,
                             bool wire_only);
  /// check_completion for every slot — used when the integrity queue
  /// drains, since earlier refusals may have parked idle proxies.
  void sweep_completion();

  // Observability (docs/OBSERVABILITY.md).
  /// Decision-audit recording armed? (collect_audit or collect_trace.)
  bool audit_on() const noexcept {
    return opts_.collect_audit || opts_.collect_trace;
  }
  /// Append a decision record; returns its index (for actual_s backfill).
  std::size_t note_decision(int slot, DecisionKind kind,
                            const dist::Range& range, std::string detail);
  /// One counter-track sample (no-op unless collect_trace).
  void record_counter(const Proxy& p, CounterTrack track, double value);
  /// Sample the proxy's pipeline occupancy onto the queue-depth track.
  void sample_queue_depth(const Proxy& p);
  /// Adjust + sample the proxy's in-flight transfer byte count.
  void adjust_outstanding_bytes(Proxy& p, double delta);
  /// Fold one healthy chunk's measured times into the per-device
  /// MODEL_1/MODEL_2/PROFILE relative-error accumulators (always on).
  void accumulate_prediction_error(Proxy& p, const dist::Range& chunk,
                                   double compute_s, double chunk_s);
  /// Per-predictor expected seconds for `chunk` on `p`, at current state.
  void predict_chunk(const Proxy& p, const dist::Range& chunk,
                     double* model1_s, double* model2_s,
                     double* profile_s) const;

  const mach::MachineDescriptor& machine_;
  const LoopKernel& kernel_;
  const std::vector<mem::MapSpec>& maps_;
  OffloadOptions opts_;

  /// Shared-engine mode (exec_context.h) when non-null: engine_ and the
  /// link lanes are borrowed from the context, and completion is
  /// delivered through on_complete_ instead of run()'s return.
  const ExecContext* ctx_ = nullptr;
  std::unique_ptr<sim::Engine> owned_engine_;  // standalone mode only
  sim::Engine& engine_;  // the engine this execution schedules on
  /// Owned lanes (standalone) feeding the borrowed-or-owned views below.
  std::vector<std::unique_ptr<sim::SharedLink>> owned_down_links_;
  std::vector<std::unique_ptr<sim::SharedLink>> owned_up_links_;
  std::vector<sim::SharedLink*> down_links_;  // per machine link
  std::vector<sim::SharedLink*> up_links_;
  /// Engine time at launch(); all result times are reported relative to
  /// it (zero standalone, so nothing changes there).
  double start_time_ = 0.0;
  std::size_t events_at_launch_ = 0;
  std::function<void(OffloadResult&&)> on_complete_;
  bool finished_ = false;  // completion callback already scheduled

  /// Failure-domain state (shared mode). `alive_` is the lifetime
  /// sentinel captured (weakly) by link-completion callbacks, which live
  /// inside the server's SharedLinks and cannot be generation-tagged; it
  /// dying with the execution makes them inert. `events_used_` is the
  /// per-job step-budget meter — run_bounded() guards standalone runs,
  /// but on a shared engine only a per-domain budget can pin a livelock
  /// on the job that spins.
  sim::Engine::GenTag gen_ = 0;
  std::shared_ptr<bool> alive_;
  bool failed_ = false;
  bool cancelled_ = false;
  FailClass fail_class_ = FailClass::kUnspecified;
  std::string fail_error_;
  std::size_t events_used_ = 0;

  std::vector<SpecPlan> plans_;
  model::KernelCostProfile effective_profile_;
  sched::LoopContext loop_context_;
  std::unique_ptr<sched::LoopScheduler> scheduler_;
  sched::AlgorithmKind algorithm_used_ = sched::AlgorithmKind::kBlock;

  std::vector<std::unique_ptr<Proxy>> proxies_;
  const std::vector<mem::DeviceDataEnv>* region_envs_ = nullptr;
  int serial_token_ = 0;  // !parallel_offload: next slot allowed to set up
  bool ran_ = false;

  sim::FaultPlan fault_plan_;
  bool fault_active_ = false;
  /// Orphaned iterations of quarantined devices, redistributed to the
  /// survivors in dynamic grains ahead of the scheduler's own chunks.
  std::deque<dist::Range> requeue_;
  long long requeue_grain_ = 1;
  std::vector<FaultEvent> fault_events_;

  /// Tardy chunks offered for speculative duplication (optional work:
  /// completion never waits on it; a hung original converts its entry
  /// into mandatory requeue work at quarantine).
  std::deque<std::shared_ptr<SpecToken>> spec_queue_;
  long long probe_grain_ = 1;
  std::vector<RecoveryEvent> recovery_events_;

  /// Chunks discarded after a checksum mismatch, awaiting re-execution
  /// (served ahead of everything else; completion waits on it).
  std::deque<std::shared_ptr<IntegrityState>> integrity_queue_;
  bool integrity_armed_ = false;

  /// Scheduler decision audit trail (collect_audit / collect_trace) and
  /// counter-track samples (collect_trace), in virtual-time order.
  std::vector<SchedDecision> decisions_;
  std::vector<CounterSample> counters_;

#if HOMP_DSAN_ENABLED
  /// dsan cells (docs/DETERMINISM.md "Tracked cells"). Both commutative:
  /// a chunk fetch is one atomic scheduler operation whose same-timestamp
  /// ties the engine resolves FIFO by contract, and commits are
  /// first-commit-wins with the winner fixed by canonical (time, seq)
  /// order at the barrier. Concurrent *reads* against either still flag.
  sim::dsan::Cell dsan_sched_{"exec/sched", sim::dsan::CellKind::kCommutative};
  sim::dsan::Cell dsan_commit_{"exec/commit",
                               sim::dsan::CellKind::kCommutative};
#endif
};

}  // namespace homp::rt

#endif  // HOMP_RUNTIME_OFFLOAD_EXEC_H
