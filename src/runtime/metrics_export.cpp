#include "runtime/metrics_export.h"

#include <fstream>

#include "common/error.h"
#include "obs/metric_names.h"
#include "sched/algorithm.h"

namespace homp::rt {

namespace {
/// `device="gpu0"` — the literal Prometheus brace content for one device.
std::string device_labels(const DeviceStats& d) {
  return "device=\"" + d.device_name + "\"";
}
}  // namespace

void collect_metrics(const OffloadResult& res, obs::MetricsRegistry& reg) {
  namespace names = obs::names;

  // Offload level.
  reg.add(names::kOffloads, "");
  reg.add(names::kOffloadSeconds, "", res.total_time);
  reg.set(names::kOffloadTime, "", res.total_time);
  reg.add(names::kChunksIssued, "", double(res.chunks_issued));
  reg.set(names::kImbalancePct, "", res.imbalance().percent());
  reg.add(names::kAlgorithmRuns,
          std::string("algorithm=\"") +
              sched::to_string(res.algorithm_used) + "\"");
  if (res.degraded) reg.add(names::kDegradedRuns, "");
  for (const auto& d : res.decisions) {
    reg.add(names::kDecisions,
            std::string("kind=\"") + to_string(d.kind) + "\"");
  }

  for (const auto& d : res.devices) {
    const std::string dev = device_labels(d);

    // Pipeline.
    reg.add(names::kDeviceChunks, dev, double(d.chunks));
    reg.add(names::kDeviceIterations, dev, double(d.iterations));
    reg.add(names::kDeviceBytesIn, dev, d.bytes_in);
    reg.add(names::kDeviceBytesOut, dev, d.bytes_out);
    for (int p = 0; p < kNumPhases; ++p) {
      reg.add(names::kDevicePhaseSeconds,
              dev + ",phase=\"" + to_string(static_cast<Phase>(p)) + "\"",
              d.phase_time[p]);
    }
    reg.set(names::kDeviceFinishTime, dev, d.finish_time);
    reg.merge_histogram(names::kDeviceChunkSeconds, dev, d.chunk_seconds);

    // Resilience.
    reg.add(names::kDeviceFaults, dev, double(d.faults));
    reg.add(names::kDeviceRetries, dev, double(d.retries));
    reg.add(names::kDeviceRequeuedIters, dev, double(d.requeued_iterations));
    reg.add(names::kDeviceTardy, dev, double(d.tardy_chunks));
    reg.add(names::kDeviceSpecRun, dev, double(d.spec_copies_run));
    reg.add(names::kDeviceSpecWon, dev, double(d.spec_copies_won));
    reg.add(names::kDeviceProbes, dev, double(d.probe_chunks));
    reg.add(names::kDeviceReadmissions, dev, double(d.readmissions));
    reg.add(names::kDeviceQuarantines, dev, double(d.quarantine_count));

    // Integrity.
    reg.add(names::kDeviceCorruptions, dev, double(d.corruptions_injected));
    reg.add(names::kDeviceIntegrityChecks, dev, double(d.integrity_checks));
    reg.add(names::kDeviceIntegrityFailures, dev,
            double(d.integrity_failures));
    reg.add(names::kDeviceReexecutions, dev,
            double(d.integrity_reexecutions));
    reg.add(names::kDeviceVoteRounds, dev, double(d.vote_rounds));

    // Model accuracy (gauges: the means, not the raw sums), qualified by
    // sample counts and relative-error extrema for the offline advisor.
    reg.set(names::kModel1RelError, dev, d.prediction.model1_mean());
    reg.set(names::kModel2RelError, dev, d.prediction.model2_mean());
    reg.set(names::kProfileRelError, dev, d.prediction.profile_mean());
    reg.set(names::kModelSamples, dev, double(d.prediction.model_samples));
    reg.set(names::kProfileSamples, dev,
            double(d.prediction.profile_samples));
    reg.set(names::kModel1ErrorMin, dev, d.prediction.model1_err_min);
    reg.set(names::kModel1ErrorMax, dev, d.prediction.model1_err_max);
    reg.set(names::kModel2ErrorMin, dev, d.prediction.model2_err_min);
    reg.set(names::kModel2ErrorMax, dev, d.prediction.model2_err_max);
    reg.set(names::kProfileErrorMin, dev, d.prediction.profile_err_min);
    reg.set(names::kProfileErrorMax, dev, d.prediction.profile_err_max);
  }
}

void write_registry_file(const obs::MetricsRegistry& reg,
                         const std::string& path) {
  std::ofstream out(path);
  HOMP_REQUIRE(out.good(), "cannot open metrics file: " + path);
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  if (prom) {
    reg.write_prometheus(out);
  } else {
    reg.write_json(out);
  }
}

void write_metrics_file(const OffloadResult& res, const std::string& path) {
  obs::MetricsRegistry reg;
  collect_metrics(res, reg);
  write_registry_file(reg, path);
}

}  // namespace homp::rt
