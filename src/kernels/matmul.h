#ifndef HOMP_KERNELS_MATMUL_H
#define HOMP_KERNELS_MATMUL_H

/// \file matmul.h
/// Dense matrix multiplication C = A * B (N x N), distributed by rows of
/// A/C with B replicated. Compute-intensive (Table IV: MemComp 1.5/N,
/// DataComp 1.5/N).

#include "kernels/case.h"
#include "memory/host_array.h"

namespace homp::kern {

class MatMulCase final : public KernelCase {
 public:
  MatMulCase(long long n, bool materialize);

  const std::string& name() const override { return name_; }
  rt::LoopKernel kernel() const override;
  std::vector<mem::MapSpec> maps() const override;
  void init() override;
  bool verify(std::string* why) const override;
  model::KernelCostProfile paper_profile() const override;
  long long problem_size() const override { return n_; }
  bool materialized() const override { return materialize_; }

 private:
  std::string name_ = "matmul";
  long long n_;
  bool materialize_;
  mem::HostArray<double> a_, b_, c_;
};

}  // namespace homp::kern

#endif  // HOMP_KERNELS_MATMUL_H
