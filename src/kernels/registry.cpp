#include "common/error.h"
#include "kernels/axpy.h"
#include "kernels/bm2d.h"
#include "kernels/case.h"
#include "kernels/matmul.h"
#include "kernels/matvec.h"
#include "kernels/stencil2d.h"
#include "kernels/sum.h"

namespace homp::kern {

std::unique_ptr<KernelCase> make_case(const std::string& name, long long n,
                                      bool materialize) {
  HOMP_REQUIRE(n > 0, "kernel problem size must be positive");
  if (name == "axpy") return std::make_unique<AxpyCase>(n, materialize);
  if (name == "matvec") return std::make_unique<MatVecCase>(n, materialize);
  if (name == "matmul") return std::make_unique<MatMulCase>(n, materialize);
  if (name == "stencil2d") {
    return std::make_unique<Stencil2DCase>(n, materialize);
  }
  if (name == "sum") return std::make_unique<SumCase>(n, materialize);
  if (name == "bm2d") return std::make_unique<Bm2dCase>(n, materialize);
  throw ConfigError("unknown kernel case: '" + name + "'");
}

const std::vector<std::string>& all_kernel_names() {
  static const std::vector<std::string> names = {
      "axpy", "matvec", "matmul", "stencil2d", "sum", "bm2d"};
  return names;
}

long long paper_size(const std::string& name) {
  // Sizes from Table V (axpy-10M, bm2d-256, matmul-6144, matvec-48k,
  // stencil2d-256, sum-300M), used consistently for all figures.
  if (name == "axpy") return 10'000'000;
  if (name == "matvec") return 48'000;
  if (name == "matmul") return 6'144;
  if (name == "stencil2d") return 256;
  if (name == "sum") return 300'000'000;
  if (name == "bm2d") return 256;
  throw ConfigError("unknown kernel case: '" + name + "'");
}

}  // namespace homp::kern
