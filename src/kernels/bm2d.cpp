#include "kernels/bm2d.h"

#include <cmath>

#include "common/error.h"

namespace homp::kern {

namespace {
double cur_init(long long i, long long j) {
  return static_cast<double>((i * 13 + j * 7) % 251);
}
double ref_init(long long i, long long j) {
  // A shifted-and-perturbed copy of the current frame so the best match
  // is non-trivial but well defined.
  return static_cast<double>(((i + 3) * 13 + (j + 2) * 7 + i * j % 5) % 251);
}
}  // namespace

Bm2dCase::Bm2dCase(long long n, bool materialize)
    : n_(n), blocks_(n / kBlock), materialize_(materialize) {
  HOMP_REQUIRE(n % kBlock == 0 && n >= 2 * kBlock,
               "bm2d frame edge must be a multiple of 16 and >= 32");
  if (materialize_) {
    cur_ = mem::HostArray<double>::matrix(n, n);
    ref_ = mem::HostArray<double>::matrix(n, n);
    best_ = mem::HostArray<double>::matrix(blocks_, 2 * blocks_);
    init();
  }
}

void Bm2dCase::init() {
  if (!materialize_) return;
  cur_.fill_with_indices(cur_init);
  ref_.fill_with_indices(ref_init);
  best_.fill(0.0);
}

rt::LoopKernel Bm2dCase::kernel() const {
  rt::LoopKernel k;
  k.name = "bm2d";
  k.iterations = dist::Range::of_size(blocks_);  // one iteration per block row
  const double bpr = static_cast<double>(blocks_);  // blocks per row
  const double cands = (2.0 * kSearch + 1) * (2.0 * kSearch + 1);
  const double block_px = static_cast<double>(kBlock * kBlock);
  // Per block: `cands` SAD evaluations of `block_px` pixels, 2 flops each
  // (abs-diff + accumulate); per iteration = blocks-per-row blocks.
  k.cost.flops_per_iter = bpr * cands * block_px * 2.0;
  // Reads: ref window pixels per candidate + current block once.
  k.cost.mem_bytes_per_iter = bpr * (cands * block_px + block_px) * 8.0;
  // Transfers: one band of cur rows + ref band with halo + outputs.
  k.cost.transfer_bytes_per_iter =
      (static_cast<double>(kBlock * n_) +                      // cur band
       static_cast<double>((kBlock + 2 * kSearch) * n_) +      // ref band
       2.0 * bpr) *                                            // best + mv
      8.0;
  if (materialize_) {
    const long long n = n_;
    const long long blocks = blocks_;
    k.body = [n, blocks](const dist::Range& chunk, mem::DeviceDataEnv& env) {
      auto cur = env.view<double>("cur");
      auto ref = env.view<double>("ref");
      auto best = env.view<double>("best");
      for (long long bi = chunk.lo; bi < chunk.hi; ++bi) {
        for (long long bj = 0; bj < blocks; ++bj) {
          const long long i0 = bi * kBlock;
          const long long j0 = bj * kBlock;
          double best_sad = 1e300;
          double best_mv = 0.0;
          for (long long dy = -kSearch; dy <= kSearch; ++dy) {
            for (long long dx = -kSearch; dx <= kSearch; ++dx) {
              const long long ri = i0 + dy;
              const long long rj = j0 + dx;
              if (ri < 0 || rj < 0 || ri + kBlock > n || rj + kBlock > n) {
                continue;  // candidate escapes the frame
              }
              double sad = 0.0;
              for (long long y = 0; y < kBlock; ++y) {
                for (long long x = 0; x < kBlock; ++x) {
                  sad += std::abs(cur(i0 + y, j0 + x) - ref(ri + y, rj + x));
                }
              }
              if (sad < best_sad) {
                best_sad = sad;
                best_mv = static_cast<double>((dy + kSearch) *
                                                  (2 * kSearch + 1) +
                                              (dx + kSearch));
              }
            }
          }
          best(bi, 2 * bj) = best_sad;
          best(bi, 2 * bj + 1) = best_mv;
        }
      }
      return 0.0;
    };
  }
  return k;
}

std::vector<mem::MapSpec> Bm2dCase::maps() const {
  const double ratio = static_cast<double>(kBlock);
  mem::MapSpec cur;
  cur.name = "cur";
  cur.dir = mem::MapDirection::kTo;
  cur.binding =
      materialize_
          ? mem::bind_array(const_cast<mem::HostArray<double>&>(cur_))
          : mem::phantom_binding(sizeof(double), {n_, n_});
  cur.region = dist::Region::of_shape({n_, n_});
  cur.partition = {dist::DimPolicy::align("loop", ratio),
                   dist::DimPolicy::full()};

  mem::MapSpec ref = cur;
  ref.name = "ref";
  if (materialize_) {
    ref.binding = mem::bind_array(const_cast<mem::HostArray<double>&>(ref_));
  }
  ref.halo_before = kSearch;
  ref.halo_after = kSearch;

  mem::MapSpec best;
  best.name = "best";
  best.dir = mem::MapDirection::kFrom;
  best.binding =
      materialize_
          ? mem::bind_array(const_cast<mem::HostArray<double>&>(best_))
          : mem::phantom_binding(sizeof(double), {blocks_, 2 * blocks_});
  best.region = dist::Region::of_shape({blocks_, 2 * blocks_});
  best.partition = {dist::DimPolicy::align("loop"), dist::DimPolicy::full()};

  return {cur, ref, best};
}

double Bm2dCase::reference(long long bi, long long bj) const {
  const long long i0 = bi * kBlock;
  const long long j0 = bj * kBlock;
  double best_sad = 1e300;
  double best_mv = 0.0;
  for (long long dy = -kSearch; dy <= kSearch; ++dy) {
    for (long long dx = -kSearch; dx <= kSearch; ++dx) {
      const long long ri = i0 + dy;
      const long long rj = j0 + dx;
      if (ri < 0 || rj < 0 || ri + kBlock > n_ || rj + kBlock > n_) continue;
      double sad = 0.0;
      for (long long y = 0; y < kBlock; ++y) {
        for (long long x = 0; x < kBlock; ++x) {
          sad += std::abs(cur_init(i0 + y, j0 + x) - ref_init(ri + y, rj + x));
        }
      }
      if (sad < best_sad) {
        best_sad = sad;
        best_mv = static_cast<double>((dy + kSearch) * (2 * kSearch + 1) +
                                      (dx + kSearch));
      }
    }
  }
  (void)best_mv;
  return best_sad;
}

bool Bm2dCase::verify(std::string* why) const {
  if (!materialize_) return true;
  for (long long bi = 0; bi < blocks_; ++bi) {
    for (long long bj = 0; bj < blocks_; ++bj) {
      const double expect = reference(bi, bj);
      if (best_(bi, 2 * bj) != expect) {
        if (why) {
          *why = "bm2d: best[" + std::to_string(bi) + "][" +
                 std::to_string(bj) + "] = " + std::to_string(best_(bi, 2 * bj)) +
                 ", expected " + std::to_string(expect);
        }
        return false;
      }
    }
  }
  return true;
}

model::KernelCostProfile Bm2dCase::paper_profile() const {
  model::KernelCostProfile p;
  p.flops_per_iter = kernel().cost.flops_per_iter;
  p.mem_bytes_per_iter = 0.5 * p.flops_per_iter * 8.0;    // MemComp 0.5
  p.transfer_bytes_per_iter = 0.06 * p.flops_per_iter * 8.0;  // DataComp 0.06
  return p;
}

}  // namespace homp::kern
