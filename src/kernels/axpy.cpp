#include "kernels/axpy.h"

#include <cmath>

namespace homp::kern {

namespace {
double x_init(long long i) { return 0.5 + static_cast<double>(i % 97); }
double y_init(long long i) { return 1.0 + static_cast<double>(i % 31); }
}  // namespace

AxpyCase::AxpyCase(long long n, bool materialize)
    : n_(n), materialize_(materialize) {
  if (materialize_) {
    x_ = mem::HostArray<double>::vector(n);
    y_ = mem::HostArray<double>::vector(n);
    init();
  }
}

void AxpyCase::init() {
  if (!materialize_) return;
  x_.fill_with_index(x_init);
  y_.fill_with_index(y_init);
}

rt::LoopKernel AxpyCase::kernel() const {
  rt::LoopKernel k;
  k.name = "axpy";
  k.iterations = dist::Range::of_size(n_);
  k.cost.flops_per_iter = 2.0;                    // one mul + one add
  k.cost.mem_bytes_per_iter = 3.0 * 8.0;          // load x, load y, store y
  k.cost.transfer_bytes_per_iter = 3.0 * 8.0;     // x in, y in, y out
  if (materialize_) {
    const double a = a_;
    k.body = [a](const dist::Range& chunk, mem::DeviceDataEnv& env) {
      auto x = env.view<double>("x");
      auto y = env.view<double>("y");
      for (long long i = chunk.lo; i < chunk.hi; ++i) {
        y(i) += a * x(i);
      }
      return 0.0;
    };
  }
  return k;
}

std::vector<mem::MapSpec> AxpyCase::maps() const {
  // v2 style (Fig. 2): data follows the loop's distribution.
  mem::MapSpec x;
  x.name = "x";
  x.dir = mem::MapDirection::kTo;
  x.binding = materialize_
                  ? mem::bind_array(const_cast<mem::HostArray<double>&>(x_))
                  : mem::phantom_binding(sizeof(double), {n_});
  x.region = dist::Region::of_shape({n_});
  x.partition = {dist::DimPolicy::align("loop")};

  mem::MapSpec y = x;
  y.name = std::string("y");
  y.dir = mem::MapDirection::kToFrom;
  if (materialize_) {
    y.binding = mem::bind_array(const_cast<mem::HostArray<double>&>(y_));
  }
  return {x, y};
}

std::vector<mem::MapSpec> AxpyCase::maps_v1_block() const {
  auto ms = maps();
  for (auto& m : ms) m.partition = {dist::DimPolicy::block()};
  return ms;
}

bool AxpyCase::verify(std::string* why) const {
  if (!materialize_) return true;
  for (long long i = 0; i < n_; ++i) {
    const double expect = y_init(i) + a_ * x_init(i);
    if (std::abs(y_(i) - expect) > 1e-9 * std::max(1.0, std::abs(expect))) {
      if (why) {
        *why = "axpy: y[" + std::to_string(i) + "] = " +
               std::to_string(y_(i)) + ", expected " + std::to_string(expect);
      }
      return false;
    }
  }
  return true;
}

model::KernelCostProfile AxpyCase::paper_profile() const {
  model::KernelCostProfile p;
  p.flops_per_iter = 2.0;
  p.mem_bytes_per_iter = 1.5 * 2.0 * 8.0;      // MemComp 1.5
  p.transfer_bytes_per_iter = 1.5 * 2.0 * 8.0; // DataComp 1.5
  return p;
}

}  // namespace homp::kern
