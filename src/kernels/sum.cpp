#include "kernels/sum.h"

#include <cmath>

namespace homp::kern {

namespace {
double x_init(long long i) { return static_cast<double>(i % 13) - 3.0; }
}  // namespace

SumCase::SumCase(long long n, bool materialize)
    : n_(n), materialize_(materialize) {
  if (materialize_) {
    x_ = mem::HostArray<double>::vector(n);
    init();
  }
}

void SumCase::init() {
  if (!materialize_) return;
  x_.fill_with_index(x_init);
  result_ = 0.0;
}

rt::LoopKernel SumCase::kernel() const {
  rt::LoopKernel k;
  k.name = "sum";
  k.iterations = dist::Range::of_size(n_);
  k.cost.flops_per_iter = 1.0;             // one add
  k.cost.mem_bytes_per_iter = 8.0;         // load x
  k.cost.transfer_bytes_per_iter = 8.0;    // x in
  k.has_reduction = true;
  if (materialize_) {
    k.body = [](const dist::Range& chunk, mem::DeviceDataEnv& env) {
      auto x = env.view<double>("x");
      double partial = 0.0;
      for (long long i = chunk.lo; i < chunk.hi; ++i) partial += x(i);
      return partial;
    };
  }
  return k;
}

std::vector<mem::MapSpec> SumCase::maps() const {
  mem::MapSpec x;
  x.name = "x";
  x.dir = mem::MapDirection::kTo;
  x.binding = materialize_
                  ? mem::bind_array(const_cast<mem::HostArray<double>&>(x_))
                  : mem::phantom_binding(sizeof(double), {n_});
  x.region = dist::Region::of_shape({n_});
  x.partition = {dist::DimPolicy::align("loop")};
  return {x};
}

double SumCase::expected_sum() const {
  double s = 0.0;
  for (long long i = 0; i < n_; ++i) s += x_init(i);
  return s;
}

bool SumCase::verify(std::string* why) const {
  if (!materialize_) return true;
  const double expect = expected_sum();
  if (std::abs(result_ - expect) >
      1e-9 * std::max(1.0, std::abs(expect))) {
    if (why) {
      *why = "sum: got " + std::to_string(result_) + ", expected " +
             std::to_string(expect);
    }
    return false;
  }
  return true;
}

model::KernelCostProfile SumCase::paper_profile() const {
  model::KernelCostProfile p;
  p.flops_per_iter = 1.0;
  p.mem_bytes_per_iter = 8.0;       // MemComp 1
  p.transfer_bytes_per_iter = 8.0;  // DataComp 1
  return p;
}

}  // namespace homp::kern
