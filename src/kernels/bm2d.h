#ifndef HOMP_KERNELS_BM2D_H
#define HOMP_KERNELS_BM2D_H

/// \file bm2d.h
/// 2-D block matching (motion estimation): for every 16x16 block of the
/// current frame, find the displacement within a +-8 pixel search window
/// that minimizes the sum of absolute differences against the reference
/// frame. Compute-intensive with neighbourhood communication (Table IV:
/// MemComp 0.5, DataComp 0.06).
///
/// The distributed loop runs over block rows; frames align to it with
/// ratio 16 (ALIGN(loop, 16)) and the reference frame carries an 8-pixel
/// halo for the search window.

#include <utility>

#include "kernels/case.h"
#include "memory/host_array.h"

namespace homp::kern {

class Bm2dCase final : public KernelCase {
 public:
  static constexpr long long kBlock = 16;
  static constexpr long long kSearch = 8;

  Bm2dCase(long long n, bool materialize);

  const std::string& name() const override { return name_; }
  rt::LoopKernel kernel() const override;
  std::vector<mem::MapSpec> maps() const override;
  void init() override;
  bool verify(std::string* why) const override;
  model::KernelCostProfile paper_profile() const override;
  long long problem_size() const override { return n_; }
  bool materialized() const override { return materialize_; }

 private:
 public:
  /// Computed best SAD of a block (valid after an offload).
  double best_sad(long long bi, long long bj) const {
    return best_(bi, 2 * bj);
  }

  /// Computed motion vector of a block as (dy, dx), decoded from the
  /// kernel's encoding (dy+8)*17 + (dx+8).
  std::pair<long long, long long> motion_vector(long long bi,
                                                long long bj) const {
    const auto enc = static_cast<long long>(best_(bi, 2 * bj + 1));
    return {enc / (2 * kSearch + 1) - kSearch,
            enc % (2 * kSearch + 1) - kSearch};
  }

  long long blocks_per_side() const { return blocks_; }

 private:
  /// Sequential best-SAD search for one block.
  double reference(long long bi, long long bj) const;

  std::string name_ = "bm2d";
  long long n_;        ///< frame edge, multiple of kBlock
  long long blocks_;   ///< n / kBlock
  bool materialize_;
  mem::HostArray<double> cur_, ref_, best_;
};

}  // namespace homp::kern

#endif  // HOMP_KERNELS_BM2D_H
