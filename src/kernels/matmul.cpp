#include "kernels/matmul.h"

#include <cmath>

namespace homp::kern {

namespace {
double a_init(long long i, long long j) {
  return static_cast<double>((i + 2 * j) % 7) - 3.0;
}
double b_init(long long i, long long j) {
  return static_cast<double>((3 * i + j) % 5) / 5.0;
}
}  // namespace

MatMulCase::MatMulCase(long long n, bool materialize)
    : n_(n), materialize_(materialize) {
  if (materialize_) {
    a_ = mem::HostArray<double>::matrix(n, n);
    b_ = mem::HostArray<double>::matrix(n, n);
    c_ = mem::HostArray<double>::matrix(n, n);
    init();
  }
}

void MatMulCase::init() {
  if (!materialize_) return;
  a_.fill_with_indices(a_init);
  b_.fill_with_indices(b_init);
  c_.fill(0.0);
}

rt::LoopKernel MatMulCase::kernel() const {
  rt::LoopKernel k;
  k.name = "matmul";
  k.iterations = dist::Range::of_size(n_);  // one iteration per row of C
  const double n = static_cast<double>(n_);
  k.cost.flops_per_iter = 2.0 * n * n;  // N^2 mul + N^2 add per row
  // A row (N) + C row (N) + B amortized over rows (N^2 / N = N), assuming
  // B streams from cache-resident tiles — the Table IV accounting.
  k.cost.mem_bytes_per_iter = 3.0 * n * 8.0;
  k.cost.transfer_bytes_per_iter = 3.0 * n * 8.0;  // A in + B/N + C out
  if (materialize_) {
    const long long width = n_;
    k.body = [width](const dist::Range& chunk, mem::DeviceDataEnv& env) {
      auto a = env.view<double>("A");
      auto b = env.view<double>("B");
      auto c = env.view<double>("C");
      for (long long i = chunk.lo; i < chunk.hi; ++i) {
        for (long long j = 0; j < width; ++j) {
          double acc = 0.0;
          for (long long l = 0; l < width; ++l) acc += a(i, l) * b(l, j);
          c(i, j) = acc;
        }
      }
      return 0.0;
    };
  }
  return k;
}

std::vector<mem::MapSpec> MatMulCase::maps() const {
  mem::MapSpec a;
  a.name = "A";
  a.dir = mem::MapDirection::kTo;
  a.binding = materialize_
                  ? mem::bind_array(const_cast<mem::HostArray<double>&>(a_))
                  : mem::phantom_binding(sizeof(double), {n_, n_});
  a.region = dist::Region::of_shape({n_, n_});
  a.partition = {dist::DimPolicy::align("loop"), dist::DimPolicy::full()};

  mem::MapSpec b = a;
  b.name = std::string("B");
  b.partition.clear();  // replicated
  if (materialize_) {
    b.binding = mem::bind_array(const_cast<mem::HostArray<double>&>(b_));
  }

  mem::MapSpec c = a;
  c.name = std::string("C");
  c.dir = mem::MapDirection::kFrom;
  if (materialize_) {
    c.binding = mem::bind_array(const_cast<mem::HostArray<double>&>(c_));
  }
  return {a, b, c};
}

bool MatMulCase::verify(std::string* why) const {
  if (!materialize_) return true;
  for (long long i = 0; i < n_; ++i) {
    for (long long j = 0; j < n_; ++j) {
      double expect = 0.0;
      for (long long l = 0; l < n_; ++l) expect += a_init(i, l) * b_init(l, j);
      if (std::abs(c_(i, j) - expect) >
          1e-9 * std::max(1.0, std::abs(expect))) {
        if (why) {
          *why = "matmul: C[" + std::to_string(i) + "][" + std::to_string(j) +
                 "] = " + std::to_string(c_(i, j)) + ", expected " +
                 std::to_string(expect);
        }
        return false;
      }
    }
  }
  return true;
}

model::KernelCostProfile MatMulCase::paper_profile() const {
  const double n = static_cast<double>(n_);
  model::KernelCostProfile p;
  p.flops_per_iter = 2.0 * n * n;
  p.mem_bytes_per_iter = (1.5 / n) * p.flops_per_iter * 8.0;
  p.transfer_bytes_per_iter = (1.5 / n) * p.flops_per_iter * 8.0;
  return p;
}

}  // namespace homp::kern
