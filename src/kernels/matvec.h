#ifndef HOMP_KERNELS_MATVEC_H
#define HOMP_KERNELS_MATVEC_H

/// \file matvec.h
/// Matrix-vector product y = A * x over an N x N matrix, distributed by
/// rows. Compute/data balanced (Table IV: MemComp 1 + 0.5/N,
/// DataComp 0.5 + 1/N).

#include "kernels/case.h"
#include "memory/host_array.h"

namespace homp::kern {

class MatVecCase final : public KernelCase {
 public:
  MatVecCase(long long n, bool materialize);

  const std::string& name() const override { return name_; }
  rt::LoopKernel kernel() const override;
  std::vector<mem::MapSpec> maps() const override;
  void init() override;
  bool verify(std::string* why) const override;
  model::KernelCostProfile paper_profile() const override;
  long long problem_size() const override { return n_; }
  bool materialized() const override { return materialize_; }

 private:
  std::string name_ = "matvec";
  long long n_;
  bool materialize_;
  mem::HostArray<double> a_, x_, y_;
};

}  // namespace homp::kern

#endif  // HOMP_KERNELS_MATVEC_H
