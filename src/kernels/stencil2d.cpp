#include "kernels/stencil2d.h"

#include <cmath>

#include "common/error.h"

namespace homp::kern {

namespace {
double in_init(long long i, long long j) {
  return static_cast<double>((i * 5 + j * 11) % 23) / 23.0;
}

// Star weights: centre plus distance-1..3 arms.
constexpr double kCenter = 0.5;
constexpr double kArm[3] = {0.08, 0.03, 0.01};
}  // namespace

Stencil2DCase::Stencil2DCase(long long n, bool materialize)
    : n_(n), materialize_(materialize) {
  HOMP_REQUIRE(n > 2 * kRadius, "stencil grid too small for radius 3");
  if (materialize_) {
    in_ = mem::HostArray<double>::matrix(n, n);
    out_ = mem::HostArray<double>::matrix(n, n);
    init();
  }
}

void Stencil2DCase::init() {
  if (!materialize_) return;
  in_.fill_with_indices(in_init);
  out_.fill(0.0);
}

rt::LoopKernel Stencil2DCase::kernel() const {
  rt::LoopKernel k;
  k.name = "stencil2d";
  k.iterations = dist::Range::of_size(n_);  // one iteration per row
  const double n = static_cast<double>(n_);
  k.cost.flops_per_iter = 26.0 * n;            // 13 mul + 13 add per point
  k.cost.mem_bytes_per_iter = 14.0 * n * 8.0;  // 13 reads + 1 write
  k.cost.transfer_bytes_per_iter = 2.0 * n * 8.0;  // row in + row out
  if (materialize_) {
    const long long width = n_;
    k.body = [width](const dist::Range& chunk, mem::DeviceDataEnv& env) {
      auto in = env.view<double>("in");
      auto out = env.view<double>("out");
      constexpr long long r = Stencil2DCase::kRadius;
      for (long long i = chunk.lo; i < chunk.hi; ++i) {
        if (i < r || i >= width - r) continue;  // boundary rows unchanged
        for (long long j = r; j < width - r; ++j) {
          double acc = kCenter * in(i, j);
          for (long long d = 1; d <= r; ++d) {
            acc += kArm[d - 1] * (in(i - d, j) + in(i + d, j) +
                                  in(i, j - d) + in(i, j + d));
          }
          out(i, j) = acc;
        }
      }
      return 0.0;
    };
  }
  return k;
}

std::vector<mem::MapSpec> Stencil2DCase::maps() const {
  mem::MapSpec in;
  in.name = "in";
  in.dir = mem::MapDirection::kTo;
  in.binding = materialize_
                   ? mem::bind_array(const_cast<mem::HostArray<double>&>(in_))
                   : mem::phantom_binding(sizeof(double), {n_, n_});
  in.region = dist::Region::of_shape({n_, n_});
  in.partition = {dist::DimPolicy::align("loop"), dist::DimPolicy::full()};
  in.halo_before = kRadius;
  in.halo_after = kRadius;

  mem::MapSpec out;
  out.name = "out";
  out.dir = mem::MapDirection::kFrom;
  out.binding =
      materialize_
          ? mem::bind_array(const_cast<mem::HostArray<double>&>(out_))
          : mem::phantom_binding(sizeof(double), {n_, n_});
  out.region = dist::Region::of_shape({n_, n_});
  out.partition = {dist::DimPolicy::align("loop"), dist::DimPolicy::full()};
  return {in, out};
}

double Stencil2DCase::reference(long long i, long long j) const {
  if (i < kRadius || i >= n_ - kRadius || j < kRadius || j >= n_ - kRadius) {
    return 0.0;  // outputs at the boundary are never written
  }
  double acc = kCenter * in_init(i, j);
  for (long long d = 1; d <= kRadius; ++d) {
    acc += kArm[d - 1] * (in_init(i - d, j) + in_init(i + d, j) +
                          in_init(i, j - d) + in_init(i, j + d));
  }
  return acc;
}

bool Stencil2DCase::verify(std::string* why) const {
  if (!materialize_) return true;
  for (long long i = 0; i < n_; ++i) {
    for (long long j = 0; j < n_; ++j) {
      const double expect = reference(i, j);
      if (std::abs(out_(i, j) - expect) >
          1e-12 * std::max(1.0, std::abs(expect))) {
        if (why) {
          *why = "stencil2d: out[" + std::to_string(i) + "][" +
                 std::to_string(j) + "] = " + std::to_string(out_(i, j)) +
                 ", expected " + std::to_string(expect);
        }
        return false;
      }
    }
  }
  return true;
}

model::KernelCostProfile Stencil2DCase::paper_profile() const {
  const double n = static_cast<double>(n_);
  model::KernelCostProfile p;
  p.flops_per_iter = 26.0 * n;
  p.mem_bytes_per_iter = 0.5 * p.flops_per_iter * 8.0;          // MemComp 0.5
  p.transfer_bytes_per_iter = (1.0 / 13.0) * p.flops_per_iter * 8.0;
  return p;
}

}  // namespace homp::kern
