#ifndef HOMP_KERNELS_SUM_H
#define HOMP_KERNELS_SUM_H

/// \file sum.h
/// Sum reduction: s = sum_i x[i]. Data-intensive with a reduction clause
/// (Table IV: MemComp 1, DataComp 1).

#include "kernels/case.h"
#include "memory/host_array.h"

namespace homp::kern {

class SumCase final : public KernelCase {
 public:
  SumCase(long long n, bool materialize);

  const std::string& name() const override { return name_; }
  rt::LoopKernel kernel() const override;
  std::vector<mem::MapSpec> maps() const override;
  void init() override;
  bool verify(std::string* why) const override;
  model::KernelCostProfile paper_profile() const override;
  long long problem_size() const override { return n_; }
  bool materialized() const override { return materialize_; }

  /// The reduction value an offload should produce (sequential reference).
  double expected_sum() const;

  /// Record the offload's reduction result for verify().
  void set_result(double s) { result_ = s; }

 private:
  std::string name_ = "sum";
  long long n_;
  bool materialize_;
  mem::HostArray<double> x_;
  double result_ = 0.0;
};

}  // namespace homp::kern

#endif  // HOMP_KERNELS_SUM_H
