#include "kernels/matvec.h"

#include <cmath>

namespace homp::kern {

namespace {
double a_init(long long i, long long j) {
  return static_cast<double>((i * 7 + j * 3) % 19) / 19.0 - 0.4;
}
double x_init(long long j) { return static_cast<double>(j % 11) / 11.0 + 0.1; }
}  // namespace

MatVecCase::MatVecCase(long long n, bool materialize)
    : n_(n), materialize_(materialize) {
  if (materialize_) {
    a_ = mem::HostArray<double>::matrix(n, n);
    x_ = mem::HostArray<double>::vector(n);
    y_ = mem::HostArray<double>::vector(n);
    init();
  }
}

void MatVecCase::init() {
  if (!materialize_) return;
  a_.fill_with_indices(a_init);
  x_.fill_with_index(x_init);
  y_.fill(0.0);
}

rt::LoopKernel MatVecCase::kernel() const {
  rt::LoopKernel k;
  k.name = "matvec";
  k.iterations = dist::Range::of_size(n_);  // one iteration per row
  const double n = static_cast<double>(n_);
  k.cost.flops_per_iter = 2.0 * n;               // N mul + N add
  k.cost.mem_bytes_per_iter = (2.0 * n + 1.0) * 8.0;  // A row + x + y store
  k.cost.transfer_bytes_per_iter = (n + 2.0) * 8.0;   // A row + x/N + y out
  if (materialize_) {
    const long long width = n_;
    k.body = [width](const dist::Range& chunk, mem::DeviceDataEnv& env) {
      auto a = env.view<double>("A");
      auto x = env.view<double>("x");
      auto y = env.view<double>("y");
      for (long long i = chunk.lo; i < chunk.hi; ++i) {
        double acc = 0.0;
        for (long long j = 0; j < width; ++j) acc += a(i, j) * x(j);
        y(i) = acc;
      }
      return 0.0;
    };
  }
  return k;
}

std::vector<mem::MapSpec> MatVecCase::maps() const {
  mem::MapSpec a;
  a.name = "A";
  a.dir = mem::MapDirection::kTo;
  a.binding = materialize_
                  ? mem::bind_array(const_cast<mem::HostArray<double>&>(a_))
                  : mem::phantom_binding(sizeof(double), {n_, n_});
  a.region = dist::Region::of_shape({n_, n_});
  a.partition = {dist::DimPolicy::align("loop"), dist::DimPolicy::full()};

  mem::MapSpec x;
  x.name = "x";
  x.dir = mem::MapDirection::kTo;
  x.binding = materialize_
                  ? mem::bind_array(const_cast<mem::HostArray<double>&>(x_))
                  : mem::phantom_binding(sizeof(double), {n_});
  x.region = dist::Region::of_shape({n_});  // replicated (FULL)

  mem::MapSpec y;
  y.name = "y";
  y.dir = mem::MapDirection::kFrom;
  y.binding = materialize_
                  ? mem::bind_array(const_cast<mem::HostArray<double>&>(y_))
                  : mem::phantom_binding(sizeof(double), {n_});
  y.region = dist::Region::of_shape({n_});
  y.partition = {dist::DimPolicy::align("loop")};

  return {a, x, y};
}

bool MatVecCase::verify(std::string* why) const {
  if (!materialize_) return true;
  for (long long i = 0; i < n_; ++i) {
    double expect = 0.0;
    for (long long j = 0; j < n_; ++j) expect += a_init(i, j) * x_init(j);
    if (std::abs(y_(i) - expect) > 1e-9 * std::max(1.0, std::abs(expect))) {
      if (why) {
        *why = "matvec: y[" + std::to_string(i) + "] = " +
               std::to_string(y_(i)) + ", expected " + std::to_string(expect);
      }
      return false;
    }
  }
  return true;
}

model::KernelCostProfile MatVecCase::paper_profile() const {
  const double n = static_cast<double>(n_);
  model::KernelCostProfile p;
  p.flops_per_iter = 2.0 * n;
  p.mem_bytes_per_iter = (1.0 + 0.5 / n) * p.flops_per_iter * 8.0;
  p.transfer_bytes_per_iter = (0.5 + 1.0 / n) * p.flops_per_iter * 8.0;
  return p;
}

}  // namespace homp::kern
