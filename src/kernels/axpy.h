#ifndef HOMP_KERNELS_AXPY_H
#define HOMP_KERNELS_AXPY_H

/// \file axpy.h
/// AXPY: y[i] += a * x[i] — the paper's running example (Fig. 1/2).
/// Data-intensive: MemComp 1.5, DataComp 1.5 (Table IV).

#include "kernels/case.h"
#include "memory/host_array.h"

namespace homp::kern {

class AxpyCase final : public KernelCase {
 public:
  AxpyCase(long long n, bool materialize);

  const std::string& name() const override { return name_; }
  rt::LoopKernel kernel() const override;
  std::vector<mem::MapSpec> maps() const override;
  void init() override;
  bool verify(std::string* why) const override;
  model::KernelCostProfile paper_profile() const override;
  long long problem_size() const override { return n_; }
  bool materialized() const override { return materialize_; }

  /// Map clauses in the v1 style of Fig. 2: x and y carry their own BLOCK
  /// partitions; use with loop_policy = ALIGN("x").
  std::vector<mem::MapSpec> maps_v1_block() const;

 private:
  std::string name_ = "axpy";
  long long n_;
  bool materialize_;
  double a_ = 2.5;
  mem::HostArray<double> x_, y_;
};

}  // namespace homp::kern

#endif  // HOMP_KERNELS_AXPY_H
