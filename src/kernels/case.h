#ifndef HOMP_KERNELS_CASE_H
#define HOMP_KERNELS_CASE_H

/// \file case.h
/// Common interface of the six evaluation kernels (Table IV): AXPY,
/// Matrix-Vector, Matrix Multiplication, 13-point 2-D Stencil, Sum
/// (reduction) and 2-D Block Matching.
///
/// A KernelCase owns the host arrays, provides the offloadable LoopKernel
/// and its map clauses, and can verify the offloaded result against a
/// sequential reference. Cases can be built without materializing storage
/// (`materialize = false`) for paper-scale pure-simulation benchmarks
/// where only the cost accounting matters (DESIGN.md §2).

#include <memory>
#include <string>
#include <vector>

#include "memory/map_spec.h"
#include "model/kernel_profile.h"
#include "runtime/kernel.h"

namespace homp::kern {

class KernelCase {
 public:
  virtual ~KernelCase() = default;

  virtual const std::string& name() const = 0;

  /// The offloadable loop. The body captures the case's device views; the
  /// case must outlive any offload using it. Null body when the case was
  /// built without materialization.
  virtual rt::LoopKernel kernel() const = 0;

  /// Map clauses (v2 style: data aligned with the loop, so every
  /// scheduling algorithm applies). Returned specs reference the case's
  /// storage; the case must outlive offloads using them.
  virtual std::vector<mem::MapSpec> maps() const = 0;

  /// (Re-)initialize input arrays and clear outputs. No-op when not
  /// materialized.
  virtual void init() = 0;

  /// Check outputs against a sequential reference computation; on failure
  /// returns false and describes the first mismatch in *why.
  virtual bool verify(std::string* why) const = 0;

  /// The per-iteration cost characteristics as the paper states them
  /// (Table IV), for comparison against the measured profile.
  virtual model::KernelCostProfile paper_profile() const = 0;

  /// Problem-size designator (N), as used in names like "matmul-6144".
  virtual long long problem_size() const = 0;

  virtual bool materialized() const = 0;
};

/// Factory. `name` is one of: "axpy", "matvec", "matmul", "stencil2d",
/// "sum", "bm2d". Throws ConfigError for unknown names.
std::unique_ptr<KernelCase> make_case(const std::string& name, long long n,
                                      bool materialize);

/// The six kernel names in Table IV order.
const std::vector<std::string>& all_kernel_names();

/// The paper's evaluation problem size for each kernel (axpy-100M,
/// matvec-48k, matmul-6144, stencil2d-256, sum-300M, bm2d-256; Table V /
/// figure captions).
long long paper_size(const std::string& name);

}  // namespace homp::kern

#endif  // HOMP_KERNELS_CASE_H
