#ifndef HOMP_KERNELS_STENCIL2D_H
#define HOMP_KERNELS_STENCIL2D_H

/// \file stencil2d.h
/// 13-point 2-D stencil (radius-3 star: centre plus 3 neighbours in each
/// of the four directions) on an N x N grid, distributed by rows with a
/// 3-row halo. Compute/data balanced with neighbourhood communication
/// (Table IV: MemComp 0.5, DataComp 1/13).

#include "kernels/case.h"
#include "memory/host_array.h"

namespace homp::kern {

class Stencil2DCase final : public KernelCase {
 public:
  static constexpr long long kRadius = 3;

  Stencil2DCase(long long n, bool materialize);

  const std::string& name() const override { return name_; }
  rt::LoopKernel kernel() const override;
  std::vector<mem::MapSpec> maps() const override;
  void init() override;
  bool verify(std::string* why) const override;
  model::KernelCostProfile paper_profile() const override;
  long long problem_size() const override { return n_; }
  bool materialized() const override { return materialize_; }

 private:
  double reference(long long i, long long j) const;

  std::string name_ = "stencil2d";
  long long n_;
  bool materialize_;
  mem::HostArray<double> in_, out_;
};

}  // namespace homp::kern

#endif  // HOMP_KERNELS_STENCIL2D_H
