#include "sim/sync.h"

#include <utility>

#include "common/error.h"

namespace homp::sim {

Latch::Latch(Engine& engine, std::size_t count)
    : engine_(engine), remaining_(count) {}

void Latch::count_down() {
  HOMP_ASSERT(remaining_ > 0);
  if (--remaining_ == 0) release_all();
}

void Latch::wait(std::function<void()> fn) {
  HOMP_ASSERT(fn != nullptr);
  if (remaining_ == 0) {
    engine_.schedule_after(0.0, std::move(fn));
  } else {
    waiters_.push_back(std::move(fn));
  }
}

void Latch::release_all() {
  for (auto& w : waiters_) engine_.schedule_after(0.0, std::move(w));
  waiters_.clear();
}

Barrier::Barrier(Engine& engine, std::size_t parties)
    : engine_(engine), parties_(parties) {
  HOMP_REQUIRE(parties > 0, "barrier needs at least one party");
}

void Barrier::arrive(std::function<void()> fn) {
  HOMP_ASSERT(fn != nullptr);
  pending_.push_back(std::move(fn));
  arrivals_.push_back(engine_.now());
  HOMP_ASSERT(pending_.size() <= parties_);
  if (pending_.size() == parties_) {
    const Time release = engine_.now();
    for (Time t : arrivals_) total_wait_ += release - t;
    last_arrivals_ = std::move(arrivals_);
    arrivals_.clear();
    ++generations_;
    auto batch = std::move(pending_);
    pending_.clear();
    for (auto& f : batch) engine_.schedule_after(0.0, std::move(f));
  }
}

}  // namespace homp::sim
