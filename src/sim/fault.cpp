#include "sim/fault.h"

#include "common/checksum.h"
#include "common/error.h"
#include "common/strings.h"

namespace homp::sim {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kTransfer:
      return "transfer-fault";
    case FaultKind::kLaunch:
      return "launch-fault";
    case FaultKind::kSlowdown:
      return "slowdown";
    case FaultKind::kDeviceLoss:
      return "device-loss";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kCorruptTransfer:
      return "corrupt-transfer";
    case FaultKind::kCorruptCompute:
      return "corrupt-compute";
  }
  return "?";
}

std::vector<std::string> FaultProfile::violations(
    const std::string& who) const {
  std::vector<std::string> out;
  auto rate = [&](double v, const char* key) {
    if (!(v >= 0.0 && v < 1.0)) {
      out.push_back(who + ": " + key + " must be in [0, 1)");
    }
  };
  auto factor = [&](double v, const char* key) {
    if (!(v >= 1.0)) out.push_back(who + ": " + std::string(key) +
                                   " must be >= 1");
  };
  rate(transfer_fault_rate, "fault_transfer_rate");
  rate(launch_fault_rate, "fault_launch_rate");
  rate(slowdown_rate, "fault_slowdown_rate");
  factor(slowdown_factor, "fault_slowdown_factor");
  rate(hang_rate, "fault_hang_rate");
  rate(degrade_rate, "fault_degrade_rate");
  factor(degrade_factor, "fault_degrade_factor");
  rate(corrupt_transfer_rate, "fault_corrupt_transfer_rate");
  rate(corrupt_compute_rate, "fault_corrupt_compute_rate");
  return out;
}

void FaultProfile::validate(const std::string& who) const {
  const auto v = violations(who);
  if (!v.empty()) throw ConfigError(join(v, "; "));
}

FaultProfile FaultProfile::combined(const FaultProfile& other) const noexcept {
  auto clamp_rate = [](double r) {
    return r < 0.0 ? 0.0 : (r > 0.999999 ? 0.999999 : r);
  };
  FaultProfile out;
  // Independent fault sources: P(either) = 1 - (1-a)(1-b).
  out.transfer_fault_rate = clamp_rate(
      1.0 - (1.0 - transfer_fault_rate) * (1.0 - other.transfer_fault_rate));
  out.launch_fault_rate = clamp_rate(
      1.0 - (1.0 - launch_fault_rate) * (1.0 - other.launch_fault_rate));
  out.slowdown_rate = clamp_rate(
      1.0 - (1.0 - slowdown_rate) * (1.0 - other.slowdown_rate));
  out.slowdown_factor = slowdown_factor > other.slowdown_factor
                            ? slowdown_factor
                            : other.slowdown_factor;
  out.hang_rate =
      clamp_rate(1.0 - (1.0 - hang_rate) * (1.0 - other.hang_rate));
  out.degrade_rate =
      clamp_rate(1.0 - (1.0 - degrade_rate) * (1.0 - other.degrade_rate));
  out.degrade_factor = degrade_factor > other.degrade_factor
                           ? degrade_factor
                           : other.degrade_factor;
  out.corrupt_transfer_rate =
      clamp_rate(1.0 - (1.0 - corrupt_transfer_rate) *
                           (1.0 - other.corrupt_transfer_rate));
  out.corrupt_compute_rate =
      clamp_rate(1.0 - (1.0 - corrupt_compute_rate) *
                           (1.0 - other.corrupt_compute_rate));
  if (fail_at_s >= 0.0 && other.fail_at_s >= 0.0) {
    out.fail_at_s = fail_at_s < other.fail_at_s ? fail_at_s : other.fail_at_s;
  } else {
    out.fail_at_s = fail_at_s >= 0.0 ? fail_at_s : other.fail_at_s;
  }
  return out;
}

void FaultPlan::set_profile(int device_id, const FaultProfile& profile) {
  profile.validate("device " + std::to_string(device_id));
  profiles_[device_id] = profile;
  if (profile.any()) active_ = true;
}

void FaultPlan::add_scripted(const ScriptedFault& fault) {
  HOMP_REQUIRE(fault.device_id >= 0,
               "scripted fault needs a non-negative device id");
  if (fault.kind == FaultKind::kDeviceLoss) {
    HOMP_REQUIRE(fault.at_s >= 0.0,
                 "scripted device loss needs a non-negative time");
  } else {
    HOMP_REQUIRE(fault.op >= 0,
                 "scripted transient fault needs a non-negative op ordinal");
    if (fault.kind == FaultKind::kSlowdown ||
        fault.kind == FaultKind::kDegrade) {
      HOMP_REQUIRE(fault.factor <= 1.0 || fault.factor >= 1.0,
                   "scripted factor must be a number");  // NaN guard
      HOMP_REQUIRE(!(fault.factor > 0.0 && fault.factor < 1.0),
                   "scripted slowdown/degrade factor must be >= 1 (or <= 0 "
                   "to use the device profile's)");
    }
  }
  scripted_.push_back(fault);
  active_ = true;
}

FaultPlan::Stream& FaultPlan::stream(int device_id) {
  auto it = streams_.find(device_id);
  if (it == streams_.end()) {
    Stream s;
    // Split per device the same way proxies split noise streams, so
    // nearby ids still get unrelated sequences (splitmix in Prng's ctor).
    s.prng = Prng(seed_ ^ (0x9e3779b9u * static_cast<std::uint64_t>(
                                             device_id + 1)));
    it = streams_.emplace(device_id, std::move(s)).first;
  }
  return it->second;
}

const FaultProfile* FaultPlan::profile(int device_id) const {
  auto it = profiles_.find(device_id);
  return it == profiles_.end() ? nullptr : &it->second;
}

const ScriptedFault* FaultPlan::scripted_hit(int device_id, FaultKind kind,
                                             long long op) const {
  for (const auto& f : scripted_) {
    if (f.device_id == device_id && f.kind == kind && f.op == op) return &f;
  }
  return nullptr;
}

bool FaultPlan::transfer_fails(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kTransfer)]++;
  const FaultProfile* p = profile(device_id);
  // The random draw happens even when the rate is zero, so adding a
  // scripted fault does not shift the random sequence of later ops.
  const double draw = s.prng.next_double();
  if (scripted_hit(device_id, FaultKind::kTransfer, op) != nullptr) {
    return true;
  }
  return p != nullptr && draw < p->transfer_fault_rate;
}

bool FaultPlan::launch_fails(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kLaunch)]++;
  const FaultProfile* p = profile(device_id);
  const double draw = s.prng.next_double();
  if (scripted_hit(device_id, FaultKind::kLaunch, op) != nullptr) return true;
  return p != nullptr && draw < p->launch_fault_rate;
}

double FaultPlan::slowdown(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kSlowdown)]++;
  const FaultProfile* p = profile(device_id);
  const double draw = s.prng.next_double();
  if (const auto* f = scripted_hit(device_id, FaultKind::kSlowdown, op)) {
    if (f->factor > 1.0) return f->factor;
    return p != nullptr ? p->slowdown_factor : 4.0;
  }
  if (p != nullptr && draw < p->slowdown_rate) return p->slowdown_factor;
  return 1.0;
}

bool FaultPlan::compute_hangs(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kHang)]++;
  const FaultProfile* p = profile(device_id);
  const double draw = s.prng.next_double();
  if (scripted_hit(device_id, FaultKind::kHang, op) != nullptr) return true;
  return p != nullptr && draw < p->hang_rate;
}

double FaultPlan::degrade(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kDegrade)]++;
  const FaultProfile* p = profile(device_id);
  const double draw = s.prng.next_double();
  if (const auto* f = scripted_hit(device_id, FaultKind::kDegrade, op)) {
    if (f->factor > 1.0) return f->factor;
    return p != nullptr ? p->degrade_factor : 8.0;
  }
  if (p != nullptr && draw < p->degrade_rate) return p->degrade_factor;
  return 1.0;
}

namespace {

/// Deterministic nonzero corruption seed for (plan seed, device, kind,
/// op) — a pure function of the hit's coordinates, so scripted and
/// rate-based hits at the same ordinal corrupt the same bytes.
std::uint64_t corruption_seed(std::uint64_t base, int device_id,
                              FaultKind kind, long long op) noexcept {
  std::uint64_t s = mix64(base ^ mix64(static_cast<std::uint64_t>(
                              device_id + 1)));
  s = mix64(s ^ (static_cast<std::uint64_t>(kind) + 1));
  s = mix64(s ^ static_cast<std::uint64_t>(op + 1));
  return s | 1;  // nonzero: 0 means "intact"
}

/// Uniform in [0, 1) derived from the corruption seed — the corruption
/// queries draw from this pure side-channel instead of the per-device
/// Prng so that enabling them never shifts the random sequence of the
/// pre-existing fault kinds (runs with corruption off stay bit-identical
/// to runs built before corruption existed).
double corruption_draw(std::uint64_t seed) noexcept {
  return static_cast<double>(seed >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t FaultPlan::transfer_corrupts(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kCorruptTransfer)]++;
  const FaultProfile* p = profile(device_id);
  const std::uint64_t seed =
      corruption_seed(seed_, device_id, FaultKind::kCorruptTransfer, op);
  const bool hit =
      scripted_hit(device_id, FaultKind::kCorruptTransfer, op) != nullptr ||
      (p != nullptr && corruption_draw(seed) < p->corrupt_transfer_rate);
  return hit ? seed : 0;
}

std::uint64_t FaultPlan::compute_corrupts(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kCorruptCompute)]++;
  const FaultProfile* p = profile(device_id);
  const std::uint64_t seed =
      corruption_seed(seed_, device_id, FaultKind::kCorruptCompute, op);
  const bool hit =
      scripted_hit(device_id, FaultKind::kCorruptCompute, op) != nullptr ||
      (p != nullptr && corruption_draw(seed) < p->corrupt_compute_rate);
  return hit ? seed : 0;
}

double FaultPlan::loss_time(int device_id) const {
  double t = -1.0;
  if (const auto* p = profile(device_id); p != nullptr && p->fail_at_s >= 0.0) {
    t = p->fail_at_s;
  }
  for (const auto& f : scripted_) {
    if (f.device_id != device_id || f.kind != FaultKind::kDeviceLoss) continue;
    if (t < 0.0 || f.at_s < t) t = f.at_s;
  }
  return t;
}

}  // namespace homp::sim
