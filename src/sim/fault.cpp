#include "sim/fault.h"

#include "common/error.h"

namespace homp::sim {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kTransfer:
      return "transfer-fault";
    case FaultKind::kLaunch:
      return "launch-fault";
    case FaultKind::kSlowdown:
      return "slowdown";
    case FaultKind::kDeviceLoss:
      return "device-loss";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kDegrade:
      return "degrade";
  }
  return "?";
}

void FaultProfile::validate(const std::string& who) const {
  HOMP_REQUIRE(transfer_fault_rate >= 0.0 && transfer_fault_rate < 1.0,
               who + ": fault_transfer_rate must be in [0, 1)");
  HOMP_REQUIRE(launch_fault_rate >= 0.0 && launch_fault_rate < 1.0,
               who + ": fault_launch_rate must be in [0, 1)");
  HOMP_REQUIRE(slowdown_rate >= 0.0 && slowdown_rate < 1.0,
               who + ": fault_slowdown_rate must be in [0, 1)");
  HOMP_REQUIRE(slowdown_factor >= 1.0,
               who + ": fault_slowdown_factor must be >= 1");
  HOMP_REQUIRE(hang_rate >= 0.0 && hang_rate < 1.0,
               who + ": fault_hang_rate must be in [0, 1)");
  HOMP_REQUIRE(degrade_rate >= 0.0 && degrade_rate < 1.0,
               who + ": fault_degrade_rate must be in [0, 1)");
  HOMP_REQUIRE(degrade_factor >= 1.0,
               who + ": fault_degrade_factor must be >= 1");
}

FaultProfile FaultProfile::combined(const FaultProfile& other) const noexcept {
  auto clamp_rate = [](double r) {
    return r < 0.0 ? 0.0 : (r > 0.999999 ? 0.999999 : r);
  };
  FaultProfile out;
  // Independent fault sources: P(either) = 1 - (1-a)(1-b).
  out.transfer_fault_rate = clamp_rate(
      1.0 - (1.0 - transfer_fault_rate) * (1.0 - other.transfer_fault_rate));
  out.launch_fault_rate = clamp_rate(
      1.0 - (1.0 - launch_fault_rate) * (1.0 - other.launch_fault_rate));
  out.slowdown_rate = clamp_rate(
      1.0 - (1.0 - slowdown_rate) * (1.0 - other.slowdown_rate));
  out.slowdown_factor = slowdown_factor > other.slowdown_factor
                            ? slowdown_factor
                            : other.slowdown_factor;
  out.hang_rate =
      clamp_rate(1.0 - (1.0 - hang_rate) * (1.0 - other.hang_rate));
  out.degrade_rate =
      clamp_rate(1.0 - (1.0 - degrade_rate) * (1.0 - other.degrade_rate));
  out.degrade_factor = degrade_factor > other.degrade_factor
                           ? degrade_factor
                           : other.degrade_factor;
  if (fail_at_s >= 0.0 && other.fail_at_s >= 0.0) {
    out.fail_at_s = fail_at_s < other.fail_at_s ? fail_at_s : other.fail_at_s;
  } else {
    out.fail_at_s = fail_at_s >= 0.0 ? fail_at_s : other.fail_at_s;
  }
  return out;
}

void FaultPlan::set_profile(int device_id, const FaultProfile& profile) {
  profile.validate("device " + std::to_string(device_id));
  profiles_[device_id] = profile;
  if (profile.any()) active_ = true;
}

void FaultPlan::add_scripted(const ScriptedFault& fault) {
  HOMP_REQUIRE(fault.device_id >= 0,
               "scripted fault needs a non-negative device id");
  if (fault.kind == FaultKind::kDeviceLoss) {
    HOMP_REQUIRE(fault.at_s >= 0.0,
                 "scripted device loss needs a non-negative time");
  } else {
    HOMP_REQUIRE(fault.op >= 0,
                 "scripted transient fault needs a non-negative op ordinal");
    if (fault.kind == FaultKind::kSlowdown ||
        fault.kind == FaultKind::kDegrade) {
      HOMP_REQUIRE(fault.factor <= 1.0 || fault.factor >= 1.0,
                   "scripted factor must be a number");  // NaN guard
      HOMP_REQUIRE(!(fault.factor > 0.0 && fault.factor < 1.0),
                   "scripted slowdown/degrade factor must be >= 1 (or <= 0 "
                   "to use the device profile's)");
    }
  }
  scripted_.push_back(fault);
  active_ = true;
}

FaultPlan::Stream& FaultPlan::stream(int device_id) {
  auto it = streams_.find(device_id);
  if (it == streams_.end()) {
    Stream s;
    // Split per device the same way proxies split noise streams, so
    // nearby ids still get unrelated sequences (splitmix in Prng's ctor).
    s.prng = Prng(seed_ ^ (0x9e3779b9u * static_cast<std::uint64_t>(
                                             device_id + 1)));
    it = streams_.emplace(device_id, std::move(s)).first;
  }
  return it->second;
}

const FaultProfile* FaultPlan::profile(int device_id) const {
  auto it = profiles_.find(device_id);
  return it == profiles_.end() ? nullptr : &it->second;
}

const ScriptedFault* FaultPlan::scripted_hit(int device_id, FaultKind kind,
                                             long long op) const {
  for (const auto& f : scripted_) {
    if (f.device_id == device_id && f.kind == kind && f.op == op) return &f;
  }
  return nullptr;
}

bool FaultPlan::transfer_fails(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kTransfer)]++;
  const FaultProfile* p = profile(device_id);
  // The random draw happens even when the rate is zero, so adding a
  // scripted fault does not shift the random sequence of later ops.
  const double draw = s.prng.next_double();
  if (scripted_hit(device_id, FaultKind::kTransfer, op) != nullptr) {
    return true;
  }
  return p != nullptr && draw < p->transfer_fault_rate;
}

bool FaultPlan::launch_fails(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kLaunch)]++;
  const FaultProfile* p = profile(device_id);
  const double draw = s.prng.next_double();
  if (scripted_hit(device_id, FaultKind::kLaunch, op) != nullptr) return true;
  return p != nullptr && draw < p->launch_fault_rate;
}

double FaultPlan::slowdown(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kSlowdown)]++;
  const FaultProfile* p = profile(device_id);
  const double draw = s.prng.next_double();
  if (const auto* f = scripted_hit(device_id, FaultKind::kSlowdown, op)) {
    if (f->factor > 1.0) return f->factor;
    return p != nullptr ? p->slowdown_factor : 4.0;
  }
  if (p != nullptr && draw < p->slowdown_rate) return p->slowdown_factor;
  return 1.0;
}

bool FaultPlan::compute_hangs(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kHang)]++;
  const FaultProfile* p = profile(device_id);
  const double draw = s.prng.next_double();
  if (scripted_hit(device_id, FaultKind::kHang, op) != nullptr) return true;
  return p != nullptr && draw < p->hang_rate;
}

double FaultPlan::degrade(int device_id) {
  Stream& s = stream(device_id);
  const long long op = s.ops[static_cast<int>(FaultKind::kDegrade)]++;
  const FaultProfile* p = profile(device_id);
  const double draw = s.prng.next_double();
  if (const auto* f = scripted_hit(device_id, FaultKind::kDegrade, op)) {
    if (f->factor > 1.0) return f->factor;
    return p != nullptr ? p->degrade_factor : 8.0;
  }
  if (p != nullptr && draw < p->degrade_rate) return p->degrade_factor;
  return 1.0;
}

double FaultPlan::loss_time(int device_id) const {
  double t = -1.0;
  if (const auto* p = profile(device_id); p != nullptr && p->fail_at_s >= 0.0) {
    t = p->fail_at_s;
  }
  for (const auto& f : scripted_) {
    if (f.device_id != device_id || f.kind != FaultKind::kDeviceLoss) continue;
    if (t < 0.0 || f.at_s < t) t = f.at_s;
  }
  return t;
}

}  // namespace homp::sim
