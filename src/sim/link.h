#ifndef HOMP_SIM_LINK_H
#define HOMP_SIM_LINK_H

/// \file link.h
/// Simulated interconnect link with Hockney latency + fair-share bandwidth.
///
/// A transfer of S bytes over an otherwise idle link takes
///     alpha + S / beta                       (Hockney's alpha-beta model,
/// the model the paper uses for DataT_dev). When k transfers overlap on the
/// same link, each receives beta/k of the bandwidth (processor sharing),
/// which captures PCIe contention between e.g. the two K40 dies sharing one
/// K80 card slot.

#include <cstdint>
#include <functional>
#include <list>
#include <string>

#include "sim/engine.h"
#include "sim/time.h"

namespace homp::sim {

class SharedLink {
 public:
  /// \param latency_s  per-transfer fixed latency (alpha), seconds
  /// \param bytes_per_s link bandwidth (beta), bytes/second
  SharedLink(Engine& engine, std::string name, double latency_s,
             double bytes_per_s);

  SharedLink(const SharedLink&) = delete;
  SharedLink& operator=(const SharedLink&) = delete;

  /// Start a transfer of `bytes`; `done` fires at the virtual time the
  /// transfer completes. Zero-byte transfers still pay the latency.
  void transfer(double bytes, std::function<void()> done);

  /// Analytic time for a contention-free transfer (used by MODEL_2).
  Time uncontended_time(double bytes) const noexcept {
    return latency_ + bytes / bandwidth_;
  }

  const std::string& name() const noexcept { return name_; }
  double bandwidth() const noexcept { return bandwidth_; }
  double latency() const noexcept { return latency_; }

  /// Cumulative bytes fully delivered over this link.
  double bytes_delivered() const noexcept { return bytes_delivered_; }
  /// Virtual time during which at least one transfer was in flight.
  Time busy_time() const noexcept { return busy_time_; }
  /// Number of transfers completed.
  std::size_t transfers_completed() const noexcept { return completed_; }

 private:
  struct Active {
    double total;      // requested transfer size, bytes
    double remaining;  // bytes still to move
    std::function<void()> done;
  };

  void admit(double bytes, std::function<void()> done);
  void advance();      // charge elapsed time against active transfers
  void reschedule();   // (re)arm the next-completion event
  void on_completion_event();

  Engine& engine_;
  std::string name_;
  double latency_;
  double bandwidth_;
#if HOMP_DSAN_ENABLED
  // Same-timestamp sibling admissions commute: processor sharing divides
  // bandwidth by the lane count, not by arrival order within the instant.
  dsan::Cell dsan_lanes_{"link/lanes", dsan::CellKind::kCommutative};
#endif

  std::list<Active> active_;
  Time last_update_ = 0.0;
  std::uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;

  double bytes_delivered_ = 0.0;
  Time busy_time_ = 0.0;
  std::size_t completed_ = 0;
};

}  // namespace homp::sim

#endif  // HOMP_SIM_LINK_H
