#ifndef HOMP_SIM_ENGINE_H
#define HOMP_SIM_ENGINE_H

/// \file engine.h
/// Single-threaded discrete-event simulation engine.
///
/// The HOMP runtime's per-device proxy threads are modelled as actors that
/// schedule continuation callbacks on this engine. Running on virtual time
/// makes multi-device scheduling experiments deterministic and independent
/// of the host's actual core count (see DESIGN.md §2).
///
/// The engine is deliberately minimal: an ordered queue of (time, seq,
/// callback). Events scheduled for the same instant run in scheduling
/// order (FIFO), which gives dynamic-chunk acquisition a well-defined,
/// reproducible winner on ties.
///
/// Tie-break contract (docs/DETERMINISM.md): events pop in strict
/// (time, seq) lexicographic order, where seq is the global scheduling
/// sequence number — FIFO within a timestamp, regardless of generation
/// tag or cancellation history. Every event therefore has the stable
/// identity (timestamp, generation, seq) that homp-dsan (sim/dsan.h)
/// reasons about.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/dsan.h"
#include "sim/time.h"

namespace homp::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Cancellation generation tag. Events scheduled with a tag belong to
  /// that generation and can all be cancelled in one cancel_generation()
  /// call — the timer-lifecycle primitive behind job-level failure
  /// domains (docs/SERVING.md): a finishing job revokes every watchdog /
  /// probation / deadline timer it ever armed, so nothing it scheduled
  /// can fire after its owner is destroyed. Tag 0 means "untagged".
  using GenTag = std::uint64_t;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time. Valid inside and outside callbacks.
  Time now() const noexcept { return now_; }

  /// Mint a fresh, never-before-issued generation tag (never 0).
  GenTag new_generation() noexcept { return ++next_gen_; }

  /// Schedule `fn` at absolute virtual time `t`. `t` must be >= now().
  /// Returns an id usable with cancel(). A non-zero `tag` enrols the
  /// event in that cancellation generation.
  std::uint64_t schedule_at(Time t, Callback fn, GenTag tag = 0);

  /// Schedule `fn` after a non-negative delay.
  std::uint64_t schedule_after(Time dt, Callback fn, GenTag tag = 0) {
    return schedule_at(now_ + dt, std::move(fn), tag);
  }

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. Cancellation is O(1): the entry is tombstoned and skipped.
  /// Every tombstone is reclaimed when its queue entry surfaces, so
  /// repeated cancellation cannot grow the engine without bound.
  bool cancel(std::uint64_t id);

  /// Cancel every still-pending event in `tag`'s generation and retire
  /// the generation's bookkeeping. Returns how many events were
  /// cancelled. Safe to call for a generation with no pending events
  /// (returns 0); the tag may be re-armed afterwards.
  std::size_t cancel_generation(GenTag tag);

  /// Pending (scheduled, not yet run or cancelled) events in `tag`'s
  /// generation.
  std::size_t pending_in(GenTag tag) const;

  /// Number of generations that currently have at least one pending
  /// event — the memory-flatness gauge: a drained server must read 0.
  std::size_t live_generations() const {
    HOMP_DSAN_READ(dsan_queue_);
    return gens_.size();
  }

  /// Run until the queue is empty (or stop() is called from a callback).
  /// stop() only interrupts the current drain: a later run()/run_until()
  /// resumes with the remaining events.
  void run();

  /// Run until virtual time would exceed `deadline`; events at exactly
  /// `deadline` are processed. Returns the number of events processed.
  std::size_t run_until(Time deadline);

  /// Run until the queue is empty, stop() is called, or `max_events` more
  /// events have been processed — the step-budget watchdog behind
  /// OffloadOptions::harness.step_budget (docs/FUZZING.md): a scheduler
  /// livelock spins in bounded virtual time, so a deadline cannot catch
  /// it, but an event budget can. Returns the number of events this call
  /// processed; afterwards idle() distinguishes "drained" from "budget
  /// exhausted with work pending".
  std::size_t run_bounded(std::size_t max_events);

  /// Request run()/run_until() to return after the current callback.
  void stop() noexcept { stopped_ = true; }

  /// True when no pending (non-cancelled) events remain.
  /// dsan: reading drain state from inside an event races with sibling
  /// schedules/cancels at the same timestamp, so it is a tracked read.
  bool idle() const { HOMP_DSAN_READ(dsan_queue_); return live_events_ == 0; }

  /// Pending (non-cancelled) events across all generations.
  std::size_t live_events() const {
    HOMP_DSAN_READ(dsan_queue_);
    return live_events_;
  }

  std::size_t events_processed() const noexcept { return processed_; }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;  // FIFO tie-break and cancellation id
    GenTag tag;         // 0 = untagged
#if HOMP_DSAN_ENABLED
    // seq of the scheduling event when it ran at this same timestamp
    // (the zero-delay causal edge homp-dsan follows).
    std::uint64_t parent = dsan::Context::kNoParent;
#endif
    Callback fn;
    bool operator>(const Entry& o) const noexcept {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  bool pop_one();  // runs the next event; false if queue exhausted
  void purge_cancelled_top();  // drop tombstones sitting at the queue top

  /// Drop `id` from its generation's pending set (no-op when untagged).
  void retire_from_generation(std::uint64_t id, GenTag tag);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_set<std::uint64_t> pending_;    // scheduled, not yet run
  std::unordered_set<std::uint64_t> cancelled_;  // tombstones in queue_
  /// Generation membership, kept only for tagged *pending* events; a
  /// generation's map entry disappears when its last pending event runs
  /// or is cancelled, so long-lived engines stay flat.
  std::unordered_map<GenTag, std::unordered_set<std::uint64_t>> gens_;
  std::unordered_map<std::uint64_t, GenTag> tag_of_;  // tagged pending only
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  GenTag next_gen_ = 0;
  std::size_t processed_ = 0;
  std::size_t live_events_ = 0;
  bool stopped_ = false;
#if HOMP_DSAN_ENABLED
  // Identity of the event currently executing (for the zero-delay
  // causal edge) and the queue's own dsan cell: schedules and cancels
  // commute (the parallel engine merges them canonically at the
  // timestamp barrier), but reads of drain state do not.
  std::uint64_t cur_seq_ = 0;
  bool in_cb_ = false;
  dsan::Cell dsan_queue_{"engine/queue", dsan::CellKind::kCommutative};
#endif
};

}  // namespace homp::sim

#endif  // HOMP_SIM_ENGINE_H
