#ifndef HOMP_SIM_ENGINE_H
#define HOMP_SIM_ENGINE_H

/// \file engine.h
/// Single-threaded discrete-event simulation engine.
///
/// The HOMP runtime's per-device proxy threads are modelled as actors that
/// schedule continuation callbacks on this engine. Running on virtual time
/// makes multi-device scheduling experiments deterministic and independent
/// of the host's actual core count (see DESIGN.md §2).
///
/// The engine is deliberately minimal: an ordered queue of (time, seq,
/// callback). Events scheduled for the same instant run in scheduling
/// order (FIFO), which gives dynamic-chunk acquisition a well-defined,
/// reproducible winner on ties.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace homp::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time. Valid inside and outside callbacks.
  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute virtual time `t`. `t` must be >= now().
  /// Returns an id usable with cancel().
  std::uint64_t schedule_at(Time t, Callback fn);

  /// Schedule `fn` after a non-negative delay.
  std::uint64_t schedule_after(Time dt, Callback fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. Cancellation is O(1): the entry is tombstoned and skipped.
  /// Every tombstone is reclaimed when its queue entry surfaces, so
  /// repeated cancellation cannot grow the engine without bound.
  bool cancel(std::uint64_t id);

  /// Run until the queue is empty (or stop() is called from a callback).
  /// stop() only interrupts the current drain: a later run()/run_until()
  /// resumes with the remaining events.
  void run();

  /// Run until virtual time would exceed `deadline`; events at exactly
  /// `deadline` are processed. Returns the number of events processed.
  std::size_t run_until(Time deadline);

  /// Run until the queue is empty, stop() is called, or `max_events` more
  /// events have been processed — the step-budget watchdog behind
  /// OffloadOptions::harness.step_budget (docs/FUZZING.md): a scheduler
  /// livelock spins in bounded virtual time, so a deadline cannot catch
  /// it, but an event budget can. Returns the number of events this call
  /// processed; afterwards idle() distinguishes "drained" from "budget
  /// exhausted with work pending".
  std::size_t run_bounded(std::size_t max_events);

  /// Request run()/run_until() to return after the current callback.
  void stop() noexcept { stopped_ = true; }

  /// True when no pending (non-cancelled) events remain.
  bool idle() const noexcept { return live_events_ == 0; }

  std::size_t events_processed() const noexcept { return processed_; }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;  // FIFO tie-break and cancellation id
    Callback fn;
    bool operator>(const Entry& o) const noexcept {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  bool pop_one();  // runs the next event; false if queue exhausted
  void purge_cancelled_top();  // drop tombstones sitting at the queue top

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_set<std::uint64_t> pending_;    // scheduled, not yet run
  std::unordered_set<std::uint64_t> cancelled_;  // tombstones in queue_
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t live_events_ = 0;
  bool stopped_ = false;
};

}  // namespace homp::sim

#endif  // HOMP_SIM_ENGINE_H
