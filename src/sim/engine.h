#ifndef HOMP_SIM_ENGINE_H
#define HOMP_SIM_ENGINE_H

/// \file engine.h
/// Single-threaded discrete-event simulation engine.
///
/// The HOMP runtime's per-device proxy threads are modelled as actors that
/// schedule continuation callbacks on this engine. Running on virtual time
/// makes multi-device scheduling experiments deterministic and independent
/// of the host's actual core count (see DESIGN.md §2).
///
/// The engine is deliberately minimal: an ordered queue of (time, seq,
/// callback). Events scheduled for the same instant run in scheduling
/// order (FIFO), which gives dynamic-chunk acquisition a well-defined,
/// reproducible winner on ties.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace homp::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Cancellation generation tag. Events scheduled with a tag belong to
  /// that generation and can all be cancelled in one cancel_generation()
  /// call — the timer-lifecycle primitive behind job-level failure
  /// domains (docs/SERVING.md): a finishing job revokes every watchdog /
  /// probation / deadline timer it ever armed, so nothing it scheduled
  /// can fire after its owner is destroyed. Tag 0 means "untagged".
  using GenTag = std::uint64_t;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time. Valid inside and outside callbacks.
  Time now() const noexcept { return now_; }

  /// Mint a fresh, never-before-issued generation tag (never 0).
  GenTag new_generation() noexcept { return ++next_gen_; }

  /// Schedule `fn` at absolute virtual time `t`. `t` must be >= now().
  /// Returns an id usable with cancel(). A non-zero `tag` enrols the
  /// event in that cancellation generation.
  std::uint64_t schedule_at(Time t, Callback fn, GenTag tag = 0);

  /// Schedule `fn` after a non-negative delay.
  std::uint64_t schedule_after(Time dt, Callback fn, GenTag tag = 0) {
    return schedule_at(now_ + dt, std::move(fn), tag);
  }

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled. Cancellation is O(1): the entry is tombstoned and skipped.
  /// Every tombstone is reclaimed when its queue entry surfaces, so
  /// repeated cancellation cannot grow the engine without bound.
  bool cancel(std::uint64_t id);

  /// Cancel every still-pending event in `tag`'s generation and retire
  /// the generation's bookkeeping. Returns how many events were
  /// cancelled. Safe to call for a generation with no pending events
  /// (returns 0); the tag may be re-armed afterwards.
  std::size_t cancel_generation(GenTag tag);

  /// Pending (scheduled, not yet run or cancelled) events in `tag`'s
  /// generation.
  std::size_t pending_in(GenTag tag) const noexcept;

  /// Number of generations that currently have at least one pending
  /// event — the memory-flatness gauge: a drained server must read 0.
  std::size_t live_generations() const noexcept { return gens_.size(); }

  /// Run until the queue is empty (or stop() is called from a callback).
  /// stop() only interrupts the current drain: a later run()/run_until()
  /// resumes with the remaining events.
  void run();

  /// Run until virtual time would exceed `deadline`; events at exactly
  /// `deadline` are processed. Returns the number of events processed.
  std::size_t run_until(Time deadline);

  /// Run until the queue is empty, stop() is called, or `max_events` more
  /// events have been processed — the step-budget watchdog behind
  /// OffloadOptions::harness.step_budget (docs/FUZZING.md): a scheduler
  /// livelock spins in bounded virtual time, so a deadline cannot catch
  /// it, but an event budget can. Returns the number of events this call
  /// processed; afterwards idle() distinguishes "drained" from "budget
  /// exhausted with work pending".
  std::size_t run_bounded(std::size_t max_events);

  /// Request run()/run_until() to return after the current callback.
  void stop() noexcept { stopped_ = true; }

  /// True when no pending (non-cancelled) events remain.
  bool idle() const noexcept { return live_events_ == 0; }

  /// Pending (non-cancelled) events across all generations.
  std::size_t live_events() const noexcept { return live_events_; }

  std::size_t events_processed() const noexcept { return processed_; }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;  // FIFO tie-break and cancellation id
    GenTag tag;         // 0 = untagged
    Callback fn;
    bool operator>(const Entry& o) const noexcept {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  bool pop_one();  // runs the next event; false if queue exhausted
  void purge_cancelled_top();  // drop tombstones sitting at the queue top

  /// Drop `id` from its generation's pending set (no-op when untagged).
  void retire_from_generation(std::uint64_t id, GenTag tag);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_set<std::uint64_t> pending_;    // scheduled, not yet run
  std::unordered_set<std::uint64_t> cancelled_;  // tombstones in queue_
  /// Generation membership, kept only for tagged *pending* events; a
  /// generation's map entry disappears when its last pending event runs
  /// or is cancelled, so long-lived engines stay flat.
  std::unordered_map<GenTag, std::unordered_set<std::uint64_t>> gens_;
  std::unordered_map<std::uint64_t, GenTag> tag_of_;  // tagged pending only
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  GenTag next_gen_ = 0;
  std::size_t processed_ = 0;
  std::size_t live_events_ = 0;
  bool stopped_ = false;
};

}  // namespace homp::sim

#endif  // HOMP_SIM_ENGINE_H
