#include "sim/dsan.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace homp::sim::dsan {

namespace {

Context* g_active = nullptr;

#if HOMP_DSAN_ENABLED
/// Cell uids are issued in construction order. A deterministic program
/// constructs its cells in a deterministic order, so uids — and with
/// them violation reports — are byte-identical across runs.
std::uint64_t g_next_cell_uid = 0;
#endif

}  // namespace

Context* active() noexcept { return g_active; }

Scope::Scope(Context& ctx) {
  HOMP_REQUIRE(g_active == nullptr,
               "dsan: nested Scope; one sanitizer context at a time");
  g_active = &ctx;
}

Scope::~Scope() { g_active = nullptr; }

std::string Violation::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "cell %s at t=%.17g: event (seq=%llu, gen=%llu, %s) is "
                "concurrent with event (seq=%llu, gen=%llu, %s)",
                cell.c_str(), time,
                static_cast<unsigned long long>(first.seq),
                static_cast<unsigned long long>(first.tag),
                first_write ? "write" : "read",
                static_cast<unsigned long long>(second.seq),
                static_cast<unsigned long long>(second.tag),
                second_write ? "write" : "read");
  return buf;
}

#if HOMP_DSAN_ENABLED

Cell::Cell(const char* label, CellKind kind)
    : uid_(g_next_cell_uid++), label_(label), kind_(kind) {}

Context::Context() = default;

Context::~Context() {
  if (g_active == this) g_active = nullptr;  // defensive; Scope owns this
}

void Context::begin_event(const void* engine, Time t, std::uint64_t seq,
                          std::uint64_t tag, std::uint64_t parent_seq) {
  // A non-increasing seq means a different engine *incarnation*: seqs
  // strictly increase within one engine, but a successor engine can be
  // constructed at the freed address of the last one (same pointer,
  // seqs restarting at 0) — that must flush too.
  if (engine != engine_ || !have_window_ || t != time_ ||
      (!events_.empty() && seq <= events_.back().seq)) {
    flush();
    engine_ = engine;
    time_ = t;
    have_window_ = true;
  }
  events_.push_back(EventMeta{seq, tag, parent_seq});
  current_ = events_.size() - 1;
  in_event_ = true;
}

void Context::on_access(const Cell& cell, bool write) {
  if (!in_event_) return;  // sequential harness code between drains
  CellFacts& f = cells_[cell.uid()];
  if (f.accesses.empty()) {
    f.label = cell.label();
    f.kind = cell.kind();
  }
  if (!f.accesses.empty() && f.accesses.back().event_index == current_) {
    // One event's repeated touches collapse to its strongest access: a
    // read-modify-write *within* one event is one logical operation.
    f.accesses.back().write |= write;
    return;
  }
  f.accesses.push_back(Access{current_, write});
}

std::size_t Context::index_of_seq(std::uint64_t seq) const {
  // events_ is seq-ascending: the engine pops same-timestamp events in
  // FIFO (seq) order, and later-scheduled events get larger seqs.
  auto it = std::lower_bound(
      events_.begin(), events_.end(), seq,
      [](const EventMeta& e, std::uint64_t s) { return e.seq < s; });
  if (it == events_.end() || it->seq != seq) return events_.size();
  return static_cast<std::size_t>(it - events_.begin());
}

bool Context::ancestor_of(std::size_t a, std::size_t b) const {
  const std::uint64_t want = events_[a].seq;
  std::uint64_t parent = events_[b].parent;
  while (parent != kNoParent) {
    if (parent == want) return true;
    const std::size_t idx = index_of_seq(parent);
    if (idx >= events_.size()) return false;  // parent ran before window
    parent = events_[idx].parent;
  }
  return false;
}

void Context::flush() {
  for (const auto& [uid, f] : cells_) {
    const auto& acc = f.accesses;
    for (std::size_t j = 1; j < acc.size(); ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        const bool wi = acc[i].write;
        const bool wj = acc[j].write;
        if (!wi && !wj) continue;  // read-read never conflicts
        if (f.kind == CellKind::kCommutative && wi && wj) {
          // Declared order-insensitive: the parallel engine commits
          // same-timestamp writes in canonical (time, seq) order.
          continue;
        }
        const EventMeta& a = events_[acc[i].event_index];
        const EventMeta& b = events_[acc[j].event_index];
        if (a.tag != 0 && a.tag == b.tag) continue;  // generation edge
        if (ancestor_of(acc[i].event_index, acc[j].event_index)) continue;
        ++total_;
        if (violations_.size() < kMaxStored) {
          Violation v;
          v.cell = std::string(f.label) + "#" + std::to_string(uid);
          v.time = time_;
          v.first = EventId{time_, a.seq, a.tag};
          v.second = EventId{time_, b.seq, b.tag};
          v.first_write = wi;
          v.second_write = wj;
          violations_.push_back(std::move(v));
        }
      }
    }
  }
  cells_.clear();
  events_.clear();
  current_ = 0;
}

void Context::finish() {
  flush();
  have_window_ = false;
  engine_ = nullptr;
  in_event_ = false;
}

#else  // !HOMP_DSAN_ENABLED

Context::Context() = default;
Context::~Context() {
  if (g_active == this) g_active = nullptr;
}
void Context::begin_event(const void*, Time, std::uint64_t, std::uint64_t,
                          std::uint64_t) {}
void Context::on_access(const Cell&, bool) {}
void Context::finish() {}

#endif  // HOMP_DSAN_ENABLED

}  // namespace homp::sim::dsan
