#ifndef HOMP_SIM_DSAN_H
#define HOMP_SIM_DSAN_H

/// \file dsan.h
/// homp-dsan: the virtual-time determinism sanitizer (docs/DETERMINISM.md).
///
/// Every guarantee the repo sells — byte-identical fuzz corpora,
/// serve-determinism double runs, byte-for-byte CI comparison of
/// BENCH_traffic.json — rests on one property: nothing observable depends
/// on the relative order of events that carry the *same* virtual
/// timestamp. The engine breaks those ties FIFO today, so runs are
/// reproducible, but a future parallel engine (ROADMAP "raw speed":
/// commit barrier at each event timestamp) would run same-timestamp
/// events concurrently — and any pair of them that touches the same
/// shared cell, with at least one write and no happens-before edge, is a
/// latent nondeterminism the tie-break is silently papering over.
///
/// homp-dsan detects exactly those pairs. The model:
///
///  * Every executed event has a stable identity `(timestamp, generation,
///    seq)` — virtual time, the Engine::GenTag it was scheduled under,
///    and its FIFO sequence number.
///  * Two events at *different* timestamps are always ordered (virtual
///    time is real order under any conforming engine).
///  * Two events at the same timestamp are ordered iff
///      - one scheduled the other (transitively, through a chain of
///        zero-delay schedules that never leaves the timestamp), or
///      - both carry the same non-zero generation tag (a generation is
///        single-owner by contract — docs/SERVING.md "Timer lifecycle" —
///        so a parallel engine must serialize within it).
///    Otherwise they are *concurrent*: a parallel engine may run them in
///    either order.
///  * Shared mutable state is tracked as named `Cell`s at the level of
///    logical operations (a scheduler fetch, a link admission, a commit),
///    not raw loads/stores. A cell is either
///      - `kOrdered`: any concurrent access pair with at least one write
///        is a violation, or
///      - `kCommutative`: concurrent *writes* are declared
///        order-insensitive (the parallel engine commits them in
///        canonical (time, seq) order at the timestamp barrier), but a
///        concurrent read against a write is still a violation — the
///        reader observes an intermediate state whose value depends on
///        intra-timestamp order.
///
/// Compile-time gate: hooks are compiled in unless the build sets
/// -DHOMP_DSAN_DISABLED (CMake -DHOMP_DSAN=OFF), in which case every
/// macro expands to nothing and the engine carries no extra state —
/// true zero cost. When compiled in, the hooks are runtime-gated on an
/// active Context (one branch + pointer load when no sanitizer is
/// attached); bench_engine --dsan measures the attached overhead.
///
/// Usage:
///   sim::dsan::Context ctx;
///   {
///     sim::dsan::Scope scope(ctx);   // activates the hooks
///     ... run engines ...
///   }                                // deactivates; flushes on finish()
///   ctx.finish();
///   for (const auto& v : ctx.violations()) ...
///
/// Single-threaded by design: the sanitizer observes the deterministic
/// serial engine; it is the *detector* that makes a parallel engine
/// landable, not itself thread-safe.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

#if defined(HOMP_DSAN_DISABLED)
#define HOMP_DSAN_ENABLED 0
#else
#define HOMP_DSAN_ENABLED 1
#endif

namespace homp::sim::dsan {

/// How a cell's concurrent same-timestamp writes are judged (see file
/// comment). Commutative cells still flag concurrent read-vs-write.
enum class CellKind { kOrdered, kCommutative };

/// True when the sanitizer hooks are compiled into this build.
constexpr bool compiled_in() noexcept { return HOMP_DSAN_ENABLED != 0; }

#if HOMP_DSAN_ENABLED

/// One tracked unit of shared mutable state. Instances register a stable
/// uid in construction order, which is deterministic for a deterministic
/// program — violation reports are therefore byte-identical across runs.
class Cell {
 public:
  Cell(const char* label, CellKind kind);
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  std::uint64_t uid() const noexcept { return uid_; }
  const char* label() const noexcept { return label_; }
  CellKind kind() const noexcept { return kind_; }

 private:
  std::uint64_t uid_;
  const char* label_;
  CellKind kind_;
};

#else  // !HOMP_DSAN_ENABLED

class Cell {
 public:
  constexpr Cell(const char*, CellKind) {}
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;
};

#endif  // HOMP_DSAN_ENABLED

/// Stable identity of one executed event.
struct EventId {
  Time time = 0.0;
  std::uint64_t seq = 0;
  std::uint64_t tag = 0;  ///< Engine::GenTag; 0 = untagged
};

/// One concurrent conflicting access pair.
struct Violation {
  std::string cell;  ///< "label#uid"
  Time time = 0.0;   ///< the shared virtual timestamp
  EventId first;     ///< ran earlier (smaller seq)
  EventId second;    ///< ran later
  bool first_write = false;
  bool second_write = false;

  /// Deterministic one-line rendering (docs/DETERMINISM.md "Reading a
  /// dsan repro").
  std::string to_string() const;
};

class Context {
 public:
  Context();
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- engine-side hooks (called by sim::Engine) ---------------------

  /// An engine is about to run event `(t, seq, tag)`. `parent_seq` is the
  /// seq of the event that scheduled it *iff* that event ran at the same
  /// timestamp `t` (the zero-delay causal edge); kNoParent otherwise.
  /// Switching timestamp or engine flushes the previous window.
  void begin_event(const void* engine, Time t, std::uint64_t seq,
                   std::uint64_t tag, std::uint64_t parent_seq);
  void end_event() noexcept { in_event_ = false; }

  static constexpr std::uint64_t kNoParent = ~std::uint64_t{0};

  // --- instrumentation-side hook (via HOMP_DSAN_READ/WRITE) ----------

  void on_access(const Cell& cell, bool write);

  /// Flush the final timestamp window. Idempotent; call after the last
  /// engine drains and before reading violations().
  void finish();

  // --- results -------------------------------------------------------

  /// Stored violations, in discovery order (deterministic). Capped at
  /// kMaxStored; total_conflicts() keeps the full count.
  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  std::size_t total_conflicts() const noexcept { return total_; }
  bool ok() const noexcept { return total_ == 0; }

  static constexpr std::size_t kMaxStored = 100;

 private:
#if HOMP_DSAN_ENABLED
  struct EventMeta {
    std::uint64_t seq = 0;
    std::uint64_t tag = 0;
    std::uint64_t parent = kNoParent;
  };
  struct Access {
    std::size_t event_index = 0;
    bool write = false;
  };
  struct CellFacts {
    const char* label = "";
    CellKind kind = CellKind::kOrdered;
    std::vector<Access> accesses;
  };

  void flush();
  /// True when events_[a] is an ancestor of events_[b] through the
  /// same-timestamp scheduling chain.
  bool ancestor_of(std::size_t a, std::size_t b) const;
  std::size_t index_of_seq(std::uint64_t seq) const;

  const void* engine_ = nullptr;  ///< engine owning the current window
  Time time_ = 0.0;               ///< current timestamp window
  bool have_window_ = false;
  std::vector<EventMeta> events_;  ///< events in the window, pop order
  std::map<std::uint64_t, CellFacts> cells_;  ///< uid -> window accesses
  std::size_t current_ = 0;  ///< index into events_ of the running event
#endif
  bool in_event_ = false;
  std::vector<Violation> violations_;
  std::size_t total_ = 0;
};

/// The active context, or nullptr. The hooks' runtime gate.
Context* active() noexcept;

/// RAII activation. Nesting is a usage error (asserted); the sanitizer
/// observes one harness run at a time.
class Scope {
 public:
  explicit Scope(Context& ctx);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

}  // namespace homp::sim::dsan

// The tracking hooks. Place them inside the *accessor operation* that
// reads or mutates the tracked state (docs/DETERMINISM.md "Tracked
// cells"); homp-lint HL008 flags event lambdas that mutate tracked state
// without routing through such an accessor.
#if HOMP_DSAN_ENABLED
#define HOMP_DSAN_READ(cell)                                          \
  do {                                                                \
    if (::homp::sim::dsan::Context* hd_ = ::homp::sim::dsan::active()) \
      hd_->on_access((cell), false);                                  \
  } while (0)
#define HOMP_DSAN_WRITE(cell)                                         \
  do {                                                                \
    if (::homp::sim::dsan::Context* hd_ = ::homp::sim::dsan::active()) \
      hd_->on_access((cell), true);                                   \
  } while (0)
#else
#define HOMP_DSAN_READ(cell) ((void)0)
#define HOMP_DSAN_WRITE(cell) ((void)0)
#endif

#endif  // HOMP_SIM_DSAN_H
