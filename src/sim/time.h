#ifndef HOMP_SIM_TIME_H
#define HOMP_SIM_TIME_H

/// \file time.h
/// Virtual time for the discrete-event engine.
///
/// All simulated durations are in seconds (double). The paper reports
/// offloading time in milliseconds; harnesses convert at the edge via
/// homp::format_seconds / explicit *1e3.

namespace homp::sim {

/// Virtual time in seconds since engine start.
using Time = double;

/// Sentinel for "no deadline".
inline constexpr Time kTimeInfinity = 1e300;

inline constexpr Time microseconds(double us) { return us * 1e-6; }
inline constexpr Time milliseconds(double ms) { return ms * 1e-3; }

}  // namespace homp::sim

#endif  // HOMP_SIM_TIME_H
