#include "sim/engine.h"

#include "common/error.h"

namespace homp::sim {

std::uint64_t Engine::schedule_at(Time t, Callback fn) {
  HOMP_ASSERT(t >= now_);
  HOMP_ASSERT(fn != nullptr);
  const std::uint64_t id = next_seq_++;
  queue_.push(Entry{t, id, std::move(fn)});
  ++live_events_;
  return id;
}

bool Engine::cancel(std::uint64_t id) {
  if (id >= next_seq_) return false;
  // The queue cannot be searched; tombstone the id and skip it on pop.
  const bool inserted = cancelled_.insert(id).second;
  if (inserted && live_events_ > 0) --live_events_;
  return inserted;
}

bool Engine::pop_one() {
  while (!queue_.empty()) {
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(e.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // tombstoned; live_events_ already decremented by cancel()
    }
    HOMP_ASSERT(e.t >= now_);
    now_ = e.t;
    --live_events_;
    ++processed_;
    e.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && pop_one()) {
  }
}

std::size_t Engine::run_until(Time deadline) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && !queue_.empty()) {
    // Peek past tombstones without consuming live entries beyond deadline.
    const Entry& top = queue_.top();
    if (cancelled_.count(top.seq) == 0 && top.t > deadline) break;
    if (pop_one()) ++n;
  }
  if (now_ < deadline && queue_.empty()) now_ = deadline;
  return n;
}

}  // namespace homp::sim
