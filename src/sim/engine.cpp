#include "sim/engine.h"

#include "common/error.h"

namespace homp::sim {

std::uint64_t Engine::schedule_at(Time t, Callback fn, GenTag tag) {
  HOMP_ASSERT(t >= now_);
  HOMP_ASSERT(fn != nullptr);
  const std::uint64_t id = next_seq_++;
#if HOMP_DSAN_ENABLED
  HOMP_DSAN_WRITE(dsan_queue_);
  const std::uint64_t parent =
      (in_cb_ && t == now_) ? cur_seq_ : dsan::Context::kNoParent;
  queue_.push(Entry{t, id, tag, parent, std::move(fn)});
#else
  queue_.push(Entry{t, id, tag, std::move(fn)});
#endif
  pending_.insert(id);
  if (tag != 0) {
    gens_[tag].insert(id);
    tag_of_.emplace(id, tag);
  }
  ++live_events_;
  return id;
}

void Engine::retire_from_generation(std::uint64_t id, GenTag tag) {
  if (tag == 0) return;
  tag_of_.erase(id);
  auto git = gens_.find(tag);
  if (git == gens_.end()) return;
  git->second.erase(id);
  if (git->second.empty()) gens_.erase(git);
}

bool Engine::cancel(std::uint64_t id) {
  HOMP_DSAN_WRITE(dsan_queue_);
  // Only genuinely pending events may be tombstoned: cancelling an id that
  // already ran (or was never issued) must not leave a tombstone behind —
  // nothing in the queue would ever reclaim it.
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(id);
  auto tit = tag_of_.find(id);
  if (tit != tag_of_.end()) retire_from_generation(id, tit->second);
  if (live_events_ > 0) --live_events_;
  return true;
}

std::size_t Engine::cancel_generation(GenTag tag) {
  HOMP_DSAN_WRITE(dsan_queue_);
  if (tag == 0) return 0;
  auto git = gens_.find(tag);
  if (git == gens_.end()) return 0;
  // Detach the set first: cancel() mutates gens_ via retire_from_generation
  // and would invalidate the iteration otherwise.
  std::unordered_set<std::uint64_t> ids = std::move(git->second);
  gens_.erase(git);
  std::size_t n = 0;
  for (std::uint64_t id : ids) {
    tag_of_.erase(id);
    if (pending_.erase(id) == 0) continue;
    cancelled_.insert(id);
    if (live_events_ > 0) --live_events_;
    ++n;
  }
  return n;
}

std::size_t Engine::pending_in(GenTag tag) const {
  HOMP_DSAN_READ(dsan_queue_);
  auto git = gens_.find(tag);
  return git == gens_.end() ? 0 : git->second.size();
}

void Engine::purge_cancelled_top() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Engine::pop_one() {
  purge_cancelled_top();
  if (queue_.empty()) return false;
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  pending_.erase(e.seq);
  retire_from_generation(e.seq, e.tag);
  HOMP_ASSERT(e.t >= now_);
  now_ = e.t;
  --live_events_;
  ++processed_;
#if HOMP_DSAN_ENABLED
  cur_seq_ = e.seq;
  in_cb_ = true;
  if (dsan::Context* d = dsan::active()) {
    d->begin_event(this, e.t, e.seq, e.tag, e.parent);
  }
  e.fn();
  in_cb_ = false;
  if (dsan::Context* d = dsan::active()) d->end_event();
#else
  e.fn();
#endif
  return true;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && pop_one()) {
  }
}

std::size_t Engine::run_bounded(std::size_t max_events) {
  stopped_ = false;
  std::size_t n = 0;
  while (n < max_events && !stopped_ && pop_one()) ++n;
  return n;
}

std::size_t Engine::run_until(Time deadline) {
  stopped_ = false;
  std::size_t n = 0;
  for (;;) {
    if (stopped_) break;
    // The deadline check must see the next *live* event: a tombstone at
    // the top would otherwise let pop_one() skip it and run an event past
    // the deadline.
    purge_cancelled_top();
    if (queue_.empty() || queue_.top().t > deadline) break;
    if (pop_one()) ++n;
  }
  if (now_ < deadline && queue_.empty()) now_ = deadline;
  return n;
}

}  // namespace homp::sim
