#ifndef HOMP_SIM_SYNC_H
#define HOMP_SIM_SYNC_H

/// \file sync.h
/// Virtual-time synchronization primitives for simulated proxy actors.
///
/// These mirror what the HOMP runtime's pthread proxies do with real
/// barriers/broadcasts, but on the discrete-event engine: a callback fires
/// at the virtual instant the synchronization would release.

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/engine.h"

namespace homp::sim {

/// Count-down latch: fires all registered waiters once count reaches zero.
/// Waiters registered after the latch is already open fire immediately
/// (at the current virtual time, via a zero-delay event to preserve
/// run-to-completion semantics).
class Latch {
 public:
  Latch(Engine& engine, std::size_t count);

  /// Decrement; must not be called more times than `count`.
  void count_down();

  /// Invoke `fn` when the latch opens.
  void wait(std::function<void()> fn);

  bool open() const noexcept { return remaining_ == 0; }
  std::size_t remaining() const noexcept { return remaining_; }

 private:
  void release_all();

  Engine& engine_;
  std::size_t remaining_;
  std::vector<std::function<void()>> waiters_;
};

/// Cyclic barrier for `n` participants. Each participant calls arrive()
/// with its continuation; when the n-th arrives, all continuations are
/// scheduled at the current virtual time and the barrier resets for the
/// next generation (the runtime reuses one barrier across pipeline stages).
///
/// Also records, per generation, the arrival times — the raw data behind
/// the paper's Figure 6 load-imbalance curve.
class Barrier {
 public:
  Barrier(Engine& engine, std::size_t parties);

  void arrive(std::function<void()> fn);

  std::size_t parties() const noexcept { return parties_; }

  /// Arrival times of the most recently completed generation
  /// (empty until one generation has completed).
  const std::vector<Time>& last_generation_arrivals() const noexcept {
    return last_arrivals_;
  }

  /// Total waiting time accumulated at this barrier across all completed
  /// generations: sum over participants of (release_time - arrival_time).
  Time total_wait_time() const noexcept { return total_wait_; }

  std::size_t generations() const noexcept { return generations_; }

 private:
  Engine& engine_;
  std::size_t parties_;
  std::vector<std::function<void()>> pending_;
  std::vector<Time> arrivals_;
  std::vector<Time> last_arrivals_;
  Time total_wait_ = 0.0;
  std::size_t generations_ = 0;
};

}  // namespace homp::sim

#endif  // HOMP_SIM_SYNC_H
