#ifndef HOMP_SIM_FAULT_H
#define HOMP_SIM_FAULT_H

/// \file fault.h
/// Deterministic fault injection for the discrete-event simulation.
///
/// Production heterogeneous nodes lose accelerators mid-offload (ECC
/// errors, PCIe resets, thermal throttling); the paper's runtime assumes
/// every device in the device(...) list survives. This module supplies the
/// fault *model* — which operations fail, when, on which device — while
/// the recovery *policy* (retry, backoff, quarantine, redistribution)
/// lives in the runtime (see runtime/offload_exec.cpp and
/// docs/RESILIENCE.md).
///
/// Two injection modes compose:
///  * seeded-random: per-device failure rates (FaultProfile), drawn from
///    independent xoshiro streams keyed by (seed, device id). Each device
///    consults its own stream in its own pipeline order, so outcomes are
///    reproducible regardless of how proxies interleave on the engine.
///  * scripted: "the Nth transfer on device 3 fails", "device 2 dies at
///    t = 1.5ms" — exact placement for tests.
///
/// All queries are in virtual time; identical seed + script => identical
/// fault sequence => identical recovery trajectory.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/prng.h"

namespace homp::sim {

/// What kind of failure strikes.
enum class FaultKind : int {
  kTransfer = 0,  ///< a host<->device transfer fails (transient)
  kLaunch,        ///< a kernel launch fails (transient)
  kSlowdown,      ///< one kernel execution is slowed (transient)
  kDeviceLoss,    ///< the device is permanently gone
  kHang,          ///< a kernel execution never completes (silent stall)
  kDegrade,       ///< sustained slowdown from this execution onwards
  kCorruptTransfer,  ///< a transfer payload is silently bit-flipped
  kCorruptCompute,   ///< a kernel result is silently bit-flipped
};

/// Size of the per-device operation-counter array, indexed by the raw
/// FaultKind value. kDeviceLoss (time-based, never counted) keeps its
/// slot so later kinds index past it safely.
inline constexpr int kNumCountedKinds =
    static_cast<int>(FaultKind::kCorruptCompute) + 1;

const char* to_string(FaultKind k) noexcept;

/// Per-device fault characteristics. Lives on DeviceDescriptor (parsed
/// from machines/*.ini `fault_*` keys) and/or on OffloadOptions as
/// offload-wide extra rates.
struct FaultProfile {
  /// Probability that one transfer (copy-in, copy-out or finalize
  /// write-back) fails transiently. In [0, 1).
  double transfer_fault_rate = 0.0;

  /// Probability that one kernel launch fails transiently. In [0, 1).
  double launch_fault_rate = 0.0;

  /// Probability that one kernel execution runs slowed (thermal
  /// throttling, clock capping). In [0, 1).
  double slowdown_rate = 0.0;

  /// Multiplier applied to the compute time when a slowdown strikes.
  double slowdown_factor = 4.0;

  /// Probability that one kernel execution hangs: it never completes and
  /// only the runtime's watchdog can detect it. In [0, 1).
  double hang_rate = 0.0;

  /// Probability that a *sustained* degradation begins at one kernel
  /// execution: unlike kSlowdown, the slowdown persists for the rest of
  /// the offload (failing fan, stuck power state). In [0, 1).
  double degrade_rate = 0.0;

  /// Multiplier applied to all compute from a degrade onwards.
  double degrade_factor = 8.0;

  /// Probability that one transfer delivers *silently corrupted* bytes —
  /// the operation reports success but the payload has flipped bits.
  /// Only the integrity layer's checksums can observe it. In [0, 1).
  double corrupt_transfer_rate = 0.0;

  /// Probability that one kernel execution *completes* but its output
  /// region holds flipped bits. In [0, 1).
  double corrupt_compute_rate = 0.0;

  /// Virtual time at which the device is permanently lost; < 0 = never.
  double fail_at_s = -1.0;

  bool any() const noexcept {
    return transfer_fault_rate > 0.0 || launch_fault_rate > 0.0 ||
           slowdown_rate > 0.0 || hang_rate > 0.0 || degrade_rate > 0.0 ||
           corrupt_transfer_rate > 0.0 || corrupt_compute_rate > 0.0 ||
           fail_at_s >= 0.0;
  }

  /// All out-of-range fields as messages (empty = valid); `who` names the
  /// device in each message.
  std::vector<std::string> violations(const std::string& who) const;

  /// Throws ConfigError listing every out-of-range field; `who` names the
  /// device in the message.
  void validate(const std::string& who) const;

  /// Element-wise combination of two profiles (rates clamped to [0, 1),
  /// earliest loss wins) — machine-file faults plus offload-level faults.
  FaultProfile combined(const FaultProfile& other) const noexcept;
};

/// One exactly-placed fault for tests and reproducible experiments.
struct ScriptedFault {
  int device_id = -1;
  FaultKind kind = FaultKind::kTransfer;

  /// For transient kinds: which per-device operation ordinal fails
  /// (0-based; the runtime consults the plan once per transfer / launch /
  /// compute, each kind counted separately).
  long long op = 0;

  /// For kDeviceLoss: virtual time of the loss.
  double at_s = -1.0;

  /// For kSlowdown / kDegrade: factor override; <= 1 uses the device
  /// profile's.
  double factor = 0.0;
};

/// The resolved fault schedule for one offload: per-device profiles,
/// scripted faults, and the seeded random streams behind the rates.
/// Queries for transient kinds are *consuming* — each advances the
/// device's per-kind operation counter — so the plan must be consulted
/// exactly once per pipeline operation.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Seed for the per-device random streams (split per device id).
  void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }

  /// Install (replacing) the profile for one device.
  void set_profile(int device_id, const FaultProfile& profile);

  /// Add one scripted fault. Validated: throws ConfigError on a
  /// malformed spec.
  void add_scripted(const ScriptedFault& fault);

  /// True when any device can fault at all; when false the runtime
  /// bypasses fault bookkeeping entirely.
  bool active() const noexcept { return active_; }

  /// Does the next transfer operation on `device_id` fail? (consuming)
  bool transfer_fails(int device_id);

  /// Does the next kernel launch on `device_id` fail? (consuming)
  bool launch_fails(int device_id);

  /// Slowdown factor for the next kernel execution on `device_id`;
  /// 1.0 = runs at full speed. (consuming)
  double slowdown(int device_id);

  /// Does the next kernel execution on `device_id` hang — start but never
  /// complete? Only the runtime's watchdog can observe it. (consuming)
  bool compute_hangs(int device_id);

  /// Factor of a *sustained* degradation that begins at the next kernel
  /// execution on `device_id`; 1.0 = none. The caller is expected to latch
  /// the factor for the remainder of the offload. (consuming)
  double degrade(int device_id);

  /// Corruption seed for the next transfer payload on `device_id`;
  /// 0 = the payload arrives intact. A nonzero seed deterministically
  /// selects which bytes flip (see mem::DeviceMapping corruption hooks).
  /// (consuming)
  std::uint64_t transfer_corrupts(int device_id);

  /// Corruption seed striking the next kernel execution's output region
  /// on `device_id`; 0 = the result is intact. (consuming)
  std::uint64_t compute_corrupts(int device_id);

  /// Virtual time at which `device_id` is permanently lost, or a negative
  /// value if it never is. Combines profile and scripted losses (earliest
  /// wins). Non-consuming.
  double loss_time(int device_id) const;

 private:
  struct Stream {
    Prng prng{0};
    long long ops[kNumCountedKinds] = {};  // per transient FaultKind
  };

  Stream& stream(int device_id);
  const FaultProfile* profile(int device_id) const;
  /// Scripted hit for (device, kind) at the current ordinal? (consuming
  /// helper used by the public queries; returns the matching script or
  /// nullptr.)
  const ScriptedFault* scripted_hit(int device_id, FaultKind kind,
                                    long long op) const;

  std::map<int, FaultProfile> profiles_;
  std::map<int, Stream> streams_;
  std::vector<ScriptedFault> scripted_;
  std::uint64_t seed_ = 0x5eedfau;
  bool active_ = false;
};

}  // namespace homp::sim

#endif  // HOMP_SIM_FAULT_H
