#include "sim/link.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.h"

namespace homp::sim {

namespace {
// Completion slop: transfers whose remaining bytes fall below this are
// done. Rounding enters through `now - last_update` (catastrophic
// cancellation once the virtual clock is large), scaled by bandwidth when
// converted to bytes — so the slop must carry a bandwidth*clock term in
// addition to the per-transfer relative one. All terms stay far below one
// cache line's worth of timing effect.
bool is_done(double remaining, double total, double bandwidth, double now) {
  const double eps =
      1e-6 + total * 1e-9 + bandwidth * (now + 1.0) * 1e-13;
  return remaining <= eps;
}
}  // namespace

SharedLink::SharedLink(Engine& engine, std::string name, double latency_s,
                       double bytes_per_s)
    : engine_(engine),
      name_(std::move(name)),
      latency_(latency_s),
      bandwidth_(bytes_per_s) {
  HOMP_REQUIRE(latency_s >= 0.0, "link latency must be non-negative");
  HOMP_REQUIRE(bytes_per_s > 0.0, "link bandwidth must be positive");
}

void SharedLink::transfer(double bytes, std::function<void()> done) {
  HOMP_REQUIRE(bytes >= 0.0, "transfer size must be non-negative");
  HOMP_ASSERT(done != nullptr);
  // The fixed latency is paid before the transfer contends for bandwidth.
  engine_.schedule_after(latency_, [this, bytes, cb = std::move(done)]() mutable {
    admit(bytes, std::move(cb));
  });
}

void SharedLink::admit(double bytes, std::function<void()> done) {
  HOMP_DSAN_WRITE(dsan_lanes_);
  advance();
  active_.push_back(Active{bytes, bytes, std::move(done)});
  reschedule();
}

void SharedLink::advance() {
  const Time now = engine_.now();
  const Time elapsed = now - last_update_;
  last_update_ = now;
  if (active_.empty() || elapsed <= 0.0) return;
  busy_time_ += elapsed;
  const double per_transfer =
      elapsed * bandwidth_ / static_cast<double>(active_.size());
  for (auto& a : active_) a.remaining -= per_transfer;
}

void SharedLink::reschedule() {
  if (has_pending_event_) {
    engine_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (active_.empty()) return;
  double min_remaining = active_.front().remaining;
  for (const auto& a : active_) min_remaining = std::min(min_remaining, a.remaining);
  min_remaining = std::max(min_remaining, 0.0);
  const Time dt =
      min_remaining * static_cast<double>(active_.size()) / bandwidth_;
  pending_event_ = engine_.schedule_after(dt, [this] { on_completion_event(); });
  has_pending_event_ = true;
}

void SharedLink::on_completion_event() {
  HOMP_DSAN_WRITE(dsan_lanes_);
  has_pending_event_ = false;
  advance();
  // Collect finished transfers first: a done-callback may start a new
  // transfer on this same link re-entrantly.
  std::vector<std::function<void()>> finished;
  for (auto it = active_.begin(); it != active_.end();) {
    if (is_done(it->remaining, it->total, bandwidth_, engine_.now())) {
      bytes_delivered_ += it->total;
      finished.push_back(std::move(it->done));
      it = active_.erase(it);
      ++completed_;
    } else {
      ++it;
    }
  }
  HOMP_ASSERT(!finished.empty());
  reschedule();
  for (auto& cb : finished) cb();
}

}  // namespace homp::sim
