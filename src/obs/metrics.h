#ifndef HOMP_OBS_METRICS_H
#define HOMP_OBS_METRICS_H

/// \file metrics.h
/// Lightweight metrics registry for the HOMP runtime
/// (docs/OBSERVABILITY.md).
///
/// Three metric types, Prometheus-flavored:
///  - counter:   monotonically accumulated double (adds across merges)
///  - gauge:     last-written double (overwritten by merges)
///  - histogram: virtual-time distribution over fixed log-scale buckets
///
/// Everything is keyed by (name, labels) where `labels` is the literal
/// text between the braces of the Prometheus exposition
/// (e.g. `device="gpu0",phase="compute"`, or empty). Registration is
/// implicit on first touch; touching an existing key with a different
/// metric type throws ConfigError.
///
/// The registry measures *virtual* time only — it never reads wall
/// clocks or entropy (HL002-clean), so two identical seeded offloads
/// export byte-identical JSON. Storage is an ordered map, which makes
/// both export formats deterministic by construction.
///
/// Not thread-safe: one registry per offload/bench thread, merged
/// afterwards via merge().

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace homp::obs {

/// Fixed-bucket log-scale histogram for virtual-time durations.
///
/// Bucket i spans [upper_bound(i-1), upper_bound(i)) with
/// upper_bound(i) = kBaseSeconds * 2^(i+1); the first bucket also
/// catches everything below kBaseSeconds and the last everything above
/// (its exposition bound is +Inf). With kBaseSeconds = 0.1 µs and 40
/// buckets the top finite bound exceeds 1e4 virtual seconds — wider
/// than any simulated offload.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;
  static constexpr double kBaseSeconds = 1e-7;

  void observe(double v) noexcept;
  void merge(const Histogram& other) noexcept;

  /// Exact reconstruction of an exported histogram (the offline session
  /// store reloads write_json output so cross-run merges stay
  /// bucket-exact): add `n` samples' worth of count into bucket `i`
  /// without touching the sum, then account the exported sum once via
  /// add_sum(). Out-of-range bucket indices are ignored.
  void add_bucket(int i, std::uint64_t n) noexcept;
  void add_sum(double s) noexcept { sum_ += s; }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  /// Count in bucket i alone (not cumulative).
  std::uint64_t bucket(int i) const noexcept { return buckets_[i]; }
  /// Exclusive upper bound of bucket i; +infinity for the last bucket.
  static double upper_bound(int i) noexcept;

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

enum class MetricType : int { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* to_string(MetricType t) noexcept;

/// Registry of named metrics; see file comment for semantics.
class MetricsRegistry {
 public:
  /// Counter: accumulate `v` (default 1) into (name, labels).
  void add(std::string_view name, std::string_view labels, double v = 1.0);

  /// Gauge: overwrite (name, labels) with `v`.
  void set(std::string_view name, std::string_view labels, double v);

  /// Histogram: record one sample (virtual seconds) into (name, labels).
  void observe(std::string_view name, std::string_view labels, double v);

  /// Histogram: fold a prebuilt histogram into (name, labels) — exact
  /// bucket counts and sum, for telemetry accumulated outside the
  /// registry (e.g. DeviceStats::chunk_seconds).
  void merge_histogram(std::string_view name, std::string_view labels,
                       const Histogram& h);

  /// Fold another registry into this one: counters add, gauges take the
  /// other's value, histograms merge bucket-wise. Type conflicts throw.
  void merge(const MetricsRegistry& other);

  std::size_t size() const noexcept { return metrics_.size(); }
  bool empty() const noexcept { return metrics_.empty(); }

  /// Scalar value of a counter/gauge; 0.0 when the key is absent.
  double value(std::string_view name, std::string_view labels = {}) const;

  /// Histogram under (name, labels), or nullptr.
  const Histogram* find_histogram(std::string_view name,
                                  std::string_view labels = {}) const;

  /// Deterministic JSON document (schema in docs/OBSERVABILITY.md):
  /// metrics sorted by (name, labels), numbers formatted identically
  /// across runs.
  void write_json(std::ostream& os) const;

  /// Prometheus text exposition format (one # TYPE line per metric
  /// name, then one sample line per label set).
  void write_prometheus(std::ostream& os) const;

 private:
  struct Metric {
    MetricType type = MetricType::kCounter;
    double value = 0.0;   ///< counters and gauges
    Histogram hist;       ///< histograms only
  };
  using Key = std::pair<std::string, std::string>;  ///< (name, labels)

  Metric& slot(std::string_view name, std::string_view labels,
               MetricType type);

  std::map<Key, Metric> metrics_;
};

}  // namespace homp::obs

#endif  // HOMP_OBS_METRICS_H
